package vrdann_test

import (
	"bytes"
	"testing"
	"time"

	"vrdann"
)

// TestPublicAPIEndToEnd exercises the whole facade the way a downstream
// user would: generate, encode, decode, train, run the pipeline, evaluate,
// and simulate.
func TestPublicAPIEndToEnd(t *testing.T) {
	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[0], 96, 64, 16)
	if vid.Len() != 16 {
		t.Fatalf("sequence length %d", vid.Len())
	}

	enc := vrdann.DefaultEncoderConfig()
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Data) == 0 || len(stream.Data) >= 96*64*16 {
		t.Fatalf("stream size %d implausible", len(stream.Data))
	}

	full, err := vrdann.Decode(stream.Data)
	if err != nil {
		t.Fatal(err)
	}
	side, err := vrdann.DecodeSideInfo(stream.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Frames) != 16 || side.BRatio() <= 0 {
		t.Fatalf("decode results inconsistent: %d frames, B ratio %v", len(full.Frames), side.BRatio())
	}

	tc := vrdann.DefaultTrainConfig()
	tc.Features = 4
	tc.Epochs = 1
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 8)[:2], enc, tc)
	if err != nil {
		t.Fatal(err)
	}

	nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.05, 3, 1)
	p := vrdann.NewPipeline(nnl, nns)
	res, err := p.RunSegmentation(stream.Data)
	if err != nil {
		t.Fatal(err)
	}
	f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
	if f <= 0.4 || j <= 0.4 {
		t.Fatalf("accuracy implausibly low: F=%v J=%v", f, j)
	}
	if res.Stats.NNLRuns+res.Stats.BFrames != vid.Len() {
		t.Fatalf("frame accounting: %+v", res.Stats)
	}

	det := vrdann.NewOracleBoxDetector("det", vid.Boxes, 1, 2)
	dres, err := p.RunDetection(stream.Data, det)
	if err != nil {
		t.Fatal(err)
	}
	ap := vrdann.EvaluateDetection(dres.Detections, vrdann.GTBoxes(vid), 0.5)
	if ap <= 0.3 {
		t.Fatalf("detection AP %v implausibly low", ap)
	}

	params := vrdann.DefaultSimParams()
	w := vrdann.NewWorkload(vid.Name, side, params, 854, 480)
	favos := vrdann.Simulate(params, vrdann.SchemeFAVOS, w)
	vrd := vrdann.Simulate(params, vrdann.SchemeVRDANNParallel, w)
	if vrd.TotalNS >= favos.TotalNS {
		t.Fatal("VR-DANN-parallel must beat FAVOS in the simulator")
	}
	if favos.FPS() <= 0 || vrd.FPS() <= favos.FPS() {
		t.Fatalf("fps: favos %v vrdann %v", favos.FPS(), vrd.FPS())
	}
}

func TestPublicAPIGenerateCustomScene(t *testing.T) {
	vid := vrdann.Generate(vrdann.SceneSpec{
		Name: "custom", W: 64, H: 32, Frames: 4, Seed: 9,
		Objects: []vrdann.ObjectSpec{{
			Shape: vrdann.ShapeBox, Radius: 6, X: 30, Y: 16, VX: 1,
			Intensity: 220, Foreground: true,
		}},
	})
	if vid.Len() != 4 || vid.Masks[0].Area() == 0 || vid.Boxes[0].Empty() {
		t.Fatal("custom scene missing ground truth")
	}
}

func TestPublicAPISuites(t *testing.T) {
	if len(vrdann.SuiteProfiles) != 20 || len(vrdann.DetectionProfiles) != 12 {
		t.Fatalf("suite sizes %d/%d", len(vrdann.SuiteProfiles), len(vrdann.DetectionProfiles))
	}
	det := vrdann.MakeDetectionSuite(48, 32, 3)
	if len(det) != 12 {
		t.Fatalf("detection suite size %d", len(det))
	}
}

func TestPublicAPIIOAndSimExtras(t *testing.T) {
	vid := vrdann.MakeSuite(48, 32, 4)[0]

	// PGM round trips.
	var buf bytes.Buffer
	if err := vrdann.WritePGM(&buf, vid.Frames[0]); err != nil {
		t.Fatal(err)
	}
	f, err := vrdann.ReadPGM(&buf)
	if err != nil || f.W != 48 {
		t.Fatalf("PGM round trip: %v %v", f, err)
	}
	buf.Reset()
	if err := vrdann.WriteMaskPGM(&buf, vid.Masks[0]); err != nil {
		t.Fatal(err)
	}
	m, err := vrdann.ReadMaskPGM(&buf)
	if err != nil || m.Area() != vid.Masks[0].Area() {
		t.Fatalf("mask PGM round trip: %v", err)
	}

	// Overlay keeps geometry.
	ov := vrdann.Overlay(vid.Frames[0], vid.Masks[0])
	if ov.W != 48 || ov.H != 32 {
		t.Fatal("overlay geometry")
	}

	// Y4M round trip.
	buf.Reset()
	if err := vrdann.WriteY4M(&buf, vid); err != nil {
		t.Fatal(err)
	}
	back, err := vrdann.ReadY4M(&buf)
	if err != nil || back.Len() != vid.Len() {
		t.Fatalf("Y4M round trip: %v", err)
	}

	// Traced and realtime simulation.
	bigger := vrdann.MakeSequence(vrdann.SuiteProfiles[6], 96, 64, 16)
	stream, err := vrdann.Encode(bigger, vrdann.DefaultEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := vrdann.DecodeSideInfo(stream.Data)
	if err != nil {
		t.Fatal(err)
	}
	p := vrdann.DefaultSimParams()
	w := vrdann.NewWorkload(bigger.Name, dec, p, 854, 480)
	rep, tr := vrdann.SimulateTraced(p, vrdann.SchemeVRDANNParallel, w)
	if rep.TotalNS <= 0 || len(tr.Events) == 0 {
		t.Fatal("traced simulation empty")
	}
	rt := vrdann.SimulateRealtime(p, vrdann.SchemeVRDANNParallel, w, 25)
	if rt.AvgLatencyNS <= 0 || len(rt.Latencies) != 16 {
		t.Fatalf("realtime report: %+v", rt.AvgLatencyNS)
	}
}

// TestPublicAPIQuantTier exercises the int8 facade: quantize a trained
// NN-S from calibration tensors, run the pipeline on the quant tier with
// residual-driven skipping, and hold the F-score gate against the float
// path.
func TestPublicAPIQuantTier(t *testing.T) {
	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[0], 96, 64, 16)
	enc := vrdann.DefaultEncoderConfig()
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		t.Fatal(err)
	}
	tc := vrdann.DefaultTrainConfig()
	tc.Features = 4
	tc.Epochs = 1
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 8)[:2], enc, tc)
	if err != nil {
		t.Fatal(err)
	}

	// Calibration inputs carry the {0, 0.5, 1} alphabet of the sandwich.
	var calib []*vrdann.Tensor
	for i := 0; i < 3; i++ {
		x := vrdann.NewTensor(3, 64, 96)
		for j := range x.Data {
			x.Data[j] = float32((j+i)%3) / 2
		}
		calib = append(calib, x)
	}
	q, err := vrdann.QuantizeRefiner(nns, calib)
	if err != nil {
		t.Fatal(err)
	}
	if q.WeightBytes() <= 0 {
		t.Fatal("quantized net reports no weights")
	}

	nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.05, 3, 1)
	fres, err := vrdann.NewPipeline(nnl, nns).RunSegmentation(stream.Data)
	if err != nil {
		t.Fatal(err)
	}
	col := vrdann.NewCollector()
	qp := vrdann.NewPipeline(nnl, nns, vrdann.WithQuant(q),
		vrdann.WithResidualSkip(8), vrdann.WithObserver(col))
	qres, err := qp.RunSegmentation(stream.Data)
	if err != nil {
		t.Fatal(err)
	}
	fF, _ := vrdann.EvaluateSegmentation(fres.Masks, vid.Masks)
	qF, _ := vrdann.EvaluateSegmentation(qres.Masks, vid.Masks)
	if fF-qF > 0.005 {
		t.Fatalf("quant tier F gate: float %v int8 %v", fF, qF)
	}
	snap := col.Snapshot()
	if snap.Counters["quant/blocks-skipped"]+snap.Counters["quant/blocks-dirty"] == 0 {
		t.Fatal("residual-skip counters never moved")
	}
}

// TestPublicAPIAdaptTier drives the online-adaptation facade: build an
// Adapter over a trained refiner, harvest a session's anchor masks as
// pseudo-labels, take a forced promotion, and derive the isolated cache
// fingerprints an adapting session serves under.
func TestPublicAPIAdaptTier(t *testing.T) {
	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[0], 64, 48, 8)
	tc := vrdann.DefaultTrainConfig()
	tc.Features = 4
	tc.Epochs = 1
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(64, 48, 8)[:2], vrdann.DefaultEncoderConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := vrdann.NewAdapter(vrdann.AdaptConfig{Base: nns, MinImprove: -1, EvalEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ad.Close()
	for i, m := range vid.Masks {
		ad.Harvest(i, nil, m)
	}
	var p vrdann.AdaptPromotion
	var ok bool
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if p, ok = ad.TakePromoted(); ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ok {
		t.Fatal("forced promotion never staged")
	}
	if p.Net == nil || p.Version == 0 {
		t.Fatalf("promotion incomplete: net=%v version=%d", p.Net != nil, p.Version)
	}
	base := vrdann.ModelFingerprint("NN-L", "refine")
	s1 := vrdann.AdaptedFingerprint(base, "session-1", p.Version)
	s2 := vrdann.AdaptedFingerprint(base, "session-2", p.Version)
	if s1 == base || s2 == base || s1 == s2 {
		t.Fatalf("adapted fingerprints not isolated: base=%x s1=%x s2=%x", base, s1, s2)
	}
}
