// Command benchsuite regenerates the tables and figures of the VR-DANN
// paper's evaluation and prints them in the same rows/series the paper
// reports.
//
// Usage:
//
//	benchsuite [-frames N] [-res WxH] [-workers N] [figures...]
//
// With no figure arguments, every experiment runs. Valid names: fig3a,
// fig3b, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17,
// tableII, headline, ablations, timeline, realtime, dse, stability,
// energy, stages, serve, batch, quant, faults, cache, shard, qos, adapt.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"vrdann/internal/experiments"
	"vrdann/internal/par"
)

func main() {
	frames := flag.Int("frames", 48, "frames per benchmark sequence")
	res := flag.String("res", "96x64", "accuracy evaluation resolution WxH")
	workers := flag.Int("workers", 1, "per-pipeline worker count (> 1 overlaps NN-L with B-frame work; results are bit-identical)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	cfg := experiments.Default()
	cfg.Frames = *frames
	cfg.PipelineWorkers = *workers
	if _, err := fmt.Sscanf(*res, "%dx%d", &cfg.W, &cfg.H); err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: bad -res %q: %v\n", *res, err)
		os.Exit(1)
	}
	h := experiments.New(cfg)

	all := []string{"fig3a", "fig3b", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "tableII", "headline", "ablations", "timeline", "realtime", "dse", "stability", "energy", "stages", "serve", "batch", "quant", "faults", "cache", "shard", "qos", "adapt"}
	want := flag.Args()
	if len(want) == 0 {
		want = all
	}
	if *jsonOut {
		// "workers" is the parallelism a pipeline run can actually get
		// (clamped to GOMAXPROCS); the raw flag is kept alongside so sweeps
		// over-requesting workers remain distinguishable.
		out := map[string]any{
			"workers":          par.EffectiveWorkers(cfg.PipelineWorkers),
			"workersRequested": cfg.PipelineWorkers,
		}
		// JSON output always carries the per-stage profile of one
		// instrumented run, so downstream tooling can correlate figure data
		// with where the time went.
		stages, err := h.Stages()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: stages: %v\n", err)
			os.Exit(1)
		}
		out["stages"] = stages
		for _, name := range want {
			data, err := figureData(h, name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: %s: %v\n", name, err)
				os.Exit(1)
			}
			out[name] = data
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range want {
		start := time.Now()
		if err := runFigure(h, name); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

// figureData returns the raw row structures behind a figure for JSON
// output.
func figureData(h *experiments.Harness, name string) (any, error) {
	switch name {
	case "fig3a":
		rows, mean, err := h.Fig3a()
		return map[string]any{"rows": rows, "mean": mean}, err
	case "fig3b":
		hist, maxRefs, err := h.Fig3b()
		return map[string]any{"hist": hist, "max": maxRefs}, err
	case "fig9":
		rows, err := h.Fig9()
		return rows, err
	case "fig10":
		rows, err := h.Fig10()
		return rows, err
	case "fig11":
		rows, err := h.Fig11()
		return rows, err
	case "fig12":
		rows, err := h.Fig12()
		return rows, err
	case "fig13":
		rows, err := h.Fig13()
		return rows, err
	case "fig14":
		rows, err := h.Fig14()
		return rows, err
	case "fig15":
		rows, err := h.Fig15()
		return rows, err
	case "fig16":
		rows, err := h.Fig16()
		return rows, err
	case "fig17":
		rows, err := h.Fig17()
		return rows, err
	case "tableII":
		return h.TableII(), nil
	case "headline":
		return h.Headline()
	case "realtime":
		rows, err := h.Realtime()
		return rows, err
	case "dse":
		rows, err := h.DSE()
		return rows, err
	case "stability":
		rows, err := h.Stability()
		return rows, err
	case "energy":
		rows, err := h.EnergyBreakdown()
		return rows, err
	case "timeline":
		return h.Timeline()
	case "stages":
		return h.Stages()
	case "serve":
		rows, err := h.Serve()
		return rows, err
	case "batch":
		rows, err := h.Batch()
		return rows, err
	case "cache":
		rows, err := h.CacheFigure()
		return rows, err
	case "shard":
		return h.ShardFigure()
	case "qos":
		rows, err := h.QoSFigure()
		return rows, err
	case "adapt":
		rows, err := h.AdaptFigure()
		return rows, err
	case "quant":
		return h.Quant()
	case "faults":
		return h.Faults()
	case "ablations":
		co, err := h.AblationCoalescing()
		if err != nil {
			return nil, err
		}
		la, err := h.AblationLaggedSwitching()
		if err != nil {
			return nil, err
		}
		tb, err := h.AblationTmpB()
		if err != nil {
			return nil, err
		}
		return map[string]any{"coalescing": co, "laggedSwitching": la, "tmpB": tb}, nil
	default:
		return nil, fmt.Errorf("unknown figure %q", name)
	}
}

func runFigure(h *experiments.Harness, name string) error {
	switch name {
	case "fig3a":
		rows, mean, err := h.Fig3a()
		if err != nil {
			return err
		}
		fmt.Println("Fig 3a: B-frame ratio per video (auto encoder settings)")
		for _, r := range rows {
			fmt.Printf("  %-20s %5.1f%%\n", r.Name, 100*r.BRatio)
		}
		fmt.Printf("  %-20s %5.1f%%   (paper: ~65%% average)\n", "AVERAGE", 100*mean)
	case "fig3b":
		hist, maxRefs, err := h.Fig3b()
		if err != nil {
			return err
		}
		fmt.Println("Fig 3b: number of distinct reference frames per B-frame")
		var keys []int
		total := 0
		for k, n := range hist {
			keys = append(keys, k)
			total += n
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Printf("  %d refs: %5.1f%% of B-frames\n", k, 100*float64(hist[k])/float64(total))
		}
		fmt.Printf("  max refs = %d   (paper: up to 7)\n", maxRefs)
	case "fig9":
		rows, err := h.Fig9()
		if err != nil {
			return err
		}
		fmt.Println("Fig 9: per-video segmentation accuracy (F-Score / IoU)")
		fmt.Printf("  %-20s %14s %14s\n", "video", "FAVOS (F/J)", "VR-DANN (F/J)")
		for _, r := range rows {
			fmt.Printf("  %-20s %6.3f %6.3f  %6.3f %6.3f\n", r.Name, r.FavosF, r.FavosJ, r.VrdF, r.VrdJ)
		}
	case "fig10":
		rows, err := h.Fig10()
		if err != nil {
			return err
		}
		fmt.Println("Fig 10: averaged segmentation accuracy")
		for _, r := range rows {
			fmt.Printf("  %-10s F=%.3f  J=%.3f\n", r.Scheme, r.F, r.J)
		}
	case "fig11":
		rows, err := h.Fig11()
		if err != nil {
			return err
		}
		fmt.Println("Fig 11: detection mAP by speed class")
		fmt.Printf("  %-14s %8s %8s %8s %8s\n", "scheme", "overall", "slow", "medium", "fast")
		for _, r := range rows {
			fmt.Printf("  %-14s %8.3f %8.3f %8.3f %8.3f\n", r.Scheme, r.Overall, r.Slow, r.Med, r.Fast)
		}
	case "fig12":
		rows, err := h.Fig12()
		if err != nil {
			return err
		}
		fmt.Println("Fig 12: per-video execution cycles (normalized to FAVOS) and TOPS")
		fmt.Printf("  %-20s %8s %9s %11s %11s\n", "video", "serial", "parallel", "FAVOS TOP/f", "VRD TOP/f")
		var s, p float64
		for _, r := range rows {
			fmt.Printf("  %-20s %8.3f %9.3f %11.3f %11.3f\n", r.Name, r.SerialNorm, r.ParallelNorm, r.FavosTOPS, r.VrdTOPS)
			s += r.SerialNorm
			p += r.ParallelNorm
		}
		n := float64(len(rows))
		fmt.Printf("  %-20s %8.3f %9.3f   (speedups: serial %.2fx, parallel %.2fx)\n",
			"AVERAGE", s/n, p/n, n/s, n/p)
	case "fig13":
		rows, err := h.Fig13()
		if err != nil {
			return err
		}
		fmt.Println("Fig 13: averaged performance and energy (normalized to FAVOS)")
		for _, r := range rows {
			fmt.Printf("  %-18s speedup=%5.2fx  energy=%5.2fx  fps=%5.1f\n", r.Scheme, r.Speedup, r.EnergyNorm, r.FPS)
		}
	case "fig14":
		rows, err := h.Fig14()
		if err != nil {
			return err
		}
		fmt.Println("Fig 14: DRAM access breakdown (fractions of FAVOS total)")
		for _, r := range rows {
			var parts []string
			var keys []string
			for k := range r.Share {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%.3f", k, r.Share[k]))
			}
			fmt.Printf("  %-18s total=%.3f  %s\n", r.Scheme, r.Total, strings.Join(parts, " "))
		}
	case "fig15":
		rows, err := h.Fig15()
		if err != nil {
			return err
		}
		fmt.Println("Fig 15: accuracy and cycles vs B-frame ratio")
		for _, r := range rows {
			fmt.Printf("  %-14s (actual %4.1f%%)  F=%.3f J=%.3f cycles=%.3fx\n", r.Label, 100*r.BRatio, r.F, r.J, r.CyclesNorm)
		}
	case "fig16":
		rows, err := h.Fig16()
		if err != nil {
			return err
		}
		fmt.Println("Fig 16: accuracy and cycles vs search interval n")
		for _, r := range rows {
			label := fmt.Sprintf("n=%d", r.N)
			if r.N == 0 {
				label = "auto"
			}
			fmt.Printf("  %-6s F=%.3f J=%.3f cycles=%.3fx\n", label, r.F, r.J, r.CyclesNorm)
		}
	case "fig17":
		rows, err := h.Fig17()
		if err != nil {
			return err
		}
		fmt.Println("Fig 17: accuracy by encoding standard")
		for _, r := range rows {
			fmt.Printf("  %-20s F=%.3f J=%.3f\n", r.Standard, r.F, r.J)
		}
	case "tableII":
		fmt.Println(h.TableII())
	case "stability":
		rows, err := h.Stability()
		if err != nil {
			return err
		}
		fmt.Println("Temporal instability (lower = less mask flicker):")
		for _, r := range rows {
			fmt.Printf("  %-10s %.4f\n", r.Scheme, r.Instability)
		}
	case "energy":
		rows, err := h.EnergyBreakdown()
		if err != nil {
			return err
		}
		fmt.Println("Energy breakdown per scheme (suite totals, mJ):")
		fmt.Printf("  %-18s %8s %8s %8s %8s %8s %9s\n", "scheme", "NPU", "DRAM", "decoder", "agent", "static", "total")
		for _, r := range rows {
			fmt.Printf("  %-18s %8.0f %8.0f %8.0f %8.0f %8.0f %9.0f\n",
				r.Scheme, r.NPU, r.DRAM, r.Dec, r.Agent, r.Static, r.Total)
		}
	case "dse":
		rows, err := h.DSE()
		if err != nil {
			return err
		}
		fmt.Println("Design-space exploration: NPU compute x DRAM bandwidth")
		fmt.Printf("  %8s %6s %11s %12s %9s\n", "TOPS", "BW", "FAVOS fps", "VR-DANN fps", "speedup")
		for _, r := range rows {
			fmt.Printf("  %8.0f %5.1fx %11.1f %12.1f %8.2fx\n",
				r.PeakTOPS, r.BandwidthX, r.FavosFPS, r.VrdannFPS, r.Speedup)
		}
	case "realtime":
		rows, err := h.Realtime()
		if err != nil {
			return err
		}
		fmt.Println("Real-time behaviour against a 25 fps camera (suite average):")
		for _, r := range rows {
			fmt.Printf("  %-18s avg=%6.1fms p99=%7.1fms misses=%5.1f%%  sustains %.0f fps (worst video %.0f)\n",
				r.Scheme, r.AvgLatencyMS, r.P99LatencyMS, r.MissPct, r.SustainedFPS, r.MinFPS)
		}
	case "timeline":
		out, err := h.Timeline()
		if err != nil {
			return err
		}
		fmt.Println("Execution timelines on \"cows\" (Fig 7 style; #: busy):")
		fmt.Print(out)
	case "stages":
		rep, err := h.Stages()
		if err != nil {
			return err
		}
		fmt.Println("Per-stage profile of one instrumented VR-DANN run:")
		fmt.Print(rep.Table())
	case "serve":
		rows, err := h.Serve()
		if err != nil {
			return err
		}
		fmt.Println("Multi-stream serving sweep (closed loop, cap 8 sessions):")
		fmt.Printf("  %7s %8s %7s %7s %9s %11s %8s %8s %8s %7s\n",
			"streams", "admitted", "rejects", "frames", "total fps", "per-strm fps", "p50 ms", "p95 ms", "p99 ms", "drop%")
		for _, r := range rows {
			fmt.Printf("  %7d %8d %7d %7d %9.1f %11.1f %8.1f %8.1f %8.1f %6.1f%%\n",
				r.Streams, r.Admitted, r.AdmissionRejects, r.Frames,
				r.FPS, r.PerStreamFPS, r.P50MS, r.P95MS, r.P99MS, r.DropPct)
		}
	case "batch":
		rows, err := h.Batch()
		if err != nil {
			return err
		}
		fmt.Println("Dynamic batching sweep (streams x MaxBatch; MaxBatch=1 is unbatched):")
		fmt.Printf("  %7s %9s %7s %9s %8s %8s %8s %7s %30s\n",
			"streams", "maxbatch", "frames", "total fps", "p50 ms", "p95 ms", "p99 ms", "occ", "flushes full/timer/stall/drain")
		for _, r := range rows {
			fmt.Printf("  %7d %9d %7d %9.1f %8.1f %8.1f %8.1f %7.2f %12d %5d %5d %5d\n",
				r.Streams, r.MaxBatch, r.Frames, r.FPS, r.P50MS, r.P95MS, r.P99MS,
				r.MeanOccupancy, r.FlushFull, r.FlushTimer, r.FlushStall, r.FlushDrain)
		}
	case "cache":
		rows, err := h.CacheFigure()
		if err != nil {
			return err
		}
		fmt.Println("Content cache sweep (viewers x distinct contents; 2 chunks per session):")
		fmt.Printf("  %8s %8s %7s %12s %11s %8s %6s %6s %6s %10s %13s\n",
			"contents", "viewers", "frames", "uncached fps", "cached fps", "speedup", "hits", "miss", "evict", "saved MB", "broadcast f/s")
		for _, r := range rows {
			bcast := "-"
			if r.BroadcastFPS > 0 {
				bcast = fmt.Sprintf("%.1f", r.BroadcastFPS)
			}
			fmt.Printf("  %8d %8d %7d %12.1f %11.1f %7.2fx %6d %6d %6d %10.2f %13s\n",
				r.Contents, r.Viewers, r.Frames, r.UncachedFPS, r.CachedFPS, r.Speedup,
				r.Hits, r.Misses, r.Evictions, float64(r.BytesSaved)/(1<<20), bcast)
		}
	case "shard":
		rep, err := h.ShardFigure()
		if err != nil {
			return err
		}
		fmt.Printf("Sharded serving scale-out (one gateway over N vrserve nodes; host procs %d):\n",
			rep.HostProcs)
		fmt.Printf("  %5s %8s %7s %7s %9s %13s %10s\n",
			"nodes", "sessions", "chunks", "frames", "agg fps", "per-node fps", "scale eff")
		for _, r := range rep.Rows {
			fmt.Printf("  %5d %8d %7d %7d %9.1f %13.1f %10.2f\n",
				r.Nodes, r.Sessions, r.Chunks, r.Frames, r.FPS, r.PerNodeFPS, r.ScaleEff)
		}
		m := rep.Migration
		fmt.Printf("  migration leg: %d/%d sessions moved (%d migrations, %d rebalances, %d proxy errors)\n",
			m.Moved, m.Sessions, m.Migrations, m.Rebalances, m.ProxyErrors)
		fmt.Printf("  migration latency: mean %.1fms p50 %.1fms p95 %.1fms\n",
			m.MigrateMeanMS, m.MigrateP50MS, m.MigrateP95MS)
	case "qos":
		rows, err := h.QoSFigure()
		if err != nil {
			return err
		}
		fmt.Println("QoS ladder overload sweep (open-loop arrivals, premium/free mix):")
		fmt.Printf("  %9s %7s %7s %8s %8s %7s %7s %7s %28s %8s\n",
			"interval", "frames", "drop", "p95 ms", "p99 ms", "IoU", "IoU(p)", "IoU(f)", "steps full/refine/recon/skip", "overruns")
		for _, r := range rows {
			fmt.Printf("  %7.0fms %7d %7d %8.1f %8.1f %7.3f %7.3f %7.3f %9d %6d %5d %5d %8d\n",
				r.IntervalMS, r.Frames, r.Dropped, r.P95MS, r.P99MS,
				r.MeanIoU, r.PremiumIoU, r.FreeIoU,
				r.StepFull, r.StepRefine, r.StepRecon, r.StepSkip, r.DeadlineOverruns)
		}
	case "adapt":
		rows, err := h.AdaptFigure()
		if err != nil {
			return err
		}
		fmt.Println("Online per-stream adaptation on the content-drift stream (frozen vs adapted):")
		fmt.Printf("  %-8s %7s %9s %8s %8s %8s %8s %8s %9s %9s %7s %7s %6s\n",
			"mode", "frames", "total fps", "p50 ms", "p95 ms", "p99 ms", "early F", "late F", "drift(e)", "drift(l)", "steps", "promo", "rollbk")
		for _, r := range rows {
			fmt.Printf("  %-8s %7d %9.1f %8.1f %8.1f %8.1f %8.3f %8.3f %9.3f %9.3f %7d %7d %6d\n",
				r.Mode, r.Frames, r.FPS, r.P50MS, r.P95MS, r.P99MS,
				r.EarlyF, r.LateF, r.EarlyDriftF, r.LateDriftF,
				r.TrainSteps, r.Promotions, r.Rollbacks)
		}
	case "quant":
		rep, err := h.Quant()
		if err != nil {
			return err
		}
		k := rep.Kernels
		fmt.Println("Quantized kernel tier (int8 vs float, residual-driven skipping):")
		fmt.Printf("  kernels (batch %d): float %.1fms/item, int8 %.1fms/item — %.2fx, %.2f Gop/s int8 (sim efficiency %.2e)\n",
			k.Items, k.FloatNSPerItem/1e6, k.Int8NSPerItem/1e6, k.Speedup, k.Int8OpsPerSec/1e9, k.SimEfficiency)
		fmt.Printf("  %-10s %7s %9s %8s %8s %8s %7s %7s %7s %6s\n",
			"path", "frames", "total fps", "p50 ms", "p95 ms", "p99 ms", "F", "dF", "occ", "skip%")
		for _, r := range rep.Rows {
			fmt.Printf("  %-10s %7d %9.1f %8.1f %8.1f %8.1f %7.3f %7.3f %7.2f %5.1f%%\n",
				r.Path, r.Frames, r.FPS, r.P50MS, r.P95MS, r.P99MS, r.FScore, r.DeltaF, r.MeanOccupancy, 100*r.SkipRate)
		}
	case "faults":
		rep, err := h.Faults()
		if err != nil {
			return err
		}
		fmt.Println("Fault-injection soak (8 sessions, 20% corrupted chunks):")
		fmt.Printf("  chunks offered %d, corrupted %d, hung %d\n",
			rep.ChunksOffered, rep.Corrupted, rep.Hung)
		fmt.Printf("  served clean %d, served corrupt %d, admission-rejected %d, failed classified %d\n",
			rep.ServedClean, rep.ServedCorrupt, rep.AdmissionRejected, rep.FailedClassified)
		fmt.Printf("  counters: decode-errors %d, resyncs %d, breaker-trips %d\n",
			rep.DecodeErrors, rep.Resyncs, rep.BreakerTrips)
	case "headline":
		hl, err := h.Headline()
		if err != nil {
			return err
		}
		fmt.Println("Headline (Sec VI):")
		fmt.Printf("  speedup vs OSVOS       %4.1fx (paper 5.7x)\n", hl.SpeedupVsOSVOS)
		fmt.Printf("  speedup vs FAVOS       %4.1fx (paper 2.9x)\n", hl.SpeedupVsFAVOS)
		fmt.Printf("  speedup vs DFF         %4.1fx (paper 2.2x)\n", hl.SpeedupVsDFF)
		fmt.Printf("  speedup vs Euphrates-2 %4.1fx (paper 1.4x)\n", hl.SpeedupVsEuphrates2)
		fmt.Printf("  serial speedup vs FAVOS %3.1fx (paper 2.0x)\n", hl.SerialSpeedupVsFAVOS)
		fmt.Printf("  energy vs OSVOS        %4.1fx (paper 4.3x)\n", hl.EnergyVsOSVOS)
		fmt.Printf("  energy vs FAVOS        %4.1fx (paper 2.1x)\n", hl.EnergyVsFAVOS)
		fmt.Printf("  energy vs DFF          %4.1fx (paper 1.7x)\n", hl.EnergyVsDFF)
		fmt.Printf("  energy vs serial       %4.1fx (paper 1.1x)\n", hl.EnergyVsSerial)
		fmt.Printf("  FAVOS fps              %4.1f  (paper 13)\n", hl.FAVOSFPS)
		fmt.Printf("  VR-DANN fps            %4.1f  (paper 40)\n", hl.VRDANNFPS)
		fmt.Printf("  F-Score loss vs FAVOS  %4.2f%% (paper <1%%)\n", hl.AccuracyLossVsFAVOSPct)
	case "ablations":
		co, err := h.AblationCoalescing()
		if err != nil {
			return err
		}
		la, err := h.AblationLaggedSwitching()
		if err != nil {
			return err
		}
		tb, err := h.AblationTmpB()
		if err != nil {
			return err
		}
		fmt.Println("Ablations (VR-DANN-parallel):")
		for _, rows := range [][]experiments.AblationRow{co, la, tb} {
			for _, r := range rows {
				fmt.Printf("  %-24s total=%8.1fms agent=%7.1fms misses=%9d switches=%4d\n",
					r.Label, r.TotalNS/1e6, r.AgentNS/1e6, r.Misses, r.Switches)
			}
		}
		wf, wj, of, oj, err := h.AblationRefinement()
		if err != nil {
			return err
		}
		fmt.Printf("  %-24s F=%.3f J=%.3f\n", "NN-S refinement on", wf, wj)
		fmt.Printf("  %-24s F=%.3f J=%.3f\n", "NN-S refinement off", of, oj)
		ff, fj, qf, qj, err := h.AblationInt8()
		if err != nil {
			return err
		}
		fmt.Printf("  %-24s F=%.3f J=%.3f\n", "NN-S FP32", ff, fj)
		fmt.Printf("  %-24s F=%.3f J=%.3f\n", "NN-S INT8 (NPU deploy)", qf, qj)
	default:
		return fmt.Errorf("unknown figure %q", name)
	}
	return nil
}
