// Command vrdann runs the decoder-assisted recognition pipeline end to end
// on one benchmark sequence and reports accuracy, workload and simulated
// SoC performance.
//
// Usage:
//
//	vrdann [-seq name] [-res WxH] [-frames N] [-task segment|detect]
//	       [-bratio R] [-interval N] [-block 8|16] [-workers N]
//	       [-metrics] [-obsaddr host:port] [-list]
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"vrdann"
	"vrdann/internal/par"
)

func main() {
	seq := flag.String("seq", "cows", "benchmark sequence name (see -list)")
	res := flag.String("res", "96x64", "rendering resolution WxH")
	frames := flag.Int("frames", 48, "number of frames")
	task := flag.String("task", "segment", "recognition task: segment or detect")
	bratio := flag.Float64("bratio", 0, "forced B-frame ratio (0 = auto)")
	interval := flag.Int("interval", 0, "motion search interval n (0 = auto)")
	block := flag.Int("block", 8, "macro-block size (8 = H.265-like, 16 = H.264-like)")
	arith := flag.Bool("arith", false, "use the CABAC-style arithmetic entropy backend")
	deblock := flag.Bool("deblock", false, "enable the in-loop deblocking filter")
	bitrate := flag.Int("bitrate", 0, "rate-control target in bits per frame (0 = constant QP)")
	trace := flag.Bool("trace", false, "print the simulated VR-DANN-parallel execution timeline")
	workers := flag.Int("workers", 1, "pipeline worker count (> 1 overlaps NN-L with B-frame work; results are bit-identical)")
	metrics := flag.Bool("metrics", false, "collect per-stage latency/occupancy metrics and print the summary table")
	obsaddr := flag.String("obsaddr", "", "serve net/http/pprof and an expvar metrics snapshot on this address during the run")
	list := flag.Bool("list", false, "list available sequences and exit")
	flag.Parse()

	if *list {
		fmt.Println("segmentation suite:")
		for _, p := range vrdann.SuiteProfiles {
			fmt.Printf("  %-20s speed=%.1f deform=%.2f\n", p.Name, p.Speed, p.Deform)
		}
		fmt.Println("detection suite:")
		for _, p := range vrdann.DetectionProfiles {
			fmt.Printf("  %-20s speed=%.1f\n", p.Name, p.Speed)
		}
		return
	}

	var w, h int
	if _, err := fmt.Sscanf(*res, "%dx%d", &w, &h); err != nil {
		fail("bad -res %q: %v", *res, err)
	}
	profile, ok := findProfile(*seq)
	if !ok {
		fail("unknown sequence %q (use -list)", *seq)
	}
	vid := vrdann.MakeSequence(profile, w, h, *frames)

	enc := vrdann.DefaultEncoderConfig()
	enc.TargetBRatio = *bratio
	enc.SearchInterval = *interval
	enc.BlockSize = *block
	enc.Arithmetic = *arith
	enc.Deblock = *deblock
	enc.TargetBPF = *bitrate
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		fail("encode: %v", err)
	}
	dec, err := vrdann.DecodeSideInfo(stream.Data)
	if err != nil {
		fail("decode: %v", err)
	}
	raw := vid.Len() * w * h
	fmt.Printf("sequence %q: %d frames %dx%d, %d bytes encoded (%.1fx), B ratio %.0f%%\n",
		vid.Name, vid.Len(), w, h, len(stream.Data), float64(raw)/float64(len(stream.Data)), 100*dec.BRatio())

	var collector *vrdann.Collector
	if *metrics || *obsaddr != "" {
		collector = vrdann.NewCollector()
	}
	if *obsaddr != "" {
		// Expose the live collector (expvar "vrdann" key) plus the standard
		// pprof handlers for the duration of the run.
		expvar.Publish("vrdann", expvar.Func(func() any { return collector.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*obsaddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "vrdann: obs endpoint: %v\n", err)
			}
		}()
		fmt.Printf("observability endpoint at http://%s/debug/vars and /debug/pprof/\n", *obsaddr)
	}

	switch *task {
	case "segment":
		runSegment(vid, enc, stream.Data, *workers, collector)
	case "detect":
		runDetect(vid, stream.Data, *workers, collector)
	default:
		fail("unknown -task %q", *task)
	}
	if *metrics {
		fmt.Printf("\nmetrics (workers: %d effective, %d requested):\n",
			par.EffectiveWorkers(*workers), *workers)
		fmt.Print(collector.Snapshot().Table())
	}

	params := vrdann.DefaultSimParams()
	wk := vrdann.NewWorkload(vid.Name, dec, params, 854, 480)
	fmt.Println("simulated SoC at 854x480:")
	for _, sc := range []vrdann.Scheme{
		vrdann.SchemeOSVOS, vrdann.SchemeFAVOS, vrdann.SchemeDFF,
		vrdann.SchemeVRDANNSerial, vrdann.SchemeVRDANNParallel,
	} {
		r := vrdann.Simulate(params, sc, wk)
		fmt.Printf("  %-18s %6.1f fps  %7.1f mJ  %4.3f TOP/frame  %d switches\n",
			sc, r.FPS(), r.Energy.TotalPJ()/1e9, r.TOPSPerFrame(), r.Switches)
	}
	if *trace {
		fmt.Println("\nVR-DANN-parallel timeline (#: busy):")
		_, tr := vrdann.SimulateTraced(params, vrdann.SchemeVRDANNParallel, wk)
		tr.Render(os.Stdout, 100)
	}
}

func runSegment(vid *vrdann.Video, enc vrdann.EncoderConfig, stream []byte, workers int, c *vrdann.Collector) {
	fmt.Println("training NN-S (2 epochs)...")
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(vid.Frames[0].W, vid.Frames[0].H, 16), enc, vrdann.DefaultTrainConfig())
	if err != nil {
		fail("train NN-S: %v", err)
	}
	nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.05, 3, 1)
	res, err := vrdann.NewPipeline(nnl, nns, vrdann.WithWorkers(workers), vrdann.WithObserver(c)).RunSegmentation(stream)
	if err != nil {
		fail("pipeline: %v", err)
	}
	f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
	fmt.Printf("segmentation: F-Score=%.3f IoU=%.3f | NN-L %d runs, NN-S %d runs, %d MVs (%d bi-ref)\n",
		f, j, res.Stats.NNLRuns, res.Stats.NNSRuns, res.Stats.MVCount, res.Stats.BiRefMVs)
}

func runDetect(vid *vrdann.Video, stream []byte, workers int, c *vrdann.Collector) {
	det := vrdann.NewOracleBoxDetector("detector", vid.Boxes, 1.6, 1)
	res, err := (&vrdann.Pipeline{Workers: workers, Obs: c}).RunDetection(stream, det)
	if err != nil {
		fail("pipeline: %v", err)
	}
	ap := vrdann.EvaluateDetection(res.Detections, vrdann.GTBoxes(vid), 0.5)
	fmt.Printf("detection: AP@0.5=%.3f | detector ran on %d/%d frames\n",
		ap, res.Stats.NNLRuns, vid.Len())
}

func findProfile(name string) (vrdann.SeqProfile, bool) {
	for _, p := range vrdann.SuiteProfiles {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range vrdann.DetectionProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return vrdann.SeqProfile{}, false
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vrdann: "+format+"\n", args...)
	os.Exit(1)
}
