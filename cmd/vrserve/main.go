// Command vrserve runs the multi-stream VR-DANN serving layer as an HTTP
// service: clients open sessions, POST encoded bitstream chunks, and get
// segmentation masks (or per-frame summaries) back, with per-session and
// server-wide metrics, health, expvar and pprof endpoints.
//
//	vrserve -addr :8080 -max-sessions 16 -workers 8 -budget 500ms
//
// With no trained network available, anchors are segmented by the
// deterministic Otsu threshold segmenter; -refine trains the small NN-S on
// the synthetic training set at startup and enables B-frame refinement.
//
// -smoke runs the self-test instead of serving: it starts the server on a
// loopback port, pushes one stream through the load generator and one
// chunk over real HTTP, checks the masks and shuts down cleanly — exit 0
// on success. The Makefile's serve-smoke target wraps exactly this.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"vrdann/internal/adapt"
	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", 16, "admission cap: concurrent sessions")
		queueFrames = flag.Int("queue-frames", 256, "per-session queued-frame bound")
		workers     = flag.Int("workers", 0, "shared worker budget (0 = one per CPU)")
		budget      = flag.Duration("budget", 0, "frame deadline: chunks older than this shed B-frames (0 = never)")
		wait        = flag.Bool("wait", false, "block full-queue submits instead of rejecting")
		refine      = flag.Bool("refine", false, "train NN-S at startup and refine B-frames")
		quant       = flag.Bool("quant", false, "serve NN-S refinement on the int8 tier with residual-driven block skipping (implies -refine)")
		skipThresh  = flag.Int("skip-threshold", 8, "residual energy above which a block is refined under -quant (0 = skip only bit-exact predictions)")
		smoke       = flag.Bool("smoke", false, "run the serving self-test and exit")
		readyFile   = flag.String("ready-file", "", "after binding, write the server's base URL here (multi-process harnesses pass -addr 127.0.0.1:0 and poll this file)")
		batchSize   = flag.Int("batch", 0, "dynamic batching: fuse up to this many NN items across sessions (<=1 disables)")
		batchWait   = flag.Duration("batch-wait", 0, "partial-batch flush deadline (0 = 2ms default)")
		cacheMB     = flag.Int64("cache-mb", 0, "shared content-addressed mask cache budget in MiB: sessions serving bit-identical chunks share anchor/B-frame masks (0 disables)")
		qosMode     = flag.String("qos", "off", "adaptive QoS degradation ladder: on|off. off keeps the pre-ladder binary policy (bit-identical serving); on degrades B-frames full->refine->recon->skip under load, with premium/free session classes (?class= on open)")
		adaptMode   = flag.String("adapt", "off", "online per-stream adaptation: on|off. on fine-tunes a private NN-S clone per session from its own NN-L anchor pseudo-labels, in serving idle gaps only, promoting weights that beat the serving set (implies -refine)")

		maxChunk   = flag.Int64("max-chunk", 64<<20, "chunk POST body cap in bytes (oversize gets 413)")
		brkFails   = flag.Int("breaker-threshold", 3, "consecutive chunk failures that trip a session's circuit breaker (negative disables)")
		brkBackoff = flag.Duration("breaker-backoff", time.Second, "breaker rejection window after a trip (doubles per successive trip)")
		brkTrips   = flag.Int("breaker-max-trips", 3, "breaker trips without a success before the session is force-closed")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxSessions:     *maxSessions,
		MaxQueuedFrames: *queueFrames,
		Workers:         *workers,
		FrameBudget:     *budget,
		MaxChunkBytes:   *maxChunk,
		MaxBatch:        *batchSize,
		MaxBatchWait:    *batchWait,
		CacheBytes:      *cacheMB << 20,

		BreakerThreshold: *brkFails,
		BreakerBackoff:   *brkBackoff,
		BreakerMaxTrips:  *brkTrips,
		NewSegmenter: func(string) segment.Segmenter {
			return &segment.ThresholdSegmenter{CloseRadius: 1}
		},
		Obs: obs.New(),
	}
	if *wait {
		cfg.Policy = serve.Wait
	}
	switch *qosMode {
	case "off":
	case "on":
		cfg.QoS = &qos.Config{} // documented defaults
	default:
		log.Fatalf("vrserve: -qos must be on or off, got %q", *qosMode)
	}
	switch *adaptMode {
	case "off":
	case "on":
		cfg.Adapt = &adapt.Config{} // documented defaults; server wires per session
	default:
		log.Fatalf("vrserve: -adapt must be on or off, got %q", *adaptMode)
	}
	if *refine || *quant || cfg.Adapt != nil {
		log.Printf("training NN-S on the synthetic training set...")
		net, err := core.TrainNNS(video.MakeTrainingSet(96, 64, 16), codec.DefaultConfig(), core.DefaultTrainConfig())
		if err != nil {
			log.Fatalf("train NN-S: %v", err)
		}
		cfg.NNS = net
		if *quant {
			q, err := quantizeNNS(net)
			if err != nil {
				log.Fatalf("quantize NN-S: %v", err)
			}
			cfg.QuantNNS = q
			cfg.SkipResidual = true
			cfg.SkipThreshold = *skipThresh
			log.Printf("NN-S compiled to int8 (%d weight bytes, skip-threshold %d)", q.WeightBytes(), *skipThresh)
		}
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "serve smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("serve smoke: OK")
		return
	}

	srv, err := serve.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Bind before announcing readiness so -addr 127.0.0.1:0 resolves to a
	// concrete port a supervising gateway can dial.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(baseURL(ln.Addr())), 0o644); err != nil {
			log.Fatalf("ready-file: %v", err)
		}
	}
	log.Printf("vrserve listening on %s (sessions<=%d, workers=%d)", ln.Addr(), *maxSessions, cfg.Workers)
	if err := http.Serve(ln, withDebug(srv.Handler())); err != nil {
		log.Fatal(err)
	}
}

// baseURL renders a bound listener address as a dialable base URL,
// substituting loopback for the unspecified host.
func baseURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// quantizeNNS compiles a trained float NN-S to the int8 execution tier.
// The calibration set is synthetic sandwich-shaped input: every sandwich
// channel only ever carries {0, 0.5, 1} (binary anchor masks and the
// 2-bit MV reconstruction), so random draws from that alphabet exercise
// the full activation range the deployed net will see.
func quantizeNNS(net *nn.RefineNet) (*nn.QuantRefineNet, error) {
	rng := rand.New(rand.NewSource(1))
	var calib []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x := tensor.New(3, 48, 64)
		for j := range x.Data {
			x.Data[j] = float32(rng.Intn(3)) / 2
		}
		calib = append(calib, x)
	}
	return nn.NewQuantRefineNet(net, calib)
}

// withDebug mounts expvar and pprof beside the serving API.
func withDebug(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// runSmoke is the end-to-end self-test: one stream through the load
// generator, one chunk over loopback HTTP, masks checked, clean shutdown.
func runSmoke(cfg serve.Config) error {
	v := video.Generate(video.SceneSpec{
		Name: "smoke", W: 64, H: 48, Frames: 16, Seed: 42, Noise: 1.0,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 24, Y: 24,
			VX: 1.5, VY: 0.75, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}

	// The adaptation tier serves from its own leg (8): legs 1–4 pin
	// bit-identical serving against the reference, which Adapt nil keeps by
	// construction.
	adaptTier := cfg.Adapt != nil
	cfg.Adapt = nil

	// Legs 1–4 run the float path; when -quant compiled an int8 NN-S, leg 5
	// below serves it (with residual skipping) from the full config and
	// gates its accuracy against the float reference collected here.
	qcfg := cfg
	cfg.QuantNNS = nil
	cfg.SkipResidual = false
	cfg.SkipThreshold = 0
	// Likewise the QoS ladder: legs 1–4 pin bit-identical serving, which
	// only the binary pre-ladder policy guarantees; leg 7 serves the ladder
	// from its own overloaded server.
	qosLadder := cfg.QoS != nil
	cfg.QoS = nil

	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}

	// Leg 1: the load generator against the server core. The masks double
	// as the reference the batched leg below must reproduce exactly, and
	// the B-frame F-scores against ground truth anchor the quant gate.
	frames := 0
	refMasks := make(map[int][]byte)
	var refMu sync.Mutex
	var refFSum float64
	refFN := 0
	gen := &serve.LoadGen{
		Server:  srv,
		Streams: 1,
		Chunks:  func(int) [][]byte { return [][]byte{st.Data, st.Data} },
		OnResult: func(_ int, r serve.FrameResult) {
			if r.Mask != nil {
				frames++
				refMu.Lock()
				refMasks[r.Display] = append([]byte(nil), r.Mask.Pix...)
				if r.Type == codec.BFrame {
					refFSum += segment.PixelFScore(r.Mask, v.Masks[r.Display%16])
					refFN++
				}
				refMu.Unlock()
			}
		},
	}
	rep, err := gen.Run(context.Background())
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	if rep.Admitted != 1 || rep.Frames != 2*16 {
		return fmt.Errorf("loadgen served %d frames over %d streams, want 32 over 1", rep.Frames, rep.Admitted)
	}
	if frames == 0 {
		return fmt.Errorf("loadgen produced no masks")
	}

	// Leg 2: one chunk over real HTTP.
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := listenLoopback()
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	resp, err := http.Post(base+"/v1/sessions", "", nil)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	var open struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		return err
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/sessions/"+open.ID+"/chunks", "application/octet-stream", bytes.NewReader(st.Data))
	if err != nil {
		return fmt.Errorf("chunk: %w", err)
	}
	var cr struct {
		Frames []struct {
			Display    int  `json:"display"`
			Dropped    bool `json:"dropped"`
			Foreground int  `json:"foreground"`
		} `json:"frames"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return err
	}
	resp.Body.Close()
	if len(cr.Frames) != 16 {
		return fmt.Errorf("HTTP served %d frames, want 16", len(cr.Frames))
	}
	for _, fr := range cr.Frames {
		if !fr.Dropped && fr.Foreground == 0 {
			return fmt.Errorf("frame %d: empty mask", fr.Display)
		}
	}

	// Leg 3: fault recovery over HTTP — a truncated chunk must come back
	// 400, the same session must then serve a clean chunk (quarantine +
	// resync), and the recovery counters must show up in /metrics.
	info, err := codec.ProbeStream(st.Data)
	if err != nil {
		return err
	}
	bad := st.Data[:info.HeaderBytes+(len(st.Data)-info.HeaderBytes)/2]
	resp, err = http.Post(base+"/v1/sessions/"+open.ID+"/chunks", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		return fmt.Errorf("corrupt chunk: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("corrupt chunk: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/sessions/"+open.ID+"/chunks", "application/octet-stream", bytes.NewReader(st.Data))
	if err != nil {
		return fmt.Errorf("chunk after corruption: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chunk after corruption: status %d, want 200 (session did not resync)", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		return err
	}
	resp.Body.Close()
	if metrics.Counters[obs.CounterDecodeErrors.String()] == 0 ||
		metrics.Counters[obs.CounterResyncs.String()] == 0 {
		return fmt.Errorf("recovery counters missing from /metrics: %v", metrics.Counters)
	}

	// Clean shutdown: HTTP first, then the drain.
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(sdCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}

	// Leg 4: multi-session dynamic batching — four streams through one
	// batched server, every mask bit-identical to the leg-1 reference, and
	// the batch telemetry present in the collector.
	bcfg := cfg
	bcfg.MaxBatch = 4
	bcfg.Workers = 0 // let the default rise to MaxBatch
	bcfg.Obs = obs.New()
	bsrv, err := serve.NewServer(bcfg)
	if err != nil {
		return fmt.Errorf("batched server: %w", err)
	}
	var batchErr error
	bgen := &serve.LoadGen{
		Server:  bsrv,
		Streams: 4,
		Chunks:  func(int) [][]byte { return [][]byte{st.Data, st.Data} },
		OnResult: func(stream int, r serve.FrameResult) {
			if r.Mask == nil {
				return
			}
			refMu.Lock()
			want, ok := refMasks[r.Display]
			if batchErr == nil && (!ok || !bytes.Equal(r.Mask.Pix, want)) {
				batchErr = fmt.Errorf("stream %d frame %d: batched mask differs from unbatched reference", stream, r.Display)
			}
			refMu.Unlock()
		},
	}
	brep, err := bgen.Run(context.Background())
	if err != nil {
		return fmt.Errorf("batched loadgen: %w", err)
	}
	if err := bsrv.Close(sdCtx); err != nil {
		return fmt.Errorf("batched drain: %w", err)
	}
	if batchErr != nil {
		return batchErr
	}
	if brep.Admitted != 4 || brep.Frames != 4*2*16 {
		return fmt.Errorf("batched leg served %d frames over %d streams, want 128 over 4", brep.Frames, brep.Admitted)
	}
	bsnap := bcfg.Obs.Snapshot()
	if bsnap.Counters[obs.CounterBatchItems.String()] == 0 {
		return fmt.Errorf("batched leg recorded no batch-items counter: %v", bsnap.Counters)
	}
	if bsnap.Hist(obs.HistBatchOccupancy.String()) == nil {
		return fmt.Errorf("batched leg recorded no batch-occupancy histogram")
	}

	// Leg 5 (only under -quant): the int8 tier with residual-driven
	// skipping. Two streams through a quant+skip server; the mean B-frame
	// F-score against ground truth must stay within 0.5 points of the
	// float reference, and the per-block skip counters must surface over
	// the server-wide /metrics endpoint.
	if qcfg.QuantNNS != nil {
		if refFN == 0 {
			return fmt.Errorf("quant leg has no refined float reference (NN-S missing?)")
		}
		qcfg.Obs = obs.New()
		qsrv, err := serve.NewServer(qcfg)
		if err != nil {
			return fmt.Errorf("quant server: %w", err)
		}
		var qSum float64
		qN := 0
		qgen := &serve.LoadGen{
			Server:  qsrv,
			Streams: 2,
			Chunks:  func(int) [][]byte { return [][]byte{st.Data, st.Data} },
			OnResult: func(_ int, r serve.FrameResult) {
				if r.Mask == nil || r.Type != codec.BFrame {
					return
				}
				refMu.Lock()
				qSum += segment.PixelFScore(r.Mask, v.Masks[r.Display%16])
				qN++
				refMu.Unlock()
			},
		}
		qrep, err := qgen.Run(context.Background())
		if err != nil {
			return fmt.Errorf("quant loadgen: %w", err)
		}
		if qrep.Admitted != 2 || qrep.Frames != 2*2*16 {
			return fmt.Errorf("quant leg served %d frames over %d streams, want 64 over 2", qrep.Frames, qrep.Admitted)
		}

		// The counters must be visible over HTTP, not just in-process.
		qhs := &http.Server{Handler: qsrv.Handler()}
		qln, err := listenLoopback()
		if err != nil {
			return err
		}
		go qhs.Serve(qln)
		resp, err = http.Get("http://" + qln.Addr().String() + "/metrics")
		if err != nil {
			return fmt.Errorf("quant metrics: %w", err)
		}
		var qm struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qm); err != nil {
			return err
		}
		resp.Body.Close()
		qsd, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer qcancel()
		if err := qhs.Shutdown(qsd); err != nil {
			return fmt.Errorf("quant http shutdown: %w", err)
		}
		if err := qsrv.Close(qsd); err != nil {
			return fmt.Errorf("quant drain: %w", err)
		}
		if qm.Counters[obs.CounterQuantBlocksSkipped.String()]+qm.Counters[obs.CounterQuantBlocksDirty.String()] == 0 {
			return fmt.Errorf("quant leg recorded no residual-skip counters in /metrics: %v", qm.Counters)
		}
		fFloat := refFSum / float64(refFN)
		fQuant := qSum / float64(qN)
		if fFloat-fQuant > 0.005 {
			return fmt.Errorf("int8 B-frame F-score %.4f vs float %.4f: delta %.4f exceeds the 0.5-point gate", fQuant, fFloat, fFloat-fQuant)
		}
	}

	// Leg 6 (only under -cache-mb): the shared content cache. Four viewers
	// of one content through a cached server — every mask must equal the
	// leg-1 uncached reference byte-for-byte, and the cache hit counters
	// must surface over the HTTP /metrics endpoint.
	if cfg.CacheBytes > 0 {
		ccfg := cfg
		ccfg.Obs = obs.New()
		csrv, err := serve.NewServer(ccfg)
		if err != nil {
			return fmt.Errorf("cached server: %w", err)
		}
		var cacheErr error
		cgen := &serve.LoadGen{
			Server:  csrv,
			Streams: 4,
			Chunks:  func(int) [][]byte { return [][]byte{st.Data, st.Data} },
			OnResult: func(stream int, r serve.FrameResult) {
				if r.Mask == nil {
					return
				}
				refMu.Lock()
				want, ok := refMasks[r.Display]
				if cacheErr == nil && (!ok || !bytes.Equal(r.Mask.Pix, want)) {
					cacheErr = fmt.Errorf("stream %d frame %d: cache-served mask differs from uncached reference", stream, r.Display)
				}
				refMu.Unlock()
			},
		}
		crep, err := cgen.Run(context.Background())
		if err != nil {
			return fmt.Errorf("cached loadgen: %w", err)
		}
		chs := &http.Server{Handler: csrv.Handler()}
		cln, err := listenLoopback()
		if err != nil {
			return err
		}
		go chs.Serve(cln)
		resp, err = http.Get("http://" + cln.Addr().String() + "/metrics")
		if err != nil {
			return fmt.Errorf("cache metrics: %w", err)
		}
		var cm struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cm); err != nil {
			return err
		}
		resp.Body.Close()
		csd, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer ccancel()
		if err := chs.Shutdown(csd); err != nil {
			return fmt.Errorf("cache http shutdown: %w", err)
		}
		if err := csrv.Close(csd); err != nil {
			return fmt.Errorf("cached drain: %w", err)
		}
		if cacheErr != nil {
			return cacheErr
		}
		if crep.Admitted != 4 || crep.Frames != 4*2*16 {
			return fmt.Errorf("cached leg served %d frames over %d streams, want 128 over 4", crep.Frames, crep.Admitted)
		}
		hits, misses := cm.Counters[obs.CounterCacheHits.String()], cm.Counters[obs.CounterCacheMisses.String()]
		if hits == 0 || misses == 0 {
			return fmt.Errorf("cached leg hit/miss counters missing from /metrics: hits=%d misses=%d", hits, misses)
		}
	}

	// Leg 7 (only under -qos on): the adaptive QoS degradation ladder. An
	// open-loop burst of premium/free streams against tightened thresholds
	// must complete with the cheap rungs (recon/skip) actually fired, the
	// per-step counters visible over /metrics, and the session-open class
	// parameter honored (echoed back, unknown values rejected).
	if qosLadder {
		lcfg := cfg
		lcfg.Obs = obs.New()
		lcfg.Policy = serve.Wait
		// The smoke load is tiny; thresholds this low make it an overload.
		lcfg.QoS = &qos.Config{FullBelow: -1, ReconAt: 1, SkipAt: 4}
		lsrv, err := serve.NewServer(lcfg)
		if err != nil {
			return fmt.Errorf("qos server: %w", err)
		}
		lgen := &serve.LoadGen{
			Server:   lsrv,
			Streams:  3,
			Interval: time.Millisecond,
			Class: func(stream int) qos.Class {
				if stream%2 == 1 {
					return qos.ClassFree
				}
				return qos.ClassPremium
			},
			Chunks: func(int) [][]byte { return [][]byte{st.Data, st.Data, st.Data} },
		}
		lrep, err := lgen.Run(context.Background())
		if err != nil {
			return fmt.Errorf("qos loadgen: %w", err)
		}
		if lrep.Admitted != 3 || lrep.Frames != 3*3*16 {
			return fmt.Errorf("qos leg served %d frames over %d streams, want 144 over 3", lrep.Frames, lrep.Admitted)
		}

		lhs := &http.Server{Handler: lsrv.Handler()}
		lln, err := listenLoopback()
		if err != nil {
			return err
		}
		go lhs.Serve(lln)
		lbase := "http://" + lln.Addr().String()
		resp, err = http.Post(lbase+"/v1/sessions?class=free", "", nil)
		if err != nil {
			return fmt.Errorf("qos open: %w", err)
		}
		var lopen struct {
			ID    string `json:"id"`
			Class string `json:"class"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&lopen); err != nil {
			return err
		}
		resp.Body.Close()
		if lopen.Class != "free" {
			return fmt.Errorf("open ?class=free echoed class %q", lopen.Class)
		}
		resp, err = http.Post(lbase+"/v1/sessions?class=bogus", "", nil)
		if err != nil {
			return fmt.Errorf("qos bogus open: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			return fmt.Errorf("open ?class=bogus: status %d, want 400", resp.StatusCode)
		}
		resp, err = http.Get(lbase + "/metrics")
		if err != nil {
			return fmt.Errorf("qos metrics: %w", err)
		}
		var lm struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&lm); err != nil {
			return err
		}
		resp.Body.Close()
		degraded := lm.Counters[obs.CounterQoSRecon.String()] + lm.Counters[obs.CounterQoSSkip.String()]
		total := degraded + lm.Counters[obs.CounterQoSFull.String()] + lm.Counters[obs.CounterQoSRefine.String()]
		if total == 0 || degraded == 0 {
			return fmt.Errorf("qos ladder counters missing from /metrics (total=%d degraded=%d): %v", total, degraded, lm.Counters)
		}
		lsd, lcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer lcancel()
		if err := lhs.Shutdown(lsd); err != nil {
			return fmt.Errorf("qos http shutdown: %w", err)
		}
		if err := lsrv.Close(lsd); err != nil {
			return fmt.Errorf("qos drain: %w", err)
		}
	}

	// Leg 8 (only under -adapt on): the online adaptation tier. Sub-leg A
	// pins the safety direction — a trainer whose promotion bar is
	// unreachable must not change one served byte versus the leg-1 reference,
	// while its shadow activity (harvested pseudo-labels, fine-tune steps)
	// surfaces over /metrics. Sub-leg B pins the liveness direction — forced
	// promotions must climb the promotions counter and the weights-version
	// gauge while frames keep being served across the swaps.
	if adaptTier && cfg.NNS != nil {
		runAdaptLeg := func(acfg serve.Config, think time.Duration, check func(*serve.LoadGen) error) (*obs.Report, error) {
			asrv, err := serve.NewServer(acfg)
			if err != nil {
				return nil, err
			}
			agen := &serve.LoadGen{
				Server:  asrv,
				Streams: 1,
				Think:   think,
				Chunks:  func(int) [][]byte { return [][]byte{st.Data, st.Data, st.Data} },
			}
			if err := check(agen); err != nil {
				return nil, err
			}
			if _, err := agen.Run(context.Background()); err != nil {
				return nil, err
			}
			// The trainer works in the post-run idle; give its counters a
			// moment to move before reading the HTTP surface.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if acfg.Obs.Snapshot().Counters[obs.CounterAdaptSteps.String()] > 0 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			ahs := &http.Server{Handler: asrv.Handler()}
			aln, err := listenLoopback()
			if err != nil {
				return nil, err
			}
			go ahs.Serve(aln)
			resp, err := http.Get("http://" + aln.Addr().String() + "/metrics")
			if err != nil {
				return nil, fmt.Errorf("adapt metrics: %w", err)
			}
			var am obs.Report
			if err := json.NewDecoder(resp.Body).Decode(&am); err != nil {
				return nil, err
			}
			resp.Body.Close()
			asd, acancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer acancel()
			if err := ahs.Shutdown(asd); err != nil {
				return nil, fmt.Errorf("adapt http shutdown: %w", err)
			}
			if err := asrv.Close(asd); err != nil {
				return nil, fmt.Errorf("adapt drain: %w", err)
			}
			return &am, nil
		}

		// Sub-leg A: promotion bar unreachable (F-scores never exceed 1).
		acfg := cfg
		acfg.Obs = obs.New()
		acfg.Adapt = &adapt.Config{MinImprove: 10}
		var adaptErr error
		am, err := runAdaptLeg(acfg, 50*time.Millisecond, func(g *serve.LoadGen) error {
			g.OnResult = func(stream int, r serve.FrameResult) {
				if r.Mask == nil {
					return
				}
				refMu.Lock()
				// The leg serves one more copy of the chunk than the leg-1
				// reference covers; identical bytes serve identical masks, so
				// the reference wraps at its two-chunk span.
				want, ok := refMasks[r.Display%32]
				if adaptErr == nil && (!ok || !bytes.Equal(r.Mask.Pix, want)) {
					adaptErr = fmt.Errorf("adapt leg A: stream %d frame %d: mask differs from no-adapt reference", stream, r.Display)
				}
				refMu.Unlock()
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("adapt leg A: %w", err)
		}
		if adaptErr != nil {
			return adaptErr
		}
		if n := am.Counters[obs.CounterAdaptExamples.String()]; n == 0 {
			return fmt.Errorf("adapt leg A: no pseudo-labels harvested in /metrics")
		}
		if n := am.Counters[obs.CounterAdaptSteps.String()]; n == 0 {
			return fmt.Errorf("adapt leg A: no shadow fine-tune steps in /metrics")
		}
		if n := am.Counters[obs.CounterAdaptPromotions.String()]; n != 0 {
			return fmt.Errorf("adapt leg A: unreachable promotion bar promoted %d times", n)
		}

		// Sub-leg B: forced promotions (negative margin, frequent evals).
		bcfg := cfg
		bcfg.Obs = obs.New()
		bcfg.Adapt = &adapt.Config{MinImprove: -1, EvalEvery: 2}
		bframes := 0
		bm, err := runAdaptLeg(bcfg, 100*time.Millisecond, func(g *serve.LoadGen) error {
			g.OnResult = func(_ int, r serve.FrameResult) {
				if r.Mask != nil {
					bframes++
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("adapt leg B: %w", err)
		}
		if bframes != 3*16 {
			return fmt.Errorf("adapt leg B: served %d masks across the swaps, want 48", bframes)
		}
		if n := bm.Counters[obs.CounterAdaptPromotions.String()]; n == 0 {
			return fmt.Errorf("adapt leg B: forced promotions never surfaced in /metrics")
		}
		var version int64
		for _, g := range bm.Gauges {
			if g.Name == obs.GaugeAdaptVersion.String() {
				version = g.Current
			}
		}
		if version == 0 {
			return fmt.Errorf("adapt leg B: weights-version gauge never moved: %v", bm.Gauges)
		}
	}
	return nil
}

// listenLoopback binds an ephemeral loopback port for the smoke test.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
