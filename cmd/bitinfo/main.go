// Command bitinfo analyzes a VR-DANN bitstream: GOP structure, per-frame
// sizes and types, motion-vector statistics and coalescing opportunity —
// the developer-facing view of what the agent unit will see. It can read a
// stream from a file or synthesize one on the fly from a named benchmark
// sequence.
//
// Usage:
//
//	bitinfo -file stream.vrd
//	bitinfo -seq cows -frames 24 [-arith] [-deblock] [-halfpel]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vrdann"
)

func main() {
	file := flag.String("file", "", "bitstream file to analyze (overrides -seq)")
	seq := flag.String("seq", "cows", "benchmark sequence to synthesize and encode")
	frames := flag.Int("frames", 24, "frames for the synthesized sequence")
	arith := flag.Bool("arith", false, "encode with the arithmetic backend")
	deblock := flag.Bool("deblock", false, "encode with in-loop deblocking")
	halfpel := flag.Bool("halfpel", false, "encode with half-pel motion compensation")
	flag.Parse()

	var data []byte
	if *file != "" {
		var err error
		data, err = os.ReadFile(*file)
		if err != nil {
			fail("read %s: %v", *file, err)
		}
	} else {
		var profile vrdann.SeqProfile
		ok := false
		for _, p := range vrdann.SuiteProfiles {
			if p.Name == *seq {
				profile, ok = p, true
			}
		}
		if !ok {
			fail("unknown sequence %q", *seq)
		}
		vid := vrdann.MakeSequence(profile, 96, 64, *frames)
		enc := vrdann.DefaultEncoderConfig()
		enc.Arithmetic = *arith
		enc.Deblock = *deblock
		enc.HalfPel = *halfpel
		st, err := vrdann.Encode(vid, enc)
		if err != nil {
			fail("encode: %v", err)
		}
		data = st.Data
	}

	dec, err := vrdann.DecodeSideInfo(data)
	if err != nil {
		fail("decode: %v", err)
	}
	cfg := dec.Cfg
	fmt.Printf("stream: %d bytes, %dx%d, %d frames\n", len(data), dec.W, dec.H, len(dec.Types))
	fmt.Printf("config: block=%dx%d qp=%d search=±%d interval=%d arith=%v deblock=%v halfpel=%v targetbpf=%d\n",
		cfg.BlockSize, cfg.BlockSize, cfg.QP, cfg.SearchRange,
		cfg.EffectiveSearchInterval(), cfg.Arithmetic, cfg.Deblock, cfg.HalfPel, cfg.TargetBPF)

	// GOP string in display order.
	gop := make([]byte, len(dec.Types))
	for i, t := range dec.Types {
		gop[i] = t.String()[0]
	}
	fmt.Printf("GOP:    %s  (B ratio %.0f%%)\n", gop, 100*dec.BRatio())

	fmt.Printf("decode order: %v\n", dec.Order)

	fmt.Println("\nper-frame:")
	fmt.Printf("  %5s %4s %8s %6s %6s %6s\n", "disp", "type", "bits", "blocks", "MVs", "bi-ref")
	var totalMV, totalBi int
	for d, info := range dec.Infos {
		bi := 0
		for _, mv := range info.MVs {
			if mv.BiRef {
				bi++
			}
		}
		totalMV += len(info.MVs)
		totalBi += bi
		fmt.Printf("  %5d %4s %8d %6d %6d %6d\n", d, info.Type, info.Bits, info.Blocks, len(info.MVs), bi)
	}

	// MV statistics across B-frames.
	refCounts := dec.RefFrameCounts()
	sort.Ints(refCounts)
	fmt.Printf("\nmotion vectors: %d total, %d bi-referencing (%.0f%%)\n",
		totalMV, totalBi, pct(totalBi, totalMV))
	if len(refCounts) > 0 {
		fmt.Printf("distinct refs per B-frame: min %d, median %d, max %d\n",
			refCounts[0], refCounts[len(refCounts)/2], refCounts[len(refCounts)-1])
	}

	// Coalescing opportunity, as the agent unit would see it.
	params := vrdann.DefaultSimParams()
	w := vrdann.NewWorkload("stream", dec, params, dec.W, dec.H)
	var mvs, groups int64
	for _, f := range w.Frames {
		mvs += f.NMV
		groups += f.Groups
	}
	if groups > 0 {
		fmt.Printf("coalescing: %d fetches -> %d DRAM groups (%.1fx merge factor)\n",
			mvs, groups, float64(mvs)/float64(groups))
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bitinfo: "+format+"\n", args...)
	os.Exit(1)
}
