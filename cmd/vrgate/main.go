// Command vrgate runs the sharded serving gateway: it consistent-hashes
// stream sessions across a fleet of vrserve backends, proxies the familiar
// session HTTP surface, health-checks every node, and live-migrates
// sessions between nodes on failure, breaker trips and scale events —
// clients see one continuous stream regardless of where it is served.
//
//	vrgate -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Nodes can be added and removed at runtime:
//
//	curl -X POST   localhost:8090/v1/nodes -d '{"url":"http://10.0.0.3:8080"}'
//	curl -X DELETE 'localhost:8090/v1/nodes?url=http://10.0.0.1:8080'
//
// -smoke runs the multi-process self-test instead of serving: it spawns
// two real vrserve processes (-vrserve points at the binary), streams
// sessions through the gateway, kills one backend mid-stream, and checks
// that every session — including the migrated ones — served masks
// byte-identical to a single-node reference with zero client-visible
// errors. The Makefile's gate-smoke target wraps exactly this.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/obs"
	"vrdann/internal/shard"
	"vrdann/internal/video"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "gateway listen address")
		backends     = flag.String("backends", "", "comma-separated vrserve base URLs (required unless -smoke)")
		vnodes       = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		healthEvery  = flag.Duration("health-interval", 2*time.Second, "backend /healthz probe interval")
		proxyTimeout = flag.Duration("proxy-timeout", 30*time.Second, "per-request backend timeout (a hung node counts as failed past this)")
		brkFails     = flag.Int("node-breaker-threshold", 3, "consecutive proxy failures that trip a node's breaker (negative disables)")
		brkBackoff   = flag.Duration("node-breaker-backoff", time.Second, "node unroutable window after a trip (doubles per successive trip)")
		maxAttempts  = flag.Int("max-node-attempts", 3, "placements tried per chunk before giving up with 503")
		smoke        = flag.Bool("smoke", false, "run the multi-process sharding self-test and exit")
		vrserveBin   = flag.String("vrserve", "", "path to a vrserve binary (required with -smoke)")
		qosMode      = flag.String("qos", "off", "with -smoke: spawn backends with the adaptive QoS ladder enabled (on|off). The gateway itself always forwards ?class= on session open")
	)
	flag.Parse()

	if *smoke {
		if *vrserveBin == "" {
			fmt.Fprintln(os.Stderr, "gate smoke: -vrserve <path-to-binary> is required")
			os.Exit(2)
		}
		if *qosMode != "on" && *qosMode != "off" {
			fmt.Fprintf(os.Stderr, "gate smoke: -qos must be on or off, got %q\n", *qosMode)
			os.Exit(2)
		}
		if err := runSmoke(*vrserveBin, *proxyTimeout, *qosMode == "on"); err != nil {
			fmt.Fprintf(os.Stderr, "gate smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("gate smoke: OK")
		return
	}

	if *backends == "" {
		log.Fatal("vrgate: -backends is required (comma-separated vrserve URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
			urls = append(urls, u)
		}
	}
	g, err := shard.NewGateway(shard.Config{
		Backends:             urls,
		VNodes:               *vnodes,
		HealthInterval:       *healthEvery,
		ProxyTimeout:         *proxyTimeout,
		NodeBreakerThreshold: *brkFails,
		NodeBreakerBackoff:   *brkBackoff,
		MaxNodeAttempts:      *maxAttempts,
		Obs:                  obs.New(),
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("vrgate listening on %s over %d backends", *addr, len(urls))
	if err := http.ListenAndServe(*addr, g.Handler()); err != nil {
		log.Fatal(err)
	}
}

// backendProc is one spawned vrserve child in the smoke run.
type backendProc struct {
	cmd *exec.Cmd
	url string
}

// startBackend spawns a vrserve process on an ephemeral loopback port and
// waits for its ready-file to announce the bound URL.
func startBackend(bin, dir, name string, extra ...string) (*backendProc, error) {
	ready := filepath.Join(dir, name+".url")
	args := append([]string{"-addr", "127.0.0.1:0", "-ready-file", ready}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(ready); err == nil && len(b) > 0 {
			return &backendProc{cmd: cmd, url: strings.TrimSpace(string(b))}, nil
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("backend %s never became ready", name)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runSmoke is the end-to-end sharding self-test: two real vrserve
// processes behind a gateway, one killed mid-stream, every session's
// masks byte-identical to a single-node reference.
func runSmoke(vrserveBin string, proxyTimeout time.Duration, qosOn bool) error {
	v := video.Generate(video.SceneSpec{
		Name: "gate-smoke", W: 64, H: 48, Frames: 16, Seed: 42, Noise: 1.0,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 24, Y: 24,
			VX: 1.5, VY: 0.75, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	const chunks = 3
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "vrgate-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Leg 1: single-node reference. One vrserve process, one session, the
	// PGM bytes of each chunk are the gold standard (the default segmenter
	// is deterministic and every chunk decodes from clean state).
	var extra []string
	if qosOn {
		extra = append(extra, "-qos", "on")
	}
	refProc, err := startBackend(vrserveBin, dir, "ref", extra...)
	if err != nil {
		return err
	}
	defer func() { _ = refProc.cmd.Process.Kill() }()
	refCl := &shard.Client{Base: refProc.url}
	refID, err := refCl.Open(ctx)
	if err != nil {
		return fmt.Errorf("reference open: %w", err)
	}
	ref := make([][]byte, chunks)
	for i := range ref {
		if ref[i], err = refCl.ChunkPGM(ctx, refID, st.Data); err != nil {
			return fmt.Errorf("reference chunk %d: %w", i, err)
		}
		if len(ref[i]) == 0 {
			return fmt.Errorf("reference chunk %d: empty PGM body", i)
		}
	}
	_ = refCl.Close(ctx, refID)
	_ = refProc.cmd.Process.Kill()
	_, _ = refProc.cmd.Process.Wait()

	// Leg 2: the fleet — two backends behind the gateway.
	procs := make([]*backendProc, 2)
	for i := range procs {
		p, err := startBackend(vrserveBin, dir, fmt.Sprintf("node%d", i), extra...)
		if err != nil {
			return err
		}
		procs[i] = p
		defer func() { _ = p.cmd.Process.Kill() }()
	}
	g, err := shard.NewGateway(shard.Config{
		Backends:     []string{procs[0].url, procs[1].url},
		ProxyTimeout: proxyTimeout,
		Obs:          obs.New(),
	})
	if err != nil {
		return err
	}
	defer func() {
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = g.Close(cctx)
	}()
	if err := g.WaitHealthy(ctx, 2, 10*time.Second); err != nil {
		return err
	}
	gs := &http.Server{Handler: g.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go gs.Serve(ln)
	defer gs.Close()
	cl := &shard.Client{Base: "http://" + ln.Addr().String()}

	// Enough sessions that both backends hold some.
	const sessions = 8
	ids := make([]string, sessions)
	for i := range ids {
		if ids[i], err = cl.Open(ctx); err != nil {
			return fmt.Errorf("open %d: %w", i, err)
		}
	}
	placed := make(map[string]string, sessions)
	for _, id := range ids {
		got, err := cl.ChunkPGM(ctx, id, st.Data)
		if err != nil {
			return fmt.Errorf("session %s chunk 0: %w", id, err)
		}
		if !bytes.Equal(got, ref[0]) {
			return fmt.Errorf("session %s chunk 0: masks differ from single-node reference", id)
		}
		placed[id] = g.Placement(id)
	}
	byNode := map[string]int{}
	for _, n := range placed {
		byNode[n]++
	}
	if len(byNode) != 2 {
		return fmt.Errorf("sessions all landed on one backend: %v", byNode)
	}

	// QoS class passthrough: a session opened with ?class=free must echo the
	// class (the gateway forwards it to whichever backend serves the session,
	// including across migrations) and still serve reference-identical masks —
	// class affects degradation under load, never arithmetic.
	resp, err := http.Post(cl.Base+"/v1/sessions?class=free", "", nil)
	if err != nil {
		return fmt.Errorf("open ?class=free: %w", err)
	}
	var fopen struct {
		ID    string `json:"id"`
		Class string `json:"class"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fopen); err != nil {
		return err
	}
	resp.Body.Close()
	if fopen.Class != "free" {
		return fmt.Errorf("open ?class=free echoed class %q", fopen.Class)
	}
	got, err := cl.ChunkPGM(ctx, fopen.ID, st.Data)
	if err != nil {
		return fmt.Errorf("free-class session chunk: %w", err)
	}
	if !bytes.Equal(got, ref[0]) {
		return fmt.Errorf("free-class session: masks differ from single-node reference")
	}
	if err := cl.Close(ctx, fopen.ID); err != nil {
		return fmt.Errorf("close free-class session: %w", err)
	}
	resp, err = http.Post(cl.Base+"/v1/sessions?class=bogus", "", nil)
	if err != nil {
		return fmt.Errorf("open ?class=bogus: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("open ?class=bogus: status %d, want 400", resp.StatusCode)
	}

	// Leg 3: kill one backend mid-stream. Every session must keep serving
	// through the gateway with zero visible errors; sessions from the dead
	// node resume at the next chunk header, byte-identical to the reference.
	victim := g.Placement(ids[0])
	for _, p := range procs {
		if p.url == victim {
			if err := p.cmd.Process.Kill(); err != nil {
				return fmt.Errorf("kill backend: %w", err)
			}
			_, _ = p.cmd.Process.Wait()
		}
	}
	for c := 1; c < chunks; c++ {
		for _, id := range ids {
			got, err := cl.ChunkPGM(ctx, id, st.Data)
			if err != nil {
				return fmt.Errorf("session %s chunk %d after kill: %w", id, c, err)
			}
			if !bytes.Equal(got, ref[c]) {
				return fmt.Errorf("session %s chunk %d: migrated masks differ from reference", id, c)
			}
		}
	}
	migrated := 0
	for _, id := range ids {
		if placed[id] == victim {
			migrated++
			if g.Migrations(id) == 0 {
				return fmt.Errorf("session %s was on the killed backend but reports no migration", id)
			}
		}
	}
	if migrated == 0 {
		return fmt.Errorf("killed backend held no sessions")
	}

	// Leg 4: the migration and failure counters surface over /metrics.
	mb, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("gateway metrics: %w", err)
	}
	var met struct {
		Gateway struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"gateway"`
		Nodes []shard.NodeStatus `json:"nodes"`
	}
	if err := json.Unmarshal(mb, &met); err != nil {
		return fmt.Errorf("gateway metrics JSON: %w", err)
	}
	if met.Gateway.Counters[obs.CounterMigrations.String()] < int64(migrated) {
		return fmt.Errorf("metrics migrations counter %d, want >= %d",
			met.Gateway.Counters[obs.CounterMigrations.String()], migrated)
	}
	if met.Gateway.Counters[obs.CounterProxyErrors.String()] == 0 {
		return fmt.Errorf("metrics proxy-errors counter is zero after a kill")
	}

	for _, id := range ids {
		if err := cl.Close(ctx, id); err != nil {
			return fmt.Errorf("close %s: %w", id, err)
		}
	}
	fmt.Printf("gate smoke: %d sessions, %d migrated off killed backend, masks bit-identical across %d chunks\n",
		sessions, migrated, chunks)
	return nil
}
