// Package serve is the multi-stream serving layer over the VR-DANN
// pipeline: the software counterpart of one accelerator board multiplexing
// many camera feeds. The paper's agent unit (Sec IV) keeps a single stream
// real-time; decoder-assisted analytics only pays for itself when many
// concurrent streams share that unit, so this package adds the three things
// a shared accelerator needs and the single-stream pipeline does not have —
// a session registry (per-stream decoder + pipeline state with the pruned
// reference window), admission control (bounded concurrent streams and
// per-stream frame queues with an explicit reject-vs-wait policy), and a
// shared scheduler that multiplexes every admitted session onto one bounded
// worker budget, one frame per dispatch, so streams progress round-robin
// and no session can starve the others.
//
// Serving is built on core.StreamEngine, the same frame-step code the
// serial single-stream loop runs, so a mask served under full multi-stream
// load is bit-identical to the same frame in a standalone run — the
// serving layer adds scheduling, never arithmetic.
//
// Under overload the scheduler sheds load the way the paper's deadline
// analysis (Sec VI, the 33 ms frame budget) prescribes: B-frames past
// their per-chunk budget are dropped (their bitstream side info is still
// consumed; the entropy coder must advance), while I/P anchors are always
// computed — they are the references every later frame depends on.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vrdann/internal/adapt"
	"vrdann/internal/batch"
	"vrdann/internal/contentcache"
	"vrdann/internal/core"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/par"
	"vrdann/internal/qos"
	"vrdann/internal/segment"
	"vrdann/internal/tensor"
)

// Admission and lifecycle errors.
var (
	// ErrAdmission rejects a new session: the server is at MaxSessions.
	ErrAdmission = errors.New("serve: session limit reached")
	// ErrQueueFull rejects a chunk under the Reject policy: the session's
	// frame queue cannot take it.
	ErrQueueFull = errors.New("serve: session frame queue full")
	// ErrServerClosed rejects work on a draining or closed server.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrSessionClosed rejects chunks submitted to a closed session.
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrSessionBroken rejects chunks while a session's circuit breaker is
	// open: too many consecutive chunk failures, back off and retry.
	ErrSessionBroken = errors.New("serve: session circuit breaker open")
)

// OverflowPolicy selects what Submit does when a session's frame queue is
// full.
type OverflowPolicy int

const (
	// Reject fails the Submit with ErrQueueFull immediately (shed at the
	// edge; the caller decides whether to retry).
	Reject OverflowPolicy = iota
	// Wait blocks the Submit until queue space frees or its context fires
	// (backpressure propagates to the producer).
	Wait
)

// Config parameterizes a Server.
type Config struct {
	// MaxSessions bounds concurrently admitted sessions; Open past the
	// bound returns ErrAdmission. Default 16.
	MaxSessions int
	// MaxQueuedFrames bounds, per session, the frames admitted but not yet
	// served. A chunk that would exceed the bound is rejected or waits per
	// Policy — except when the session is empty, where one oversized chunk
	// is always accepted (otherwise a chunk larger than the bound could
	// never be served). Default 256.
	MaxQueuedFrames int
	// Workers is the shared worker budget every session is multiplexed
	// onto. Default: one per available CPU.
	Workers int
	// Policy selects reject-vs-wait when a session queue is full.
	Policy OverflowPolicy
	// FrameBudget is the deadline-based drop policy: when a chunk has been
	// in the server longer than this, its remaining B-frames are dropped
	// (anchors are always computed). Zero disables dropping — the
	// offline/archival mode.
	FrameBudget time.Duration
	// NewSegmenter builds the NN-L for one session. Required. Called once
	// per Open with the session id; per-session segmenters let every
	// stream carry its own model state.
	NewSegmenter func(id string) segment.Segmenter
	// NNS, when non-nil, enables NN-S refinement of reconstructed B-frames.
	// Each session clones it, so one trained network serves all streams.
	NNS *nn.RefineNet
	// QuantNNS, when non-nil, serves NN-S refinement on the int8 execution
	// tier (nn.QuantRefineNet) instead of the float NNS. Accuracy is gated
	// on F-score against the float path, not bit identity.
	QuantNNS *nn.QuantRefineNet
	// SkipResidual enables residual-driven sparsity: B-frames whose decoded
	// residual energy is clean everywhere reuse the MV reconstruction, and
	// partially dirty frames refine only the dirty rectangle. See
	// core.Pipeline.SkipResidual.
	SkipResidual bool
	// SkipThreshold is the per-block residual-energy cutoff of SkipResidual.
	SkipThreshold int
	// Obs, when non-nil, aggregates server-wide counters and gauges
	// (sessions, pending frames, chunks, drops, rejects). Each session
	// additionally always has its own collector.
	Obs *obs.Collector
	// BreakerThreshold is the per-session circuit breaker: this many
	// consecutive failed chunks (malformed input or internal error;
	// cancellations never count) trip the breaker, which rejects submits
	// with ErrSessionBroken for a backoff window. 0 selects the default
	// (3); negative disables the breaker.
	BreakerThreshold int
	// BreakerBackoff is the rejection window after the first trip; it
	// doubles on each successive trip without an intervening success.
	// Default 1s.
	BreakerBackoff time.Duration
	// BreakerMaxTrips force-closes the session (draining, queued chunks
	// failed with ErrSessionBroken) when the breaker trips more than this
	// many times without an intervening success. Default 3.
	BreakerMaxTrips int
	// MaxChunkBytes bounds one HTTP-posted chunk body; oversized posts get
	// 413. A DoS guard, not a protocol limit. Default 64 MiB.
	MaxChunkBytes int64
	// MaxBatch enables the cross-session dynamic batching engine: NN work
	// (NN-L anchor segmentation, NN-S refinement) from all sessions is
	// coalesced into fused batched executions of up to MaxBatch items.
	// Values <= 1 keep the unbatched per-session path (the default). When
	// Workers is left at its default it is raised to at least MaxBatch —
	// a batch can only fill if that many workers can block in it at once —
	// and an explicit Workers caps MaxBatch instead.
	MaxBatch int
	// MaxBatchWait bounds how long a partial batch waits for batch-mates
	// before flushing (tail-latency bound at low concurrency). Default 2ms.
	MaxBatchWait time.Duration
	// CacheBytes enables the shared content-addressed mask cache with this
	// byte budget: masks computed by the first session on a piece of content
	// are served to every later session submitting bit-identical chunks, so
	// fleet cost approaches O(distinct contents) instead of O(sessions).
	// Requires NewSegmenter to be content-deterministic — sessions serving
	// equal bytes must receive segmenters that compute equal masks (true of
	// ThresholdSegmenter always, and of per-content oracles). Zero disables
	// the cache (the default).
	CacheBytes int64
	// Cache, when non-nil, supplies an externally constructed cache instead
	// of CacheBytes — e.g. one cache shared by several servers. The caller
	// must then ensure all sharing servers run identical models (the model
	// fingerprint covers segmenter names and skip config, not weights).
	Cache *contentcache.Cache
	// QoS, when non-nil, enables the adaptive degradation ladder
	// (internal/qos): each B-frame is served on a rung chosen from queue
	// depth, batch occupancy and the session's class, and a closed loop
	// stretches full-rung promotion spacing and widens the effective batch
	// width as load rises. Nil keeps the pre-ladder policy — binary
	// FrameBudget shedding only, bit-identical serving.
	QoS *qos.Config
	// Adapt, when non-nil (and NNS is set), enables the online per-stream
	// adaptation tier (internal/adapt): every session gets a background
	// trainer that fine-tunes a private NN-S clone on pseudo-labels
	// harvested from its own NN-L anchor masks, promoting improved weights
	// at chunk boundaries and rolling back on drift regression. The value is
	// a tuning template: the server fills Base, Idle, Quantize and the
	// collectors per session. Nil keeps serving bit-identical to a server
	// without the tier.
	Adapt *adapt.Config
}

// withDefaults resolves unset fields.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.MaxQueuedFrames <= 0 {
		c.MaxQueuedFrames = 256
	}
	if c.Workers <= 0 {
		c.Workers = par.EffectiveWorkers(runtime.GOMAXPROCS(0))
		// Workers blocked in a batch cost no CPU; without this floor every
		// flush on a small machine would be a timer flush of a partial batch.
		if c.MaxBatch > c.Workers {
			c.Workers = c.MaxBatch
		}
	}
	if c.MaxBatch > c.Workers {
		c.MaxBatch = c.Workers
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = time.Second
	}
	if c.BreakerMaxTrips <= 0 {
		c.BreakerMaxTrips = 3
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 64 << 20
	}
	return c
}

// Server multiplexes many video-stream sessions onto one bounded worker
// pool. All methods are safe for concurrent use.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// runq carries sessions with work to the workers. Capacity MaxSessions
	// plus the one-entry-per-session invariant (Session.queued) makes every
	// send non-blocking under srv.mu.
	runq chan *Session
	// batcher, when non-nil, is the shared cross-session dynamic batching
	// engine all NN work is routed through (cfg.MaxBatch > 1).
	batcher *batch.Engine
	// cache, when non-nil, is the shared content-addressed mask cache
	// (cfg.Cache, or built from cfg.CacheBytes).
	cache *contentcache.Cache
	// cacheWaiters counts workers blocked in a cache fill wait. They hold a
	// session's running flag but cannot produce batch items, so the
	// batcher's stall detection must discount them.
	cacheWaiters atomic.Int64
	// qosCtl, when non-nil, is the QoS ladder controller (cfg.QoS).
	qosCtl *qos.Controller
	// pendingFrames tracks frames admitted but not yet resolved across all
	// sessions — the queue-depth input the ladder reads per frame, kept as
	// an atomic so the selector never takes srv.mu.
	pendingFrames atomic.Int64
	// adaptCalib is the fixed sandwich-alphabet calibration adapted weights
	// are re-quantized against (built once when Adapt and QuantNNS are both
	// configured, so every promotion compiles on the same input grid).
	adaptCalib []*tensor.Tensor

	mu       sync.Mutex
	cond     *sync.Cond // work retired, queue space freed, session retired
	sessions map[string]*Session
	nextID   int
	draining bool
	// quiesced refuses new sessions while continuing to serve admitted
	// ones — the scale-down drain hook a gateway uses to bleed a node dry
	// before removing it.
	quiesced bool
}

// NewServer starts a server and its worker pool.
func NewServer(cfg Config) (*Server, error) {
	if cfg.NewSegmenter == nil {
		return nil, errors.New("serve: Config.NewSegmenter is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		runq:     make(chan *Session, cfg.MaxSessions),
		sessions: make(map[string]*Session),
	}
	srv.cond = sync.NewCond(&srv.mu)
	if cfg.QoS != nil {
		srv.qosCtl = qos.NewController(*cfg.QoS)
	}
	srv.cache = cfg.Cache
	if srv.cache == nil && cfg.CacheBytes > 0 {
		srv.cache = contentcache.New(contentcache.Config{MaxBytes: cfg.CacheBytes, Obs: cfg.Obs})
	}
	if cfg.Adapt != nil && cfg.QuantNNS != nil {
		// One calibration set for every session's re-quantizations: promoted
		// weights compile against the same sandwich-alphabet grid the serving
		// tier calibrates the base model on, so the only variable across a
		// promotion is the weights themselves.
		srv.adaptCalib = adapt.SandwichCalibration(64, 48, 4, 1)
	}
	if cfg.MaxBatch > 1 {
		srv.batcher = batch.New(batch.Config{
			MaxBatch: cfg.MaxBatch,
			MaxWait:  cfg.MaxBatchWait,
			NNS:      cfg.NNS,
			QuantNNS: cfg.QuantNNS,
			Obs:      cfg.Obs,
			// Producer-stall detection: every queued batch item is a worker
			// blocked in the engine. When all busy workers are blocked and no
			// session is waiting for a worker, no further item can arrive —
			// flush now instead of idling out MaxWait. Races only flush a
			// batch early; the deadline timer remains the backstop.
			Stalled: func(pending int) bool {
				if len(srv.runq) > 0 {
					return false
				}
				srv.mu.Lock()
				busy := 0
				for _, s := range srv.sessions {
					if s.running {
						busy++
					}
				}
				srv.mu.Unlock()
				// Workers blocked waiting on a cache fill are busy but cannot
				// enqueue batch items until the filler's step (which may be
				// the batch item we are deciding about) completes.
				busy -= int(srv.cacheWaiters.Load())
				return pending >= busy && len(srv.runq) == 0
			},
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		srv.wg.Add(1)
		go srv.worker()
	}
	return srv, nil
}

// Open admits a new premium-class session, or returns ErrAdmission at the
// session cap and ErrServerClosed on a draining server.
func (srv *Server) Open() (*Session, error) { return srv.OpenClass(qos.ClassPremium) }

// OpenClass is Open with an explicit QoS class. The class only matters on a
// server with the ladder enabled (Config.QoS), where free sessions degrade
// at a fraction of the pressure premium ones tolerate; elsewhere it is
// recorded but inert.
func (srv *Server) OpenClass(class qos.Class) (*Session, error) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.draining || srv.quiesced {
		return nil, ErrServerClosed
	}
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.cfg.Obs.Count(obs.CounterRejects, 1)
		return nil, ErrAdmission
	}
	srv.nextID++
	id := fmt.Sprintf("s%04d", srv.nextID)
	col := obs.New()
	s := &Session{ID: id, srv: srv, obs: col, state: stateActive, class: class}
	s.pipe = &core.StreamingPipeline{
		NNL:           srv.cfg.NewSegmenter(id),
		NNS:           srv.cfg.NNS,
		Quant:         srv.cfg.QuantNNS,
		Refine:        srv.cfg.NNS != nil || srv.cfg.QuantNNS != nil,
		SkipResidual:  srv.cfg.SkipResidual,
		SkipThreshold: srv.cfg.SkipThreshold,
		Workers:       1, // the shared pool is the parallelism; engines stay serial
		Obs:           col,
	}
	if srv.cache != nil {
		// The model fingerprint keys cache entries alongside the chunk
		// digest: segmenter identity plus everything in this server's config
		// that shapes a mask. Config is per-server, so within one server
		// only the segmenter name varies.
		s.modelFP = contentcache.Fingerprint(
			s.pipe.NNL.Name(),
			fmt.Sprintf("nns=%t quant=%t skip=%t thr=%d",
				srv.cfg.NNS != nil, srv.cfg.QuantNNS != nil,
				srv.cfg.SkipResidual, srv.cfg.SkipThreshold),
		)
		s.pipe.MaskSource = s.cachedMask
	}
	if srv.cfg.Adapt != nil && srv.cfg.NNS != nil {
		// Each session adapts privately: its own trainer, its own pseudo-label
		// ring, its own weight versions. The configured value is a template;
		// the serving-side hooks are filled here.
		ac := *srv.cfg.Adapt
		ac.Base = srv.cfg.NNS
		ac.Idle = srv.trainerIdle
		ac.Obs = col
		ac.ServerObs = srv.cfg.Obs
		if srv.cfg.QuantNNS != nil && ac.Quantize == nil {
			ac.Quantize = func(n *nn.RefineNet) (*nn.QuantRefineNet, error) {
				return nn.NewQuantRefineNet(n, srv.adaptCalib)
			}
		}
		ad, err := adapt.New(ac)
		if err != nil {
			return nil, fmt.Errorf("serve: session adapter: %w", err)
		}
		s.adapter = ad
		if srv.cache != nil {
			// Cache isolation from the first frame: the session's weights can
			// change underneath a fill, so even at version 0 it must key its
			// entries away from the base model's (and every other adapting
			// session's) keyspace.
			s.baseFP = s.modelFP
			s.modelFP = contentcache.AdaptedFingerprint(s.baseFP, id, 0)
		}
	}
	srv.sessions[id] = s
	srv.cfg.Obs.GaugeSet(obs.GaugeSessions, int64(len(srv.sessions)))
	return s, nil
}

// Session looks up an admitted session by id.
func (srv *Server) Session(id string) (*Session, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	s, ok := srv.sessions[id]
	return s, ok
}

// SessionCount reports the number of admitted sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// Obs returns the server-wide collector (nil if none was configured).
func (srv *Server) Obs() *obs.Collector { return srv.cfg.Obs }

// LoadInfo is the JSON load report behind /healthz: enough signal for a
// gateway to health-score a node (place new sessions, drain a loaded or
// flapping one) instead of treating health as a binary liveness bit.
type LoadInfo struct {
	// Status is "ok" on a serving node and "draining" on one that refuses
	// new sessions (quiesced or closing).
	Status string `json:"status"`
	// Sessions is the number of admitted sessions.
	Sessions int `json:"sessions"`
	// MaxSessions is the admission cap.
	MaxSessions int `json:"maxSessions"`
	// AdmissionHeadroom is how many more sessions the node would admit
	// right now (0 on a draining node regardless of occupancy).
	AdmissionHeadroom int `json:"admissionHeadroom"`
	// PendingFrames is the queue depth: frames admitted but not yet served,
	// summed over all sessions.
	PendingFrames int `json:"pendingFrames"`
	// BreakerOpen counts sessions whose circuit breaker is currently open —
	// a flapping-node signal at session granularity.
	BreakerOpen int `json:"breakerOpen"`
	// Workers is the node's shared worker budget.
	Workers int `json:"workers"`
	// Draining is true when the node refuses new sessions.
	Draining bool `json:"draining"`
}

// Load snapshots the server's load report.
func (srv *Server) Load() LoadInfo {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	li := LoadInfo{
		Status:      "ok",
		Sessions:    len(srv.sessions),
		MaxSessions: srv.cfg.MaxSessions,
		Workers:     srv.cfg.Workers,
		Draining:    srv.draining || srv.quiesced,
	}
	now := time.Now()
	for _, s := range srv.sessions {
		li.PendingFrames += s.pending
		if s.brokenUntil.After(now) {
			li.BreakerOpen++
		}
	}
	if !li.Draining {
		if li.AdmissionHeadroom = li.MaxSessions - li.Sessions; li.AdmissionHeadroom < 0 {
			li.AdmissionHeadroom = 0
		}
	} else {
		li.Status = "draining"
	}
	return li
}

// trainerIdle is the adaptation tier's idleness gate: true only when no
// frame is admitted-but-unresolved anywhere and no session is waiting for a
// worker — the same signals the batcher's Stalled hook reads. Trainers
// re-check it before every fine-tune step, so serving work arriving
// mid-burst stops training at the next step boundary.
func (srv *Server) trainerIdle() bool {
	return srv.pendingFrames.Load() == 0 && len(srv.runq) == 0
}

// qosLoad snapshots the ladder's load inputs lock-free: server-wide queue
// depth normalized by the worker budget, plus the batcher's fill fraction.
// Read on every B-frame, so it must stay cheap.
func (srv *Server) qosLoad() qos.Load {
	l := qos.Load{QueueDepth: int(srv.pendingFrames.Load()), Workers: srv.cfg.Workers}
	if srv.batcher != nil {
		l.Occupancy = srv.batcher.Occupancy()
	}
	return l
}

// Quiesce puts the server in scale-down drain: Open returns ErrServerClosed
// while already-admitted sessions keep being served, and the load report
// flips to draining so a gateway stops placing sessions here. Resume undoes
// it; Close supersedes it.
func (srv *Server) Quiesce() {
	srv.mu.Lock()
	srv.quiesced = true
	srv.mu.Unlock()
}

// Resume lifts a Quiesce, re-admitting new sessions (no-op on a closing
// server — Close is one-way).
func (srv *Server) Resume() {
	srv.mu.Lock()
	srv.quiesced = false
	srv.mu.Unlock()
}

// Close drains the server: no new sessions or chunks are admitted, every
// queued chunk is served, sessions retire as they empty, and the worker
// pool exits. If ctx fires first, in-flight work is cancelled — pending
// chunks fail with the context error, the drain still completes cleanly
// (no goroutine outlives Close), and ctx.Err() is returned.
func (srv *Server) Close(ctx context.Context) error {
	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		return ErrServerClosed
	}
	srv.draining = true
	for _, s := range srv.sessions {
		if s.state == stateActive {
			s.state = stateDraining
		}
		s.maybeRetireLocked()
	}
	// A fired deadline converts the graceful drain into a forced one: the
	// server context makes every remaining engine step fail fast, chunks
	// complete exceptionally, sessions retire, and the wait below returns.
	stopForce := context.AfterFunc(ctx, func() {
		srv.cancel()
		srv.mu.Lock()
		srv.cond.Broadcast()
		srv.mu.Unlock()
	})
	defer stopForce()
	for len(srv.sessions) > 0 {
		srv.cond.Wait()
	}
	srv.mu.Unlock()
	// No sessions remain and none can be admitted, so nothing can enqueue:
	// closing the run queue releases the workers.
	close(srv.runq)
	srv.wg.Wait()
	if srv.batcher != nil {
		// All workers have exited, so nothing can submit: this only flushes
		// stragglers and fences off the engine.
		srv.batcher.Close()
	}
	srv.cancel()
	return ctx.Err()
}
