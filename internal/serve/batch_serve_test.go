package serve

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vrdann/internal/nn"
	"vrdann/internal/obs"
)

// TestBatchedMasksBitIdenticalToSerial is the differential determinism
// gate of the dynamic batching engine: for every batch size and several
// worker budgets, masks served through the shared batcher must equal the
// standalone serial run byte-for-byte — batching adds scheduling, never
// arithmetic. Runs under -race via the Makefile matrix.
func TestBatchedMasksBitIdenticalToSerial(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	ref := serialReference(t, v, chunk, nns)

	cases := []struct {
		name     string
		maxBatch int
		workers  int // 0 = default (raised to MaxBatch)
		streams  int
	}{
		{"batch1-bypass", 1, 2, 4},
		{"batch2", 2, 0, 4},
		{"batch4", 4, 4, 6},
		{"batch8", 8, 0, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serverObs := obs.New()
			srv, err := NewServer(Config{
				MaxSessions:  tc.streams,
				Workers:      tc.workers,
				MaxBatch:     tc.maxBatch,
				MaxBatchWait: time.Millisecond,
				NewSegmenter: oracleFor(v),
				NNS:          nns,
				Obs:          serverObs,
			})
			if err != nil {
				t.Fatal(err)
			}
			results := make(map[int][][]FrameResult)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := 0; i < tc.streams; i++ {
				s, err := srv.Open()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, s *Session) {
					defer wg.Done()
					defer s.Close()
					for c := 0; c < 2; c++ {
						ck, err := s.Submit(context.Background(), chunk)
						if err != nil {
							t.Errorf("stream %d chunk %d: %v", i, c, err)
							return
						}
						res, err := ck.Wait(context.Background())
						if err != nil {
							t.Errorf("stream %d chunk %d: %v", i, c, err)
							return
						}
						mu.Lock()
						results[i] = append(results[i], res)
						mu.Unlock()
					}
				}(i, s)
			}
			wg.Wait()
			if err := srv.Close(context.Background()); err != nil {
				t.Fatal(err)
			}

			for i := 0; i < tc.streams; i++ {
				if len(results[i]) != 2 {
					t.Fatalf("stream %d served %d chunks, want 2", i, len(results[i]))
				}
				for c, res := range results[i] {
					if len(res) != len(ref) {
						t.Fatalf("stream %d chunk %d: %d frames, want %d", i, c, len(res), len(ref))
					}
					for j, fr := range res {
						want := ref[j]
						if fr.Display != c*len(ref)+want.Display || fr.Type != want.Type || fr.Dropped {
							t.Fatalf("stream %d chunk %d frame %d: sequencing diverges", i, c, j)
						}
						if !bytes.Equal(fr.Mask.Pix, want.Mask.Pix) {
							t.Fatalf("stream %d chunk %d frame %d: batched mask differs from serial (MaxBatch=%d)",
								i, c, j, tc.maxBatch)
						}
					}
				}
			}

			snap := serverObs.Snapshot()
			items := snap.Counters[obs.CounterBatchItems.String()]
			if tc.maxBatch <= 1 {
				if items != 0 {
					t.Fatalf("MaxBatch=1 must bypass the batcher, saw %d batched items", items)
				}
				return
			}
			wantItems := int64(tc.streams * 2 * 18)
			if items != wantItems {
				t.Fatalf("batch-items = %d, want %d (every NN step batched)", items, wantItems)
			}
			occ := snap.Hist("batch-occupancy")
			if occ == nil || occ.Count == 0 {
				t.Fatal("no batch-occupancy histogram recorded")
			}
			if occ.Max > int64(tc.maxBatch) {
				t.Fatalf("occupancy max %d exceeds MaxBatch %d", occ.Max, tc.maxBatch)
			}
			flushes := snap.Counters[obs.CounterBatchFlushFull.String()] +
				snap.Counters[obs.CounterBatchFlushTimer.String()] +
				snap.Counters[obs.CounterBatchFlushStall.String()] +
				snap.Counters[obs.CounterBatchFlushDrain.String()]
			if flushes == 0 {
				t.Fatal("no flush-reason counters recorded")
			}
		})
	}
}

// TestBatchWorkerSizing pins the Config interplay: defaulted Workers rise
// to MaxBatch, explicit Workers cap MaxBatch, and MaxBatch<=1 builds no
// batcher.
func TestBatchWorkerSizing(t *testing.T) {
	c := Config{MaxBatch: 8}.withDefaults()
	if c.Workers < 8 {
		t.Fatalf("defaulted Workers = %d, want >= MaxBatch 8", c.Workers)
	}
	c = Config{MaxBatch: 8, Workers: 2}.withDefaults()
	if c.MaxBatch != 2 {
		t.Fatalf("explicit Workers=2 left MaxBatch=%d, want clamp to 2", c.MaxBatch)
	}
	srv, err := NewServer(Config{NewSegmenter: oracleFor(makeTestVideo(2, 1)), MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srv.batcher != nil {
		t.Fatal("MaxBatch=1 built a batcher")
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
