package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/contentcache"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// contentVideo builds one distinct piece of content per index: same
// geometry, different motion, so chunk bytes, digests and ground-truth
// masks all differ between contents.
func contentVideo(c int) *video.Video {
	return makeTestVideo(18, 1.5+float64(c))
}

// contentSegmenters returns a NewSegmenter that assigns sessions to
// contents by open order: session k serves content k mod contents. The
// oracle label depends only on the content, so sessions serving equal
// bytes carry equal model fingerprints — the cache-sharing contract.
func contentSegmenters(vids []*video.Video) func(id string) segment.Segmenter {
	var opened int
	var mu sync.Mutex
	return func(string) segment.Segmenter {
		mu.Lock()
		c := opened % len(vids)
		opened++
		mu.Unlock()
		return segment.NewOracle(fmt.Sprintf("oracle-c%d", c), vids[c].Masks, 0.05, 2, 7)
	}
}

// TestCacheServedMasksBitIdentical is the tentpole differential test:
// across {1,2,4,8} viewers per content and {1,2} distinct contents, every
// frame served through the content cache is byte-identical to a standalone
// serial run, and the single-flight accounting is exact — one miss per
// distinct (content, frame) key, a hit for every other serve.
func TestCacheServedMasksBitIdentical(t *testing.T) {
	const frames, chunksPer = 18, 2
	for _, contents := range []int{1, 2} {
		for _, viewers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%dcontents-%dviewers", contents, viewers), func(t *testing.T) {
				nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
				vids := make([]*video.Video, contents)
				chunks := make([][]byte, contents)
				ref := make(map[int][]FrameResult)
				for c := 0; c < contents; c++ {
					vids[c] = contentVideo(c)
					chunks[c] = encodeTestVideo(t, vids[c])
					for _, m := range serialReference(t, vids[c], chunks[c], nns) {
						ref[c] = append(ref[c], FrameResult{Display: m.Display, Type: m.Type, Mask: m.Mask})
					}
				}

				col := obs.New()
				srv, err := NewServer(Config{
					MaxSessions:  contents * viewers,
					Workers:      4,
					NewSegmenter: contentSegmenters(vids),
					NNS:          nns,
					CacheBytes:   64 << 20,
					Obs:          col,
				})
				if err != nil {
					t.Fatal(err)
				}
				sessions := make([]*Session, contents*viewers)
				for i := range sessions {
					if sessions[i], err = srv.Open(); err != nil {
						t.Fatal(err)
					}
				}
				results := make([][][]FrameResult, len(sessions))
				var wg sync.WaitGroup
				for i, s := range sessions {
					wg.Add(1)
					go func(i int, s *Session) {
						defer wg.Done()
						defer s.Close()
						for c := 0; c < chunksPer; c++ {
							ck, err := s.Submit(context.Background(), chunks[i%contents])
							if err != nil {
								t.Errorf("session %d chunk %d: %v", i, c, err)
								return
							}
							res, err := ck.Wait(context.Background())
							if err != nil {
								t.Errorf("session %d chunk %d: %v", i, c, err)
								return
							}
							results[i] = append(results[i], res)
						}
					}(i, s)
				}
				wg.Wait()
				if err := srv.Close(context.Background()); err != nil {
					t.Fatal(err)
				}

				for i := range sessions {
					want := ref[i%contents]
					for c, res := range results[i] {
						if len(res) != len(want) {
							t.Fatalf("session %d chunk %d: %d frames, want %d", i, c, len(res), len(want))
						}
						for j, fr := range res {
							w := want[j]
							if fr.Display != c*len(want)+w.Display || fr.Type != w.Type || fr.Dropped {
								t.Fatalf("session %d chunk %d frame %d: display/type/drop diverge", i, c, j)
							}
							if !bytes.Equal(fr.Mask.Pix, w.Mask.Pix) {
								t.Fatalf("session %d chunk %d frame %d: cached serving diverges from serial run", i, c, j)
							}
						}
					}
				}

				// Single-flight accounting: each of the contents×frames keys is
				// computed exactly once (a miss); every other serve is a hit.
				total := int64(len(sessions) * chunksPer * frames)
				wantMiss := int64(contents * frames)
				snap := col.Snapshot()
				if got := snap.Counters[obs.CounterCacheMisses.String()]; got != wantMiss {
					t.Fatalf("misses = %d, want %d", got, wantMiss)
				}
				if got := snap.Counters[obs.CounterCacheHits.String()]; got != total-wantMiss {
					t.Fatalf("hits = %d, want %d", got, total-wantMiss)
				}
				if snap.Counters[obs.CounterCacheBytesSaved.String()] <= 0 {
					t.Fatal("bytes-saved not recorded")
				}
			})
		}
	}
}

// signalGateSegmenter closes entered on its first Segment call, then blocks
// until the gate opens — it parks a worker inside an NN-L execution at a
// point the test can observe.
type signalGateSegmenter struct {
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
	inner   segment.Segmenter
}

func (g *signalGateSegmenter) Name() string { return g.inner.Name() }
func (g *signalGateSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	return g.inner.Segment(f, display)
}

// TestForceCloseMirrorsQuantCounters pins the teardown counter fix: block
// counters recorded by a step that then fails (here: a batched refine
// retracted by a forced drain) must still reach the server-wide collector,
// so /metrics totals equal the per-session sums even for force-closed
// sessions. The open cache fill of the failed step must be abandoned, not
// published.
//
// Construction: session B parks a worker inside a gated NN-L so the
// batcher's stall detection sees two busy workers; session A's anchors are
// pre-filled into the content cache so its first dirty B-frame is the first
// NN work it submits. That refine item (1 pending < 2 busy, 10s flush
// timer) stays queued until the forced Close cancels it — after StepPrepare
// recorded the frame's dirty/skipped counts.
func TestForceCloseMirrorsQuantCounters(t *testing.T) {
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	vA, vB := contentVideo(0), contentVideo(1)
	chunkA, chunkB := encodeTestVideo(t, vA), encodeTestVideo(t, vB)

	entered := make(chan struct{})
	gate := make(chan struct{})
	var opened int
	col := obs.New()
	srv, err := NewServer(Config{
		MaxSessions: 2,
		Workers:     2,
		NewSegmenter: func(string) segment.Segmenter {
			opened++
			if opened == 1 {
				return &signalGateSegmenter{entered: entered, gate: gate,
					inner: segment.NewOracle("gate", vB.Masks, 0.05, 2, 7)}
			}
			return segment.NewOracle("target", vA.Masks, 0.05, 2, 7)
		},
		NNS:           nns,
		SkipResidual:  true,
		SkipThreshold: 1,
		MaxBatch:      2,
		MaxBatchWait:  10 * time.Second,
		CacheBytes:    64 << 20,
		Obs:           col,
	})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sB.Submit(context.Background(), chunkB); err != nil {
		t.Fatal(err)
	}
	<-entered // worker 1 is now parked inside B's NN-L execution

	sA, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill A's anchor masks so its first pending NN work is a B-frame
	// refine. The reference pipeline computes exactly the masks A's own
	// oracle would (labels differ; oracle output does not depend on them).
	digest := codec.ChunkDigest(chunkA)
	for _, m := range serialReference(t, vA, chunkA, nns) {
		if !m.Type.IsAnchor() {
			continue
		}
		key := contentcache.Key{Content: digest, Display: m.Display, Model: sA.modelFP}
		_, f, owner := srv.cache.Acquire(key)
		if !owner {
			t.Fatalf("pre-fill of display %d lost ownership", m.Display)
		}
		f.Commit(m.Mask)
	}
	chA, err := sA.Submit(context.Background(), chunkA)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until A's StepPrepare has recorded residual-skip counters for a
	// B-frame whose refine is now queued in the batcher (it cannot flush:
	// 1 pending < 2 busy workers, and the timer is 10s out).
	deadline := time.Now().Add(5 * time.Second)
	for sA.Metrics().Counters[obs.CounterQuantBlocksDirty.String()] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session A never recorded dirty-block counters")
		}
		time.Sleep(time.Millisecond)
	}

	// Forced drain: the canceled context retracts A's queued refine, so the
	// step that recorded the counters fails.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	closed := make(chan error, 1)
	go func() { closed <- srv.Close(ctx) }()
	time.Sleep(20 * time.Millisecond)
	close(gate) // release B; its remaining steps fail on the server context
	if err := <-closed; !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	if _, err := chA.Wait(context.Background()); err == nil {
		t.Fatal("session A's chunk served despite forced drain")
	}

	// The fix under test: server-wide totals equal the per-session sums even
	// though A's last counted step never completed.
	snap := col.Snapshot()
	for _, ctr := range []obs.Counter{obs.CounterQuantBlocksDirty, obs.CounterQuantBlocksSkipped, obs.CounterQuantBlocksUnknown} {
		sum := sA.Metrics().Counters[ctr.String()] + sB.Metrics().Counters[ctr.String()]
		if got := snap.Counters[ctr.String()]; got != sum {
			t.Fatalf("%s: server total %d != per-session sum %d", ctr.String(), got, sum)
		}
	}
	if sA.Metrics().Counters[obs.CounterQuantBlocksDirty.String()] == 0 {
		t.Fatal("scenario failed to record any dirty blocks")
	}
	// The failed step's open fill was invalidated, not published.
	if got := snap.Counters[obs.CounterCacheFillAborts.String()]; got < 1 {
		t.Fatalf("fill-aborts = %d, want >= 1", got)
	}
}

// TestCorruptChunkCannotPoisonCache: a corrupted copy of popular content
// hashes to its own keys, so a session serving it — whether it fails or
// not — never perturbs what clean sessions are served.
func TestCorruptChunkCannotPoisonCache(t *testing.T) {
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	v := contentVideo(0)
	chunk := encodeTestVideo(t, v)
	ref := serialReference(t, v, chunk, nns)

	corrupt := append([]byte(nil), chunk...)
	for i := len(corrupt) * 3 / 4; i < len(corrupt)*3/4+8 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xA5
	}

	srv, err := NewServer(Config{
		MaxSessions: 2,
		Workers:     2,
		NewSegmenter: func(string) segment.Segmenter {
			return segment.NewOracle("shared", v.Masks, 0.05, 2, 7)
		},
		NNS:        nns,
		CacheBytes: 64 << 20,
		Obs:        obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sBad, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt copy may fail mid-chunk or decode to garbage — either way
	// whatever it published lives under the corrupt digest's keys.
	if c, err := sBad.Submit(context.Background(), corrupt); err == nil {
		c.Wait(context.Background())
	}
	sBad.Close()

	sClean, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	c, err := sClean.Submit(context.Background(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sClean.Close()
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ref) {
		t.Fatalf("clean session served %d frames, want %d", len(res), len(ref))
	}
	for j, fr := range res {
		if !bytes.Equal(fr.Mask.Pix, ref[j].Mask.Pix) {
			t.Fatalf("frame %d: clean session diverges after corrupt submission", j)
		}
	}
}

// TestBroadcastFanOut: one backing session decodes a chunk once; every
// attached viewer receives the full display-ordered result set, the fanout
// counter records frames × viewers, and the viewer gauge tracks
// attach/detach.
func TestBroadcastFanOut(t *testing.T) {
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	v := contentVideo(0)
	chunk := encodeTestVideo(t, v)
	ref := serialReference(t, v, chunk, nns)

	col := obs.New()
	srv, err := NewServer(Config{
		MaxSessions: 2,
		Workers:     2,
		NewSegmenter: func(string) segment.Segmenter {
			return segment.NewOracle("bcast", v.Masks, 0.05, 2, 7)
		},
		NNS:        nns,
		CacheBytes: 64 << 20,
		Obs:        col,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.OpenBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	const nViewers = 4
	got := make([][]FrameResult, nViewers)
	views := make([]*Viewer, nViewers)
	for i := 0; i < nViewers; i++ {
		i := i
		views[i] = b.Attach(func(r FrameResult) { got[i] = append(got[i], r) })
	}
	if b.Viewers() != nViewers {
		t.Fatalf("Viewers() = %d", b.Viewers())
	}
	res, err := b.Submit(context.Background(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ref) {
		t.Fatalf("broadcast served %d frames, want %d", len(res), len(ref))
	}
	for i := 0; i < nViewers; i++ {
		if len(got[i]) != len(ref) {
			t.Fatalf("viewer %d received %d frames, want %d", i, len(got[i]), len(ref))
		}
		for j := range got[i] {
			if !bytes.Equal(got[i][j].Mask.Pix, ref[j].Mask.Pix) {
				t.Fatalf("viewer %d frame %d: mask diverges", i, j)
			}
		}
	}
	snap := col.Snapshot()
	if fan := snap.Counters[obs.CounterBroadcastFrames.String()]; fan != int64(len(ref)*nViewers) {
		t.Fatalf("fanout counter = %d, want %d", fan, len(ref)*nViewers)
	}
	views[0].Detach()
	if b.Viewers() != nViewers-1 {
		t.Fatalf("Viewers() after detach = %d", b.Viewers())
	}
	var gv int64 = -1
	for _, g := range col.Snapshot().Gauges {
		if g.Name == obs.GaugeBroadcastViewers.String() {
			gv = g.Current
		}
	}
	if gv != nViewers-1 {
		t.Fatalf("broadcast-viewers gauge = %d, want %d", gv, nViewers-1)
	}
	b.Close()
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
