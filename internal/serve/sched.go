package serve

import (
	"context"
	"errors"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/contentcache"
	"vrdann/internal/core"
	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/video"
)

// worker is one lane of the shared compute budget. Each dispatch serves
// exactly one frame of one session and re-queues the session behind every
// other runnable one, so N active streams each get ~1/N of the pool —
// per-stream fairness by construction, with no per-session threads.
func (srv *Server) worker() {
	defer srv.wg.Done()
	for s := range srv.runq {
		s.stepOnce()
	}
}

// stepOnce serves one frame of the session's current chunk (starting the
// next queued chunk if none is in flight), then re-queues the session if
// work remains or retires it if it is draining and empty.
func (s *Session) stepOnce() {
	srv := s.srv
	srv.mu.Lock()
	s.queued = false
	if s.cur == nil {
		if len(s.queue) == 0 {
			s.maybeRetireLocked()
			srv.mu.Unlock()
			return
		}
		s.cur = s.queue[0]
		s.queue = s.queue[1:]
	}
	cur := s.cur
	s.running = true
	srv.mu.Unlock()

	finished, err := s.serveOneFrame(cur)
	if err != nil {
		// Quarantine: a failed step leaves the decoder mid-entropy-stream
		// and the engine's reference window half-built. Drop both — chunks
		// are independently encoded and GOP-aligned, so the next chunk's
		// header is a clean resync point. Worker-only state; this goroutine
		// still holds s.running.
		s.dec = nil
		s.eng = nil
		if s.fill != nil {
			// The resync invalidates the in-flight cache fill: the step that
			// was computing it did not complete cleanly, so nothing is
			// published and waiters fall back to computing locally.
			s.fill.Abandon()
			s.fill = nil
		}
	}

	srv.mu.Lock()
	s.running = false
	if finished || err != nil {
		s.completeLocked(cur, err)
	}
	if s.cur != nil || len(s.queue) > 0 {
		s.scheduleLocked()
	} else {
		s.maybeRetireLocked()
	}
	srv.mu.Unlock()
}

// serveOneFrame advances the session's engine by one frame. Only the
// worker currently holding s.running executes this, so the decoder/engine
// state needs no lock.
func (s *Session) serveOneFrame(cur *Chunk) (finished bool, err error) {
	if s.eng == nil {
		mode := codec.DecodeSideInfo
		if ctl := s.srv.qosCtl; ctl != nil && ctl.ResegInterval() > 0 {
			// The ladder's full rung re-segments B-frames with NN-L, which
			// needs their pixels. Only pay for B-frame pixel decode while
			// the control loop is lightly loaded enough to ever promote;
			// under load the chunk decodes side-info only and a full-rung
			// selection degrades to refinement inside the engine.
			mode = codec.DecodeFull
		}
		if s.dec == nil {
			s.dec, err = codec.NewStreamDecoder(cur.data, mode)
		} else {
			s.dec.SetMode(mode)
			err = s.dec.Reset(cur.data)
		}
		if err != nil {
			return false, err
		}
		if s.adapter != nil {
			// Chunk boundary — the one safe weight-swap point: no engine is
			// alive, so nothing is mid-flight on the old weights, and the
			// engine built below bakes the promoted refiner in. The content-
			// cache fingerprint moves with the version, so masks computed by
			// adapted weights never mix with another weight set's entries.
			if p, ok := s.adapter.TakePromoted(); ok {
				s.pipe.SetRefineNet(p.Net, p.Quant)
				s.adaptVersion = p.Version
				if s.srv.cache != nil {
					s.modelFP = contentcache.AdaptedFingerprint(s.baseFP, s.ID, p.Version)
				}
			}
		}
		s.eng = s.pipe.NewEngine(s.dec)
	}
	s.lastStep = qos.StepFull // anchors never degrade; B-frames overwrite via the selector
	mo, pending, err := s.eng.StepPrepare(s.srv.ctx, s.stepSelector(cur))
	if err != nil {
		return false, err
	}
	if pending != nil {
		mask, nerr := s.execPending(cur, pending)
		if nerr != nil {
			return false, nerr
		}
		mo = pending.Finish(mask)
	}
	if mo == nil {
		// Exhausted with fewer delivered frames than the header promised
		// cannot happen on a validated chunk; treat defensively as done.
		return true, nil
	}
	r := FrameResult{
		Display: s.base + mo.Display,
		Type:    mo.Type,
		Mask:    mo.Mask,
		Dropped: mo.Type == codec.BFrame && mo.Mask == nil,
		Step:    s.lastStep,
		Latency: time.Since(cur.arrived),
	}
	if r.Dropped {
		s.obs.Count(obs.CounterDrops, 1)
		s.srv.cfg.Obs.Count(obs.CounterDrops, 1)
	}
	s.obs.Span(obs.StageServe, r.Display, byte(r.Type), cur.arrT)
	cur.results = append(cur.results, r)
	if s.fill != nil {
		// The step completed cleanly: publish the mask this session owed the
		// content cache. Entries are only ever inserted from this path, so a
		// cached mask is always one a session finished computing — at full
		// quality. A B-frame that claimed its fill on the refinement rung but
		// was deadline-retracted to a cheaper one must abandon instead: the
		// cache is keyed on the full-quality configuration, and a degraded
		// mask served from it would poison every later viewer.
		if mo.Mask != nil && (mo.Type != codec.BFrame || s.lastStep == qos.StepRefine) {
			s.fill.Commit(mo.Mask)
		} else {
			s.fill.Abandon()
		}
		s.fill = nil
	}
	if s.adapter != nil && mo.Mask != nil {
		if mo.Type != codec.BFrame {
			// A non-nil pending means this anchor's mask came from a real
			// NN-L compute (not the content cache): harvest it as a
			// pseudo-label together with the decoded luma.
			if pending != nil {
				s.adapter.Harvest(r.Display, pending.Frame(), mo.Mask)
			}
		} else if s.lastStep == qos.StepRefine {
			// Full-quality refined B-frame: feed the drift monitor the
			// refined-vs-anchor score the promotion contract is validated on.
			s.adapter.ObserveDrift(mo.Mask, s.lastAnchor)
		}
	}
	if mo.Mask != nil && mo.Type != codec.BFrame {
		s.lastAnchor = mo.Mask
	}
	if s.srv.cfg.SkipResidual {
		s.mirrorQuantCounters()
	}
	return s.eng.Remaining() == 0, nil
}

// stepSelector builds the per-B-frame ladder hook for one chunk. Without a
// controller it reproduces the pre-ladder binary policy exactly — refine
// inside the budget, shed past it — so a server with QoS disabled serves
// bit-identical to one that predates the ladder. With a controller it asks
// for a rung per frame, applies the closed loop's promotion spacing to
// full-rung selections, retunes the batcher width, and records the decision
// on the per-ladder-step counters. Only the worker holding s.running runs
// the returned closure (from inside StepPrepare), so s.lastStep needs no
// lock.
func (s *Session) stepSelector(cur *Chunk) core.StepSelector {
	budget := s.srv.cfg.FrameBudget
	ctl := s.srv.qosCtl
	if ctl == nil {
		return func(codec.FrameInfo) qos.Step {
			if budget > 0 && time.Since(cur.arrived) > budget {
				s.lastStep = qos.StepSkip
				return qos.StepSkip
			}
			s.lastStep = qos.StepRefine
			return qos.StepRefine
		}
	}
	return func(info codec.FrameInfo) qos.Step {
		if budget > 0 && time.Since(cur.arrived) > budget {
			// The frame budget outranks the ladder: a frame already past
			// its deadline is stale at any compute price.
			return s.countStep(qos.StepSkip)
		}
		l := s.srv.qosLoad()
		ctl.Observe(l)
		step := ctl.Select(l, s.class)
		if step == qos.StepFull {
			// Promotion spacing: the closed loop stretches how often the
			// full rung actually fires as smoothed load rises.
			if iv := ctl.ResegInterval(); iv <= 0 || info.Display%iv != 0 {
				step = qos.StepRefine
			}
		}
		srv := s.srv
		srv.cfg.Obs.GaugeSet(obs.GaugeQoSPressure, int64(ctl.Pressure()*1000))
		if b := srv.batcher; b != nil {
			w := ctl.BatchWidth(srv.cfg.MaxBatch)
			b.SetMaxBatch(w)
			srv.cfg.Obs.GaugeSet(obs.GaugeQoSBatchWidth, int64(w))
		}
		return s.countStep(step)
	}
}

// countStep records one ladder decision on the session and server
// collectors and remembers it for the FrameResult.
func (s *Session) countStep(step qos.Step) qos.Step {
	s.lastStep = step
	c := stepCounter(step)
	s.obs.Count(c, 1)
	s.srv.cfg.Obs.Count(c, 1)
	return step
}

// stepCounter maps a ladder rung to its obs counter.
func stepCounter(step qos.Step) obs.Counter {
	switch step {
	case qos.StepFull:
		return obs.CounterQoSFull
	case qos.StepRefine:
		return obs.CounterQoSRefine
	case qos.StepRecon:
		return obs.CounterQoSRecon
	}
	return obs.CounterQoSSkip
}

// cachedMask is the session's core.MaskSource hook: it consults the shared
// content cache for the frame about to be stepped. A resident mask is
// returned directly (served without NN work); a miss either claims the
// single-flight fill — remembered in s.fill and resolved by serveOneFrame
// when the step settles — or, when another session is already computing the
// same key, waits for that fill rather than duplicating the work. Waiters
// are discounted from the batcher's stall detection (srv.cacheWaiters):
// they hold a worker but cannot enqueue batch items, and the fill they wait
// on may be the very batch item the stall callback is deciding about. Only
// the worker holding s.running calls this (from inside StepPrepare), so
// s.cur and s.fill need no lock.
func (s *Session) cachedMask(display int, _ codec.FrameType) *video.Mask {
	srv := s.srv
	key := contentcache.Key{Content: s.cur.digest, Display: display, Model: s.modelFP}
	m, f, owner := srv.cache.Acquire(key)
	if m != nil {
		s.obs.Count(obs.CounterCacheHits, 1)
		return m
	}
	if owner {
		s.fill = f
		return nil
	}
	srv.cacheWaiters.Add(1)
	m, ok := f.Wait(srv.ctx)
	srv.cacheWaiters.Add(-1)
	if ok {
		s.obs.Count(obs.CounterCacheHits, 1)
		return m
	}
	if srv.ctx.Err() != nil {
		// Server stopping: compute locally, nothing to re-offer.
		return nil
	}
	// The fill was abandoned — its owner's step failed (quarantine, panic)
	// before publishing. Without a re-offer the key would stay a permanent
	// miss: every later viewer of this content would find neither an entry
	// nor an in-flight fill to join. Re-acquire exactly once: either this
	// session claims the new fill (serveOneFrame resolves it when the step
	// settles, so later viewers hit) or another waiter beat it to the claim
	// and this frame computes locally. Never a second Wait — a one-shot
	// claim-or-compute can't loop however many owners die.
	m, f, owner = srv.cache.Acquire(key)
	if m != nil {
		s.obs.Count(obs.CounterCacheHits, 1)
		return m
	}
	if owner {
		s.fill = f
	}
	return nil
}

// mirrorQuantCounters forwards the residual-skip block counters the core
// engine records on the session collector into the server-wide collector,
// so /metrics shows fleet-level skip rates. Drops and decode errors are
// double-counted at their recording site instead; the skip decision lives
// in core, which only knows one collector, hence the delta mirror. Only
// the worker holding s.running calls this, so the cached last-values need
// no lock.
func (s *Session) mirrorQuantCounters() {
	if s.srv.cfg.Obs == nil {
		return
	}
	if v := s.obs.CounterValue(obs.CounterQuantBlocksSkipped); v > s.quantSkipped {
		s.srv.cfg.Obs.Count(obs.CounterQuantBlocksSkipped, v-s.quantSkipped)
		s.quantSkipped = v
	}
	if v := s.obs.CounterValue(obs.CounterQuantBlocksDirty); v > s.quantDirty {
		s.srv.cfg.Obs.Count(obs.CounterQuantBlocksDirty, v-s.quantDirty)
		s.quantDirty = v
	}
	if v := s.obs.CounterValue(obs.CounterQuantBlocksUnknown); v > s.quantUnknown {
		s.srv.cfg.Obs.Count(obs.CounterQuantBlocksUnknown, v-s.quantUnknown)
		s.quantUnknown = v
	}
}

// execPending computes a step's NN mask: through the shared dynamic
// batcher when one is configured, inline otherwise. The session's own
// nn-l/refine spans are recorded either way, so per-session latency
// reports stay comparable across modes (batched spans include queue wait).
// The submit uses the server context so a forced drain wakes workers
// blocked in a batch; a batcher error fails only this session's step —
// batch-mates got their own results.
//
// Batched B-frame work carries the chunk's deadline: StepPrepare's budget
// check ran before the item queued, and a partial batch can hold it well
// past FrameBudget (the timer flush only bounds the wait, not the total
// age). An item that ages out while queued is retracted to the ladder's
// next-cheaper rung — the raw MV reconstruction — instead of computing
// stale NN work, and counted on qos/deadline-overruns. True anchors are
// never retracted; later frames reference them.
func (s *Session) execPending(cur *Chunk, pn *core.PendingNN) (*video.Mask, error) {
	b := s.srv.batcher
	if b == nil || (s.adaptVersion > 0 && !pn.IsAnchor()) {
		// Sessions serving promoted weights bypass the batcher for NN-S: the
		// fused batch executes one shared base-weight network, which would
		// silently serve this session the un-adapted model. Before the first
		// promotion the clone's weights equal the base, so fused batching
		// stays bit-identical; anchors keep batching throughout (NN-L runs
		// each item's own segmenter).
		return pn.ExecuteLocal(), nil
	}
	ctx := s.srv.ctx
	budget := s.srv.cfg.FrameBudget
	if budget > 0 && pn.Retractable() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cur.arrived.Add(budget))
		defer cancel()
	}
	t := s.obs.Clock()
	var m *video.Mask
	var err error
	if pn.IsAnchor() {
		m, err = b.Segment(ctx, pn.Segmenter(), pn.Frame(), pn.Display())
		s.obs.Span(obs.StageNNL, pn.Display(), byte(pn.FrameType()), t)
	} else {
		prev, rec, next := pn.RefineInputs()
		m, err = b.Refine(ctx, prev, rec, next)
		s.obs.Span(obs.StageRefine, pn.Display(), byte(pn.FrameType()), t)
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) && s.srv.ctx.Err() == nil {
		s.obs.Count(obs.CounterQoSDeadlineOverruns, 1)
		s.srv.cfg.Obs.Count(obs.CounterQoSDeadlineOverruns, 1)
		if fb := pn.FallbackMask(); fb != nil {
			s.lastStep = qos.StepRecon
			return fb, nil
		}
		s.lastStep = qos.StepSkip
		return nil, nil
	}
	return m, err
}
