package serve

import (
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/contentcache"
	"vrdann/internal/core"
	"vrdann/internal/obs"
	"vrdann/internal/video"
)

// worker is one lane of the shared compute budget. Each dispatch serves
// exactly one frame of one session and re-queues the session behind every
// other runnable one, so N active streams each get ~1/N of the pool —
// per-stream fairness by construction, with no per-session threads.
func (srv *Server) worker() {
	defer srv.wg.Done()
	for s := range srv.runq {
		s.stepOnce()
	}
}

// stepOnce serves one frame of the session's current chunk (starting the
// next queued chunk if none is in flight), then re-queues the session if
// work remains or retires it if it is draining and empty.
func (s *Session) stepOnce() {
	srv := s.srv
	srv.mu.Lock()
	s.queued = false
	if s.cur == nil {
		if len(s.queue) == 0 {
			s.maybeRetireLocked()
			srv.mu.Unlock()
			return
		}
		s.cur = s.queue[0]
		s.queue = s.queue[1:]
	}
	cur := s.cur
	s.running = true
	srv.mu.Unlock()

	finished, err := s.serveOneFrame(cur)
	if err != nil {
		// Quarantine: a failed step leaves the decoder mid-entropy-stream
		// and the engine's reference window half-built. Drop both — chunks
		// are independently encoded and GOP-aligned, so the next chunk's
		// header is a clean resync point. Worker-only state; this goroutine
		// still holds s.running.
		s.dec = nil
		s.eng = nil
		if s.fill != nil {
			// The resync invalidates the in-flight cache fill: the step that
			// was computing it did not complete cleanly, so nothing is
			// published and waiters fall back to computing locally.
			s.fill.Abandon()
			s.fill = nil
		}
	}

	srv.mu.Lock()
	s.running = false
	if finished || err != nil {
		s.completeLocked(cur, err)
	}
	if s.cur != nil || len(s.queue) > 0 {
		s.scheduleLocked()
	} else {
		s.maybeRetireLocked()
	}
	srv.mu.Unlock()
}

// serveOneFrame advances the session's engine by one frame. Only the
// worker currently holding s.running executes this, so the decoder/engine
// state needs no lock.
func (s *Session) serveOneFrame(cur *Chunk) (finished bool, err error) {
	if s.eng == nil {
		if s.dec == nil {
			s.dec, err = codec.NewStreamDecoder(cur.data, codec.DecodeSideInfo)
		} else {
			err = s.dec.Reset(cur.data)
		}
		if err != nil {
			return false, err
		}
		s.eng = s.pipe.NewEngine(s.dec)
	}
	budget := s.srv.cfg.FrameBudget
	drop := func(codec.FrameInfo) bool {
		return budget > 0 && time.Since(cur.arrived) > budget
	}
	mo, pending, err := s.eng.StepPrepare(s.srv.ctx, drop)
	if err != nil {
		return false, err
	}
	if pending != nil {
		mask, nerr := s.execPending(pending)
		if nerr != nil {
			return false, nerr
		}
		mo = pending.Finish(mask)
	}
	if mo == nil {
		// Exhausted with fewer delivered frames than the header promised
		// cannot happen on a validated chunk; treat defensively as done.
		return true, nil
	}
	r := FrameResult{
		Display: s.base + mo.Display,
		Type:    mo.Type,
		Mask:    mo.Mask,
		Dropped: mo.Type == codec.BFrame && mo.Mask == nil,
		Latency: time.Since(cur.arrived),
	}
	if r.Dropped {
		s.obs.Count(obs.CounterDrops, 1)
		s.srv.cfg.Obs.Count(obs.CounterDrops, 1)
	}
	s.obs.Span(obs.StageServe, r.Display, byte(r.Type), cur.arrT)
	cur.results = append(cur.results, r)
	if s.fill != nil {
		// The step completed cleanly: publish the mask this session owed the
		// content cache. Entries are only ever inserted from this path, so a
		// cached mask is always one a session finished computing.
		if mo.Mask != nil {
			s.fill.Commit(mo.Mask)
		} else {
			s.fill.Abandon()
		}
		s.fill = nil
	}
	if s.srv.cfg.SkipResidual {
		s.mirrorQuantCounters()
	}
	return s.eng.Remaining() == 0, nil
}

// cachedMask is the session's core.MaskSource hook: it consults the shared
// content cache for the frame about to be stepped. A resident mask is
// returned directly (served without NN work); a miss either claims the
// single-flight fill — remembered in s.fill and resolved by serveOneFrame
// when the step settles — or, when another session is already computing the
// same key, waits for that fill rather than duplicating the work. Waiters
// are discounted from the batcher's stall detection (srv.cacheWaiters):
// they hold a worker but cannot enqueue batch items, and the fill they wait
// on may be the very batch item the stall callback is deciding about. Only
// the worker holding s.running calls this (from inside StepPrepare), so
// s.cur and s.fill need no lock.
func (s *Session) cachedMask(display int, _ codec.FrameType) *video.Mask {
	srv := s.srv
	key := contentcache.Key{Content: s.cur.digest, Display: display, Model: s.modelFP}
	m, f, owner := srv.cache.Acquire(key)
	if m != nil {
		s.obs.Count(obs.CounterCacheHits, 1)
		return m
	}
	if owner {
		s.fill = f
		return nil
	}
	srv.cacheWaiters.Add(1)
	m, ok := f.Wait(srv.ctx)
	srv.cacheWaiters.Add(-1)
	if ok {
		s.obs.Count(obs.CounterCacheHits, 1)
		return m
	}
	// Fill abandoned or server stopping: compute locally. No re-Acquire —
	// this frame pays the full cost rather than risking a claim/wait loop.
	return nil
}

// mirrorQuantCounters forwards the residual-skip block counters the core
// engine records on the session collector into the server-wide collector,
// so /metrics shows fleet-level skip rates. Drops and decode errors are
// double-counted at their recording site instead; the skip decision lives
// in core, which only knows one collector, hence the delta mirror. Only
// the worker holding s.running calls this, so the cached last-values need
// no lock.
func (s *Session) mirrorQuantCounters() {
	if s.srv.cfg.Obs == nil {
		return
	}
	if v := s.obs.CounterValue(obs.CounterQuantBlocksSkipped); v > s.quantSkipped {
		s.srv.cfg.Obs.Count(obs.CounterQuantBlocksSkipped, v-s.quantSkipped)
		s.quantSkipped = v
	}
	if v := s.obs.CounterValue(obs.CounterQuantBlocksDirty); v > s.quantDirty {
		s.srv.cfg.Obs.Count(obs.CounterQuantBlocksDirty, v-s.quantDirty)
		s.quantDirty = v
	}
	if v := s.obs.CounterValue(obs.CounterQuantBlocksUnknown); v > s.quantUnknown {
		s.srv.cfg.Obs.Count(obs.CounterQuantBlocksUnknown, v-s.quantUnknown)
		s.quantUnknown = v
	}
}

// execPending computes a step's NN mask: through the shared dynamic
// batcher when one is configured, inline otherwise. The session's own
// nn-l/refine spans are recorded either way, so per-session latency
// reports stay comparable across modes (batched spans include queue wait).
// The submit uses the server context so a forced drain wakes workers
// blocked in a batch; a batcher error fails only this session's step —
// batch-mates got their own results.
func (s *Session) execPending(pn *core.PendingNN) (*video.Mask, error) {
	b := s.srv.batcher
	if b == nil {
		return pn.ExecuteLocal(), nil
	}
	t := s.obs.Clock()
	if pn.IsAnchor() {
		m, err := b.Segment(s.srv.ctx, pn.Segmenter(), pn.Frame(), pn.Display())
		s.obs.Span(obs.StageNNL, pn.Display(), byte(pn.FrameType()), t)
		return m, err
	}
	prev, rec, next := pn.RefineInputs()
	m, err := b.Refine(s.srv.ctx, prev, rec, next)
	s.obs.Span(obs.StageRefine, pn.Display(), byte(pn.FrameType()), t)
	return m, err
}
