package serve

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"vrdann/internal/adapt"
	"vrdann/internal/contentcache"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/video"
)

// adaptPoll waits for cond with a deadline — adaptation runs on a background
// trainer, so its side effects are only eventually visible.
func adaptPoll(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdaptTierOffBitIdentical pins the tier's zero-cost-when-idle contract
// from both directions: a server with Adapt nil and a server whose adapter
// can never promote (MinImprove unreachable) both serve masks byte-identical
// to the standalone serial run — training happens strictly in the shadow.
func TestAdaptTierOffBitIdentical(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	ref := serialReference(t, v, chunk, nns)

	for _, tc := range []struct {
		name  string
		adapt *adapt.Config
	}{
		{"adapt-nil", nil},
		{"adapt-on-no-promotion", &adapt.Config{MinImprove: 10}}, // F-scores are <= 1: unreachable
	} {
		t.Run(tc.name, func(t *testing.T) {
			col := obs.New()
			srv, err := NewServer(Config{
				Workers:      2,
				NewSegmenter: oracleFor(v),
				NNS:          nns,
				Obs:          col,
				Adapt:        tc.adapt,
			})
			if err != nil {
				t.Fatal(err)
			}
			s, err := srv.Open()
			if err != nil {
				t.Fatal(err)
			}
			ck, err := s.Submit(context.Background(), chunk)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ck.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(ref) {
				t.Fatalf("%d frames, want %d", len(res), len(ref))
			}
			for i, fr := range res {
				if fr.Mask == nil || !bytes.Equal(fr.Mask.Pix, ref[i].Mask.Pix) {
					t.Fatalf("frame %d mask diverges from serial reference", i)
				}
			}
			if tc.adapt != nil {
				// The harvest happened and the trainer runs in the idle gap —
				// with zero effect on what was served.
				snap := col.Snapshot()
				if snap.Counters[obs.CounterAdaptExamples.String()] == 0 {
					t.Fatal("adapt enabled but no pseudo-labels harvested")
				}
				adaptPoll(t, 5*time.Second, func() bool {
					return col.Snapshot().Counters[obs.CounterAdaptSteps.String()] > 0
				}, "shadow training steps")
				if n := col.Snapshot().Counters[obs.CounterAdaptPromotions.String()]; n != 0 {
					t.Fatalf("unreachable MinImprove promoted %d times", n)
				}
			}
			s.Close()
			if err := srv.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAdaptPromotionSwapsServingWeights drives the full promotion path under
// serving: forced promotions (MinImprove < 0) must reach the session at a
// chunk boundary — version visible, content-cache fingerprint moved off the
// version-0 key — while frames keep being served.
func TestAdaptPromotionSwapsServingWeights(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)

	col := obs.New()
	srv, err := NewServer(Config{
		Workers:      2,
		NewSegmenter: oracleFor(v),
		NNS:          nns,
		CacheBytes:   16 << 20,
		Obs:          col,
		Adapt:        &adapt.Config{MinImprove: -1, EvalEvery: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.baseFP == 0 || s.modelFP != contentcache.AdaptedFingerprint(s.baseFP, s.ID, 0) {
		t.Fatal("adapting session not keyed into the version-0 adapted keyspace at open")
	}
	fp0 := s.modelFP
	ck, err := s.Submit(context.Background(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Server idle: the trainer reaches its forced evaluation and stages a
	// promotion for the next chunk boundary.
	adaptPoll(t, 10*time.Second, func() bool {
		return col.Snapshot().Counters[obs.CounterAdaptPromotions.String()] > 0
	}, "staged promotion")
	ck, err = s.Submit(context.Background(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ck.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range res {
		if fr.Mask == nil {
			t.Fatalf("frame %d dropped after weight swap", i)
		}
	}
	// The chunk completed, so the worker's swap writes happened-before the
	// ticket resolved.
	if s.adaptVersion == 0 {
		t.Fatal("promotion staged but never picked up at the chunk boundary")
	}
	if s.modelFP == fp0 || s.modelFP != contentcache.AdaptedFingerprint(s.baseFP, s.ID, s.adaptVersion) {
		t.Fatalf("model fingerprint did not follow the weights version %d", s.adaptVersion)
	}
	s.Close()
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptCacheIsolation submits identical bytes through two adapting
// sessions on one cached server: their weights diverge independently, so
// they must never share cache entries — zero hits, every frame computed —
// while a control server without the tier shares as before.
func TestAdaptCacheIsolation(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)

	serveTwo := func(adaptCfg *adapt.Config) (hits int64, entries int) {
		col := obs.New()
		srv, err := NewServer(Config{
			Workers: 2,
			// Content-deterministic segmenter with a fixed name: both sessions
			// carry the same base fingerprint, so any isolation observed below
			// comes from the adapted keyspace alone.
			NewSegmenter: contentSegmenters([]*video.Video{v}),
			NNS:          nns,
			CacheBytes:   16 << 20,
			Obs:          col,
			Adapt:        adaptCfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			s, err := srv.Open()
			if err != nil {
				t.Fatal(err)
			}
			ck, err := s.Submit(context.Background(), chunk)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ck.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			s.Close()
		}
		entries = srv.cache.Len()
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		return col.Snapshot().Counters[obs.CounterCacheHits.String()], entries
	}

	hits, entries := serveTwo(&adapt.Config{MinImprove: 10})
	if hits != 0 {
		t.Fatalf("adapting sessions shared %d cached masks; isolation requires 0", hits)
	}
	if entries == 0 {
		t.Fatal("adapting sessions should still populate their own isolated entries")
	}
	if hits, _ := serveTwo(nil); hits == 0 {
		t.Fatal("control server without adaptation should share cached masks")
	}
}

// TestAdaptDrainStopsTrainers is the shutdown-hygiene gate (under -race):
// sessions force-closed with training in flight and a full server drain
// leak no goroutine — every per-session trainer is stopped and awaited —
// and a retiring session's staged-but-untaken weights are discarded, not
// promoted.
func TestAdaptDrainStopsTrainers(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)

	requireNoGoroutineLeak(t, func() {
		col := obs.New()
		srv, err := NewServer(Config{
			Workers:      2,
			NewSegmenter: oracleFor(v),
			NNS:          nns,
			Obs:          col,
			Adapt:        &adapt.Config{MinImprove: -1, EvalEvery: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			s, err := srv.Open()
			if err != nil {
				t.Fatal(err)
			}
			ck, err := s.Submit(context.Background(), chunk)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ck.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				// Force-close the first session the moment its chunk resolves —
				// its trainer is mid-burst on an idle server. Retirement must
				// stop and await it.
				s.Close()
			} else {
				defer s.Close()
			}
		}
		// Let trainers stage promotions that no chunk boundary will ever take.
		adaptPoll(t, 10*time.Second, func() bool {
			return col.Snapshot().Counters[obs.CounterAdaptPromotions.String()] > 0
		}, "in-flight training during drain")
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}
