package serve

import (
	"fmt"
	"time"

	"vrdann/internal/core"
	"vrdann/internal/obs"
)

// ChunkError wraps a chunk-serving failure with its recovery class. Every
// error resolved through a Chunk ticket after serving started is a
// *ChunkError; errors.As recovers the class, errors.Is still matches the
// underlying cause (codec.ErrBitstream, context.Canceled, ...).
type ChunkError struct {
	// Class is the recovery taxonomy: malformed input was quarantined and
	// the session resynced (or tripped its breaker); canceled means the
	// server stopped the work, the stream is not suspect; internal is a
	// bug, reported loudly.
	Class core.ErrorClass
	Err   error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("serve: chunk failed (%s): %v", e.Class, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// settleLocked runs the recovery policy for one finished chunk and returns
// the error its ticket resolves with. A success closes the breaker window;
// a failure is classified, counted, and charged against the per-session
// consecutive-failure breaker — enough consecutive failures trip it
// (submits bounce for a doubling backoff window), and enough trips without
// an intervening success force-close the session, failing everything still
// queued. Cancellations pass through unclassified against the stream: the
// server stopped the work, the input is not suspect. Caller holds srv.mu.
func (s *Session) settleLocked(err error) error {
	if err == nil {
		s.consecFails, s.trips = 0, 0
		return nil
	}
	class := core.Classify(err)
	werr := &ChunkError{Class: class, Err: err}
	if class == core.ClassCanceled {
		return werr
	}
	s.obs.Count(obs.CounterDecodeErrors, 1)
	s.srv.cfg.Obs.Count(obs.CounterDecodeErrors, 1)
	cfg := s.srv.cfg
	s.consecFails++
	if cfg.BreakerThreshold < 0 || s.consecFails < cfg.BreakerThreshold {
		s.countResyncLocked()
		return werr
	}
	// Trip: the stream has failed BreakerThreshold chunks in a row.
	s.consecFails = 0
	s.trips++
	s.obs.Count(obs.CounterBreakerTrips, 1)
	s.srv.cfg.Obs.Count(obs.CounterBreakerTrips, 1)
	if s.trips > cfg.BreakerMaxTrips {
		// The client keeps sending garbage across backoff windows; cut it
		// off rather than burn worker budget resyncing forever.
		if s.state == stateActive {
			s.state = stateDraining
		}
		s.failQueuedLocked(&ChunkError{Class: class,
			Err: fmt.Errorf("%w: %d breaker trips, session force-closed", ErrSessionBroken, s.trips)})
		return werr
	}
	s.brokenUntil = time.Now().Add(cfg.BreakerBackoff << uint(s.trips-1))
	s.countResyncLocked()
	return werr
}

// countResyncLocked records that the session survived a failed chunk and
// will resynchronize on the next chunk's header. Caller holds srv.mu.
func (s *Session) countResyncLocked() {
	s.obs.Count(obs.CounterResyncs, 1)
	s.srv.cfg.Obs.Count(obs.CounterResyncs, 1)
}

// failQueuedLocked resolves every not-yet-started chunk exceptionally.
// Caller holds srv.mu.
func (s *Session) failQueuedLocked(err error) {
	for _, c := range s.queue {
		c.err = err
		s.pending -= c.frames
		s.srv.pendingFrames.Add(-int64(c.frames))
		s.srv.cfg.Obs.GaugeAdd(obs.GaugePending, -int64(c.frames))
		close(c.done)
	}
	s.queue = nil
	s.obs.GaugeSet(obs.GaugePending, int64(s.pending))
	s.srv.cond.Broadcast()
}
