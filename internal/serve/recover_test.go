package serve

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
)

// truncateChunk cuts an encoded chunk mid-payload: the header survives (so
// admission passes and the header's frame count is charged), and the
// decoder runs off the end of the entropy stream while serving — the
// deterministic mid-serve failure the recovery path is built for.
func truncateChunk(t *testing.T, chunk []byte) []byte {
	t.Helper()
	info, err := codec.ProbeStream(chunk)
	if err != nil {
		t.Fatal(err)
	}
	cut := info.HeaderBytes + (len(chunk)-info.HeaderBytes)/2
	bad := chunk[:cut]
	if _, err := codec.ProbeStream(bad); err != nil {
		t.Fatalf("truncated chunk no longer passes admission: %v", err)
	}
	return bad
}

// TestPoisonedSessionRecovers is the regression test for the quarantine
// path: a session that fails a chunk mid-serve must serve the next valid
// chunk on the same session bit-identically to a fresh session — no stale
// decoder or reference-window state may leak across the failure.
func TestPoisonedSessionRecovers(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)

	serverObs := obs.New()
	requireNoGoroutineLeak(t, func() {
		srv, err := NewServer(Config{
			MaxSessions: 2, Workers: 2, NewSegmenter: oracleFor(v), Obs: serverObs,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		c1, err := s.Submit(context.Background(), bad)
		if err != nil {
			t.Fatalf("truncated chunk rejected at admission, want mid-serve failure: %v", err)
		}
		_, werr := c1.Wait(context.Background())
		if werr == nil {
			t.Fatal("truncated chunk served without error")
		}
		var ce *ChunkError
		if !errors.As(werr, &ce) || ce.Class != core.ClassMalformed {
			t.Fatalf("chunk error %v, want *ChunkError with class malformed", werr)
		}
		if !errors.Is(werr, codec.ErrBitstream) {
			t.Fatalf("chunk error %v does not wrap codec.ErrBitstream", werr)
		}

		// Same session, valid chunk: must succeed and match a fresh session.
		c2, err := s.Submit(context.Background(), chunk)
		if err != nil {
			t.Fatalf("valid chunk after failure: %v", err)
		}
		got, err := c2.Wait(context.Background())
		if err != nil {
			t.Fatalf("valid chunk after failure did not serve: %v", err)
		}

		fresh, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		cf, err := fresh.Submit(context.Background(), chunk)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cf.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("recovered session served %d frames, fresh session %d", len(got), len(want))
		}
		for i := range got {
			// The failed chunk still advances the session's display offset
			// (its header promised frames); masks must be bit-identical.
			if got[i].Display != want[i].Display+c1.Frames() {
				t.Fatalf("frame %d: display %d, want %d", i, got[i].Display, want[i].Display+c1.Frames())
			}
			if got[i].Type != want[i].Type || got[i].Dropped != want[i].Dropped {
				t.Fatalf("frame %d: type/dropped diverge from fresh session", i)
			}
			if (got[i].Mask == nil) != (want[i].Mask == nil) ||
				(got[i].Mask != nil && !bytes.Equal(got[i].Mask.Pix, want[i].Mask.Pix)) {
				t.Fatalf("frame %d: mask differs from fresh session after recovery", i)
			}
		}

		rep := s.Metrics()
		if rep.Counters[obs.CounterDecodeErrors.String()] != 1 {
			t.Fatalf("decode-errors counter = %d, want 1", rep.Counters[obs.CounterDecodeErrors.String()])
		}
		if rep.Counters[obs.CounterResyncs.String()] != 1 {
			t.Fatalf("resyncs counter = %d, want 1", rep.Counters[obs.CounterResyncs.String()])
		}
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	if serverObs.Snapshot().Counters[obs.CounterDecodeErrors.String()] != 1 {
		t.Fatal("server-wide decode-errors counter not aggregated")
	}
}

// TestBreakerTripsAndResets: BreakerThreshold consecutive failures trip the
// breaker (submits bounce with ErrSessionBroken for the backoff window); a
// successful chunk afterwards fully closes it again.
func TestBreakerTripsAndResets(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)

	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v), Obs: obs.New(),
		BreakerThreshold: 2, BreakerBackoff: 200 * time.Millisecond, BreakerMaxTrips: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	failOnce := func() {
		t.Helper()
		c, err := s.Submit(context.Background(), bad)
		if err != nil {
			t.Fatalf("bad chunk rejected at admission: %v", err)
		}
		if _, werr := c.Wait(context.Background()); werr == nil {
			t.Fatal("bad chunk served cleanly")
		}
	}
	failOnce()
	failOnce() // second consecutive failure: trips the breaker
	if _, err := s.Submit(context.Background(), chunk); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("submit during backoff: %v, want ErrSessionBroken", err)
	}
	if got := s.Metrics().Counters[obs.CounterBreakerTrips.String()]; got != 1 {
		t.Fatalf("breaker-trips counter = %d, want 1", got)
	}
	// The window expires; a clean chunk must go through and reset the
	// breaker so the next single failure does not re-trip it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := s.Submit(context.Background(), chunk)
		if err == nil {
			if _, werr := c.Wait(context.Background()); werr != nil {
				t.Fatalf("clean chunk after backoff failed: %v", werr)
			}
			break
		}
		if !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("submit after backoff: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never released after its backoff window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	failOnce() // one failure after a success: below threshold again
	if _, err := s.Submit(context.Background(), chunk); err != nil {
		t.Fatalf("breaker re-tripped after a single post-success failure: %v", err)
	}
}

// TestBreakerForceCloses: a stream that keeps failing across backoff
// windows is cut off — the session drains, queued chunks fail with
// ErrSessionBroken, and the session retires from the server.
func TestBreakerForceCloses(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)

	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v), Obs: obs.New(),
		BreakerThreshold: 1, BreakerBackoff: time.Nanosecond, BreakerMaxTrips: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	// Each failure trips (threshold 1); the second trip exceeds
	// BreakerMaxTrips and force-closes. The 1ns backoff never rejects.
	for i := 0; i < 2; i++ {
		c, err := s.Submit(context.Background(), bad)
		if err != nil {
			t.Fatalf("bad chunk %d rejected at admission: %v", i, err)
		}
		if _, werr := c.Wait(context.Background()); werr == nil {
			t.Fatalf("bad chunk %d served cleanly", i)
		}
	}
	if _, err := s.Submit(context.Background(), chunk); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("submit after force-close: %v, want ErrSessionClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("force-closed session never retired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Obs().Snapshot().Counters[obs.CounterBreakerTrips.String()]; got != 2 {
		t.Fatalf("server breaker-trips counter = %d, want 2", got)
	}
}

// TestBreakerFailsQueuedChunks: when the force-close lands while chunks are
// still queued behind the poisoned ones, those tickets resolve with
// ErrSessionBroken instead of hanging. A gated segmenter holds the first
// (clean) chunk so the rest queue deterministically before any failure.
func TestBreakerFailsQueuedChunks(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)

	gate := make(chan struct{})
	srv, err := NewServer(Config{
		MaxSessions: 1, MaxQueuedFrames: 256, Workers: 1, Obs: obs.New(),
		NewSegmenter: func(id string) segment.Segmenter {
			return &gateSegmenter{gate: gate, inner: segment.NewOracle(id, v.Masks, 0, 0, 1)}
		},
		BreakerThreshold: 1, BreakerBackoff: time.Nanosecond, BreakerMaxTrips: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	submit := func(data []byte) *Chunk {
		t.Helper()
		c, err := s.Submit(context.Background(), data)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return c
	}
	c0 := submit(chunk) // blocks in the gated segmenter
	c1 := submit(bad)   // trip 1 (threshold 1)
	c2 := submit(bad)   // trip 2 > max trips: force-close
	c3 := submit(chunk) // still queued at force-close time
	close(gate)
	if _, err := c0.Wait(context.Background()); err != nil {
		t.Fatalf("gated clean chunk failed: %v", err)
	}
	for i, c := range []*Chunk{c1, c2} {
		if _, err := c.Wait(context.Background()); err == nil {
			t.Fatalf("bad chunk %d served cleanly", i+1)
		}
	}
	_, err = c3.Wait(context.Background())
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("queued chunk after force-close: %v, want ErrSessionBroken", err)
	}
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Class != core.ClassMalformed {
		t.Fatalf("queued-chunk error %v lacks the tripping failure's class", err)
	}
}
