package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"vrdann/internal/codec"
	"vrdann/internal/qos"
	"vrdann/internal/vidio"
)

// frameJSON is the wire form of one served frame.
type frameJSON struct {
	Display   int    `json:"display"`
	Type      string `json:"type"`
	Dropped   bool   `json:"dropped"`
	LatencyNS int64  `json:"latencyNs"`
	// Foreground is the mask's foreground pixel count — a cheap payload
	// that lets clients sanity-check results without shipping pixels.
	Foreground int `json:"foreground"`
}

// Handler returns the server's HTTP surface:
//
//	POST   /v1/sessions                 open a session        -> {"id": ..., "class": ...}
//	       ?class=premium|free          ... with a QoS class (default premium)
//	POST   /v1/sessions/{id}/chunks     serve one chunk       -> frame JSON
//	       ?format=pgm                  ... or concatenated mask PGMs
//	GET    /v1/sessions/{id}/metrics    per-session obs snapshot
//	DELETE /v1/sessions/{id}            close (drain) the session
//	GET    /healthz                     JSON load report (LoadInfo)
//	GET    /metrics                     server-wide obs snapshot
//	POST   /quiesce                     stop admitting sessions (scale-down drain)
//	POST   /resume                      lift a quiesce
//
// Status mapping: 400 malformed chunk, 404 unknown session, 409 closed or
// draining session, 413 chunk over Config.MaxChunkBytes, 429 admission or
// queue rejection, 503 draining server or open circuit breaker.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", srv.handleOpen)
	mux.HandleFunc("POST /v1/sessions/{id}/chunks", srv.handleChunk)
	mux.HandleFunc("GET /v1/sessions/{id}/metrics", srv.handleMetrics)
	mux.HandleFunc("DELETE /v1/sessions/{id}", srv.handleClose)
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	mux.HandleFunc("GET /metrics", srv.handleServerMetrics)
	mux.HandleFunc("POST /quiesce", srv.handleQuiesce)
	mux.HandleFunc("POST /resume", srv.handleResume)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrAdmission), errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrServerClosed), errors.Is(err, ErrSessionBroken):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrSessionClosed):
		status = http.StatusConflict
	case errors.Is(err, codec.ErrBitstream):
		// Mid-serve decode failure: the session quarantined and resynced;
		// the chunk itself was bad input.
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (srv *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	class, err := qos.ParseClass(r.URL.Query().Get("class"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s, err := srv.OpenClass(class)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": s.ID, "class": class.String()})
}

func (srv *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	s, ok := srv.Session(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session"})
	}
	return s, ok
}

func (srv *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.session(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, srv.cfg.MaxChunkBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("chunk exceeds %d-byte cap", mbe.Limit)})
			return
		}
		writeError(w, err)
		return
	}
	c, err := s.Submit(r.Context(), data)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrServerClosed),
			errors.Is(err, ErrSessionClosed), errors.Is(err, ErrSessionBroken):
			writeError(w, err)
		default:
			// Admission failures: malformed header, geometry mismatch.
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		}
		return
	}
	res, err := c.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("format") == "pgm" {
		w.Header().Set("Content-Type", "application/octet-stream")
		for _, fr := range res {
			if fr.Mask == nil {
				continue
			}
			if err := vidio.WriteMaskPGM(w, fr.Mask); err != nil {
				return // client gone mid-stream; nothing recoverable
			}
		}
		return
	}
	frames := make([]frameJSON, len(res))
	for i, fr := range res {
		fj := frameJSON{
			Display:   fr.Display,
			Type:      fmt.Sprintf("%v", fr.Type),
			Dropped:   fr.Dropped,
			LatencyNS: int64(fr.Latency),
		}
		if fr.Mask != nil {
			for _, px := range fr.Mask.Pix {
				if px != 0 {
					fj.Foreground++
				}
			}
		}
		frames[i] = fj
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": s.ID, "frames": frames})
}

func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (srv *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.session(w, r)
	if !ok {
		return
	}
	s.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (srv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, srv.Load())
}

func (srv *Server) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	srv.Quiesce()
	writeJSON(w, http.StatusOK, srv.Load())
}

func (srv *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	srv.Resume()
	writeJSON(w, http.StatusOK, srv.Load())
}

func (srv *Server) handleServerMetrics(w http.ResponseWriter, r *http.Request) {
	rep := srv.cfg.Obs.Snapshot()
	if rep == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "no server collector configured"})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
