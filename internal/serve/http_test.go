package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vrdann/internal/segment"
)

type chunkResponse struct {
	Session string      `json:"session"`
	Frames  []frameJSON `json:"frames"`
}

func TestHTTPServeFlow(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	chunk := encodeTestVideo(t, v)
	srv, err := NewServer(Config{MaxSessions: 2, Workers: 2, NewSegmenter: oracleFor(v)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Open a session.
	resp := post("/v1/sessions", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: status %d", resp.StatusCode)
	}
	var open struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if open.ID == "" {
		t.Fatal("open returned empty session id")
	}

	// Serve a chunk, JSON response.
	resp = post("/v1/sessions/"+open.ID+"/chunks", chunk)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk: status %d", resp.StatusCode)
	}
	var cr chunkResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cr.Frames) != 12 {
		t.Fatalf("served %d frames over HTTP, want 12", len(cr.Frames))
	}
	for i, fr := range cr.Frames {
		if fr.Display != i {
			t.Fatalf("frame %d: display %d (not display order)", i, fr.Display)
		}
		if fr.Dropped || fr.Foreground == 0 {
			t.Fatalf("frame %d: dropped=%v foreground=%d", i, fr.Dropped, fr.Foreground)
		}
	}

	// PGM masks for a second chunk (covers the decoder Reset path over HTTP).
	resp = post("/v1/sessions/"+open.ID+"/chunks?format=pgm", chunk)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pgm chunk: status %d", resp.StatusCode)
	}
	var pgm bytes.Buffer
	if _, err := pgm.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := bytes.Count(pgm.Bytes(), []byte("P5\n")); got != 12 {
		t.Fatalf("PGM response holds %d masks, want 12", got)
	}

	// Per-session metrics.
	mresp, err := http.Get(ts.URL + "/v1/sessions/" + open.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Stages   []struct{ Name string } `json:"stages"`
		Counters map[string]int64        `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if metrics.Counters["chunks"] != 2 {
		t.Fatalf("metrics chunks = %d", metrics.Counters["chunks"])
	}
	sawServe := false
	for _, st := range metrics.Stages {
		if st.Name == "serve/frame" {
			sawServe = true
		}
	}
	if !sawServe {
		t.Fatal("metrics missing serve/frame stage")
	}

	// Health.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.Sessions != 1 {
		t.Fatalf("health = %+v", health)
	}

	// Close the session; a further chunk must 409.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+open.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	resp = post("/v1/sessions/"+open.ID+"/chunks", chunk)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusConflict {
		t.Fatalf("chunk on closed session: status %d", resp.StatusCode)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	v := makeTestVideo(8, 1)
	chunk := encodeTestVideo(t, v)
	srv, err := NewServer(Config{MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	// Unknown session -> 404.
	resp, err := http.Post(ts.URL+"/v1/sessions/nope/chunks", "application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", resp.StatusCode)
	}

	// Fill the admission cap -> 429 on the next open.
	resp, err = http.Post(ts.URL+"/v1/sessions", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var open struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/sessions", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap open: status %d", resp.StatusCode)
	}

	// Malformed chunk -> 400.
	resp, err = http.Post(ts.URL+fmt.Sprintf("/v1/sessions/%s/chunks", open.ID),
		"application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed chunk: status %d", resp.StatusCode)
	}
}

// TestHTTPChunkCap: a POST past Config.MaxChunkBytes gets 413, and the cap
// does not interfere with bodies at or under it.
func TestHTTPChunkCap(t *testing.T) {
	v := makeTestVideo(8, 1)
	chunk := encodeTestVideo(t, v)
	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v),
		MaxChunkBytes: int64(len(chunk)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	resp, err := http.Post(ts.URL+"/v1/sessions", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var open struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// One byte over the cap -> 413.
	over := append(append([]byte(nil), chunk...), 0)
	resp, err = http.Post(ts.URL+"/v1/sessions/"+open.ID+"/chunks",
		"application/octet-stream", bytes.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chunk: status %d, want 413", resp.StatusCode)
	}
	// Exactly at the cap -> served.
	resp, err = http.Post(ts.URL+"/v1/sessions/"+open.ID+"/chunks",
		"application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap chunk: status %d, want 200", resp.StatusCode)
	}
}

// TestHTTPDrainingVsUnknown pins the 404/409 split: an unknown session id
// is 404, a known-but-draining session is 409 — a client can tell "retry
// elsewhere" from "this stream is going away".
func TestHTTPDrainingVsUnknown(t *testing.T) {
	v := makeTestVideo(12, 1)
	chunk := encodeTestVideo(t, v)
	gate := make(chan struct{})
	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1,
		NewSegmenter: func(id string) segment.Segmenter {
			return &gateSegmenter{gate: gate, inner: segment.NewOracle(id, v.Masks, 0, 0, 1)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		close(gate)
		srv.Close(context.Background())
	}()

	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	// Park a chunk behind the gate so the session drains instead of
	// retiring instantly, then close it.
	if _, err := s.Submit(context.Background(), chunk); err != nil {
		t.Fatal(err)
	}
	s.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions/"+s.ID+"/chunks",
		"application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("chunk on draining session: status %d, want 409", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions/nope/chunks",
		"application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chunk on unknown session: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPBreakerStatus: a mid-serve decode failure maps to 400 (the chunk
// was bad input), and a tripped breaker maps to 503 (back off and retry).
func TestHTTPBreakerStatus(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)
	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v),
		BreakerThreshold: 1, BreakerBackoff: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	resp, err := http.Post(ts.URL+"/v1/sessions", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var open struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/v1/sessions/"+open.ID+"/chunks",
		"application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mid-serve decode failure: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions/"+open.ID+"/chunks",
		"application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
}
