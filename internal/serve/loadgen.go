package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"vrdann/internal/qos"
)

// LoadGen drives a Server with synthetic multi-stream traffic, closed- or
// open-loop, and reports the sustained throughput, latency percentiles,
// drop rate and rejection counts a capacity plan needs.
type LoadGen struct {
	Server *Server
	// Streams is how many sessions the generator tries to open; those past
	// the server's admission cap are counted as AdmissionRejects.
	Streams int
	// Chunks supplies the bitstream chunks for one stream, in submission
	// order. Called once per admitted stream.
	Chunks func(stream int) [][]byte
	// Interval selects the loop mode. Zero is closed-loop: each chunk is
	// submitted when the previous one finishes (throughput-bound). Positive
	// is open-loop: chunks are submitted on the fixed interval regardless
	// of completion (arrival-rate-bound), and all tickets are awaited at
	// the end.
	Interval time.Duration
	// Think, in closed-loop mode only, sleeps this long between one chunk's
	// completion and the next submission — a viewer consuming what it was
	// served before asking for more. The resulting idle gaps are what gives
	// shadow work (the online-adaptation trainers) its compute budget. Zero
	// keeps the classic back-to-back throughput loop.
	Think time.Duration
	// Class, when non-nil, assigns each stream its QoS class (sessions are
	// opened through OpenClass). Nil opens every stream premium.
	Class func(stream int) qos.Class
	// OnSession, when non-nil, observes each admitted session before any
	// chunk is submitted (tests use it to keep references for post-run
	// metric assertions).
	OnSession func(stream int, s *Session)
	// OnResult, when non-nil, observes every served frame.
	OnResult func(stream int, r FrameResult)
	// Retries bounds how many times one chunk's Submit is retried after a
	// 503-class rejection — an open circuit breaker (ErrSessionBroken) or a
	// draining server (ErrServerClosed). Chaos and migration runs recover
	// through these windows; without retry they would abort and measure the
	// failure instead of the recovery. Default 4; negative disables retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt. Default 50ms.
	RetryBackoff time.Duration
}

// StreamReport is the per-stream slice of a load run.
type StreamReport struct {
	Stream   int  `json:"stream"`
	Admitted bool `json:"admitted"`
	Frames   int  `json:"frames"`
	Dropped  int  `json:"dropped"`
	Retries  int  `json:"retries,omitempty"`
	// Backoff is wall time this stream spent asleep between submit retries.
	// It is excluded from the FPS denominator: backoff is the generator
	// politely waiting out a breaker window, not the server serving slowly,
	// and folding it in understated throughput in exact proportion to how
	// patient the retry policy was.
	Backoff time.Duration `json:"backoffNs,omitempty"`
	FPS     float64       `json:"fps"`
	Err     string        `json:"err,omitempty"`
}

// LoadReport aggregates one load run.
type LoadReport struct {
	Streams          int            `json:"streams"`
	Admitted         int            `json:"admitted"`
	AdmissionRejects int            `json:"admissionRejects"`
	QueueRejects     int            `json:"queueRejects"`
	Retries          int            `json:"retries"`   // submits retried after 503-class rejections
	Frames           int            `json:"frames"`    // frames served (dropped included)
	Dropped          int            `json:"dropped"`   // frames shed by the deadline policy
	Backoff          time.Duration  `json:"backoffNs"` // total retry-backoff sleep across streams
	Elapsed          time.Duration  `json:"elapsedNs"`
	FPS              float64        `json:"fps"`          // total served frames / elapsed
	PerStreamFPS     float64        `json:"perStreamFps"` // FPS / admitted streams
	P50              time.Duration  `json:"p50Ns"`        // per-frame latency percentiles
	P95              time.Duration  `json:"p95Ns"`
	P99              time.Duration  `json:"p99Ns"`
	DropRate         float64        `json:"dropRate"`
	PerStream        []StreamReport `json:"perStream"`
}

// Run opens the streams, pushes every chunk through the server and blocks
// until all admitted streams finish. The returned report covers only this
// run. An error is returned for harness misuse (no server, no chunks);
// per-stream serving failures are reported in PerStream, not as an error.
func (g *LoadGen) Run(ctx context.Context) (*LoadReport, error) {
	if g.Server == nil || g.Chunks == nil {
		return nil, errors.New("serve: LoadGen needs Server and Chunks")
	}
	rep := &LoadReport{Streams: g.Streams, PerStream: make([]StreamReport, g.Streams)}
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	record := func(stream int, res []FrameResult) {
		mu.Lock()
		sr := &rep.PerStream[stream]
		for _, r := range res {
			sr.Frames++
			if r.Dropped {
				sr.Dropped++
			}
			latencies = append(latencies, r.Latency)
		}
		mu.Unlock()
		if g.OnResult != nil {
			for _, r := range res {
				g.OnResult(stream, r)
			}
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < g.Streams; i++ {
		sr := &rep.PerStream[i]
		sr.Stream = i
		class := qos.ClassPremium
		if g.Class != nil {
			class = g.Class(i)
		}
		s, err := g.Server.OpenClass(class)
		if err != nil {
			sr.Err = err.Error()
			if errors.Is(err, ErrAdmission) {
				rep.AdmissionRejects++
			}
			continue
		}
		sr.Admitted = true
		rep.Admitted++
		if g.OnSession != nil {
			g.OnSession(i, s)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			defer s.Close()
			t0 := time.Now()
			retries, backoff, err := g.driveStream(ctx, i, s, record)
			mu.Lock()
			sr := &rep.PerStream[i]
			sr.Retries = retries
			sr.Backoff = backoff
			if err != nil && sr.Err == "" {
				sr.Err = err.Error()
			}
			// FPS over serving time only: retry-backoff sleeps are reported
			// separately in Backoff, not hidden in the denominator.
			if el := (time.Since(t0) - backoff).Seconds(); el > 0 {
				sr.FPS = float64(sr.Frames) / el
			}
			mu.Unlock()
		}(i, s)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	for i := range rep.PerStream {
		sr := &rep.PerStream[i]
		rep.Frames += sr.Frames
		rep.Dropped += sr.Dropped
		rep.Retries += sr.Retries
		rep.Backoff += sr.Backoff
	}
	rep.QueueRejects = countQueueRejects(rep.PerStream)
	mu.Lock()
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rep.P50 = pct(latencies, 0.50)
	rep.P95 = pct(latencies, 0.95)
	rep.P99 = pct(latencies, 0.99)
	mu.Unlock()
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.FPS = float64(rep.Frames) / s
		if rep.Admitted > 0 {
			rep.PerStreamFPS = rep.FPS / float64(rep.Admitted)
		}
	}
	if rep.Frames > 0 {
		rep.DropRate = float64(rep.Dropped) / float64(rep.Frames)
	}
	return rep, nil
}

// driveStream pushes one stream's chunks, closed- or open-loop, and
// reports how many submits had to be retried and how long the stream
// slept in retry backoff.
func (g *LoadGen) driveStream(ctx context.Context, i int, s *Session,
	record func(int, []FrameResult)) (int, time.Duration, error) {
	chunks := g.Chunks(i)
	retries := 0
	var slept time.Duration
	if g.Interval <= 0 {
		// Closed loop: next submission gated on completion.
		for n, data := range chunks {
			if n > 0 && g.Think > 0 {
				select {
				case <-time.After(g.Think):
				case <-ctx.Done():
					return retries, slept, ctx.Err()
				}
			}
			c, rn, sl, err := g.submit(ctx, s, data)
			retries += rn
			slept += sl
			if err != nil {
				return retries, slept, err
			}
			res, err := c.Wait(ctx)
			record(i, res)
			if err != nil {
				return retries, slept, err
			}
		}
		return retries, slept, nil
	}
	// Open loop: submissions paced by the interval, awaited at the end.
	var tickets []*Chunk
	var firstErr error
	tick := time.NewTicker(g.Interval)
	defer tick.Stop()
	for n, data := range chunks {
		if n > 0 {
			select {
			case <-tick.C:
			case <-ctx.Done():
				firstErr = ctx.Err()
			}
		}
		if firstErr != nil {
			break
		}
		c, rn, sl, err := g.submit(ctx, s, data)
		retries += rn
		slept += sl
		if err != nil {
			firstErr = err
			break
		}
		tickets = append(tickets, c)
	}
	for _, c := range tickets {
		res, err := c.Wait(ctx)
		record(i, res)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return retries, slept, firstErr
}

// submit is Submit with the bounded retry-and-backoff policy over
// 503-class rejections: a breaker backoff window or a draining server is
// transient by design (the breaker re-admits after its window, a gateway
// re-places drained sessions), so a generator that treats them as terminal
// measures the abort, not the recovery. Returns how many retries were
// spent and how long it slept in backoff. Admission-class failures (bad
// chunk, queue full under Reject, closed session) stay terminal.
func (g *LoadGen) submit(ctx context.Context, s *Session, data []byte) (*Chunk, int, time.Duration, error) {
	max := g.Retries
	switch {
	case max == 0:
		max = 4
	case max < 0:
		max = 0
	}
	backoff := g.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var slept time.Duration
	for n := 0; ; n++ {
		c, err := s.Submit(ctx, data)
		if err == nil || n >= max ||
			!(errors.Is(err, ErrSessionBroken) || errors.Is(err, ErrServerClosed)) {
			return c, n, slept, err
		}
		t0 := time.Now()
		select {
		case <-time.After(backoff):
			slept += time.Since(t0)
		case <-ctx.Done():
			return nil, n + 1, slept + time.Since(t0), ctx.Err()
		}
		backoff *= 2
	}
}

// countQueueRejects counts streams that ended on a queue-full rejection.
func countQueueRejects(prs []StreamReport) int {
	n := 0
	for _, sr := range prs {
		if sr.Err == ErrQueueFull.Error() {
			n++
		}
	}
	return n
}

// pct indexes a sorted latency slice at quantile q.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
