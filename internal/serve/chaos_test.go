// The chaos soak lives in an external test package: it drives serve through
// internal/fault/chaos, which itself imports serve — an in-package test
// would close that cycle. It also keeps the soak honest: everything here
// goes through the public serving API.
package serve_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/fault"
	"vrdann/internal/fault/chaos"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/video"
)

// chaosVideo mirrors the in-package test scene; the oracle segmenter
// reseeds per call, so any two sessions over the same chunk produce
// identical masks — the property that makes bit-exact comparison valid.
func chaosVideo(frames int) *video.Video {
	return video.Generate(video.SceneSpec{
		Name: "chaos", W: 64, H: 48, Frames: frames, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 24, Y: 24,
			VX: 1.5, VY: 0.75, Intensity: 220, Foreground: true,
		}},
	})
}

// TestChaosSoak is the acceptance run for fault hardening: 8 concurrent
// sessions, 20% of chunks corrupted (bit flips, truncation, garbled
// headers, splices), under -race via the Makefile chaos-smoke target.
// Healthy sessions must stay bit-identical to a clean serial run, poisoned
// sessions must resync or close with a classified error, nothing may hang,
// and the run must leak no goroutines.
func TestChaosSoak(t *testing.T) {
	v := chaosVideo(18)
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chunk := st.Data

	// The clean serial run is the gold standard every healthy chunk must
	// reproduce exactly.
	sp := &core.StreamingPipeline{
		NNL: segment.NewOracle("ref", v.Masks, 0.05, 2, 7), Workers: 1,
	}
	var ref []core.MaskOut
	if err := sp.Run(chunk, core.DisplayOrder(func(m core.MaskOut) error {
		ref = append(ref, m)
		return nil
	})); err != nil {
		t.Fatal(err)
	}

	const sessions, chunks = 8, 6
	const rate = 0.20
	serverObs := obs.New()

	runtime.GC()
	before := runtime.NumGoroutine()

	srv, err := serve.NewServer(serve.Config{
		MaxSessions: sessions,
		Workers:     4,
		NewSegmenter: func(id string) segment.Segmenter {
			return segment.NewOracle(id, v.Masks, 0.05, 2, 7)
		},
		Obs:              serverObs,
		BreakerThreshold: 2,
		BreakerBackoff:   5 * time.Millisecond,
		BreakerMaxTrips:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chaos.Run(context.Background(), srv, chaos.Config{
		Sessions: sessions, Chunks: chunks, Chunk: chunk,
		Rate: rate, Seed: 1729, Kinds: fault.AllKinds,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if res.Hung != 0 {
		t.Fatalf("%d chunk tickets never resolved — serving path hung", res.Hung)
	}

	healthy, poisoned, midServeFailures := 0, 0, 0
	for si := range res.Sessions {
		rep := &res.Sessions[si]
		if rep.OpenErr != nil {
			t.Fatalf("session %d failed to open: %v", si, rep.OpenErr)
		}
		if !rep.Poisoned {
			healthy++
		} else {
			poisoned++
		}
		for ci, out := range rep.Outcomes {
			at := func(format string, args ...any) {
				t.Helper()
				t.Fatalf("session %d (%s) chunk %d [%s]: "+format,
					append([]any{si, rep.ID, ci, out.Kind}, args...)...)
			}
			switch {
			case out.SubmitErr != nil:
				// Admission rejects are legal for corrupted chunks (garbled
				// header) and, on poisoned sessions, for clean chunks caught
				// by breaker fallout.
				if !out.Corrupted && !rep.Poisoned {
					at("healthy chunk rejected at admission: %v", out.SubmitErr)
				}
				if !out.Corrupted &&
					!errors.Is(out.SubmitErr, serve.ErrSessionBroken) &&
					!errors.Is(out.SubmitErr, serve.ErrSessionClosed) {
					at("clean chunk rejected for a non-breaker reason: %v", out.SubmitErr)
				}
			case out.ServeErr != nil:
				midServeFailures++
				var ce *serve.ChunkError
				if !errors.As(out.ServeErr, &ce) {
					at("serve error not classified: %v", out.ServeErr)
				}
				if ce.Class == core.ClassInternal {
					at("corruption surfaced as an internal error: %v", out.ServeErr)
				}
				if !out.Corrupted && !errors.Is(out.ServeErr, serve.ErrSessionBroken) {
					at("clean chunk failed mid-serve: %v", out.ServeErr)
				}
			case !out.Corrupted:
				// A clean chunk that served must be bit-identical to the
				// reference, session history notwithstanding: that IS the
				// resync guarantee.
				if len(out.Results) != len(ref) {
					at("%d frames served, reference has %d", len(out.Results), len(ref))
				}
				for i, fr := range out.Results {
					if fr.Display != out.Base+ref[i].Display || fr.Type != ref[i].Type {
						at("frame %d sequencing diverges from reference", i)
					}
					if fr.Dropped || fr.Mask == nil ||
						!bytes.Equal(fr.Mask.Pix, ref[i].Mask.Pix) {
						at("frame %d mask diverges from reference", i)
					}
				}
			}
		}
	}
	// The fixed seed must exercise both sides; if it stops doing so after a
	// scene or codec change, pick a new seed rather than weakening checks.
	if healthy == 0 {
		t.Fatal("seed produced no healthy session; comparison coverage lost")
	}
	if poisoned == 0 || midServeFailures == 0 {
		t.Fatalf("seed produced %d poisoned sessions, %d mid-serve failures; fault coverage lost",
			poisoned, midServeFailures)
	}

	rep := serverObs.Snapshot()
	if rep.Counters[obs.CounterDecodeErrors.String()] == 0 {
		t.Fatal("soak produced no decode-errors count despite mid-serve failures")
	}
	if rep.Counters[obs.CounterResyncs.String()] == 0 {
		t.Fatal("soak produced no resyncs count")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after soak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
