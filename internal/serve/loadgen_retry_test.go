package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"vrdann/internal/obs"
)

// TestLoadGenRetriesThroughBreakerWindow: a stream whose breaker is open
// when the generator starts submitting must recover — the 503-class
// rejection is retried with backoff until the window expires — and the
// spent retries must surface in the stream and aggregate reports.
func TestLoadGenRetriesThroughBreakerWindow(t *testing.T) {
	v := makeTestVideo(10, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)

	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v), Obs: obs.New(),
		BreakerThreshold: 2, BreakerBackoff: 150 * time.Millisecond, BreakerMaxTrips: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	g := &LoadGen{
		Server:       srv,
		Streams:      1,
		Chunks:       func(int) [][]byte { return [][]byte{chunk} },
		RetryBackoff: 20 * time.Millisecond,
		// Trip the breaker before the generator's first submit: two bad
		// chunks in a row open a 150ms window the clean chunk then has to
		// retry through.
		OnSession: func(_ int, s *Session) {
			for i := 0; i < 2; i++ {
				c, err := s.Submit(context.Background(), bad)
				if err != nil {
					t.Errorf("bad chunk rejected at admission: %v", err)
					return
				}
				if _, werr := c.Wait(context.Background()); werr == nil {
					t.Error("bad chunk served cleanly")
				}
			}
		},
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.PerStream[0]
	if !sr.Admitted || sr.Err != "" {
		t.Fatalf("stream did not recover through the breaker window: %+v", sr)
	}
	if sr.Retries == 0 || rep.Retries != sr.Retries {
		t.Fatalf("retries not reported: stream %d, aggregate %d", sr.Retries, rep.Retries)
	}
	if sr.Frames != len(v.Frames) {
		t.Fatalf("served %d frames, want %d", sr.Frames, len(v.Frames))
	}
}

// TestLoadGenRetryDisabled: Retries < 0 restores the old terminal
// behaviour — the breaker rejection ends the stream and is reported, not
// retried.
func TestLoadGenRetryDisabled(t *testing.T) {
	v := makeTestVideo(10, 1.5)
	chunk := encodeTestVideo(t, v)
	bad := truncateChunk(t, chunk)

	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v), Obs: obs.New(),
		BreakerThreshold: 2, BreakerBackoff: 10 * time.Second, BreakerMaxTrips: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	g := &LoadGen{
		Server:  srv,
		Streams: 1,
		Retries: -1,
		Chunks:  func(int) [][]byte { return [][]byte{chunk} },
		OnSession: func(_ int, s *Session) {
			for i := 0; i < 2; i++ {
				if c, err := s.Submit(context.Background(), bad); err == nil {
					_, _ = c.Wait(context.Background())
				}
			}
		},
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.PerStream[0]
	if !strings.Contains(sr.Err, ErrSessionBroken.Error()) {
		t.Fatalf("stream error = %q, want an ErrSessionBroken rejection", sr.Err)
	}
	if rep.Retries != 0 {
		t.Fatalf("retries spent with retry disabled: %d", rep.Retries)
	}
}
