package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

func makeTestVideo(frames int, speed float64) *video.Video {
	return video.Generate(video.SceneSpec{
		Name: "serve-test", W: 64, H: 48, Frames: frames, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 24, Y: 24,
			VX: speed, VY: speed / 2, Intensity: 220, Foreground: true,
		}},
	})
}

func encodeTestVideo(t *testing.T, v *video.Video) []byte {
	t.Helper()
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st.Data
}

// requireNoGoroutineLeak mirrors the core leak harness: fn must return the
// process to its starting goroutine count.
func requireNoGoroutineLeak(t *testing.T, fn func()) {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// oracleFor builds the deterministic per-session NN-L used throughout: the
// oracle reseeds per Segment call, so two instances with the same seed
// produce identical masks regardless of call interleaving — which is what
// lets the test compare served masks against a standalone serial run.
func oracleFor(v *video.Video) func(id string) segment.Segmenter {
	return func(id string) segment.Segmenter {
		return segment.NewOracle(id, v.Masks, 0.05, 2, 7)
	}
}

// serialReference runs the single-stream serial pipeline over one chunk —
// the gold standard the serving layer must match bit-for-bit.
func serialReference(t *testing.T, v *video.Video, chunk []byte, nns *nn.RefineNet) []core.MaskOut {
	t.Helper()
	sp := &core.StreamingPipeline{
		NNL: segment.NewOracle("ref", v.Masks, 0.05, 2, 7),
		NNS: nns, Refine: nns != nil, Workers: 1,
	}
	var out []core.MaskOut
	err := sp.Run(chunk, core.DisplayOrder(func(m core.MaskOut) error {
		out = append(out, m)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerMultiStream is the acceptance run: more streams than the
// admission cap, all admitted streams served concurrently under -race,
// masks bit-identical to the serial single-stream run, per-session
// histograms populated, clean drain with zero leaked goroutines.
func TestServerMultiStream(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)

	const streams, cap = 11, 8
	const chunksPerStream = 2
	serverObs := obs.New()
	var rep *LoadReport
	sessions := make(map[int]*Session)
	var mu sync.Mutex
	requireNoGoroutineLeak(t, func() {
		srv, err := NewServer(Config{
			MaxSessions:  cap,
			Workers:      4,
			NewSegmenter: oracleFor(v),
			NNS:          nns,
			Obs:          serverObs,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen := &LoadGen{
			Server:  srv,
			Streams: streams,
			Chunks: func(int) [][]byte {
				// The same chunk twice: the second submission exercises the
				// decoder Reset path and the session-relative display offset.
				return [][]byte{chunk, chunk}
			},
			OnSession: func(i int, s *Session) {
				mu.Lock()
				sessions[i] = s
				mu.Unlock()
			},
		}
		rep, err = gen.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Collect per-session metrics before the server retires them.
		if err := srv.Close(context.Background()); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})

	if rep.Admitted != cap || rep.AdmissionRejects != streams-cap {
		t.Fatalf("admitted %d rejects %d, want %d/%d",
			rep.Admitted, rep.AdmissionRejects, cap, streams-cap)
	}
	wantFrames := cap * chunksPerStream * 18
	if rep.Frames != wantFrames {
		t.Fatalf("served %d frames, want %d", rep.Frames, wantFrames)
	}
	if rep.Dropped != 0 || rep.DropRate != 0 {
		t.Fatalf("no-budget run dropped %d frames", rep.Dropped)
	}
	if rep.FPS <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("degenerate latency stats: %+v", rep)
	}

	// Per-session obs histograms: every pipeline stage a served frame
	// crosses must have recorded spans.
	for i, s := range sessions {
		snap := s.Metrics()
		if snap == nil {
			t.Fatalf("session %d: nil metrics", i)
		}
		want := map[string]bool{"nn-l": false, "reconstruct": false, "nn-s": false, "serve/frame": false}
		for _, st := range snap.Stages {
			if _, ok := want[st.Name]; ok && st.Count > 0 {
				want[st.Name] = true
			}
		}
		for name, seen := range want {
			if !seen {
				t.Fatalf("session %d: stage %q has no recorded spans", i, name)
			}
		}
		if snap.Counters["chunks"] != chunksPerStream {
			t.Fatalf("session %d: chunks counter = %d", i, snap.Counters["chunks"])
		}
	}

	// Server-wide accounting.
	srvSnap := serverObs.Snapshot()
	if srvSnap.Counters["rejects"] != int64(streams-cap) {
		t.Fatalf("server rejects counter = %d, want %d", srvSnap.Counters["rejects"], streams-cap)
	}
	if srvSnap.Counters["chunks"] != int64(cap*chunksPerStream) {
		t.Fatalf("server chunks counter = %d", srvSnap.Counters["chunks"])
	}
}

// TestServedMasksBitIdenticalToSerial pins the core serving invariant
// directly: frames served through the shared scheduler under concurrent
// load equal a standalone serial run byte-for-byte, on both the first
// chunk (fresh decoder) and the second (Reset path).
func TestServedMasksBitIdenticalToSerial(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	ref := serialReference(t, v, chunk, nns)

	srv, err := NewServer(Config{
		MaxSessions:  8,
		Workers:      4,
		NewSegmenter: oracleFor(v),
		NNS:          nns,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[int][][]FrameResult) // stream -> chunk results
	var mu sync.Mutex
	gen := &LoadGen{
		Server:  srv,
		Streams: 8,
		Chunks:  func(int) [][]byte { return [][]byte{chunk, chunk} },
	}
	// Collect per-chunk results via sessions directly for exact slicing.
	var wg sync.WaitGroup
	for i := 0; i < gen.Streams; i++ {
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			defer s.Close()
			for c := 0; c < 2; c++ {
				ck, err := s.Submit(context.Background(), chunk)
				if err != nil {
					t.Errorf("stream %d chunk %d: %v", i, c, err)
					return
				}
				res, err := ck.Wait(context.Background())
				if err != nil {
					t.Errorf("stream %d chunk %d: %v", i, c, err)
					return
				}
				mu.Lock()
				results[i] = append(results[i], res)
				mu.Unlock()
			}
		}(i, s)
	}
	wg.Wait()
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < gen.Streams; i++ {
		for c, res := range results[i] {
			if len(res) != len(ref) {
				t.Fatalf("stream %d chunk %d: %d frames, want %d", i, c, len(res), len(ref))
			}
			for j, fr := range res {
				want := ref[j]
				if fr.Display != c*len(ref)+want.Display {
					t.Fatalf("stream %d chunk %d frame %d: display %d", i, c, j, fr.Display)
				}
				if fr.Type != want.Type || fr.Dropped {
					t.Fatalf("stream %d chunk %d frame %d: type/drop diverge", i, c, j)
				}
				if !bytes.Equal(fr.Mask.Pix, want.Mask.Pix) {
					t.Fatalf("stream %d chunk %d frame %d: mask differs from serial run", i, c, j)
				}
			}
		}
	}
}

// TestAdmissionRejectAtCap pins the session cap and the reject counter.
func TestAdmissionRejectAtCap(t *testing.T) {
	v := makeTestVideo(6, 1)
	col := obs.New()
	srv, err := NewServer(Config{MaxSessions: 2, Workers: 1, NewSegmenter: oracleFor(v), Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	s1, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third Open: %v, want ErrAdmission", err)
	}
	if got := col.Snapshot().Counters["rejects"]; got != 1 {
		t.Fatalf("rejects counter = %d", got)
	}
	// Closing a session frees its slot.
	s1.Close()
	if _, err := srv.Open(); err != nil {
		t.Fatalf("Open after close: %v", err)
	}
}

// TestQueuePolicies pins reject-vs-wait when the frame queue is full.
func TestQueuePolicies(t *testing.T) {
	v := makeTestVideo(12, 1)
	chunk := encodeTestVideo(t, v)

	// A segmenter that blocks until released keeps the queue saturated.
	release := make(chan struct{})
	var once sync.Once
	blocking := func(id string) segment.Segmenter {
		return &gateSegmenter{gate: release, inner: segment.NewOracle(id, v.Masks, 0, 0, 1)}
	}
	t.Run("reject", func(t *testing.T) {
		srv, err := NewServer(Config{
			MaxSessions: 1, MaxQueuedFrames: 12, Workers: 1,
			Policy: Reject, NewSegmenter: blocking,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(context.Background(), chunk); err != nil {
			t.Fatal(err)
		}
		// First chunk fills the 12-frame bound; the second must bounce.
		if _, err := s.Submit(context.Background(), chunk); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("second Submit: %v, want ErrQueueFull", err)
		}
		if got := s.Metrics().Counters["rejects"]; got != 1 {
			t.Fatalf("session rejects = %d", got)
		}
		once.Do(func() { close(release) })
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("wait-context", func(t *testing.T) {
		gate := make(chan struct{})
		srv, err := NewServer(Config{
			MaxSessions: 1, MaxQueuedFrames: 12, Workers: 1,
			Policy: Wait,
			NewSegmenter: func(id string) segment.Segmenter {
				return &gateSegmenter{gate: gate, inner: segment.NewOracle(id, v.Masks, 0, 0, 1)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(context.Background(), chunk); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		// The queue stays full (segmenter gated), so the Wait-policy Submit
		// must block until its context fires.
		if _, err := s.Submit(ctx, chunk); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("waiting Submit: %v, want DeadlineExceeded", err)
		}
		close(gate)
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

// gateSegmenter blocks every Segment call until its gate closes.
type gateSegmenter struct {
	gate  <-chan struct{}
	inner segment.Segmenter
}

func (g *gateSegmenter) Name() string { return g.inner.Name() }
func (g *gateSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	<-g.gate
	return g.inner.Segment(f, display)
}

// TestDeadlineDropPolicy: with an immediately expired budget every B-frame
// is shed while anchors are still computed — the anchor chain survives
// overload.
func TestDeadlineDropPolicy(t *testing.T) {
	v := makeTestVideo(18, 1.5)
	chunk := encodeTestVideo(t, v)
	col := obs.New()
	srv, err := NewServer(Config{
		MaxSessions: 1, Workers: 1,
		FrameBudget:  time.Nanosecond,
		NewSegmenter: oracleFor(v),
		Obs:          col,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(context.Background(), chunk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	nB, nDropped := 0, 0
	for _, fr := range res {
		if fr.Type == codec.BFrame {
			nB++
			if !fr.Dropped || fr.Mask != nil {
				t.Fatalf("frame %d: expired B-frame not dropped", fr.Display)
			}
			nDropped++
		} else {
			if fr.Dropped || fr.Mask == nil {
				t.Fatalf("frame %d: anchor must never be dropped", fr.Display)
			}
		}
	}
	if nB == 0 {
		t.Fatal("test stream has no B-frames")
	}
	if got := col.Snapshot().Counters["drops"]; got != int64(nDropped) {
		t.Fatalf("drops counter = %d, want %d", got, nDropped)
	}
}

// TestCloseCancelsInFlight: a Close whose context is already cancelled
// force-fails pending chunks but still drains every goroutine.
func TestCloseCancelsInFlight(t *testing.T) {
	v := makeTestVideo(18, 1)
	chunk := encodeTestVideo(t, v)
	gate := make(chan struct{})
	requireNoGoroutineLeak(t, func() {
		srv, err := NewServer(Config{
			MaxSessions: 2, Workers: 1,
			NewSegmenter: func(id string) segment.Segmenter {
				return &gateSegmenter{gate: gate, inner: segment.NewOracle(id, v.Masks, 0, 0, 1)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Submit(context.Background(), chunk)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		closed := make(chan error, 1)
		go func() { closed <- srv.Close(ctx) }()
		// The gated segmenter holds the worker; the forced drain cancels the
		// server context, the blocked step resolves once released, and the
		// chunk fails with the cancellation.
		time.Sleep(20 * time.Millisecond)
		close(gate)
		if err := <-closed; !errors.Is(err, context.Canceled) {
			t.Fatalf("Close = %v, want context.Canceled", err)
		}
		if _, err := c.Wait(context.Background()); err == nil {
			t.Fatal("chunk served despite forced shutdown")
		}
		if _, err := srv.Open(); !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Open after Close: %v", err)
		}
	})
}

// TestSubmitRejectsMalformedAndMismatched covers the validation edge.
func TestSubmitRejectsMalformedAndMismatched(t *testing.T) {
	v := makeTestVideo(8, 1)
	chunk := encodeTestVideo(t, v)
	srv, err := NewServer(Config{MaxSessions: 1, Workers: 1, NewSegmenter: oracleFor(v)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	s, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), []byte{1, 2, 3}); err == nil {
		t.Fatal("malformed chunk must be rejected at submit")
	}
	if _, err := s.Submit(context.Background(), chunk); err != nil {
		t.Fatal(err)
	}
	other := video.Generate(video.SceneSpec{
		Name: "other", W: 32, H: 32, Frames: 6, Seed: 1,
		Objects: []video.ObjectSpec{{Shape: video.ShapeDisk, Radius: 6, X: 12, Y: 12, Intensity: 200, Foreground: true}},
	})
	if _, err := s.Submit(context.Background(), encodeTestVideo(t, other)); err == nil {
		t.Fatal("geometry mismatch must be rejected")
	}
	s.Close()
	if _, err := s.Submit(context.Background(), chunk); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Submit on closed session: %v", err)
	}
}

// TestOpenLoopLoadGen exercises the paced submission path.
func TestOpenLoopLoadGen(t *testing.T) {
	v := makeTestVideo(10, 1)
	chunk := encodeTestVideo(t, v)
	srv, err := NewServer(Config{MaxSessions: 4, Workers: 2, NewSegmenter: oracleFor(v)})
	if err != nil {
		t.Fatal(err)
	}
	gen := &LoadGen{
		Server:   srv,
		Streams:  3,
		Interval: time.Millisecond,
		Chunks:   func(int) [][]byte { return [][]byte{chunk, chunk, chunk} },
	}
	rep, err := gen.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 3*3*10 {
		t.Fatalf("open-loop served %d frames, want %d", rep.Frames, 90)
	}
	if rep.Admitted != 3 || rep.AdmissionRejects != 0 {
		t.Fatalf("admission: %+v", rep)
	}
}
