package serve

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/contentcache"
	"vrdann/internal/core"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// trainedNNS trains the refinement net once per test binary: the ladder
// quality and overload tests both need a net whose refinements actually beat
// the raw MV reconstruction, or degrading a rung could *improve* IoU and the
// monotonicity assertions would be meaningless.
var (
	trainNNSOnce sync.Once
	trainedNet   *nn.RefineNet
	trainNNSErr  error
)

func trainedNNS(t *testing.T) *nn.RefineNet {
	t.Helper()
	trainNNSOnce.Do(func() {
		trainedNet, trainNNSErr = core.TrainNNS(
			video.MakeTrainingSet(64, 48, 16), codec.DefaultConfig(),
			core.TrainConfig{Features: 8, Epochs: 2, LR: 0.01, Seed: 3})
	})
	if trainNNSErr != nil {
		t.Fatal(trainNNSErr)
	}
	return trainedNet
}

// meanBFrameIoU averages IoU against ground truth over the B-frames of one
// result set; dropped frames contribute zero, which is exactly the quality
// cost of shedding.
func meanBFrameIoU(results []FrameResult, gt []*video.Mask) float64 {
	var sum float64
	n := 0
	for _, r := range results {
		if r.Type != codec.BFrame {
			continue
		}
		n++
		if r.Mask != nil {
			sum += segment.IoU(r.Mask, gt[r.Display%len(gt)])
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestLadderStepQualityMonotone pins the ladder's ordering contract: each
// rung's quality on the same frames is at least the next-cheaper rung's, and
// a forced configuration selects its rung deterministically for every
// B-frame. Forcing uses the documented threshold escape hatches (negative =
// that rung always/never fires), so the test also pins those semantics.
func TestLadderStepQualityMonotone(t *testing.T) {
	v := makeTestVideo(18, 2.0)
	chunk := encodeTestVideo(t, v)
	nns := trainedNNS(t)

	rungs := []struct {
		step qos.Step
		cfg  qos.Config
	}{
		{qos.StepFull, qos.Config{FullBelow: 1e9, ReconAt: 1e18, SkipAt: 1e18}},
		{qos.StepRefine, qos.Config{FullBelow: -1, ReconAt: 1e18, SkipAt: 1e18}},
		{qos.StepRecon, qos.Config{FullBelow: -1, ReconAt: -1, SkipAt: 1e18}},
		{qos.StepSkip, qos.Config{SkipAt: -1}},
	}
	mean := make([]float64, len(rungs))
	for i, rung := range rungs {
		cfg := rung.cfg
		srv, err := NewServer(Config{
			MaxSessions:  1,
			Workers:      1,
			NewSegmenter: oracleFor(v),
			NNS:          nns,
			QoS:          &cfg,
			Obs:          obs.New(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Submit(context.Background(), chunk)
		if err != nil {
			t.Fatal(err)
		}
		results, err := c.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Type == codec.BFrame && r.Step != rung.step {
				t.Fatalf("rung %v: B-frame %d served on %v", rung.step, r.Display, r.Step)
			}
			if r.Type != codec.BFrame && r.Step != qos.StepFull {
				t.Fatalf("anchor %d reported step %v, want full", r.Display, r.Step)
			}
		}
		mean[i] = meanBFrameIoU(results, v.Masks)
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	const eps = 0.02
	for i := 0; i+1 < len(mean); i++ {
		if mean[i]+eps < mean[i+1] {
			t.Fatalf("ladder quality not monotone: %v=%.3f < %v=%.3f",
				rungs[i].step, mean[i], rungs[i+1].step, mean[i+1])
		}
	}
	if mean[0] < 0.5 {
		t.Fatalf("full rung IoU %.3f implausibly low", mean[0])
	}
	if mean[2] <= 0 {
		t.Fatal("recon rung produced no overlap with ground truth")
	}
	if mean[3] != 0 {
		t.Fatalf("skip rung IoU = %.3f, want 0 (every B-frame shed)", mean[3])
	}
}

// slowSegmenter adds a fixed compute cost per anchor so open-loop load
// sweeps create real queueing.
type slowSegmenter struct {
	d     time.Duration
	inner segment.Segmenter
}

func (s *slowSegmenter) Name() string { return s.inner.Name() }
func (s *slowSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	time.Sleep(s.d)
	return s.inner.Segment(f, display)
}

// TestOverloadDegradesGracefully is the open-loop overload run: arrival
// rate escalates well past capacity while the ladder, not the queue, absorbs
// the excess. Asserts the two halves of the QoS contract — p95 latency stays
// bounded at every load level, and quality (mean B-frame IoU) degrades
// monotonically as load rises — plus that the cheap rungs actually fired at
// the top level and the expensive one at the bottom.
func TestOverloadDegradesGracefully(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	chunk := encodeTestVideo(t, v)
	nns := trainedNNS(t)

	levels := []time.Duration{30 * time.Millisecond, 8 * time.Millisecond, 2 * time.Millisecond}
	const streams, chunksPer = 3, 5
	means := make([]float64, len(levels))
	p95s := make([]time.Duration, len(levels))
	snaps := make([]*obs.Report, len(levels))

	for li, interval := range levels {
		col := obs.New()
		srv, err := NewServer(Config{
			MaxSessions: streams,
			Workers:     2,
			NewSegmenter: func(id string) segment.Segmenter {
				return &slowSegmenter{d: 4 * time.Millisecond,
					inner: segment.NewOracle(id, v.Masks, 0.05, 2, 7)}
			},
			NNS:          nns,
			Policy:       Wait,
			MaxBatch:     4,
			MaxBatchWait: 5 * time.Millisecond,
			QoS:          &qos.Config{FullBelow: -1, ReconAt: 30, SkipAt: 60, Alpha: 0.3},
			Obs:          col,
		})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var sum float64
		n := 0
		chunks := make([][]byte, chunksPer)
		for i := range chunks {
			chunks[i] = chunk
		}
		g := &LoadGen{
			Server:   srv,
			Streams:  streams,
			Interval: interval,
			Chunks:   func(int) [][]byte { return chunks },
			Class: func(stream int) qos.Class {
				if stream%2 == 1 {
					return qos.ClassFree
				}
				return qos.ClassPremium
			},
			OnResult: func(_ int, r FrameResult) {
				if r.Type != codec.BFrame {
					return
				}
				mu.Lock()
				n++
				if r.Mask != nil {
					sum += segment.IoU(r.Mask, v.Masks[r.Display%len(v.Masks)])
				}
				mu.Unlock()
			},
		}
		rep, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("level %v served no B-frames", interval)
		}
		means[li] = sum / float64(n)
		p95s[li] = rep.P95
		snaps[li] = col.Snapshot()
	}

	for li := range levels {
		if p95s[li] > 3*time.Second {
			t.Fatalf("level %v: p95 = %v, not bounded under overload", levels[li], p95s[li])
		}
	}
	const tol = 0.03
	for i := 0; i+1 < len(means); i++ {
		if means[i+1] > means[i]+tol {
			t.Fatalf("IoU not monotone under load: level %v = %.3f > level %v = %.3f",
				levels[i+1], means[i+1], levels[i], means[i])
		}
	}
	if snaps[0].Counters[obs.CounterQoSRefine.String()] == 0 {
		t.Fatal("lightest level never served the refine rung")
	}
	top := snaps[len(snaps)-1].Counters
	if top[obs.CounterQoSRecon.String()]+top[obs.CounterQoSSkip.String()] == 0 {
		t.Fatal("heaviest level never degraded below refine")
	}
}

// TestDeadlineRetractionAtBatchDequeue pins satellite 1: a batched B-frame
// refinement whose chunk deadline expires while the item is still queued is
// retracted to the next-cheaper rung (the raw MV reconstruction) instead of
// computing stale NN work, counted on qos/deadline-overruns — and the
// degraded mask must NOT be committed to the content cache, or every later
// viewer of the content would be served it.
//
// Choreography (after TestForceCloseMirrorsQuantCounters): session B parks
// one of the two workers inside a gated NN-L execution; session A's anchors
// are pre-filled into the content cache so its first batch item is a B-frame
// refine. That item cannot flush — 1 pending < 2 busy workers, width 2, and
// the timer is 10s out — so it ages in the queue until the 600ms frame
// budget retracts it.
func TestDeadlineRetractionAtBatchDequeue(t *testing.T) {
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	vA, vB := contentVideo(0), contentVideo(1)
	chunkA, chunkB := encodeTestVideo(t, vA), encodeTestVideo(t, vB)
	ref := serialReference(t, vA, chunkA, nns)

	entered := make(chan struct{})
	gate := make(chan struct{})
	var opened int
	col := obs.New()
	srv, err := NewServer(Config{
		MaxSessions: 3,
		Workers:     2,
		NewSegmenter: func(string) segment.Segmenter {
			opened++
			if opened == 1 {
				return &signalGateSegmenter{entered: entered, gate: gate,
					inner: segment.NewOracle("gate", vB.Masks, 0.05, 2, 7)}
			}
			return segment.NewOracle("target", vA.Masks, 0.05, 2, 7)
		},
		NNS:          nns,
		FrameBudget:  600 * time.Millisecond,
		MaxBatch:     2,
		MaxBatchWait: 10 * time.Second,
		CacheBytes:   64 << 20,
		Obs:          col,
	})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	chB, err := sB.Submit(context.Background(), chunkB)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker 1 is parked inside B's NN-L execution

	sA, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	digest := codec.ChunkDigest(chunkA)
	for _, m := range ref {
		if !m.Type.IsAnchor() {
			continue
		}
		key := contentcache.Key{Content: digest, Display: m.Display, Model: sA.modelFP}
		_, f, owner := srv.cache.Acquire(key)
		if !owner {
			t.Fatalf("pre-fill of display %d lost ownership", m.Display)
		}
		f.Commit(m.Mask)
	}
	chA, err := sA.Submit(context.Background(), chunkA)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := chA.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	retracted := 0
	for _, r := range resA {
		switch {
		case r.Type.IsAnchor():
			if r.Step != qos.StepFull || r.Mask == nil {
				t.Fatalf("anchor %d: step %v mask %v", r.Display, r.Step, r.Mask != nil)
			}
		case r.Step == qos.StepRecon:
			retracted++
			if r.Mask == nil || r.Dropped {
				t.Fatalf("retracted frame %d has no reconstruction mask", r.Display)
			}
		default:
			if r.Step != qos.StepSkip || !r.Dropped {
				t.Fatalf("B-frame %d: step %v dropped=%v, want budget shed", r.Display, r.Step, r.Dropped)
			}
		}
	}
	if retracted != 1 {
		t.Fatalf("retracted frames = %d, want exactly 1 (only one refine was queued)", retracted)
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.CounterQoSDeadlineOverruns.String()]; got != 1 {
		t.Fatalf("qos/deadline-overruns = %d, want 1", got)
	}
	if snap.Counters[obs.CounterCacheFillAborts.String()] == 0 {
		t.Fatal("retracted refine's cache fill was not abandoned")
	}

	close(gate)
	if _, err := chB.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sB.Close()
	sA.Close()

	// No poisoning: a fresh session serving the same content must get the
	// full-quality pipeline bit-for-bit — the retracted frame's recon mask
	// must not have been published under the full-quality cache key.
	sC, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	chC, err := sC.Submit(context.Background(), chunkA)
	if err != nil {
		t.Fatal(err)
	}
	resC, err := chC.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(resC) != len(ref) {
		t.Fatalf("session C served %d frames, want %d", len(resC), len(ref))
	}
	for i, r := range resC {
		w := ref[i]
		if r.Display != w.Display || r.Dropped || r.Mask == nil {
			t.Fatalf("session C frame %d: display %d dropped=%v", i, r.Display, r.Dropped)
		}
		if r.Type == codec.BFrame && r.Step != qos.StepRefine {
			t.Fatalf("session C B-frame %d served on %v, want refine", r.Display, r.Step)
		}
		if !bytes.Equal(r.Mask.Pix, w.Mask.Pix) {
			t.Fatalf("session C frame %d diverges from serial reference: cache was poisoned", r.Display)
		}
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// panicGateSegmenter signals entry, then dies — the cache-fill owner that
// never publishes.
type panicGateSegmenter struct {
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
	inner   segment.Segmenter
}

func (g *panicGateSegmenter) Name() string { return g.inner.Name() }
func (g *panicGateSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	panic("owner killed mid-fill")
}

// TestAbandonedFillReoffered pins satellite 2: when a single-flight cache
// fill's owner dies mid-computation, the waiters must not leave the key
// permanently uncached. Exactly one waiter re-acquires the fill (and
// publishes when its own step settles); the rest compute locally without a
// second wait. The pin is the late viewer: it must serve every frame from
// the cache, which only holds if the re-offered fill was actually claimed
// and committed.
func TestAbandonedFillReoffered(t *testing.T) {
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	vA := contentVideo(0)
	chunkA := encodeTestVideo(t, vA)
	ref := serialReference(t, vA, chunkA, nns)

	entered := make(chan struct{})
	gate := make(chan struct{})
	var opened int
	col := obs.New()
	srv, err := NewServer(Config{
		MaxSessions: 5,
		Workers:     4,
		NewSegmenter: func(string) segment.Segmenter {
			opened++
			if opened == 1 {
				// Same oracle label as every other session: the model
				// fingerprint hashes the segmenter name, and the owner must
				// share the waiters' cache keys.
				return &panicGateSegmenter{entered: entered, gate: gate,
					inner: segment.NewOracle("target", vA.Masks, 0.05, 2, 7)}
			}
			return segment.NewOracle("target", vA.Masks, 0.05, 2, 7)
		},
		NNS:          nns,
		MaxBatch:     2, // batched execution confines the owner's panic to its item
		MaxBatchWait: 50 * time.Millisecond,
		CacheBytes:   64 << 20,
		Obs:          col,
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	chO, err := owner.Submit(context.Background(), chunkA)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // owner holds the display-0 fill, parked inside NN-L

	const waiters = 3
	tickets := make([]*Chunk, waiters)
	sessions := make([]*Session, waiters)
	for i := range sessions {
		s, err := srv.Open()
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		if tickets[i], err = s.Submit(context.Background(), chunkA); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.cacheWaiters.Load() != waiters {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("cache waiters = %d, want %d\n%s", srv.cacheWaiters.Load(), waiters, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // owner panics; its step fails and the fill is abandoned

	if _, err := chO.Wait(context.Background()); err == nil {
		t.Fatal("owner's chunk succeeded past a panicking segmenter")
	}
	for i, c := range tickets {
		res, err := c.Wait(context.Background())
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
		if len(res) != len(ref) {
			t.Fatalf("waiter %d served %d frames, want %d", i, len(res), len(ref))
		}
		for j, r := range res {
			if r.Mask == nil || !bytes.Equal(r.Mask.Pix, ref[j].Mask.Pix) {
				t.Fatalf("waiter %d frame %d diverges from serial reference", i, j)
			}
		}
	}
	owner.Close()
	for _, s := range sessions {
		s.Close()
	}

	// The pin: a late viewer must find every display cached. Pre-fix, the
	// abandoned display-0 fill was never re-offered, so the key stayed a
	// permanent miss and this session would compute it (17 hits, not 18).
	viewer, err := srv.Open()
	if err != nil {
		t.Fatal(err)
	}
	chV, err := viewer.Submit(context.Background(), chunkA)
	if err != nil {
		t.Fatal(err)
	}
	resV, err := chV.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range resV {
		if r.Mask == nil || !bytes.Equal(r.Mask.Pix, ref[j].Mask.Pix) {
			t.Fatalf("viewer frame %d diverges from serial reference", j)
		}
	}
	if got := viewer.Metrics().Counters[obs.CounterCacheHits.String()]; got != int64(len(ref)) {
		t.Fatalf("viewer cache hits = %d, want %d (abandoned fill was not re-offered)",
			got, len(ref))
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
