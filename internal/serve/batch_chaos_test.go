// Batched chaos soak: same fault model as TestChaosSoak, with the
// cross-session dynamic batcher enabled. Lives in the external test
// package for the same import-cycle reason.
package serve_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/fault"
	"vrdann/internal/fault/chaos"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
)

// TestChaosSoakBatched pins the fault-isolation contract of dynamic
// batching: with 20% of chunks corrupted and every NN step routed through
// shared fused batches, a poisoned session fails alone — its batch-mates'
// masks stay bit-identical to a clean serial run — and batch telemetry
// confirms the batched path actually ran.
func TestChaosSoakBatched(t *testing.T) {
	v := chaosVideo(18)
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chunk := st.Data
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)

	sp := &core.StreamingPipeline{
		NNL: segment.NewOracle("ref", v.Masks, 0.05, 2, 7),
		NNS: nns, Refine: true, Workers: 1,
	}
	var ref []core.MaskOut
	if err := sp.Run(chunk, core.DisplayOrder(func(m core.MaskOut) error {
		ref = append(ref, m)
		return nil
	})); err != nil {
		t.Fatal(err)
	}

	const sessions, chunks = 8, 6
	serverObs := obs.New()
	srv, err := serve.NewServer(serve.Config{
		MaxSessions: sessions,
		MaxBatch:    4,
		NewSegmenter: func(id string) segment.Segmenter {
			return segment.NewOracle(id, v.Masks, 0.05, 2, 7)
		},
		NNS:              nns,
		Obs:              serverObs,
		BreakerThreshold: 2,
		BreakerBackoff:   5 * time.Millisecond,
		BreakerMaxTrips:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chaos.Run(context.Background(), srv, chaos.Config{
		Sessions: sessions, Chunks: chunks, Chunk: chunk,
		Rate: 0.20, Seed: 1729, Kinds: fault.AllKinds,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if res.Hung != 0 {
		t.Fatalf("%d chunk tickets never resolved — batched serving path hung", res.Hung)
	}

	healthy, failures := 0, 0
	for si := range res.Sessions {
		rep := &res.Sessions[si]
		if rep.OpenErr != nil {
			t.Fatalf("session %d failed to open: %v", si, rep.OpenErr)
		}
		if !rep.Poisoned {
			healthy++
		}
		for ci, out := range rep.Outcomes {
			switch {
			case out.SubmitErr != nil:
				if !out.Corrupted && !rep.Poisoned {
					t.Fatalf("session %d chunk %d: healthy chunk rejected: %v", si, ci, out.SubmitErr)
				}
			case out.ServeErr != nil:
				failures++
				var ce *serve.ChunkError
				if !errors.As(out.ServeErr, &ce) {
					t.Fatalf("session %d chunk %d: unclassified serve error: %v", si, ci, out.ServeErr)
				}
				if !out.Corrupted && !errors.Is(out.ServeErr, serve.ErrSessionBroken) {
					t.Fatalf("session %d chunk %d: clean chunk failed mid-serve under batching: %v",
						si, ci, out.ServeErr)
				}
			case !out.Corrupted:
				// The isolation claim: this clean chunk shared fused batches
				// with corrupt sessions' frames, and must still match the
				// serial reference exactly.
				if len(out.Results) != len(ref) {
					t.Fatalf("session %d chunk %d: %d frames, want %d", si, ci, len(out.Results), len(ref))
				}
				for i, fr := range out.Results {
					if fr.Dropped || fr.Mask == nil || !bytes.Equal(fr.Mask.Pix, ref[i].Mask.Pix) {
						t.Fatalf("session %d chunk %d frame %d: mask diverges from serial under batched chaos",
							si, ci, i)
					}
				}
			}
		}
	}
	if healthy == 0 || failures == 0 {
		t.Fatalf("seed gave %d healthy sessions, %d failures; coverage lost — pick a new seed",
			healthy, failures)
	}
	snap := serverObs.Snapshot()
	if snap.Counters[obs.CounterBatchItems.String()] == 0 {
		t.Fatal("soak recorded no batched items — batching was not exercised")
	}
	if snap.Hist("batch-occupancy") == nil {
		t.Fatal("soak recorded no batch-occupancy histogram")
	}
}
