package serve

import (
	"context"
	"sort"
	"sync"

	"vrdann/internal/obs"
)

// Broadcast is the single-decode fan-out mode for hot content: one backing
// session decodes and segments each submitted chunk exactly once, and the
// per-frame results are fanned to every attached viewer. Where the content
// cache deduplicates NN work across sessions that each still decode, a
// broadcast removes even the per-viewer decode — the right tool when the
// operator knows up front that N viewers watch the same live stream in
// lockstep (the cache covers the general case of overlapping popularity).
//
// Viewers receive every result of a chunk, in display order, via the
// callback they attached with. Callbacks run on the Submit caller's
// goroutine, viewer by viewer in attach order; a slow callback delays later
// viewers of that frame, never the backing session's compute.
type Broadcast struct {
	srv *Server
	s   *Session

	mu      sync.Mutex
	viewers map[int]func(FrameResult)
	nextID  int
}

// Viewer is one attached consumer of a broadcast.
type Viewer struct {
	b  *Broadcast
	id int
}

// OpenBroadcast admits a broadcast backed by one ordinary session; the
// session draws on the same worker pool, batcher and content cache as every
// other, so a broadcast's anchors still seed the cache for non-broadcast
// sessions serving the same bytes.
func (srv *Server) OpenBroadcast() (*Broadcast, error) {
	s, err := srv.Open()
	if err != nil {
		return nil, err
	}
	return &Broadcast{srv: srv, s: s, viewers: make(map[int]func(FrameResult))}, nil
}

// Session exposes the backing session (metrics, ID).
func (b *Broadcast) Session() *Session { return b.s }

// Attach registers a viewer. The callback receives every frame of every
// chunk submitted after the attach.
func (b *Broadcast) Attach(onResult func(FrameResult)) *Viewer {
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.viewers[id] = onResult
	n := len(b.viewers)
	b.mu.Unlock()
	b.srv.cfg.Obs.GaugeSet(obs.GaugeBroadcastViewers, int64(n))
	return &Viewer{b: b, id: id}
}

// Detach removes the viewer; it stops receiving results at the next chunk
// boundary (a concurrent Submit may still deliver the chunk in flight).
func (v *Viewer) Detach() {
	b := v.b
	b.mu.Lock()
	delete(b.viewers, v.id)
	n := len(b.viewers)
	b.mu.Unlock()
	b.srv.cfg.Obs.GaugeSet(obs.GaugeBroadcastViewers, int64(n))
}

// Viewers reports the attached viewer count.
func (b *Broadcast) Viewers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.viewers)
}

// Submit serves one chunk through the backing session — decoded and
// segmented once — then fans the display-ordered results to every attached
// viewer and returns them. The fanout counter records viewer-frames
// delivered beyond the single compute (frames × viewers).
func (b *Broadcast) Submit(ctx context.Context, data []byte) ([]FrameResult, error) {
	c, err := b.s.Submit(ctx, data)
	if err != nil {
		return nil, err
	}
	res, err := c.Wait(ctx)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	ids := make([]int, 0, len(b.viewers))
	for id := range b.viewers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cbs := make([]func(FrameResult), len(ids))
	for i, id := range ids {
		cbs[i] = b.viewers[id]
	}
	b.mu.Unlock()
	for _, cb := range cbs {
		for _, r := range res {
			cb(r)
		}
	}
	b.srv.cfg.Obs.Count(obs.CounterBroadcastFrames, int64(len(res))*int64(len(cbs)))
	return res, nil
}

// Close drains the backing session; viewers receive nothing further.
func (b *Broadcast) Close() {
	b.s.Close()
}
