// Acceptance gate for the online-adaptation drift figure. This lives in an
// external test package so it can drive the real experiments harness — the
// same code path that renders the committed BENCH figure — through a full
// frozen-vs-adapted serving comparison, at a reduced scale that keeps the
// -race run affordable.
package serve_test

import (
	"testing"
	"time"

	"vrdann/internal/experiments"
)

// TestAdaptFigureDriftRecovery pins the tier's two headline contracts on the
// content-drift stream, end to end through the serving stack:
//
//  1. Quality: the adapted row's late rolling refined-vs-anchor F strictly
//     exceeds the frozen row's — the tier measurably closed part of the
//     distribution gap, judged by the same drift signal its own promotion
//     safety net watches.
//  2. Latency: shadow training does not blow up serving. The bound is
//     deliberately generous (single-core containers timeshare one straggler
//     step with serving, and -race inflates everything), but it would catch
//     a trainer that competes with the serving path in earnest.
func TestAdaptFigureDriftRecovery(t *testing.T) {
	// Native figure resolution — the regime the committed BENCH row runs in —
	// with shorter sequences to keep the run affordable.
	cfg := experiments.Default()
	cfg.Frames, cfg.TrainFrames = 24, 16
	// The think gap is the trainer's whole compute budget; -race inflates a
	// fine-tune step several-fold, so the gap is widened in proportion to
	// keep the adaptation schedule (steps before each evaluation, promotions
	// per run) comparable to the uninstrumented figure.
	cfg.AdaptThink = time.Second
	rows, err := experiments.New(cfg).AdaptFigure()
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]experiments.AdaptRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	frozen, ok := byMode["frozen"]
	if !ok {
		t.Fatal("figure has no frozen row")
	}
	adapted, ok := byMode["adapted"]
	if !ok {
		t.Fatal("figure has no adapted row")
	}
	if frozen.TrainSteps != 0 || frozen.Promotions != 0 {
		t.Fatalf("frozen row trained: %d steps, %d promotions", frozen.TrainSteps, frozen.Promotions)
	}
	if adapted.TrainSteps == 0 {
		t.Fatal("adapted row took no training steps — the idle gate never opened")
	}
	if adapted.Promotions == 0 {
		t.Fatal("adapted row promoted no weights — adaptation never reached serving")
	}
	if adapted.LateDriftF <= frozen.LateDriftF {
		t.Fatalf("late rolling F: adapted %.4f does not beat frozen %.4f",
			adapted.LateDriftF, frozen.LateDriftF)
	}
	if limit := 3*frozen.P95MS + 100; adapted.P95MS > limit {
		t.Fatalf("adapted p95 %.1fms exceeds %.1fms (frozen %.1fms): training is delaying frames",
			adapted.P95MS, limit, frozen.P95MS)
	}
}
