package serve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vrdann/internal/adapt"
	"vrdann/internal/codec"
	"vrdann/internal/contentcache"
	"vrdann/internal/core"
	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/video"
)

// sessionState is the session lifecycle: Active accepts chunks, Draining
// serves what it has and then retires, Closed is retired.
type sessionState int

const (
	stateActive sessionState = iota
	stateDraining
	stateClosed
)

// FrameResult is one served frame. Display counts from the start of the
// session (chunk frame counts accumulate), so a session is addressable as
// one continuous stream across chunk boundaries.
type FrameResult struct {
	Display int
	Type    codec.FrameType
	// Mask is the frame's segmentation; nil when the frame was dropped.
	Mask    *video.Mask
	Dropped bool
	// Step is the QoS ladder rung the frame was served on (qos.StepFull
	// for anchors, which are never degraded). On a server without the
	// ladder it is qos.StepRefine for served B-frames and qos.StepSkip for
	// budget-shed ones — the binary pre-ladder policy expressed in ladder
	// terms.
	Step qos.Step
	// Latency is chunk arrival to frame completion — queueing included,
	// which is the number a serving SLA is written against.
	Latency time.Duration
}

// Chunk is the ticket for one submitted bitstream chunk.
type Chunk struct {
	frames  int
	arrived time.Time
	arrT    time.Duration // session collector clock token at arrival

	// digest content-addresses the chunk bytes for the shared mask cache
	// (codec.ChunkDigest); zero unless the server has a cache.
	digest uint64

	data    []byte
	results []FrameResult // decode order while serving; display order at completion
	err     error
	done    chan struct{}
}

// Frames reports how many frames the chunk carries.
func (c *Chunk) Frames() int { return c.frames }

// Wait blocks until the chunk is fully served (or failed) or ctx fires.
// On success the results are in display order.
func (c *Chunk) Wait(ctx context.Context) ([]FrameResult, error) {
	select {
	case <-c.done:
		return c.results, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Session is one admitted video stream: its decoder, its streaming-pipeline
// state (reference window, refiner), its frame queue and its metrics
// collector. Chunks submitted to a session are served strictly in order.
type Session struct {
	ID  string
	srv *Server
	obs *obs.Collector // per-session collector; never nil

	pipe *core.StreamingPipeline
	// modelFP fingerprints the mask-shaping configuration for content-cache
	// keys (contentcache.Fingerprint). Immutable after Open on a server
	// without the adaptation tier; on an adapting session it is rebuilt —
	// only by the worker that holds running, at chunk boundaries — from
	// baseFP and the promoted weights version (contentcache.AdaptedFingerprint).
	modelFP uint64
	// baseFP is the base-model fingerprint an adapting session derives its
	// versioned modelFP from. Immutable after Open; zero without adaptation.
	baseFP uint64
	// adapter, when non-nil, is the session's online-adaptation state
	// (internal/adapt). Its handle is immutable after Open (cleared only at
	// retirement under srv.mu); the Adapter itself is safe for the worker's
	// concurrent Harvest/ObserveDrift/TakePromoted calls.
	adapter *adapt.Adapter
	// class is the session's QoS tier (see Config.QoS). Immutable after
	// Open.
	class qos.Class

	// Guarded by srv.mu.
	state   sessionState
	w, h    int      // geometry pinned by the first chunk
	queue   []*Chunk // submitted, not yet started
	cur     *Chunk   // chunk being served
	pending int      // frames admitted but not yet resolved
	queued  bool     // session is in srv.runq
	running bool     // a worker is stepping this session
	// Circuit-breaker state (also guarded by srv.mu): consecutive failed
	// chunks, breaker trips since the last success, and the end of the
	// current backoff window during which Submit bounces.
	consecFails int
	trips       int
	brokenUntil time.Time

	// Worker-only state: touched exclusively by the goroutine that holds
	// running, so it needs no lock. The decoder is allocated once and Reset
	// per chunk — the long-lived-session path of codec.StreamDecoder.
	dec  *codec.StreamDecoder
	eng  *core.StreamEngine
	base int // display offset of cur: frames resolved in earlier chunks
	// Open single-flight fill this session owes the content cache for the
	// frame currently being stepped; resolved (Commit or Abandon) before the
	// step returns.
	fill *contentcache.Fill
	// lastStep is the ladder rung chosen for the frame currently being
	// stepped (StepFull for anchors; overwritten by the selector for
	// B-frames and by a deadline retraction).
	lastStep qos.Step
	// adaptVersion is the adapted-weights version currently serving (0 =
	// base weights; incremented at each promotion or rollback pickup).
	adaptVersion uint64
	// lastAnchor is the most recent anchor mask served, the reference the
	// drift monitor scores refined B-frames against.
	lastAnchor *video.Mask
	// Last residual-skip counter values already mirrored into the
	// server-wide collector (see Session.mirrorQuantCounters).
	quantSkipped, quantDirty, quantUnknown int64
}

// Metrics snapshots the session's collector: per-stage latency histograms
// (nn-l, reconstruct, nn-s, serve/frame), gauges and counters.
func (s *Session) Metrics() *obs.Report { return s.obs.Snapshot() }

// Submit queues one independently encoded, GOP-aligned bitstream chunk.
// The header is validated up front (malformed chunks never enter the
// queue) and the frame count is charged against the session's queue bound:
// past it, Submit rejects (Reject policy) or blocks for space (Wait
// policy). The returned ticket resolves when every frame of the chunk has
// been served or dropped.
func (s *Session) Submit(ctx context.Context, data []byte) (*Chunk, error) {
	info, err := codec.ProbeStream(data)
	if err != nil {
		return nil, fmt.Errorf("serve: bad chunk: %w", err)
	}
	srv := s.srv
	var digest uint64
	if srv.cache != nil {
		// Hash outside the lock — O(len(data)). Corrupt bytes hash to their
		// own keys, so a poisoned copy of popular content cannot alias it.
		digest = codec.ChunkDigest(data)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if s.w == 0 && s.h == 0 {
		s.w, s.h = info.W, info.H
	} else if info.W != s.w || info.H != s.h {
		return nil, fmt.Errorf("serve: chunk geometry %dx%d differs from session %dx%d",
			info.W, info.H, s.w, s.h)
	}
	var stopWake func() bool
	for {
		if srv.draining {
			return nil, ErrServerClosed
		}
		if s.state != stateActive {
			return nil, ErrSessionClosed
		}
		if wait := time.Until(s.brokenUntil); wait > 0 {
			// Breaker open: bounce immediately rather than block — the
			// client should back off, not camp on queue space.
			s.obs.Count(obs.CounterRejects, 1)
			srv.cfg.Obs.Count(obs.CounterRejects, 1)
			return nil, fmt.Errorf("%w: retry in %v", ErrSessionBroken, wait.Round(time.Millisecond))
		}
		// An empty session always accepts one chunk, even oversized —
		// otherwise a chunk larger than the bound could never be served.
		if s.pending == 0 || s.pending+info.Frames <= srv.cfg.MaxQueuedFrames {
			break
		}
		if srv.cfg.Policy == Reject {
			s.obs.Count(obs.CounterRejects, 1)
			srv.cfg.Obs.Count(obs.CounterRejects, 1)
			return nil, ErrQueueFull
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if stopWake == nil {
			stopWake = context.AfterFunc(ctx, func() {
				srv.mu.Lock()
				srv.cond.Broadcast()
				srv.mu.Unlock()
			})
			defer stopWake()
		}
		srv.cond.Wait()
	}
	c := &Chunk{
		frames:  info.Frames,
		arrived: time.Now(),
		arrT:    s.obs.Clock(),
		digest:  digest,
		data:    data,
		done:    make(chan struct{}),
	}
	s.pending += info.Frames
	srv.pendingFrames.Add(int64(info.Frames))
	s.queue = append(s.queue, c)
	s.obs.Count(obs.CounterChunks, 1)
	srv.cfg.Obs.Count(obs.CounterChunks, 1)
	s.obs.GaugeSet(obs.GaugePending, int64(s.pending))
	srv.cfg.Obs.GaugeAdd(obs.GaugePending, int64(info.Frames))
	s.scheduleLocked()
	return c, nil
}

// Close stops accepting chunks; already-queued work is still served, after
// which the session retires from the server. Idempotent.
func (s *Session) Close() {
	s.srv.mu.Lock()
	defer s.srv.mu.Unlock()
	if s.state == stateActive {
		s.state = stateDraining
	}
	s.maybeRetireLocked()
}

// scheduleLocked puts the session on the run queue unless it is already
// there or a worker is stepping it (that worker re-schedules on exit).
// Caller holds srv.mu.
func (s *Session) scheduleLocked() {
	if s.queued || s.running || s.state == stateClosed {
		return
	}
	s.queued = true
	s.srv.runq <- s
}

// maybeRetireLocked removes a fully drained session from the server.
// Caller holds srv.mu.
func (s *Session) maybeRetireLocked() {
	if s.state != stateDraining || s.running || s.cur != nil || len(s.queue) > 0 {
		return
	}
	s.state = stateClosed
	delete(s.srv.sessions, s.ID)
	if ad := s.adapter; ad != nil {
		// Close blocks on the trainer's in-flight step, so it cannot run
		// under srv.mu. The server's WaitGroup tracks the shutdown: workers
		// still hold wg references here (retirement happens strictly before
		// Server.Close's session-drain wait can complete), so the Add never
		// races the final Wait, and Close observes every trainer gone.
		s.adapter = nil
		s.srv.wg.Add(1)
		go func() {
			defer s.srv.wg.Done()
			ad.Close()
		}()
	}
	s.srv.cfg.Obs.GaugeSet(obs.GaugeSessions, int64(len(s.srv.sessions)))
	s.srv.cond.Broadcast()
}

// completeLocked retires the chunk being served: results are re-sequenced
// into display order, the recovery policy classifies any failure (and may
// trip the session's breaker — see settleLocked), accounting is settled,
// and the ticket resolves. Only the worker that was stepping the chunk
// reaches here (via stepOnce), so touching worker-only counter state is
// safe. Caller holds srv.mu.
func (s *Session) completeLocked(c *Chunk, err error) {
	// Final counter mirror: the per-frame mirror runs only after successful
	// steps, so counts recorded by a step that then failed (decode error,
	// cancellation, breaker trip) would otherwise never reach the
	// server-wide collector.
	s.mirrorQuantCounters()
	c.err = s.settleLocked(err)
	sort.Slice(c.results, func(i, j int) bool { return c.results[i].Display < c.results[j].Display })
	s.pending -= c.frames
	s.srv.pendingFrames.Add(-int64(c.frames))
	s.obs.GaugeSet(obs.GaugePending, int64(s.pending))
	s.srv.cfg.Obs.GaugeAdd(obs.GaugePending, -int64(c.frames))
	s.base += c.frames
	s.cur = nil
	s.eng = nil
	close(c.done)
	// Queue space freed: wake Wait-policy submitters (and the drain loop).
	s.srv.cond.Broadcast()
}
