package detect

import (
	"math"
	"sort"
)

// NMS performs greedy non-maximum suppression: detections are visited in
// descending score order and any detection overlapping an already-kept one
// at IoU ≥ thresh is discarded. The standard post-processing for
// multi-object detectors.
func NMS(dets []Detection, thresh float64) []Detection {
	if len(dets) <= 1 {
		return append([]Detection(nil), dets...)
	}
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Score > sorted[b].Score })
	var kept []Detection
	for _, d := range sorted {
		suppressed := false
		for _, k := range kept {
			if d.Box.IoU(k.Box) >= thresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// SoftNMS is the Gaussian soft-NMS variant: instead of discarding
// overlapping detections it decays their scores by exp(-IoU²/sigma), then
// drops those below minScore. It preserves close-but-distinct objects that
// hard NMS would delete.
func SoftNMS(dets []Detection, sigma, minScore float64) []Detection {
	work := append([]Detection(nil), dets...)
	var kept []Detection
	for len(work) > 0 {
		// Pick the current maximum.
		best := 0
		for i := range work {
			if work[i].Score > work[best].Score {
				best = i
			}
		}
		m := work[best]
		work = append(work[:best], work[best+1:]...)
		if m.Score < minScore {
			continue
		}
		kept = append(kept, m)
		for i := range work {
			iou := m.Box.IoU(work[i].Box)
			if iou > 0 {
				work[i].Score *= gaussDecay(iou, sigma)
			}
		}
	}
	return kept
}

func gaussDecay(iou, sigma float64) float64 {
	return math.Exp(-iou * iou / sigma)
}
