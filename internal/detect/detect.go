// Package detect provides video object detection primitives: scored box
// detections, greedy matching, and the average-precision metrics (AP/mAP)
// the paper reports for ImageNet-VID-style evaluation (Fig 11).
package detect

import (
	"sort"

	"vrdann/internal/video"
)

// Detection is one scored box prediction in a frame.
type Detection struct {
	Box   video.Rect
	Score float64
}

// AP computes average precision for one sequence: preds[i] are the scored
// detections of frame i, gts[i] the ground-truth boxes of frame i. A
// detection is a true positive when it has IoU ≥ iouThresh with a
// not-yet-matched ground-truth box of its frame. The returned value is the
// area under the (all-point interpolated) precision–recall curve.
func AP(preds [][]Detection, gts [][]video.Rect, iouThresh float64) float64 {
	type flat struct {
		frame int
		det   Detection
	}
	var all []flat
	totalGT := 0
	for i, fr := range preds {
		for _, d := range fr {
			all = append(all, flat{i, d})
		}
	}
	for _, g := range gts {
		totalGT += len(g)
	}
	if totalGT == 0 {
		return 0
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].det.Score > all[b].det.Score })

	matched := make([]map[int]bool, len(gts))
	for i := range matched {
		matched[i] = map[int]bool{}
	}
	tps := make([]bool, len(all))
	for k, f := range all {
		best, bestIoU := -1, iouThresh
		for gi, g := range gts[f.frame] {
			if matched[f.frame][gi] {
				continue
			}
			if iou := f.det.Box.IoU(g); iou >= bestIoU {
				best, bestIoU = gi, iou
			}
		}
		if best >= 0 {
			matched[f.frame][best] = true
			tps[k] = true
		}
	}
	// Precision–recall curve.
	var tp, fp int
	precisions := make([]float64, len(all))
	recalls := make([]float64, len(all))
	for k := range all {
		if tps[k] {
			tp++
		} else {
			fp++
		}
		precisions[k] = float64(tp) / float64(tp+fp)
		recalls[k] = float64(tp) / float64(totalGT)
	}
	// All-point interpolation: make precision monotone non-increasing from
	// the right, then integrate over recall steps.
	for k := len(precisions) - 2; k >= 0; k-- {
		if precisions[k] < precisions[k+1] {
			precisions[k] = precisions[k+1]
		}
	}
	ap := 0.0
	prevR := 0.0
	for k := range all {
		if recalls[k] > prevR {
			ap += (recalls[k] - prevR) * precisions[k]
			prevR = recalls[k]
		}
	}
	return ap
}

// MeanAP averages AP over several sequences.
func MeanAP(seqPreds [][][]Detection, seqGTs [][][]video.Rect, iouThresh float64) float64 {
	if len(seqPreds) == 0 {
		return 0
	}
	var s float64
	for i := range seqPreds {
		s += AP(seqPreds[i], seqGTs[i], iouThresh)
	}
	return s / float64(len(seqPreds))
}

// GTBoxes adapts a video's per-frame ground truth to the [][]Rect shape the
// metrics take (one box per frame; empty frames yield no boxes).
func GTBoxes(v *video.Video) [][]video.Rect {
	out := make([][]video.Rect, v.Len())
	for i, b := range v.Boxes {
		if !b.Empty() {
			out[i] = []video.Rect{b}
		}
	}
	return out
}

// MaskToBox converts a segmentation mask to a single detection (its tight
// bounding box) with the given score; an empty mask yields no detections.
func MaskToBox(m *video.Mask, score float64) []Detection {
	bb := video.BoundingBox(m)
	if bb.Empty() {
		return nil
	}
	return []Detection{{Box: bb, Score: score}}
}

// RobustBox returns the bounding box of a mask's foreground after trimming
// the given fraction of extreme pixels on each side in x and y. It
// suppresses the macro-block protrusions a motion-vector-propagated mask
// carries, which would otherwise inflate the tight bounding box.
func RobustBox(m *video.Mask, trim float64) video.Rect {
	var xs, ys []int
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.Pix[y*m.W+x] != 0 {
				xs = append(xs, x)
				ys = append(ys, y)
			}
		}
	}
	if len(xs) == 0 {
		return video.Rect{}
	}
	sort.Ints(xs)
	sort.Ints(ys)
	lo := int(trim * float64(len(xs)))
	hi := len(xs) - 1 - lo
	return video.Rect{X0: xs[lo], Y0: ys[lo], X1: xs[hi] + 1, Y1: ys[hi] + 1}
}
