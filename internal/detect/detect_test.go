package detect

import (
	"math"
	"testing"

	"vrdann/internal/video"
)

func box(x, y, s int) video.Rect { return video.Rect{X0: x, Y0: y, X1: x + s, Y1: y + s} }

func TestAPPerfectDetections(t *testing.T) {
	gts := [][]video.Rect{{box(0, 0, 10)}, {box(5, 5, 10)}}
	preds := [][]Detection{
		{{Box: box(0, 0, 10), Score: 0.9}},
		{{Box: box(5, 5, 10), Score: 0.8}},
	}
	if ap := AP(preds, gts, 0.5); ap != 1 {
		t.Fatalf("AP = %v, want 1", ap)
	}
}

func TestAPAllMisses(t *testing.T) {
	gts := [][]video.Rect{{box(0, 0, 10)}}
	preds := [][]Detection{{{Box: box(50, 50, 10), Score: 0.9}}}
	if ap := AP(preds, gts, 0.5); ap != 0 {
		t.Fatalf("AP = %v, want 0", ap)
	}
}

func TestAPHalfDetected(t *testing.T) {
	// Two GT frames, only one detected: recall saturates at 0.5 with
	// precision 1 -> AP = 0.5.
	gts := [][]video.Rect{{box(0, 0, 10)}, {box(0, 0, 10)}}
	preds := [][]Detection{{{Box: box(0, 0, 10), Score: 0.9}}, nil}
	if ap := AP(preds, gts, 0.5); math.Abs(ap-0.5) > 1e-12 {
		t.Fatalf("AP = %v, want 0.5", ap)
	}
}

func TestAPRanksByScore(t *testing.T) {
	// A high-scoring false positive before the true positive lowers AP below
	// the reverse ordering.
	gts := [][]video.Rect{{box(0, 0, 10)}}
	fpFirst := [][]Detection{{
		{Box: box(50, 50, 10), Score: 0.9},
		{Box: box(0, 0, 10), Score: 0.5},
	}}
	tpFirst := [][]Detection{{
		{Box: box(50, 50, 10), Score: 0.5},
		{Box: box(0, 0, 10), Score: 0.9},
	}}
	if AP(fpFirst, gts, 0.5) >= AP(tpFirst, gts, 0.5) {
		t.Fatal("false positive ranked first must reduce AP")
	}
}

func TestAPNoDoubleMatch(t *testing.T) {
	// Two detections, one matching GT (IoU 1) and one below threshold
	// (box shifted 6: IoU = 40/160 = 0.25).
	gts := [][]video.Rect{{box(0, 0, 10)}}
	preds := [][]Detection{{
		{Box: box(0, 0, 10), Score: 0.9},
		{Box: box(6, 0, 10), Score: 0.8},
	}}
	ap := AP(preds, gts, 0.5)
	if ap != 1 {
		// Recall reaches 1 with the first detection at precision 1; AP stays 1
		// under all-point interpolation.
		t.Fatalf("AP = %v, want 1", ap)
	}
	// But flipping scores makes the FP come first: precision at full recall
	// is 0.5 and interpolation keeps max future precision = 0.5.
	preds[0][0].Score, preds[0][1].Score = 0.8, 0.9
	ap = AP(preds, gts, 0.5)
	if math.Abs(ap-0.5) > 1e-12 {
		t.Fatalf("AP = %v, want 0.5", ap)
	}
}

func TestAPIoUThreshold(t *testing.T) {
	gts := [][]video.Rect{{box(0, 0, 10)}}
	preds := [][]Detection{{{Box: box(4, 0, 10), Score: 0.9}}} // IoU = 60/140 ≈ 0.43
	if ap := AP(preds, gts, 0.5); ap != 0 {
		t.Fatalf("AP = %v, want 0 at 0.5 threshold", ap)
	}
	if ap := AP(preds, gts, 0.4); ap != 1 {
		t.Fatalf("AP = %v, want 1 at 0.4 threshold", ap)
	}
}

func TestMeanAP(t *testing.T) {
	gts := [][]video.Rect{{box(0, 0, 10)}}
	good := [][]Detection{{{Box: box(0, 0, 10), Score: 1}}}
	bad := [][]Detection{{{Box: box(90, 90, 5), Score: 1}}}
	m := MeanAP([][][]Detection{good, bad}, [][][]video.Rect{gts, gts}, 0.5)
	if m != 0.5 {
		t.Fatalf("MeanAP = %v, want 0.5", m)
	}
	if MeanAP(nil, nil, 0.5) != 0 {
		t.Fatal("empty MeanAP must be 0")
	}
}

func TestGTBoxesSkipsEmpty(t *testing.T) {
	v := &video.Video{Boxes: []video.Rect{box(0, 0, 4), {}}}
	v.Frames = []*video.Frame{video.NewFrame(8, 8), video.NewFrame(8, 8)}
	g := GTBoxes(v)
	if len(g[0]) != 1 || len(g[1]) != 0 {
		t.Fatalf("GTBoxes = %v", g)
	}
}

func TestMaskToBox(t *testing.T) {
	m := video.NewMask(16, 16)
	if MaskToBox(m, 1) != nil {
		t.Fatal("empty mask must yield no detections")
	}
	m.Set(3, 4, 1)
	m.Set(7, 9, 1)
	d := MaskToBox(m, 0.7)
	if len(d) != 1 || d[0].Box != (video.Rect{X0: 3, Y0: 4, X1: 8, Y1: 10}) || d[0].Score != 0.7 {
		t.Fatalf("MaskToBox = %+v", d)
	}
}

func TestNMSKeepsHighestAndSuppressesOverlap(t *testing.T) {
	dets := []Detection{
		{Box: box(0, 0, 10), Score: 0.6},
		{Box: box(1, 0, 10), Score: 0.9}, // overlaps first at IoU ~0.82
		{Box: box(40, 40, 10), Score: 0.5},
	}
	out := NMS(dets, 0.5)
	if len(out) != 2 {
		t.Fatalf("kept %d, want 2", len(out))
	}
	if out[0].Score != 0.9 || out[1].Score != 0.5 {
		t.Fatalf("wrong survivors: %+v", out)
	}
}

func TestNMSThresholdBoundary(t *testing.T) {
	a := box(0, 0, 10)
	b := box(5, 0, 10) // IoU = 1/3
	dets := []Detection{{Box: a, Score: 1}, {Box: b, Score: 0.9}}
	if got := NMS(dets, 0.3); len(got) != 1 {
		t.Fatalf("IoU 1/3 >= 0.3 should suppress, kept %d", len(got))
	}
	if got := NMS(dets, 0.4); len(got) != 2 {
		t.Fatalf("IoU 1/3 < 0.4 should keep both, kept %d", len(got))
	}
}

func TestNMSDoesNotMutateInput(t *testing.T) {
	dets := []Detection{{Box: box(0, 0, 4), Score: 0.2}, {Box: box(20, 0, 4), Score: 0.8}}
	NMS(dets, 0.5)
	if dets[0].Score != 0.2 {
		t.Fatal("input mutated")
	}
}

func TestSoftNMSDecaysInsteadOfDropping(t *testing.T) {
	dets := []Detection{
		{Box: box(0, 0, 10), Score: 0.9},
		{Box: box(2, 0, 10), Score: 0.85}, // large overlap
	}
	out := SoftNMS(dets, 0.5, 0.1)
	if len(out) != 2 {
		t.Fatalf("soft-NMS kept %d, want 2 (decayed, not dropped)", len(out))
	}
	if out[1].Score >= 0.85 {
		t.Fatalf("overlapping score not decayed: %v", out[1].Score)
	}
	// With a high floor the decayed one disappears.
	out = SoftNMS(dets, 0.1, 0.5)
	if len(out) != 1 {
		t.Fatalf("strict soft-NMS kept %d, want 1", len(out))
	}
}
