// Package baseline implements the comparison schemes of the paper's
// evaluation: OSVOS and FAVOS (per-frame large-network segmentation, the
// latter with part tracking), DFF (key-frame segmentation with optical-flow
// propagation), Euphrates (key-frame detection with motion-vector box
// extrapolation) and a SELSA-like sequence-level aggregation detector.
//
// All baselines consume the same encoded bitstream as VR-DANN so the
// architecture simulator can charge each scheme its true decode + NN work.
package baseline

import (
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/flow"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// SegResult is the output of a segmentation baseline.
type SegResult struct {
	Masks  []*video.Mask
	Decode *codec.DecodeResult
	// NNRuns counts large-network invocations (per-frame cost driver).
	NNRuns int
	// FlowRuns counts optical-flow extractions (DFF only).
	FlowRuns int
}

// RunOSVOS models OSVOS: the bitstream is fully decoded and two large
// networks (foreground and contour branches) run on every frame. The
// supplied segmenter stands in for the OSVOS model; it is invoked once per
// frame and NNRuns counts two network passes per frame to reflect the
// two-stream cost.
func RunOSVOS(stream []byte, seg segment.Segmenter) (*SegResult, error) {
	dec, err := codec.Decode(stream, codec.DecodeFull)
	if err != nil {
		return nil, fmt.Errorf("baseline: osvos decode: %w", err)
	}
	res := &SegResult{Decode: dec, Masks: make([]*video.Mask, len(dec.Frames))}
	for d, f := range dec.Frames {
		res.Masks[d] = seg.Segment(f, d)
		res.NNRuns += 2 // foreground + contour branches
	}
	return res, nil
}

// RunFAVOS models FAVOS: a conventional part tracker localizes object parts
// frame to frame, and the large network segments every frame with the
// tracked region of interest suppressing far-field false positives. Like
// the real semi-supervised FAVOS, the tracker is initialized from the
// first-frame annotation (init); passing nil initializes from the
// network's own first-frame output instead.
func RunFAVOS(stream []byte, seg segment.Segmenter, init *video.Mask) (*SegResult, error) {
	dec, err := codec.Decode(stream, codec.DecodeFull)
	if err != nil {
		return nil, fmt.Errorf("baseline: favos decode: %w", err)
	}
	res := &SegResult{Decode: dec, Masks: make([]*video.Mask, len(dec.Frames))}
	var tracker *partTracker
	for d, f := range dec.Frames {
		raw := seg.Segment(f, d)
		res.NNRuns++
		m := raw
		if tracker == nil {
			seed := init
			if seed == nil {
				seed = raw
			}
			tracker = newPartTracker(f, seed)
		} else {
			roi := tracker.track(f)
			// The ROI localizes the tracked objects; it must not clip a
			// component the tracker is actually following (tracking assists
			// segmentation, it does not veto it), so widen the ROI over the
			// network's own components that overlap it. Components appearing
			// far from any tracked target stay excluded — that is the
			// false-positive suppression part tracking buys.
			for _, own := range significantComponents(raw) {
				grown := video.Rect{X0: own.X0 - 2, Y0: own.Y0 - 2, X1: own.X1 + 2, Y1: own.Y1 + 2}
				if !grown.Intersect(roi).Empty() {
					roi = unionRect(roi, grown)
				}
			}
			m = intersectROI(raw, roi)
			// Re-derive the part grid from the ROI-validated output so a
			// single part-match miss cannot compound into losing an object.
			tracker.update(f, m)
		}
		res.Masks[d] = m
	}
	return res, nil
}

// partTracker follows up to four object parts by template matching, the
// mechanism FAVOS uses to localize parts before segmentation.
type partTracker struct {
	parts []video.Rect
	prev  *video.Frame
}

func newPartTracker(f *video.Frame, m *video.Mask) *partTracker {
	// Track the parts of every first-frame target (FAVOS is initialized
	// from the first-frame annotation, which covers all objects).
	var parts []video.Rect
	for _, bb := range significantComponents(m) {
		parts = append(parts, splitParts(bb)...)
	}
	return &partTracker{parts: parts, prev: f.Clone()}
}

// splitParts divides a bounding box into a 2×2 grid of part boxes.
func splitParts(bb video.Rect) []video.Rect {
	if bb.Empty() {
		return nil
	}
	cx, cy := (bb.X0+bb.X1)/2, (bb.Y0+bb.Y1)/2
	parts := []video.Rect{
		{X0: bb.X0, Y0: bb.Y0, X1: cx, Y1: cy},
		{X0: cx, Y0: bb.Y0, X1: bb.X1, Y1: cy},
		{X0: bb.X0, Y0: cy, X1: cx, Y1: bb.Y1},
		{X0: cx, Y0: cy, X1: bb.X1, Y1: bb.Y1},
	}
	out := parts[:0]
	for _, p := range parts {
		if !p.Empty() {
			out = append(out, p)
		}
	}
	return out
}

// track matches each part template from the previous frame in the current
// frame (±8 px search) and returns the union ROI, dilated by a margin.
func (t *partTracker) track(cur *video.Frame) video.Rect {
	const rang, margin = 8, 10
	union := video.Rect{}
	for i, p := range t.parts {
		best := int64(1) << 62
		bestDX, bestDY := 0, 0
		for dy := -rang; dy <= rang; dy += 2 {
			for dx := -rang; dx <= rang; dx += 2 {
				var s int64
				for y := p.Y0; y < p.Y1; y += 2 {
					for x := p.X0; x < p.X1; x += 2 {
						d := int64(cur.At(x+dx, y+dy)) - int64(t.prev.At(x, y))
						if d < 0 {
							d = -d
						}
						s += d
					}
				}
				if s < best {
					best, bestDX, bestDY = s, dx, dy
				}
			}
		}
		moved := p.Shift(bestDX, bestDY)
		t.parts[i] = moved
		if union.Empty() {
			union = moved
		} else {
			union = video.Rect{
				X0: minI(union.X0, moved.X0), Y0: minI(union.Y0, moved.Y0),
				X1: maxI(union.X1, moved.X1), Y1: maxI(union.Y1, moved.Y1),
			}
		}
	}
	union.X0 -= margin
	union.Y0 -= margin
	union.X1 += margin
	union.Y1 += margin
	return union
}

// update re-derives the part grid from the new segmentation when it is
// usable, keeping the tracker locked onto all current objects.
func (t *partTracker) update(f *video.Frame, m *video.Mask) {
	var parts []video.Rect
	for _, bb := range significantComponents(m) {
		parts = append(parts, splitParts(bb)...)
	}
	if len(parts) > 0 {
		t.parts = parts
	}
	t.prev = f.Clone()
}

// significantComponents lists the bounding boxes of mask components large
// enough to be tracked targets (≥ 0.2% of the frame, minimum 12 px).
func significantComponents(m *video.Mask) []video.Rect {
	minArea := m.W * m.H / 500
	if minArea < 12 {
		minArea = 12
	}
	return segment.ComponentBoxes(m, minArea)
}

func unionRect(a, b video.Rect) video.Rect {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	return video.Rect{
		X0: minI(a.X0, b.X0), Y0: minI(a.Y0, b.Y0),
		X1: maxI(a.X1, b.X1), Y1: maxI(a.Y1, b.Y1),
	}
}

func intersectROI(m *video.Mask, roi video.Rect) *video.Mask {
	if roi.Empty() {
		return m
	}
	out := video.NewMask(m.W, m.H)
	for y := maxI(roi.Y0, 0); y < minI(roi.Y1, m.H); y++ {
		for x := maxI(roi.X0, 0); x < minI(roi.X1, m.W); x++ {
			out.Pix[y*m.W+x] = m.Pix[y*m.W+x]
		}
	}
	return out
}

// DFFConfig configures the DFF baseline.
type DFFConfig struct {
	// KeyInterval is the fixed key-frame spacing (the paper criticizes this
	// arbitrary choice as DFF's accuracy weakness).
	KeyInterval int
	// FlowBlock and FlowRange parameterize the FlowNet-substitute optical
	// flow.
	FlowBlock, FlowRange int
}

// DefaultDFFConfig mirrors the paper's DFF setup at our sequence lengths.
func DefaultDFFConfig() DFFConfig {
	return DFFConfig{KeyInterval: 4, FlowBlock: 8, FlowRange: 8}
}

// RunDFF models deep feature flow: key frames (every KeyInterval) pass
// through the large network; for non-key frames optical flow against the
// key frame warps the key segmentation forward. Flow error accumulates with
// distance from the key frame, which is DFF's characteristic failure mode.
func RunDFF(stream []byte, seg segment.Segmenter, cfg DFFConfig) (*SegResult, error) {
	if cfg.KeyInterval <= 0 {
		return nil, fmt.Errorf("baseline: dff key interval must be positive, got %d", cfg.KeyInterval)
	}
	dec, err := codec.Decode(stream, codec.DecodeFull)
	if err != nil {
		return nil, fmt.Errorf("baseline: dff decode: %w", err)
	}
	res := &SegResult{Decode: dec, Masks: make([]*video.Mask, len(dec.Frames))}
	var keyFrame *video.Frame
	var keyMask *video.Mask
	for d, f := range dec.Frames {
		if d%cfg.KeyInterval == 0 {
			keyMask = seg.Segment(f, d)
			keyFrame = f
			res.NNRuns++
			res.Masks[d] = keyMask
			continue
		}
		fl := flow.BlockFlow(f, keyFrame, cfg.FlowBlock, cfg.FlowRange)
		res.FlowRuns++
		res.Masks[d] = flow.WarpMask(keyMask, fl)
	}
	return res, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
