package baseline

import (
	"fmt"
	"math/rand"

	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/detect"
	"vrdann/internal/flow"
	"vrdann/internal/video"
)

// DetResult is the output of a detection baseline.
type DetResult struct {
	Detections [][]detect.Detection
	Decode     *codec.DecodeResult
	NNRuns     int
}

// OracleBoxDetector is the detection analogue of segment.Oracle: it returns
// the ground-truth box jittered by per-frame deterministic noise of the
// given magnitude (pixels), standing in for a trained detector head.
type OracleBoxDetector struct {
	Label  string
	GT     []video.Rect
	Jitter float64
	Seed   int64
}

// Name implements core.BoxDetector.
func (o *OracleBoxDetector) Name() string { return o.Label }

// Detect implements core.BoxDetector.
func (o *OracleBoxDetector) Detect(_ *video.Frame, display int) []detect.Detection {
	gt := o.GT[display]
	if gt.Empty() {
		return nil
	}
	rng := rand.New(rand.NewSource(o.Seed + int64(display)*104729))
	j := func() int { return int(rng.NormFloat64() * o.Jitter) }
	b := video.Rect{X0: gt.X0 + j(), Y0: gt.Y0 + j(), X1: gt.X1 + j(), Y1: gt.Y1 + j()}
	if b.Empty() {
		b = gt
	}
	score := 0.9 - rng.Float64()*0.1
	return []detect.Detection{{Box: b, Score: score}}
}

var _ core.BoxDetector = (*OracleBoxDetector)(nil)

// EuphratesConfig configures the Euphrates baseline.
type EuphratesConfig struct {
	// KeyInterval is the extrapolation window: the full detector runs every
	// KeyInterval frames (Euphrates-2 and Euphrates-4 in Fig 11).
	KeyInterval int
	// FlowBlock and FlowRange parameterize the ISP-style block motion
	// estimation used between consecutive frames.
	FlowBlock, FlowRange int
}

// DefaultEuphratesConfig returns Euphrates-2.
func DefaultEuphratesConfig() EuphratesConfig {
	return EuphratesConfig{KeyInterval: 2, FlowBlock: 8, FlowRange: 8}
}

// RunEuphrates models Euphrates: key frames run the detector; in between,
// the box is simply shifted by the average of the (ISP-supplied) motion
// vectors inside it. The bitstream is fully decoded because the ISP path
// operates on raw frames.
func RunEuphrates(stream []byte, det core.BoxDetector, cfg EuphratesConfig) (*DetResult, error) {
	if cfg.KeyInterval <= 0 {
		return nil, fmt.Errorf("baseline: euphrates key interval must be positive, got %d", cfg.KeyInterval)
	}
	dec, err := codec.Decode(stream, codec.DecodeFull)
	if err != nil {
		return nil, fmt.Errorf("baseline: euphrates decode: %w", err)
	}
	res := &DetResult{Decode: dec, Detections: make([][]detect.Detection, len(dec.Frames))}
	var prev []detect.Detection
	for d, f := range dec.Frames {
		if d%cfg.KeyInterval == 0 || prev == nil {
			prev = det.Detect(f, d)
			res.NNRuns++
			res.Detections[d] = prev
			continue
		}
		fl := flow.BlockFlow(f, dec.Frames[d-1], cfg.FlowBlock, cfg.FlowRange)
		var moved []detect.Detection
		for _, p := range prev {
			dx, dy := averageMotion(fl, p.Box)
			moved = append(moved, detect.Detection{Box: p.Box.Shift(dx, dy), Score: p.Score * 0.98})
		}
		prev = moved
		res.Detections[d] = moved
	}
	return res, nil
}

// averageMotion averages the flow over the box region. Flow is backward
// (current pixel samples the previous frame at +U), so the box moves by the
// negated mean.
func averageMotion(f *flow.Field, b video.Rect) (dx, dy int) {
	var su, sv float64
	n := 0
	for y := maxI(b.Y0, 0); y < minI(b.Y1, f.H); y++ {
		for x := maxI(b.X0, 0); x < minI(b.X1, f.W); x++ {
			su += float64(f.U[y*f.W+x])
			sv += float64(f.V[y*f.W+x])
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return int(-su/float64(n) + 0.5), int(-sv/float64(n) + 0.5)
}

// RunSELSA models SELSA's sequence-level semantics aggregation: a full
// detector runs on every frame and each frame's box is refined by
// aggregating (score-weighted averaging) the detections of the whole
// sequence after motion-compensating their centers — smoothing out
// per-frame jitter the way feature aggregation does.
func RunSELSA(stream []byte, det core.BoxDetector) (*DetResult, error) {
	dec, err := codec.Decode(stream, codec.DecodeFull)
	if err != nil {
		return nil, fmt.Errorf("baseline: selsa decode: %w", err)
	}
	res := &DetResult{Decode: dec, Detections: make([][]detect.Detection, len(dec.Frames))}
	raw := make([][]detect.Detection, len(dec.Frames))
	for d, f := range dec.Frames {
		raw[d] = det.Detect(f, d)
		res.NNRuns++
	}
	// Aggregate sizes across the sequence and smooth trajectories over a
	// sliding window: the full-sequence semantics aggregation step.
	const win = 3
	for d := range raw {
		if len(raw[d]) == 0 {
			continue
		}
		var cx, cy, w, h, wsum float64
		for k := d - win; k <= d+win; k++ {
			if k < 0 || k >= len(raw) || len(raw[k]) == 0 {
				continue
			}
			b := raw[k][0]
			bcx, bcy := b.Box.Center()
			// Linearly extrapolate the center from frame k to frame d using
			// the local trajectory (difference to the neighbor sample).
			weight := b.Score / (1 + 0.5*absF(float64(k-d)))
			cx += weight * (bcx + trajectoryDelta(raw, k, d, true))
			cy += weight * (bcy + trajectoryDelta(raw, k, d, false))
			w += weight * float64(b.Box.X1-b.Box.X0)
			h += weight * float64(b.Box.Y1-b.Box.Y0)
			wsum += weight
		}
		cx, cy, w, h = cx/wsum, cy/wsum, w/wsum, h/wsum
		res.Detections[d] = []detect.Detection{{
			Box: video.Rect{
				X0: int(cx - w/2), Y0: int(cy - h/2),
				X1: int(cx + w/2), Y1: int(cy + h/2),
			},
			Score: raw[d][0].Score,
		}}
	}
	res.Decode = dec
	return res, nil
}

// trajectoryDelta estimates how far the object center moves from frame k to
// frame d using the per-frame detections around k.
func trajectoryDelta(raw [][]detect.Detection, k, d int, xAxis bool) float64 {
	if k == d {
		return 0
	}
	// Use the mean per-frame velocity between k and d from available samples.
	var first, last float64
	firstIdx, lastIdx := -1, -1
	lo, hi := minI(k, d), maxI(k, d)
	for i := lo; i <= hi; i++ {
		if i < 0 || i >= len(raw) || len(raw[i]) == 0 {
			continue
		}
		cx, cy := raw[i][0].Box.Center()
		v := cx
		if !xAxis {
			v = cy
		}
		if firstIdx < 0 {
			first, firstIdx = v, i
		}
		last, lastIdx = v, i
	}
	if firstIdx < 0 || lastIdx == firstIdx {
		return 0
	}
	vel := (last - first) / float64(lastIdx-firstIdx)
	return vel * float64(d-k)
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
