package baseline

import (
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/detect"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

func makeVideo(t *testing.T, frames int, speed float64) (*video.Video, []byte) {
	t.Helper()
	v := video.Generate(video.SceneSpec{
		Name: "bl", W: 96, H: 64, Frames: frames, Seed: 13, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 14, X: 36, Y: 32,
			VX: speed, VY: speed / 3, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return v, st.Data
}

func TestRunOSVOSSegmentsEveryFrame(t *testing.T) {
	v, stream := makeVideo(t, 10, 1.2)
	res, err := RunOSVOS(stream, segment.NewOracle("osvos", v.Masks, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Masks) != 10 || res.NNRuns != 20 {
		t.Fatalf("masks %d NNRuns %d, want 10/20", len(res.Masks), res.NNRuns)
	}
	for d, m := range res.Masks {
		if segment.IoU(m, v.Masks[d]) < 0.9 {
			t.Fatalf("frame %d IoU too low", d)
		}
	}
}

func TestRunFAVOSTracksAndSegments(t *testing.T) {
	v, stream := makeVideo(t, 12, 1.5)
	res, err := RunFAVOS(stream, segment.NewOracle("favos", v.Masks, 0.08, 2, 2), v.Masks[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.NNRuns != 12 {
		t.Fatalf("NNRuns = %d, want 12", res.NNRuns)
	}
	var s segment.SeqScore
	for d, m := range res.Masks {
		s.Add(m, v.Masks[d])
	}
	_, j := s.Mean()
	if j < 0.85 {
		t.Fatalf("FAVOS mean IoU = %.3f, want > 0.85", j)
	}
}

func TestFAVOSROISuppressesFarFalsePositives(t *testing.T) {
	// A segmenter that adds a spurious far-away blob: the tracker ROI should
	// remove it on non-first frames.
	v, stream := makeVideo(t, 6, 1.0)
	noisy := &spuriousSegmenter{inner: segment.NewOracle("o", v.Masks, 0, 0, 1)}
	res, err := RunFAVOS(stream, noisy, v.Masks[0])
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < len(res.Masks); d++ {
		if res.Masks[d].At(90, 5) != 0 {
			t.Fatalf("frame %d kept far-field false positive", d)
		}
	}
}

type spuriousSegmenter struct{ inner segment.Segmenter }

func (s *spuriousSegmenter) Name() string { return "spurious" }
func (s *spuriousSegmenter) Segment(f *video.Frame, d int) *video.Mask {
	m := s.inner.Segment(f, d)
	for y := 2; y < 8; y++ {
		for x := 88; x < 94; x++ {
			m.Set(x, y, 1)
		}
	}
	return m
}

func TestRunDFFKeyIntervalCost(t *testing.T) {
	v, stream := makeVideo(t, 12, 1.0)
	res, err := RunDFF(stream, segment.NewOracle("dff", v.Masks, 0, 0, 3), DefaultDFFConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NNRuns != 3 { // frames 0, 4, 8
		t.Fatalf("NNRuns = %d, want 3", res.NNRuns)
	}
	if res.FlowRuns != 9 {
		t.Fatalf("FlowRuns = %d, want 9", res.FlowRuns)
	}
	var s segment.SeqScore
	for d, m := range res.Masks {
		s.Add(m, v.Masks[d])
	}
	_, j := s.Mean()
	if j < 0.7 {
		t.Fatalf("DFF mean IoU = %.3f, want > 0.7", j)
	}
}

func TestDFFAccuracyDegradesWithInterval(t *testing.T) {
	v, stream := makeVideo(t, 16, 2.0)
	seg := segment.NewOracle("dff", v.Masks, 0, 0, 3)
	short, err := RunDFF(stream, seg, DFFConfig{KeyInterval: 2, FlowBlock: 8, FlowRange: 8})
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunDFF(stream, seg, DFFConfig{KeyInterval: 8, FlowBlock: 8, FlowRange: 8})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(r *SegResult) float64 {
		var s segment.SeqScore
		for d, m := range r.Masks {
			s.Add(m, v.Masks[d])
		}
		_, j := s.Mean()
		return j
	}
	if mean(long) >= mean(short) {
		t.Fatalf("longer key interval should be less accurate: k=2 %.3f k=8 %.3f", mean(short), mean(long))
	}
}

func TestDFFRejectsBadInterval(t *testing.T) {
	_, stream := makeVideo(t, 4, 1)
	if _, err := RunDFF(stream, segment.NewOracle("x", nil, 0, 0, 1), DFFConfig{}); err == nil {
		t.Fatal("expected error for zero key interval")
	}
}

func TestOracleBoxDetectorJitter(t *testing.T) {
	v, _ := makeVideo(t, 4, 1)
	exact := &OracleBoxDetector{Label: "d", GT: v.Boxes, Jitter: 0, Seed: 1}
	d := exact.Detect(nil, 0)
	if len(d) != 1 || d[0].Box != v.Boxes[0] {
		t.Fatal("zero-jitter detector must return GT box")
	}
	noisy := &OracleBoxDetector{Label: "d", GT: v.Boxes, Jitter: 3, Seed: 1}
	nd := noisy.Detect(nil, 0)
	if nd[0].Box == v.Boxes[0] {
		t.Fatal("jittered detector should perturb the box")
	}
	nd2 := noisy.Detect(nil, 0)
	if nd[0].Box != nd2[0].Box {
		t.Fatal("detector must be deterministic")
	}
}

func TestRunEuphratesExtrapolatesBoxes(t *testing.T) {
	v, stream := makeVideo(t, 12, 1.5)
	det := &OracleBoxDetector{Label: "euph", GT: v.Boxes, Jitter: 1, Seed: 2}
	res, err := RunEuphrates(stream, det, EuphratesConfig{KeyInterval: 2, FlowBlock: 8, FlowRange: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.NNRuns != 6 {
		t.Fatalf("NNRuns = %d, want 6", res.NNRuns)
	}
	ap := detect.AP(res.Detections, detect.GTBoxes(v), 0.5)
	if ap < 0.7 {
		t.Fatalf("Euphrates-2 AP = %.3f, want > 0.7", ap)
	}
}

func TestEuphratesAccuracyDropsWithLargerInterval(t *testing.T) {
	v, stream := makeVideo(t, 16, 3.0)
	det := &OracleBoxDetector{Label: "euph", GT: v.Boxes, Jitter: 1, Seed: 2}
	e2, err := RunEuphrates(stream, det, EuphratesConfig{KeyInterval: 2, FlowBlock: 8, FlowRange: 8})
	if err != nil {
		t.Fatal(err)
	}
	e6, err := RunEuphrates(stream, det, EuphratesConfig{KeyInterval: 6, FlowBlock: 8, FlowRange: 8})
	if err != nil {
		t.Fatal(err)
	}
	gts := detect.GTBoxes(v)
	if detect.AP(e6.Detections, gts, 0.5) > detect.AP(e2.Detections, gts, 0.5) {
		t.Fatal("larger key interval should not improve Euphrates accuracy")
	}
}

func TestRunSELSASmoothsJitter(t *testing.T) {
	v, stream := makeVideo(t, 16, 1.0)
	noisy := &OracleBoxDetector{Label: "selsa", GT: v.Boxes, Jitter: 2.5, Seed: 4}
	selsa, err := RunSELSA(stream, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if selsa.NNRuns != 16 {
		t.Fatalf("NNRuns = %d, want 16", selsa.NNRuns)
	}
	// SELSA's aggregation should beat the raw per-frame detector.
	raw := make([][]detect.Detection, v.Len())
	for d := range raw {
		raw[d] = noisy.Detect(nil, d)
	}
	gts := detect.GTBoxes(v)
	if detect.AP(selsa.Detections, gts, 0.6) < detect.AP(raw, gts, 0.6) {
		t.Fatalf("SELSA (%.3f) should beat raw detector (%.3f) at strict IoU",
			detect.AP(selsa.Detections, gts, 0.6), detect.AP(raw, gts, 0.6))
	}
}
