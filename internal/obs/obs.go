// Package obs is the per-stage observability layer of the pipeline: the
// software counterpart of the performance counters a VR-DANN SoC would hang
// off its agent unit (Sec IV). It exists because the overlapped pipeline's
// whole value is latency hiding — B-frame reconstruction and NN-S refinement
// running under the shadow of NN-L anchor inference — and end-to-end wall
// clock cannot show whether that overlap actually happens. The collector
// answers it directly: per-stage latency distributions (p50/p95/p99), stage
// occupancy (busy time over wall time, the software reading of the paper's
// Fig 10 queue-occupancy plots), queue-depth and in-flight-worker gauges,
// and an optional structured span trace.
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. Every method is safe (and trivially
//     cheap) on a nil *Collector, so instrumented code carries a single
//     pointer nil-check on the hot path and no time.Now call. Pipelines
//     simply leave their Obs field nil.
//  2. Allocation-free when enabled. Recording a span is a handful of atomic
//     adds into fixed arrays; histograms use fixed log2 buckets. Nothing on
//     the per-frame path allocates.
//  3. Race-clean. All state is atomic; a single collector may be shared by
//     the decode goroutine, the NN-L stage, every B-frame worker and the
//     emitter simultaneously.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage. The taxonomy mirrors the paper's
// decomposition: the video decoder (split into anchor pixel decode and
// B-frame motion-vector extraction, the "side channel" VR-DANN taps),
// NN-L anchor inference, motion-vector reconstruction, NN-S refinement
// (with its sandwich-input build and the three convolutions broken out),
// and result emission/coalescing.
type Stage uint8

// Pipeline stages, in rough dataflow order.
const (
	StageDecodeAnchor Stage = iota // I/P-frame pixel decode
	StageDecodeB                   // B-frame side-info decode (MV extraction)
	StageNNL                       // NN-L anchor segmentation / detection
	StageReconstruct               // B-frame MV reconstruction
	StageRefine                    // NN-S refinement, end to end
	StageSandwich                  // NN-S sandwich input build
	StageNNSConv1                  // NN-S conv layers (per-layer timing)
	StageNNSConv2
	StageNNSConv3
	StageEmit      // result emission / decode-order coalescing
	StageServe     // serving layer: chunk arrival -> frame result (includes queueing)
	StageBatchWait // batching engine: item enqueue -> flush start (queue delay)
	StageBatchNNL  // batching engine: one fused NN-L flush
	StageBatchNNS  // batching engine: one fused NN-S flush
	StageMigrate   // shard gateway: one live session migration (drain -> re-admit)

	// NumStages bounds the Stage enum; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	"decode/anchor",
	"decode/b-mv",
	"nn-l",
	"reconstruct",
	"nn-s",
	"nn-s/sandwich",
	"nn-s/conv1",
	"nn-s/conv2",
	"nn-s/conv3",
	"emit",
	"serve/frame",
	"batch/wait",
	"batch/nn-l",
	"batch/nn-s",
	"shard/migrate",
}

// String returns the stage's report name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Gauge identifies one occupancy gauge. Gauges track a current value and a
// high-watermark, the software reading of the agent unit's bounded queues.
type Gauge uint8

// Pipeline gauges.
const (
	GaugeJobQueue         Gauge = iota // B-frame jobs submitted but not yet finished
	GaugeEmitQueue                     // frames awaiting decode-order emission
	GaugeWorkers                       // workers currently executing a B-frame job
	GaugeRefWindow                     // reference segmentations held in the window
	GaugeSessions                      // serving layer: admitted sessions
	GaugePending                       // serving layer: frames queued but not yet served
	GaugeBatchQueue                    // batching engine: items enqueued but not yet flushed
	GaugeCacheEntries                  // content cache: entries resident
	GaugeCacheBytes                    // content cache: bytes resident
	GaugeBroadcastViewers              // broadcast mode: viewers attached across all broadcasts
	GaugeNodes                         // shard gateway: backends registered on the ring
	GaugeNodesHealthy                  // shard gateway: backends currently routable (healthy, breaker closed)
	GaugeGateSessions                  // shard gateway: client sessions tracked by the gateway
	GaugeQoSPressure                   // qos ladder: smoothed load pressure, in thousandths
	GaugeQoSBatchWidth                 // qos ladder: controller-set effective batch width
	GaugeAdaptDriftF                   // adaptation: rolling refined-vs-anchor F-score, in thousandths
	GaugeAdaptLoss                     // adaptation: last fine-tune BCE loss, in thousandths
	GaugeAdaptVersion                  // adaptation: serving weights version (0 = base model)

	// NumGauges bounds the Gauge enum; keep it last.
	NumGauges
)

var gaugeNames = [NumGauges]string{
	"job-queue",
	"emit-queue",
	"workers-busy",
	"ref-window",
	"sessions",
	"pending-frames",
	"batch-queue",
	"cache-entries",
	"cache-bytes",
	"broadcast-viewers",
	"nodes",
	"nodes-healthy",
	"gate-sessions",
	"qos/pressure-milli",
	"qos/batch-width",
	"adapt/drift-f-milli",
	"adapt/loss-milli",
	"adapt/weights-version",
}

// String returns the gauge's report name.
func (g Gauge) String() string {
	if g < NumGauges {
		return gaugeNames[g]
	}
	return "unknown"
}

// Counter identifies one monotonic event counter.
type Counter uint8

// Pipeline counters.
const (
	CounterFrames              Counter = iota // frames decoded
	CounterAnchors                            // I/P-frames decoded
	CounterBFrames                            // B-frames decoded
	CounterMVs                                // motion vectors extracted
	CounterSpans                              // spans recorded (all stages)
	CounterChunks                             // serving layer: bitstream chunks accepted
	CounterDrops                              // serving layer: B-frames dropped past deadline
	CounterRejects                            // serving layer: admission + queue rejections
	CounterDecodeErrors                       // serving layer: chunks failed mid-serve (malformed or internal)
	CounterResyncs                            // serving layer: sessions quarantined and resynced on the next chunk
	CounterBreakerTrips                       // serving layer: per-session circuit-breaker trips
	CounterBatchItems                         // batching engine: items executed through fused flushes
	CounterBatchFlushFull                     // batching engine: flushes triggered by a full batch
	CounterBatchFlushTimer                    // batching engine: flushes triggered by the MaxWait deadline
	CounterBatchFlushDrain                    // batching engine: flushes triggered by engine shutdown
	CounterBatchFlushStall                    // batching engine: flushes triggered by producer stall (no more work can arrive)
	CounterQuantBlocksSkipped                 // residual skip: B-frame blocks whose NN-S refinement was elided
	CounterQuantBlocksDirty                   // residual skip: B-frame blocks that kept NN-S refinement
	CounterQuantBlocksUnknown                 // residual skip: blocks with no usable energy field (pre-field bitstreams)
	CounterCacheHits                          // content cache: masks served from the shared cache
	CounterCacheMisses                        // content cache: lookups that had to compute
	CounterCacheEvictions                     // content cache: entries evicted by the byte budget
	CounterCacheBytesSaved                    // content cache: mask bytes served without recomputation
	CounterCacheFillAborts                    // content cache: in-flight fills invalidated by a failed step
	CounterBroadcastFrames                    // broadcast mode: frames fanned out to attached viewers
	CounterMigrations                         // shard gateway: sessions live-migrated to another backend
	CounterRebalances                         // shard gateway: migrations caused by ring-ownership change (scale up/down)
	CounterNodeBreakerTrips                   // shard gateway: node-level circuit-breaker trips
	CounterProxyErrors                        // shard gateway: backend requests that failed at node granularity
	CounterQoSFull                            // qos ladder: B-frames promoted to full NN-L re-segmentation
	CounterQoSRefine                          // qos ladder: B-frames served on the NN-S refinement rung
	CounterQoSRecon                           // qos ladder: B-frames degraded to raw MV reconstruction (no NN)
	CounterQoSSkip                            // qos ladder: B-frames shed (ladder decision or frame budget)
	CounterQoSDeadlineOverruns                // qos ladder: batched items retracted to reconstruction after aging out past FrameBudget
	CounterAdaptExamples                      // adaptation: pseudo-label examples harvested from NN-L anchors
	CounterAdaptSteps                         // adaptation: background fine-tune steps executed
	CounterAdaptBadGrads                      // adaptation: optimizer updates skipped on non-finite gradients
	CounterAdaptPromotions                    // adaptation: candidate weights promoted into serving
	CounterAdaptRollbacks                     // adaptation: promotions reverted after a drift regression

	// NumCounters bounds the Counter enum; keep it last.
	NumCounters
)

var counterNames = [NumCounters]string{
	"frames",
	"anchors",
	"b-frames",
	"mvs",
	"spans",
	"chunks",
	"drops",
	"rejects",
	"decode-errors",
	"resyncs",
	"breaker-trips",
	"batch-items",
	"batch-flush-full",
	"batch-flush-timer",
	"batch-flush-drain",
	"batch-flush-stall",
	"quant/blocks-skipped",
	"quant/blocks-dirty",
	"quant/blocks-unknown",
	"cache/hits",
	"cache/misses",
	"cache/evictions",
	"cache/bytes-saved",
	"cache/fill-aborts",
	"broadcast/fanout-frames",
	"shard/migrations",
	"shard/rebalances",
	"shard/node-breaker-trips",
	"shard/proxy-errors",
	"qos/full",
	"qos/refine",
	"qos/recon",
	"qos/skip",
	"qos/deadline-overruns",
	"adapt/examples",
	"adapt/train-steps",
	"adapt/bad-grad-steps",
	"adapt/promotions",
	"adapt/rollbacks",
}

// String returns the counter's report name.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "unknown"
}

// Hist identifies one generic value histogram. Unlike stages, which
// aggregate nanosecond durations, a Hist aggregates arbitrary non-negative
// integer samples — batch occupancies, queue depths — through the same
// log2-bucket machinery, so distribution percentiles come for free.
type Hist uint8

// Value histograms.
const (
	HistBatchOccupancy  Hist = iota // items per fused batch flush
	HistBatchQueueDepth             // per-kind queue depth sampled at enqueue

	// NumHists bounds the Hist enum; keep it last.
	NumHists
)

var histNames = [NumHists]string{
	"batch-occupancy",
	"batch-queue-depth",
}

// String returns the histogram's report name.
func (h Hist) String() string {
	if h < NumHists {
		return histNames[h]
	}
	return "unknown"
}

// KindNone marks spans with no associated frame type (e.g. per-layer
// network timings).
const KindNone byte = 0xFF

// SpanEvent is one structured trace record: which frame, of which type,
// spent how long in which stage. Start is relative to the collector epoch,
// so events from all goroutines share one timeline and can be rendered as a
// Gantt chart of the overlap (the shape of the paper's Fig 7 timelines).
type SpanEvent struct {
	Frame int           // display index; -1 when not frame-scoped
	Kind  byte          // codec frame type, or KindNone
	Stage Stage         // pipeline stage
	Start time.Duration // offset from collector epoch
	Dur   time.Duration // time spent in the stage
}

// Tracer receives every recorded span. Implementations must be safe for
// concurrent use; they run inline on pipeline goroutines, so they should be
// fast (append to a preallocated ring, write a binary record, ...).
type Tracer interface {
	Span(SpanEvent)
}

// bucketCount covers durations up to ~2^62 ns in log2 buckets; bucket i
// holds durations d with bits.Len64(d) == i, i.e. 2^(i-1) <= d < 2^i.
const bucketCount = 64

// stageAgg accumulates one log2-bucketed distribution. Stages store
// nanosecond durations in it; the generic value histograms store raw
// integer samples — the NS suffixes only name the dominant use.
type stageAgg struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	minNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [bucketCount]atomic.Int64
}

// gaugeAgg is a current value plus high-watermark.
type gaugeAgg struct {
	cur atomic.Int64
	max atomic.Int64
}

// Collector aggregates spans, gauges and counters for one pipeline run (or
// any longer window — it is never reset implicitly). The zero value is not
// usable; call New. A nil *Collector is the disabled state: every method is
// a cheap no-op.
type Collector struct {
	epoch  time.Time
	tracer Tracer
	stages [NumStages]stageAgg
	gauges [NumGauges]gaugeAgg
	hists  [NumHists]stageAgg
	ctrs   [NumCounters]atomic.Int64
}

// New returns an empty collector whose epoch is now.
func New() *Collector {
	c := &Collector{epoch: time.Now()}
	for i := range c.stages {
		c.stages[i].minNS.Store(int64(1)<<62 - 1)
	}
	for i := range c.hists {
		c.hists[i].minNS.Store(int64(1)<<62 - 1)
	}
	return c
}

// SetTracer installs a span hook. Call before the collector is shared
// across goroutines; the field is not synchronized.
func (c *Collector) SetTracer(t Tracer) {
	if c != nil {
		c.tracer = t
	}
}

// Clock returns the monotonic offset from the collector epoch — the start
// token for a later Span call. On a nil collector it returns 0 without
// reading the clock, which is what makes disabled instrumentation free.
func (c *Collector) Clock() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch)
}

// Span records that work for frame (display index, or -1) of the given
// kind ran in stage s from start (a Clock token) until now.
func (c *Collector) Span(s Stage, frame int, kind byte, start time.Duration) {
	if c == nil {
		return
	}
	c.ObserveDur(s, frame, kind, start, time.Since(c.epoch)-start)
}

// ObserveDur records an explicit duration for stage s starting at the given
// epoch offset. Span is the usual entry point; ObserveDur exists for replay
// and tests.
func (c *Collector) ObserveDur(s Stage, frame int, kind byte, start, d time.Duration) {
	if c == nil || s >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	agg := &c.stages[s]
	agg.count.Add(1)
	agg.sumNS.Add(ns)
	agg.buckets[bits.Len64(uint64(ns))%bucketCount].Add(1)
	for {
		m := agg.minNS.Load()
		if ns >= m || agg.minNS.CompareAndSwap(m, ns) {
			break
		}
	}
	for {
		m := agg.maxNS.Load()
		if ns <= m || agg.maxNS.CompareAndSwap(m, ns) {
			break
		}
	}
	c.ctrs[CounterSpans].Add(1)
	if c.tracer != nil {
		c.tracer.Span(SpanEvent{Frame: frame, Kind: kind, Stage: s, Start: start, Dur: d})
	}
}

// Observe records one sample of a value histogram (negative samples clamp
// to zero). Like every recording method it is a cheap no-op on a nil
// collector.
func (c *Collector) Observe(h Hist, v int64) {
	if c == nil || h >= NumHists {
		return
	}
	if v < 0 {
		v = 0
	}
	agg := &c.hists[h]
	agg.count.Add(1)
	agg.sumNS.Add(v)
	agg.buckets[bits.Len64(uint64(v))%bucketCount].Add(1)
	for {
		m := agg.minNS.Load()
		if v >= m || agg.minNS.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := agg.maxNS.Load()
		if v <= m || agg.maxNS.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count adds n to a counter.
func (c *Collector) Count(ct Counter, n int64) {
	if c == nil || ct >= NumCounters {
		return
	}
	c.ctrs[ct].Add(n)
}

// CounterValue reads a counter's current value (0 on a nil collector).
// Cheap enough to poll per frame; the serving layer uses it to mirror
// pipeline-recorded counters into the server-wide collector.
func (c *Collector) CounterValue(ct Counter) int64 {
	if c == nil || ct >= NumCounters {
		return 0
	}
	return c.ctrs[ct].Load()
}

// GaugeAdd moves a gauge by delta (use +1/-1 around enqueue/dequeue) and
// updates its high-watermark.
func (c *Collector) GaugeAdd(g Gauge, delta int64) {
	if c == nil || g >= NumGauges {
		return
	}
	v := c.gauges[g].cur.Add(delta)
	c.watermark(g, v)
}

// GaugeSet sets a gauge to an absolute value (use for sampled depths like
// the reference-window size) and updates its high-watermark.
func (c *Collector) GaugeSet(g Gauge, v int64) {
	if c == nil || g >= NumGauges {
		return
	}
	c.gauges[g].cur.Store(v)
	c.watermark(g, v)
}

func (c *Collector) watermark(g Gauge, v int64) {
	for {
		m := c.gauges[g].max.Load()
		if v <= m || c.gauges[g].max.CompareAndSwap(m, v) {
			return
		}
	}
}
