package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// StageReport is the snapshot of one stage's latency distribution.
type StageReport struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"totalNs"`
	MinNS   int64  `json:"minNs"`
	MaxNS   int64  `json:"maxNs"`
	MeanNS  int64  `json:"meanNs"`
	P50NS   int64  `json:"p50Ns"`
	P95NS   int64  `json:"p95Ns"`
	P99NS   int64  `json:"p99Ns"`
	// Occupancy is stage busy time over collector wall time. Stages running
	// on several workers at once can exceed 1; nested stages (the NN-S conv
	// breakdown inside "nn-s") overlap their parent by construction.
	Occupancy float64 `json:"occupancy"`
}

// HistReport is the snapshot of one generic value histogram (dimensionless
// integer samples, e.g. batch occupancy).
type HistReport struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// GaugeReport is the snapshot of one gauge.
type GaugeReport struct {
	Name    string `json:"name"`
	Current int64  `json:"current"`
	Max     int64  `json:"max"`
}

// Report is a point-in-time snapshot of a collector, shaped for JSON
// output (the benchsuite "stages" block) and for the text table.
type Report struct {
	ElapsedNS int64            `json:"elapsedNs"`
	Stages    []StageReport    `json:"stages"`
	Hists     []HistReport     `json:"hists,omitempty"`
	Gauges    []GaugeReport    `json:"gauges"`
	Counters  map[string]int64 `json:"counters"`
}

// Snapshot captures the collector's current state. Stages with no recorded
// spans are omitted. Safe to call concurrently with recording; the snapshot
// is internally consistent per field, not across fields. Returns nil on a
// nil collector.
func (c *Collector) Snapshot() *Report {
	if c == nil {
		return nil
	}
	r := &Report{
		ElapsedNS: int64(time.Since(c.epoch)),
		Counters:  make(map[string]int64, NumCounters),
	}
	for s := Stage(0); s < NumStages; s++ {
		agg := &c.stages[s]
		n := agg.count.Load()
		if n == 0 {
			continue
		}
		var buckets [bucketCount]int64
		for i := range buckets {
			buckets[i] = agg.buckets[i].Load()
		}
		sr := StageReport{
			Name:    s.String(),
			Count:   n,
			TotalNS: agg.sumNS.Load(),
			MinNS:   agg.minNS.Load(),
			MaxNS:   agg.maxNS.Load(),
		}
		// The log2-bucket quantile returns a bucket's geometric midpoint,
		// which can land outside the actually observed range (above MaxNS
		// when the max sits low in its bucket, below MinNS symmetrically).
		// Clamp to the recorded extremes so p50 <= p95 <= p99 <= max and
		// min <= p50 always hold in reports.
		for _, q := range []struct {
			dst *int64
			q   float64
		}{{&sr.P50NS, 0.50}, {&sr.P95NS, 0.95}, {&sr.P99NS, 0.99}} {
			*q.dst = clamp(quantile(buckets, n, q.q), sr.MinNS, sr.MaxNS)
		}
		sr.MeanNS = sr.TotalNS / n
		if r.ElapsedNS > 0 {
			sr.Occupancy = float64(sr.TotalNS) / float64(r.ElapsedNS)
		}
		r.Stages = append(r.Stages, sr)
	}
	for h := Hist(0); h < NumHists; h++ {
		agg := &c.hists[h]
		n := agg.count.Load()
		if n == 0 {
			continue
		}
		var buckets [bucketCount]int64
		for i := range buckets {
			buckets[i] = agg.buckets[i].Load()
		}
		hr := HistReport{
			Name:  h.String(),
			Count: n,
			Sum:   agg.sumNS.Load(),
			Min:   agg.minNS.Load(),
			Max:   agg.maxNS.Load(),
		}
		hr.Mean = float64(hr.Sum) / float64(n)
		// Same geometric-midpoint quantile and min/max clamp as stages.
		for _, q := range []struct {
			dst *int64
			q   float64
		}{{&hr.P50, 0.50}, {&hr.P95, 0.95}, {&hr.P99, 0.99}} {
			*q.dst = clamp(quantile(buckets, n, q.q), hr.Min, hr.Max)
		}
		r.Hists = append(r.Hists, hr)
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if c.gauges[g].max.Load() == 0 && c.gauges[g].cur.Load() == 0 {
			continue
		}
		r.Gauges = append(r.Gauges, GaugeReport{
			Name:    g.String(),
			Current: c.gauges[g].cur.Load(),
			Max:     c.gauges[g].max.Load(),
		})
	}
	for ct := Counter(0); ct < NumCounters; ct++ {
		if v := c.ctrs[ct].Load(); v != 0 {
			r.Counters[ct.String()] = v
		}
	}
	return r
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// quantile estimates the q-quantile from log2 buckets: it walks the
// cumulative distribution to the bucket containing the q-th sample and
// returns that bucket's geometric midpoint. Resolution is a factor of two,
// which is plenty to tell a 40 µs refine from a 2 ms NN-L run.
func quantile(buckets [bucketCount]int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, b := range buckets {
		cum += b
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			return lo + lo/2 // midpoint of [2^(i-1), 2^i)
		}
	}
	return 0
}

// Stage returns the named stage's report, or nil.
func (r *Report) Stage(name string) *StageReport {
	if r == nil {
		return nil
	}
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// Hist returns the named value histogram's report, or nil.
func (r *Report) Hist(name string) *HistReport {
	if r == nil {
		return nil
	}
	for i := range r.Hists {
		if r.Hists[i].Name == name {
			return &r.Hists[i]
		}
	}
	return nil
}

// Table renders the report as an aligned text table: stages sorted by total
// busy time, then value histograms, gauges and counters.
func (r *Report) Table() string {
	if r == nil {
		return "observability disabled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-stage latency over %s:\n", fmtDur(r.ElapsedNS))
	fmt.Fprintf(&b, "  %-14s %7s %10s %9s %9s %9s %9s %6s\n",
		"stage", "count", "total", "mean", "p50", "p95", "p99", "occ%")
	stages := append([]StageReport(nil), r.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].TotalNS > stages[j].TotalNS })
	for _, s := range stages {
		fmt.Fprintf(&b, "  %-14s %7d %10s %9s %9s %9s %9s %6.1f\n",
			s.Name, s.Count, fmtDur(s.TotalNS), fmtDur(s.MeanNS),
			fmtDur(s.P50NS), fmtDur(s.P95NS), fmtDur(s.P99NS), 100*s.Occupancy)
	}
	if len(r.Hists) > 0 {
		fmt.Fprintf(&b, "value histograms:\n")
		fmt.Fprintf(&b, "  %-18s %7s %7s %5s %5s %5s %5s %5s\n",
			"hist", "count", "mean", "p50", "p95", "p99", "min", "max")
		for _, h := range r.Hists {
			fmt.Fprintf(&b, "  %-18s %7d %7.2f %5d %5d %5d %5d %5d\n",
				h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Min, h.Max)
		}
	}
	if len(r.Gauges) > 0 {
		fmt.Fprintf(&b, "queues / occupancy gauges (current, high-watermark):\n")
		for _, g := range r.Gauges {
			fmt.Fprintf(&b, "  %-14s %7d %7d\n", g.Name, g.Current, g.Max)
		}
	}
	if len(r.Counters) > 0 {
		names := make([]string, 0, len(r.Counters))
		for n := range r.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "counters:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-14s %7d\n", n, r.Counters[n])
		}
	}
	return b.String()
}

// fmtDur renders nanoseconds with a human unit.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
