package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafeAndFree(t *testing.T) {
	var c *Collector
	if c.Clock() != 0 {
		t.Fatal("nil Clock must return 0 without touching the wall clock")
	}
	c.Span(StageNNL, 0, 0, 0)
	c.ObserveDur(StageNNL, 0, 0, 0, time.Millisecond)
	c.Count(CounterFrames, 3)
	c.GaugeAdd(GaugeJobQueue, 1)
	c.GaugeSet(GaugeRefWindow, 5)
	c.SetTracer(nil)
	if c.Snapshot() != nil {
		t.Fatal("nil Snapshot must be nil")
	}
	if got := c.Snapshot().Table(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil report table = %q", got)
	}
}

func TestStageAggregation(t *testing.T) {
	c := New()
	durs := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond,
		400 * time.Microsecond, 800 * time.Microsecond, 100 * time.Millisecond}
	for i, d := range durs {
		c.ObserveDur(StageRefine, i, 2, 0, d)
	}
	r := c.Snapshot()
	s := r.Stage("nn-s")
	if s == nil {
		t.Fatal("nn-s stage missing from report")
	}
	if s.Count != int64(len(durs)) {
		t.Fatalf("count = %d, want %d", s.Count, len(durs))
	}
	var want int64
	for _, d := range durs {
		want += int64(d)
	}
	if s.TotalNS != want {
		t.Fatalf("total = %d, want %d", s.TotalNS, want)
	}
	if s.MinNS != int64(100*time.Microsecond) || s.MaxNS != int64(100*time.Millisecond) {
		t.Fatalf("min/max = %d/%d", s.MinNS, s.MaxNS)
	}
	// The log2 histogram has factor-of-two resolution: the p50 estimate must
	// land within the bucket holding the true median (200µs -> [128µs,256µs)).
	if s.P50NS < int64(128*time.Microsecond) || s.P50NS >= int64(512*time.Microsecond) {
		t.Fatalf("p50 = %d out of plausible range", s.P50NS)
	}
	// p99 must land in the top sample's bucket.
	if s.P99NS < int64(64*time.Millisecond) || s.P99NS >= int64(256*time.Millisecond) {
		t.Fatalf("p99 = %d out of plausible range", s.P99NS)
	}
	if s.Occupancy <= 0 {
		t.Fatal("occupancy must be positive for a busy stage")
	}
}

// TestQuantilesClampedToObservedRange pins the fix for the log2-bucket
// quantile overshoot: the geometric bucket midpoint can exceed the recorded
// max (or undershoot the min), but the reported percentiles must not.
func TestQuantilesClampedToObservedRange(t *testing.T) {
	cases := []struct {
		name string
		durs []time.Duration
	}{
		// A single sample just above a power of two: its bucket midpoint
		// (1.5 * 2^(i-1)) is far above the sample itself.
		{"single-low-in-bucket", []time.Duration{1025 * time.Nanosecond}},
		// All samples near the top of one bucket: midpoint undershoots min.
		{"high-in-bucket", []time.Duration{2040 * time.Nanosecond, 2040 * time.Nanosecond}},
		// Mixed magnitudes: p99's bucket midpoint may overshoot the max.
		{"mixed", []time.Duration{100 * time.Nanosecond, 130 * time.Microsecond, 1048577 * time.Nanosecond}},
		// Identical samples: every percentile must equal the one value.
		{"identical", []time.Duration{333 * time.Microsecond, 333 * time.Microsecond, 333 * time.Microsecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New()
			for i, d := range tc.durs {
				c.ObserveDur(StageServe, i, 0, 0, d)
			}
			s := c.Snapshot().Stage("serve/frame")
			if s == nil {
				t.Fatal("serve/frame stage missing")
			}
			for _, p := range []struct {
				name string
				v    int64
			}{{"p50", s.P50NS}, {"p95", s.P95NS}, {"p99", s.P99NS}} {
				if p.v < s.MinNS || p.v > s.MaxNS {
					t.Fatalf("%s = %d outside observed [%d, %d]", p.name, p.v, s.MinNS, s.MaxNS)
				}
			}
			if s.P50NS > s.P95NS || s.P95NS > s.P99NS {
				t.Fatalf("percentiles not monotonic: p50=%d p95=%d p99=%d", s.P50NS, s.P95NS, s.P99NS)
			}
		})
	}
}

func TestGaugeWatermark(t *testing.T) {
	c := New()
	c.GaugeAdd(GaugeJobQueue, 1)
	c.GaugeAdd(GaugeJobQueue, 1)
	c.GaugeAdd(GaugeJobQueue, 1)
	c.GaugeAdd(GaugeJobQueue, -2)
	c.GaugeSet(GaugeRefWindow, 7)
	c.GaugeSet(GaugeRefWindow, 4)
	r := c.Snapshot()
	find := func(name string) GaugeReport {
		for _, g := range r.Gauges {
			if g.Name == name {
				return g
			}
		}
		t.Fatalf("gauge %q missing", name)
		return GaugeReport{}
	}
	if g := find("job-queue"); g.Current != 1 || g.Max != 3 {
		t.Fatalf("job-queue = %+v, want cur 1 max 3", g)
	}
	if g := find("ref-window"); g.Current != 4 || g.Max != 7 {
		t.Fatalf("ref-window = %+v, want cur 4 max 7", g)
	}
}

func TestCountersAndJSON(t *testing.T) {
	c := New()
	c.Count(CounterFrames, 10)
	c.Count(CounterBFrames, 6)
	c.ObserveDur(StageNNL, 0, 0, 0, time.Millisecond)
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["frames"] != 10 || back.Counters["b-frames"] != 6 {
		t.Fatalf("counters round-trip = %+v", back.Counters)
	}
	if back.Stage("nn-l") == nil {
		t.Fatal("nn-l stage lost in JSON round-trip")
	}
}

type recordingTracer struct {
	mu     sync.Mutex
	events []SpanEvent
}

func (r *recordingTracer) Span(e SpanEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func TestTracerReceivesSpans(t *testing.T) {
	c := New()
	tr := &recordingTracer{}
	c.SetTracer(tr)
	c.ObserveDur(StageReconstruct, 7, 2, 5*time.Millisecond, time.Millisecond)
	if len(tr.events) != 1 {
		t.Fatalf("got %d events", len(tr.events))
	}
	e := tr.events[0]
	if e.Frame != 7 || e.Stage != StageReconstruct || e.Start != 5*time.Millisecond || e.Dur != time.Millisecond {
		t.Fatalf("event = %+v", e)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.ObserveDur(Stage(i%int(NumStages)), i, 0, 0, time.Duration(i)*time.Microsecond)
				c.GaugeAdd(GaugeWorkers, 1)
				c.GaugeAdd(GaugeWorkers, -1)
				c.Count(CounterFrames, 1)
			}
		}(w)
	}
	wg.Wait()
	r := c.Snapshot()
	var n int64
	for _, s := range r.Stages {
		n += s.Count
	}
	if n != 8*500 {
		t.Fatalf("recorded %d spans, want %d", n, 8*500)
	}
	if r.Counters["frames"] != 8*500 {
		t.Fatalf("frames counter = %d", r.Counters["frames"])
	}
}

func TestTableRendering(t *testing.T) {
	c := New()
	c.ObserveDur(StageNNL, 0, 0, 0, 3*time.Millisecond)
	c.ObserveDur(StageRefine, 1, 2, 0, 250*time.Microsecond)
	c.GaugeSet(GaugeRefWindow, 3)
	c.Count(CounterFrames, 2)
	out := c.Snapshot().Table()
	for _, want := range []string{"nn-l", "nn-s", "ref-window", "frames", "p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestHistBucketEdges pins the log2-bucket behavior of the generic value
// histogram at the small integers batch occupancy lives at. Bucket i holds
// values v with bits.Len64(v) == i, the quantile reports the bucket's
// geometric midpoint (lo + lo/2 for lo = 2^(i-1)), and the report clamps
// every percentile into the observed [min, max] — so tiny-value histograms
// still read exactly.
func TestHistBucketEdges(t *testing.T) {
	cases := []struct {
		name       string
		samples    []int64
		p50, p99   int64
		minV, maxV int64
		mean       float64
	}{
		// 1 is alone in bucket 1 ([1,2)); its midpoint is exactly 1.
		{"ones", []int64{1, 1, 1}, 1, 1, 1, 1, 1},
		// 2 shares bucket 2 ([2,4)) whose midpoint is 3; the clamp to the
		// observed max pulls the estimate back to 2.
		{"twos", []int64{2, 2}, 2, 2, 2, 2, 2},
		// 3 sits at the top of bucket 2; midpoint 3 is exact.
		{"threes", []int64{3}, 3, 3, 3, 3, 3},
		// 8 opens bucket 4 ([8,16), midpoint 12); clamping to max=8 keeps the
		// report inside the observed range.
		{"eights", []int64{8, 8, 8, 8}, 8, 8, 8, 8, 8},
		// Mixed: rank-2 of {1,2,3,8} lands in bucket 2 (midpoint 3); p99's
		// bucket-4 midpoint 12 clamps to the observed max 8.
		{"mixed", []int64{1, 2, 3, 8}, 3, 8, 1, 8, 3.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New()
			for _, v := range tc.samples {
				c.Observe(HistBatchOccupancy, v)
			}
			h := c.Snapshot().Hist("batch-occupancy")
			if h == nil {
				t.Fatal("batch-occupancy histogram missing from report")
			}
			if h.Count != int64(len(tc.samples)) {
				t.Fatalf("count = %d, want %d", h.Count, len(tc.samples))
			}
			if h.P50 != tc.p50 || h.P99 != tc.p99 {
				t.Fatalf("p50/p99 = %d/%d, want %d/%d", h.P50, h.P99, tc.p50, tc.p99)
			}
			if h.Min != tc.minV || h.Max != tc.maxV {
				t.Fatalf("min/max = %d/%d, want %d/%d", h.Min, h.Max, tc.minV, tc.maxV)
			}
			if h.Mean != tc.mean {
				t.Fatalf("mean = %v, want %v", h.Mean, tc.mean)
			}
			if h.P50 > h.P95 || h.P95 > h.P99 {
				t.Fatalf("percentiles not monotonic: %d/%d/%d", h.P50, h.P95, h.P99)
			}
		})
	}
}

func TestHistNilSafetyAndJSON(t *testing.T) {
	var nilC *Collector
	nilC.Observe(HistBatchOccupancy, 4) // must not panic
	c := New()
	c.Observe(HistBatchQueueDepth, -5) // clamps to 0
	c.Observe(HistBatchQueueDepth, 2)
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	h := back.Hist("batch-queue-depth")
	if h == nil {
		t.Fatal("batch-queue-depth lost in JSON round-trip")
	}
	if h.Min != 0 || h.Max != 2 || h.Count != 2 {
		t.Fatalf("hist = %+v, want min 0 max 2 count 2", h)
	}
	// Empty histograms stay out of reports and tables.
	if got := New().Snapshot().Hists; len(got) != 0 {
		t.Fatalf("empty collector reported hists %+v", got)
	}
	out := c.Snapshot().Table()
	if !strings.Contains(out, "batch-queue-depth") {
		t.Fatalf("table missing value histogram:\n%s", out)
	}
}

func TestEnumNames(t *testing.T) {
	if Stage(200).String() != "unknown" || Gauge(200).String() != "unknown" || Counter(200).String() != "unknown" {
		t.Fatal("out-of-range enums must stringify as unknown")
	}
	if Hist(200).String() != "unknown" {
		t.Fatal("out-of-range Hist must stringify as unknown")
	}
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		if n := s.String(); n == "" || seen[n] {
			t.Fatalf("stage %d name %q empty or duplicate", s, n)
		} else {
			seen[n] = true
		}
	}
}
