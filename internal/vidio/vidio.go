// Package vidio imports and exports the repository's video types in
// standard interchange formats: binary PGM (P5) for single frames and
// masks, YUV4MPEG2 (Y4M, mono color space) for whole sequences, and a PGM
// visualization that overlays a segmentation mask onto a frame. It lets
// results be inspected with any standard image/video viewer and real
// grayscale footage be imported as pipeline input.
package vidio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vrdann/internal/video"
)

// ErrFormat reports unsupported or malformed input.
var ErrFormat = errors.New("vidio: bad format")

// WritePGM writes a frame as binary PGM (P5).
func WritePGM(w io.Writer, f *video.Frame) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	_, err := w.Write(f.Pix)
	return err
}

// ReadPGM parses a binary PGM (P5) image into a frame.
func ReadPGM(r io.Reader) (*video.Frame, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("%w: magic %q, want P5", ErrFormat, magic)
	}
	dims := [3]int{}
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%w: bad header field %q", ErrFormat, tok)
		}
		dims[i] = v
	}
	w, h, maxv := dims[0], dims[1], dims[2]
	if maxv > 255 {
		return nil, fmt.Errorf("%w: 16-bit PGM not supported (maxval %d)", ErrFormat, maxv)
	}
	f := video.NewFrame(w, h)
	if _, err := io.ReadFull(br, f.Pix); err != nil {
		return nil, fmt.Errorf("%w: truncated pixel data: %v", ErrFormat, err)
	}
	return f, nil
}

// pgmToken reads the next whitespace-delimited token, skipping # comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		b, err := br.ReadByte()
		if err != nil {
			if sb.Len() > 0 && err == io.EOF {
				return sb.String(), nil
			}
			return "", fmt.Errorf("%w: %v", ErrFormat, err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", fmt.Errorf("%w: %v", ErrFormat, err)
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if sb.Len() > 0 {
				return sb.String(), nil
			}
		default:
			sb.WriteByte(b)
		}
	}
}

// WriteMaskPGM writes a binary mask as a black/white PGM.
func WriteMaskPGM(w io.Writer, m *video.Mask) error {
	f := video.NewFrame(m.W, m.H)
	for i, v := range m.Pix {
		if v != 0 {
			f.Pix[i] = 255
		}
	}
	return WritePGM(w, f)
}

// ReadMaskPGM parses a PGM into a mask: pixels ≥ 128 are foreground.
func ReadMaskPGM(r io.Reader) (*video.Mask, error) {
	f, err := ReadPGM(r)
	if err != nil {
		return nil, err
	}
	m := video.NewMask(f.W, f.H)
	for i, v := range f.Pix {
		if v >= 128 {
			m.Pix[i] = 1
		}
	}
	return m, nil
}

// Overlay renders a frame with the mask region brightened and its boundary
// marked, for visual inspection of segmentation results.
func Overlay(f *video.Frame, m *video.Mask) *video.Frame {
	out := f.Clone()
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			if m.At(x, y) == 0 {
				// Dim background for contrast.
				out.Set(x, y, f.At(x, y)/2)
				continue
			}
			edge := m.At(x-1, y) == 0 || m.At(x+1, y) == 0 || m.At(x, y-1) == 0 || m.At(x, y+1) == 0
			if edge {
				out.Set(x, y, 255)
			}
		}
	}
	return out
}

// WriteY4M writes a sequence as YUV4MPEG2 with the mono (luma-only) color
// space, playable by standard tools.
func WriteY4M(w io.Writer, v *video.Video) error {
	if v.Len() == 0 {
		return fmt.Errorf("vidio: empty video")
	}
	fps := v.FPS
	if fps <= 0 {
		fps = 25
	}
	if _, err := fmt.Fprintf(w, "YUV4MPEG2 W%d H%d F%d:1 Ip A1:1 Cmono\n",
		v.Frames[0].W, v.Frames[0].H, fps); err != nil {
		return err
	}
	for _, f := range v.Frames {
		if _, err := io.WriteString(w, "FRAME\n"); err != nil {
			return err
		}
		if _, err := w.Write(f.Pix); err != nil {
			return err
		}
	}
	return nil
}

// ReadY4M parses a mono-color-space YUV4MPEG2 stream.
func ReadY4M(r io.Reader) (*video.Video, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	fields := strings.Fields(strings.TrimSpace(header))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("%w: not a YUV4MPEG2 stream", ErrFormat)
	}
	var w, h, fps int
	colorspace := "420" // y4m default when the C tag is absent
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case 'W':
			w, _ = strconv.Atoi(f[1:])
		case 'H':
			h, _ = strconv.Atoi(f[1:])
		case 'F':
			if i := strings.IndexByte(f, ':'); i > 1 {
				fps, _ = strconv.Atoi(f[1:i])
			}
		case 'C':
			colorspace = f[1:]
		}
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: missing geometry", ErrFormat)
	}
	if colorspace != "mono" {
		return nil, fmt.Errorf("%w: color space %q not supported (mono only)", ErrFormat, colorspace)
	}
	v := &video.Video{Name: "y4m", FPS: fps}
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			return v, nil
		}
		if err != nil && !(err == io.EOF && line != "") {
			return nil, fmt.Errorf("%w: frame header: %v", ErrFormat, err)
		}
		if !strings.HasPrefix(line, "FRAME") {
			return nil, fmt.Errorf("%w: bad frame marker %q", ErrFormat, strings.TrimSpace(line))
		}
		f := video.NewFrame(w, h)
		if _, err := io.ReadFull(br, f.Pix); err != nil {
			return nil, fmt.Errorf("%w: truncated frame %d: %v", ErrFormat, v.Len(), err)
		}
		v.Frames = append(v.Frames, f)
	}
}
