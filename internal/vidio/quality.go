package vidio

import (
	"math"

	"vrdann/internal/video"
)

// PSNR returns the peak signal-to-noise ratio between two frames in dB
// (capped at 99 dB for identical frames).
func PSNR(a, b *video.Frame) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return 99
	}
	return 10 * math.Log10(255*255/mse)
}

// SSIM returns the mean structural similarity index between two frames,
// computed on 8×8 windows with the standard constants (K1=0.01, K2=0.03,
// L=255). Values are in (0, 1]; 1 means structurally identical.
func SSIM(a, b *video.Frame) float64 {
	const win = 8
	const c1 = (0.01 * 255) * (0.01 * 255)
	const c2 = (0.03 * 255) * (0.03 * 255)
	var sum float64
	n := 0
	for y := 0; y+win <= a.H; y += win {
		for x := 0; x+win <= a.W; x += win {
			var ma, mb float64
			for dy := 0; dy < win; dy++ {
				for dx := 0; dx < win; dx++ {
					ma += float64(a.Pix[(y+dy)*a.W+x+dx])
					mb += float64(b.Pix[(y+dy)*b.W+x+dx])
				}
			}
			const cnt = win * win
			ma /= cnt
			mb /= cnt
			var va, vb, cov float64
			for dy := 0; dy < win; dy++ {
				for dx := 0; dx < win; dx++ {
					da := float64(a.Pix[(y+dy)*a.W+x+dx]) - ma
					db := float64(b.Pix[(y+dy)*b.W+x+dx]) - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= cnt - 1
			vb /= cnt - 1
			cov /= cnt - 1
			s := ((2*ma*mb + c1) * (2*cov + c2)) / ((ma*ma + mb*mb + c1) * (va + vb + c2))
			sum += s
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// SequencePSNR returns the mean PSNR over two equal-length sequences.
func SequencePSNR(a, b []*video.Frame) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += PSNR(a[i], b[i])
	}
	return s / float64(len(a))
}
