package vidio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vrdann/internal/video"
)

func testFrame() *video.Frame {
	f := video.NewFrame(8, 6)
	for i := range f.Pix {
		f.Pix[i] = uint8(i * 5)
	}
	return f
}

func TestPGMRoundTrip(t *testing.T) {
	f := testFrame()
	var buf bytes.Buffer
	if err := WritePGM(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 8 || got.H != 6 {
		t.Fatalf("geometry %dx%d", got.W, got.H)
	}
	for i := range f.Pix {
		if got.Pix[i] != f.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestReadPGMWithComments(t *testing.T) {
	data := "P5\n# a comment\n2 2\n# another\n255\n\x01\x02\x03\x04"
	f, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if f.Pix[3] != 4 {
		t.Fatalf("pixels %v", f.Pix)
	}
}

func TestReadPGMRejectsBadInput(t *testing.T) {
	cases := []string{
		"P6\n2 2\n255\nxxxx",     // wrong magic
		"P5\n0 2\n255\n",         // zero dimension
		"P5\n2 2\n65535\nxxxxxx", // 16-bit
		"P5\n2 2\n255\n\x01",     // truncated
		"",
	}
	for i, c := range cases {
		if _, err := ReadPGM(strings.NewReader(c)); !errors.Is(err, ErrFormat) {
			t.Fatalf("case %d: err = %v, want ErrFormat", i, err)
		}
	}
}

func TestMaskPGMRoundTrip(t *testing.T) {
	m := video.NewMask(6, 4)
	m.Set(1, 1, 1)
	m.Set(4, 2, 1)
	var buf bytes.Buffer
	if err := WriteMaskPGM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMaskPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Pix {
		if got.Pix[i] != m.Pix[i] {
			t.Fatalf("mask pixel %d differs", i)
		}
	}
}

func TestOverlayMarksBoundaryAndDimsBackground(t *testing.T) {
	f := video.NewFrame(8, 8)
	for i := range f.Pix {
		f.Pix[i] = 100
	}
	m := video.NewMask(8, 8)
	for y := 2; y < 6; y++ {
		for x := 2; x < 6; x++ {
			m.Set(x, y, 1)
		}
	}
	o := Overlay(f, m)
	if o.At(0, 0) != 50 {
		t.Fatalf("background not dimmed: %d", o.At(0, 0))
	}
	if o.At(2, 2) != 255 {
		t.Fatalf("boundary not marked: %d", o.At(2, 2))
	}
	if o.At(4, 4) != 100 {
		t.Fatalf("interior altered: %d", o.At(4, 4))
	}
}

func TestY4MRoundTrip(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "y4m", W: 32, H: 16, Frames: 5, Seed: 3,
		Objects: []video.ObjectSpec{{Shape: video.ShapeDisk, Radius: 4, X: 16, Y: 8, VX: 1, Intensity: 200, Foreground: true}},
	})
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 || got.FPS != 25 {
		t.Fatalf("len %d fps %d", got.Len(), got.FPS)
	}
	for d := range v.Frames {
		for i := range v.Frames[d].Pix {
			if got.Frames[d].Pix[i] != v.Frames[d].Pix[i] {
				t.Fatalf("frame %d pixel %d differs", d, i)
			}
		}
	}
}

func TestY4MRejectsNonMono(t *testing.T) {
	data := "YUV4MPEG2 W2 H2 F25:1 C420\nFRAME\n\x00\x00\x00\x00\x00\x00"
	if _, err := ReadY4M(strings.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestY4MRejectsGarbage(t *testing.T) {
	for _, c := range []string{"", "RIFF....", "YUV4MPEG2 F25:1\n"} {
		if _, err := ReadY4M(strings.NewReader(c)); !errors.Is(err, ErrFormat) {
			t.Fatalf("input %q: err = %v, want ErrFormat", c, err)
		}
	}
}

func TestY4MTruncatedFrame(t *testing.T) {
	data := "YUV4MPEG2 W4 H4 F25:1 Cmono\nFRAME\n\x00\x00"
	if _, err := ReadY4M(strings.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestImportedY4MFeedsPipeline(t *testing.T) {
	// End-to-end: a Y4M round trip must be encodable by the codec.
	v := video.Generate(video.SceneSpec{
		Name: "pipe", W: 64, H: 48, Frames: 6, Seed: 9,
		Objects: []video.ObjectSpec{{Shape: video.ShapeDisk, Radius: 9, X: 30, Y: 24, VX: 1, Intensity: 210, Foreground: true}},
	})
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	imported, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if imported.Frames[3].At(30, 24) != v.Frames[3].At(30, 24) {
		t.Fatal("imported pixels differ")
	}
}

func TestPSNRIdenticalAndNoisy(t *testing.T) {
	f := testFrame()
	if PSNR(f, f) != 99 {
		t.Fatal("identical frames must cap at 99 dB")
	}
	g := f.Clone()
	for i := range g.Pix {
		g.Pix[i] ^= 1
	}
	p := PSNR(f, g)
	// Uniform ±1 error => MSE 1 => PSNR = 10*log10(65025) ≈ 48.13 dB.
	if p < 48 || p > 48.3 {
		t.Fatalf("PSNR = %v, want ~48.13", p)
	}
}

func TestSSIMProperties(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "ssim", W: 64, H: 48, Frames: 2, Seed: 11,
		Objects: []video.ObjectSpec{{Shape: video.ShapeDisk, Radius: 9, X: 30, Y: 24, VX: 2, Intensity: 210, Foreground: true}},
	})
	f := v.Frames[0]
	if s := SSIM(f, f); s < 0.999 {
		t.Fatalf("self SSIM = %v", s)
	}
	// Mild noise degrades SSIM less than heavy noise.
	mild, heavy := f.Clone(), f.Clone()
	for i := range f.Pix {
		mild.Pix[i] = uint8(int(mild.Pix[i]) ^ 3)
		heavy.Pix[i] = uint8(int(heavy.Pix[i]) ^ 60)
	}
	sm, sh := SSIM(f, mild), SSIM(f, heavy)
	if !(sm > sh && sh < 0.9 && sm > 0.9) {
		t.Fatalf("SSIM ordering: mild %v heavy %v", sm, sh)
	}
	// Structural change (different frame) scores below self.
	if s := SSIM(v.Frames[0], v.Frames[1]); s >= 0.999 {
		t.Fatalf("different frames SSIM = %v", s)
	}
}

func TestSequencePSNR(t *testing.T) {
	f := testFrame()
	g := f.Clone()
	if got := SequencePSNR([]*video.Frame{f, f}, []*video.Frame{g, g}); got != 99 {
		t.Fatalf("sequence PSNR = %v", got)
	}
	if SequencePSNR(nil, nil) != 0 {
		t.Fatal("empty sequence must be 0")
	}
}

func TestWriteY4MEmptyVideo(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteY4M(&buf, &video.Video{}); err == nil {
		t.Fatal("empty video must not encode")
	}
}

func TestY4MCustomFPSRoundTrip(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "fps", W: 16, H: 8, Frames: 2, Seed: 1,
		Objects: []video.ObjectSpec{{Shape: video.ShapeBox, Radius: 3, X: 8, Y: 4, Intensity: 180, Foreground: true}},
	})
	v.FPS = 30
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(" F30:1 ")) {
		t.Fatalf("header lacks F30:1: %q", bytes.SplitN(buf.Bytes(), []byte("\n"), 2)[0])
	}
	got, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FPS != 30 {
		t.Fatalf("FPS = %d, want 30", got.FPS)
	}
}

func TestY4MFPSDefaultsWhenUnset(t *testing.T) {
	// Writer substitutes 25 for an unset rate; an absent F tag parses as 0.
	v := video.Generate(video.SceneSpec{
		Name: "nofps", W: 8, H: 8, Frames: 1, Seed: 2,
		Objects: []video.ObjectSpec{{Shape: video.ShapeDisk, Radius: 2, X: 4, Y: 4, Intensity: 150, Foreground: true}},
	})
	v.FPS = 0
	var buf bytes.Buffer
	if err := WriteY4M(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(" F25:1 ")) {
		t.Fatal("unset FPS must be written as 25")
	}
	data := "YUV4MPEG2 W2 H2 Cmono\nFRAME\n\x01\x02\x03\x04"
	got, err := ReadY4M(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.FPS != 0 || got.Len() != 1 {
		t.Fatalf("FPS=%d len=%d", got.FPS, got.Len())
	}
}

func TestY4MBadFrameMarker(t *testing.T) {
	data := "YUV4MPEG2 W2 H2 F25:1 Cmono\nFRAMING\n\x01\x02\x03\x04"
	if _, err := ReadY4M(strings.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestMaskPGMThreshold(t *testing.T) {
	// ReadMaskPGM binarizes at 128: gray imports (e.g. from tools that
	// anti-alias) must split deterministically.
	data := "P5\n4 1\n255\n" + string([]byte{0, 127, 128, 255})
	m, err := ReadMaskPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 0, 1, 1}
	for i, w := range want {
		if m.Pix[i] != w {
			t.Fatalf("pixel %d = %d, want %d (threshold at 128)", i, m.Pix[i], w)
		}
	}
}

func TestOverlayFullFrameMask(t *testing.T) {
	// An all-foreground mask has its boundary on the frame edge (out-of-
	// bounds mask reads are background) and an untouched interior.
	f := video.NewFrame(4, 4)
	for i := range f.Pix {
		f.Pix[i] = 80
	}
	m := video.NewMask(4, 4)
	for i := range m.Pix {
		m.Pix[i] = 1
	}
	o := Overlay(f, m)
	if o.At(0, 0) != 255 || o.At(3, 3) != 255 {
		t.Fatalf("frame-edge boundary not marked: %d %d", o.At(0, 0), o.At(3, 3))
	}
	if o.At(1, 1) != 80 || o.At(2, 2) != 80 {
		t.Fatalf("interior altered: %d %d", o.At(1, 1), o.At(2, 2))
	}
	// The input frame must not be mutated.
	if f.At(0, 0) != 80 {
		t.Fatal("Overlay mutated its input")
	}
}

func TestPGMTrailingTokenAtEOF(t *testing.T) {
	// A header token terminated by EOF rather than whitespace still parses
	// (pgmToken's EOF path) — the pixel read then reports truncation.
	if _, err := ReadPGM(strings.NewReader("P5")); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}
