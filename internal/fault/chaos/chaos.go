// Package chaos drives a serve.Server with many concurrent sessions whose
// chunks pass through a deterministic fault.Injector — the soak half of the
// fault-injection harness. The harness itself only records what happened;
// the assertions (healthy streams bit-identical to a clean run, poisoned
// sessions resynced or closed with a classified error, nothing hung) live
// in the soak test, which knows what the clean reference looks like.
//
// The package sits under internal/fault so the dependency arrow points one
// way: chaos imports serve, never the reverse. The serving package's soak
// test imports chaos from an external test package (package serve_test),
// which keeps the cycle broken.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/fault"
	"vrdann/internal/qos"
	"vrdann/internal/serve"
)

// Config parameterizes one soak run.
type Config struct {
	// Sessions is the number of concurrent streams.
	Sessions int
	// Chunks is how many chunks each stream submits, in order.
	Chunks int
	// Chunk is the clean encoded chunk every slot starts from; the
	// injector corrupts copies, never this slice.
	Chunk []byte
	// Rate is the per-chunk corruption probability (0 disables faults —
	// the clean-run baseline).
	Rate float64
	// Seed fixes the injector; same seed, same faults, replayable run.
	Seed int64
	// Kinds is the corruption menu; nil selects fault.AllKinds.
	Kinds []fault.Kind
	// Class, when non-nil, assigns each stream a QoS class (sessions are
	// opened through OpenClass); nil opens every stream premium. Lets soak
	// runs mix tiers on a ladder-enabled server.
	Class func(stream int) qos.Class
	// Timeout bounds each chunk's Wait; a chunk still unresolved when it
	// fires is reported Hung — the failure mode soak exists to catch.
	// Default 30s.
	Timeout time.Duration
}

// ChunkOutcome records one submitted chunk's fate.
type ChunkOutcome struct {
	// Kind and Corrupted describe the injector's decision for this slot.
	Kind      fault.Kind
	Corrupted bool
	// Base is the session-relative display offset of this chunk: frames
	// admitted (Submit accepted) on this session before it. Meaningful
	// only when SubmitErr is nil.
	Base int
	// SubmitErr is the admission failure, if any (malformed header,
	// breaker open, session force-closed).
	SubmitErr error
	// ServeErr is the ticket's resolution error, if any.
	ServeErr error
	// Results are the served frames when ServeErr is nil.
	Results []serve.FrameResult
	// Hung marks a ticket that never resolved within Timeout.
	Hung bool
}

// SessionReport is one stream's full history.
type SessionReport struct {
	ID string
	// OpenErr aborts the stream before any chunk when non-nil.
	OpenErr error
	// Poisoned is true when any chunk of this stream was corrupted;
	// healthy (non-poisoned) streams must match the clean run exactly.
	Poisoned bool
	Outcomes []ChunkOutcome
}

// Result is the whole run.
type Result struct {
	Sessions []SessionReport
	// Hung counts tickets that never resolved — any non-zero value is a
	// deadlock in the serving path.
	Hung int
}

// Run drives srv with cfg.Sessions concurrent streams and returns what
// happened to every chunk. The caller owns srv (including Close); Run only
// opens and closes sessions on it. Deterministic given cfg.Seed: the same
// faults hit the same (stream, chunk) slots in every run.
func Run(ctx context.Context, srv *serve.Server, cfg Config) (*Result, error) {
	if cfg.Sessions <= 0 || cfg.Chunks <= 0 || len(cfg.Chunk) == 0 {
		return nil, fmt.Errorf("chaos: need Sessions, Chunks and a Chunk")
	}
	info, err := codec.ProbeStream(cfg.Chunk)
	if err != nil {
		return nil, fmt.Errorf("chaos: clean chunk does not probe: %w", err)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = fault.AllKinds
	}
	inj := &fault.Injector{Seed: cfg.Seed, Rate: cfg.Rate, Kinds: kinds}

	res := &Result{Sessions: make([]SessionReport, cfg.Sessions)}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			rep := &res.Sessions[stream]
			class := qos.ClassPremium
			if cfg.Class != nil {
				class = cfg.Class(stream)
			}
			s, err := srv.OpenClass(class)
			if err != nil {
				rep.OpenErr = err
				return
			}
			defer s.Close()
			rep.ID = s.ID
			base := 0
			for ci := 0; ci < cfg.Chunks; ci++ {
				data, kind, hit := inj.Corrupt(stream, ci, cfg.Chunk, info.HeaderBytes)
				out := ChunkOutcome{Kind: kind, Corrupted: hit, Base: base}
				rep.Poisoned = rep.Poisoned || hit
				c, err := s.Submit(ctx, data)
				if err != nil {
					out.SubmitErr = err
					rep.Outcomes = append(rep.Outcomes, out)
					continue
				}
				base += c.Frames()
				wctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
				out.Results, out.ServeErr = c.Wait(wctx)
				cancel()
				// A ticket that resolved carries a *serve.ChunkError (or
				// nil); a bare deadline error means Wait gave up on an
				// unresolved ticket — the serving path hung.
				var ce *serve.ChunkError
				if out.ServeErr != nil && !errors.As(out.ServeErr, &ce) &&
					wctx.Err() != nil && ctx.Err() == nil {
					out.Hung = true
				}
				rep.Outcomes = append(rep.Outcomes, out)
			}
		}(i)
	}
	wg.Wait()
	for _, rep := range res.Sessions {
		for _, out := range rep.Outcomes {
			if out.Hung {
				res.Hung++
			}
		}
	}
	return res, nil
}
