package chaos

import (
	"context"
	"net"
	"net/http"
	"sync"

	"vrdann/internal/serve"
)

// Node is one in-process vrserve backend on a loopback listener — the
// whole-node fault unit for sharding chaos. Where the soak harness
// corrupts chunks inside one server, Node lets a test kill or hang an
// entire backend under a gateway and watch its sessions migrate.
//
// Like the rest of the package, the dependency arrow points one way:
// chaos imports serve, never shard. Shard's chaos tests import this from
// an external test package (package shard_test), which keeps the cycle
// broken.
type Node struct {
	// URL is the node's base URL ("http://127.0.0.1:<port>").
	URL string
	// Server is the backing serving engine, exposed so tests can reach
	// Quiesce/Load directly.
	Server *serve.Server

	hs *http.Server
	ln net.Listener

	mu      sync.Mutex
	release chan struct{} // non-nil while hung; closing it un-hangs
	done    bool
}

// StartNode builds a serve.Server from cfg and serves its HTTP surface on
// an ephemeral loopback port.
func StartNode(cfg serve.Config) (*Node, error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Close(context.Background())
		return nil, err
	}
	n := &Node{
		URL:    "http://" + ln.Addr().String(),
		Server: srv,
		ln:     ln,
	}
	n.hs = &http.Server{Handler: n.gate(srv.Handler())}
	go func() { _ = n.hs.Serve(ln) }()
	return n, nil
}

// gate wraps the serving handler with the hang fault: while hung, every
// request parks until Unhang or the client gives up. A released request
// answers 503 — by then the node has "restarted" and lost the plot.
func (n *Node) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		release := n.release
		n.mu.Unlock()
		if release != nil {
			select {
			case <-release:
				http.Error(w, "node was hung", http.StatusServiceUnavailable)
			case <-r.Context().Done():
			}
			return
		}
		h.ServeHTTP(w, r)
	})
}

// Hang makes the node stop answering without closing connections — the
// failure mode a liveness probe cannot see but a proxy timeout can.
// Idempotent.
func (n *Node) Hang() {
	n.mu.Lock()
	if n.release == nil {
		n.release = make(chan struct{})
	}
	n.mu.Unlock()
}

// Unhang releases parked requests (they answer 503) and resumes normal
// service for new ones. Idempotent.
func (n *Node) Unhang() {
	n.mu.Lock()
	if n.release != nil {
		close(n.release)
		n.release = nil
	}
	n.mu.Unlock()
}

// Kill takes the node down abruptly: the listener and every open
// connection close mid-flight and in-progress sessions are force-closed.
// In-flight proxied chunks surface as transport errors at the gateway —
// the signal that triggers migration.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.done {
		n.mu.Unlock()
		return
	}
	n.done = true
	n.mu.Unlock()
	_ = n.hs.Close()
	// A cancelled context makes serve.Close force-close rather than drain.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = n.Server.Close(ctx)
}

// Stop shuts the node down gracefully: in-flight requests finish, then
// the serving engine drains.
func (n *Node) Stop(ctx context.Context) error {
	n.mu.Lock()
	if n.done {
		n.mu.Unlock()
		return nil
	}
	n.done = true
	n.mu.Unlock()
	n.Unhang()
	herr := n.hs.Shutdown(ctx)
	serr := n.Server.Close(ctx)
	if herr != nil {
		return herr
	}
	return serr
}
