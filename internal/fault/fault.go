// Package fault provides deterministic, seedable bitstream corruptors — the
// fault-injection half of the serving layer's chaos harness. Real traffic
// breaks streams in a handful of characteristic ways (lossy links flip bits
// and truncate, buggy clients splice and duplicate), and each corruptor
// reproduces one of those shapes exactly given the same seed, so a failing
// chaos run replays byte-identically.
//
// The package is deliberately dependency-free (stdlib only): the codec's
// fuzz tests seed their corpus from these corruptors, and the serving chaos
// harness drives them against live sessions, without either creating an
// import cycle. Callers that want payload-only corruption (a chunk that
// passes header admission but fails mid-decode) pass the header length —
// codec.ProbeStream reports it as StreamInfo.HeaderBytes — as the protected
// prefix.
package fault

import (
	"fmt"
	"math/rand"
)

// Kind names one corruption shape.
type Kind int

const (
	// KindNone marks an untouched chunk.
	KindNone Kind = iota
	// KindBitFlip flips a few payload bits: the classic lossy-link error.
	// The header survives, so the chunk passes admission and fails (or
	// silently mis-decodes) mid-chunk.
	KindBitFlip
	// KindTruncate cuts the payload short: the decoder runs off the end of
	// the entropy stream partway through a frame.
	KindTruncate
	// KindHeader garbles the protected prefix: the chunk is rejected at
	// admission (or header re-parse) instead of mid-decode.
	KindHeader
	// KindSplice overwrites a payload region with a copy of another payload
	// region of the same chunk — a mid-GOP splice: structurally plausible
	// entropy data in the wrong place.
	KindSplice

	// NumKinds bounds the Kind enum; keep it last.
	NumKinds
)

var kindNames = [NumKinds]string{"none", "bit-flip", "truncate", "header", "splice"}

// String returns the kind's report name.
func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return "unknown"
}

// PayloadKinds are the corruption shapes that preserve the header: the
// chunk still passes admission and the failure surfaces mid-serve, which is
// the path quarantine-and-resync exists for.
var PayloadKinds = []Kind{KindBitFlip, KindTruncate, KindSplice}

// AllKinds covers every corruption shape, admission-rejected ones included.
var AllKinds = []Kind{KindBitFlip, KindTruncate, KindHeader, KindSplice}

// FlipBits returns a copy of data with n random bits flipped past the
// protected prefix. If the corruptible region is empty, data is returned
// unchanged (same backing array).
func FlipBits(rng *rand.Rand, data []byte, n, protect int) []byte {
	if protect < 0 {
		protect = 0
	}
	if protect >= len(data) || n <= 0 {
		return data
	}
	out := append([]byte(nil), data...)
	for i := 0; i < n; i++ {
		p := protect + rng.Intn(len(out)-protect)
		out[p] ^= 1 << uint(rng.Intn(8))
	}
	return out
}

// Truncate returns data cut at a random point past the protected prefix
// (at least one byte of payload is removed when possible).
func Truncate(rng *rand.Rand, data []byte, protect int) []byte {
	if protect < 0 {
		protect = 0
	}
	if protect >= len(data) {
		return data
	}
	cut := protect + rng.Intn(len(data)-protect)
	return data[:cut]
}

// GarbleHeader returns a copy of data with a handful of bits flipped inside
// the first protect bytes (the header), leaving the payload intact.
func GarbleHeader(rng *rand.Rand, data []byte, protect int) []byte {
	if protect <= 0 || len(data) == 0 {
		return data
	}
	if protect > len(data) {
		protect = len(data)
	}
	out := append([]byte(nil), data...)
	for i := 0; i < 1+rng.Intn(4); i++ {
		p := rng.Intn(protect)
		out[p] ^= 1 << uint(rng.Intn(8))
	}
	return out
}

// Splice returns a copy of data with one payload region overwritten by a
// copy of another payload region — entropy bits that decode plausibly but
// belong elsewhere in the GOP.
func Splice(rng *rand.Rand, data []byte, protect int) []byte {
	if protect < 0 {
		protect = 0
	}
	payload := len(data) - protect
	if payload < 8 {
		return data
	}
	out := append([]byte(nil), data...)
	n := 1 + rng.Intn(payload/2)
	src := protect + rng.Intn(payload-n+1)
	dst := protect + rng.Intn(payload-n+1)
	copy(out[dst:dst+n], data[src:src+n])
	return out
}

// Apply runs one corruption kind over data with the given protected prefix.
// KindNone (and unknown kinds) return data unchanged.
func Apply(k Kind, rng *rand.Rand, data []byte, protect int) []byte {
	switch k {
	case KindBitFlip:
		return FlipBits(rng, data, 1+rng.Intn(8), protect)
	case KindTruncate:
		return Truncate(rng, data, protect)
	case KindHeader:
		return GarbleHeader(rng, data, protect)
	case KindSplice:
		return Splice(rng, data, protect)
	default:
		return data
	}
}

// Injector decides, deterministically per (Seed, stream, index), whether
// and how to corrupt a chunk. Two injectors with equal fields make
// identical decisions regardless of call order or interleaving — the
// property that lets a concurrent chaos run be compared against a clean
// serial one.
type Injector struct {
	// Seed fixes every decision; same seed, same faults.
	Seed int64
	// Rate is the probability in [0, 1] that a given chunk is corrupted.
	Rate float64
	// Kinds is the corruption menu, picked from uniformly. Default:
	// PayloadKinds (header-preserving shapes).
	Kinds []Kind
}

// rng derives the deterministic generator for one (stream, index) slot.
func (inj *Injector) rng(stream, index int) *rand.Rand {
	// splitmix64-style avalanche over the three inputs; any bijective mixer
	// works, it only has to decorrelate neighbouring slots.
	x := uint64(inj.Seed) ^ 0x9E3779B97F4A7C15
	for _, v := range [2]uint64{uint64(stream), uint64(index)} {
		x += v + 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		x ^= x >> 31
	}
	return rand.New(rand.NewSource(int64(x)))
}

// Corrupt returns the (possibly corrupted) chunk for the given stream and
// chunk index, the kind applied, and whether corruption happened. The
// protect prefix is spared by payload kinds and targeted by KindHeader.
// The returned slice is a copy when corrupted; the original is never
// mutated.
func (inj *Injector) Corrupt(stream, index int, chunk []byte, protect int) ([]byte, Kind, bool) {
	rng := inj.rng(stream, index)
	if rng.Float64() >= inj.Rate || len(chunk) == 0 {
		return chunk, KindNone, false
	}
	kinds := inj.Kinds
	if len(kinds) == 0 {
		kinds = PayloadKinds
	}
	k := kinds[rng.Intn(len(kinds))]
	out := Apply(k, rng, chunk, protect)
	if len(out) == len(chunk) && len(out) > 0 && &out[0] == &chunk[0] {
		// The kind could not corrupt (degenerate sizes); report untouched.
		return chunk, KindNone, false
	}
	return out, k, true
}

// Sequence applies chunk-order faults a buggy client produces: with the
// injector's Rate (halved per shape, decided once per sequence) a random
// chunk is duplicated, and adjacent chunks are swapped. Chunk contents are
// shared, not copied; the returned slice is fresh. Every chunk in the
// result is individually valid — order faults test serving semantics
// (idempotence, session-relative frame numbering), not the decoder.
func (inj *Injector) Sequence(stream int, chunks [][]byte) [][]byte {
	out := append([][]byte(nil), chunks...)
	if len(out) < 2 {
		return out
	}
	rng := inj.rng(stream, -1)
	if rng.Float64() < inj.Rate/2 {
		i := rng.Intn(len(out))
		out = append(out[:i+1], out[i:]...) // duplicate chunk i in place
	}
	if rng.Float64() < inj.Rate/2 {
		i := rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return out
}

// Describe renders one corruption decision for logs and test failures.
func Describe(stream, index int, k Kind) string {
	return fmt.Sprintf("stream %d chunk %d: %s", stream, index, k)
}
