package fault

import (
	"bytes"
	"math/rand"
	"testing"
)

func testChunk(n int) []byte {
	out := make([]byte, n)
	rng := rand.New(rand.NewSource(7))
	rng.Read(out)
	return out
}

// TestInjectorDeterministic: identical injectors make identical decisions,
// regardless of the order slots are visited in.
func TestInjectorDeterministic(t *testing.T) {
	chunk := testChunk(512)
	a := &Injector{Seed: 42, Rate: 0.5, Kinds: AllKinds}
	b := &Injector{Seed: 42, Rate: 0.5, Kinds: AllKinds}
	type result struct {
		data []byte
		kind Kind
		hit  bool
	}
	forward := make(map[[2]int]result)
	for s := 0; s < 6; s++ {
		for c := 0; c < 8; c++ {
			d, k, hit := a.Corrupt(s, c, chunk, 16)
			forward[[2]int{s, c}] = result{d, k, hit}
		}
	}
	hits := 0
	for s := 5; s >= 0; s-- {
		for c := 7; c >= 0; c-- {
			d, k, hit := b.Corrupt(s, c, chunk, 16)
			want := forward[[2]int{s, c}]
			if k != want.kind || hit != want.hit || !bytes.Equal(d, want.data) {
				t.Fatalf("slot (%d,%d) diverges between identical injectors", s, c)
			}
			if hit {
				hits++
			}
		}
	}
	if hits == 0 || hits == 48 {
		t.Fatalf("rate 0.5 produced %d/48 corruptions; injector decision degenerate", hits)
	}
	// A different seed must make different decisions somewhere.
	c := &Injector{Seed: 43, Rate: 0.5, Kinds: AllKinds}
	same := true
	for s := 0; s < 6 && same; s++ {
		for cc := 0; cc < 8; cc++ {
			d, k, hit := c.Corrupt(s, cc, chunk, 16)
			want := forward[[2]int{s, cc}]
			if k != want.kind || hit != want.hit || !bytes.Equal(d, want.data) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's decisions exactly")
	}
}

// TestPayloadKindsPreserveHeader: header-preserving kinds must never touch
// the protected prefix, and must actually change (or shorten) the payload.
func TestPayloadKindsPreserveHeader(t *testing.T) {
	chunk := testChunk(256)
	const protect = 32
	for _, k := range PayloadKinds {
		changed := false
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			out := Apply(k, rng, chunk, protect)
			n := protect
			if len(out) < n {
				n = len(out)
			}
			if !bytes.Equal(out[:n], chunk[:n]) {
				t.Fatalf("%v modified the protected prefix", k)
			}
			if !bytes.Equal(out, chunk) {
				changed = true
			}
		}
		if !changed {
			t.Fatalf("%v never altered a 256-byte chunk in 20 trials", k)
		}
	}
}

// TestGarbleHeaderTargetsPrefix: the header kind flips bits only inside the
// protected prefix.
func TestGarbleHeaderTargetsPrefix(t *testing.T) {
	chunk := testChunk(256)
	const protect = 32
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		out := GarbleHeader(rng, chunk, protect)
		if !bytes.Equal(out[protect:], chunk[protect:]) {
			t.Fatal("GarbleHeader modified the payload")
		}
		if bytes.Equal(out[:protect], chunk[:protect]) {
			t.Fatal("GarbleHeader left the header intact")
		}
	}
}

// TestCorruptNeverMutatesInput: every kind must copy-on-write.
func TestCorruptNeverMutatesInput(t *testing.T) {
	chunk := testChunk(256)
	orig := append([]byte(nil), chunk...)
	inj := &Injector{Seed: 1, Rate: 1, Kinds: AllKinds}
	for c := 0; c < 64; c++ {
		inj.Corrupt(0, c, chunk, 16)
	}
	if !bytes.Equal(chunk, orig) {
		t.Fatal("Corrupt mutated the caller's chunk")
	}
}

// TestDegenerateInputs: zero-length and all-header chunks must not panic
// and must report no corruption when nothing corruptible exists.
func TestDegenerateInputs(t *testing.T) {
	inj := &Injector{Seed: 9, Rate: 1, Kinds: PayloadKinds}
	if _, _, hit := inj.Corrupt(0, 0, nil, 0); hit {
		t.Fatal("corrupted an empty chunk")
	}
	tiny := []byte{1, 2, 3}
	for c := 0; c < 16; c++ {
		out, _, _ := inj.Corrupt(0, c, tiny, 3) // protect covers everything
		if len(out) > 0 && !bytes.Equal(out, tiny[:len(out)]) {
			t.Fatal("payload kind modified fully protected bytes")
		}
	}
	hdr := &Injector{Seed: 9, Rate: 1, Kinds: []Kind{KindHeader}}
	if out, _, hit := hdr.Corrupt(0, 0, tiny, 8); hit && len(out) != len(tiny) {
		t.Fatal("GarbleHeader changed the length")
	}
}

// TestSequenceFaults: duplication grows the sequence by one, reordering
// permutes it; chunk contents are shared and unmodified.
func TestSequenceFaults(t *testing.T) {
	chunks := [][]byte{testChunk(8), testChunk(8), testChunk(8), testChunk(8)}
	inj := &Injector{Seed: 5, Rate: 1}
	seenDup := false
	for s := 0; s < 32; s++ {
		out := inj.Sequence(s, chunks)
		if len(out) < len(chunks) || len(out) > len(chunks)+1 {
			t.Fatalf("sequence length %d from %d", len(out), len(chunks))
		}
		if len(out) == len(chunks)+1 {
			seenDup = true
		}
		// Every output chunk must be one of the inputs, untouched.
		for _, c := range out {
			ok := false
			for _, in := range chunks {
				if bytes.Equal(c, in) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatal("sequence fault altered chunk contents")
			}
		}
	}
	if !seenDup {
		t.Fatal("rate-1 sequence faults never duplicated a chunk in 32 streams")
	}
	if out := inj.Sequence(0, chunks[:1]); len(out) != 1 {
		t.Fatal("single-chunk sequence must pass through")
	}
}

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		n := k.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("kind %d name %q empty, unknown or duplicate", k, n)
		}
		seen[n] = true
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}
