package codec

import (
	"testing"

	"vrdann/internal/video"
)

// cutVideo builds two visually unrelated scenes joined by a hard cut.
func cutVideo(framesEach int) (*video.Video, int) {
	a := video.Generate(video.SceneSpec{
		Name: "sceneA", W: 64, H: 48, Frames: framesEach, Seed: 41, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 20, Y: 24, VX: 1, Intensity: 230, Foreground: true,
		}},
	})
	b := video.Generate(video.SceneSpec{
		Name: "sceneB", W: 64, H: 48, Frames: framesEach, Seed: 5150, Noise: 1.5,
		IllumDrift: 0,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeBox, Radius: 9, X: 44, Y: 20, VX: -0.8, Intensity: 60, Foreground: true,
		}},
	})
	// Push scene B's background far from A's so the cut is unmistakable.
	for _, f := range b.Frames {
		for i := range f.Pix {
			if f.Pix[i] > 75 {
				f.Pix[i] -= 75
			}
		}
	}
	return video.Concat(a, b), framesEach
}

func TestSceneCutForcesIFrame(t *testing.T) {
	v, cut := cutVideo(12)
	types := PlanGOP(v.Frames, DefaultConfig())
	// Some anchor at or shortly after the cut must be an I-frame.
	found := false
	for d := cut; d < cut+5 && d < len(types); d++ {
		if types[d] == IFrame {
			found = true
		}
	}
	if !found {
		t.Fatalf("no I-frame refresh near the cut at %d: %v", cut, types)
	}
	// And no B-run may straddle the cut boundary anchor-to-anchor: the
	// motion-adaptive planner should have shrunk the run.
	run := 0
	for d := cut - 3; d <= cut; d++ {
		if d >= 0 && types[d] == BFrame {
			run++
		}
	}
	if run >= 3 {
		t.Fatalf("a full B-run straddles the cut: %v", types[cut-3:cut+2])
	}
}

func TestSceneCutStreamDecodes(t *testing.T) {
	v, _ := cutVideo(10)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	for d, f := range res.Frames {
		if p := psnr(v.Frames[d], f); p < 26 {
			t.Fatalf("frame %d PSNR %.1f across the cut", d, p)
		}
	}
}

func TestSceneCutQualityNoWorseThanNoRefresh(t *testing.T) {
	// With the I-refresh, the frames right after the cut should code well
	// (intra) rather than fighting useless inter prediction.
	v, cut := cutVideo(10)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(v.Frames[cut], res.Frames[cut]); p < 30 {
		t.Fatalf("first frame after cut PSNR %.1f", p)
	}
}

func TestNoSpuriousSceneCuts(t *testing.T) {
	// A continuous sequence must not trigger extra I-frames beyond IPeriod.
	v := testVideo(64, 48, 32, 1.5)
	cfg := DefaultConfig()
	types := PlanGOP(v.Frames, cfg)
	iCount := 0
	for _, ty := range types {
		if ty == IFrame {
			iCount++
		}
	}
	// Anchors ≈ 10-16 over 32 frames, IPeriod 8 → expect 1-3 I frames.
	if iCount > 3 {
		t.Fatalf("%d I-frames on continuous content (spurious cut detection)", iCount)
	}
}
