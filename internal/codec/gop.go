package codec

import "vrdann/internal/video"

// PlanGOP assigns a frame type to every frame of the sequence (display
// order). Frame 0 is always I. Anchors (I/P) are spaced by motion-adaptive
// B-runs: fast content shortens the runs (mirroring the encoder "auto B
// ratio" that the paper reports averages ~65% but drops to ~37% for
// quality-critical content). When cfg.TargetBRatio > 0 the planner instead
// tracks that ratio greedily.
func PlanGOP(frames []*video.Frame, cfg Config) []FrameType {
	cfg = cfg.normalized()
	n := len(frames)
	types := make([]FrameType, n)
	if n == 0 {
		return types
	}
	types[0] = IFrame
	anchor := 0
	anchorCount := 1
	bCount := 0
	for anchor < n-1 {
		run := maxBRunFrom(frames, anchor, cfg, bCount)
		next := anchor + run + 1
		if next >= n {
			// The sequence must end on an anchor so every B has a future
			// reference.
			next = n - 1
			run = next - anchor - 1
		}
		for i := anchor + 1; i < next; i++ {
			types[i] = BFrame
		}
		bCount += run
		switch {
		case sceneCut(frames[anchor], frames[next]):
			// A hard cut: inter prediction across it is useless, so refresh
			// with an I-frame (what real encoders' scene-cut detection does).
			types[next] = IFrame
		case anchorCount%cfg.IPeriod == 0:
			types[next] = IFrame
		default:
			types[next] = PFrame
		}
		anchorCount++
		anchor = next
	}
	return types
}

// sceneCut reports whether the content between two frames changed so much
// that motion compensation cannot bridge them: the sampled mean absolute
// difference exceeds a level no plausible motion explains.
func sceneCut(a, b *video.Frame) bool {
	var sum, cnt int64
	for y := 0; y < a.H; y += 4 {
		for x := 0; x < a.W; x += 4 {
			d := int64(a.Pix[y*a.W+x]) - int64(b.Pix[y*b.W+x])
			if d < 0 {
				d = -d
			}
			sum += d
			cnt++
		}
	}
	return cnt > 0 && float64(sum)/float64(cnt) > 35
}

// maxBRunFrom picks the B-run length following the given anchor.
func maxBRunFrom(frames []*video.Frame, anchor int, cfg Config, bSoFar int) int {
	remaining := len(frames) - anchor - 1
	if remaining <= 1 {
		return 0
	}
	limit := cfg.MaxBRun
	if limit > remaining-1 {
		limit = remaining - 1
	}
	if cfg.TargetBRatio > 0 {
		// Greedy ratio tracking: pick the largest run that keeps the overall
		// B ratio at or below the target.
		for run := limit; run >= 0; run-- {
			total := anchor + run + 2 // frames planned through the next anchor
			if float64(bSoFar+run)/float64(total) <= cfg.TargetBRatio {
				return run
			}
		}
		return 0
	}
	// Motion-adaptive: shrink the run until the worst-case displacement
	// between the two anchors stays within reach of motion estimation, so
	// the in-between B-frames interpolate faithfully. This is what makes
	// the "auto B ratio" vary per video (Fig 3a / Fig 15).
	maxDisp := 0.95 * float64(cfg.SearchRange)
	for run := limit; run > 0; run-- {
		if frameDisplacement(frames[anchor], frames[anchor+run+1]) <= maxDisp {
			return run
		}
	}
	return 0
}

// frameDisplacement estimates the largest local motion between two frames:
// a sparse 3×3 grid of sample blocks is matched by coarse block search and
// the maximum best-match displacement is returned. Blocks that match
// nowhere well (occlusion, deformation) count as maximal displacement.
func frameDisplacement(a, b *video.Frame) float64 {
	const blk = 12
	const rang = 10
	if a.W < 3*blk || a.H < 3*blk {
		return 0
	}
	worst := 0.0
	for gy := 0; gy < 3; gy++ {
		for gx := 0; gx < 3; gx++ {
			bx := (a.W - blk) * (gx + 1) / 4
			by := (a.H - blk) * (gy + 1) / 4
			bestSAD := int64(1) << 62
			bestD := 0.0
			var zeroSAD int64
			for dy := -rang; dy <= rang; dy += 2 {
				for dx := -rang; dx <= rang; dx += 2 {
					var s int64
					for y := 0; y < blk; y++ {
						ay := by + y
						ry := clampInt(by+dy+y, 0, b.H-1)
						for x := 0; x < blk; x++ {
							d := int64(a.Pix[ay*a.W+bx+x]) - int64(b.Pix[ry*b.W+clampInt(bx+dx+x, 0, b.W-1)])
							if d < 0 {
								d = -d
							}
							s += d
						}
					}
					if dx == 0 && dy == 0 {
						zeroSAD = s
					}
					if s < bestSAD {
						bestSAD = s
						du, dv := float64(dx), float64(dy)
						bestD = du*du + dv*dv
					}
				}
			}
			d := sqrtApprox(bestD)
			// A block whose best match barely improves on co-located content
			// is static; one whose best match is still poor has complex
			// motion and counts as far-displaced.
			if bestSAD > zeroSAD*8/10 && bestSAD > int64(blk*blk*14) {
				d = float64(rang)
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func sqrtApprox(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 12; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// DecodeOrder computes the decode schedule for the planned types: anchors
// in display order, each B-run emitted once all of its candidate future
// reference anchors have been decoded (cfg.futureRefs() of them). This is
// the ordering recorded in the bitstream per Sec II of the paper ("the
// encoder records the decoding order of the frames according to the
// dependent relationship").
func DecodeOrder(types []FrameType, cfg Config) []int {
	cfg = cfg.normalized()
	future := cfg.futureRefs()
	if future < 1 {
		future = 1
	}
	var anchors []int
	for i, t := range types {
		if t.IsAnchor() {
			anchors = append(anchors, i)
		}
	}
	order := make([]int, 0, len(types))
	emitRun := func(k int) { // B frames between anchors[k] and anchors[k+1]
		if k < 0 || k+1 >= len(anchors) {
			return
		}
		for d := anchors[k] + 1; d < anchors[k+1]; d++ {
			order = append(order, d)
		}
	}
	for k, a := range anchors {
		order = append(order, a)
		emitRun(k - future)
	}
	// Flush runs whose future anchors ran out at the end of the sequence.
	for k := len(anchors) - future; k < len(anchors); k++ {
		emitRun(k)
	}
	return order
}

// candidateRefs returns the display indices of the anchor frames a B-frame
// at display index d may reference, nearest first, limited to the search
// interval. Past anchors are always decoded; future anchors are available
// up to cfg.futureRefs() ahead, which DecodeOrder guarantees.
func candidateRefs(anchors []int, d int, cfg Config) []int {
	n := cfg.EffectiveSearchInterval()
	future := cfg.futureRefs()
	// Locate the anchors flanking d.
	lo := -1
	for i, a := range anchors {
		if a < d {
			lo = i
		}
	}
	var past, fut []int
	for i := lo; i >= 0; i-- {
		past = append(past, anchors[i])
	}
	for i := lo + 1; i < len(anchors) && len(fut) < future; i++ {
		fut = append(fut, anchors[i])
	}
	// Merge nearest-first.
	out := make([]int, 0, n)
	pi, fi := 0, 0
	for len(out) < n && (pi < len(past) || fi < len(fut)) {
		switch {
		case pi >= len(past):
			out = append(out, fut[fi])
			fi++
		case fi >= len(fut):
			out = append(out, past[pi])
			pi++
		case d-past[pi] <= fut[fi]-d:
			out = append(out, past[pi])
			pi++
		default:
			out = append(out, fut[fi])
			fi++
		}
	}
	return out
}

// pastRefs returns the candidate references for a P-frame: up to n past
// anchors, nearest first.
func pastRefs(anchors []int, d int, cfg Config) []int {
	n := cfg.EffectiveSearchInterval()
	var out []int
	for i := len(anchors) - 1; i >= 0 && len(out) < n; i-- {
		if anchors[i] < d {
			out = append(out, anchors[i])
		}
	}
	return out
}

// CandidateRefs exposes the B-frame reference-candidate computation: the
// display indices of the anchors a B-frame at display index d may
// reference, nearest first, bounded by the search interval. The anchors
// slice lists all anchor display indices in ascending order.
func CandidateRefs(anchors []int, d int, cfg Config) []int {
	return candidateRefs(anchors, d, cfg.normalized())
}
