package codec

import "fmt"

// This file implements a context-adaptive binary arithmetic coder (a
// CABAC-style engine, as used by H.264/H.265's high-efficiency entropy
// stage). Symbols are binarized exactly like the Exp-Golomb backend and
// each bin is coded against an adaptive probability context, so the same
// encoder/decoder structure can run on either entropy backend.

// arithContext is one adaptive binary probability model: p0 is the
// probability of the next bin being 0, in 1/65536 units.
type arithContext struct {
	p0 uint16
}

func newContext() arithContext { return arithContext{p0: 1 << 15} }

// update adapts the context toward the observed bin with an exponential
// moving average (shift-based, as hardware coders do).
func (c *arithContext) update(bit uint8) {
	const shift = 5
	if bit == 0 {
		c.p0 += (0xffff - c.p0) >> shift
	} else {
		c.p0 -= c.p0 >> shift
	}
	// Keep the probability away from the degenerate ends.
	if c.p0 < 64 {
		c.p0 = 64
	}
	if c.p0 > 0xffff-64 {
		c.p0 = 0xffff - 64
	}
}

// arithTop is the renormalization threshold: the range is kept at or above
// 2^24 so the probability split keeps full precision.
const arithTop = 1 << 24

// ArithWriter is a byte-oriented range encoder (LZMA-style carry handling)
// with adaptive contexts and Exp-Golomb binarization helpers mirroring
// BitWriter's interface.
type ArithWriter struct {
	low       uint64
	rng       uint32
	out       []byte
	cache     uint8
	cacheSize int
	ctx       []arithContext
}

// ueCtxBins bounds how many unary-prefix bins get dedicated contexts.
const ueCtxBins = 16

// NewArithWriter returns an encoder with adaptive contexts for the UE/SE
// binarization and raw bins.
func NewArithWriter() *ArithWriter {
	w := &ArithWriter{rng: 0xffffffff, cacheSize: 1}
	w.ctx = make([]arithContext, ueCtxBins+1)
	for i := range w.ctx {
		w.ctx[i] = newContext()
	}
	return w
}

// encodeBit codes one bin against a context.
func (w *ArithWriter) encodeBit(c *arithContext, bit uint8) {
	split := uint32(uint64(w.rng) * uint64(c.p0) >> 16)
	if split == 0 {
		split = 1
	}
	if bit == 0 {
		w.rng = split
	} else {
		w.low += uint64(split)
		w.rng -= split
	}
	c.update(bit)
	w.renorm()
}

// encodeBypass codes one equiprobable bin (no context).
func (w *ArithWriter) encodeBypass(bit uint8) {
	split := w.rng >> 1
	if bit == 0 {
		w.rng = split
	} else {
		w.low += uint64(split)
		w.rng -= split
	}
	w.renorm()
}

func (w *ArithWriter) renorm() {
	for w.rng < arithTop {
		w.shiftLow()
		w.rng <<= 8
	}
}

func (w *ArithWriter) shiftLow() {
	if uint32(w.low) < 0xff000000 || w.low>>32 != 0 {
		carry := uint8(w.low >> 32)
		temp := w.cache
		for ; w.cacheSize > 0; w.cacheSize-- {
			w.out = append(w.out, temp+carry)
			temp = 0xff
		}
		w.cache = uint8(w.low >> 24)
	}
	w.cacheSize++
	w.low = (w.low << 8) & 0xffffffff
}

// WriteBit codes one bin against the shared "raw bit" context.
func (w *ArithWriter) WriteBit(b uint8) {
	w.encodeBit(&w.ctx[ueCtxBins], b&1)
}

// WriteBits codes the low n bits of v as bypass bins (uniform data such as
// headers and suffixes carries no exploitable bias).
func (w *ArithWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.encodeBypass(uint8(v >> uint(i) & 1))
	}
}

// WriteUE codes v with Exp-Golomb binarization: the unary prefix bins use
// per-position adaptive contexts, the suffix bins bypass.
func (w *ArithWriter) WriteUE(v uint64) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		ci := i
		if ci >= ueCtxBins {
			ci = ueCtxBins - 1
		}
		w.encodeBit(&w.ctx[ci], 0)
	}
	ci := n
	if ci >= ueCtxBins {
		ci = ueCtxBins - 1
	}
	w.encodeBit(&w.ctx[ci], 1)
	for i := n - 1; i >= 0; i-- {
		w.encodeBypass(uint8(x >> uint(i) & 1))
	}
}

// WriteSE codes v with the signed Exp-Golomb mapping.
func (w *ArithWriter) WriteSE(v int64) {
	if v <= 0 {
		w.WriteUE(uint64(-2 * v))
	} else {
		w.WriteUE(uint64(2*v - 1))
	}
}

// Bytes flushes the coder and returns the compressed payload.
func (w *ArithWriter) Bytes() []byte {
	for i := 0; i < 5; i++ {
		w.shiftLow()
	}
	return w.out
}

// ArithReader decodes a payload produced by ArithWriter.
type ArithReader struct {
	code uint32
	rng  uint32
	buf  []byte
	pos  int
	ctx  []arithContext
}

// NewArithReader initializes the decoder over buf.
func NewArithReader(buf []byte) *ArithReader {
	r := &ArithReader{rng: 0xffffffff, buf: buf}
	r.ctx = make([]arithContext, ueCtxBins+1)
	for i := range r.ctx {
		r.ctx[i] = newContext()
	}
	// Prime with the first 5 bytes (mirrors the 5 flush bytes).
	r.nextByte() // discard the leading cache byte
	for i := 0; i < 4; i++ {
		r.code = r.code<<8 | uint32(r.nextByte())
	}
	return r
}

func (r *ArithReader) nextByte() uint8 {
	if r.pos >= len(r.buf) {
		r.pos++
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// exhausted reports whether the reader has consumed more bytes than exist —
// the malformed-input signal.
func (r *ArithReader) exhausted() bool { return r.pos > len(r.buf)+8 }

func (r *ArithReader) decodeBit(c *arithContext) (uint8, error) {
	if r.exhausted() {
		return 0, fmt.Errorf("%w: arithmetic payload exhausted", ErrBitstream)
	}
	split := uint32(uint64(r.rng) * uint64(c.p0) >> 16)
	if split == 0 {
		split = 1
	}
	var bit uint8
	if r.code < split {
		r.rng = split
	} else {
		bit = 1
		r.code -= split
		r.rng -= split
	}
	c.update(bit)
	r.renorm()
	return bit, nil
}

func (r *ArithReader) decodeBypass() (uint8, error) {
	if r.exhausted() {
		return 0, fmt.Errorf("%w: arithmetic payload exhausted", ErrBitstream)
	}
	split := r.rng >> 1
	var bit uint8
	if r.code < split {
		r.rng = split
	} else {
		bit = 1
		r.code -= split
		r.rng -= split
	}
	r.renorm()
	return bit, nil
}

func (r *ArithReader) renorm() {
	for r.rng < arithTop {
		r.code = r.code<<8 | uint32(r.nextByte())
		r.rng <<= 8
	}
}

// ReadBit mirrors ArithWriter.WriteBit.
func (r *ArithReader) ReadBit() (uint8, error) {
	return r.decodeBit(&r.ctx[ueCtxBins])
}

// ReadBits mirrors ArithWriter.WriteBits.
func (r *ArithReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.decodeBypass()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUE mirrors ArithWriter.WriteUE.
func (r *ArithReader) ReadUE() (uint64, error) {
	n := 0
	for {
		ci := n
		if ci >= ueCtxBins {
			ci = ueCtxBins - 1
		}
		b, err := r.decodeBit(&r.ctx[ci])
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 63 {
			return 0, fmt.Errorf("%w: arithmetic Exp-Golomb prefix too long", ErrBitstream)
		}
	}
	var rest uint64
	for i := 0; i < n; i++ {
		b, err := r.decodeBypass()
		if err != nil {
			return 0, err
		}
		rest = rest<<1 | uint64(b)
	}
	return 1<<uint(n) + rest - 1, nil
}

// ReadSE mirrors ArithWriter.WriteSE.
func (r *ArithReader) ReadSE() (int64, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 0 {
		return -int64(u / 2), nil
	}
	return int64(u+1) / 2, nil
}
