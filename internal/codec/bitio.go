// Package codec implements a simplified H.264/H.265-style video codec:
// I/P/B frame types on a macro-block basis, SAE-driven intra prediction,
// block motion estimation with forward/backward/bi-directional references,
// DCT + quantization + Exp-Golomb entropy coding, and a serializable
// bitstream with an explicit decode order.
//
// The decoder can run in two modes: full pixel reconstruction (used by the
// per-frame baselines), or side-info extraction, where B-frames yield only
// their motion-vector metadata — the mode VR-DANN exploits (the paper's
// "the decoder only needs to decode the I/P-frames, and output the inherent
// motion vector information in B-frames").
package codec

import (
	"errors"
	"fmt"
)

// ErrBitstream reports a malformed or truncated bitstream.
var ErrBitstream = errors.New("codec: malformed bitstream")

// BitWriter accumulates bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint8
	nbit uint8
}

// NewBitWriter returns an empty bit writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends one bit (0 or 1).
func (w *BitWriter) WriteBit(b uint8) {
	w.cur = w.cur<<1 | (b & 1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n ≤ 64.
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint8(v >> uint(i) & 1))
	}
}

// WriteUE appends v in unsigned Exp-Golomb code.
func (w *BitWriter) WriteUE(v uint64) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n+1)
}

// WriteSE appends v in signed Exp-Golomb code (0, 1, -1, 2, -2, …).
func (w *BitWriter) WriteSE(v int64) {
	if v <= 0 {
		w.WriteUE(uint64(-2 * v))
	} else {
		w.WriteUE(uint64(2*v - 1))
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes the partial byte (zero padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nbit > 0 {
		out = append(out, w.cur<<(8-w.nbit))
	}
	return out
}

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit reads one bit.
func (r *BitReader) ReadBit() (uint8, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.pos)
	}
	b := r.buf[r.pos/8] >> (7 - uint(r.pos%8)) & 1
	r.pos++
	return b, nil
}

// ReadBits reads n bits into the low bits of the result.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUE reads an unsigned Exp-Golomb value.
func (r *BitReader) ReadUE() (uint64, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 63 {
			return 0, fmt.Errorf("%w: Exp-Golomb prefix too long", ErrBitstream)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return 1<<uint(n) + rest - 1, nil
}

// ReadSE reads a signed Exp-Golomb value.
func (r *BitReader) ReadSE() (int64, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 0 {
		return -int64(u / 2), nil
	}
	return int64(u+1) / 2, nil
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }
