package codec

import "vrdann/internal/video"

// motionCandidate is the result of motion search against one reference.
type motionCandidate struct {
	refIdx       int // index into the candidate reference list
	srcX, srcY   int // top-left pixel of the matched block in the reference
	halfX, halfY int // half-pel offsets (0 or 1 each) added to (srcX, srcY)
	sae          int64
}

// copyRefBlock extracts the bs×bs block at (sx, sy) from ref into dst.
// Out-of-frame pixels read as edge-clamped values so searches near the
// border remain meaningful.
func copyRefBlock(ref *video.Frame, sx, sy, bs int, dst []uint8) {
	for y := 0; y < bs; y++ {
		yy := clampInt(sy+y, 0, ref.H-1)
		row := yy * ref.W
		for x := 0; x < bs; x++ {
			xx := clampInt(sx+x, 0, ref.W-1)
			dst[y*bs+x] = ref.Pix[row+xx]
		}
	}
}

// refSAE computes SAE between the source block at (bx, by) and the
// reference block at (sx, sy), with early termination once the running sum
// exceeds bound.
func refSAE(src *video.Frame, ref *video.Frame, bx, by, sx, sy, bs int, bound int64) int64 {
	var s int64
	for y := 0; y < bs; y++ {
		srow := (by + y) * src.W
		ry := clampInt(sy+y, 0, ref.H-1)
		rrow := ry * ref.W
		for x := 0; x < bs; x++ {
			rx := clampInt(sx+x, 0, ref.W-1)
			d := int64(src.Pix[srow+bx+x]) - int64(ref.Pix[rrow+rx])
			if d < 0 {
				d = -d
			}
			s += d
		}
		if s > bound {
			return s
		}
	}
	return s
}

// motionSearch finds the best match for the block at (bx, by) in ref using
// a coarse-then-fine search (step-2 grid inside ±rang, then ±1 refinement),
// mirroring the multi-step search strategies of real encoders.
func motionSearch(src, ref *video.Frame, bx, by, bs, rang int) motionCandidate {
	bestX, bestY := bx, by
	best := refSAE(src, ref, bx, by, bx, by, bs, 1<<62)
	// Coarse grid.
	for dy := -rang; dy <= rang; dy += 2 {
		for dx := -rang; dx <= rang; dx += 2 {
			if dx == 0 && dy == 0 {
				continue
			}
			s := refSAE(src, ref, bx, by, bx+dx, by+dy, bs, best)
			if s < best {
				best, bestX, bestY = s, bx+dx, by+dy
			}
		}
	}
	// ±1 refinement around the coarse winner.
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			s := refSAE(src, ref, bx, by, bestX+dx, bestY+dy, bs, best)
			if s < best {
				best, bestX, bestY = s, bestX+dx, bestY+dy
			}
		}
	}
	return motionCandidate{srcX: bestX, srcY: bestY, sae: best}
}

// biSAE computes SAE of the averaged bi-prediction of two reference blocks.
func biSAE(src *video.Frame, a, b *video.Frame, bx, by int, ca, cb motionCandidate, bs int) int64 {
	var s int64
	for y := 0; y < bs; y++ {
		srow := (by + y) * src.W
		ay := clampInt(ca.srcY+y, 0, a.H-1)
		by2 := clampInt(cb.srcY+y, 0, b.H-1)
		for x := 0; x < bs; x++ {
			ax := clampInt(ca.srcX+x, 0, a.W-1)
			bx2 := clampInt(cb.srcX+x, 0, b.W-1)
			p := (int64(a.Pix[ay*a.W+ax]) + int64(b.Pix[by2*b.W+bx2]) + 1) / 2
			d := int64(src.Pix[srow+bx+x]) - p
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
