package codec

import "testing"

func TestStreamDecoderMatchesBatchDecode(t *testing.T) {
	v := testVideo(64, 48, 18, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := sd.Geometry(); w != 64 || h != 48 {
		t.Fatalf("geometry %dx%d", w, h)
	}
	count := 0
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		d := out.Info.Display
		bi := batch.Infos[d]
		if out.Info.Type != bi.Type || out.Info.Blocks != bi.Blocks || len(out.Info.MVs) != len(bi.MVs) {
			t.Fatalf("frame %d metadata differs from batch decode", d)
		}
		for i := range out.Info.MVs {
			if out.Info.MVs[i] != bi.MVs[i] {
				t.Fatalf("frame %d MV %d differs", d, i)
			}
		}
		if out.Pixels == nil {
			t.Fatalf("frame %d missing pixels in full mode", d)
		}
		for i := range out.Pixels.Pix {
			if out.Pixels.Pix[i] != batch.Frames[d].Pix[i] {
				t.Fatalf("frame %d pixel %d differs from batch decode", d, i)
			}
		}
		count++
	}
	if count != 18 {
		t.Fatalf("delivered %d frames, want 18", count)
	}
	if out, err := sd.Next(); out != nil || err != nil {
		t.Fatal("exhausted decoder must return (nil, nil)")
	}
}

func TestStreamDecoderSideInfoMode(t *testing.T) {
	v := testVideo(64, 48, 15, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	sawB := false
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		if out.Info.Type == BFrame {
			sawB = true
			if out.Pixels != nil {
				t.Fatal("side-info mode must not reconstruct B pixels")
			}
			if len(out.Info.MVs)+out.Info.IntraBlk != out.Info.Blocks {
				t.Fatal("B-frame metadata incomplete")
			}
		} else if out.Pixels == nil {
			t.Fatal("anchor must have pixels")
		}
	}
	if !sawB {
		t.Fatal("no B frames in test stream")
	}
}

func TestStreamDecoderBoundedMemory(t *testing.T) {
	// The working set must stay bounded by the search interval, not grow
	// with the sequence length.
	v := testVideo(64, 48, 40, 0.8)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	bound := sd.Config().EffectiveSearchInterval() + 2
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		if sd.BufferedRefs() > bound {
			t.Fatalf("working set %d exceeds bound %d", sd.BufferedRefs(), bound)
		}
	}
	if sd.BufferedRefs() != 0 {
		t.Fatalf("all references should be evicted at EOS, %d remain", sd.BufferedRefs())
	}
}

func TestStreamDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewStreamDecoder([]byte{1, 2, 3}, DecodeFull); err == nil {
		t.Fatal("expected header error")
	}
	v := testVideo(32, 32, 6, 1)
	st, _ := Encode(v, DefaultConfig())
	sd, err := NewStreamDecoder(st.Data[:len(st.Data)-20], DecodeFull)
	if err != nil {
		t.Fatal("header should parse on truncated payload")
	}
	for {
		out, err := sd.Next()
		if err != nil {
			return // clean failure
		}
		if out == nil {
			t.Fatal("truncated stream decoded fully")
		}
	}
}

func TestStreamDecoderRemaining(t *testing.T) {
	v := testVideo(32, 32, 8, 1)
	st, _ := Encode(v, DefaultConfig())
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Remaining() != 8 {
		t.Fatalf("Remaining = %d", sd.Remaining())
	}
	if _, err := sd.Next(); err != nil {
		t.Fatal(err)
	}
	if sd.Remaining() != 7 {
		t.Fatalf("Remaining after one = %d", sd.Remaining())
	}
}
