package codec

import (
	"errors"
	"testing"
)

func TestStreamDecoderMatchesBatchDecode(t *testing.T) {
	v := testVideo(64, 48, 18, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := sd.Geometry(); w != 64 || h != 48 {
		t.Fatalf("geometry %dx%d", w, h)
	}
	count := 0
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		d := out.Info.Display
		bi := batch.Infos[d]
		if out.Info.Type != bi.Type || out.Info.Blocks != bi.Blocks || len(out.Info.MVs) != len(bi.MVs) {
			t.Fatalf("frame %d metadata differs from batch decode", d)
		}
		for i := range out.Info.MVs {
			if out.Info.MVs[i] != bi.MVs[i] {
				t.Fatalf("frame %d MV %d differs", d, i)
			}
		}
		if out.Pixels == nil {
			t.Fatalf("frame %d missing pixels in full mode", d)
		}
		for i := range out.Pixels.Pix {
			if out.Pixels.Pix[i] != batch.Frames[d].Pix[i] {
				t.Fatalf("frame %d pixel %d differs from batch decode", d, i)
			}
		}
		count++
	}
	if count != 18 {
		t.Fatalf("delivered %d frames, want 18", count)
	}
	if out, err := sd.Next(); out != nil || err != nil {
		t.Fatal("exhausted decoder must return (nil, nil)")
	}
}

func TestStreamDecoderSideInfoMode(t *testing.T) {
	v := testVideo(64, 48, 15, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	sawB := false
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		if out.Info.Type == BFrame {
			sawB = true
			if out.Pixels != nil {
				t.Fatal("side-info mode must not reconstruct B pixels")
			}
			if len(out.Info.MVs)+out.Info.IntraBlk != out.Info.Blocks {
				t.Fatal("B-frame metadata incomplete")
			}
		} else if out.Pixels == nil {
			t.Fatal("anchor must have pixels")
		}
	}
	if !sawB {
		t.Fatal("no B frames in test stream")
	}
}

func TestStreamDecoderBoundedMemory(t *testing.T) {
	// The working set must stay bounded by the search interval, not grow
	// with the sequence length.
	v := testVideo(64, 48, 40, 0.8)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	bound := sd.Config().EffectiveSearchInterval() + 2
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		if sd.BufferedRefs() > bound {
			t.Fatalf("working set %d exceeds bound %d", sd.BufferedRefs(), bound)
		}
	}
	if sd.BufferedRefs() != 0 {
		t.Fatalf("all references should be evicted at EOS, %d remain", sd.BufferedRefs())
	}
}

func TestStreamDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewStreamDecoder([]byte{1, 2, 3}, DecodeFull); err == nil {
		t.Fatal("expected header error")
	}
	v := testVideo(32, 32, 6, 1)
	st, _ := Encode(v, DefaultConfig())
	sd, err := NewStreamDecoder(st.Data[:len(st.Data)-20], DecodeFull)
	if err != nil {
		t.Fatal("header should parse on truncated payload")
	}
	for {
		out, err := sd.Next()
		if err != nil {
			return // clean failure
		}
		if out == nil {
			t.Fatal("truncated stream decoded fully")
		}
	}
}

func TestStreamDecoderRemaining(t *testing.T) {
	v := testVideo(32, 32, 8, 1)
	st, _ := Encode(v, DefaultConfig())
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Remaining() != 8 {
		t.Fatalf("Remaining = %d", sd.Remaining())
	}
	if _, err := sd.Next(); err != nil {
		t.Fatal(err)
	}
	if sd.Remaining() != 7 {
		t.Fatalf("Remaining after one = %d", sd.Remaining())
	}
}

// drainStream decodes every remaining frame.
func drainStream(t *testing.T, sd *StreamDecoder) []*FrameOut {
	t.Helper()
	var out []*FrameOut
	for {
		fo, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if fo == nil {
			return out
		}
		out = append(out, fo)
	}
}

// sameFrames asserts two decoded sequences are bit-identical: metadata,
// motion vectors and pixels.
func sameFrames(t *testing.T, got, want []*FrameOut) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Info.Display != w.Info.Display || g.Info.Type != w.Info.Type ||
			g.Info.Blocks != w.Info.Blocks || g.Info.IntraBlk != w.Info.IntraBlk ||
			g.Info.Bits != w.Info.Bits || len(g.Info.MVs) != len(w.Info.MVs) {
			t.Fatalf("frame %d metadata diverges: %+v vs %+v", i, g.Info, w.Info)
		}
		for j := range g.Info.MVs {
			if g.Info.MVs[j] != w.Info.MVs[j] {
				t.Fatalf("frame %d MV %d diverges", i, j)
			}
		}
		if (g.Pixels == nil) != (w.Pixels == nil) {
			t.Fatalf("frame %d pixel presence diverges", i)
		}
		if g.Pixels != nil {
			for p := range g.Pixels.Pix {
				if g.Pixels.Pix[p] != w.Pixels.Pix[p] {
					t.Fatalf("frame %d pixel %d diverges", i, p)
				}
			}
		}
	}
}

// TestStreamDecoderResetSpansChunks pins the long-lived-session contract: a
// single decoder Reset across independently encoded, GOP-aligned chunks
// decodes each chunk bit-identically to a fresh decoder per chunk — no
// reference, scratch or entropy state bleeds across the boundary.
func TestStreamDecoderResetSpansChunks(t *testing.T) {
	v1 := testVideo(64, 48, 12, 1.5)
	v2 := testVideo(64, 48, 10, 0.8)
	st1, err := Encode(v1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Encode(v2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh := func(data []byte) []*FrameOut {
		sd, err := NewStreamDecoder(data, DecodeFull)
		if err != nil {
			t.Fatal(err)
		}
		return drainStream(t, sd)
	}
	want1, want2 := fresh(st1.Data), fresh(st2.Data)

	// One session decoder across both chunks.
	sd, err := NewStreamDecoder(st1.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sameFrames(t, drainStream(t, sd), want1)
	if err := sd.Reset(st2.Data); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if sd.Remaining() != 10 {
		t.Fatalf("Remaining after Reset = %d, want 10", sd.Remaining())
	}
	sameFrames(t, drainStream(t, sd), want2)

	// Reset must also discard abandoned mid-chunk state: references and
	// position from a half-decoded chunk must not leak into the next.
	sd2, err := NewStreamDecoder(st1.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sd2.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sd2.Reset(st2.Data); err != nil {
		t.Fatalf("mid-chunk Reset: %v", err)
	}
	sameFrames(t, drainStream(t, sd2), want2)
	if sd2.BufferedRefs() != 0 {
		t.Fatalf("references leaked across Reset: %d", sd2.BufferedRefs())
	}
}

func TestStreamDecoderResetRejectsMismatch(t *testing.T) {
	st1, err := Encode(testVideo(64, 48, 8, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st1.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Encode(testVideo(32, 32, 8, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Reset(other.Data); err == nil {
		t.Fatal("Reset must reject a chunk with different geometry")
	}
	if err := sd.Reset([]byte{1, 2, 3}); err == nil {
		t.Fatal("Reset must reject garbage")
	}
	cfg := DefaultConfig()
	cfg.BlockSize = 16
	bs16, err := Encode(testVideo(64, 48, 8, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Reset(bs16.Data); err == nil {
		t.Fatal("Reset must reject a chunk with different block size")
	}
	// A failed Reset must not have corrupted the session: the original
	// chunk still decodes.
	if err := sd.Reset(st1.Data); err != nil {
		t.Fatalf("Reset back to original chunk: %v", err)
	}
	if got := len(drainStream(t, sd)); got != 8 {
		t.Fatalf("decoded %d frames after recovery, want 8", got)
	}
}

// TestStreamDecoderResetAfterDecodeError pins the resync contract the
// serving layer's quarantine path relies on: a decoder that failed mid-chunk
// on corrupt payload must, after Reset over a clean chunk, decode that chunk
// bit-identically to a fresh decoder — no poisoned entropy, reference or
// position state survives the Reset.
func TestStreamDecoderResetAfterDecodeError(t *testing.T) {
	clean, err := Encode(testVideo(64, 48, 12, 1.5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info, err := ProbeStream(clean.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload only: the header still parses (the chunk would
	// pass serving admission) but decoding fails partway through.
	corrupt := append([]byte(nil), clean.Data...)
	for i := info.HeaderBytes + len(corrupt)/4; i < len(corrupt); i += 3 {
		corrupt[i] ^= 0xA5
	}
	sd, err := NewStreamDecoder(corrupt, DecodeFull)
	if err != nil {
		t.Skip("corruption landed in the header; not the mid-chunk shape under test")
	}
	decoded, failed := 0, false
	for {
		out, derr := sd.Next()
		if derr != nil {
			failed = true
			break
		}
		if out == nil {
			break
		}
		decoded++
	}
	if !failed {
		t.Fatalf("corrupted payload decoded all %d frames without error; corruption too weak", decoded)
	}
	// Resync: Reset over the clean chunk must match a fresh decoder exactly.
	if err := sd.Reset(clean.Data); err != nil {
		t.Fatalf("Reset after decode error: %v", err)
	}
	fresh, err := NewStreamDecoder(clean.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sameFrames(t, drainStream(t, sd), drainStream(t, fresh))
	if sd.BufferedRefs() != 0 {
		t.Fatalf("poisoned references survived Reset: %d", sd.BufferedRefs())
	}
}

// TestStreamDecoderResetTruncatedHeader: a Reset chunk cut inside the header
// must be rejected without corrupting the session, for every truncation
// point up to the full header.
func TestStreamDecoderResetTruncatedHeader(t *testing.T) {
	st, err := Encode(testVideo(64, 48, 8, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info, err := ProbeStream(st.Data)
	if err != nil {
		t.Fatal(err)
	}
	if info.HeaderBytes <= 0 || info.HeaderBytes >= len(st.Data) {
		t.Fatalf("HeaderBytes = %d out of range (stream %d bytes)", info.HeaderBytes, len(st.Data))
	}
	sd, err := NewStreamDecoder(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < info.HeaderBytes; cut++ {
		if err := sd.Reset(st.Data[:cut]); err == nil {
			t.Fatalf("Reset accepted a header truncated at byte %d", cut)
		} else if !errors.Is(err, ErrBitstream) {
			t.Fatalf("truncated-header Reset error %v does not wrap ErrBitstream", err)
		}
	}
	// The session survives every rejected Reset.
	if err := sd.Reset(st.Data); err != nil {
		t.Fatalf("Reset after truncated-header rejections: %v", err)
	}
	if got := len(drainStream(t, sd)); got != 8 {
		t.Fatalf("decoded %d frames after recovery, want 8", got)
	}
}

func TestProbeStream(t *testing.T) {
	v := testVideo(64, 48, 9, 1.2)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info, err := ProbeStream(st.Data)
	if err != nil {
		t.Fatal(err)
	}
	if info.W != 64 || info.H != 48 || info.Frames != 9 {
		t.Fatalf("probe = %+v", info)
	}
	if info.HeaderBytes <= 0 || info.HeaderBytes >= len(st.Data) {
		t.Fatalf("HeaderBytes = %d, want in (0, %d)", info.HeaderBytes, len(st.Data))
	}
	// Everything before HeaderBytes is header: truncating there must fail
	// the probe, while the full stream with a corrupted first payload byte
	// must still probe fine.
	if _, err := ProbeStream(st.Data[:info.HeaderBytes-1]); err == nil {
		t.Fatal("probe accepted a stream truncated inside the header")
	}
	flipped := append([]byte(nil), st.Data...)
	flipped[info.HeaderBytes] ^= 0xFF
	if _, err := ProbeStream(flipped); err != nil {
		t.Fatalf("payload corruption past HeaderBytes must not fail the probe: %v", err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Types) != len(sd.Types()) {
		t.Fatalf("probe types %d, decoder %d", len(info.Types), len(sd.Types()))
	}
	for i, ft := range sd.Types() {
		if info.Types[i] != ft {
			t.Fatalf("probe type %d diverges", i)
		}
	}
	if info.Cfg != sd.Config() {
		t.Fatalf("probe cfg %+v, decoder %+v", info.Cfg, sd.Config())
	}
	if _, err := ProbeStream([]byte{9, 9, 9}); err == nil {
		t.Fatal("probe must reject garbage")
	}
}
