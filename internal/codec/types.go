package codec

import "fmt"

// FrameType classifies a frame in the GOP structure.
type FrameType uint8

// Frame types.
const (
	IFrame FrameType = iota // intra-only anchor
	PFrame                  // forward-predicted anchor
	BFrame                  // bi-directionally predicted, never referenced
)

func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	case BFrame:
		return "B"
	default:
		return "?"
	}
}

// IsAnchor reports whether the frame can be referenced by other frames.
func (t FrameType) IsAnchor() bool { return t == IFrame || t == PFrame }

// Config holds encoder parameters.
type Config struct {
	// BlockSize is the macro-block edge in pixels: 8 models H.265's
	// finer-grained blocks, 16 models H.264 (Fig 17 sweep).
	BlockSize int
	// QP is the quantization parameter (larger = coarser).
	QP int
	// SearchRange bounds motion search to ±SearchRange pixels.
	SearchRange int
	// SearchInterval is the number of candidate reference anchor frames per
	// B-frame (the paper's n, Fig 16). 0 selects "Auto n" (4 candidates).
	SearchInterval int
	// MaxBRun caps consecutive B-frames between anchors.
	MaxBRun int
	// TargetBRatio forces the fraction of B-frames (Fig 15); 0 selects the
	// motion-adaptive "auto B ratio".
	TargetBRatio float64
	// IPeriod inserts an I-frame every IPeriod anchors.
	IPeriod int
	// Arithmetic selects the context-adaptive binary arithmetic entropy
	// backend (CABAC-style) instead of plain Exp-Golomb bit coding.
	Arithmetic bool
	// Deblock enables the in-loop deblocking filter on reconstructed
	// frames (applied identically in the encoder's coding loop and the
	// decoder).
	Deblock bool
	// TargetBPF, when positive, enables rate control: the encoder adapts
	// the per-frame quantization parameter to average the given number of
	// bits per frame. Zero keeps QP constant.
	TargetBPF int
	// HalfPel enables half-pixel motion compensation: motion search refines
	// to half-pel positions and prediction interpolates bilinearly.
	HalfPel bool
}

// DefaultConfig returns the encoder defaults used throughout the
// experiments: H.265-like 8×8 blocks, auto B ratio, auto search interval.
func DefaultConfig() Config {
	return Config{
		BlockSize:      8,
		QP:             22,
		SearchRange:    8,
		SearchInterval: 0,
		MaxBRun:        3,
		TargetBRatio:   0,
		IPeriod:        8,
	}
}

// normalized fills in derived defaults.
func (c Config) normalized() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 8
	}
	if c.QP == 0 {
		c.QP = 22
	}
	if c.SearchRange == 0 {
		c.SearchRange = 8
	}
	if c.MaxBRun == 0 {
		c.MaxBRun = 3
	}
	if c.IPeriod == 0 {
		c.IPeriod = 8
	}
	return c
}

// EffectiveSearchInterval resolves the auto search interval. The "Auto n"
// default of 7 candidate reference frames matches the paper's Fig 3b
// observation that reconstructing one B-frame can involve up to seven
// reference frames.
func (c Config) EffectiveSearchInterval() int {
	if c.SearchInterval <= 0 {
		return 7 // "Auto n"
	}
	return c.SearchInterval
}

// futureRefs returns how many future anchors a B-frame may reference.
func (c Config) futureRefs() int { return c.EffectiveSearchInterval() / 2 }

// MotionVector records one macro-block's referencing relationship, mirroring
// the paper's mv_T entry: current block position (dstx, dsty), reference
// frame and source position (srcx, srcy), and the bi-ref flag with the
// second reference.
type MotionVector struct {
	DstX, DstY int // top-left pixel of the current macro-block
	Ref        int // display index of the (first) reference frame
	SrcX, SrcY int // top-left pixel of the reference macro-block
	// HalfX/HalfY are half-pel offsets (0 or 1) added to (SrcX, SrcY) for
	// pixel prediction; segmentation reconstruction uses the integer part.
	HalfX, HalfY int
	BiRef        bool
	Ref2         int // second reference (valid when BiRef)
	SrcX2        int
	SrcY2        int
	HalfX2       int
	HalfY2       int
}

func (m MotionVector) String() string {
	if m.BiRef {
		return fmt.Sprintf("(%d,%d)<-f%d(%d,%d)+f%d(%d,%d)", m.DstX, m.DstY, m.Ref, m.SrcX, m.SrcY, m.Ref2, m.SrcX2, m.SrcY2)
	}
	return fmt.Sprintf("(%d,%d)<-f%d(%d,%d)", m.DstX, m.DstY, m.Ref, m.SrcX, m.SrcY)
}

// FrameInfo is the per-frame metadata the decoder exposes to the rest of
// the SoC: frame type, ordering, motion vectors, and size in the stream.
type FrameInfo struct {
	Display  int // display-order index
	DecodeAt int // position in decode order
	Type     FrameType
	MVs      []MotionVector // one per inter-coded macro-block (P and B)
	Bits     int            // compressed size of this frame
	Blocks   int            // macro-block count
	IntraBlk int            // number of intra-coded macro-blocks
	// BlockEnergy holds one entry per macro-block in raster order: the sum of
	// absolute quantized residual levels of an inter block (0 means the
	// motion-compensated prediction was bit-exact at this QP), or -1 for an
	// intra block, whose "residual" is not a correction on top of motion
	// compensation and must always be treated as dirty. The residual levels
	// ride in the bitstream's side channel regardless of decode mode, so this
	// is populated even when B-frame pixels are skipped — it is what the
	// residual-driven NN-S skip keys on.
	BlockEnergy []int32
}

// block coding modes (per-macro-block). The diagonal intra modes are
// numbered after the inter modes so their addition kept the bitstream
// numbering of older modes stable.
const (
	modeIntraDC = iota
	modeIntraV
	modeIntraH
	modeIntraPlane
	modeInter    // single reference
	modeInterBi  // two references, averaged
	modeIntraDDL // diagonal down-left (45°)
	modeIntraDDR // diagonal down-right
	numModes
)

// intraModes lists every intra prediction mode the encoder evaluates.
var intraModes = []int{modeIntraDC, modeIntraV, modeIntraH, modeIntraPlane, modeIntraDDL, modeIntraDDR}
