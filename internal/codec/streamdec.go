package codec

import (
	"fmt"
	"time"

	"vrdann/internal/obs"
	"vrdann/internal/video"
)

// FrameOut is one decoded frame delivered by the streaming decoder, in
// decode order.
type FrameOut struct {
	Info   FrameInfo
	Pixels *video.Frame // nil for B-frames in side-info mode
}

// StreamDecoder decodes a bitstream incrementally, one frame per Next
// call, holding only the reference frames it still needs — the
// bounded-memory contract a hardware decoder (and the VR-DANN agent unit)
// operates under. Frames are delivered in decode order; Display ordering is
// available from each frame's Info.
type StreamDecoder struct {
	r       SymbolReader
	mode    DecodeMode
	w, h    int
	cfg     Config
	types   []FrameType
	order   []int
	anchors []int
	pos     int // next index into order

	// refs holds decoded anchor frames still needed by future frames.
	refs    map[int]*video.Frame
	lastUse map[int]int // display index -> last decode position referencing it
	pred    []uint8
	tmp     []uint8

	// obs, when non-nil, receives per-frame decode timings (anchor pixel
	// decode vs B-frame motion-vector extraction) and frame counters.
	obs *obs.Collector
}

// SetObserver attaches a metrics collector; nil (the default) disables
// instrumentation at the cost of one pointer check per frame.
func (d *StreamDecoder) SetObserver(c *obs.Collector) { d.obs = c }

// SetMode switches the decode mode for subsequent frames. Only call it on a
// chunk boundary (immediately before Reset): the mode governs whether
// B-frame pixels are reconstructed, and reference retention is
// mode-independent, so a boundary switch decodes the next chunk exactly as
// a fresh decoder opened in that mode would. The serving layer uses this to
// pay for B-frame pixels only while the QoS ladder can promote B-frames to
// full re-segmentation.
func (d *StreamDecoder) SetMode(m DecodeMode) { d.mode = m }

// streamHeader is the parsed fixed header of one bitstream (or one
// GOP-aligned chunk of a long-lived session).
type streamHeader struct {
	w, h       int
	cfg        Config
	types      []FrameType
	order      []int
	payloadOff int // byte offset of the first frame payload
}

// parseStreamHeader validates and parses the stream header and returns the
// entropy reader positioned at the first frame payload.
func parseStreamHeader(data []byte) (*streamHeader, SymbolReader, error) {
	r := NewBitReader(data)
	magic, err := r.ReadBits(32)
	if err != nil {
		return nil, nil, err
	}
	if magic != streamMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %#x", ErrBitstream, magic)
	}
	wv, err := r.ReadBits(16)
	if err != nil {
		return nil, nil, err
	}
	hv, err := r.ReadBits(16)
	if err != nil {
		return nil, nil, err
	}
	nf, err := r.ReadUE()
	if err != nil {
		return nil, nil, err
	}
	var cfg Config
	for _, f := range []*int{&cfg.BlockSize, &cfg.QP, &cfg.SearchRange, &cfg.SearchInterval, &cfg.MaxBRun, &cfg.IPeriod} {
		v, err := r.ReadUE()
		if err != nil {
			return nil, nil, err
		}
		*f = int(v)
	}
	br, err := r.ReadUE()
	if err != nil {
		return nil, nil, err
	}
	cfg.TargetBRatio = float64(br) / 1000
	ab, err := r.ReadBit()
	if err != nil {
		return nil, nil, err
	}
	cfg.Arithmetic = ab == 1
	db, err := r.ReadBit()
	if err != nil {
		return nil, nil, err
	}
	cfg.Deblock = db == 1
	tbpf, err := r.ReadUE()
	if err != nil {
		return nil, nil, err
	}
	cfg.TargetBPF = int(tbpf)
	hp, err := r.ReadBit()
	if err != nil {
		return nil, nil, err
	}
	cfg.HalfPel = hp == 1
	cfg = cfg.normalized()
	if err := validateHeader(int(wv), int(hv), nf, cfg, len(data)*8-r.Pos()); err != nil {
		return nil, nil, err
	}
	types := make([]FrameType, nf)
	for i := range types {
		t, err := r.ReadBits(2)
		if err != nil {
			return nil, nil, err
		}
		if FrameType(t) > BFrame {
			return nil, nil, fmt.Errorf("%w: bad frame type %d", ErrBitstream, t)
		}
		types[i] = FrameType(t)
	}
	order := DecodeOrder(types, cfg)
	// Match DecodeObserved: a type sequence the decode order cannot cover
	// (B-frames outside any anchor pair) is a corrupt header.
	if len(order) != len(types) {
		return nil, nil, fmt.Errorf("%w: frame type sequence not decodable (%d of %d frames reachable)",
			ErrBitstream, len(order), len(types))
	}
	r.AlignByte()
	var sr SymbolReader = r
	if cfg.Arithmetic {
		sr = NewArithReader(data[r.Pos()/8:])
	}
	return &streamHeader{w: int(wv), h: int(hv), cfg: cfg, types: types, order: order,
		payloadOff: r.Pos() / 8}, sr, nil
}

// StreamInfo is the cheap structural summary of a bitstream: what a serving
// layer needs for admission decisions (frame counts for queue accounting,
// geometry for session compatibility) without decoding any pixels.
type StreamInfo struct {
	W, H   int
	Frames int
	Cfg    Config
	Types  []FrameType // display order
	// HeaderBytes is the byte offset of the first frame payload — the prefix
	// a fault injector must preserve for a corrupted chunk to still pass
	// admission and fail mid-decode instead.
	HeaderBytes int
}

// ProbeStream parses and validates only the stream header. It is the
// admission-control entry point: it rejects malformed chunks up front and
// costs no pixel work.
func ProbeStream(data []byte) (StreamInfo, error) {
	h, _, err := parseStreamHeader(data)
	if err != nil {
		return StreamInfo{}, err
	}
	return StreamInfo{W: h.w, H: h.h, Frames: len(h.types), Cfg: h.cfg, Types: h.types,
		HeaderBytes: h.payloadOff}, nil
}

// NewStreamDecoder parses the stream header and prepares incremental
// decoding.
func NewStreamDecoder(data []byte, mode DecodeMode) (*StreamDecoder, error) {
	h, sr, err := parseStreamHeader(data)
	if err != nil {
		return nil, err
	}
	d := &StreamDecoder{
		r: sr, mode: mode, w: h.w, h: h.h, cfg: h.cfg,
		types: h.types, order: h.order,
		refs: make(map[int]*video.Frame), lastUse: make(map[int]int),
		pred: make([]uint8, h.cfg.BlockSize*h.cfg.BlockSize),
		tmp:  make([]uint8, h.cfg.BlockSize*h.cfg.BlockSize),
	}
	for i, t := range h.types {
		if t.IsAnchor() {
			d.anchors = append(d.anchors, i)
		}
	}
	d.computeLastUse()
	return d, nil
}

// Reset re-opens the decoder over a new bitstream chunk, reusing the
// session's allocations (block-prediction scratch, reference and last-use
// maps) instead of building a fresh decoder. This is the long-lived-session
// path: a stream served as a sequence of independently encoded, GOP-aligned
// chunks decodes each chunk through one decoder with no per-chunk state
// bleeding across the boundary — the chunk sequence decodes exactly as the
// same chunks would through fresh decoders. The new chunk must match the
// session's geometry and block size; the decode mode and any attached
// observer are retained.
func (d *StreamDecoder) Reset(data []byte) error {
	h, sr, err := parseStreamHeader(data)
	if err != nil {
		return err
	}
	if h.w != d.w || h.h != d.h {
		return fmt.Errorf("%w: chunk geometry %dx%d differs from session %dx%d",
			ErrBitstream, h.w, h.h, d.w, d.h)
	}
	if h.cfg.BlockSize != d.cfg.BlockSize {
		return fmt.Errorf("%w: chunk block size %d differs from session %d",
			ErrBitstream, h.cfg.BlockSize, d.cfg.BlockSize)
	}
	d.r, d.cfg, d.types, d.order = sr, h.cfg, h.types, h.order
	d.pos = 0
	d.anchors = d.anchors[:0]
	for i, t := range h.types {
		if t.IsAnchor() {
			d.anchors = append(d.anchors, i)
		}
	}
	clear(d.refs)
	clear(d.lastUse)
	d.computeLastUse()
	return nil
}

// computeLastUse records, per anchor, the last decode position at which any
// frame may reference it, so decoded anchors can be evicted eagerly.
func (d *StreamDecoder) computeLastUse() {
	for pos, disp := range d.order {
		var refs []int
		switch d.types[disp] {
		case PFrame:
			refs = pastRefs(d.anchors, disp, d.cfg)
		case BFrame:
			refs = candidateRefs(d.anchors, disp, d.cfg)
		}
		for _, rf := range refs {
			d.lastUse[rf] = pos
		}
		if d.types[disp].IsAnchor() {
			if _, ok := d.lastUse[disp]; !ok {
				d.lastUse[disp] = pos
			}
		}
	}
}

// Config returns the stream's encoder configuration.
func (d *StreamDecoder) Config() Config { return d.cfg }

// Geometry returns the frame dimensions.
func (d *StreamDecoder) Geometry() (w, h int) { return d.w, d.h }

// Types returns the display-order frame types.
func (d *StreamDecoder) Types() []FrameType { return d.types }

// Remaining reports how many frames have not been delivered yet.
func (d *StreamDecoder) Remaining() int { return len(d.order) - d.pos }

// BufferedRefs reports how many reference frames are currently held — the
// streaming decoder's working-set size.
func (d *StreamDecoder) BufferedRefs() int { return len(d.refs) }

// Next decodes and returns the next frame in decode order. It returns an
// error wrapping ErrBitstream on malformed input and (nil, nil) when the
// stream is exhausted.
func (d *StreamDecoder) Next() (*FrameOut, error) {
	if d.pos >= len(d.order) {
		return nil, nil
	}
	disp := d.order[d.pos]
	t0 := d.obs.Clock()
	startBits := d.r.Tell()
	qpDelta, err := d.r.ReadSE()
	if err != nil {
		return nil, err
	}
	qp := d.cfg.QP + int(qpDelta)
	if qp < 1 || qp > 51 {
		return nil, fmt.Errorf("%w: frame QP %d out of range", ErrBitstream, qp)
	}
	qstep := QStep(qp)
	info := FrameInfo{Display: disp, DecodeAt: d.pos, Type: d.types[disp]}
	var refs []int
	switch info.Type {
	case PFrame:
		refs = pastRefs(d.anchors, disp, d.cfg)
	case BFrame:
		refs = candidateRefs(d.anchors, disp, d.cfg)
	}
	skipPixels := info.Type == BFrame && d.mode == DecodeSideInfo
	var rec *video.Frame
	if !skipPixels {
		rec = video.NewFrame(d.w, d.h)
	}
	bs := d.cfg.BlockSize
	info.BlockEnergy = make([]int32, 0, ((d.h+bs-1)/bs)*((d.w+bs-1)/bs))
	for by := 0; by < d.h; by += bs {
		for bx := 0; bx < d.w; bx += bs {
			info.Blocks++
			intra := false
			m, err := d.r.ReadUE()
			if err != nil {
				return nil, err
			}
			mv := MotionVector{DstX: bx, DstY: by}
			haveMV := false
			switch int(m) {
			case modeIntraDC, modeIntraV, modeIntraH, modeIntraPlane, modeIntraDDL, modeIntraDDR:
				info.IntraBlk++
				intra = true
				if !skipPixels {
					intraPredict(rec, bx, by, bs, int(m), d.pred)
				}
			case modeInter:
				c, err := readMV(d.r, refs, bx, by, d.cfg.HalfPel)
				if err != nil {
					return nil, err
				}
				mv.Ref, mv.SrcX, mv.SrcY = refs[c.refIdx], c.srcX, c.srcY
				mv.HalfX, mv.HalfY = c.halfX, c.halfY
				haveMV = true
				if !skipPixels {
					ref, ok := d.refs[mv.Ref]
					if !ok {
						return nil, fmt.Errorf("%w: reference %d evicted or missing", ErrBitstream, mv.Ref)
					}
					copyRefBlockHalf(ref, c.srcX, c.srcY, c.halfX, c.halfY, bs, d.pred)
				}
			case modeInterBi:
				c1, err := readMV(d.r, refs, bx, by, d.cfg.HalfPel)
				if err != nil {
					return nil, err
				}
				c2, err := readMV(d.r, refs, bx, by, d.cfg.HalfPel)
				if err != nil {
					return nil, err
				}
				mv.Ref, mv.SrcX, mv.SrcY = refs[c1.refIdx], c1.srcX, c1.srcY
				mv.HalfX, mv.HalfY = c1.halfX, c1.halfY
				mv.BiRef = true
				mv.Ref2, mv.SrcX2, mv.SrcY2 = refs[c2.refIdx], c2.srcX, c2.srcY
				mv.HalfX2, mv.HalfY2 = c2.halfX, c2.halfY
				haveMV = true
				if !skipPixels {
					r1, ok1 := d.refs[mv.Ref]
					r2, ok2 := d.refs[mv.Ref2]
					if !ok1 || !ok2 {
						return nil, fmt.Errorf("%w: bi-reference evicted or missing", ErrBitstream)
					}
					copyRefBlockHalf(r1, c1.srcX, c1.srcY, c1.halfX, c1.halfY, bs, d.pred)
					copyRefBlockHalf(r2, c2.srcX, c2.srcY, c2.halfX, c2.halfY, bs, d.tmp)
					for i := range d.pred {
						d.pred[i] = uint8((int(d.pred[i]) + int(d.tmp[i]) + 1) / 2)
					}
				}
			default:
				return nil, fmt.Errorf("%w: bad block mode %d", ErrBitstream, m)
			}
			levels, err := readResidual(d.r, bs)
			if err != nil {
				return nil, err
			}
			info.BlockEnergy = append(info.BlockEnergy, blockEnergy(levels, intra))
			if !skipPixels {
				applyResidual(rec, bx, by, bs, qstep, d.pred, levels)
			}
			if haveMV {
				info.MVs = append(info.MVs, mv)
			}
		}
	}
	info.Bits = d.r.Tell() - startBits
	if rec != nil && d.cfg.Deblock {
		deblockFrame(rec, bs, qp)
	}
	if info.Type.IsAnchor() && rec != nil {
		d.refs[disp] = rec
	}
	// Evict anchors no future frame references.
	for ref, last := range d.lastUse {
		if last <= d.pos {
			delete(d.refs, ref)
			delete(d.lastUse, ref)
		}
	}
	d.pos++
	if d.obs != nil {
		observeFrame(d.obs, info, t0)
	}
	return &FrameOut{Info: info, Pixels: rec}, nil
}

// observeFrame records one decoded frame's timing and counters: anchors
// under decode/anchor (pixel reconstruction), B-frames under decode/b-mv
// (the motion-vector side channel VR-DANN taps).
func observeFrame(c *obs.Collector, info FrameInfo, t0 time.Duration) {
	stage := obs.StageDecodeAnchor
	if info.Type == BFrame {
		stage = obs.StageDecodeB
		c.Count(obs.CounterBFrames, 1)
	} else {
		c.Count(obs.CounterAnchors, 1)
	}
	c.Span(stage, info.Display, byte(info.Type), t0)
	c.Count(obs.CounterFrames, 1)
	c.Count(obs.CounterMVs, int64(len(info.MVs)))
}
