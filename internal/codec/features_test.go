package codec

import (
	"math"
	"testing"

	"vrdann/internal/video"
)

func meanPSNR(t *testing.T, v *video.Video, cfg Config) float64 {
	t.Helper()
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for d := range res.Frames {
		s += psnr(v.Frames[d], res.Frames[d])
	}
	return s / float64(len(res.Frames))
}

func TestDeblockImprovesQualityAtCoarseQP(t *testing.T) {
	v := testVideo(96, 64, 8, 1.2)
	base := DefaultConfig()
	base.QP = 34 // coarse quantization: visible blocking
	with := base
	with.Deblock = true
	p0 := meanPSNR(t, v, base)
	p1 := meanPSNR(t, v, with)
	t.Logf("QP34 PSNR: plain %.2f dB, deblocked %.2f dB", p0, p1)
	if p1 < p0-0.1 {
		t.Fatalf("deblocking should not hurt at coarse QP: %.2f -> %.2f", p0, p1)
	}
}

func TestDeblockEncoderDecoderConsistent(t *testing.T) {
	// The coding loop must stay closed: a P-frame predicted from a
	// deblocked reference must decode to the encoder's exact reconstruction
	// — verified by round-tripping twice (any drift would compound).
	v := testVideo(64, 48, 12, 1.5)
	cfg := DefaultConfig()
	cfg.Deblock = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.Frames {
		for i := range a.Frames[d].Pix {
			if a.Frames[d].Pix[i] != b.Frames[d].Pix[i] {
				t.Fatalf("frame %d nondeterministic decode", d)
			}
		}
	}
	if !a.Cfg.Deblock {
		t.Fatal("deblock flag lost")
	}
	if p := psnr(v.Frames[6], a.Frames[6]); p < 30 {
		t.Fatalf("deblocked stream PSNR %.1f too low", p)
	}
}

func TestDeblockPreservesRealEdges(t *testing.T) {
	// A frame with a strong edge away from block boundaries: the filter
	// must not touch strong discontinuities even on block boundaries.
	f := video.NewFrame(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x >= 16 {
				f.Set(x, y, 220)
			} else {
				f.Set(x, y, 30)
			}
		}
	}
	orig := f.Clone()
	deblockFrame(f, 8, 22)
	// The 30/220 step at x=16 sits on a block edge but exceeds alpha: it
	// must remain intact.
	for y := 0; y < 32; y++ {
		if f.At(15, y) != orig.At(15, y) || f.At(16, y) != orig.At(16, y) {
			t.Fatalf("strong edge smoothed at y=%d", y)
		}
	}
}

func TestDeblockSmoothsSmallSteps(t *testing.T) {
	f := video.NewFrame(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if x >= 8 {
				f.Set(x, y, 105)
			} else {
				f.Set(x, y, 100)
			}
		}
	}
	deblockFrame(f, 8, 22)
	if f.At(7, 4) == 100 && f.At(8, 4) == 105 {
		t.Fatal("small blocking step not smoothed")
	}
}

func TestRateControlHitsTarget(t *testing.T) {
	v := testVideo(96, 64, 24, 1.5)
	cfg := DefaultConfig()
	// First measure the constant-QP bits per frame, then target 60% of it.
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseBPF := len(st.Data) * 8 / v.Len()
	cfg.TargetBPF = baseBPF * 6 / 10
	st2, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotBPF := len(st2.Data) * 8 / v.Len()
	t.Logf("constant-QP %d bpf, target %d, rate-controlled %d", baseBPF, cfg.TargetBPF, gotBPF)
	if gotBPF >= baseBPF {
		t.Fatal("rate control did not reduce the bitrate")
	}
	if math.Abs(float64(gotBPF)-float64(cfg.TargetBPF)) > 0.5*float64(cfg.TargetBPF) {
		t.Fatalf("rate-controlled %d bpf too far from target %d", gotBPF, cfg.TargetBPF)
	}
	// The stream must still decode cleanly with per-frame QP deltas.
	res, err := Decode(st2.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(v.Frames[10], res.Frames[10]); p < 25 {
		t.Fatalf("rate-controlled PSNR %.1f too low", p)
	}
}

func TestRateControlledStreamDecoder(t *testing.T) {
	v := testVideo(64, 48, 12, 1)
	cfg := DefaultConfig()
	cfg.TargetBPF = 2000
	cfg.Deblock = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		d := out.Info.Display
		for i := range out.Pixels.Pix {
			if out.Pixels.Pix[i] != batch.Frames[d].Pix[i] {
				t.Fatalf("frame %d: streaming decode differs under rate control + deblock", d)
			}
		}
	}
}

func TestAllFeaturesTogether(t *testing.T) {
	// Arithmetic + deblocking + rate control simultaneously.
	v := testVideo(64, 48, 12, 1.5)
	cfg := DefaultConfig()
	cfg.Arithmetic = true
	cfg.Deblock = true
	cfg.TargetBPF = 3000
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cfg.Arithmetic || !res.Cfg.Deblock || res.Cfg.TargetBPF != 3000 {
		t.Fatalf("feature flags lost: %+v", res.Cfg)
	}
	for d, f := range res.Frames {
		if f == nil {
			t.Fatalf("frame %d missing", d)
		}
	}
	if p := psnr(v.Frames[6], res.Frames[6]); p < 24 {
		t.Fatalf("combined-features PSNR %.1f too low", p)
	}
}

func TestDiagonalIntraModesPredictCorrectly(t *testing.T) {
	// Build a reconstruction context with a diagonal gradient above the
	// block and check the DDL/DDR modes propagate it as specified.
	rec := video.NewFrame(24, 24)
	for x := 0; x < 24; x++ {
		rec.Set(x, 7, uint8(10*x)) // top row above block at (8,8)
	}
	for y := 0; y < 24; y++ {
		rec.Set(7, y, uint8(5*y)) // left column
	}
	pred := make([]uint8, 64)
	intraPredict(rec, 8, 8, 8, modeIntraDDR, pred)
	// Pixel (1,0) of the block (x>y) continues the top row at bx+x-y-1 = 8.
	if pred[1] != rec.At(8, 7) {
		t.Fatalf("DDR pred[0][1] = %d, want %d", pred[1], rec.At(8, 7))
	}
	// Pixel (0,1) (y>x) continues the left column at by+y-x-1 = 8.
	if pred[8] != rec.At(7, 8) {
		t.Fatalf("DDR pred[1][0] = %d, want %d", pred[8], rec.At(7, 8))
	}
	// Diagonal uses the corner.
	if pred[0] != rec.At(7, 7) {
		t.Fatalf("DDR pred[0][0] = %d, want corner %d", pred[0], rec.At(7, 7))
	}
	intraPredict(rec, 8, 8, 8, modeIntraDDL, pred)
	// Pixel (0,0) samples the top row at x+y+1 = 9.
	if pred[0] != rec.At(9, 7) {
		t.Fatalf("DDL pred[0][0] = %d, want %d", pred[0], rec.At(9, 7))
	}
}

func TestDiagonalModesSelectedOnDiagonalContent(t *testing.T) {
	// A frame full of diagonal stripes: DDL/DDR should win some blocks and
	// the stream must round-trip.
	v := &video.Video{Name: "diag"}
	f := video.NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			f.Set(x, y, uint8(((x+y)%16)*16))
		}
	}
	v.Frames = append(v.Frames, f)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(f, res.Frames[0]); p < 30 {
		t.Fatalf("diagonal content PSNR %.1f too low", p)
	}
}
