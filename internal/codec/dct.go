package codec

import (
	"math"
	"sync"
)

// dctBasis caches the orthonormal DCT-II basis matrix for each block size.
var dctBasis sync.Map // int -> [][]float64

func basis(n int) [][]float64 {
	if b, ok := dctBasis.Load(n); ok {
		return b.([][]float64)
	}
	m := make([][]float64, n)
	for k := 0; k < n; k++ {
		m[k] = make([]float64, n)
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		for i := 0; i < n; i++ {
			m[k][i] = scale * math.Cos(math.Pi*(float64(i)+0.5)*float64(k)/float64(n))
		}
	}
	dctBasis.Store(n, m)
	return m
}

// ForwardDCT applies the separable 2-D orthonormal DCT-II to an n×n block
// (row-major float64), returning the coefficient block.
func ForwardDCT(block []float64, n int) []float64 {
	b := basis(n)
	tmp := make([]float64, n*n)
	// Rows.
	for y := 0; y < n; y++ {
		for k := 0; k < n; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += b[k][i] * block[y*n+i]
			}
			tmp[y*n+k] = s
		}
	}
	out := make([]float64, n*n)
	// Columns.
	for x := 0; x < n; x++ {
		for k := 0; k < n; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += b[k][i] * tmp[i*n+x]
			}
			out[k*n+x] = s
		}
	}
	return out
}

// InverseDCT inverts ForwardDCT.
func InverseDCT(coef []float64, n int) []float64 {
	b := basis(n)
	tmp := make([]float64, n*n)
	// Columns (transpose multiply).
	for x := 0; x < n; x++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k][i] * coef[k*n+x]
			}
			tmp[i*n+x] = s
		}
	}
	out := make([]float64, n*n)
	// Rows.
	for y := 0; y < n; y++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k][i] * tmp[y*n+k]
			}
			out[y*n+i] = s
		}
	}
	return out
}

// QStep converts a quantization parameter to a linear quantizer step,
// roughly doubling every 6 QP like H.264/H.265.
func QStep(qp int) float64 {
	return 0.625 * math.Pow(2, float64(qp)/6)
}

// Quantize rounds coefficients to integer levels with the given step.
func Quantize(coef []float64, step float64) []int32 {
	out := make([]int32, len(coef))
	for i, c := range coef {
		out[i] = int32(math.Round(c / step))
	}
	return out
}

// Dequantize reconstructs coefficients from levels.
func Dequantize(levels []int32, step float64) []float64 {
	out := make([]float64, len(levels))
	for i, l := range levels {
		out[i] = float64(l) * step
	}
	return out
}

// zigzagOrder caches the zigzag scan permutation for each block size.
var zigzagOrder sync.Map // int -> []int

// Zigzag returns the zigzag scan order for an n×n block: indices sorted by
// anti-diagonal, alternating direction, so low-frequency coefficients come
// first and trailing zeros compress well.
func Zigzag(n int) []int {
	if z, ok := zigzagOrder.Load(n); ok {
		return z.([]int)
	}
	order := make([]int, 0, n*n)
	for d := 0; d < 2*n-1; d++ {
		if d%2 == 0 { // up-right
			y := d
			if y >= n {
				y = n - 1
			}
			for ; y >= 0 && d-y < n; y-- {
				order = append(order, y*n+(d-y))
			}
		} else { // down-left
			x := d
			if x >= n {
				x = n - 1
			}
			for ; x >= 0 && d-x < n; x-- {
				order = append(order, (d-x)*n+x)
			}
		}
	}
	zigzagOrder.Store(n, order)
	return order
}

// writeResidual entropy-codes quantized levels as zigzag (run, level) pairs
// terminated by an end-of-block marker.
func writeResidual(w SymbolWriter, levels []int32, n int) {
	order := Zigzag(n)
	run := uint64(0)
	for _, idx := range order {
		l := levels[idx]
		if l == 0 {
			run++
			continue
		}
		w.WriteBit(1) // coefficient present
		w.WriteUE(run)
		w.WriteSE(int64(l))
		run = 0
	}
	w.WriteBit(0) // end of block
}

// readResidual decodes levels written by writeResidual.
// blockEnergy summarizes one block's residual for FrameInfo.BlockEnergy:
// the sum of absolute quantized levels, or the -1 intra sentinel (an intra
// block's residual corrects intra prediction, not motion compensation, so
// the residual-skip heuristic must always treat it as dirty).
func blockEnergy(levels []int32, intra bool) int32 {
	if intra {
		return -1
	}
	var e int32
	for _, l := range levels {
		if l < 0 {
			l = -l
		}
		e += l
	}
	return e
}

func readResidual(r SymbolReader, n int) ([]int32, error) {
	order := Zigzag(n)
	levels := make([]int32, n*n)
	pos := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b == 0 {
			return levels, nil
		}
		run, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		l, err := r.ReadSE()
		if err != nil {
			return nil, err
		}
		pos += int(run)
		if pos >= len(order) {
			return nil, ErrBitstream
		}
		levels[order[pos]] = int32(l)
		pos++
	}
}
