package codec

import "testing"

// TestChunkDigest pins the properties the content cache relies on:
// determinism, sensitivity to any single-bit change, and distinct values
// for a prefix (truncation must not alias the full chunk).
func TestChunkDigest(t *testing.T) {
	v := testVideo(64, 48, 12, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d1 := ChunkDigest(st.Data)
	if d1 != ChunkDigest(append([]byte(nil), st.Data...)) {
		t.Fatal("digest not deterministic over equal bytes")
	}
	flipped := append([]byte(nil), st.Data...)
	flipped[len(flipped)/2] ^= 0x01
	if ChunkDigest(flipped) == d1 {
		t.Fatal("single-bit flip did not change the digest")
	}
	if ChunkDigest(st.Data[:len(st.Data)-1]) == d1 {
		t.Fatal("truncated chunk aliases the full chunk")
	}
	if ChunkDigest(nil) == d1 {
		t.Fatal("empty input aliases a real chunk")
	}
}
