package codec

import "vrdann/internal/video"

// Half-pel motion compensation (enabled by Config.HalfPel): after integer
// motion search, the encoder probes the eight surrounding half-pixel
// positions using bilinearly interpolated reference samples, like
// H.264/H.265's fractional-pel stage. The motion vector carries two extra
// half-offset bits; pixel prediction interpolates, while the recognition
// side keeps using the integer part (segmentation reconstruction operates
// at macro-block granularity, so sub-pixel precision only matters for
// pixel fidelity).

// halfPelSample returns the reference value at integer position (x, y)
// shifted by (hx, hy) half pixels (each 0 or 1), using bilinear
// interpolation with edge clamping.
func halfPelSample(ref *video.Frame, x, y, hx, hy int) uint8 {
	x0 := clampInt(x, 0, ref.W-1)
	y0 := clampInt(y, 0, ref.H-1)
	if hx == 0 && hy == 0 {
		return ref.Pix[y0*ref.W+x0]
	}
	x1 := clampInt(x+hx, 0, ref.W-1)
	y1 := clampInt(y+hy, 0, ref.H-1)
	a := int(ref.Pix[y0*ref.W+x0])
	switch {
	case hx == 1 && hy == 0:
		return uint8((a + int(ref.Pix[y0*ref.W+x1]) + 1) / 2)
	case hx == 0 && hy == 1:
		return uint8((a + int(ref.Pix[y1*ref.W+x0]) + 1) / 2)
	default: // diagonal half position: 4-tap average
		b := int(ref.Pix[y0*ref.W+x1])
		c := int(ref.Pix[y1*ref.W+x0])
		d := int(ref.Pix[y1*ref.W+x1])
		return uint8((a + b + c + d + 2) / 4)
	}
}

// copyRefBlockHalf extracts a bs×bs block at integer position (sx, sy) plus
// a (hx, hy) half-pel offset.
func copyRefBlockHalf(ref *video.Frame, sx, sy, hx, hy, bs int, dst []uint8) {
	if hx == 0 && hy == 0 {
		copyRefBlock(ref, sx, sy, bs, dst)
		return
	}
	for y := 0; y < bs; y++ {
		for x := 0; x < bs; x++ {
			dst[y*bs+x] = halfPelSample(ref, sx+x, sy+y, hx, hy)
		}
	}
}

// halfSAE computes the SAE of a half-pel-shifted candidate.
func halfSAE(src, ref *video.Frame, bx, by, sx, sy, hx, hy, bs int, bound int64) int64 {
	var s int64
	for y := 0; y < bs; y++ {
		srow := (by + y) * src.W
		for x := 0; x < bs; x++ {
			d := int64(src.Pix[srow+bx+x]) - int64(halfPelSample(ref, sx+x, sy+y, hx, hy))
			if d < 0 {
				d = -d
			}
			s += d
		}
		if s > bound {
			return s
		}
	}
	return s
}

// refineHalfPel probes the eight half-pel neighbors of an integer-pel
// winner and updates the candidate's half offsets when one improves SAE.
// Half offsets are encoded as {0, 1} per axis relative to (srcX, srcY);
// a negative half step is represented by decrementing the integer part.
func refineHalfPel(src, ref *video.Frame, bx, by, bs int, c motionCandidate) motionCandidate {
	best := c
	for _, off := range [8][4]int{
		// {intDX, intDY, hx, hy} relative to the integer winner.
		{0, 0, 1, 0},  // +½ x
		{-1, 0, 1, 0}, // −½ x
		{0, 0, 0, 1},  // +½ y
		{0, -1, 0, 1}, // −½ y
		{0, 0, 1, 1},
		{-1, -1, 1, 1},
		{-1, 0, 1, 1},
		{0, -1, 1, 1},
	} {
		sx, sy := c.srcX+off[0], c.srcY+off[1]
		s := halfSAE(src, ref, bx, by, sx, sy, off[2], off[3], bs, best.sae)
		if s < best.sae {
			best = motionCandidate{refIdx: c.refIdx, srcX: sx, srcY: sy, sae: s}
			best.halfX, best.halfY = off[2], off[3]
		}
	}
	return best
}
