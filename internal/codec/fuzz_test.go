package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"vrdann/internal/fault"
)

// fuzzInputCap keeps the fuzzer exploring bitstream structure instead of
// burning time decoding megabyte-scale noise.
const fuzzInputCap = 1 << 16

// skipExpensive skips inputs whose (possibly corrupt) header declares far
// more pixel-decoding work than any test stream: they are within the
// decoder's sanity limits but make individual fuzz execs take seconds.
func skipExpensive(t *testing.T, data []byte) {
	if len(data) > fuzzInputCap {
		t.Skip("input too large")
	}
	dec, err := NewStreamDecoder(data, DecodeSideInfo)
	if err != nil {
		return // header rejected: cheap either way
	}
	w, h := dec.Geometry()
	if w*h > 1<<20 || w*h*len(dec.Types()) > 1<<24 {
		t.Skip("declared geometry too expensive")
	}
}

// addFuzzSeeds registers valid encoded streams under a few configurations,
// plus corrupted variants from the shared fault corruptors — one seed per
// corruption shape (payload bit flips, truncation, garbled header, mid-GOP
// splice), so the coverage-guided fuzzer starts from exactly the fault
// classes the serving layer's chaos harness injects.
func addFuzzSeeds(f *testing.F) {
	f.Helper()
	v := testVideo(64, 48, 8, 1.5)
	configs := []Config{
		DefaultConfig(),
		{BlockSize: 8, QP: 20, SearchRange: 6, MaxBRun: 3, TargetBRatio: 0.6, IPeriod: 4},
	}
	for ci, cfg := range configs {
		st, err := Encode(v, cfg)
		if err != nil {
			f.Fatal(err)
		}
		info, err := ProbeStream(st.Data)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(st.Data)
		f.Add(st.Data[:len(st.Data)/2])
		for ki, k := range fault.AllKinds {
			rng := rand.New(rand.NewSource(int64(99 + ci*len(fault.AllKinds) + ki)))
			f.Add(fault.Apply(k, rng, st.Data, info.HeaderBytes))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x56, 0x52})
}

// FuzzDecode feeds arbitrary bytes to the batch decoder. The decoder must
// fail cleanly or succeed with internally consistent output: per-frame
// geometry matching the header, a decode order that is a permutation of the
// display indices, and every motion vector referencing an already-decoded
// frame.
func FuzzDecode(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		skipExpensive(t, data)
		res, err := Decode(data, DecodeFull)
		if err != nil {
			return
		}
		if len(res.Order) != len(res.Types) || len(res.Infos) != len(res.Types) || len(res.Frames) != len(res.Types) {
			t.Fatalf("inconsistent lengths: order=%d infos=%d frames=%d types=%d",
				len(res.Order), len(res.Infos), len(res.Frames), len(res.Types))
		}
		decodedAt := make(map[int]int, len(res.Order))
		for pos, d := range res.Order {
			if d < 0 || d >= len(res.Types) {
				t.Fatalf("decode order index %d out of range", d)
			}
			if _, dup := decodedAt[d]; dup {
				t.Fatalf("frame %d decoded twice", d)
			}
			decodedAt[d] = pos
		}
		for d, fr := range res.Frames {
			if fr != nil && (fr.W != res.W || fr.H != res.H) {
				t.Fatalf("frame %d geometry %dx%d, header %dx%d", d, fr.W, fr.H, res.W, res.H)
			}
		}
		for d, info := range res.Infos {
			for _, mv := range info.MVs {
				if at, ok := decodedAt[mv.Ref]; !ok || at >= decodedAt[d] {
					t.Fatalf("frame %d references %d which is not decoded earlier", d, mv.Ref)
				}
				if mv.BiRef {
					if at, ok := decodedAt[mv.Ref2]; !ok || at >= decodedAt[d] {
						t.Fatalf("frame %d bi-references %d which is not decoded earlier", d, mv.Ref2)
					}
				}
			}
		}
	})
}

// FuzzStreamDecoder drives the incremental decoder over arbitrary bytes and
// differentially checks it against the batch decoder: both must agree on
// whether the stream is valid, and on a fully valid stream the incremental
// path must yield the same frames in the same order.
func FuzzStreamDecoder(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		skipExpensive(t, data)
		batch, batchErr := Decode(data, DecodeSideInfo)
		dec, err := NewStreamDecoder(data, DecodeSideInfo)
		if err != nil {
			if batchErr == nil {
				t.Fatalf("stream decoder rejects header the batch decoder accepts: %v", err)
			}
			return
		}
		n := 0
		for {
			out, derr := dec.Next()
			if derr != nil {
				if batchErr == nil {
					t.Fatalf("frame %d: stream decoder fails (%v) where batch decoder succeeds", n, derr)
				}
				return
			}
			if out == nil {
				break
			}
			if batchErr == nil {
				d := batch.Order[n]
				if out.Info.Display != d {
					t.Fatalf("position %d: stream decodes frame %d, batch decodes %d", n, out.Info.Display, d)
				}
				if out.Info.Type != batch.Infos[d].Type || len(out.Info.MVs) != len(batch.Infos[d].MVs) {
					t.Fatalf("frame %d: side info diverges between decoders", d)
				}
				if out.Pixels != nil && batch.Frames[d] != nil && !bytes.Equal(out.Pixels.Pix, batch.Frames[d].Pix) {
					t.Fatalf("frame %d: pixels diverge between decoders", d)
				}
			}
			n++
		}
		if batchErr == nil && n != len(batch.Order) {
			t.Fatalf("stream decoder produced %d frames, batch %d", n, len(batch.Order))
		}
	})
}
