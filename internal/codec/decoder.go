package codec

import (
	"fmt"

	"vrdann/internal/obs"
	"vrdann/internal/video"
)

// DecodeMode selects how much work the decoder performs.
type DecodeMode int

// Decode modes.
const (
	// DecodeFull reconstructs the pixels of every frame (what a conventional
	// recognition pipeline needs).
	DecodeFull DecodeMode = iota
	// DecodeSideInfo reconstructs only I/P-frames and extracts motion-vector
	// metadata for B-frames — the decoder contract VR-DANN relies on.
	DecodeSideInfo
)

// DecodeResult is the decoder output.
type DecodeResult struct {
	W, H   int
	Cfg    Config
	Types  []FrameType    // display order
	Order  []int          // decode order (display indices)
	Frames []*video.Frame // display order; nil for B-frames in side-info mode
	Infos  []FrameInfo    // display order
}

// BRatio returns the fraction of B-frames (Fig 3a).
func (d *DecodeResult) BRatio() float64 {
	if len(d.Types) == 0 {
		return 0
	}
	b := 0
	for _, t := range d.Types {
		if t == BFrame {
			b++
		}
	}
	return float64(b) / float64(len(d.Types))
}

// RefFrameCounts returns, for every B-frame, the number of distinct
// reference frames its macro-blocks use (Fig 3b).
func (d *DecodeResult) RefFrameCounts() []int {
	var out []int
	for _, info := range d.Infos {
		if info.Type != BFrame {
			continue
		}
		refs := map[int]bool{}
		for _, mv := range info.MVs {
			refs[mv.Ref] = true
			if mv.BiRef {
				refs[mv.Ref2] = true
			}
		}
		out = append(out, len(refs))
	}
	return out
}

// Decode parses and decodes a bitstream produced by Encode.
func Decode(data []byte, mode DecodeMode) (*DecodeResult, error) {
	return DecodeObserved(data, mode, nil)
}

// Header sanity limits. The values are far beyond anything the encoder
// produces; they exist so that a corrupt or hostile header cannot turn the
// decoder into a decompression bomb (gigantic frame allocations, bs²-sized
// residual blocks, frame counts that cannot fit in the payload).
const (
	maxBlockSize   = 64
	maxFramePixels = 1 << 26 // 64M pixels ≈ 8K video
)

// validateHeader rejects parsed header values the decoder cannot execute
// safely. remainingBits is the payload size left after the fixed header;
// each frame type costs two bits, which upper-bounds a plausible nf.
func validateHeader(w, h int, nf uint64, cfg Config, remainingBits int) error {
	if cfg.BlockSize < 2 || cfg.BlockSize > maxBlockSize {
		return fmt.Errorf("%w: block size %d out of range", ErrBitstream, cfg.BlockSize)
	}
	if w == 0 || h == 0 || w%cfg.BlockSize != 0 || h%cfg.BlockSize != 0 {
		return fmt.Errorf("%w: frame %dx%d not a multiple of block size %d",
			ErrBitstream, w, h, cfg.BlockSize)
	}
	if w*h > maxFramePixels {
		return fmt.Errorf("%w: frame %dx%d exceeds the %d-pixel limit",
			ErrBitstream, w, h, maxFramePixels)
	}
	if remainingBits < 0 || nf > uint64(remainingBits)/2 {
		return fmt.Errorf("%w: frame count %d exceeds payload", ErrBitstream, nf)
	}
	return nil
}

// DecodeObserved is Decode with optional per-frame instrumentation: when c
// is non-nil, each frame's decode time lands in the decode/anchor or
// decode/b-mv stage and the frame/MV counters advance. A nil collector is
// exactly Decode.
func DecodeObserved(data []byte, mode DecodeMode, c *obs.Collector) (*DecodeResult, error) {
	r := NewBitReader(data)
	magic, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	if magic != streamMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBitstream, magic)
	}
	wv, err := r.ReadBits(16)
	if err != nil {
		return nil, err
	}
	hv, err := r.ReadBits(16)
	if err != nil {
		return nil, err
	}
	nf, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	var cfg Config
	fields := []*int{&cfg.BlockSize, &cfg.QP, &cfg.SearchRange, &cfg.SearchInterval, &cfg.MaxBRun, &cfg.IPeriod}
	for _, f := range fields {
		v, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	br, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	cfg.TargetBRatio = float64(br) / 1000
	ab, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	cfg.Arithmetic = ab == 1
	db, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	cfg.Deblock = db == 1
	tbpf, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	cfg.TargetBPF = int(tbpf)
	hp, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	cfg.HalfPel = hp == 1
	cfg = cfg.normalized()
	if err := validateHeader(int(wv), int(hv), nf, cfg, len(data)*8-r.Pos()); err != nil {
		return nil, err
	}

	types := make([]FrameType, nf)
	for i := range types {
		t, err := r.ReadBits(2)
		if err != nil {
			return nil, err
		}
		if FrameType(t) > BFrame {
			return nil, fmt.Errorf("%w: bad frame type %d", ErrBitstream, t)
		}
		types[i] = FrameType(t)
	}
	order := DecodeOrder(types, cfg)
	// A corrupt header can carry a type sequence DecodeOrder cannot cover
	// (B-frames before the first anchor or after the last); such frames
	// would silently stay undecoded, so reject the stream instead.
	if len(order) != len(types) {
		return nil, fmt.Errorf("%w: frame type sequence not decodable (%d of %d frames reachable)",
			ErrBitstream, len(order), len(types))
	}
	var anchors []int
	for i, t := range types {
		if t.IsAnchor() {
			anchors = append(anchors, i)
		}
	}
	r.AlignByte()
	var sr SymbolReader = r
	if cfg.Arithmetic {
		sr = NewArithReader(data[r.Pos()/8:])
	}

	width, height := int(wv), int(hv)
	res := &DecodeResult{
		W: width, H: height, Cfg: cfg, Types: types, Order: order,
		Frames: make([]*video.Frame, nf),
		Infos:  make([]FrameInfo, nf),
	}
	bs := cfg.BlockSize
	pred := make([]uint8, bs*bs)
	tmp := make([]uint8, bs*bs)

	for pos, d := range order {
		t0 := c.Clock()
		startBits := sr.Tell()
		qpDelta, err := sr.ReadSE()
		if err != nil {
			return nil, err
		}
		qp := cfg.QP + int(qpDelta)
		if qp < 1 || qp > 51 {
			return nil, fmt.Errorf("%w: frame QP %d out of range", ErrBitstream, qp)
		}
		qstep := QStep(qp)
		info := &res.Infos[d]
		info.Display = d
		info.DecodeAt = pos
		info.Type = types[d]
		var refs []int
		switch types[d] {
		case PFrame:
			refs = pastRefs(anchors, d, cfg)
		case BFrame:
			refs = candidateRefs(anchors, d, cfg)
		}
		isB := types[d] == BFrame
		skipPixels := isB && mode == DecodeSideInfo
		var rec *video.Frame
		if !skipPixels {
			rec = video.NewFrame(width, height)
		}
		info.BlockEnergy = make([]int32, 0, ((height+bs-1)/bs)*((width+bs-1)/bs))
		for by := 0; by < height; by += bs {
			for bx := 0; bx < width; bx += bs {
				info.Blocks++
				intra := false
				m, err := sr.ReadUE()
				if err != nil {
					return nil, err
				}
				mv := MotionVector{DstX: bx, DstY: by}
				haveMV := false
				switch int(m) {
				case modeIntraDC, modeIntraV, modeIntraH, modeIntraPlane, modeIntraDDL, modeIntraDDR:
					info.IntraBlk++
					intra = true
					if !skipPixels {
						intraPredict(rec, bx, by, bs, int(m), pred)
					}
				case modeInter:
					c, err := readMV(sr, refs, bx, by, cfg.HalfPel)
					if err != nil {
						return nil, err
					}
					mv.Ref, mv.SrcX, mv.SrcY = refs[c.refIdx], c.srcX, c.srcY
					mv.HalfX, mv.HalfY = c.halfX, c.halfY
					haveMV = true
					if !skipPixels {
						copyRefBlockHalf(res.Frames[mv.Ref], c.srcX, c.srcY, c.halfX, c.halfY, bs, pred)
					}
				case modeInterBi:
					c1, err := readMV(sr, refs, bx, by, cfg.HalfPel)
					if err != nil {
						return nil, err
					}
					c2, err := readMV(sr, refs, bx, by, cfg.HalfPel)
					if err != nil {
						return nil, err
					}
					mv.Ref, mv.SrcX, mv.SrcY = refs[c1.refIdx], c1.srcX, c1.srcY
					mv.HalfX, mv.HalfY = c1.halfX, c1.halfY
					mv.BiRef = true
					mv.Ref2, mv.SrcX2, mv.SrcY2 = refs[c2.refIdx], c2.srcX, c2.srcY
					mv.HalfX2, mv.HalfY2 = c2.halfX, c2.halfY
					haveMV = true
					if !skipPixels {
						copyRefBlockHalf(res.Frames[mv.Ref], c1.srcX, c1.srcY, c1.halfX, c1.halfY, bs, pred)
						copyRefBlockHalf(res.Frames[mv.Ref2], c2.srcX, c2.srcY, c2.halfX, c2.halfY, bs, tmp)
						for i := range pred {
							pred[i] = uint8((int(pred[i]) + int(tmp[i]) + 1) / 2)
						}
					}
				default:
					return nil, fmt.Errorf("%w: bad block mode %d", ErrBitstream, m)
				}
				levels, err := readResidual(sr, bs)
				if err != nil {
					return nil, err
				}
				info.BlockEnergy = append(info.BlockEnergy, blockEnergy(levels, intra))
				if !skipPixels {
					applyResidual(rec, bx, by, bs, qstep, pred, levels)
				}
				if haveMV {
					info.MVs = append(info.MVs, mv)
				}
			}
		}
		if !skipPixels {
			if cfg.Deblock {
				deblockFrame(rec, bs, qp)
			}
			res.Frames[d] = rec
		}
		info.Bits = sr.Tell() - startBits
		if c != nil {
			observeFrame(c, *info, t0)
		}
	}
	return res, nil
}

func readMV(r SymbolReader, refs []int, bx, by int, halfPel bool) (motionCandidate, error) {
	ri, err := r.ReadUE()
	if err != nil {
		return motionCandidate{}, err
	}
	if int(ri) >= len(refs) {
		return motionCandidate{}, fmt.Errorf("%w: reference index %d out of range (%d refs)", ErrBitstream, ri, len(refs))
	}
	dx, err := r.ReadSE()
	if err != nil {
		return motionCandidate{}, err
	}
	dy, err := r.ReadSE()
	if err != nil {
		return motionCandidate{}, err
	}
	c := motionCandidate{refIdx: int(ri), srcX: bx + int(dx), srcY: by + int(dy)}
	if halfPel {
		hx, err := r.ReadBit()
		if err != nil {
			return motionCandidate{}, err
		}
		hy, err := r.ReadBit()
		if err != nil {
			return motionCandidate{}, err
		}
		c.halfX, c.halfY = int(hx), int(hy)
	}
	return c, nil
}
