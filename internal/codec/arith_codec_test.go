package codec

import "testing"

// TestArithmeticBackendRoundTrip encodes with the CABAC-style backend and
// checks the decode matches the Exp-Golomb backend bit-for-bit in content.
func TestArithmeticBackendRoundTrip(t *testing.T) {
	v := testVideo(64, 48, 12, 1.5)
	plain := DefaultConfig()
	arith := DefaultConfig()
	arith.Arithmetic = true

	ps, err := Encode(v, plain)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Encode(v, arith)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Decode(ps.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Decode(as.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Cfg.Arithmetic {
		t.Fatal("arithmetic flag lost in round trip")
	}
	// Identical prediction decisions -> identical reconstructions.
	for d := range pd.Frames {
		for i := range pd.Frames[d].Pix {
			if pd.Frames[d].Pix[i] != ad.Frames[d].Pix[i] {
				t.Fatalf("frame %d pixel %d differs between entropy backends", d, i)
			}
		}
		if len(pd.Infos[d].MVs) != len(ad.Infos[d].MVs) {
			t.Fatalf("frame %d MV count differs between backends", d)
		}
	}
}

// TestArithmeticBackendCompressesBetter: the adaptive backend should save
// bits on real video payloads.
func TestArithmeticBackendCompressesBetter(t *testing.T) {
	v := testVideo(96, 64, 16, 1.2)
	plain := DefaultConfig()
	arith := DefaultConfig()
	arith.Arithmetic = true
	ps, err := Encode(v, plain)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Encode(v, arith)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exp-golomb %d bytes, arithmetic %d bytes (%.1f%% saved)",
		len(ps.Data), len(as.Data), 100*(1-float64(len(as.Data))/float64(len(ps.Data))))
	if len(as.Data) >= len(ps.Data) {
		t.Fatalf("arithmetic stream (%d) not smaller than Exp-Golomb (%d)", len(as.Data), len(ps.Data))
	}
}

// TestArithmeticStreamDecoder: the incremental decoder handles the
// arithmetic backend identically to batch decode.
func TestArithmeticStreamDecoder(t *testing.T) {
	v := testVideo(64, 48, 10, 1.5)
	cfg := DefaultConfig()
	cfg.Arithmetic = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		d := out.Info.Display
		for i := range out.Pixels.Pix {
			if out.Pixels.Pix[i] != batch.Frames[d].Pix[i] {
				t.Fatalf("frame %d differs from batch decode", d)
			}
		}
		n++
	}
	if n != 10 {
		t.Fatalf("decoded %d frames", n)
	}
}

// TestArithmeticCorruptionClean: bit flips in the arithmetic payload fail
// cleanly.
func TestArithmeticCorruptionClean(t *testing.T) {
	v := testVideo(64, 48, 6, 1)
	cfg := DefaultConfig()
	cfg.Arithmetic = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		data := append([]byte(nil), st.Data...)
		data[37+trial*7%len(data)] ^= 0x40
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_, _ = Decode(data, DecodeFull)
		}()
	}
}
