package codec

import "vrdann/internal/video"

// intraPredict fills pred (bs×bs, row-major) with the prediction for the
// block at (bx, by) using the given intra mode and the reconstructed pixels
// of the current frame (above and to the left of the block).
func intraPredict(recon *video.Frame, bx, by, bs, mode int, pred []uint8) {
	hasTop := by > 0
	hasLeft := bx > 0
	switch mode {
	case modeIntraDC:
		var sum, cnt int
		if hasTop {
			for x := 0; x < bs; x++ {
				sum += int(recon.At(bx+x, by-1))
				cnt++
			}
		}
		if hasLeft {
			for y := 0; y < bs; y++ {
				sum += int(recon.At(bx-1, by+y))
				cnt++
			}
		}
		dc := uint8(128)
		if cnt > 0 {
			dc = uint8((sum + cnt/2) / cnt)
		}
		for i := range pred {
			pred[i] = dc
		}
	case modeIntraV:
		for x := 0; x < bs; x++ {
			v := uint8(128)
			if hasTop {
				v = recon.At(bx+x, by-1)
			}
			for y := 0; y < bs; y++ {
				pred[y*bs+x] = v
			}
		}
	case modeIntraH:
		for y := 0; y < bs; y++ {
			v := uint8(128)
			if hasLeft {
				v = recon.At(bx-1, by+y)
			}
			for x := 0; x < bs; x++ {
				pred[y*bs+x] = v
			}
		}
	case modeIntraDDL:
		// Diagonal down-left: each pixel extends the top row along the 45°
		// direction toward bottom-left; positions past the row clamp to its
		// last sample (the top-right extension of real codecs, simplified).
		for y := 0; y < bs; y++ {
			for x := 0; x < bs; x++ {
				v := uint8(128)
				if hasTop {
					tx := bx + x + y + 1
					if tx > bx+bs-1 && bx+bs-1 < recon.W {
						tx = bx + bs - 1
					}
					v = recon.At(tx, by-1)
				}
				pred[y*bs+x] = v
			}
		}
	case modeIntraDDR:
		// Diagonal down-right: pixels continue the top row / left column
		// along the 45° direction from top-left.
		for y := 0; y < bs; y++ {
			for x := 0; x < bs; x++ {
				var v uint8 = 128
				switch {
				case x > y && hasTop:
					v = recon.At(bx+x-y-1, by-1)
				case x < y && hasLeft:
					v = recon.At(bx-1, by+y-x-1)
				case hasTop && hasLeft:
					v = recon.At(bx-1, by-1)
				case hasTop:
					v = recon.At(bx, by-1)
				case hasLeft:
					v = recon.At(bx-1, by)
				}
				pred[y*bs+x] = v
			}
		}
	case modeIntraPlane:
		// Bilinear plane from the top row and left column ends.
		tl, tr, bl := 128, 128, 128
		if hasTop {
			tl = int(recon.At(bx, by-1))
			tr = int(recon.At(bx+bs-1, by-1))
		}
		if hasLeft {
			if !hasTop {
				tl = int(recon.At(bx-1, by))
			}
			bl = int(recon.At(bx-1, by+bs-1))
		}
		for y := 0; y < bs; y++ {
			for x := 0; x < bs; x++ {
				v := tl + (tr-tl)*x/maxInt(bs-1, 1) + (bl-tl)*y/maxInt(bs-1, 1)
				pred[y*bs+x] = clampPix(v)
			}
		}
	default:
		panic("codec: not an intra mode")
	}
}

// bestIntra evaluates all intra modes against the source block and returns
// the mode with the least sum of absolute error (the paper's SAE criterion)
// along with that SAE.
func bestIntra(src *video.Frame, recon *video.Frame, bx, by, bs int, pred []uint8) (mode int, sae int64) {
	best := -1
	var bestSAE int64
	tmp := make([]uint8, bs*bs)
	for _, m := range intraModes {
		intraPredict(recon, bx, by, bs, m, tmp)
		s := blockSAE(src, bx, by, bs, tmp)
		if best < 0 || s < bestSAE {
			best, bestSAE = m, s
			copy(pred, tmp)
		}
	}
	return best, bestSAE
}

// blockSAE computes the sum of absolute error between the source block at
// (bx, by) and a prediction buffer.
func blockSAE(src *video.Frame, bx, by, bs int, pred []uint8) int64 {
	var s int64
	for y := 0; y < bs; y++ {
		row := (by + y) * src.W
		for x := 0; x < bs; x++ {
			d := int64(src.Pix[row+bx+x]) - int64(pred[y*bs+x])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

func clampPix(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
