package codec

import (
	"testing"

	"vrdann/internal/video"
)

func benchVideo(b *testing.B, frames int) *video.Video {
	b.Helper()
	return video.Generate(video.SceneSpec{
		Name: "bench", W: 96, H: 64, Frames: frames, Seed: 7, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 13, X: 36, Y: 32,
			VX: 1.5, VY: 0.5, Intensity: 220, Foreground: true,
		}},
	})
}

func BenchmarkEncode(b *testing.B) {
	v := benchVideo(b, 16)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(v, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFull(b *testing.B) {
	v := benchVideo(b, 16)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(st.Data, DecodeFull); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSideInfo(b *testing.B) {
	v := benchVideo(b, 16)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(st.Data, DecodeSideInfo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardDCT8(b *testing.B) {
	block := make([]float64, 64)
	for i := range block {
		block[i] = float64(i%17) - 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForwardDCT(block, 8)
	}
}

func BenchmarkMotionSearch(b *testing.B) {
	v := benchVideo(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motionSearch(v.Frames[1], v.Frames[0], 32, 24, 8, 8)
	}
}
