package codec

import (
	"math"
	"testing"

	"vrdann/internal/video"
)

func testVideo(w, h, frames int, speed float64) *video.Video {
	return video.Generate(video.SceneSpec{
		Name: "test", W: w, H: h, Frames: frames, Seed: 77, Noise: 1.5,
		Objects: []video.ObjectSpec{
			{Shape: video.ShapeDisk, Radius: float64(h) / 5, X: float64(w) / 3, Y: float64(h) / 2,
				VX: speed, VY: speed / 3, Intensity: 220, Foreground: true},
		},
	})
}

func TestPlanGOPInvariants(t *testing.T) {
	v := testVideo(64, 48, 24, 1.5)
	cfg := DefaultConfig()
	types := PlanGOP(v.Frames, cfg)
	if types[0] != IFrame {
		t.Fatal("first frame must be I")
	}
	if types[len(types)-1] == BFrame {
		t.Fatal("last frame must be an anchor")
	}
	run := 0
	for _, ty := range types {
		if ty == BFrame {
			run++
			if run > cfg.MaxBRun {
				t.Fatalf("B run exceeds MaxBRun %d", cfg.MaxBRun)
			}
		} else {
			run = 0
		}
	}
}

func TestPlanGOPTargetRatio(t *testing.T) {
	v := testVideo(64, 48, 40, 1)
	for _, target := range []float64{0.37, 0.5, 0.65} {
		cfg := DefaultConfig()
		cfg.TargetBRatio = target
		types := PlanGOP(v.Frames, cfg)
		b := 0
		for _, ty := range types {
			if ty == BFrame {
				b++
			}
		}
		ratio := float64(b) / float64(len(types))
		if ratio > target+0.02 {
			t.Fatalf("target %v produced ratio %v (too many B)", target, ratio)
		}
		if ratio < target-0.15 {
			t.Fatalf("target %v produced ratio %v (too few B)", target, ratio)
		}
	}
}

func TestPlanGOPAdaptsToMotion(t *testing.T) {
	slow := testVideo(64, 48, 30, 0.3)
	fast := testVideo(64, 48, 30, 6)
	cfg := DefaultConfig()
	count := func(types []FrameType) int {
		b := 0
		for _, ty := range types {
			if ty == BFrame {
				b++
			}
		}
		return b
	}
	bs := count(PlanGOP(slow.Frames, cfg))
	bf := count(PlanGOP(fast.Frames, cfg))
	if bs <= bf {
		t.Fatalf("slow video should get more B frames (slow %d, fast %d)", bs, bf)
	}
}

func TestDecodeOrderValid(t *testing.T) {
	v := testVideo(64, 48, 25, 1.5)
	cfg := DefaultConfig()
	types := PlanGOP(v.Frames, cfg)
	order := DecodeOrder(types, cfg)
	if len(order) != len(types) {
		t.Fatalf("decode order has %d entries for %d frames", len(order), len(types))
	}
	seen := map[int]bool{}
	var anchors []int
	for i, ty := range types {
		if ty.IsAnchor() {
			anchors = append(anchors, i)
		}
	}
	decodedAt := map[int]int{}
	for pos, d := range order {
		if seen[d] {
			t.Fatalf("frame %d decoded twice", d)
		}
		seen[d] = true
		decodedAt[d] = pos
	}
	// Every B-frame's candidate references must decode before it.
	for d, ty := range types {
		if ty != BFrame {
			continue
		}
		for _, ref := range candidateRefs(anchors, d, cfg) {
			if decodedAt[ref] > decodedAt[d] {
				t.Fatalf("B-frame %d decodes before its reference %d", d, ref)
			}
		}
	}
}

func TestCandidateRefsNearestFirstAndBounded(t *testing.T) {
	anchors := []int{0, 4, 8, 12, 16}
	cfg := DefaultConfig()
	cfg.SearchInterval = 4
	refs := candidateRefs(anchors, 6, cfg)
	if len(refs) != 4 {
		t.Fatalf("got %d refs, want 4", len(refs))
	}
	if refs[0] != 4 && refs[0] != 8 {
		t.Fatalf("nearest ref should be 4 or 8, got %d", refs[0])
	}
	// Only up to futureRefs (=2) future anchors allowed.
	future := 0
	for _, r := range refs {
		if r > 6 {
			future++
		}
	}
	if future > 2 {
		t.Fatalf("too many future refs: %d", future)
	}
}

func TestEncodeDecodeRoundTripQuality(t *testing.T) {
	v := testVideo(64, 48, 12, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 64 || res.H != 48 || len(res.Frames) != 12 {
		t.Fatalf("decode geometry %dx%d/%d", res.W, res.H, len(res.Frames))
	}
	// Lossy codec: check PSNR of every frame is reasonable.
	for i, f := range res.Frames {
		if f == nil {
			t.Fatalf("frame %d missing in full decode", i)
		}
		p := psnr(v.Frames[i], f)
		if p < 30 {
			t.Fatalf("frame %d PSNR %.1f dB too low", i, p)
		}
	}
}

func psnr(a, b *video.Frame) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return 99
	}
	return 10 * math.Log10(255*255/mse)
}

func TestDecodeMatchesEncoderMetadata(t *testing.T) {
	v := testVideo(64, 48, 15, 1.2)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Types {
		if res.Types[i] != st.Types[i] {
			t.Fatalf("frame %d type mismatch", i)
		}
	}
	for i := range st.Order {
		if res.Order[i] != st.Order[i] {
			t.Fatalf("decode order mismatch at %d", i)
		}
	}
}

func TestSideInfoModeSkipsBPixelsButKeepsMVs(t *testing.T) {
	v := testVideo(64, 48, 15, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	nB := 0
	for d, ty := range res.Types {
		switch ty {
		case BFrame:
			nB++
			if res.Frames[d] != nil {
				t.Fatalf("B-frame %d has pixels in side-info mode", d)
			}
			info := res.Infos[d]
			if info.Blocks == 0 {
				t.Fatalf("B-frame %d has no block metadata", d)
			}
			if len(info.MVs)+info.IntraBlk != info.Blocks {
				t.Fatalf("B-frame %d: %d MVs + %d intra != %d blocks", d, len(info.MVs), info.IntraBlk, info.Blocks)
			}
		default:
			if res.Frames[d] == nil {
				t.Fatalf("anchor %d missing pixels in side-info mode", d)
			}
		}
	}
	if nB == 0 {
		t.Fatal("test video produced no B frames")
	}
}

func TestSideInfoMatchesFullDecodeMVs(t *testing.T) {
	v := testVideo(64, 48, 12, 2)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	side, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	for d := range full.Infos {
		a, b := full.Infos[d].MVs, side.Infos[d].MVs
		if len(a) != len(b) {
			t.Fatalf("frame %d MV count differs: %d vs %d", d, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d MV %d differs: %v vs %v", d, i, a[i], b[i])
			}
		}
	}
}

// TestBlockEnergyPopulated pins the residual-energy side channel: one entry
// per macro-block, -1 exactly on intra blocks, populated identically by the
// batch and streaming decoders and in both decode modes (the NN-S residual
// skip reads it in side-info serving, where B pixels never materialize).
func TestBlockEnergyPopulated(t *testing.T) {
	v := testVideo(64, 48, 15, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	side, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	streamed := make([]FrameInfo, len(full.Infos))
	for {
		fo, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if fo == nil {
			break
		}
		streamed[fo.Info.Display] = fo.Info
	}
	sawZero, sawNonZero := false, false
	for d, info := range full.Infos {
		if len(info.BlockEnergy) != info.Blocks {
			t.Fatalf("frame %d: %d energies for %d blocks", d, len(info.BlockEnergy), info.Blocks)
		}
		intra := 0
		for i, e := range info.BlockEnergy {
			switch {
			case e == -1:
				intra++
			case e < 0:
				t.Fatalf("frame %d block %d: negative energy %d", d, i, e)
			case e == 0:
				sawZero = true
			default:
				sawNonZero = true
			}
			if side.Infos[d].BlockEnergy[i] != e {
				t.Fatalf("frame %d block %d: side-info energy %d != full %d", d, i, side.Infos[d].BlockEnergy[i], e)
			}
			if streamed[d].BlockEnergy[i] != e {
				t.Fatalf("frame %d block %d: streamed energy %d != batch %d", d, i, streamed[d].BlockEnergy[i], e)
			}
		}
		if intra != info.IntraBlk {
			t.Fatalf("frame %d: %d sentinel energies but %d intra blocks", d, intra, info.IntraBlk)
		}
	}
	if !sawZero || !sawNonZero {
		t.Fatalf("energy distribution degenerate (sawZero=%v sawNonZero=%v): skip heuristic would be untestable", sawZero, sawNonZero)
	}
}

func TestBFramesReferenceOnlyAnchors(t *testing.T) {
	v := testVideo(64, 48, 20, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	for d, info := range res.Infos {
		for _, mv := range info.MVs {
			if !res.Types[mv.Ref].IsAnchor() {
				t.Fatalf("frame %d references non-anchor %d", d, mv.Ref)
			}
			if mv.BiRef && !res.Types[mv.Ref2].IsAnchor() {
				t.Fatalf("frame %d bi-references non-anchor %d", d, mv.Ref2)
			}
		}
	}
}

func TestMotionVectorsTrackObject(t *testing.T) {
	// With a moving object, inter blocks on the object should carry
	// displaced motion vectors (src != dst somewhere). Speed is kept inside
	// the motion-adaptive GOP budget so B-frames exist.
	v := testVideo(96, 64, 10, 2.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	displaced := 0
	for _, info := range res.Infos {
		if info.Type != BFrame {
			continue
		}
		for _, mv := range info.MVs {
			if mv.SrcX != mv.DstX || mv.SrcY != mv.DstY {
				displaced++
			}
		}
	}
	if displaced == 0 {
		t.Fatal("no displaced motion vectors for a moving object")
	}
}

func TestBRatioStat(t *testing.T) {
	v := testVideo(64, 48, 30, 0.5)
	cfg := DefaultConfig()
	cfg.TargetBRatio = 0.5
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.BRatio(); math.Abs(r-0.5) > 0.1 {
		t.Fatalf("BRatio = %v, want ~0.5", r)
	}
	counts := res.RefFrameCounts()
	if len(counts) == 0 {
		t.Fatal("no B frames")
	}
	for _, c := range counts {
		if c < 0 || c > res.Cfg.EffectiveSearchInterval() {
			t.Fatalf("ref count %d out of range", c)
		}
	}
}

func TestEncodeRejectsBadGeometry(t *testing.T) {
	v := &video.Video{Frames: []*video.Frame{video.NewFrame(30, 20)}}
	if _, err := Encode(v, DefaultConfig()); err == nil {
		t.Fatal("expected error for non-multiple-of-block frame size")
	}
	if _, err := Encode(&video.Video{}, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty video")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3, 4, 5}, DecodeFull); err == nil {
		t.Fatal("expected error for garbage stream")
	}
	v := testVideo(32, 32, 4, 1)
	st, _ := Encode(v, DefaultConfig())
	if _, err := Decode(st.Data[:len(st.Data)/2], DecodeFull); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestBlockSize16RoundTrip(t *testing.T) {
	v := testVideo(64, 48, 8, 1.5)
	cfg := DefaultConfig()
	cfg.BlockSize = 16
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(v.Frames[3], res.Frames[3]); p < 28 {
		t.Fatalf("16x16 block PSNR %.1f too low", p)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	v := testVideo(96, 64, 16, 1)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := 96 * 64 * 16
	if len(st.Data) >= raw/2 {
		t.Fatalf("stream %d bytes vs raw %d: compression ratio too poor", len(st.Data), raw)
	}
}

func TestSearchIntervalLimitsRefs(t *testing.T) {
	v := testVideo(64, 48, 30, 2)
	for _, n := range []int{1, 3, 5, 7} {
		cfg := DefaultConfig()
		cfg.SearchInterval = n
		st, err := Encode(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Decode(st.Data, DecodeSideInfo)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.RefFrameCounts() {
			if c > n {
				t.Fatalf("search interval %d but B-frame used %d refs", n, c)
			}
		}
	}
}

func TestIntraOnlyFirstFrame(t *testing.T) {
	v := testVideo(64, 48, 6, 1)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Infos[0]
	if info.Type != IFrame || len(info.MVs) != 0 || info.IntraBlk != info.Blocks {
		t.Fatalf("frame 0 not intra-only: %+v", info)
	}
}
