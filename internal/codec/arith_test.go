package codec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArithBitRoundTrip(t *testing.T) {
	w := NewArithWriter()
	bits := []uint8{1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 0, 0, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	r := NewArithReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil || got != want {
			t.Fatalf("bit %d: got %d err %v, want %d", i, got, err, want)
		}
	}
}

func TestArithUESERoundTripProperty(t *testing.T) {
	f := func(us []uint32, ss []int32) bool {
		w := NewArithWriter()
		for _, u := range us {
			w.WriteUE(uint64(u))
		}
		for _, s := range ss {
			w.WriteSE(int64(s))
		}
		r := NewArithReader(w.Bytes())
		for _, u := range us {
			got, err := r.ReadUE()
			if err != nil || got != uint64(u) {
				return false
			}
		}
		for _, s := range ss {
			got, err := r.ReadSE()
			if err != nil || got != int64(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestArithMixedSymbolsRoundTrip(t *testing.T) {
	w := NewArithWriter()
	w.WriteUE(300)
	w.WriteBits(0xabc, 12)
	w.WriteSE(-17)
	w.WriteBit(1)
	w.WriteUE(0)
	r := NewArithReader(w.Bytes())
	if v, _ := r.ReadUE(); v != 300 {
		t.Fatalf("ue = %d", v)
	}
	if v, _ := r.ReadBits(12); v != 0xabc {
		t.Fatalf("bits = %x", v)
	}
	if v, _ := r.ReadSE(); v != -17 {
		t.Fatalf("se = %d", v)
	}
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit")
	}
	if v, _ := r.ReadUE(); v != 0 {
		t.Fatalf("ue0 = %d", v)
	}
}

func TestArithAdaptationCompressesBiasedSource(t *testing.T) {
	// A heavily biased bit source must compress well below 1 bit/bin once
	// the contexts adapt — the whole point of the adaptive coder.
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	w := NewArithWriter()
	bits := make([]uint8, n)
	for i := range bits {
		if rng.Float64() < 0.05 {
			bits[i] = 1
		}
		w.WriteBit(bits[i])
	}
	payload := w.Bytes()
	if got := float64(len(payload)*8) / n; got > 0.5 {
		t.Fatalf("biased source coded at %.3f bits/bin, want < 0.5", got)
	}
	r := NewArithReader(payload)
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil || got != want {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestArithSmallValuesBeatGolomb(t *testing.T) {
	// Residual-like data: mostly small UE values with occasional spikes.
	rng := rand.New(rand.NewSource(6))
	vals := make([]uint64, 8000)
	for i := range vals {
		if rng.Float64() < 0.9 {
			vals[i] = uint64(rng.Intn(2))
		} else {
			vals[i] = uint64(rng.Intn(40))
		}
	}
	bw := NewBitWriter()
	aw := NewArithWriter()
	for _, v := range vals {
		bw.WriteUE(v)
		aw.WriteUE(v)
	}
	golomb := len(bw.Bytes())
	arith := len(aw.Bytes())
	if arith >= golomb {
		t.Fatalf("arithmetic (%d bytes) should beat Exp-Golomb (%d bytes) on skewed data", arith, golomb)
	}
}

func TestArithReaderCleanOnTruncation(t *testing.T) {
	w := NewArithWriter()
	for i := 0; i < 500; i++ {
		w.WriteUE(uint64(i % 7))
	}
	payload := w.Bytes()
	r := NewArithReader(payload[:3])
	bad := false
	for i := 0; i < 500; i++ {
		if _, err := r.ReadUE(); err != nil {
			bad = true
			break
		}
	}
	if !bad {
		t.Fatal("truncated payload should eventually error")
	}
}

func TestContextUpdateBounds(t *testing.T) {
	c := newContext()
	for i := 0; i < 10000; i++ {
		c.update(1)
	}
	if c.p0 < 64 {
		t.Fatal("context escaped lower bound")
	}
	for i := 0; i < 10000; i++ {
		c.update(0)
	}
	if c.p0 > 0xffff-64 {
		t.Fatal("context escaped upper bound")
	}
}
