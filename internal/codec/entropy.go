package codec

// SymbolWriter is the entropy-coding backend interface the encoder writes
// frame payloads through: plain bits (BitWriter, Exp-Golomb stream) or the
// context-adaptive arithmetic coder (ArithWriter).
type SymbolWriter interface {
	WriteBit(b uint8)
	WriteBits(v uint64, n int)
	WriteUE(v uint64)
	WriteSE(v int64)
	// Tell reports the (approximate, for the arithmetic backend) number of
	// bits produced so far, used by rate control.
	Tell() int
}

// SymbolReader mirrors SymbolWriter for decoding. Tell reports the
// (approximate, for the arithmetic backend) consumed position in bits, used
// for per-frame size accounting.
type SymbolReader interface {
	ReadBit() (uint8, error)
	ReadBits(n int) (uint64, error)
	ReadUE() (uint64, error)
	ReadSE() (int64, error)
	Tell() int
}

var (
	_ SymbolWriter = (*BitWriter)(nil)
	_ SymbolWriter = (*ArithWriter)(nil)
	_ SymbolReader = (*BitReader)(nil)
	_ SymbolReader = (*ArithReader)(nil)
)

// AlignByte pads the writer with zero bits to the next byte boundary.
func (w *BitWriter) AlignByte() {
	for w.nbit != 0 {
		w.WriteBit(0)
	}
}

// AlignByte advances the reader to the next byte boundary.
func (r *BitReader) AlignByte() {
	r.pos = (r.pos + 7) / 8 * 8
}

// Tell implements SymbolReader.
func (r *BitReader) Tell() int { return r.pos }

// Tell implements SymbolWriter.
func (w *BitWriter) Tell() int { return w.Len() }

// Tell implements SymbolWriter: bits emitted so far (byte-granular; the
// range coder's internal cache lags by a few bytes).
func (w *ArithWriter) Tell() int { return len(w.out) * 8 }

// Tell implements SymbolReader: the consumed payload position in bits
// (byte-granular — the range coder reads whole bytes).
func (r *ArithReader) Tell() int { return r.pos * 8 }
