package codec

import (
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xdead, 16)
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 0")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("bit 1")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("bits = %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xdead {
		t.Fatalf("bits = %x", v)
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Classic Exp-Golomb: 0->"1", 1->"010", 2->"011", 3->"00100".
	for v, wantBits := range map[uint64]int{0: 1, 1: 3, 2: 3, 3: 5, 6: 5, 7: 7} {
		w := NewBitWriter()
		w.WriteUE(v)
		if w.Len() != wantBits {
			t.Fatalf("UE(%d) used %d bits, want %d", v, w.Len(), wantBits)
		}
		r := NewBitReader(w.Bytes())
		got, err := r.ReadUE()
		if err != nil || got != v {
			t.Fatalf("UE(%d) round trip = %d, err %v", v, got, err)
		}
	}
}

func TestUEPropertyRoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteUE(uint64(v))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUE()
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSEPropertyRoundTrip(t *testing.T) {
	f := func(vals []int32) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteSE(int64(v))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPastEndFails(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal("first byte should read")
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("expected error past end")
	}
}

func TestMixedSequenceRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteUE(300)
	w.WriteSE(-17)
	w.WriteBits(5, 3)
	w.WriteSE(0)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadUE(); v != 300 {
		t.Fatalf("ue = %d", v)
	}
	if v, _ := r.ReadSE(); v != -17 {
		t.Fatalf("se = %d", v)
	}
	if v, _ := r.ReadBits(3); v != 5 {
		t.Fatalf("bits = %d", v)
	}
	if v, _ := r.ReadSE(); v != 0 {
		t.Fatalf("se0 = %d", v)
	}
}
