package codec

import (
	"testing"

	"vrdann/internal/video"
)

func TestHalfPelSampleInterpolation(t *testing.T) {
	f := video.NewFrame(4, 4)
	f.Set(0, 0, 100)
	f.Set(1, 0, 200)
	f.Set(0, 1, 100)
	f.Set(1, 1, 200)
	if got := halfPelSample(f, 0, 0, 0, 0); got != 100 {
		t.Fatalf("integer sample = %d", got)
	}
	// Horizontal half-pel between 100 and 200 columns: (100+200+100+200+2)/4 = 150.
	if got := halfPelSample(f, 0, 0, 1, 0); got != 150 {
		t.Fatalf("half-x sample = %d, want 150", got)
	}
}

func TestHalfPelSampleEdgeClamp(t *testing.T) {
	f := video.NewFrame(2, 2)
	f.Set(1, 1, 80)
	// At the corner, all taps clamp to (1,1).
	if got := halfPelSample(f, 1, 1, 1, 1); got != 80 {
		t.Fatalf("clamped half sample = %d, want 80", got)
	}
}

// subPelVideo builds a sequence whose object moves by a non-integer number
// of pixels per frame, where half-pel compensation genuinely helps.
func subPelVideo(frames int) *video.Video {
	return video.Generate(video.SceneSpec{
		Name: "subpel", W: 96, H: 64, Frames: frames, Seed: 31, Noise: 1.0,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 14, X: 30, Y: 32,
			VX: 1.5, VY: 0.5, Intensity: 215, Foreground: true,
		}},
	})
}

func TestHalfPelRoundTrip(t *testing.T) {
	v := subPelVideo(12)
	cfg := DefaultConfig()
	cfg.HalfPel = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cfg.HalfPel {
		t.Fatal("half-pel flag lost")
	}
	for d, f := range res.Frames {
		if f == nil {
			t.Fatalf("frame %d missing", d)
		}
	}
	// Half offsets must actually be used somewhere on sub-pel motion.
	used := false
	for _, info := range res.Infos {
		for _, mv := range info.MVs {
			if mv.HalfX != 0 || mv.HalfY != 0 {
				used = true
			}
		}
	}
	if !used {
		t.Fatal("no half-pel offsets selected on sub-pixel motion")
	}
}

func TestHalfPelImprovesCompressionOrQuality(t *testing.T) {
	v := subPelVideo(16)
	plain := DefaultConfig()
	half := DefaultConfig()
	half.HalfPel = true
	ps, err := Encode(v, plain)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Encode(v, half)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Decode(ps.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := Decode(hs.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	var pq, hq float64
	for d := range pd.Frames {
		pq += psnr(v.Frames[d], pd.Frames[d])
		hq += psnr(v.Frames[d], hd.Frames[d])
	}
	pq /= float64(len(pd.Frames))
	hq /= float64(len(hd.Frames))
	pBits := float64(len(ps.Data))
	hBits := float64(len(hs.Data))
	t.Logf("full-pel: %.0f bytes %.2f dB; half-pel: %.0f bytes %.2f dB", pBits, pq, hBits, hq)
	// Better prediction shows up as fewer bits at equal-ish quality or
	// better quality at equal-ish bits; require a clear win on the
	// bits+quality tradeoff (rate must not grow while quality drops).
	if hBits > pBits*1.02 && hq < pq-0.05 {
		t.Fatal("half-pel made both rate and quality worse")
	}
	if hBits > pBits && hq <= pq {
		t.Fatal("half-pel shows no benefit on sub-pel motion")
	}
}

func TestHalfPelStreamDecoderConsistent(t *testing.T) {
	v := subPelVideo(10)
	cfg := DefaultConfig()
	cfg.HalfPel = true
	cfg.Arithmetic = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Decode(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(st.Data, DecodeFull)
	if err != nil {
		t.Fatal(err)
	}
	for {
		out, err := sd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			break
		}
		d := out.Info.Display
		for i := range out.Pixels.Pix {
			if out.Pixels.Pix[i] != batch.Frames[d].Pix[i] {
				t.Fatalf("frame %d: streaming decode differs under half-pel + arithmetic", d)
			}
		}
	}
}

func TestHalfPelReconUsesIntegerPart(t *testing.T) {
	// The segmentation reconstruction path ignores half offsets: feeding
	// half-pel MVs into Reconstruct-style consumers requires only SrcX/SrcY,
	// which must always be valid integer coordinates.
	v := subPelVideo(12)
	cfg := DefaultConfig()
	cfg.HalfPel = true
	st, err := Encode(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(st.Data, DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range res.Infos {
		for _, mv := range info.MVs {
			if mv.HalfX < 0 || mv.HalfX > 1 || mv.HalfY < 0 || mv.HalfY > 1 {
				t.Fatalf("half offsets out of range: %+v", mv)
			}
		}
	}
}
