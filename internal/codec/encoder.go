package codec

import (
	"fmt"
	"math"

	"vrdann/internal/video"
)

// Stream is an encoded video bitstream plus the structural metadata the
// encoder derived (also recoverable by parsing Data).
type Stream struct {
	Data  []byte
	W, H  int
	Cfg   Config
	Types []FrameType // display order
	Order []int       // decode order (display indices)
}

const streamMagic = 0x56524431 // "VRD1"

// Encode compresses the video under the given configuration. Frame
// dimensions must be multiples of the macro-block size.
func Encode(v *video.Video, cfg Config) (*Stream, error) {
	cfg = cfg.normalized()
	if v.Len() == 0 {
		return nil, fmt.Errorf("codec: empty video")
	}
	w, h := v.Frames[0].W, v.Frames[0].H
	if w%cfg.BlockSize != 0 || h%cfg.BlockSize != 0 {
		return nil, fmt.Errorf("codec: frame %dx%d not a multiple of block size %d", w, h, cfg.BlockSize)
	}
	types := PlanGOP(v.Frames, cfg)
	order := DecodeOrder(types, cfg)
	var anchors []int
	for i, t := range types {
		if t.IsAnchor() {
			anchors = append(anchors, i)
		}
	}

	bw := NewBitWriter()
	writeHeader(bw, w, h, len(types), cfg, types)
	bw.AlignByte()
	var payload SymbolWriter = bw
	var arith *ArithWriter
	if cfg.Arithmetic {
		arith = NewArithWriter()
		payload = arith
	}

	bs := cfg.BlockSize
	recon := make(map[int]*video.Frame, len(anchors))

	pred := make([]uint8, bs*bs)
	rc := newRateControl(cfg)
	for _, d := range order {
		src := v.Frames[d]
		qp := rc.frameQP()
		payload.WriteSE(int64(qp - cfg.QP))
		qstep := QStep(qp)
		startBits := payload.Tell()
		switch types[d] {
		case IFrame:
			rec := encodeIntraFrame(payload, src, bs, qstep, pred)
			if cfg.Deblock {
				deblockFrame(rec, bs, qp)
			}
			recon[d] = rec
		case PFrame:
			refs := pastRefs(anchors, d, cfg)
			rec := encodeInterFrame(payload, src, refs, nil, recon, cfg, qstep, pred)
			if cfg.Deblock {
				deblockFrame(rec, bs, qp)
			}
			recon[d] = rec
		case BFrame:
			refs := candidateRefs(anchors, d, cfg)
			encodeInterFrame(payload, src, refs, &d, recon, cfg, qstep, pred)
		}
		rc.observe(payload.Tell() - startBits)
	}
	data := bw.Bytes()
	if arith != nil {
		data = append(data, arith.Bytes()...)
	}
	return &Stream{Data: data, W: w, H: h, Cfg: cfg, Types: types, Order: order}, nil
}

func writeHeader(w *BitWriter, width, height, frames int, cfg Config, types []FrameType) {
	w.WriteBits(streamMagic, 32)
	w.WriteBits(uint64(width), 16)
	w.WriteBits(uint64(height), 16)
	w.WriteUE(uint64(frames))
	w.WriteUE(uint64(cfg.BlockSize))
	w.WriteUE(uint64(cfg.QP))
	w.WriteUE(uint64(cfg.SearchRange))
	w.WriteUE(uint64(cfg.SearchInterval))
	w.WriteUE(uint64(cfg.MaxBRun))
	w.WriteUE(uint64(cfg.IPeriod))
	w.WriteUE(uint64(cfg.TargetBRatio * 1000))
	if cfg.Arithmetic {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	if cfg.Deblock {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteUE(uint64(cfg.TargetBPF))
	if cfg.HalfPel {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	for _, t := range types {
		w.WriteBits(uint64(t), 2)
	}
}

// encodeIntraFrame codes every macro-block with the best intra mode and
// returns the closed-loop reconstruction.
func encodeIntraFrame(w SymbolWriter, src *video.Frame, bs int, qstep float64, pred []uint8) *video.Frame {
	rec := video.NewFrame(src.W, src.H)
	for by := 0; by < src.H; by += bs {
		for bx := 0; bx < src.W; bx += bs {
			mode, _ := bestIntra(src, rec, bx, by, bs, pred)
			w.WriteUE(uint64(mode))
			encodeResidual(w, src, rec, bx, by, bs, qstep, pred)
		}
	}
	return rec
}

// encodeInterFrame codes a P- or B-frame. For P-frames (bDisplay nil) it
// returns the closed-loop reconstruction; for B-frames (never referenced)
// it reconstructs into a throwaway frame for mode decision of later intra
// blocks in the same frame.
func encodeInterFrame(w SymbolWriter, src *video.Frame, refs []int, bDisplay *int, recon map[int]*video.Frame, cfg Config, qstep float64, pred []uint8) *video.Frame {
	bs := cfg.BlockSize
	rec := video.NewFrame(src.W, src.H)
	isB := bDisplay != nil
	tmp := make([]uint8, bs*bs)
	for by := 0; by < src.H; by += bs {
		for bx := 0; bx < src.W; bx += bs {
			intraMode, intraSAE := bestIntra(src, rec, bx, by, bs, pred)
			intraPred := make([]uint8, bs*bs)
			copy(intraPred, pred)

			// Motion search against every candidate reference.
			bestSingle := motionCandidate{refIdx: -1, sae: 1 << 62}
			bestFwd := motionCandidate{refIdx: -1, sae: 1 << 62}
			bestBwd := motionCandidate{refIdx: -1, sae: 1 << 62}
			for ri, rd := range refs {
				ref := recon[rd]
				c := motionSearch(src, ref, bx, by, bs, cfg.SearchRange)
				c.refIdx = ri
				if cfg.HalfPel {
					c = refineHalfPel(src, ref, bx, by, bs, c)
				}
				// Rate bias: referencing a farther candidate costs more bits
				// (larger ref index, usually larger MVs), so a distant match
				// must be clearly better to be selected. This also keeps the
				// distinct-reference count per B-frame content-dependent.
				c.sae += int64(ri) * int64(bs*bs) / 2
				if c.sae < bestSingle.sae {
					bestSingle = c
				}
				if isB {
					if rd < *bDisplay {
						if c.sae < bestFwd.sae {
							bestFwd = c
						}
					} else if c.sae < bestBwd.sae {
						bestBwd = c
					}
				}
			}

			// Bi-prediction for B-frames when both directions found a match.
			useBi := false
			var biErr int64 = 1 << 62
			if isB && bestFwd.refIdx >= 0 && bestBwd.refIdx >= 0 {
				biErr = biSAE(src, recon[refs[bestFwd.refIdx]], recon[refs[bestBwd.refIdx]], bx, by, bestFwd, bestBwd, bs)
				if biErr < bestSingle.sae {
					useBi = true
				}
			}

			interSAE := bestSingle.sae
			if useBi {
				interSAE = biErr
			}
			// Intra needs to beat inter clearly: inter blocks carry the MV
			// information the recognition side exploits, and ties favor the
			// smoother temporal prediction.
			if bestSingle.refIdx < 0 || intraSAE < interSAE {
				w.WriteUE(uint64(intraMode))
				copy(pred, intraPred)
				encodeResidual(w, src, rec, bx, by, bs, qstep, pred)
				continue
			}
			if useBi {
				w.WriteUE(uint64(modeInterBi))
				writeMV(w, bestFwd, bx, by, cfg.HalfPel)
				writeMV(w, bestBwd, bx, by, cfg.HalfPel)
				fa, fb := recon[refs[bestFwd.refIdx]], recon[refs[bestBwd.refIdx]]
				copyRefBlockHalf(fa, bestFwd.srcX, bestFwd.srcY, bestFwd.halfX, bestFwd.halfY, bs, pred)
				copyRefBlockHalf(fb, bestBwd.srcX, bestBwd.srcY, bestBwd.halfX, bestBwd.halfY, bs, tmp)
				for i := range pred {
					pred[i] = uint8((int(pred[i]) + int(tmp[i]) + 1) / 2)
				}
			} else {
				w.WriteUE(uint64(modeInter))
				writeMV(w, bestSingle, bx, by, cfg.HalfPel)
				copyRefBlockHalf(recon[refs[bestSingle.refIdx]], bestSingle.srcX, bestSingle.srcY, bestSingle.halfX, bestSingle.halfY, bs, pred)
			}
			encodeResidual(w, src, rec, bx, by, bs, qstep, pred)
		}
	}
	return rec
}

func writeMV(w SymbolWriter, c motionCandidate, bx, by int, halfPel bool) {
	w.WriteUE(uint64(c.refIdx))
	w.WriteSE(int64(c.srcX - bx))
	w.WriteSE(int64(c.srcY - by))
	if halfPel {
		w.WriteBit(uint8(c.halfX))
		w.WriteBit(uint8(c.halfY))
	}
}

// encodeResidual transforms, quantizes and entropy-codes the block residual
// (src − pred), then writes the closed-loop reconstruction into rec.
func encodeResidual(w SymbolWriter, src, rec *video.Frame, bx, by, bs int, qstep float64, pred []uint8) {
	res := make([]float64, bs*bs)
	for y := 0; y < bs; y++ {
		row := (by + y) * src.W
		for x := 0; x < bs; x++ {
			res[y*bs+x] = float64(src.Pix[row+bx+x]) - float64(pred[y*bs+x])
		}
	}
	coef := ForwardDCT(res, bs)
	levels := Quantize(coef, qstep)
	writeResidual(w, levels, bs)
	applyResidual(rec, bx, by, bs, qstep, pred, levels)
}

// applyResidual reconstructs a block from its prediction and quantized
// residual levels; shared by encoder (closed loop) and decoder.
func applyResidual(rec *video.Frame, bx, by, bs int, qstep float64, pred []uint8, levels []int32) {
	res := InverseDCT(Dequantize(levels, qstep), bs)
	for y := 0; y < bs; y++ {
		row := (by + y) * rec.W
		for x := 0; x < bs; x++ {
			v := int(math.Floor(float64(pred[y*bs+x]) + res[y*bs+x] + 0.5))
			rec.Pix[row+bx+x] = clampPix(v)
		}
	}
}

// rateControl adapts the per-frame quantization parameter toward a bits-
// per-frame target with a leaky-bucket controller. With no target it holds
// the configured QP.
type rateControl struct {
	base     int
	target   int
	fullness float64
}

func newRateControl(cfg Config) *rateControl {
	return &rateControl{base: cfg.QP, target: cfg.TargetBPF}
}

// frameQP returns the QP for the next frame.
func (r *rateControl) frameQP() int {
	if r.target <= 0 {
		return r.base
	}
	adj := int(r.fullness / (2 * float64(r.target)))
	if adj > 12 {
		adj = 12
	}
	if adj < -8 {
		adj = -8
	}
	qp := r.base + adj
	if qp < 4 {
		qp = 4
	}
	if qp > 44 {
		qp = 44
	}
	return qp
}

// observe accounts one coded frame's bits against the bucket.
func (r *rateControl) observe(bits int) {
	if r.target <= 0 {
		return
	}
	r.fullness += float64(bits - r.target)
	// The bucket leaks slowly so long-term drift dominates per-frame noise.
	r.fullness *= 0.98
}
