package codec

import "vrdann/internal/video"

// In-loop deblocking filter (H.264/H.265-style, simplified): block-edge
// pixels are smoothed when the discontinuity across the edge is small
// enough to be quantization blocking rather than real image structure. The
// filter runs inside the coding loop — the encoder's reference
// reconstructions and the decoder's output apply it identically.

// deblockAlpha returns the edge-activity threshold for a quantization
// parameter: coarser quantization produces stronger blocking, so the
// threshold grows with QP.
func deblockAlpha(qp int) int {
	a := 2 + (qp-12)/2
	if a < 2 {
		a = 2
	}
	if a > 24 {
		a = 24
	}
	return a
}

// deblockFrame filters all internal block edges of a reconstructed frame in
// place.
func deblockFrame(f *video.Frame, bs, qp int) {
	alpha := deblockAlpha(qp)
	// Vertical edges (between horizontally adjacent blocks).
	for x := bs; x < f.W; x += bs {
		for y := 0; y < f.H; y++ {
			deblockEdge(f, x-2, y, x-1, y, x, y, x+1, y, alpha)
		}
	}
	// Horizontal edges.
	for y := bs; y < f.H; y += bs {
		for x := 0; x < f.W; x++ {
			deblockEdge(f, x, y-2, x, y-1, x, y, x, y+1, alpha)
		}
	}
}

// deblockEdge filters one 4-pixel line (p1 p0 | q0 q1) across an edge.
func deblockEdge(f *video.Frame, p1x, p1y, p0x, p0y, q0x, q0y, q1x, q1y, alpha int) {
	p1 := int(f.At(p1x, p1y))
	p0 := int(f.At(p0x, p0y))
	q0 := int(f.At(q0x, q0y))
	q1 := int(f.At(q1x, q1y))
	d := p0 - q0
	if d < 0 {
		d = -d
	}
	// Only smooth small discontinuities (blocking); keep real edges. Also
	// require the inside of each block to be locally flat.
	dp := p1 - p0
	if dp < 0 {
		dp = -dp
	}
	dq := q1 - q0
	if dq < 0 {
		dq = -dq
	}
	if d == 0 || d >= alpha || dp >= alpha/2+1 || dq >= alpha/2+1 {
		return
	}
	// 4-tap smoothing across the edge.
	np0 := (p1 + 2*p0 + q0 + 2) / 4
	nq0 := (q1 + 2*q0 + p0 + 2) / 4
	f.Set(p0x, p0y, clampPix(np0))
	f.Set(q0x, q0y, clampPix(nq0))
}
