package codec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsOnCorruptStreams flips random bits in a valid stream
// and checks the decoder fails cleanly (error, not panic) or succeeds with
// consistent geometry. Codecs are classic attack surface; a parser that
// panics on malformed input is a bug.
func TestDecodeNeverPanicsOnCorruptStreams(t *testing.T) {
	v := testVideo(64, 48, 8, 1.5)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), st.Data...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			i := rng.Intn(len(data))
			data[i] ^= 1 << uint(rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			res, err := Decode(data, DecodeFull)
			if err != nil {
				return // clean failure
			}
			for d, f := range res.Frames {
				if f != nil && (f.W != res.W || f.H != res.H) {
					t.Fatalf("trial %d: frame %d geometry corrupt", trial, d)
				}
			}
		}()
	}
}

// TestDecodeNeverPanicsOnTruncation truncates the stream at every byte
// boundary in a stride and checks clean failure.
func TestDecodeNeverPanicsOnTruncation(t *testing.T) {
	v := testVideo(64, 48, 6, 1)
	st, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(st.Data); cut += 37 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: decoder panicked: %v", cut, r)
				}
			}()
			_, _ = Decode(st.Data[:cut], DecodeSideInfo)
		}()
	}
}

// TestRoundTripAcrossConfigsProperty encodes a small video under random
// valid configurations and checks the structural invariants hold: decode
// succeeds, frame types round-trip, every B-frame reference precedes it in
// decode order, and PSNR stays sane for the chosen QP.
func TestRoundTripAcrossConfigsProperty(t *testing.T) {
	v := testVideo(64, 48, 10, 1.2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			BlockSize:      []int{8, 16}[rng.Intn(2)],
			QP:             16 + rng.Intn(16),
			SearchRange:    4 + rng.Intn(8),
			SearchInterval: rng.Intn(8), // 0 = auto
			MaxBRun:        1 + rng.Intn(4),
			TargetBRatio:   []float64{0, 0.4, 0.6}[rng.Intn(3)],
			IPeriod:        2 + rng.Intn(8),
		}
		st, err := Encode(v, cfg)
		if err != nil {
			return false
		}
		res, err := Decode(st.Data, DecodeFull)
		if err != nil {
			return false
		}
		decodedAt := map[int]int{}
		for pos, d := range res.Order {
			decodedAt[d] = pos
		}
		for d, info := range res.Infos {
			if info.Type != st.Types[d] {
				return false
			}
			for _, mv := range info.MVs {
				if decodedAt[mv.Ref] >= decodedAt[d] {
					return false
				}
				if mv.BiRef && decodedAt[mv.Ref2] >= decodedAt[d] {
					return false
				}
			}
		}
		for _, fr := range res.Frames {
			if fr == nil {
				return false
			}
		}
		return psnr(v.Frames[5], res.Frames[5]) > 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBitExactDeterminism: the encoder is a pure function of its inputs.
func TestBitExactDeterminism(t *testing.T) {
	v := testVideo(64, 48, 8, 1.5)
	a, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data) != len(b.Data) {
		t.Fatal("stream lengths differ between runs")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}

// TestQualityMonotoneInQP: a finer quantizer must not reduce PSNR.
func TestQualityMonotoneInQP(t *testing.T) {
	v := testVideo(64, 48, 6, 1)
	measure := func(qp int) float64 {
		cfg := DefaultConfig()
		cfg.QP = qp
		st, err := Encode(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Decode(st.Data, DecodeFull)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for d := range res.Frames {
			s += psnr(v.Frames[d], res.Frames[d])
		}
		return s / float64(len(res.Frames))
	}
	fine, coarse := measure(16), measure(34)
	if fine <= coarse {
		t.Fatalf("QP16 PSNR %.1f should exceed QP34 PSNR %.1f", fine, coarse)
	}
}

// TestBitrateMonotoneInQP: a coarser quantizer must not grow the stream.
func TestBitrateMonotoneInQP(t *testing.T) {
	v := testVideo(64, 48, 6, 1)
	size := func(qp int) int {
		cfg := DefaultConfig()
		cfg.QP = qp
		st, err := Encode(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return len(st.Data)
	}
	if size(16) <= size(34) {
		t.Fatal("finer quantization should cost more bits")
	}
}
