package codec

// ChunkDigest hashes an encoded chunk's bytes (FNV-1a 64). It is the
// content-address of the serving layer's shared mask cache: chunks are
// independently encoded and GOP-aligned, and every engine starts a chunk
// from a fresh (or Reset, which is pinned bit-identical) decoder, so two
// chunks with equal bytes decode to identical frames and side info — equal
// digests therefore imply equal pipeline outputs for equal models. The
// digest deliberately covers the whole chunk, header included: a corrupted
// copy of popular content hashes to its own key and can never alias the
// clean entries.
func ChunkDigest(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}
