package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCTRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 8
		if sizeSel%2 == 1 {
			n = 16
		}
		rng := rand.New(rand.NewSource(seed))
		block := make([]float64, n*n)
		for i := range block {
			block[i] = rng.Float64()*255 - 128
		}
		back := InverseDCT(ForwardDCT(block, n), n)
		for i := range block {
			if math.Abs(block[i]-back[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTEnergyPreservation(t *testing.T) {
	// Orthonormal DCT preserves the L2 norm (Parseval).
	rng := rand.New(rand.NewSource(2))
	n := 8
	block := make([]float64, n*n)
	var e1 float64
	for i := range block {
		block[i] = rng.NormFloat64() * 40
		e1 += block[i] * block[i]
	}
	coef := ForwardDCT(block, n)
	var e2 float64
	for _, c := range coef {
		e2 += c * c
	}
	if math.Abs(e1-e2) > 1e-6*e1 {
		t.Fatalf("energy changed: %v -> %v", e1, e2)
	}
}

func TestDCTDCComponent(t *testing.T) {
	n := 8
	block := make([]float64, n*n)
	for i := range block {
		block[i] = 100
	}
	coef := ForwardDCT(block, n)
	if math.Abs(coef[0]-100*float64(n)) > 1e-6 {
		t.Fatalf("DC coefficient = %v, want %v", coef[0], 100*float64(n))
	}
	for i := 1; i < len(coef); i++ {
		if math.Abs(coef[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %v for flat block", i, coef[i])
		}
	}
}

func TestQStepDoublesEverySix(t *testing.T) {
	r := QStep(28) / QStep(22)
	if math.Abs(r-2) > 1e-9 {
		t.Fatalf("QStep ratio = %v, want 2", r)
	}
}

func TestQuantizeDequantizeBound(t *testing.T) {
	step := QStep(22)
	coef := []float64{0.1, -3.7, 100, -55.5}
	back := Dequantize(Quantize(coef, step), step)
	for i := range coef {
		if math.Abs(coef[i]-back[i]) > step/2+1e-9 {
			t.Fatalf("quantization error %v exceeds step/2", math.Abs(coef[i]-back[i]))
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		z := Zigzag(n)
		if len(z) != n*n {
			t.Fatalf("zigzag(%d) length %d", n, len(z))
		}
		seen := make([]bool, n*n)
		for _, idx := range z {
			if idx < 0 || idx >= n*n || seen[idx] {
				t.Fatalf("zigzag(%d) not a permutation", n)
			}
			seen[idx] = true
		}
	}
}

func TestZigzagStartsLowFrequency(t *testing.T) {
	z := Zigzag(8)
	if z[0] != 0 || z[1] != 1 || z[2] != 8 {
		t.Fatalf("zigzag head = %v, want [0 1 8 ...]", z[:3])
	}
}

func TestResidualRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		levels := make([]int32, n*n)
		// Sparse levels like a real quantized residual.
		for i := 0; i < 6; i++ {
			levels[rng.Intn(n*n)] = int32(rng.Intn(21) - 10)
		}
		w := NewBitWriter()
		writeResidual(w, levels, n)
		r := NewBitReader(w.Bytes())
		got, err := readResidual(r, n)
		if err != nil {
			return false
		}
		for i := range levels {
			if got[i] != levels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualAllZeroIsOneBit(t *testing.T) {
	w := NewBitWriter()
	writeResidual(w, make([]int32, 64), 8)
	if w.Len() != 1 {
		t.Fatalf("all-zero residual took %d bits, want 1", w.Len())
	}
}
