package segment

import (
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/video"
)

// Recon pixel codes (Sec IV-D): each reconstructed pixel holds 2 bits.
const (
	ReconBlack = 0 // 00: both references background
	ReconGrayA = 1 // 01: references disagree
	ReconGrayB = 2 // 10: references disagree
	ReconWhite = 3 // 11: both references foreground
)

// ReconMask is the 2-bit-per-pixel reconstructed segmentation of a B-frame
// (the content of a tmp_B buffer before refinement).
type ReconMask struct {
	W, H int
	Pix  []uint8 // values 0..3
}

// NewReconMask allocates an all-black reconstruction.
func NewReconMask(w, h int) *ReconMask {
	return &ReconMask{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Value returns the pixel as a fraction of foreground: 0, 0.5 or 1.
func (r *ReconMask) Value(x, y int) float32 {
	switch r.Pix[y*r.W+x] {
	case ReconBlack:
		return 0
	case ReconWhite:
		return 1
	default:
		return 0.5
	}
}

// Binary thresholds the reconstruction at 0.5 (gray counts as foreground,
// matching the mean filter's rounding of 0.5 up).
func (r *ReconMask) Binary() *video.Mask {
	m := video.NewMask(r.W, r.H)
	for i, v := range r.Pix {
		if v != ReconBlack {
			m.Pix[i] = 1
		}
	}
	return m
}

// Reconstruct builds the B-frame segmentation from the motion vectors of
// its macro-blocks and the segmentation results of its reference frames
// (Sec III-A-1). refSegs maps display index -> segmentation mask for every
// anchor the MVs reference. Blocks without a motion vector (intra-coded in
// the bitstream) fall back to the co-located block of the nearest reference.
func Reconstruct(info codec.FrameInfo, refSegs map[int]*video.Mask, w, h, blockSize int) (*ReconMask, error) {
	if info.Type != codec.BFrame {
		return nil, fmt.Errorf("segment: Reconstruct called on %v-frame %d", info.Type, info.Display)
	}
	out := NewReconMask(w, h)
	covered := make([]bool, (w/blockSize)*(h/blockSize))
	bw := w / blockSize
	for _, mv := range info.MVs {
		ref, ok := refSegs[mv.Ref]
		if !ok {
			return nil, fmt.Errorf("segment: missing reference segmentation for frame %d", mv.Ref)
		}
		if mv.BiRef {
			ref2, ok := refSegs[mv.Ref2]
			if !ok {
				return nil, fmt.Errorf("segment: missing reference segmentation for frame %d", mv.Ref2)
			}
			reconBlockBi(out, ref, ref2, mv, blockSize)
		} else {
			reconBlockSingle(out, ref, mv, blockSize)
		}
		covered[(mv.DstY/blockSize)*bw+mv.DstX/blockSize] = true
	}
	// Intra fallback: co-located copy from the nearest available reference.
	nearest := nearestRef(info, refSegs)
	if nearest != nil {
		for by := 0; by < h; by += blockSize {
			for bx := 0; bx < w; bx += blockSize {
				if covered[(by/blockSize)*bw+bx/blockSize] {
					continue
				}
				mv := codec.MotionVector{DstX: bx, DstY: by, SrcX: bx, SrcY: by}
				reconBlockSingle(out, nearest, mv, blockSize)
			}
		}
	}
	return out, nil
}

// nearestRef picks the reference segmentation temporally closest to the
// B-frame.
func nearestRef(info codec.FrameInfo, refSegs map[int]*video.Mask) *video.Mask {
	best, bestDist := -1, 1<<30
	for d := range refSegs {
		dist := d - info.Display
		if dist < 0 {
			dist = -dist
		}
		// Deterministic tie-break (maps iterate in random order): prefer the
		// earlier frame, matching the decoder's preference for past anchors.
		if dist < bestDist || (dist == bestDist && d < best) {
			best, bestDist = d, dist
		}
	}
	if best < 0 {
		return nil
	}
	return refSegs[best]
}

// reconBlockSingle copies one reference block: mask bit 0 -> 00, 1 -> 11.
func reconBlockSingle(out *ReconMask, ref *video.Mask, mv codec.MotionVector, bs int) {
	for y := 0; y < bs; y++ {
		dy := mv.DstY + y
		if dy < 0 || dy >= out.H {
			continue
		}
		for x := 0; x < bs; x++ {
			dx := mv.DstX + x
			if dx < 0 || dx >= out.W {
				continue
			}
			if ref.At(clampI(mv.SrcX+x, 0, ref.W-1), clampI(mv.SrcY+y, 0, ref.H-1)) != 0 {
				out.Pix[dy*out.W+dx] = ReconWhite
			} else {
				out.Pix[dy*out.W+dx] = ReconBlack
			}
		}
	}
}

// reconBlockBi combines two reference blocks with the paper's 2-bit mean
// filter: the two 1-bit reads are simply concatenated, so 1+1=11 (white),
// 0+0=00 (black) and disagreement yields 10/01 (gray).
func reconBlockBi(out *ReconMask, ref1, ref2 *video.Mask, mv codec.MotionVector, bs int) {
	for y := 0; y < bs; y++ {
		dy := mv.DstY + y
		if dy < 0 || dy >= out.H {
			continue
		}
		for x := 0; x < bs; x++ {
			dx := mv.DstX + x
			if dx < 0 || dx >= out.W {
				continue
			}
			b1 := ref1.At(clampI(mv.SrcX+x, 0, ref1.W-1), clampI(mv.SrcY+y, 0, ref1.H-1))
			b2 := ref2.At(clampI(mv.SrcX2+x, 0, ref2.W-1), clampI(mv.SrcY2+y, 0, ref2.H-1))
			out.Pix[dy*out.W+dx] = b1<<1 | b2
		}
	}
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
