package segment

import (
	"fmt"

	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// RefineJob is one B-frame refinement request inside a fused batch: the
// flanking anchor segmentations and the MV-reconstructed current frame.
type RefineJob struct {
	Prev *video.Mask
	Rec  *ReconMask
	Next *video.Mask
}

// BatchRefiner runs NN-S over many B-frames from different streams in one
// fused forward pass (nn.RefineNet.ForwardBatch). Like Refiner it reuses
// its input tensor across flushes and is not safe for concurrent use — the
// batching engine serializes flushes per kind.
//
// Exactly one of Net and Quant is set; Quant routes the fused forward
// through the int8 execution tier.
type BatchRefiner struct {
	Net   *nn.RefineNet
	Quant *nn.QuantRefineNet
	in    *tensor.Tensor
}

// NewBatchRefiner wraps a refinement network for fused batched inference.
func NewBatchRefiner(net *nn.RefineNet) *BatchRefiner { return &BatchRefiner{Net: net} }

// NewQuantBatchRefiner wraps an int8-compiled refinement network for fused
// batched inference on the quantized tier.
func NewQuantBatchRefiner(q *nn.QuantRefineNet) *BatchRefiner { return &BatchRefiner{Quant: q} }

// RefineBatch refines all jobs — which must share one geometry — in a
// single fused forward pass and returns one mask per job, each bitwise
// equal to Refiner.Refine on that job alone. The caller groups jobs by
// geometry; mixing sizes panics.
func (r *BatchRefiner) RefineBatch(jobs []RefineJob) []*video.Mask {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	h, w := jobs[0].Rec.H, jobs[0].Rec.W
	for _, j := range jobs[1:] {
		if j.Rec.H != h || j.Rec.W != w {
			panic(fmt.Sprintf("segment: RefineBatch geometry mix: %dx%d vs %dx%d", w, h, j.Rec.W, j.Rec.H))
		}
	}
	if r.in == nil || len(r.in.Data) != n*3*h*w {
		r.in = tensor.New(n*3, h, w)
	} else {
		r.in = r.in.Reshape(n*3, h, w)
	}
	var c *obs.Collector
	if r.Quant != nil {
		c = r.Quant.Observer()
	} else {
		c = r.Net.Observer()
	}
	t := c.Clock()
	for i, j := range jobs {
		item := tensor.FromSlice(r.in.Data[i*3*h*w:(i+1)*3*h*w], 3, h, w)
		SandwichInto(item, j.Prev, j.Rec, j.Next)
	}
	c.Span(obs.StageSandwich, -1, obs.KindNone, t)
	var logits *tensor.Tensor
	if r.Quant != nil {
		logits = r.Quant.ForwardBatchQuant(r.in, n)
	} else {
		logits = r.Net.ForwardBatch(r.in, n)
	}
	masks := make([]*video.Mask, n)
	for i := range jobs {
		m := video.NewMask(w, h)
		for p, v := range logits.Data[i*h*w : (i+1)*h*w] {
			if v > 0 {
				m.Pix[p] = 1
			}
		}
		masks[i] = m
	}
	return masks
}

// BatchSegmenter is implemented by Segmenters that can process several
// frames in one fused call. The batching engine uses it when available and
// falls back to per-frame Segment otherwise.
type BatchSegmenter interface {
	Segmenter
	// SegmentBatch segments frames[i] (displayed at displays[i]) for each i,
	// returning one mask per frame, each identical to Segment on that frame
	// alone.
	SegmentBatch(frames []*video.Frame, displays []int) []*video.Mask
}

// SegmentBatch implements BatchSegmenter. Otsu thresholding is per-frame
// by nature, so the fused form is a loop — the win for NN-L batching is in
// coalescing scheduler wakeups, not kernel fusion.
func (s *ThresholdSegmenter) SegmentBatch(frames []*video.Frame, displays []int) []*video.Mask {
	masks := make([]*video.Mask, len(frames))
	for i, f := range frames {
		masks[i] = s.Segment(f, displays[i])
	}
	return masks
}
