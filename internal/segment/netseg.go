package segment

import (
	"vrdann/internal/nn"
	"vrdann/internal/video"
)

// NetSegmenter runs a trained Go network (the pure-Go NN-L) as a Segmenter.
type NetSegmenter struct {
	Label string
	Net   nn.Layer
}

// Name implements Segmenter.
func (n *NetSegmenter) Name() string { return n.Label }

// Segment implements Segmenter.
func (n *NetSegmenter) Segment(f *video.Frame, _ int) *video.Mask {
	logits := n.Net.Forward(FrameToTensor(f))
	m := video.NewMask(f.W, f.H)
	for i, v := range logits.Data {
		if v > 0 {
			m.Pix[i] = 1
		}
	}
	return m
}

var _ Segmenter = (*NetSegmenter)(nil)
var _ Segmenter = (*Oracle)(nil)
