package segment

import "vrdann/internal/video"

// labelComponents assigns a positive label to every 4-connected foreground
// component and returns the label map plus per-label sizes (sizes[l-1]).
func labelComponents(m *video.Mask) ([]int32, []int) {
	labels := make([]int32, len(m.Pix))
	var sizes []int
	var stack []int
	next := int32(0)
	for i, v := range m.Pix {
		if v == 0 || labels[i] != 0 {
			continue
		}
		next++
		size := 0
		stack = append(stack[:0], i)
		labels[i] = next
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			x, y := j%m.W, j/m.W
			for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				nx, ny := nb[0], nb[1]
				if nx < 0 || ny < 0 || nx >= m.W || ny >= m.H {
					continue
				}
				k := ny*m.W + nx
				if m.Pix[k] != 0 && labels[k] == 0 {
					labels[k] = next
					stack = append(stack, k)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// LargestComponent returns a mask containing only the largest 4-connected
// foreground component of m. It is used to suppress stray reconstructed
// blocks before deriving a detection box from a propagated mask.
func LargestComponent(m *video.Mask) *video.Mask {
	labels, sizes := labelComponents(m)
	out := video.NewMask(m.W, m.H)
	if len(sizes) == 0 {
		return out
	}
	best := int32(1)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[best-1] {
			best = int32(i + 1)
		}
	}
	for i, l := range labels {
		if l == best {
			out.Pix[i] = 1
		}
	}
	return out
}

// ComponentBoxes returns the bounding boxes of every 4-connected foreground
// component whose area is at least minArea pixels, in label order.
func ComponentBoxes(m *video.Mask, minArea int) []video.Rect {
	labels, sizes := labelComponents(m)
	boxes := make([]video.Rect, len(sizes))
	init := make([]bool, len(sizes))
	for i, l := range labels {
		if l == 0 {
			continue
		}
		x, y := i%m.W, i/m.W
		k := int(l) - 1
		if !init[k] {
			boxes[k] = video.Rect{X0: x, Y0: y, X1: x + 1, Y1: y + 1}
			init[k] = true
			continue
		}
		if x < boxes[k].X0 {
			boxes[k].X0 = x
		}
		if y < boxes[k].Y0 {
			boxes[k].Y0 = y
		}
		if x+1 > boxes[k].X1 {
			boxes[k].X1 = x + 1
		}
		if y+1 > boxes[k].Y1 {
			boxes[k].Y1 = y + 1
		}
	}
	var out []video.Rect
	for k, s := range sizes {
		if s >= minArea {
			out = append(out, boxes[k])
		}
	}
	return out
}
