package segment

import "vrdann/internal/video"

// ThresholdSegmenter is a self-contained, model-free NN-L stand-in for
// deployments with no ground truth and no trained network (the vrserve
// default): Otsu's threshold splits the luma histogram, the smaller-area
// side is taken as foreground, and a morphological close plus
// largest-component pass removes speckle. It is stateless and
// deterministic, so it is safe to share across sessions and its output is
// reproducible across runs — the property the serving layer's
// bit-identical contract rests on.
type ThresholdSegmenter struct {
	// CloseRadius is the structuring radius of the despeckle close
	// (0 disables it).
	CloseRadius int
}

// Name implements Segmenter.
func (s *ThresholdSegmenter) Name() string { return "threshold-otsu" }

// Segment implements Segmenter.
func (s *ThresholdSegmenter) Segment(f *video.Frame, _ int) *video.Mask {
	var hist [256]int
	for _, px := range f.Pix {
		hist[px]++
	}
	th := otsu(hist[:], len(f.Pix))
	m := video.NewMask(f.W, f.H)
	fg := 0
	for i, px := range f.Pix {
		if int(px) > th {
			m.Pix[i] = 1
			fg++
		}
	}
	// Foreground is the minority class: if the bright side dominates the
	// frame, the object is the dark side.
	if fg*2 > len(f.Pix) {
		for i := range m.Pix {
			m.Pix[i] ^= 1
		}
	}
	if s.CloseRadius > 0 {
		m = Close(m, s.CloseRadius)
	}
	return LargestComponent(m)
}

// otsu returns the threshold maximizing between-class variance over a
// 256-bin histogram of total samples.
func otsu(hist []int, total int) int {
	if total == 0 {
		return 127
	}
	var sum float64
	for v, n := range hist {
		sum += float64(v) * float64(n)
	}
	var sumB, wB float64
	best, bestVar := 127, -1.0
	for v, n := range hist {
		wB += float64(n)
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(v) * float64(n)
		mB := sumB / wB
		mF := (sum - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			best = v
		}
	}
	return best
}
