package segment

import "vrdann/internal/video"

// Morphological operators on binary masks with a square structuring
// element of radius r (Chebyshev). They support post-processing of
// reconstructed segmentations (hole filling, despeckling) and test
// fixtures for the boundary-error models.

// Dilate grows the foreground by r pixels.
func Dilate(m *video.Mask, r int) *video.Mask {
	if r <= 0 {
		return m.Clone()
	}
	// Separable: horizontal then vertical max-filter.
	tmp := video.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			for dx := -r; dx <= r; dx++ {
				if m.At(x+dx, y) != 0 {
					tmp.Pix[y*m.W+x] = 1
					break
				}
			}
		}
	}
	out := video.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			for dy := -r; dy <= r; dy++ {
				if tmp.At(x, y+dy) != 0 {
					out.Pix[y*m.W+x] = 1
					break
				}
			}
		}
	}
	return out
}

// Erode shrinks the foreground by r pixels (out-of-frame counts as
// background, so objects touching the border erode from the border too).
func Erode(m *video.Mask, r int) *video.Mask {
	if r <= 0 {
		return m.Clone()
	}
	tmp := video.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			keep := uint8(1)
			for dx := -r; dx <= r; dx++ {
				if m.At(x+dx, y) == 0 {
					keep = 0
					break
				}
			}
			tmp.Pix[y*m.W+x] = keep
		}
	}
	out := video.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			keep := uint8(1)
			for dy := -r; dy <= r; dy++ {
				if tmp.At(x, y+dy) == 0 {
					keep = 0
					break
				}
			}
			out.Pix[y*m.W+x] = keep
		}
	}
	return out
}

// Open erodes then dilates: removes speckles smaller than the element.
func Open(m *video.Mask, r int) *video.Mask {
	return Dilate(Erode(m, r), r)
}

// Close dilates then erodes: fills gaps and holes smaller than the element.
func Close(m *video.Mask, r int) *video.Mask {
	return Erode(Dilate(m, r), r)
}

// FillHoles sets all background regions not connected to the frame border
// to foreground — the standard hole-filling post-process.
func FillHoles(m *video.Mask) *video.Mask {
	// Flood-fill background from the border; anything not reached is a hole.
	reached := make([]bool, len(m.Pix))
	var stack []int
	push := func(x, y int) {
		if x < 0 || y < 0 || x >= m.W || y >= m.H {
			return
		}
		i := y*m.W + x
		if !reached[i] && m.Pix[i] == 0 {
			reached[i] = true
			stack = append(stack, i)
		}
	}
	for x := 0; x < m.W; x++ {
		push(x, 0)
		push(x, m.H-1)
	}
	for y := 0; y < m.H; y++ {
		push(0, y)
		push(m.W-1, y)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := i%m.W, i/m.W
		push(x-1, y)
		push(x+1, y)
		push(x, y-1)
		push(x, y+1)
	}
	out := video.NewMask(m.W, m.H)
	for i := range m.Pix {
		if m.Pix[i] != 0 || !reached[i] {
			out.Pix[i] = 1
		}
	}
	return out
}
