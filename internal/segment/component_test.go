package segment

import (
	"math"
	"testing"

	"vrdann/internal/video"
)

func TestLargestComponentPicksBiggest(t *testing.T) {
	m := video.NewMask(20, 20)
	// Big blob.
	for y := 2; y < 10; y++ {
		for x := 2; x < 10; x++ {
			m.Set(x, y, 1)
		}
	}
	// Small blob.
	m.Set(15, 15, 1)
	m.Set(16, 15, 1)
	out := LargestComponent(m)
	if out.Area() != 64 {
		t.Fatalf("largest area %d, want 64", out.Area())
	}
	if out.At(15, 15) != 0 {
		t.Fatal("small blob survived")
	}
}

func TestLargestComponentEmptyMask(t *testing.T) {
	out := LargestComponent(video.NewMask(8, 8))
	if out.Area() != 0 {
		t.Fatal("empty mask must stay empty")
	}
}

func TestLargestComponentDiagonalNotConnected(t *testing.T) {
	// 4-connectivity: diagonal neighbors are separate components.
	m := video.NewMask(4, 4)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	m.Set(2, 2, 1)
	out := LargestComponent(m)
	if out.Area() != 1 {
		t.Fatalf("diagonal pixels merged: area %d", out.Area())
	}
}

func TestComponentBoxes(t *testing.T) {
	m := video.NewMask(24, 16)
	for y := 1; y < 5; y++ {
		for x := 1; x < 7; x++ {
			m.Set(x, y, 1)
		}
	}
	for y := 8; y < 12; y++ {
		for x := 14; x < 20; x++ {
			m.Set(x, y, 1)
		}
	}
	m.Set(22, 14, 1) // tiny speck below minArea
	boxes := ComponentBoxes(m, 5)
	if len(boxes) != 2 {
		t.Fatalf("got %d boxes, want 2", len(boxes))
	}
	if boxes[0] != (video.Rect{X0: 1, Y0: 1, X1: 7, Y1: 5}) {
		t.Fatalf("box 0 = %v", boxes[0])
	}
	if boxes[1] != (video.Rect{X0: 14, Y0: 8, X1: 20, Y1: 12}) {
		t.Fatalf("box 1 = %v", boxes[1])
	}
	if got := ComponentBoxes(m, 1); len(got) != 3 {
		t.Fatalf("minArea 1 should keep the speck: %d boxes", len(got))
	}
}

func TestSeqScoreEmptyMeanIsNaN(t *testing.T) {
	var s SeqScore
	f, j := s.Mean()
	if !math.IsNaN(f) || !math.IsNaN(j) {
		t.Fatal("empty accumulator must return NaN")
	}
}

func TestOracleName(t *testing.T) {
	o := NewOracle("label", nil, 0, 0, 1)
	if o.Name() != "label" {
		t.Fatal("Name mismatch")
	}
}
