package segment

import "vrdann/internal/video"

// Residual-driven sparsity. The decoder surfaces one residual-energy value
// per macro-block (codec.FrameInfo.BlockEnergy): zero means the encoder's
// motion-compensated prediction of the block was bit-exact at the coding QP,
// so the MV-reconstructed segmentation (which moves mask pixels by exactly
// those vectors) is as trustworthy there as it ever gets, and NN-S
// refinement buys nothing. Skipping those blocks — and shrinking refinement
// to the bounding rectangle of the rest — is the paper's agent-style work
// elimination read through the bitstream: the encoder already told us where
// the video changed in ways motion cannot explain.

// DirtyRect is a pixel-space rectangle [X0,X1)×[Y0,Y1) covering every block
// whose residual survived the skip threshold, expanded by a halo and
// even-aligned so it can flow through NN-S's pool/upsample pair unchanged.
type DirtyRect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether the rect covers no pixels (every block was clean).
func (r DirtyRect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// W returns the rect width in pixels.
func (r DirtyRect) W() int { return r.X1 - r.X0 }

// H returns the rect height in pixels.
func (r DirtyRect) H() int { return r.Y1 - r.Y0 }

// Full reports whether the rect covers the whole w×h frame.
func (r DirtyRect) Full(w, h int) bool {
	return r.X0 <= 0 && r.Y0 <= 0 && r.X1 >= w && r.Y1 >= h
}

// ResidualHalo is the default halo in pixels around dirty blocks. NN-S's
// receptive field is 3×3 → pool → 3×3 → upsample → 3×3, i.e. roughly ±7
// input pixels can influence an output pixel; an 8-pixel halo (one H.265
// block) covers it, so pixels inside the crop see the same neighborhood the
// full-frame forward would give them almost everywhere.
const ResidualHalo = 8

// ResidualDirtyRect scans a frame's per-block residual energies and returns
// the even-sized, halo-expanded bounding rectangle of the dirty blocks plus
// the dirty and total block counts. A block is dirty when its energy
// exceeds threshold or carries the -1 intra sentinel. The energies must be
// in raster order over ceil(w/bs)×ceil(h/bs) blocks; a slice of any other
// length (including nil, e.g. a stream encoded before this field existed)
// conservatively marks the whole frame for refinement and reports
// known == false — the blocks were never judged, so callers must count
// them as unknown, not dirty, or skip-rate dashboards read a pre-field
// bitstream as 100% motion-miss.
func ResidualDirtyRect(energy []int32, w, h, blockSize, threshold, halo int) (r DirtyRect, dirty, total int, known bool) {
	bw := (w + blockSize - 1) / blockSize
	bh := (h + blockSize - 1) / blockSize
	total = bw * bh
	if len(energy) != total {
		return DirtyRect{0, 0, w, h}, 0, total, false
	}
	minX, minY := w, h
	maxX, maxY := 0, 0
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			e := energy[by*bw+bx]
			if e >= 0 && e <= int32(threshold) {
				continue
			}
			dirty++
			if x := bx * blockSize; x < minX {
				minX = x
			}
			if y := by * blockSize; y < minY {
				minY = y
			}
			if x := (bx + 1) * blockSize; x > maxX {
				maxX = x
			}
			if y := (by + 1) * blockSize; y > maxY {
				maxY = y
			}
		}
	}
	if dirty == 0 {
		return DirtyRect{}, 0, total, true
	}
	r = DirtyRect{
		X0: clampLo(minX-halo) &^ 1,
		Y0: clampLo(minY-halo) &^ 1,
		X1: clampHi(maxX+halo, w),
		Y1: clampHi(maxY+halo, h),
	}
	// Round the far edges up to even (the near edges rounded down above), so
	// the crop keeps the even geometry NN-S's pooling requires.
	r.X1 = (r.X1 + 1) &^ 1
	r.Y1 = (r.Y1 + 1) &^ 1
	if r.X1 > w {
		r.X1 = w
	}
	if r.Y1 > h {
		r.Y1 = h
	}
	// On an odd frame dimension the clamp above lands the far edge back on
	// the odd frame edge, leaving an odd span (the near edge is even). An
	// odd crop would not survive NN-S's pool/upsample round trip, so re-even
	// the span by pulling the near edge out; if the span is pinned to both
	// edges of an odd axis no even crop can cover it — degrade to the full
	// frame, which callers route through the uncropped refine path.
	if r.W()&1 == 1 {
		if r.X0 > 0 {
			r.X0--
		} else {
			return DirtyRect{0, 0, w, h}, dirty, total, true
		}
	}
	if r.H()&1 == 1 {
		if r.Y0 > 0 {
			r.Y0--
		} else {
			return DirtyRect{0, 0, w, h}, dirty, total, true
		}
	}
	return r, dirty, total, true
}

func clampLo(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

func clampHi(v, hi int) int {
	if v > hi {
		return hi
	}
	return v
}

// Crop copies the rect of the reconstruction into a new, smaller ReconMask.
func (r *ReconMask) Crop(rc DirtyRect) *ReconMask {
	out := NewReconMask(rc.W(), rc.H())
	for y := rc.Y0; y < rc.Y1; y++ {
		copy(out.Pix[(y-rc.Y0)*out.W:], r.Pix[y*r.W+rc.X0:y*r.W+rc.X1])
	}
	return out
}

// CropMask copies the rect of a binary mask into a new, smaller mask.
func CropMask(m *video.Mask, rc DirtyRect) *video.Mask {
	out := video.NewMask(rc.W(), rc.H())
	for y := rc.Y0; y < rc.Y1; y++ {
		copy(out.Pix[(y-rc.Y0)*out.W:], m.Pix[y*m.W+rc.X0:y*m.W+rc.X1])
	}
	return out
}

// PasteMask composites src over dst with src's top-left at (x0, y0) —
// the write-back half of refine-only-the-dirty-rect.
func PasteMask(dst, src *video.Mask, x0, y0 int) {
	for y := 0; y < src.H; y++ {
		copy(dst.Pix[(y0+y)*dst.W+x0:], src.Pix[y*src.W:(y+1)*src.W])
	}
}
