package segment

import (
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// Sandwich builds the three-channel NN-S input of Sec III-A-2: channel 0 is
// the segmentation of the immediately preceding reference frame, channel 1
// the 2-bit reconstruction of the current B-frame (as 0/0.5/1 values), and
// channel 2 the segmentation of the immediately following reference frame.
func Sandwich(prev *video.Mask, recon *ReconMask, next *video.Mask) *tensor.Tensor {
	x := tensor.New(3, recon.H, recon.W)
	SandwichInto(x, prev, recon, next)
	return x
}

// SandwichInto is Sandwich writing into a caller-owned [3, H, W] tensor;
// every element is overwritten, so the buffer needs no zeroing between
// frames.
func SandwichInto(x *tensor.Tensor, prev *video.Mask, recon *ReconMask, next *video.Mask) {
	w, h := recon.W, recon.H
	plane := h * w
	for y := 0; y < h; y++ {
		for xx := 0; xx < w; xx++ {
			i := y*w + xx
			x.Data[i] = float32(prev.Pix[i])
			x.Data[plane+i] = recon.Value(xx, y)
			x.Data[2*plane+i] = float32(next.Pix[i])
		}
	}
}

// Refiner runs NN-S over a sequence of B-frames, reusing the sandwich
// input tensor across invocations so steady-state refinement allocates
// only the output mask. A Refiner is not safe for concurrent use (the
// network caches forward-pass activations); concurrent pipelines hold one
// Refiner per worker over a Clone of the network.
//
// Exactly one of Net and Quant is set: Net runs float inference, Quant the
// int8 execution tier (same decisions gated on F-score, not bit identity).
type Refiner struct {
	Net   *nn.RefineNet
	Quant *nn.QuantRefineNet
	in    *tensor.Tensor
}

// NewRefiner wraps a refinement network with a reusable input buffer.
func NewRefiner(net *nn.RefineNet) *Refiner { return &Refiner{Net: net} }

// NewQuantRefiner wraps an int8-compiled refinement network; Refine runs
// the quantized tier instead of float.
func NewQuantRefiner(q *nn.QuantRefineNet) *Refiner { return &Refiner{Quant: q} }

// observer returns whichever network's collector is attached.
func (r *Refiner) observer() *obs.Collector {
	if r.Quant != nil {
		return r.Quant.Observer()
	}
	return r.Net.Observer()
}

// Refine runs NN-S on the sandwich of (prev, recon, next) and returns the
// refined binary segmentation of the B-frame.
func (r *Refiner) Refine(prev *video.Mask, recon *ReconMask, next *video.Mask) *video.Mask {
	if r.in == nil || r.in.Shape[1] != recon.H || r.in.Shape[2] != recon.W {
		r.in = tensor.New(3, recon.H, recon.W)
	}
	c := r.observer()
	t := c.Clock()
	SandwichInto(r.in, prev, recon, next)
	c.Span(obs.StageSandwich, -1, obs.KindNone, t)
	var logits *tensor.Tensor
	if r.Quant != nil {
		logits = r.Quant.ForwardQuant(r.in)
	} else {
		logits = r.Net.Forward(r.in)
	}
	m := video.NewMask(recon.W, recon.H)
	for i, v := range logits.Data {
		if v > 0 {
			m.Pix[i] = 1
		}
	}
	return m
}

// Refine runs NN-S on the sandwich input and returns the refined binary
// segmentation of the B-frame. One-shot form of Refiner.Refine.
func Refine(net *nn.RefineNet, prev *video.Mask, recon *ReconMask, next *video.Mask) *video.Mask {
	return NewRefiner(net).Refine(prev, recon, next)
}

// MaskToTensor converts a binary mask to a [1,H,W] tensor.
func MaskToTensor(m *video.Mask) *tensor.Tensor {
	t := tensor.New(1, m.H, m.W)
	for i, v := range m.Pix {
		t.Data[i] = float32(v)
	}
	return t
}

// FrameToTensor converts a luma frame to a [1,H,W] tensor scaled to [0,1].
func FrameToTensor(f *video.Frame) *tensor.Tensor {
	t := tensor.New(1, f.H, f.W)
	for i, v := range f.Pix {
		t.Data[i] = float32(v) / 255
	}
	return t
}
