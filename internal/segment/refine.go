package segment

import (
	"vrdann/internal/nn"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// Sandwich builds the three-channel NN-S input of Sec III-A-2: channel 0 is
// the segmentation of the immediately preceding reference frame, channel 1
// the 2-bit reconstruction of the current B-frame (as 0/0.5/1 values), and
// channel 2 the segmentation of the immediately following reference frame.
func Sandwich(prev *video.Mask, recon *ReconMask, next *video.Mask) *tensor.Tensor {
	w, h := recon.W, recon.H
	x := tensor.New(3, h, w)
	plane := h * w
	for y := 0; y < h; y++ {
		for xx := 0; xx < w; xx++ {
			i := y*w + xx
			x.Data[i] = float32(prev.Pix[i])
			x.Data[plane+i] = recon.Value(xx, y)
			x.Data[2*plane+i] = float32(next.Pix[i])
		}
	}
	return x
}

// Refine runs NN-S on the sandwich input and returns the refined binary
// segmentation of the B-frame.
func Refine(net *nn.RefineNet, prev *video.Mask, recon *ReconMask, next *video.Mask) *video.Mask {
	logits := net.Forward(Sandwich(prev, recon, next))
	m := video.NewMask(recon.W, recon.H)
	for i, v := range logits.Data {
		if v > 0 {
			m.Pix[i] = 1
		}
	}
	return m
}

// MaskToTensor converts a binary mask to a [1,H,W] tensor.
func MaskToTensor(m *video.Mask) *tensor.Tensor {
	t := tensor.New(1, m.H, m.W)
	for i, v := range m.Pix {
		t.Data[i] = float32(v)
	}
	return t
}

// FrameToTensor converts a luma frame to a [1,H,W] tensor scaled to [0,1].
func FrameToTensor(f *video.Frame) *tensor.Tensor {
	t := tensor.New(1, f.H, f.W)
	for i, v := range f.Pix {
		t.Data[i] = float32(v) / 255
	}
	return t
}
