package segment

import (
	"testing"

	"vrdann/internal/video"
)

func TestThresholdSegmenterFindsBrightObject(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "th-test", W: 64, H: 48, Frames: 4, Seed: 3, Noise: 1.0,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 30, Y: 24,
			VX: 1, Intensity: 230, Foreground: true,
		}},
	})
	s := &ThresholdSegmenter{CloseRadius: 1}
	for d, f := range v.Frames {
		m := s.Segment(f, d)
		var sc SeqScore
		sc.Add(m, v.Masks[d])
		fScore, j := sc.Mean()
		if j < 0.5 {
			t.Fatalf("frame %d: region J = %.3f (F=%.3f), threshold segmenter lost the object", d, j, fScore)
		}
	}
}

func TestThresholdSegmenterDeterministic(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "th-det", W: 48, H: 32, Frames: 1, Seed: 9, Noise: 2,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 8, X: 20, Y: 16, Intensity: 220, Foreground: true,
		}},
	})
	a := (&ThresholdSegmenter{CloseRadius: 1}).Segment(v.Frames[0], 0)
	b := (&ThresholdSegmenter{CloseRadius: 1}).Segment(v.Frames[0], 0)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("two instances diverge on identical input")
		}
	}
}

func TestOtsuDegenerate(t *testing.T) {
	if th := otsu(make([]int, 256), 0); th != 127 {
		t.Fatalf("empty histogram threshold = %d", th)
	}
	hist := make([]int, 256)
	hist[40] = 100
	if th := otsu(hist, 100); th < 0 || th > 255 {
		t.Fatalf("single-bin threshold = %d", th)
	}
}
