package segment

import (
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/video"
)

func benchReconSetup(b *testing.B) (codec.FrameInfo, map[int]*video.Mask) {
	b.Helper()
	const w, h, bs = 96, 64, 8
	ref := video.NewMask(w, h)
	for y := 16; y < 48; y++ {
		for x := 24; x < 64; x++ {
			ref.Set(x, y, 1)
		}
	}
	info := codec.FrameInfo{Display: 1, Type: codec.BFrame}
	for by := 0; by < h; by += bs {
		for bx := 0; bx < w; bx += bs {
			info.MVs = append(info.MVs, codec.MotionVector{
				DstX: bx, DstY: by, Ref: 0, SrcX: bx - 2, SrcY: by + 1,
				BiRef: bx%16 == 0, Ref2: 4, SrcX2: bx + 1, SrcY2: by - 1,
			})
			info.Blocks++
		}
	}
	return info, map[int]*video.Mask{0: ref, 4: ref}
}

func BenchmarkReconstruct(b *testing.B) {
	info, refs := benchReconSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(info, refs, 96, 64, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundaryFScore(b *testing.B) {
	m := video.NewMask(96, 64)
	g := video.NewMask(96, 64)
	for y := 10; y < 50; y++ {
		for x := 10; x < 80; x++ {
			m.Set(x, y, 1)
			g.Set(x+1, y, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoundaryFScore(m, g, 1)
	}
}

func BenchmarkOracleSegment(b *testing.B) {
	gt := video.NewMask(96, 64)
	for y := 16; y < 48; y++ {
		for x := 24; x < 64; x++ {
			gt.Set(x, y, 1)
		}
	}
	o := NewOracle("bench", []*video.Mask{gt}, 0.05, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Segment(nil, 0)
	}
}
