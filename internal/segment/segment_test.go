package segment

import (
	"math"
	"math/rand"
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/video"
)

func squareMask(w, h, x0, y0, size int) *video.Mask {
	m := video.NewMask(w, h)
	for y := y0; y < y0+size; y++ {
		for x := x0; x < x0+size; x++ {
			m.Set(x, y, 1)
		}
	}
	return m
}

func TestIoUPerfectAndDisjoint(t *testing.T) {
	a := squareMask(16, 16, 2, 2, 6)
	if IoU(a, a) != 1 {
		t.Fatal("self IoU must be 1")
	}
	b := squareMask(16, 16, 10, 10, 4)
	if IoU(a, b) != 0 {
		t.Fatal("disjoint IoU must be 0")
	}
	if IoU(video.NewMask(8, 8), video.NewMask(8, 8)) != 1 {
		t.Fatal("empty vs empty must be 1")
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	a := squareMask(16, 16, 0, 0, 4) // 16 px
	b := squareMask(16, 16, 2, 0, 4) // overlap 8, union 24
	if got := IoU(a, b); math.Abs(got-8.0/24.0) > 1e-12 {
		t.Fatalf("IoU = %v, want 1/3", got)
	}
}

func TestPixelFScore(t *testing.T) {
	a := squareMask(16, 16, 0, 0, 4)
	if PixelFScore(a, a) != 1 {
		t.Fatal("self F must be 1")
	}
	b := squareMask(16, 16, 8, 8, 4)
	if PixelFScore(a, b) != 0 {
		t.Fatal("disjoint F must be 0")
	}
	// pred covers half the gt exactly: precision 1, recall 0.5 -> F = 2/3.
	gt := squareMask(16, 16, 0, 0, 4)
	pred := video.NewMask(16, 16)
	for y := 0; y < 2; y++ {
		for x := 0; x < 4; x++ {
			pred.Set(x, y, 1)
		}
	}
	if got := PixelFScore(pred, gt); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F = %v, want 2/3", got)
	}
}

func TestBoundaryFScoreToleratesSmallShift(t *testing.T) {
	gt := squareMask(32, 32, 8, 8, 10)
	shifted := squareMask(32, 32, 9, 8, 10)
	if got := BoundaryFScore(shifted, gt, 2); got < 0.99 {
		t.Fatalf("1-px shift within tolerance should score ~1, got %v", got)
	}
	far := squareMask(32, 32, 20, 20, 10)
	if got := BoundaryFScore(far, gt, 2); got > 0.3 {
		t.Fatalf("distant object should score low, got %v", got)
	}
}

func TestSeqScoreAggregates(t *testing.T) {
	var s SeqScore
	a := squareMask(16, 16, 2, 2, 6)
	s.Add(a, a)
	s.Add(a, a)
	f, j := s.Mean()
	if f != 1 || j != 1 {
		t.Fatalf("Mean = %v,%v", f, j)
	}
}

func TestReconMaskValueAndBinary(t *testing.T) {
	r := NewReconMask(2, 2)
	r.Pix = []uint8{ReconBlack, ReconGrayA, ReconGrayB, ReconWhite}
	if r.Value(0, 0) != 0 || r.Value(1, 0) != 0.5 || r.Value(0, 1) != 0.5 || r.Value(1, 1) != 1 {
		t.Fatal("2-bit value mapping wrong")
	}
	b := r.Binary()
	want := []uint8{0, 1, 1, 1}
	for i := range want {
		if b.Pix[i] != want[i] {
			t.Fatalf("binary[%d] = %d, want %d", i, b.Pix[i], want[i])
		}
	}
}

// fakeBInfo builds a synthetic B-frame FrameInfo with one MV per block.
func fakeBInfo(display, w, h, bs int, mv func(bx, by int) codec.MotionVector) codec.FrameInfo {
	info := codec.FrameInfo{Display: display, Type: codec.BFrame}
	for by := 0; by < h; by += bs {
		for bx := 0; bx < w; bx += bs {
			info.MVs = append(info.MVs, mv(bx, by))
			info.Blocks++
		}
	}
	return info
}

func TestReconstructPureTranslation(t *testing.T) {
	// Reference mask has a square at x=8; all MVs point 8 px left in the
	// reference, so the reconstruction shows the square moved 8 px right.
	// (Blocks whose source lands off-frame read edge-clamped background,
	// mirroring the codec's pixel prediction.)
	const w, h, bs = 32, 32, 8
	ref := squareMask(w, h, 8, 8, 8)
	info := fakeBInfo(1, w, h, bs, func(bx, by int) codec.MotionVector {
		return codec.MotionVector{DstX: bx, DstY: by, Ref: 0, SrcX: bx - 8, SrcY: by}
	})
	rec, err := Reconstruct(info, map[int]*video.Mask{0: ref}, w, h, bs)
	if err != nil {
		t.Fatal(err)
	}
	got := rec.Binary()
	want := squareMask(w, h, 16, 8, 8)
	if IoU(got, want) != 1 {
		t.Fatalf("translated reconstruction IoU = %v", IoU(got, want))
	}
}

func TestReconstructBiRefMeanFilter(t *testing.T) {
	const w, h, bs = 8, 8, 8
	white := video.NewMask(w, h)
	for i := range white.Pix {
		white.Pix[i] = 1
	}
	black := video.NewMask(w, h)
	info := codec.FrameInfo{Display: 1, Type: codec.BFrame, Blocks: 1, MVs: []codec.MotionVector{{
		DstX: 0, DstY: 0, Ref: 0, SrcX: 0, SrcY: 0,
		BiRef: true, Ref2: 2, SrcX2: 0, SrcY2: 0,
	}}}
	rec, err := Reconstruct(info, map[int]*video.Mask{0: white, 2: black}, w, h, bs)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rec.Pix {
		if v != ReconGrayB { // 1<<1 | 0 = 10
			t.Fatalf("bi-ref disagreement pixel = %d, want gray (2)", v)
		}
	}
	// Agreement cases.
	info.MVs[0].Ref2 = 0
	rec, err = Reconstruct(info, map[int]*video.Mask{0: white}, w, h, bs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pix[0] != ReconWhite {
		t.Fatalf("white+white = %d, want 3", rec.Pix[0])
	}
}

func TestReconstructIntraFallbackUsesNearestRef(t *testing.T) {
	const w, h, bs = 16, 16, 8
	near := squareMask(w, h, 0, 0, 16)                      // all-white nearest ref (display 2)
	far := video.NewMask(w, h)                              // black far ref (display 8)
	info := codec.FrameInfo{Display: 3, Type: codec.BFrame} // no MVs at all
	rec, err := Reconstruct(info, map[int]*video.Mask{2: near, 8: far}, w, h, bs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Binary().Area() != w*h {
		t.Fatal("intra fallback should copy the nearest (white) reference")
	}
}

func TestReconstructRejectsNonBFrame(t *testing.T) {
	info := codec.FrameInfo{Type: codec.IFrame}
	if _, err := Reconstruct(info, nil, 8, 8, 8); err == nil {
		t.Fatal("expected error for non-B frame")
	}
}

func TestReconstructMissingRefErrors(t *testing.T) {
	info := codec.FrameInfo{Display: 1, Type: codec.BFrame, MVs: []codec.MotionVector{{Ref: 5}}}
	if _, err := Reconstruct(info, map[int]*video.Mask{}, 8, 8, 8); err == nil {
		t.Fatal("expected error for missing reference segmentation")
	}
}

func TestSandwichLayout(t *testing.T) {
	prev := squareMask(4, 4, 0, 0, 4)
	next := video.NewMask(4, 4)
	rec := NewReconMask(4, 4)
	rec.Pix[0] = ReconGrayA
	rec.Pix[1] = ReconWhite
	x := Sandwich(prev, rec, next)
	if x.Shape[0] != 3 || x.Shape[1] != 4 || x.Shape[2] != 4 {
		t.Fatalf("sandwich shape %v", x.Shape)
	}
	if x.At(0, 0, 0) != 1 {
		t.Fatal("channel 0 must be prev mask")
	}
	if x.At(1, 0, 0) != 0.5 || x.At(1, 0, 1) != 1 {
		t.Fatal("channel 1 must be the 0/0.5/1 reconstruction")
	}
	if x.At(2, 0, 0) != 0 {
		t.Fatal("channel 2 must be next mask")
	}
}

func TestRefineProducesBinaryMask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewRefineNet(rng, 4)
	prev := squareMask(8, 8, 2, 2, 4)
	next := squareMask(8, 8, 3, 2, 4)
	rec := NewReconMask(8, 8)
	m := Refine(net, prev, rec, next)
	if m.W != 8 || m.H != 8 {
		t.Fatalf("refined mask geometry %dx%d", m.W, m.H)
	}
	for _, v := range m.Pix {
		if v > 1 {
			t.Fatal("mask must be binary")
		}
	}
}

func TestOracleStrengthZeroIsGroundTruth(t *testing.T) {
	gt := []*video.Mask{squareMask(16, 16, 4, 4, 6)}
	o := NewOracle("perfect", gt, 0, 2, 1)
	m := o.Segment(nil, 0)
	if IoU(m, gt[0]) != 1 {
		t.Fatal("strength-0 oracle must return ground truth")
	}
}

func TestOracleNoiseScalesWithStrength(t *testing.T) {
	gt := []*video.Mask{squareMask(32, 32, 8, 8, 12)}
	weak := NewOracle("weak", gt, 0.05, 2, 1).Segment(nil, 0)
	strong := NewOracle("strong", gt, 0.4, 2, 1).Segment(nil, 0)
	if IoU(weak, gt[0]) <= IoU(strong, gt[0]) {
		t.Fatalf("stronger noise should reduce IoU (weak %v, strong %v)",
			IoU(weak, gt[0]), IoU(strong, gt[0]))
	}
	// Noise must stay near the boundary: interior far from edges untouched.
	if strong.At(14, 14) != 1 {
		t.Fatal("deep interior pixel should be untouched")
	}
}

func TestOracleDeterministic(t *testing.T) {
	gt := []*video.Mask{squareMask(32, 32, 8, 8, 12)}
	a := NewOracle("o", gt, 0.2, 2, 9).Segment(nil, 0)
	b := NewOracle("o", gt, 0.2, 2, 9).Segment(nil, 0)
	if IoU(a, b) != 1 {
		t.Fatal("oracle must be deterministic per seed")
	}
}

func TestNetSegmenterRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seg := &NetSegmenter{Label: "fcn", Net: nn.NewFCN(rng, 1, 4)}
	f := video.NewFrame(16, 16)
	m := seg.Segment(f, 0)
	if m.W != 16 || m.H != 16 {
		t.Fatalf("mask geometry %dx%d", m.W, m.H)
	}
	if seg.Name() != "fcn" {
		t.Fatal("name")
	}
}

func TestMaskFrameTensorConversions(t *testing.T) {
	m := squareMask(4, 4, 0, 0, 2)
	tm := MaskToTensor(m)
	if tm.At(0, 0, 0) != 1 || tm.At(0, 3, 3) != 0 {
		t.Fatal("MaskToTensor wrong")
	}
	f := video.NewFrame(4, 4)
	f.Set(1, 1, 255)
	tf := FrameToTensor(f)
	if tf.At(0, 1, 1) != 1 || tf.At(0, 0, 0) != 0 {
		t.Fatal("FrameToTensor wrong")
	}
}

func TestTemporalInstabilityPerfectIsZero(t *testing.T) {
	gt := []*video.Mask{squareMask(16, 16, 2, 2, 6), squareMask(16, 16, 3, 2, 6), squareMask(16, 16, 4, 2, 6)}
	if got := TemporalInstability(gt, gt); got != 0 {
		t.Fatalf("self instability = %v", got)
	}
}

func TestTemporalInstabilityDetectsFlicker(t *testing.T) {
	gt := []*video.Mask{squareMask(16, 16, 4, 4, 6), squareMask(16, 16, 4, 4, 6), squareMask(16, 16, 4, 4, 6)}
	// A flickering prediction: alternating sizes around the truth.
	flicker := []*video.Mask{squareMask(16, 16, 4, 4, 6), squareMask(16, 16, 3, 3, 8), squareMask(16, 16, 5, 5, 4)}
	steady := []*video.Mask{squareMask(16, 16, 3, 4, 6), squareMask(16, 16, 3, 4, 6), squareMask(16, 16, 3, 4, 6)}
	if TemporalInstability(flicker, gt) <= TemporalInstability(steady, gt) {
		t.Fatal("flicker must score higher instability than a steady offset")
	}
	if TemporalInstability(steady, gt) != 0 {
		t.Fatal("a constant-offset prediction is perfectly stable")
	}
}

func TestTemporalInstabilityShortSequences(t *testing.T) {
	if TemporalInstability(nil, nil) != 0 {
		t.Fatal("empty sequence must be 0")
	}
	one := []*video.Mask{squareMask(8, 8, 1, 1, 3)}
	if TemporalInstability(one, one) != 0 {
		t.Fatal("single frame must be 0")
	}
}
