package segment

import (
	"testing"

	"vrdann/internal/video"
)

func TestResidualDirtyRect(t *testing.T) {
	const w, h, bs = 64, 48, 8 // 8×6 blocks
	clean := make([]int32, (w/bs)*(h/bs))

	r, dirty, total, known := ResidualDirtyRect(clean, w, h, bs, 0, ResidualHalo)
	if !r.Empty() || dirty != 0 || total != 48 || !known {
		t.Fatalf("all-clean frame: rect %+v dirty %d total %d known %v", r, dirty, total, known)
	}

	// One dirty block in the middle: rect = block ± halo, even-aligned.
	e := append([]int32(nil), clean...)
	e[2*8+3] = 5 // block (3,2): pixels [24,32)×[16,24)
	r, dirty, _, _ = ResidualDirtyRect(e, w, h, bs, 0, ResidualHalo)
	if dirty != 1 {
		t.Fatalf("dirty count %d, want 1", dirty)
	}
	want := DirtyRect{X0: 16, Y0: 8, X1: 40, Y1: 32}
	if r != want {
		t.Fatalf("rect %+v, want %+v", r, want)
	}
	if r.W()%2 != 0 || r.H()%2 != 0 {
		t.Fatalf("rect %+v has odd geometry", r)
	}

	// Threshold: energy at or below it stays clean; above is dirty.
	e[2*8+3] = 5
	if r, _, _, _ := ResidualDirtyRect(e, w, h, bs, 5, ResidualHalo); !r.Empty() {
		t.Fatalf("energy 5 at threshold 5 should be clean, got %+v", r)
	}

	// Intra sentinel is always dirty, at any threshold.
	e[2*8+3] = -1
	if _, dirty, _, _ := ResidualDirtyRect(e, w, h, bs, 1<<30, ResidualHalo); dirty != 1 {
		t.Fatal("intra sentinel must be dirty regardless of threshold")
	}

	// Corner block: halo clamps at the frame edge.
	e = append([]int32(nil), clean...)
	e[0] = 1
	r, _, _, _ = ResidualDirtyRect(e, w, h, bs, 0, ResidualHalo)
	if (r != DirtyRect{X0: 0, Y0: 0, X1: 16, Y1: 16}) {
		t.Fatalf("corner rect %+v", r)
	}

	// Missing or mis-sized energy data still covers the whole frame, but
	// reports the blocks as unknown (known == false, dirty == 0) instead of
	// inflating the dirty count: pre-field bitstreams must not read as 100%
	// motion-miss on skip-rate dashboards.
	r, dirty, total, known = ResidualDirtyRect(nil, w, h, bs, 0, ResidualHalo)
	if !r.Full(w, h) || dirty != 0 || total != 48 || known {
		t.Fatalf("nil energies: rect %+v dirty %d/%d known %v, want full frame, 0 dirty, unknown", r, dirty, total, known)
	}
}

// TestResidualDirtyRectOddGeometry pins the odd-dimension contract: on any
// mix of odd/even frame dimensions the returned rect is either full-frame
// or has an even width and height, always covers every dirty block's halo,
// and stays in bounds — an odd crop would not survive NN-S's pool/upsample
// round trip.
func TestResidualDirtyRectOddGeometry(t *testing.T) {
	const bs = 8
	dims := []int{47, 48, 63, 64, 65}
	for _, w := range dims {
		for _, h := range dims {
			bw := (w + bs - 1) / bs
			bh := (h + bs - 1) / bs
			// Every single-dirty-block position: edge blocks are the ones
			// whose halo hits the odd frame boundary.
			for by := 0; by < bh; by++ {
				for bx := 0; bx < bw; bx++ {
					e := make([]int32, bw*bh)
					e[by*bw+bx] = 9
					r, dirty, total, known := ResidualDirtyRect(e, w, h, bs, 0, ResidualHalo)
					if !known || dirty != 1 || total != bw*bh {
						t.Fatalf("%dx%d block (%d,%d): dirty %d/%d known %v", w, h, bx, by, dirty, total, known)
					}
					if r.Empty() {
						t.Fatalf("%dx%d block (%d,%d): empty rect for a dirty block", w, h, bx, by)
					}
					if r.X0 < 0 || r.Y0 < 0 || r.X1 > w || r.Y1 > h {
						t.Fatalf("%dx%d block (%d,%d): rect %+v out of bounds", w, h, bx, by, r)
					}
					if !r.Full(w, h) && (r.W()&1 == 1 || r.H()&1 == 1) {
						t.Fatalf("%dx%d block (%d,%d): non-full rect %+v has odd geometry", w, h, bx, by, r)
					}
					// The dirty block ± halo must stay covered (clamped to the
					// frame) even after the evenness adjustment.
					x0 := clampLo(bx*bs - ResidualHalo)
					y0 := clampLo(by*bs - ResidualHalo)
					x1 := clampHi((bx+1)*bs+ResidualHalo, w)
					y1 := clampHi((by+1)*bs+ResidualHalo, h)
					if r.X0 > x0 || r.Y0 > y0 || r.X1 < x1 || r.Y1 < y1 {
						t.Fatalf("%dx%d block (%d,%d): rect %+v does not cover halo [%d,%d)x[%d,%d)",
							w, h, bx, by, r, x0, x1, y0, y1)
					}
				}
			}
		}
	}
}

func TestCropPasteRoundTrip(t *testing.T) {
	const w, h = 32, 16
	m := video.NewMask(w, h)
	rec := NewReconMask(w, h)
	for i := range m.Pix {
		m.Pix[i] = uint8(i % 2)
		rec.Pix[i] = uint8(i % 4)
	}
	rc := DirtyRect{X0: 4, Y0: 2, X1: 20, Y1: 12}

	cm := CropMask(m, rc)
	cr := rec.Crop(rc)
	if cm.W != rc.W() || cm.H != rc.H() || cr.W != rc.W() || cr.H != rc.H() {
		t.Fatalf("crop geometry: mask %dx%d recon %dx%d, want %dx%d", cm.W, cm.H, cr.W, cr.H, rc.W(), rc.H())
	}
	for y := 0; y < rc.H(); y++ {
		for x := 0; x < rc.W(); x++ {
			if cm.Pix[y*cm.W+x] != m.Pix[(y+rc.Y0)*w+x+rc.X0] {
				t.Fatalf("mask crop mismatch at (%d,%d)", x, y)
			}
			if cr.Pix[y*cr.W+x] != rec.Pix[(y+rc.Y0)*w+x+rc.X0] {
				t.Fatalf("recon crop mismatch at (%d,%d)", x, y)
			}
		}
	}

	// Paste the crop back over a distinct base: inside the rect the base
	// takes the crop's values, outside it is untouched.
	base := video.NewMask(w, h)
	for i := range base.Pix {
		base.Pix[i] = 1 - m.Pix[i]
	}
	PasteMask(base, cm, rc.X0, rc.Y0)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			in := x >= rc.X0 && x < rc.X1 && y >= rc.Y0 && y < rc.Y1
			got := base.Pix[y*w+x]
			want := 1 - m.Pix[y*w+x]
			if in {
				want = m.Pix[y*w+x]
			}
			if got != want {
				t.Fatalf("paste mismatch at (%d,%d) in=%v: got %d want %d", x, y, in, got, want)
			}
		}
	}
}
