package segment

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vrdann/internal/video"
)

func TestDilateGrowsSquare(t *testing.T) {
	m := squareMask(16, 16, 6, 6, 4)
	d := Dilate(m, 1)
	if d.Area() != 6*6 {
		t.Fatalf("dilated area %d, want 36", d.Area())
	}
	if d.At(5, 5) != 1 || d.At(10, 10) != 1 {
		t.Fatal("corners not grown")
	}
}

func TestErodeShrinksSquare(t *testing.T) {
	m := squareMask(16, 16, 6, 6, 4)
	e := Erode(m, 1)
	if e.Area() != 2*2 {
		t.Fatalf("eroded area %d, want 4", e.Area())
	}
}

func TestErodeDilateDuality(t *testing.T) {
	// Erosion of the mask equals complement of dilation of the complement
	// (with border treated as background, the identity holds away from the
	// border; test on an interior object).
	m := squareMask(20, 20, 8, 8, 5)
	e := Erode(m, 1)
	comp := video.NewMask(20, 20)
	for i, v := range m.Pix {
		comp.Pix[i] = 1 - v
	}
	dc := Dilate(comp, 1)
	for y := 2; y < 18; y++ {
		for x := 2; x < 18; x++ {
			if e.At(x, y) != 1-dc.At(x, y) {
				t.Fatalf("duality violated at (%d,%d)", x, y)
			}
		}
	}
}

func TestOpenRemovesSpeckles(t *testing.T) {
	m := squareMask(24, 24, 4, 4, 8)
	m.Set(20, 20, 1) // isolated speckle
	o := Open(m, 1)
	if o.At(20, 20) != 0 {
		t.Fatal("speckle survived opening")
	}
	if o.Area() < 30 {
		t.Fatalf("opening destroyed the object: area %d", o.Area())
	}
}

func TestCloseFillsGaps(t *testing.T) {
	m := squareMask(24, 24, 4, 4, 8)
	m.Set(7, 7, 0) // one-pixel hole
	c := Close(m, 1)
	if c.At(7, 7) != 1 {
		t.Fatal("hole survived closing")
	}
}

func TestOpenCloseIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := video.NewMask(20, 16)
		for i := range m.Pix {
			if rng.Float64() < 0.4 {
				m.Pix[i] = 1
			}
		}
		o1 := Open(m, 1)
		o2 := Open(o1, 1)
		c1 := Close(m, 1)
		c2 := Close(c1, 1)
		for i := range o1.Pix {
			if o1.Pix[i] != o2.Pix[i] || c1.Pix[i] != c2.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFillHoles(t *testing.T) {
	// A ring: outside stays background, inside fills.
	m := video.NewMask(20, 20)
	for y := 4; y < 16; y++ {
		for x := 4; x < 16; x++ {
			if x == 4 || x == 15 || y == 4 || y == 15 {
				m.Set(x, y, 1)
			}
		}
	}
	f := FillHoles(m)
	if f.At(10, 10) != 1 {
		t.Fatal("interior hole not filled")
	}
	if f.At(0, 0) != 0 || f.At(19, 19) != 0 {
		t.Fatal("exterior background filled")
	}
	if f.At(4, 10) != 1 {
		t.Fatal("ring itself lost")
	}
}

func TestFillHolesNoHolesIsIdentity(t *testing.T) {
	m := squareMask(12, 12, 3, 3, 5)
	f := FillHoles(m)
	for i := range m.Pix {
		if f.Pix[i] != m.Pix[i] {
			t.Fatal("hole-free mask changed")
		}
	}
}
