package segment

import (
	"math"
	"math/rand"
	"sort"

	"vrdann/internal/video"
)

// Segmenter produces a segmentation mask for one decoded frame. The VR-DANN
// pipeline runs a Segmenter only on I/P-frames; per-frame baselines run one
// on every frame.
type Segmenter interface {
	Segment(f *video.Frame, display int) *video.Mask
	// Name identifies the model for reports.
	Name() string
}

// Oracle is a calibrated stand-in for a large segmentation network: it
// returns the ground-truth mask perturbed by *structured* boundary error of
// a chosen strength. Real network error is not salt-and-pepper noise — it
// is coherent under- and over-segmentation along stretches of the contour
// (which no lightweight refinement can undo, because a displaced boundary
// looks plausible). The oracle therefore displaces the boundary where a
// low-frequency random field exceeds a threshold, plus a small
// salt-and-pepper component. Strength 0 is a perfect network; larger values
// model weaker models (the paper's OSVOS is less accurate than FAVOS's ROI
// SegNet). The perturbation is deterministic per (seed, frame).
type Oracle struct {
	Label    string
	GT       []*video.Mask
	Strength float64 // fraction of the boundary suffering displacement
	Radius   int     // boundary band half-width in pixels
	Seed     int64
}

// NewOracle builds an oracle segmenter over the ground-truth masks.
func NewOracle(label string, gt []*video.Mask, strength float64, radius int, seed int64) *Oracle {
	return &Oracle{Label: label, GT: gt, Strength: strength, Radius: radius, Seed: seed}
}

// Name implements Segmenter.
func (o *Oracle) Name() string { return o.Label }

// Segment implements Segmenter.
func (o *Oracle) Segment(_ *video.Frame, display int) *video.Mask {
	gt := o.GT[display]
	out := gt.Clone()
	if o.Strength <= 0 {
		return out
	}
	// The displacement field is seeded per *sequence* and drifts only slowly
	// with the frame index: a real network makes correlated mistakes on
	// neighboring frames (same model, similar appearance), so reference
	// averaging cannot cancel them. Only the salt-and-pepper component is
	// per-frame.
	rng := rand.New(rand.NewSource(o.Seed))
	type wave struct{ fx, fy, ph float64 }
	waves := make([]wave, 3)
	for i := range waves {
		waves[i] = wave{
			fx: (rng.Float64()*2 - 1) * 0.12,
			fy: (rng.Float64()*2 - 1) * 0.12,
			ph: rng.Float64()*2*math.Pi + 0.03*float64(display),
		}
	}
	rng = rand.New(rand.NewSource(o.Seed + int64(display)*7919))
	// The field lives in object-local coordinates (offset by the mask
	// centroid): a network's mistakes track the object's appearance, not
	// fixed image positions, so the same contour section stays wrong as the
	// object moves. This is what makes the error survive motion-vector
	// propagation and reference averaging, as real network error does.
	cx, cy := centroid(gt)
	field := func(x, y int) float64 {
		lx, ly := float64(x)-cx, float64(y)-cy
		var s float64
		for _, w := range waves {
			s += math.Sin(w.fx*lx + w.fy*ly + w.ph)
		}
		return s / 3
	}
	b := boundary(gt)
	if len(b) == 0 {
		return out
	}
	depth := o.Radius
	if depth < 1 {
		depth = 1
	}
	// Pick the displacement thresholds as empirical quantiles of the field
	// over this frame's boundary, so exactly ~Strength of the contour is
	// over-segmented and ~Strength under-segmented regardless of the seed.
	phis := make([]float64, len(b))
	for k, i := range b {
		phis[k] = field(i%gt.W, i/gt.W)
	}
	sorted := append([]float64(nil), phis...)
	sort.Float64s(sorted)
	qIdx := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	tauLo := qIdx(o.Strength)
	tauHi := qIdx(1 - o.Strength)
	for k, i := range b {
		x, y := i%gt.W, i/gt.W
		phi := phis[k]
		switch {
		case phi > tauHi: // over-segment: dilate outward by up to depth pixels
			for dy := -depth; dy <= depth; dy++ {
				for dx := -depth; dx <= depth; dx++ {
					if gt.At(x+dx, y+dy) == 0 {
						out.Set(x+dx, y+dy, 1)
					}
				}
			}
		case phi < tauLo: // under-segment: erode inward
			for dy := -depth; dy <= depth; dy++ {
				for dx := -depth; dx <= depth; dx++ {
					if gt.At(x+dx, y+dy) == 1 {
						out.Set(x+dx, y+dy, 0)
					}
				}
			}
		}
	}
	// Small salt-and-pepper component near the boundary.
	for _, i := range boundaryBand(gt, depth) {
		if rng.Float64() < o.Strength*0.15 {
			out.Pix[i] ^= 1
		}
	}
	return out
}

// centroid returns the foreground centroid of a mask (frame center for an
// empty mask).
func centroid(m *video.Mask) (cx, cy float64) {
	var sx, sy, n float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.Pix[y*m.W+x] != 0 {
				sx += float64(x)
				sy += float64(y)
				n++
			}
		}
	}
	if n == 0 {
		return float64(m.W) / 2, float64(m.H) / 2
	}
	return sx / n, sy / n
}

// boundaryBand lists pixels within Chebyshev distance r of the mask
// boundary.
func boundaryBand(m *video.Mask, r int) []int {
	b := boundary(m)
	seen := make(map[int]bool)
	var out []int
	for _, i := range b {
		x, y := i%m.W, i/m.W
		for dy := -r; dy <= r; dy++ {
			yy := y + dy
			if yy < 0 || yy >= m.H {
				continue
			}
			for dx := -r; dx <= r; dx++ {
				xx := x + dx
				if xx < 0 || xx >= m.W {
					continue
				}
				j := yy*m.W + xx
				if !seen[j] {
					seen[j] = true
					out = append(out, j)
				}
			}
		}
	}
	return out
}
