package segment

import (
	"math/rand"
	"testing"

	"vrdann/internal/nn"
	"vrdann/internal/video"
)

// makeJob builds a deterministic refinement job with pseudo-random anchor
// masks and reconstruction codes.
func makeJob(rng *rand.Rand, w, h int) RefineJob {
	prev, next := video.NewMask(w, h), video.NewMask(w, h)
	rec := NewReconMask(w, h)
	for i := range prev.Pix {
		prev.Pix[i] = uint8(rng.Intn(2))
		next.Pix[i] = uint8(rng.Intn(2))
		rec.Pix[i] = uint8(rng.Intn(4))
	}
	return RefineJob{Prev: prev, Rec: rec, Next: next}
}

// TestRefineBatchBitIdentical pins BatchRefiner.RefineBatch to the serial
// Refiner at batch sizes 1, 2, 4 and 8, including across a scratch resize.
func TestRefineBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := nn.NewRefineNet(rand.New(rand.NewSource(6)), 8)
	br := NewBatchRefiner(net)
	serial := NewRefiner(net.Clone())
	const w, h = 12, 8
	for _, n := range []int{1, 4, 2, 8} {
		jobs := make([]RefineJob, n)
		for i := range jobs {
			jobs[i] = makeJob(rng, w, h)
		}
		got := br.RefineBatch(jobs)
		if len(got) != n {
			t.Fatalf("n=%d: got %d masks", n, len(got))
		}
		for i, j := range jobs {
			want := serial.Refine(j.Prev, j.Rec, j.Next)
			for p := range want.Pix {
				if got[i].Pix[p] != want.Pix[p] {
					t.Fatalf("n=%d job %d pixel %d: batched %d != serial %d",
						n, i, p, got[i].Pix[p], want.Pix[p])
				}
			}
		}
	}
}

// TestRefineBatchEmptyAndMixedGeometry covers the empty fast path and the
// geometry-mix panic.
func TestRefineBatchEmptyAndMixedGeometry(t *testing.T) {
	net := nn.NewRefineNet(rand.New(rand.NewSource(1)), 4)
	br := NewBatchRefiner(net)
	if masks := br.RefineBatch(nil); masks != nil {
		t.Fatalf("empty batch returned %v", masks)
	}
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mix")
		}
	}()
	br.RefineBatch([]RefineJob{makeJob(rng, 8, 8), makeJob(rng, 16, 8)})
}

// TestThresholdSegmentBatch pins the fused ThresholdSegmenter call to the
// per-frame one.
func TestThresholdSegmentBatch(t *testing.T) {
	s := &ThresholdSegmenter{CloseRadius: 1}
	rng := rand.New(rand.NewSource(9))
	var frames []*video.Frame
	var displays []int
	for i := 0; i < 3; i++ {
		f := video.NewFrame(16, 12)
		for p := range f.Pix {
			f.Pix[p] = uint8(rng.Intn(256))
		}
		frames = append(frames, f)
		displays = append(displays, i)
	}
	got := s.SegmentBatch(frames, displays)
	for i, f := range frames {
		want := s.Segment(f, displays[i])
		for p := range want.Pix {
			if got[i].Pix[p] != want.Pix[p] {
				t.Fatalf("frame %d pixel %d differs", i, p)
			}
		}
	}
}
