// Package segment implements the recognition-side core of VR-DANN for
// video object segmentation: the motion-vector reconstruction of B-frame
// segmentations from reference-frame results (with the 2-bit pixel
// representation and bi-reference mean filtering of Sec III/IV-D), the
// sandwich three-channel input, NN-S refinement, and the standard accuracy
// metrics (region IoU and boundary F-Score, as in DAVIS).
package segment

import (
	"math"

	"vrdann/internal/video"
)

// IoU returns the intersection-over-union of the foregrounds of two masks.
// Two empty masks score 1 (perfect agreement).
func IoU(pred, gt *video.Mask) float64 {
	var inter, union int
	for i := range pred.Pix {
		p, g := pred.Pix[i] != 0, gt.Pix[i] != 0
		if p && g {
			inter++
		}
		if p || g {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// PixelFScore returns the pixel-level F1 measure (harmonic mean of
// precision and recall over foreground pixels).
func PixelFScore(pred, gt *video.Mask) float64 {
	var tp, fp, fn int
	for i := range pred.Pix {
		p, g := pred.Pix[i] != 0, gt.Pix[i] != 0
		switch {
		case p && g:
			tp++
		case p && !g:
			fp++
		case !p && g:
			fn++
		}
	}
	if tp == 0 {
		if fp == 0 && fn == 0 {
			return 1
		}
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}

// BoundaryFScore returns the contour F-measure used by DAVIS: precision and
// recall of predicted boundary pixels against ground-truth boundary pixels,
// with matches allowed within tol pixels.
func BoundaryFScore(pred, gt *video.Mask, tol int) float64 {
	pb := boundary(pred)
	gb := boundary(gt)
	if len(pb) == 0 && len(gb) == 0 {
		return 1
	}
	if len(pb) == 0 || len(gb) == 0 {
		return 0
	}
	gset := dilateSet(gb, pred.W, pred.H, tol)
	pset := dilateSet(pb, pred.W, pred.H, tol)
	match := 0
	for _, p := range pb {
		if gset[p] {
			match++
		}
	}
	prec := float64(match) / float64(len(pb))
	match = 0
	for _, g := range gb {
		if pset[g] {
			match++
		}
	}
	rec := float64(match) / float64(len(gb))
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

// boundary lists the linear indices of foreground pixels with at least one
// background 4-neighbor (or on the frame edge).
func boundary(m *video.Mask) []int {
	var out []int
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.Pix[y*m.W+x] == 0 {
				continue
			}
			if x == 0 || y == 0 || x == m.W-1 || y == m.H-1 ||
				m.Pix[y*m.W+x-1] == 0 || m.Pix[y*m.W+x+1] == 0 ||
				m.Pix[(y-1)*m.W+x] == 0 || m.Pix[(y+1)*m.W+x] == 0 {
				out = append(out, y*m.W+x)
			}
		}
	}
	return out
}

// dilateSet marks all pixels within Chebyshev distance tol of the listed
// indices.
func dilateSet(idx []int, w, h, tol int) map[int]bool {
	set := make(map[int]bool, len(idx)*(2*tol+1))
	for _, i := range idx {
		x, y := i%w, i/w
		for dy := -tol; dy <= tol; dy++ {
			yy := y + dy
			if yy < 0 || yy >= h {
				continue
			}
			for dx := -tol; dx <= tol; dx++ {
				xx := x + dx
				if xx < 0 || xx >= w {
					continue
				}
				set[yy*w+xx] = true
			}
		}
	}
	return set
}

// SeqScore aggregates per-frame accuracy over a sequence.
type SeqScore struct {
	F, J float64 // mean boundary F-Score and mean region IoU (DAVIS J)
	N    int
}

// Add accumulates one frame's scores. The boundary tolerance follows the
// DAVIS convention of scaling with the image diagonal (~0.8%), which is
// 1 px at the benchmark resolutions used here.
func (s *SeqScore) Add(pred, gt *video.Mask) {
	tol := int(0.008*math.Hypot(float64(gt.W), float64(gt.H)) + 0.5)
	if tol < 1 {
		tol = 1
	}
	s.F += BoundaryFScore(pred, gt, tol)
	s.J += IoU(pred, gt)
	s.N++
}

// Mean returns the averaged (F, J); NaN-free for empty accumulators.
func (s *SeqScore) Mean() (f, j float64) {
	if s.N == 0 {
		return math.NaN(), math.NaN()
	}
	return s.F / float64(s.N), s.J / float64(s.N)
}

// TemporalInstability measures segmentation jitter: for each consecutive
// frame pair it compares the prediction's frame-to-frame IoU against the
// ground truth's (which captures how much the object really changed) and
// averages the shortfall. 0 means the prediction is exactly as temporally
// coherent as the true object; larger values mean flicker. Per-frame
// networks flicker with their independent errors, while motion-vector
// propagation inherits the references' coherence.
func TemporalInstability(pred, gt []*video.Mask) float64 {
	if len(pred) < 2 {
		return 0
	}
	var sum float64
	n := 0
	for t := 1; t < len(pred); t++ {
		pIoU := IoU(pred[t-1], pred[t])
		gIoU := IoU(gt[t-1], gt[t])
		d := gIoU - pIoU
		if d < 0 {
			d = 0
		}
		sum += d
		n++
	}
	return sum / float64(n)
}
