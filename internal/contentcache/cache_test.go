package contentcache

import (
	"context"
	"sync"
	"testing"
	"time"

	"vrdann/internal/obs"
	"vrdann/internal/video"
)

func mask(w, h int, fill uint8) *video.Mask {
	m := video.NewMask(w, h)
	for i := range m.Pix {
		m.Pix[i] = fill
	}
	return m
}

func fillKey(c *Cache, t *testing.T, k Key, m *video.Mask) {
	t.Helper()
	got, f, owner := c.Acquire(k)
	if got != nil || !owner {
		t.Fatalf("Acquire(%+v) before fill: mask %v owner %v", k, got, owner)
	}
	f.Commit(m)
}

// TestLRUEvictionOrder pins the eviction policy: least-recently-used keys
// leave first, a hit refreshes recency, and the evictions counter and byte
// gauges track the arithmetic exactly.
func TestLRUEvictionOrder(t *testing.T) {
	const w, h = 16, 8 // 128 pixel bytes + entryOverhead = 224 per entry
	perEntry := int64(w*h) + entryOverhead
	col := obs.New()
	c := New(Config{MaxBytes: 2 * perEntry, Obs: col})

	kA := Key{Content: 1, Display: 0, Model: 9}
	kB := Key{Content: 1, Display: 1, Model: 9}
	kC := Key{Content: 2, Display: 0, Model: 9}
	fillKey(c, t, kA, mask(w, h, 1))
	fillKey(c, t, kB, mask(w, h, 2))
	if c.Len() != 2 || c.Bytes() != 2*perEntry {
		t.Fatalf("resident %d entries / %d bytes, want 2 / %d", c.Len(), c.Bytes(), 2*perEntry)
	}

	// Touch A so B becomes the LRU victim.
	if m, _, _ := c.Acquire(kA); m == nil {
		t.Fatal("A should hit")
	}
	fillKey(c, t, kC, mask(w, h, 3))

	if !c.Contains(kA) || !c.Contains(kC) || c.Contains(kB) {
		t.Fatalf("eviction picked the wrong victim: A=%v B=%v C=%v",
			c.Contains(kA), c.Contains(kB), c.Contains(kC))
	}
	if c.Len() != 2 || c.Bytes() != 2*perEntry {
		t.Fatalf("post-eviction residency %d entries / %d bytes", c.Len(), c.Bytes())
	}

	snap := col.Snapshot()
	if snap.Counters[obs.CounterCacheEvictions.String()] != 1 {
		t.Fatalf("evictions counter = %d, want 1", snap.Counters[obs.CounterCacheEvictions.String()])
	}
	// 1 hit (the A touch), 3 misses (first Acquire of A, B, C).
	if snap.Counters[obs.CounterCacheHits.String()] != 1 {
		t.Fatalf("hits counter = %d, want 1", snap.Counters[obs.CounterCacheHits.String()])
	}
	if snap.Counters[obs.CounterCacheMisses.String()] != 3 {
		t.Fatalf("misses counter = %d, want 3", snap.Counters[obs.CounterCacheMisses.String()])
	}
	// Bytes-saved counts mask pixels only, once per hit.
	if snap.Counters[obs.CounterCacheBytesSaved.String()] != int64(w*h) {
		t.Fatalf("bytes-saved = %d, want %d", snap.Counters[obs.CounterCacheBytesSaved.String()], w*h)
	}
	var gBytes, gEntries int64
	for _, g := range snap.Gauges {
		switch g.Name {
		case obs.GaugeCacheBytes.String():
			gBytes = g.Current
		case obs.GaugeCacheEntries.String():
			gEntries = g.Current
		}
	}
	if gBytes != 2*perEntry || gEntries != 2 {
		t.Fatalf("gauges bytes=%d entries=%d, want %d/2", gBytes, gEntries, 2*perEntry)
	}
}

// TestBytesSavedArithmetic: n hits on one entry save exactly n × pixel
// bytes.
func TestBytesSavedArithmetic(t *testing.T) {
	const w, h, n = 32, 16, 5
	col := obs.New()
	c := New(Config{MaxBytes: 1 << 20, Obs: col})
	k := Key{Content: 7, Display: 3, Model: 1}
	fillKey(c, t, k, mask(w, h, 1))
	for i := 0; i < n; i++ {
		if m, _, _ := c.Acquire(k); m == nil {
			t.Fatalf("hit %d missed", i)
		}
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.CounterCacheBytesSaved.String()]; got != int64(n*w*h) {
		t.Fatalf("bytes-saved = %d, want %d", got, n*w*h)
	}
	if got := snap.Counters[obs.CounterCacheHits.String()]; got != n {
		t.Fatalf("hits = %d, want %d", got, n)
	}
}

// TestSingleFlightCommit: concurrent waiters on an open fill all receive
// the committed mask (the single-decode fan-out), each counted as a hit.
func TestSingleFlightCommit(t *testing.T) {
	col := obs.New()
	c := New(Config{MaxBytes: 1 << 20, Obs: col})
	k := Key{Content: 1}
	_, f, owner := c.Acquire(k)
	if !owner {
		t.Fatal("first Acquire must own the fill")
	}
	const waiters = 4
	want := mask(8, 8, 1)
	var wg sync.WaitGroup
	got := make([]*video.Mask, waiters)
	for i := 0; i < waiters; i++ {
		m, wf, own := c.Acquire(k)
		if m != nil || own {
			t.Fatalf("waiter %d: mask %v owner %v", i, m, own)
		}
		wg.Add(1)
		go func(i int, wf *Fill) {
			defer wg.Done()
			got[i], _ = wf.Wait(context.Background())
		}(i, wf)
	}
	f.Commit(want)
	wg.Wait()
	for i, m := range got {
		if m != want {
			t.Fatalf("waiter %d got %v", i, m)
		}
	}
	if hits := col.Snapshot().Counters[obs.CounterCacheHits.String()]; hits != waiters {
		t.Fatalf("hits = %d, want %d", hits, waiters)
	}
}

// TestAbandonWakesWaiters: an abandoned fill (failed step / resync) wakes
// waiters empty-handed and publishes nothing; the next Acquire claims a
// fresh fill. Double-resolution is tolerated.
func TestAbandonWakesWaiters(t *testing.T) {
	col := obs.New()
	c := New(Config{MaxBytes: 1 << 20, Obs: col})
	k := Key{Content: 2}
	_, f, _ := c.Acquire(k)
	_, wf, _ := c.Acquire(k)
	done := make(chan bool, 1)
	go func() {
		m, ok := wf.Wait(context.Background())
		done <- ok || m != nil
	}()
	f.Abandon()
	f.Abandon() // idempotent
	f.Commit(mask(4, 4, 1))
	if served := <-done; served {
		t.Fatal("waiter served from an abandoned fill")
	}
	if c.Contains(k) {
		t.Fatal("abandoned (then spuriously committed) fill published an entry")
	}
	if aborts := col.Snapshot().Counters[obs.CounterCacheFillAborts.String()]; aborts != 1 {
		t.Fatalf("fill-aborts = %d, want 1", aborts)
	}
	if _, _, owner := c.Acquire(k); !owner {
		t.Fatal("key must be fillable again after abandon")
	}
}

// TestWaitContextCancel: a waiter whose context fires falls back to a miss
// without blocking on the fill.
func TestWaitContextCancel(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	k := Key{Content: 3}
	_, f, _ := c.Acquire(k)
	_, wf, _ := c.Acquire(k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if m, ok := wf.Wait(ctx); ok || m != nil {
		t.Fatal("cancelled wait must report a miss")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled wait blocked")
	}
	f.Abandon()
}

// TestFingerprintSeparation: part boundaries matter ("ab","c" != "a","bc")
// and any part change moves the fingerprint.
func TestFingerprintSeparation(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint ignores part boundaries")
	}
	if Fingerprint("nn-l", "quant") == Fingerprint("nn-l", "float") {
		t.Fatal("fingerprint ignores config parts")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Fatal("fingerprint not deterministic")
	}
}

// TestAdaptedFingerprintIsolation pins the adaptation tier's cache-safety
// contract: an adaptation-enabled session's keyspace is disjoint from the
// base model's (already at version 0), moves on every weights version, and
// never collides across sessions.
func TestAdaptedFingerprintIsolation(t *testing.T) {
	base := Fingerprint("nn-l", "nns=true quant=false")
	if AdaptedFingerprint(base, "s0001", 0) == base {
		t.Fatal("adapted session v0 shares the base model keyspace")
	}
	if AdaptedFingerprint(base, "s0001", 1) == AdaptedFingerprint(base, "s0001", 2) {
		t.Fatal("weights version does not move the fingerprint")
	}
	if AdaptedFingerprint(base, "s0001", 1) == AdaptedFingerprint(base, "s0002", 1) {
		t.Fatal("two sessions at the same version share a fingerprint")
	}
	if AdaptedFingerprint(base, "s0001", 3) != AdaptedFingerprint(base, "s0001", 3) {
		t.Fatal("adapted fingerprint not deterministic")
	}
	// Versions must not alias a neighbouring session's versions through the
	// digit-string boundary ("s1"+v=11 vs "s11"+v=1).
	if AdaptedFingerprint(base, "s1", 11) == AdaptedFingerprint(base, "s11", 1) {
		t.Fatal("session/version boundary aliases")
	}
}
