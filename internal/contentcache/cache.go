// Package contentcache is the fleet-level reading of VR-DANN's reuse
// insight: the paper computes NN work once per stream and reuses decoder
// by-products across frames; at serving scale many sessions decode the
// same popular bits, so the masks themselves can be computed once per
// *content* and fanned out to every session serving identical bytes.
//
// The cache is content-addressed: a key is (chunk-byte digest, display
// index within the chunk, model fingerprint). Chunks are independently
// encoded and GOP-aligned and every engine starts a chunk from a fresh (or
// bit-identically Reset) decoder, so equal bytes + equal models imply
// equal masks — a hit is bit-identical to computing, by construction, and
// a corrupted copy of popular content hashes to its own keys and can never
// alias the clean entries.
//
// Concurrency follows single-flight: the first session to miss a key
// becomes its filler and computes; sessions hitting the same key while the
// fill is open wait for it instead of duplicating the work (closed-loop
// viewers of the same content march in lockstep, so without this every
// viewer would compute every frame concurrently and nothing would be
// saved). A fill commits only from a cleanly completed engine step; a
// failed step abandons it, waking waiters to compute locally — a poisoned
// session can never publish a mask it did not finish computing.
//
// Eviction is LRU by popularity under a byte budget: every hit front-moves
// the entry, so hot content stays resident and the budget evicts the
// coldest keys first.
package contentcache

import (
	"container/list"
	"context"
	"sync"

	"vrdann/internal/obs"
	"vrdann/internal/video"
)

// Key addresses one cached mask.
type Key struct {
	// Content is the codec.ChunkDigest of the whole chunk's bytes.
	Content uint64
	// Display is the frame's display index within the chunk.
	Display int
	// Model fingerprints everything besides the bytes that shapes the mask:
	// segmenter identity, refinement network, skip configuration. Sessions
	// with equal fingerprints serving equal bytes must compute equal masks.
	Model uint64
}

// Fingerprint hashes a model/config description into a Key.Model value
// (FNV-1a 64 over the parts, NUL-separated).
func Fingerprint(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * prime64
		}
		h = (h ^ 0) * prime64
	}
	return h
}

// AdaptedFingerprint derives the Model fingerprint for a session serving
// adapted (online fine-tuned) weights: the base model fingerprint mixed
// with the owning session's identity and a monotonically increasing weights
// version. The session identity is mixed in even at version 0, so an
// adaptation-enabled session never shares cache entries with base-model
// sessions — its weights can change underneath a fill — and two sessions
// that adapted independently never share entries with each other, even at
// equal version numbers.
func AdaptedFingerprint(base uint64, session string, version uint64) uint64 {
	const prime64 = 1099511628211
	h := base
	for i := 0; i < len(session); i++ {
		h = (h ^ uint64(session[i])) * prime64
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (version >> (8 * i) & 0xFF)) * prime64
	}
	// Distinguish the adapted keyspace from any plain Fingerprint output.
	return (h ^ 0xAD) * prime64
}

// entryOverhead approximates the per-entry bookkeeping bytes charged
// against the budget on top of the mask pixels.
const entryOverhead = 96

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes is the byte budget for resident masks (pixels plus a small
	// per-entry overhead). <= 0 selects the 256 MiB default.
	MaxBytes int64
	// Obs, when non-nil, receives the cache/* counters (hits, misses,
	// evictions, bytes-saved, fill-aborts) and the cache-entries /
	// cache-bytes gauges. Typically the server-wide collector, so the
	// numbers surface in /metrics.
	Obs *obs.Collector
}

// Cache is a content-addressed, single-flight, LRU-evicted mask cache.
// Safe for concurrent use. Masks handed out are shared and must be treated
// as immutable by all holders (the pipeline never mutates emitted masks).
type Cache struct {
	maxBytes int64
	obs      *obs.Collector

	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	fills   map[Key]*Fill
}

type entry struct {
	key   Key
	mask  *video.Mask
	bytes int64
}

// New constructs an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	return &Cache{
		maxBytes: cfg.MaxBytes,
		obs:      cfg.Obs,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		fills:    make(map[Key]*Fill),
	}
}

// Fill is the single-flight ticket for one in-progress computation. The
// owner computes the mask and resolves the fill with exactly one Commit or
// Abandon; non-owners Wait on it.
type Fill struct {
	c    *Cache
	key  Key
	done chan struct{}
	mask *video.Mask // nil after Abandon
}

// Acquire looks a key up. On a hit it returns the cached mask (counted,
// front-moved). On a miss it returns a Fill: owner == true means the
// caller claimed the fill and must compute the mask and then Commit or
// Abandon it; owner == false means another caller is already computing —
// Wait on the fill instead of duplicating the work.
func (c *Cache) Acquire(key Key) (m *video.Mask, f *Fill, owner bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		c.mu.Unlock()
		c.obs.Count(obs.CounterCacheHits, 1)
		c.obs.Count(obs.CounterCacheBytesSaved, int64(len(e.mask.Pix)))
		return e.mask, nil, false
	}
	if f, ok := c.fills[key]; ok {
		c.mu.Unlock()
		return nil, f, false
	}
	f = &Fill{c: c, key: key, done: make(chan struct{})}
	c.fills[key] = f
	c.mu.Unlock()
	c.obs.Count(obs.CounterCacheMisses, 1)
	return nil, f, true
}

// Commit publishes the computed mask under the fill's key and wakes every
// waiter with it. Only call after the computing step completed cleanly.
// Idempotent against a prior resolution (first resolution wins).
func (f *Fill) Commit(m *video.Mask) {
	c := f.c
	c.mu.Lock()
	if c.fills[f.key] != f {
		c.mu.Unlock()
		return // already resolved (or superseded)
	}
	delete(c.fills, f.key)
	f.mask = m
	evicted := c.insertLocked(f.key, m)
	bytes, entries := c.bytes, c.lru.Len()
	c.mu.Unlock()
	close(f.done)
	c.obs.Count(obs.CounterCacheEvictions, int64(evicted))
	c.obs.GaugeSet(obs.GaugeCacheBytes, bytes)
	c.obs.GaugeSet(obs.GaugeCacheEntries, int64(entries))
}

// Abandon invalidates the fill without publishing anything — the step that
// was computing it failed or was cancelled. Waiters wake and fall back to
// computing locally. Idempotent against a prior resolution.
func (f *Fill) Abandon() {
	c := f.c
	c.mu.Lock()
	if c.fills[f.key] != f {
		c.mu.Unlock()
		return
	}
	delete(c.fills, f.key)
	f.mask = nil
	c.mu.Unlock()
	close(f.done)
	c.obs.Count(obs.CounterCacheFillAborts, 1)
}

// Wait blocks until the fill resolves or ctx fires. It returns (mask,
// true) when the fill committed — counted as a hit, since the caller is
// served without computing — and (nil, false) when the fill was abandoned
// or the context fired, counted as a miss (the caller computes locally).
func (f *Fill) Wait(ctx context.Context) (*video.Mask, bool) {
	select {
	case <-f.done:
		if f.mask != nil {
			f.c.obs.Count(obs.CounterCacheHits, 1)
			f.c.obs.Count(obs.CounterCacheBytesSaved, int64(len(f.mask.Pix)))
			return f.mask, true
		}
	case <-ctx.Done():
	}
	f.c.obs.Count(obs.CounterCacheMisses, 1)
	return nil, false
}

// insertLocked adds (or replaces) an entry and evicts from the LRU tail
// until the budget holds, returning how many entries were evicted. The
// just-inserted entry is never evicted, so one oversized mask can briefly
// exceed the budget rather than thrash. Caller holds c.mu.
func (c *Cache) insertLocked(key Key, m *video.Mask) (evicted int) {
	if el, ok := c.entries[key]; ok {
		c.bytes -= el.Value.(*entry).bytes
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	e := &entry{key: key, mask: m, bytes: int64(len(m.Pix)) + entryOverhead}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		tail := c.lru.Back()
		te := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, te.key)
		c.bytes -= te.bytes
		evicted++
	}
	return evicted
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes reports the resident byte total (pixels + per-entry overhead).
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Contains reports whether a key is resident, without touching LRU order
// or counters (tests and introspection).
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}
