package contentcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvictionRacesFill hammers a cache whose byte budget holds only a
// handful of entries, so every Commit races LRU eviction of earlier
// commits while other goroutines Wait on open fills of the same keys.
// Designed for -race. Invariants checked:
//
//   - a Wait that reports ok always carries a non-nil mask with the
//     committed content, even if the entry was evicted again immediately;
//   - the fill table drains: once all workers stop, no key has a stale
//     single-flight ticket;
//   - byte accounting stays consistent with the resident entries.
func TestEvictionRacesFill(t *testing.T) {
	const (
		keys    = 32
		workers = 16
		rounds  = 200
		w, h    = 16, 12
	)
	// Budget ~4 masks: nearly every commit evicts something.
	c := New(Config{MaxBytes: 4 * (int64(w*h) + entryOverhead)})

	var wrongMask, nilOnOK atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for r := 0; r < rounds; r++ {
				k := Key{Content: uint64((g + r) % keys), Display: (g + r) % keys, Model: 1}
				fill := uint8(k.Content + 1)
				m, f, owner := c.Acquire(k)
				switch {
				case m != nil:
					if m.Pix[0] != fill {
						wrongMask.Add(1)
					}
				case owner:
					if (g+r)%7 == 0 {
						f.Abandon()
						continue
					}
					f.Commit(mask(w, h, fill))
				default:
					got, ok := f.Wait(ctx)
					if ok {
						if got == nil {
							nilOnOK.Add(1)
						} else if got.Pix[0] != fill {
							wrongMask.Add(1)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := nilOnOK.Load(); n != 0 {
		t.Errorf("%d Waits reported ok with a nil mask", n)
	}
	if n := wrongMask.Load(); n != 0 {
		t.Errorf("%d masks carried the wrong content", n)
	}

	// Fill table must be drained: with no workers left, Acquire on every
	// key either hits or hands us a fresh ownership — never an orphaned
	// ticket nobody will resolve.
	for i := 0; i < keys; i++ {
		k := Key{Content: uint64(i), Display: i, Model: 1}
		m, f, owner := c.Acquire(k)
		switch {
		case m != nil:
		case owner:
			f.Abandon()
		default:
			t.Fatalf("key %v: stale fill ticket after all workers exited", k)
		}
	}

	// Byte accounting: every resident entry costs at least the overhead
	// and the budget's eviction loop must have kept the total in bounds
	// (one oversized insert may exceed it, but ours are uniform).
	if b, n := c.Bytes(), c.Len(); b < int64(n)*entryOverhead || b > 4*(int64(w*h)+entryOverhead) {
		t.Errorf("byte accounting off: %d entries, %d bytes", n, b)
	}
	if c.Len() == 0 {
		t.Error("cache empty after the storm; commits never landed")
	}
}
