package nn

import (
	"fmt"

	"vrdann/internal/obs"
	"vrdann/internal/par"
	"vrdann/internal/tensor"
)

// Quantized execution tier. Where quant.go simulates INT8 deployment in
// float arithmetic (fake quantization), this file actually executes it:
// int8 activations, per-output-channel int8 weights, int32 accumulation
// (tensor.MatMulI8), and a requantize step between layers — the software
// twin of the INT8 MAC datapath of the modeled NPU. Scale propagation is
// static: every scale is fixed at construction from calibration data, so
// steady-state inference touches no float except the per-layer requantize
// multiplier and the final dequantize to logits.
//
// The float path remains the differential reference: int8 results are
// gated on task accuracy (F-score delta against float), not bit identity —
// rounding activations onto the int8 grid is exactly the approximation
// being measured.

// ensureI8 returns a [d0,d1,d2] int8 tensor, reusing *t in place when its
// backing size already matches (shape header rebuilt in place). Contents
// are arbitrary; every user overwrites all elements. Fixed arity on
// purpose: a variadic shape heap-allocates its slice at every call, which
// would break the zero-steady-state-allocation guarantee of the batched
// int8 path.
func ensureI8(t **tensor.I8, d0, d1, d2 int) *tensor.I8 {
	numel := d0 * d1 * d2
	if *t != nil && len((*t).Data) == numel && len((*t).Shape) == 3 {
		s := (*t).Shape
		s[0], s[1], s[2] = d0, d1, d2
		return *t
	}
	*t = tensor.NewI8(d0, d1, d2)
	return *t
}

// ensureI8Mat is ensureI8 for 2-D patch-matrix scratch.
func ensureI8Mat(t **tensor.I8, rows, cols int) *tensor.I8 {
	numel := rows * cols
	if *t != nil && len((*t).Data) == numel && len((*t).Shape) == 2 {
		s := (*t).Shape
		s[0], s[1] = rows, cols
		return *t
	}
	*t = tensor.NewI8(rows, cols)
	return *t
}

// ensureI32Mat is ensureI8Mat for int32 accumulator scratch.
func ensureI32Mat(t **tensor.I32, rows, cols int) *tensor.I32 {
	numel := rows * cols
	if *t != nil && len((*t).Data) == numel && len((*t).Shape) == 2 {
		s := (*t).Shape
		s[0], s[1] = rows, cols
		return *t
	}
	*t = tensor.NewI32(rows, cols)
	return *t
}

// ensureF3 is ensureI8 for the float logit output, backed by the pooled
// float scratch like the float batched path's ensureBatch.
func ensureF3(t **tensor.Tensor, d0, d1, d2 int) *tensor.Tensor {
	numel := d0 * d1 * d2
	if *t != nil && len((*t).Data) == numel && len((*t).Shape) == 3 {
		s := (*t).Shape
		s[0], s[1], s[2] = d0, d1, d2
		return *t
	}
	if *t != nil {
		par.PutFloats((*t).Data)
	}
	*t = tensor.FromSlice(par.GetFloats(numel), d0, d1, d2)
	return *t
}

// requantClamp rounds a requantized value (half away from zero, matching
// math.Round) and clamps it to [lo, 127]; lo is 0 for layers with a fused
// ReLU and -127 otherwise.
func requantClamp(v float32, lo int32) int8 {
	var r int32
	if v >= 0 {
		r = int32(v + 0.5)
	} else {
		r = int32(v - 0.5)
	}
	if r > 127 {
		r = 127
	}
	if r < lo {
		r = lo
	}
	return int8(r)
}

// qconv is one statically quantized convolution layer: per-output-channel
// int8 weights and the per-channel affine folding of all three scales
// (input, weight, output) into one requantize multiplier. stride is fixed
// at 1 — every RefineNet convolution is stride-1 same-padded.
type qconv struct {
	inC, outC, k, pad int
	w                 *tensor.I8 // [outC, inC*k*k]
	// mult[oc] = inScale*wScale[oc]/outScale for requantizing layers, or
	// inScale*wScale[oc] for the final (dequantizing) layer.
	mult []float32
	// bias[oc] is the layer bias in output units: bias/outScale when
	// requantizing, the raw float bias when dequantizing.
	bias  []float32
	relu  bool // fuse ReLU into the requantize clamp (lo = 0)
	final bool // dequantize to float logits instead of requantizing

	// Pooled scratch: patch matrix and accumulator, reused across calls.
	cols *tensor.I8
	acc  *tensor.I32
}

// newQConv quantizes a trained float convolution per output channel. For
// requantizing layers outScale fixes the grid of the int8 output; final
// layers pass outScale 0 and dequantize.
func newQConv(c *Conv2D, inScale, outScale QuantScale, relu, final bool) *qconv {
	if c.KH != c.KW || c.Stride != 1 {
		panic(fmt.Sprintf("nn: quantized conv requires square stride-1 kernels, got %dx%d stride %d", c.KH, c.KW, c.Stride))
	}
	sz := c.InC * c.KH * c.KW
	q := &qconv{
		inC: c.InC, outC: c.OutC, k: c.KH, pad: c.Pad,
		w:    tensor.NewI8(c.OutC, sz),
		mult: make([]float32, c.OutC),
		bias: make([]float32, c.OutC),
		relu: relu, final: final,
	}
	for oc := 0; oc < c.OutC; oc++ {
		row := tensor.FromSlice(c.Weight.Data[oc*sz:(oc+1)*sz], sz)
		ws := ScaleFor(row)
		QuantizeInto(q.w.Data[oc*sz:(oc+1)*sz], row, ws)
		if final {
			q.mult[oc] = float32(inScale) * float32(ws)
			q.bias[oc] = c.Bias.Data[oc]
		} else {
			q.mult[oc] = float32(inScale) * float32(ws) / float32(outScale)
			q.bias[oc] = c.Bias.Data[oc] / float32(outScale)
		}
	}
	return q
}

// clone shares the immutable weights and scales but owns fresh scratch, so
// clones can run on different goroutines.
func (q *qconv) clone() *qconv {
	c := *q
	c.cols, c.acc = nil, nil
	return &c
}

// forwardBatch runs the quantized convolution over items packed item-major
// in x ([items*inC, H, W]). Requantizing layers write item-major int8 into
// out8; the final layer writes float into outF. The requantize (or
// dequantize) fuses into the repack from the GEMM's [outC, n*oHW] layout,
// mirroring the float forwardBatchInto.
func (q *qconv) forwardBatch(x *tensor.I8, items int, out8 *tensor.I8, outF *tensor.Tensor) {
	h, w := x.Shape[1], x.Shape[2]
	outH := tensor.ConvOutSize(h, q.k, 1, q.pad)
	outW := tensor.ConvOutSize(w, q.k, 1, q.pad)
	rows, oHW := q.inC*q.k*q.k, outH*outW
	cols := ensureI8Mat(&q.cols, rows, items*oHW)
	tensor.Im2ColBatchI8Into(cols, x, items, q.k, q.k, 1, q.pad)
	acc := ensureI32Mat(&q.acc, q.outC, items*oHW)
	tensor.MatMulI8Into(acc, q.w, cols)
	lo := int32(-127)
	if q.relu {
		lo = 0
	}
	for i := 0; i < items; i++ {
		for oc := 0; oc < q.outC; oc++ {
			src := acc.Data[oc*items*oHW+i*oHW : oc*items*oHW+(i+1)*oHW]
			m, b := q.mult[oc], q.bias[oc]
			if q.final {
				dst := outF.Data[(i*q.outC+oc)*oHW : (i*q.outC+oc+1)*oHW]
				for j, v := range src {
					dst[j] = float32(v)*m + b
				}
			} else {
				dst := out8.Data[(i*q.outC+oc)*oHW : (i*q.outC+oc+1)*oHW]
				for j, v := range src {
					dst[j] = requantClamp(float32(v)*m+b, lo)
				}
			}
		}
	}
}

// maxPool2BatchI8 is 2×2 max pooling over a wide int8 batch tensor. Max is
// order-preserving, so pooling commutes with quantization and needs no
// rescale.
func maxPool2BatchI8(dst, x *tensor.I8) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	// Serial fast path BEFORE the closure literal: the parallel closure is
	// heap-allocated at its creation site, which would break the batched
	// path's zero-steady-state-allocation guarantee on small inputs.
	grain := par.Grain(c, h*w, par.MinWorkFloats)
	if grain >= c || par.MaxWorkers() == 1 {
		maxPool2I8Rows(dst, x, 0, c)
		return
	}
	par.For(c, grain, func(clo, chi int) {
		maxPool2I8Rows(dst, x, clo, chi)
	})
}

func maxPool2I8Rows(dst, x *tensor.I8, clo, chi int) {
	h, w := x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	for ch := clo; ch < chi; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				base := (ch*h+oy*2)*w + ox*2
				best := x.Data[base]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := x.Data[base+dy*w+dx]; v > best {
							best = v
						}
					}
				}
				dst.Data[(ch*oh+oy)*ow+ox] = best
			}
		}
	}
}

// upsample2BatchI8 is nearest-neighbor ×2 upsampling over a wide int8
// batch tensor; value-preserving, so no rescale.
func upsample2BatchI8(dst, x *tensor.I8) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	// Serial fast path before the closure literal, as in maxPool2BatchI8.
	grain := par.Grain(c, 4*h*w, par.MinWorkFloats)
	if grain >= c || par.MaxWorkers() == 1 {
		upsample2I8Rows(dst, x, 0, c)
		return
	}
	par.For(c, grain, func(clo, chi int) {
		upsample2I8Rows(dst, x, clo, chi)
	})
}

func upsample2I8Rows(dst, x *tensor.I8, clo, chi int) {
	h, w := x.Shape[1], x.Shape[2]
	for ch := clo; ch < chi; ch++ {
		for y := 0; y < h; y++ {
			srcRow := (ch*h + y) * w
			for x2 := 0; x2 < w; x2++ {
				v := x.Data[srcRow+x2]
				d0 := (ch*h*2+y*2)*w*2 + x2*2
				d1 := d0 + w*2
				dst.Data[d0] = v
				dst.Data[d0+1] = v
				dst.Data[d1] = v
				dst.Data[d1+1] = v
			}
		}
	}
}

// concatChannelsBatchI8 interleaves two item-major int8 batch tensors along
// the channel axis. Both operands must share one quantization scale — the
// QuantRefineNet keeps skip and upsampled mid on the same hidden grid for
// exactly this reason.
func concatChannelsBatchI8(dst, a, b *tensor.I8, n int) {
	ca, cb := a.Shape[0]/n, b.Shape[0]/n
	hw := a.Shape[1] * a.Shape[2]
	for i := 0; i < n; i++ {
		copy(dst.Data[i*(ca+cb)*hw:], a.Data[i*ca*hw:(i+1)*ca*hw])
		copy(dst.Data[(i*(ca+cb)+ca)*hw:], b.Data[i*cb*hw:(i+1)*cb*hw])
	}
}

// QuantRefineNet is NN-S compiled to the int8 tier: per-channel int8
// weights, int8 activations on two static grids (input and hidden), int32
// accumulation, requantize between layers. The float source network is NOT
// modified (unlike NewInt8RefineNet's in-place fake quantization) so it
// remains the differential reference.
//
// Scale propagation: the sandwich input quantizes at InScale; conv1+ReLU
// requantizes onto the shared hidden grid HidScale; pooling and upsampling
// preserve values, so conv2 reads and writes HidScale, and the skip
// concatenation needs no rescale; conv3 dequantizes its int32 accumulators
// straight to float logits (only their sign is consumed downstream).
type QuantRefineNet struct {
	// Features is the hidden feature-map count, matching the source net.
	Features int
	// InScale quantizes the sandwich input (values in [0,1]).
	InScale QuantScale
	// HidScale is the shared grid of both hidden activations.
	HidScale QuantScale

	conv1, conv2, conv3 *qconv

	// Scratch, reused across calls: quantized input, activations, and the
	// float logit output (pooled).
	qin, skip, down, mid, up, cat *tensor.I8
	out                           *tensor.Tensor

	obs *obs.Collector
}

// NewQuantRefineNet compiles a trained RefineNet to the int8 execution
// tier, calibrating the two activation grids on the given representative
// sandwich inputs. The source network is left untouched.
func NewQuantRefineNet(net *RefineNet, calibration []*tensor.Tensor) (*QuantRefineNet, error) {
	if len(calibration) == 0 {
		return nil, fmt.Errorf("nn: INT8 calibration requires at least one sample")
	}
	// Calibrate on a clone: Forward caches activations on the layers, and
	// the caller's network must stay pristine as the float reference.
	cnet := net.Clone()
	cnet.SetObserver(nil)
	maxAbs := func(m float32, t *tensor.Tensor) float32 {
		for _, v := range t.Data {
			if v != v { // NaN carries no range information
				continue
			}
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		return m
	}
	var inMax, hidMax float32
	for _, x := range calibration {
		inMax = maxAbs(inMax, x)
		skip := cnet.Relu1.Forward(cnet.Conv1.Forward(x))
		hidMax = maxAbs(hidMax, skip)
		mid := cnet.Relu2.Forward(cnet.Conv2.Forward(cnet.Down.Forward(skip)))
		hidMax = maxAbs(hidMax, mid)
	}
	scale := func(m float32) QuantScale {
		if m == 0 {
			return 1
		}
		return QuantScale(m / 127)
	}
	q := &QuantRefineNet{
		Features: net.Features,
		InScale:  scale(inMax),
		HidScale: scale(hidMax),
	}
	q.conv1 = newQConv(net.Conv1, q.InScale, q.HidScale, true, false)
	q.conv2 = newQConv(net.Conv2, q.HidScale, q.HidScale, true, false)
	q.conv3 = newQConv(net.Conv3, q.HidScale, 0, false, true)
	return q, nil
}

// SetObserver attaches a metrics collector for per-layer timing; nil
// disables it.
func (q *QuantRefineNet) SetObserver(c *obs.Collector) { q.obs = c }

// Observer returns the attached collector (nil when disabled).
func (q *QuantRefineNet) Observer() *obs.Collector { return q.obs }

// Clone returns an independent instance sharing the (immutable) quantized
// weights and scales but owning its own scratch, for concurrent inference.
func (q *QuantRefineNet) Clone() *QuantRefineNet {
	c := &QuantRefineNet{
		Features: q.Features,
		InScale:  q.InScale,
		HidScale: q.HidScale,
		conv1:    q.conv1.clone(),
		conv2:    q.conv2.clone(),
		conv3:    q.conv3.clone(),
		obs:      q.obs, // the collector is shared and concurrency-safe
	}
	return c
}

// ForwardQuant runs int8 inference on a [3,H,W] sandwich input and returns
// [1,H,W] float logits. The returned tensor aliases network-owned scratch:
// it is valid until the next forward on this instance.
func (q *QuantRefineNet) ForwardQuant(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != 3 {
		panic(fmt.Sprintf("nn: QuantRefineNet.ForwardQuant expects [3 H W] input, got %v", x.Shape))
	}
	return q.ForwardBatchQuant(x, 1)
}

// ForwardBatchQuant runs int8 inference over a batch of items sandwich
// inputs packed item-major into x ([items*3, H, W]) and returns
// [items, H, W] float logits. H and W must be even (the pooling/upsampling
// pair needs it), as for the float ForwardBatch. The returned tensor
// aliases network-owned scratch — valid until the next forward on this
// instance; callers must copy anything they keep. Per-layer conv timings
// are recorded against the attached observer exactly like the float path.
func (q *QuantRefineNet) ForwardBatchQuant(x *tensor.Tensor, items int) *tensor.Tensor {
	if len(x.Shape) != 3 || items <= 0 || x.Shape[0] != 3*items {
		panic(fmt.Sprintf("nn: QuantRefineNet.ForwardBatchQuant expects [%d*3 H W] input, got %v", items, x.Shape))
	}
	h, w := x.Shape[1], x.Shape[2]
	f := q.Features
	qin := ensureI8(&q.qin, items*3, h, w)
	QuantizeInto(qin.Data, x, q.InScale)
	t := q.obs.Clock()
	skip := ensureI8(&q.skip, items*f, h, w)
	q.conv1.forwardBatch(qin, items, skip, nil)
	q.obs.Span(obs.StageNNSConv1, -1, obs.KindNone, t)
	down := ensureI8(&q.down, items*f, h/2, w/2)
	maxPool2BatchI8(down, skip)
	t = q.obs.Clock()
	mid := ensureI8(&q.mid, items*f, h/2, w/2)
	q.conv2.forwardBatch(down, items, mid, nil)
	q.obs.Span(obs.StageNNSConv2, -1, obs.KindNone, t)
	up := ensureI8(&q.up, items*f, h, w)
	upsample2BatchI8(up, mid)
	cat := ensureI8(&q.cat, items*2*f, h, w)
	concatChannelsBatchI8(cat, skip, up, items)
	t = q.obs.Clock()
	out := ensureF3(&q.out, items, h, w)
	q.conv3.forwardBatch(cat, items, nil, out)
	q.obs.Span(obs.StageNNSConv3, -1, obs.KindNone, t)
	return out
}

// dynQuant is the dynamically scaled int8 path of a generic Conv2D:
// per-output-channel int8 weights quantized once, activation scale
// computed per call. This is how NN-L deploys — it has no fixed
// calibration set per stream, so each activation tensor brings its own
// grid.
type dynQuant struct {
	w      *tensor.I8 // [outC, inC*kh*kw]
	wScale []float32  // per-output-channel weight scales
	qx     *tensor.I8
	cols   *tensor.I8
	acc    *tensor.I32
}

// quantWeights lazily builds (and caches) the per-channel int8 weights.
func (c *Conv2D) quantWeights() *dynQuant {
	if c.dq != nil {
		return c.dq
	}
	sz := c.InC * c.KH * c.KW
	dq := &dynQuant{w: tensor.NewI8(c.OutC, sz), wScale: make([]float32, c.OutC)}
	for oc := 0; oc < c.OutC; oc++ {
		row := tensor.FromSlice(c.Weight.Data[oc*sz:(oc+1)*sz], sz)
		ws := ScaleFor(row)
		QuantizeInto(dq.w.Data[oc*sz:(oc+1)*sz], row, ws)
		dq.wScale[oc] = float32(ws)
	}
	c.dq = dq
	return dq
}

// ForwardQuant runs the convolution in int8 with a dynamic activation
// scale: the input quantizes against its own range, the GEMM accumulates
// in int32, and the output dequantizes to float with the bias added —
// a drop-in int8 replacement for Forward on inference-only deployments.
// Inference-only: no state for Backward is recorded.
func (c *Conv2D) ForwardQuant(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D.ForwardQuant expects [%d H W] input, got %v", c.InC, x.Shape))
	}
	dq := c.quantWeights()
	h, w := x.Shape[1], x.Shape[2]
	outH := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	rows, oHW := c.InC*c.KH*c.KW, outH*outW
	sx := ScaleFor(x)
	qx := ensureI8(&dq.qx, c.InC, h, w)
	QuantizeInto(qx.Data, x, sx)
	cols := ensureI8Mat(&dq.cols, rows, oHW)
	tensor.Im2ColI8Into(cols, qx, c.KH, c.KW, c.Stride, c.Pad)
	acc := ensureI32Mat(&dq.acc, c.OutC, oHW)
	tensor.MatMulI8Into(acc, dq.w, cols)
	out := tensor.New(c.OutC, outH, outW)
	for oc := 0; oc < c.OutC; oc++ {
		m := float32(sx) * dq.wScale[oc]
		b := c.Bias.Data[oc]
		src := acc.Data[oc*oHW : (oc+1)*oHW]
		dst := out.Data[oc*oHW : (oc+1)*oHW]
		for j, v := range src {
			dst[j] = float32(v)*m + b
		}
	}
	return out
}

// ForwardQuant runs NN-L with every convolution executing in int8 (dynamic
// activation scales) and the cheap layers (ReLU, pool, upsample) in float,
// returning the logits. The accuracy cost relative to Forward is what the
// INT8 deployment study measures.
func (f *FCN) ForwardQuant(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range f.Layers {
		if c, ok := l.(*Conv2D); ok {
			x = c.ForwardQuant(x)
		} else {
			x = l.Forward(x)
		}
	}
	return x
}

// WeightBytes returns the int8 parameter footprint — here the literal
// storage, not a what-if estimate.
func (q *QuantRefineNet) WeightBytes() int64 {
	total := int64(0)
	for _, c := range []*qconv{q.conv1, q.conv2, q.conv3} {
		total += int64(len(c.w.Data)) + int64(len(c.bias))
	}
	return total
}
