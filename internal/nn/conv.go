package nn

import (
	"fmt"
	"math"
	"math/rand"

	"vrdann/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW tensors with symmetric zero padding.
type Conv2D struct {
	InC, OutC      int
	KH, KW         int
	Stride, Pad    int
	Weight         *tensor.Tensor // [OutC, InC, KH, KW]
	Bias           *tensor.Tensor // [OutC]
	gradW, gradB   *tensor.Tensor
	lastCols       *tensor.Tensor
	lastInH, lastW int
	macs           int64

	// Pooled scratch of the batched inference path (batch.go): the wide
	// patch matrix and the pre-bias GEMM output, reused across flushes.
	batchCols, batchMM *tensor.Tensor

	// dq caches the per-channel int8 weights of the dynamic quantized path
	// (ForwardQuant, quantexec.go). Built lazily on first use; training
	// after deployment must not follow — the cache pins the weights.
	dq *dynQuant
}

// NewConv2D creates a convolution layer with He-initialized weights drawn
// from rng.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	fanIn := float64(inC * k * k)
	std := math.Sqrt(2 / fanIn)
	return &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		Weight: tensor.Randn(rng, std, outC, inC, k, k),
		Bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC, k, k),
		gradB:  tensor.New(outC),
	}
}

// Forward implements Layer. The patch matrix (the only large per-call
// allocation of the im2col path) is reused across invocations whenever the
// input geometry repeats, and the lowering + GEMM split across cores.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects [%d H W] input, got %v", c.InC, x.Shape))
	}
	h, w := x.Shape[1], x.Shape[2]
	outH := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	rows, cols := c.InC*c.KH*c.KW, outH*outW
	if c.lastCols != nil && c.lastCols.Shape[0] == rows && c.lastCols.Shape[1] == cols {
		tensor.Im2ColInto(c.lastCols, x, c.KH, c.KW, c.Stride, c.Pad)
	} else {
		c.lastCols = tensor.Im2Col(x, c.KH, c.KW, c.Stride, c.Pad)
	}
	w2d := c.Weight.Reshape(c.OutC, rows)
	out2d := tensor.MatMul(w2d, c.lastCols)
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.Data[oc]
		row := out2d.Data[oc*outH*outW : (oc+1)*outH*outW]
		for i := range row {
			row[i] += b
		}
	}
	c.lastInH, c.lastW = h, w
	c.macs = int64(c.OutC) * int64(rows) * int64(outH*outW)
	return out2d.Reshape(c.OutC, outH, outW)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	outH, outW := grad.Shape[1], grad.Shape[2]
	g2d := grad.Reshape(c.OutC, outH*outW)
	// Bias gradient: sum over spatial positions.
	for oc := 0; oc < c.OutC; oc++ {
		var s float32
		row := g2d.Data[oc*outH*outW : (oc+1)*outH*outW]
		for _, v := range row {
			s += v
		}
		c.gradB.Data[oc] += s
	}
	// Weight gradient: gradOut (OutC × P) × colsᵀ (P × K). MatMulBT streams
	// both operands row-major without materializing the transpose.
	gw := tensor.MatMulBT(g2d, c.lastCols)
	c.gradW.AddInPlace(gw.Reshape(c.Weight.Shape...))
	// Input gradient: Wᵀ × gradOut, scattered back to image space.
	w2d := c.Weight.Reshape(c.OutC, c.InC*c.KH*c.KW)
	gcols := tensor.MatMul(tensor.Transpose(w2d), g2d)
	return tensor.Col2Im(gcols, c.InC, c.lastInH, c.lastW, c.KH, c.KW, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.Weight, c.Bias} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// MACs implements Layer.
func (c *Conv2D) MACs() int64 { return c.macs }

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// StaticMACs returns the multiply-accumulate count of this convolution for
// an input of the given spatial size, without running it.
func (c *Conv2D) StaticMACs(h, w int) int64 {
	outH := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	return int64(c.OutC) * int64(c.InC*c.KH*c.KW) * int64(outH*outW)
}

// WeightBytes returns the parameter footprint in bytes assuming 8-bit
// quantized deployment weights (as on the modeled INT8 NPU).
func (c *Conv2D) WeightBytes() int64 {
	return int64(c.Weight.Numel()) + int64(c.Bias.Numel())
}
