package nn

import (
	"math"
	"testing"

	"vrdann/internal/tensor"
)

// TestOptimizerRejectsNonFiniteGrads pins the online-training hardening: a
// gradient tensor containing NaN or ±Inf must not move its parameters (nor
// poison momentum/moment state), must still be zeroed, and must be counted.
// Finite tensors in the same step keep updating normally.
func TestOptimizerRejectsNonFiniteGrads(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		name    string
		newOpt  func() Optimizer
		badGrad []float32
	}{
		{"sgd-nan", func() Optimizer { return NewSGD(0.1, 0.9) }, []float32{1, nan, 1}},
		{"sgd-pos-inf", func() Optimizer { return NewSGD(0.1, 0) }, []float32{inf, 0, 0}},
		{"sgd-neg-inf", func() Optimizer { return NewSGD(0.1, 0.5) }, []float32{0, 0, -inf}},
		{"adam-nan", func() Optimizer { return NewAdam(0.1) }, []float32{nan, nan, nan}},
		{"adam-pos-inf", func() Optimizer { return NewAdam(0.1) }, []float32{0, inf, 0}},
		{"adam-neg-inf", func() Optimizer { return NewAdam(0.1) }, []float32{-inf, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt := c.newOpt()
			bad := tensor.FromSlice([]float32{1, 2, 3}, 3)
			good := tensor.FromSlice([]float32{1, 2, 3}, 3)
			badBefore := append([]float32(nil), bad.Data...)
			goodBefore := append([]float32(nil), good.Data...)
			params := []*tensor.Tensor{bad, good}
			grads := []*tensor.Tensor{
				tensor.FromSlice(append([]float32(nil), c.badGrad...), 3),
				tensor.FromSlice([]float32{1, 1, 1}, 3),
			}
			opt.Step(params, grads)

			for i, v := range bad.Data {
				if v != badBefore[i] {
					t.Fatalf("poisoned tensor moved: elem %d %g -> %g", i, badBefore[i], v)
				}
			}
			moved := false
			for i, v := range good.Data {
				if v != goodBefore[i] {
					moved = true
				}
				if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("finite tensor elem %d became non-finite: %g", i, v)
				}
			}
			if !moved {
				t.Fatal("finite tensor in the same step was not updated")
			}
			for _, g := range grads {
				for i, v := range g.Data {
					if v != 0 {
						t.Fatalf("gradient elem %d not zeroed after step: %g", i, v)
					}
				}
			}
			if got := opt.SkippedUpdates(); got != 1 {
				t.Fatalf("SkippedUpdates = %d, want 1", got)
			}

			// A follow-up finite step on the previously poisoned tensor must
			// apply cleanly: no NaN residue may survive in optimizer state.
			grads[0].Data[0], grads[0].Data[1], grads[0].Data[2] = 1, 1, 1
			grads[1].Data[0], grads[1].Data[1], grads[1].Data[2] = 1, 1, 1
			opt.Step(params, grads)
			for i, v := range bad.Data {
				if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("recovery step produced non-finite elem %d: %g", i, v)
				}
				if v == badBefore[i] {
					t.Fatalf("recovery step did not update elem %d", i)
				}
			}
			if got := opt.SkippedUpdates(); got != 1 {
				t.Fatalf("SkippedUpdates after recovery = %d, want still 1", got)
			}
		})
	}
}

// TestOptimizerFiniteStepsUnchanged guards the hardening against false
// positives: a fully finite training loop must count zero skipped updates.
func TestOptimizerFiniteStepsUnchanged(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.05, 0.9), NewAdam(0.05)} {
		p := tensor.FromSlice([]float32{1, -1}, 2)
		for i := 0; i < 10; i++ {
			g := tensor.FromSlice([]float32{0.5, -0.5}, 2)
			opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
		}
		if got := opt.SkippedUpdates(); got != 0 {
			t.Fatalf("finite loop skipped %d updates, want 0", got)
		}
	}
}
