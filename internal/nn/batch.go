package nn

import (
	"fmt"

	"vrdann/internal/obs"
	"vrdann/internal/par"
	"vrdann/internal/tensor"
)

// Batched inference path. The serving layer's dynamic batching engine
// coalesces NN work from many streams into one fused execution per layer —
// the software reading of the paper's agent unit, which reorders work to
// minimize NN-L/NN-S kernel switching. A batch of n CHW items is packed
// item-major into one wide tensor ([n*C, H, W]); convolutions lower the
// whole batch into a single column-concatenated patch matrix and run ONE
// MatMul per layer, and the channel-independent layers (pool, upsample,
// ReLU) treat the wide tensor as just more channels.
//
// Two invariants carry the whole design:
//
//  1. Bit identity. Every output element of the wide MatMul is produced by
//     the same serial accumulation order over the same values as the
//     per-item MatMul (column concatenation adds columns, never reorders a
//     column's dot product), and every other layer is element- or
//     channel-local. A batched forward is therefore bitwise equal to n
//     serial forwards at any batch size.
//  2. No steady-state allocation. All intermediates live in pooled scratch
//     buffers (par.GetFloats) owned by the network instance and reused
//     across flushes — the per-frame ~1.6 MB of garbage the serial forward
//     allocates is what the batched path exists to eliminate.
//
// Batched forwards are inference-only (no activation caches for Backward)
// and, like the serial path, not safe for concurrent use of one instance.

// ensureBatch returns a tensor of the given shape backed by pooled memory,
// reusing *t in place when its backing size already matches (only the
// shape header is rebuilt). Contents are arbitrary; every user overwrites
// all elements.
func ensureBatch(t **tensor.Tensor, shape ...int) *tensor.Tensor {
	numel := 1
	for _, d := range shape {
		numel *= d
	}
	if *t != nil && len((*t).Data) == numel {
		// Rebuild the shape header in place: allocation-free, and the data
		// (which every user overwrites) is untouched.
		(*t).Shape = append((*t).Shape[:0], shape...)
		return *t
	}
	if *t != nil {
		par.PutFloats((*t).Data)
	}
	*t = tensor.FromSlice(par.GetFloats(numel), shape...)
	return *t
}

// ForwardBatch runs the convolution over a batch of n items packed
// item-major into x ([n*InC, H, W]) and returns [n*OutC, outH, outW],
// bit-identical to n serial Forward calls. Inference-only: no state for
// Backward is recorded and MACs is not updated.
func (c *Conv2D) ForwardBatch(x *tensor.Tensor, n int) *tensor.Tensor {
	if len(x.Shape) != 3 || n <= 0 || x.Shape[0] != n*c.InC {
		panic(fmt.Sprintf("nn: Conv2D.ForwardBatch expects [%d*%d H W] input, got %v", n, c.InC, x.Shape))
	}
	outH := tensor.ConvOutSize(x.Shape[1], c.KH, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(x.Shape[2], c.KW, c.Stride, c.Pad)
	dst := tensor.New(n*c.OutC, outH, outW)
	c.forwardBatchInto(dst, x, n)
	return dst
}

// forwardBatchInto is ForwardBatch writing into a caller-owned
// [n*OutC, outH, outW] tensor, with the patch matrix and GEMM output held
// in the layer's pooled scratch.
func (c *Conv2D) forwardBatchInto(dst, x *tensor.Tensor, n int) {
	h, w := x.Shape[1], x.Shape[2]
	outH := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	outW := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	rows, oHW := c.InC*c.KH*c.KW, outH*outW
	cols := ensureBatch(&c.batchCols, rows, n*oHW)
	tensor.Im2ColBatchInto(cols, x, n, c.KH, c.KW, c.Stride, c.Pad)
	mm := ensureBatch(&c.batchMM, c.OutC, n*oHW)
	tensor.MatMulInto(mm, c.Weight.Reshape(c.OutC, rows), cols)
	// The wide GEMM leaves the batch in [OutC, n*oHW] (output-channel-major)
	// layout; re-pack item-major so the next layer sees each item's channels
	// contiguously, fusing the bias add (one add per element, exactly as the
	// serial path) into the copy.
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := mm.Data[oc*n*oHW+i*oHW : oc*n*oHW+(i+1)*oHW]
			out := dst.Data[(i*c.OutC+oc)*oHW : (i*c.OutC+oc+1)*oHW]
			b := c.Bias.Data[oc]
			for j, v := range src {
				out[j] = v + b
			}
		}
	}
}

// reluInPlace applies max(0, v) in place with the exact comparison the
// serial ReLU layer uses (v > 0 keeps v, anything else — including NaN —
// becomes 0).
func reluInPlace(x *tensor.Tensor) {
	for i, v := range x.Data {
		if v > 0 {
			x.Data[i] = v
		} else {
			x.Data[i] = 0
		}
	}
}

// maxPool2Batch is MaxPool2.Forward over a wide batch tensor, minus the
// argmax cache (inference-only). Pooling is channel-local, so the packed
// [n*C, H, W] layout needs no special handling.
func maxPool2Batch(dst, x *tensor.Tensor) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	par.For(c, par.Grain(c, h*w, par.MinWorkFloats), func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					base := (ch*h+oy*2)*w + ox*2
					best := x.Data[base]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							if v := x.Data[base+dy*w+dx]; v > best {
								best = v
							}
						}
					}
					dst.Data[(ch*oh+oy)*ow+ox] = best
				}
			}
		}
	})
}

// upsample2Batch is Upsample2.Forward (nearest-neighbor ×2) over a wide
// batch tensor; like pooling it is channel-local.
func upsample2Batch(dst, x *tensor.Tensor) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	par.For(c, par.Grain(c, 4*h*w, par.MinWorkFloats), func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for y := 0; y < h; y++ {
				srcRow := (ch*h + y) * w
				for x2 := 0; x2 < w; x2++ {
					v := x.Data[srcRow+x2]
					d0 := (ch*h*2+y*2)*w*2 + x2*2
					d1 := d0 + w*2
					dst.Data[d0] = v
					dst.Data[d0+1] = v
					dst.Data[d1] = v
					dst.Data[d1+1] = v
				}
			}
		}
	})
}

// concatChannelsBatch interleaves two item-major batch tensors along the
// channel axis: item i of dst is ConcatChannels(item i of a, item i of b).
func concatChannelsBatch(dst, a, b *tensor.Tensor, n int) {
	ca, cb := a.Shape[0]/n, b.Shape[0]/n
	hw := a.Shape[1] * a.Shape[2]
	for i := 0; i < n; i++ {
		copy(dst.Data[i*(ca+cb)*hw:], a.Data[i*ca*hw:(i+1)*ca*hw])
		copy(dst.Data[(i*(ca+cb)+ca)*hw:], b.Data[i*cb*hw:(i+1)*cb*hw])
	}
}

// batchScratch holds the pooled activation buffers of RefineNet.ForwardBatch.
type batchScratch struct {
	skip, down, mid, up, cat, out *tensor.Tensor
}

// ForwardBatch runs NN-S over a batch of n sandwich inputs packed
// item-major into x ([n*3, H, W]) and returns [n, H, W] logits — item i's
// logit plane bitwise equal to Forward on item i alone. H and W must be
// even, as for Forward. The returned tensor aliases network-owned scratch:
// it is valid until the next ForwardBatch call on this instance, and
// callers must copy anything they keep. Per-layer conv timings are recorded
// against the attached observer exactly like the serial forward (one span
// per fused layer, not per item).
func (n *RefineNet) ForwardBatch(x *tensor.Tensor, items int) *tensor.Tensor {
	if len(x.Shape) != 3 || items <= 0 || x.Shape[0] != 3*items {
		panic(fmt.Sprintf("nn: RefineNet.ForwardBatch expects [%d*3 H W] input, got %v", items, x.Shape))
	}
	h, w := x.Shape[1], x.Shape[2]
	f := n.Features
	sc := &n.bsc
	t := n.obs.Clock()
	skip := ensureBatch(&sc.skip, items*f, h, w)
	n.Conv1.forwardBatchInto(skip, x, items)
	n.obs.Span(obs.StageNNSConv1, -1, obs.KindNone, t)
	reluInPlace(skip) // in place: conv1's raw output is never read again
	down := ensureBatch(&sc.down, items*f, h/2, w/2)
	maxPool2Batch(down, skip)
	t = n.obs.Clock()
	mid := ensureBatch(&sc.mid, items*f, h/2, w/2)
	n.Conv2.forwardBatchInto(mid, down, items)
	n.obs.Span(obs.StageNNSConv2, -1, obs.KindNone, t)
	reluInPlace(mid)
	up := ensureBatch(&sc.up, items*f, h, w)
	upsample2Batch(up, mid)
	cat := ensureBatch(&sc.cat, items*2*f, h, w)
	concatChannelsBatch(cat, skip, up, items)
	t = n.obs.Clock()
	out := ensureBatch(&sc.out, items, h, w)
	n.Conv3.forwardBatchInto(out, cat, items)
	n.obs.Span(obs.StageNNSConv3, -1, obs.KindNone, t)
	return out
}
