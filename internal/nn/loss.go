package nn

import (
	"fmt"
	"math"

	"vrdann/internal/tensor"
)

// BCEWithLogits computes the mean binary-cross-entropy loss between raw
// logits and {0,1} targets, together with the gradient of the loss with
// respect to the logits. The log-sum-exp form is numerically stable for
// large-magnitude logits.
func BCEWithLogits(logits, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if !logits.SameShape(target) {
		panic(fmt.Sprintf("nn: BCEWithLogits shape mismatch %v vs %v", logits.Shape, target.Shape))
	}
	n := float64(logits.Numel())
	grad = tensor.New(logits.Shape...)
	for i, z := range logits.Data {
		zf := float64(z)
		t := float64(target.Data[i])
		// loss = max(z,0) - z*t + log(1+exp(-|z|))
		loss += math.Max(zf, 0) - zf*t + math.Log1p(math.Exp(-math.Abs(zf)))
		sig := 1 / (1 + math.Exp(-zf))
		grad.Data[i] = float32((sig - t) / n)
	}
	return loss / n, grad
}

// MSE computes the mean squared error and its gradient with respect to pred.
func MSE(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	n := float64(pred.Numel())
	grad = tensor.New(pred.Shape...)
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		loss += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return loss / n, grad
}
