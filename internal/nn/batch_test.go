package nn

import (
	"math"
	"math/rand"
	"testing"

	"vrdann/internal/tensor"
)

// randTensor fills a CHW tensor with deterministic values in [-1, 1).
func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

// TestConvForwardBatchBitIdentical pins Conv2D.ForwardBatch to n serial
// Forward calls bitwise, across batch sizes — the invariant the dynamic
// batching engine relies on.
func TestConvForwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	conv := NewConv2D(rng, 3, 4, 3, 1, 1)
	serial := NewConv2D(rand.New(rand.NewSource(0)), 3, 4, 3, 1, 1)
	copyParams(t, serial, conv)
	for _, n := range []int{1, 2, 4, 8} {
		x := randTensor(rng, n*3, 8, 6)
		got := conv.ForwardBatch(x, n)
		oHW := got.Shape[1] * got.Shape[2]
		for i := 0; i < n; i++ {
			item := tensor.FromSlice(x.Data[i*3*8*6:(i+1)*3*8*6], 3, 8, 6)
			want := serial.Forward(item)
			for j := range want.Data {
				if got.Data[i*4*oHW+j] != want.Data[j] {
					t.Fatalf("n=%d item %d elem %d: batched %v != serial %v",
						n, i, j, got.Data[i*4*oHW+j], want.Data[j])
				}
			}
		}
	}
}

// copyParams copies src's weights into dst so a separate instance (with its
// own activation caches) can serve as the serial reference.
func copyParams(t *testing.T, dst, src *Conv2D) {
	t.Helper()
	copy(dst.Weight.Data, src.Weight.Data)
	copy(dst.Bias.Data, src.Bias.Data)
}

// TestRefineNetForwardBatchBitIdentical pins RefineNet.ForwardBatch to the
// serial Forward bitwise at batch sizes 1, 2, 4 and 8, including NaN
// inputs (the serial ReLU maps NaN to 0; the in-place batched one must
// too).
func TestRefineNetForwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewRefineNet(rand.New(rand.NewSource(9)), 8)
	ref := net.Clone()
	const h, w = 8, 12
	for _, n := range []int{1, 2, 4, 8} {
		x := randTensor(rng, n*3, h, w)
		x.Data[0] = float32(math.NaN()) // exercise the NaN -> 0 ReLU path
		got := net.ForwardBatch(x, n)
		if got.Shape[0] != n || got.Shape[1] != h || got.Shape[2] != w {
			t.Fatalf("n=%d: output shape %v, want [%d %d %d]", n, got.Shape, n, h, w)
		}
		for i := 0; i < n; i++ {
			item := tensor.FromSlice(x.Data[i*3*h*w:(i+1)*3*h*w], 3, h, w)
			want := ref.Forward(item)
			for j := range want.Data {
				if got.Data[i*h*w+j] != want.Data[j] {
					t.Fatalf("n=%d item %d elem %d: batched %v != serial %v",
						n, i, j, got.Data[i*h*w+j], want.Data[j])
				}
			}
		}
	}
}

// TestForwardBatchScratchReuse runs two differently-sized batches on one
// instance to cover the scratch resize path, then re-checks identity.
func TestForwardBatchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewRefineNet(rand.New(rand.NewSource(2)), 4)
	ref := net.Clone()
	for _, n := range []int{4, 1, 8, 2} {
		x := randTensor(rng, n*3, 6, 10)
		got := net.ForwardBatch(x, n)
		for i := 0; i < n; i++ {
			item := tensor.FromSlice(x.Data[i*3*6*10:(i+1)*3*6*10], 3, 6, 10)
			want := ref.Forward(item)
			for j := range want.Data {
				if got.Data[i*6*10+j] != want.Data[j] {
					t.Fatalf("n=%d item %d elem %d mismatch after scratch resize", n, i, j)
				}
			}
		}
	}
}

// TestForwardBatchValidation checks shape misuse panics.
func TestForwardBatchValidation(t *testing.T) {
	net := NewRefineNet(rand.New(rand.NewSource(1)), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong channel count")
		}
	}()
	net.ForwardBatch(tensor.New(5, 8, 8), 2)
}
