package nn

import (
	"fmt"
	"math"

	"vrdann/internal/tensor"
)

// The NPU the paper evaluates on (Ascend 310) executes INT8; this file
// provides symmetric per-tensor quantization so the networks can be
// deployed the way the modeled hardware runs them, and so the accuracy
// cost of INT8 inference can be measured.

// QuantScale is a symmetric per-tensor quantization scale (zero-point 0):
// real ≈ scale × int8.
type QuantScale float32

// ScaleFor returns the symmetric scale covering the tensor's dynamic range
// with the int8 grid. An all-zero tensor gets scale 1. NaN elements carry
// no range information and are ignored; an ±Inf element clamps the range
// to the largest finite float32, keeping the scale finite so every finite
// value still quantizes sensibly.
func ScaleFor(t *tensor.Tensor) QuantScale {
	var m float32
	for _, v := range t.Data {
		if v != v { // NaN
			continue
		}
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	if m == 0 {
		return 1
	}
	if math.IsInf(float64(m), 0) {
		m = math.MaxFloat32
	}
	return QuantScale(m / 127)
}

// quantClamp rounds one real value onto the int8 grid of scale s: NaN maps
// to the zero point (it carries no signal, and Go's float-to-int conversion
// of NaN is implementation-specific), ±Inf saturates like any out-of-range
// value.
func quantClamp(v float32, s QuantScale) int8 {
	q := math.Round(float64(v) / float64(s))
	switch {
	case q != q: // NaN
		q = 0
	case q > 127:
		q = 127
	case q < -127:
		q = -127
	}
	return int8(q)
}

// Quantize converts a tensor to int8 under the given scale (values clamp to
// [-127, 127]; NaN maps to 0).
func Quantize(t *tensor.Tensor, s QuantScale) []int8 {
	out := make([]int8, t.Numel())
	QuantizeInto(out, t, s)
	return out
}

// QuantizeInto is Quantize writing into a caller-owned slice of length
// t.Numel(), the allocation-free form the int8 inference path uses for its
// input activations.
func QuantizeInto(dst []int8, t *tensor.Tensor, s QuantScale) {
	if len(dst) != t.Numel() {
		panic(fmt.Sprintf("nn: QuantizeInto dst length %d does not match tensor %v", len(dst), t.Shape))
	}
	for i, v := range t.Data {
		dst[i] = quantClamp(v, s)
	}
}

// Dequantize reconstructs a float tensor from int8 data.
func Dequantize(q []int8, s QuantScale, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	if len(q) != t.Numel() {
		panic(fmt.Sprintf("nn: Dequantize length %d does not match shape %v", len(q), shape))
	}
	for i, v := range q {
		t.Data[i] = float32(v) * float32(s)
	}
	return t
}

// FakeQuantize rounds a tensor onto its own int8 grid in place, simulating
// quantized storage while keeping float compute (the standard way to
// evaluate deployment accuracy).
func FakeQuantize(t *tensor.Tensor) QuantScale {
	s := ScaleFor(t)
	for i, v := range t.Data {
		t.Data[i] = float32(quantClamp(v, s)) * float32(s)
	}
	return s
}

// QuantizeWeights fake-quantizes every parameter tensor of a network to
// int8 and returns the per-tensor scales. This is the deployment transform
// for the INT8 NPU.
func QuantizeWeights(net Layer) []QuantScale {
	params := net.Params()
	scales := make([]QuantScale, len(params))
	for i, p := range params {
		scales[i] = FakeQuantize(p)
	}
	return scales
}

// Int8RefineNet runs a RefineNet with int8-quantized weights and
// activations: weights are fake-quantized once at construction, and every
// inter-layer activation is fake-quantized against scales calibrated from
// representative inputs — matching how the INT8 NPU executes NN-S.
type Int8RefineNet struct {
	net *RefineNet
	// actScales[i] is the calibrated scale of activation stage i:
	// input, conv1 out, conv2 out, concat, logits.
	actScales []QuantScale
}

// NewInt8RefineNet quantizes a trained RefineNet using the calibration
// inputs to fix activation scales. The source network's weights are
// fake-quantized in place.
func NewInt8RefineNet(net *RefineNet, calibration []*tensor.Tensor) (*Int8RefineNet, error) {
	if len(calibration) == 0 {
		return nil, fmt.Errorf("nn: INT8 calibration requires at least one sample")
	}
	QuantizeWeights(net)
	q := &Int8RefineNet{net: net, actScales: make([]QuantScale, 5)}
	maxAbs := make([]float32, 5)
	observe := func(stage int, t *tensor.Tensor) {
		for _, v := range t.Data {
			if v < 0 {
				v = -v
			}
			if v > maxAbs[stage] {
				maxAbs[stage] = v
			}
		}
	}
	for _, x := range calibration {
		observe(0, x)
		skip := net.Relu1.Forward(net.Conv1.Forward(x))
		observe(1, skip)
		mid := net.Relu2.Forward(net.Conv2.Forward(net.Down.Forward(skip)))
		observe(2, mid)
		cat := ConcatChannels(skip, net.Up.Forward(mid))
		observe(3, cat)
		observe(4, net.Conv3.Forward(cat))
	}
	for i, m := range maxAbs {
		if m == 0 {
			m = 1
		}
		q.actScales[i] = QuantScale(m / 127)
	}
	return q, nil
}

// quantizeActivation rounds an activation tensor onto the calibrated grid,
// clamping to the int8 range like the hardware would.
func (q *Int8RefineNet) quantizeActivation(stage int, t *tensor.Tensor) *tensor.Tensor {
	s := float32(q.actScales[stage])
	out := tensor.New(t.Shape...)
	for i, v := range t.Data {
		r := math.Round(float64(v) / float64(s))
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		out.Data[i] = float32(r) * s
	}
	return out
}

// Forward runs INT8-simulated inference and returns the logits.
func (q *Int8RefineNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := q.net
	x = q.quantizeActivation(0, x)
	skip := q.quantizeActivation(1, n.Relu1.Forward(n.Conv1.Forward(x)))
	mid := q.quantizeActivation(2, n.Relu2.Forward(n.Conv2.Forward(n.Down.Forward(skip))))
	cat := q.quantizeActivation(3, ConcatChannels(skip, n.Up.Forward(mid)))
	return n.Conv3.Forward(cat)
}
