package nn

import (
	"fmt"
	"math"
	"math/rand"

	"vrdann/internal/tensor"
)

// BatchNorm normalizes each channel of a CHW tensor over its spatial
// extent, with learned scale (gamma) and shift (beta). In training mode it
// normalizes with the current statistics and updates running estimates; in
// inference mode it uses the running estimates — the standard semantics.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64
	Gamma    *tensor.Tensor // [C]
	Beta     *tensor.Tensor // [C]
	RunMean  *tensor.Tensor // [C]
	RunVar   *tensor.Tensor // [C]
	Training bool

	gradGamma, gradBeta *tensor.Tensor
	// forward cache
	xHat    *tensor.Tensor
	invStd  []float64
	inShape []int
}

// NewBatchNorm creates a batch-norm layer for c channels.
func NewBatchNorm(c int) *BatchNorm {
	return &BatchNorm{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma: tensor.Full(1, c), Beta: tensor.New(c),
		RunMean: tensor.New(c), RunVar: tensor.Full(1, c),
		Training:  true,
		gradGamma: tensor.New(c), gradBeta: tensor.New(c),
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm expects [%d H W], got %v", b.C, x.Shape))
	}
	h, w := x.Shape[1], x.Shape[2]
	n := float64(h * w)
	out := tensor.New(x.Shape...)
	b.xHat = tensor.New(x.Shape...)
	b.invStd = make([]float64, b.C)
	b.inShape = x.Shape
	for c := 0; c < b.C; c++ {
		plane := x.Data[c*h*w : (c+1)*h*w]
		var mean, variance float64
		if b.Training {
			for _, v := range plane {
				mean += float64(v)
			}
			mean /= n
			for _, v := range plane {
				d := float64(v) - mean
				variance += d * d
			}
			variance /= n
			b.RunMean.Data[c] = float32((1-b.Momentum)*float64(b.RunMean.Data[c]) + b.Momentum*mean)
			b.RunVar.Data[c] = float32((1-b.Momentum)*float64(b.RunVar.Data[c]) + b.Momentum*variance)
		} else {
			mean = float64(b.RunMean.Data[c])
			variance = float64(b.RunVar.Data[c])
		}
		inv := 1 / math.Sqrt(variance+b.Eps)
		b.invStd[c] = inv
		g, be := float64(b.Gamma.Data[c]), float64(b.Beta.Data[c])
		for i, v := range plane {
			xh := (float64(v) - mean) * inv
			b.xHat.Data[c*h*w+i] = float32(xh)
			out.Data[c*h*w+i] = float32(g*xh + be)
		}
	}
	return out
}

// Backward implements Layer (training-mode gradient).
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	h, w := b.inShape[1], b.inShape[2]
	n := float64(h * w)
	out := tensor.New(b.inShape...)
	for c := 0; c < b.C; c++ {
		gplane := grad.Data[c*h*w : (c+1)*h*w]
		xh := b.xHat.Data[c*h*w : (c+1)*h*w]
		var sumG, sumGX float64
		for i, g := range gplane {
			sumG += float64(g)
			sumGX += float64(g) * float64(xh[i])
		}
		b.gradBeta.Data[c] += float32(sumG)
		b.gradGamma.Data[c] += float32(sumGX)
		g := float64(b.Gamma.Data[c])
		inv := b.invStd[c]
		for i := range gplane {
			// dL/dx = gamma*invStd/n * (n*dy - sum(dy) - xHat*sum(dy*xHat))
			out.Data[c*h*w+i] = float32(g * inv / n *
				(n*float64(gplane[i]) - sumG - float64(xh[i])*sumGX))
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{b.Gamma, b.Beta} }

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{b.gradGamma, b.gradBeta} }

// MACs implements Layer.
func (b *BatchNorm) MACs() int64 { return 0 }

// Name implements Layer.
func (b *BatchNorm) Name() string { return "batchnorm" }

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout); inference is the identity.
type Dropout struct {
	P        float64
	Training bool
	rng      *rand.Rand
	mask     []bool
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, Training: true, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.Training || d.P <= 0 {
		return x.Clone()
	}
	out := tensor.New(x.Shape...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
		} else {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !d.Training || d.P <= 0 {
		return grad.Clone()
	}
	out := tensor.New(grad.Shape...)
	scale := float32(1 / (1 - d.P))
	for i, g := range grad.Data {
		if d.mask[i] {
			out.Data[i] = g * scale
		}
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// MACs implements Layer.
func (d *Dropout) MACs() int64 { return 0 }

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

var (
	_ Layer = (*BatchNorm)(nil)
	_ Layer = (*Dropout)(nil)
)
