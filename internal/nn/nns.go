package nn

import (
	"math/rand"

	"vrdann/internal/obs"
	"vrdann/internal/tensor"
)

// RefineNet is the lightweight refinement network the paper calls NN-S:
// a 3-convolution network with a downsampling branch and a skip connection —
// "convolution, downsampling, convolution, upsampling, concatenate and
// convolution layers" (Sec III-A-2).
//
// Input is the sandwich three-channel image (previous reference
// segmentation, reconstructed current B-frame, following reference
// segmentation); output is a single-channel logit map of the refined
// segmentation.
type RefineNet struct {
	// Features is the hidden feature-map count the network was built with.
	Features int

	Conv1 *Conv2D // 3 -> F, 3x3, same
	Relu1 *ReLU
	Down  *MaxPool2
	Conv2 *Conv2D // F -> F, 3x3, same (on the half-resolution branch)
	Relu2 *ReLU
	Up    *Upsample2
	Conv3 *Conv2D // 2F -> 1, 3x3, same (after concat with the skip)

	skipChannels int
	macs         int64

	// bsc holds the pooled activation scratch of ForwardBatch (batch.go).
	bsc batchScratch

	// obs, when non-nil, receives per-layer convolution timings (the
	// nn-s/conv* stages). Inference pays one pointer check per layer when
	// disabled.
	obs *obs.Collector
}

// SetObserver attaches a metrics collector for per-layer timing; nil
// disables it. Concurrent pipelines set the observer on each worker's
// Clone — the collector itself is safe to share.
func (n *RefineNet) SetObserver(c *obs.Collector) { n.obs = c }

// Observer returns the attached collector (nil when disabled), letting
// wrappers such as segment.Refiner time their own stages against the same
// timeline.
func (n *RefineNet) Observer() *obs.Collector { return n.obs }

// NewRefineNet builds NN-S with the given number of hidden feature maps.
// The paper does not publish filter counts; 8 keeps the network ~3 orders
// of magnitude smaller than NN-L, matching its "much smaller" description.
func NewRefineNet(rng *rand.Rand, features int) *RefineNet {
	return &RefineNet{
		Features:     features,
		Conv1:        NewConv2D(rng, 3, features, 3, 1, 1),
		Relu1:        NewReLU(),
		Down:         NewMaxPool2(),
		Conv2:        NewConv2D(rng, features, features, 3, 1, 1),
		Relu2:        NewReLU(),
		Up:           NewUpsample2(),
		Conv3:        NewConv2D(rng, 2*features, 1, 3, 1, 1),
		skipChannels: features,
	}
}

// Forward runs the network on a [3,H,W] sandwich input and returns [1,H,W]
// logits. H and W must be even (macro-block-aligned frames always are).
func (n *RefineNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	t := n.obs.Clock()
	c1 := n.Conv1.Forward(x)
	n.obs.Span(obs.StageNNSConv1, -1, obs.KindNone, t)
	skip := n.Relu1.Forward(c1)
	down := n.Down.Forward(skip)
	t = n.obs.Clock()
	c2 := n.Conv2.Forward(down)
	n.obs.Span(obs.StageNNSConv2, -1, obs.KindNone, t)
	mid := n.Relu2.Forward(c2)
	up := n.Up.Forward(mid)
	cat := ConcatChannels(skip, up)
	t = n.obs.Clock()
	out := n.Conv3.Forward(cat)
	n.obs.Span(obs.StageNNSConv3, -1, obs.KindNone, t)
	n.macs = n.Conv1.MACs() + n.Conv2.MACs() + n.Conv3.MACs()
	return out
}

// Backward propagates the loss gradient through the network, accumulating
// parameter gradients.
func (n *RefineNet) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gcat := n.Conv3.Backward(grad)
	gskip, gup := SplitChannels(gcat, n.skipChannels)
	gmid := n.Up.Backward(gup)
	gdown := n.Conv2.Backward(n.Relu2.Backward(gmid))
	gskip2 := n.Down.Backward(gdown)
	gskip.AddInPlace(gskip2)
	return n.Conv1.Backward(n.Relu1.Backward(gskip))
}

// Params implements Layer.
func (n *RefineNet) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	ps = append(ps, n.Conv1.Params()...)
	ps = append(ps, n.Conv2.Params()...)
	ps = append(ps, n.Conv3.Params()...)
	return ps
}

// Grads implements Layer.
func (n *RefineNet) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	gs = append(gs, n.Conv1.Grads()...)
	gs = append(gs, n.Conv2.Grads()...)
	gs = append(gs, n.Conv3.Grads()...)
	return gs
}

// MACs implements Layer.
func (n *RefineNet) MACs() int64 { return n.macs }

// Name implements Layer.
func (n *RefineNet) Name() string { return "refinenet" }

// StaticMACs returns the per-inference multiply-accumulate count for an
// H×W input, used by the NPU timing model.
func (n *RefineNet) StaticMACs(h, w int) int64 {
	return n.Conv1.StaticMACs(h, w) + n.Conv2.StaticMACs(h/2, w/2) + n.Conv3.StaticMACs(h, w)
}

// WeightBytes returns the INT8 parameter footprint.
func (n *RefineNet) WeightBytes() int64 {
	return n.Conv1.WeightBytes() + n.Conv2.WeightBytes() + n.Conv3.WeightBytes()
}

// Clone returns an independent copy sharing no state: layers cache
// forward-pass activations, so concurrent inference requires one clone per
// goroutine.
func (n *RefineNet) Clone() *RefineNet {
	c := NewRefineNet(rand.New(rand.NewSource(0)), n.Features)
	src, dst := n.Params(), c.Params()
	for i := range src {
		copy(dst[i].Data, src[i].Data)
	}
	c.obs = n.obs // the collector is shared and concurrency-safe
	return c
}

var _ Layer = (*RefineNet)(nil)
