package nn

import (
	"fmt"

	"vrdann/internal/par"
	"vrdann/internal/tensor"
)

// MaxPool2 is a 2×2, stride-2 max-pooling layer (the "downsampling" stage of
// NN-S in the paper). Odd trailing rows/columns are dropped, matching common
// framework semantics.
type MaxPool2 struct {
	argmax  []int
	inShape []int
}

// NewMaxPool2 returns a 2×2 stride-2 max-pool layer.
func NewMaxPool2() *MaxPool2 { return &MaxPool2{} }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: MaxPool2 expects CHW input, got %v", x.Shape))
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	out := tensor.New(c, oh, ow)
	if cap(p.argmax) < out.Numel() {
		p.argmax = make([]int, out.Numel())
	}
	p.argmax = p.argmax[:out.Numel()]
	p.inShape = x.Shape
	// Channels write disjoint slices of out/argmax, so they pool in
	// parallel.
	par.For(c, par.Grain(c, h*w, par.MinWorkFloats), func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					base := (ch*h+oy*2)*w + ox*2
					best, bestIdx := x.Data[base], base
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := base + dy*w + dx
							if x.Data[idx] > best {
								best, bestIdx = x.Data[idx], idx
							}
						}
					}
					o := (ch*oh+oy)*ow + ox
					out.Data[o] = best
					p.argmax[o] = bestIdx
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(p.inShape...)
	h, w := p.inShape[1], p.inShape[2]
	oh, ow := h/2, w/2
	// An output cell's argmax lies inside the same channel, so per-channel
	// blocks scatter into disjoint regions of out.
	par.For(p.inShape[0], par.Grain(p.inShape[0], h*w, par.MinWorkFloats), func(clo, chi int) {
		lo, hi := clo*oh*ow, chi*oh*ow
		for o := lo; o < hi; o++ {
			out.Data[p.argmax[o]] += grad.Data[o]
		}
	})
	return out
}

// Params implements Layer.
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }

// MACs implements Layer.
func (p *MaxPool2) MACs() int64 { return 0 }

// Name implements Layer.
func (p *MaxPool2) Name() string { return "maxpool2" }

// Upsample2 doubles spatial resolution with nearest-neighbor replication
// (the "upsampling" stage of NN-S).
type Upsample2 struct {
	inShape []int
}

// NewUpsample2 returns a ×2 nearest-neighbor upsampling layer.
func NewUpsample2() *Upsample2 { return &Upsample2{} }

// Forward implements Layer.
func (u *Upsample2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: Upsample2 expects CHW input, got %v", x.Shape))
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	u.inShape = x.Shape
	out := tensor.New(c, h*2, w*2)
	par.For(c, par.Grain(c, 4*h*w, par.MinWorkFloats), func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for y := 0; y < h; y++ {
				srcRow := (ch*h + y) * w
				for x2 := 0; x2 < w; x2++ {
					v := x.Data[srcRow+x2]
					d0 := (ch*h*2+y*2)*w*2 + x2*2
					d1 := d0 + w*2
					out.Data[d0] = v
					out.Data[d0+1] = v
					out.Data[d1] = v
					out.Data[d1+1] = v
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (u *Upsample2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c, h, w := u.inShape[0], u.inShape[1], u.inShape[2]
	out := tensor.New(c, h, w)
	par.For(c, par.Grain(c, 4*h*w, par.MinWorkFloats), func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					d0 := (ch*h*2+y*2)*w*2 + x*2
					d1 := d0 + w*2
					out.Data[(ch*h+y)*w+x] = grad.Data[d0] + grad.Data[d0+1] + grad.Data[d1] + grad.Data[d1+1]
				}
			}
		}
	})
	return out
}

// Params implements Layer.
func (u *Upsample2) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (u *Upsample2) Grads() []*tensor.Tensor { return nil }

// MACs implements Layer.
func (u *Upsample2) MACs() int64 { return 0 }

// Name implements Layer.
func (u *Upsample2) Name() string { return "upsample2" }

// ConcatChannels concatenates two CHW tensors along the channel axis.
func ConcatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	if len(a.Shape) != 3 || len(b.Shape) != 3 || a.Shape[1] != b.Shape[1] || a.Shape[2] != b.Shape[2] {
		panic(fmt.Sprintf("nn: ConcatChannels spatial mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tensor.New(a.Shape[0]+b.Shape[0], a.Shape[1], a.Shape[2])
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SplitChannels splits grad into the two channel groups produced by
// ConcatChannels.
func SplitChannels(grad *tensor.Tensor, ca int) (ga, gb *tensor.Tensor) {
	h, w := grad.Shape[1], grad.Shape[2]
	cb := grad.Shape[0] - ca
	ga = tensor.New(ca, h, w)
	gb = tensor.New(cb, h, w)
	copy(ga.Data, grad.Data[:ca*h*w])
	copy(gb.Data, grad.Data[ca*h*w:])
	return ga, gb
}
