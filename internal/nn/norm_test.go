package nn

import (
	"math"
	"math/rand"
	"testing"

	"vrdann/internal/tensor"
)

func TestBatchNormNormalizesPerChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm(2)
	x := tensor.Randn(rng, 3, 2, 8, 8)
	for i := 0; i < 64; i++ {
		x.Data[64+i] += 10 // shift channel 1
	}
	y := bn.Forward(x)
	for c := 0; c < 2; c++ {
		var mean, variance float64
		for i := 0; i < 64; i++ {
			mean += float64(y.Data[c*64+i])
		}
		mean /= 64
		for i := 0; i < 64; i++ {
			d := float64(y.Data[c*64+i]) - mean
			variance += d * d
		}
		variance /= 64
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean %v var %v, want 0/1", c, mean, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bn := NewBatchNorm(1)
	// Train on shifted data so running stats move.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(rng, 1, 1, 4, 4)
		for j := range x.Data {
			x.Data[j] += 5
		}
		bn.Forward(x)
	}
	bn.Training = false
	x := tensor.Full(5, 1, 4, 4)
	y := bn.Forward(x)
	// With running mean ~5 and var ~1, output should be near beta (0).
	if math.Abs(float64(y.Data[0])) > 0.5 {
		t.Fatalf("inference output %v, want near 0", y.Data[0])
	}
}

func TestBatchNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSequential(NewConv2D(rng, 1, 2, 3, 1, 1), NewBatchNorm(2))
	x := tensor.Randn(rng, 1, 1, 6, 6)
	target := tensor.Randn(rng, 1, 2, 6, 6)
	checkGradients(t, net, x, target, 8, 3e-2)
}

func TestBatchNormLearnsScaleShift(t *testing.T) {
	// A single BN layer can learn to map N(0,1) input to targets 2x+3.
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm(1)
	opt := NewAdam(0.05)
	var last float64
	for i := 0; i < 150; i++ {
		x := tensor.Randn(rng, 1, 1, 8, 8)
		tgt := tensor.New(1, 8, 8)
		for j := range tgt.Data {
			tgt.Data[j] = 2*x.Data[j] + 3
		}
		out := bn.Forward(x)
		loss, grad := MSE(out, tgt)
		last = loss
		bn.Backward(grad)
		opt.Step(bn.Params(), bn.Grads())
	}
	if last > 0.5 {
		t.Fatalf("BN failed to learn affine map: loss %v", last)
	}
}

func TestDropoutTrainingStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.4)
	x := tensor.Full(1, 1, 50, 50)
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v)-1/0.6) > 1e-5 {
			t.Fatalf("survivor scaled to %v, want %v", v, 1/0.6)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.32 || frac > 0.48 {
		t.Fatalf("dropped fraction %v, want ~0.4", frac)
	}
	// Expected value preserved.
	if m := y.Mean(); math.Abs(m-1) > 0.06 {
		t.Fatalf("mean %v, want ~1", m)
	}
}

func TestDropoutInferenceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(rng, 0.5)
	d.Training = false
	x := tensor.Randn(rng, 1, 1, 4, 4)
	y := d.Forward(x)
	if !tensor.AllClose(x, y, 0) {
		t.Fatal("inference dropout must be identity")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(rng, 0.5)
	x := tensor.Full(1, 1, 10, 10)
	y := d.Forward(x)
	g := d.Backward(tensor.Full(1, 1, 10, 10))
	for i := range y.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatalf("gradient mask differs from forward mask at %d", i)
		}
	}
}
