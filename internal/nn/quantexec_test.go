package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"vrdann/internal/tensor"
)

// TestQuantizeEdgeCases pins the hardened round-trip behaviour on the
// inputs that used to flow through math.Round unchecked.
func TestQuantizeEdgeCases(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		in   []float32
		want []int8 // expected under ScaleFor's own scale
	}{
		{"all-zero", []float32{0, 0, 0}, []int8{0, 0, 0}},
		{"saturating", []float32{1, -1, 0.5}, []int8{127, -127, 64}},
		{"nan-maps-to-zero", []float32{nan, 1, -1}, []int8{0, 127, -127}},
		{"all-nan", []float32{nan, nan}, []int8{0, 0}},
		{"pos-inf-saturates", []float32{inf, 0}, []int8{127, 0}},
		{"neg-inf-saturates", []float32{-inf, 0}, []int8{-127, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := tensor.FromSlice(c.in, len(c.in))
			s := ScaleFor(x)
			if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s <= 0 {
				t.Fatalf("ScaleFor produced unusable scale %v", s)
			}
			got := Quantize(x, s)
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("element %d: got %d, want %d (scale %v)", i, got[i], c.want[i], s)
				}
			}
		})
	}
}

// TestScaleForIgnoresNaN checks a NaN element does not poison the range of
// its finite neighbours.
func TestScaleForIgnoresNaN(t *testing.T) {
	x := tensor.FromSlice([]float32{float32(math.NaN()), 2, -4}, 3)
	if s := ScaleFor(x); float32(s) != 4.0/127 {
		t.Fatalf("scale %v, want %v", s, 4.0/127)
	}
}

// trainTinyRefineNet trains a small NN-S on a copy-the-middle-channel task
// and returns it with a calibration set and a sampler.
func trainTinyRefineNet(t *testing.T, seed int64, h, w int) (*RefineNet, []*tensor.Tensor, func() *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := NewRefineNet(rng, 4)
	opt := NewAdam(0.01)
	sample := func() (*tensor.Tensor, *tensor.Tensor) {
		x := tensor.New(3, h, w)
		tgt := tensor.New(1, h, w)
		hw := h * w
		for i := 0; i < hw; i++ {
			v := float32(rng.Intn(2))
			x.Data[i], x.Data[hw+i], x.Data[2*hw+i] = v, v, v
			tgt.Data[i] = v
		}
		return x, tgt
	}
	for step := 0; step < 80; step++ {
		x, tgt := sample()
		out := net.Forward(x)
		_, grad := BCEWithLogits(out, tgt)
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
	}
	var calib []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x, _ := sample()
		calib = append(calib, x)
	}
	return net, calib, func() *tensor.Tensor { x, _ := sample(); return x }
}

// TestQuantRefineNetCloseToFloat checks the real-int8 execution path makes
// the same decisions as float inference on nearly every pixel — the same
// gate the fake-quantized simulation passes.
func TestQuantRefineNetCloseToFloat(t *testing.T) {
	net, calib, sample := trainTinyRefineNet(t, 3, 8, 8)
	ref := net.Clone() // float reference, untouched by construction
	q, err := NewQuantRefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		x := sample()
		fl := ref.Forward(x)
		qu := q.ForwardQuant(x)
		for i := range fl.Data {
			total++
			if (fl.Data[i] > 0) == (qu.Data[i] > 0) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("int8 decision agreement %.3f, want >= 0.95", frac)
	}
}

// TestQuantRefineNetLeavesSourceUntouched checks construction does not
// fake-quantize the float network in place (it is the differential
// reference).
func TestQuantRefineNetLeavesSourceUntouched(t *testing.T) {
	net, calib, _ := trainTinyRefineNet(t, 5, 8, 8)
	before := make([][]float32, 0)
	for _, p := range net.Params() {
		before = append(before, append([]float32(nil), p.Data...))
	}
	if _, err := NewQuantRefineNet(net, calib); err != nil {
		t.Fatal(err)
	}
	for pi, p := range net.Params() {
		for i := range p.Data {
			if p.Data[i] != before[pi][i] {
				t.Fatalf("param %d elem %d mutated by quantization", pi, i)
			}
		}
	}
}

// TestForwardBatchQuantMatchesSerial checks the fused batched int8 forward
// is element-identical to per-item int8 forwards — the same contract the
// float batched path keeps, here over the integer datapath where fusion
// cannot even introduce rounding differences.
func TestForwardBatchQuantMatchesSerial(t *testing.T) {
	net, calib, sample := trainTinyRefineNet(t, 7, 8, 8)
	q, err := NewQuantRefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	qs := q.Clone() // serial reference instance (scratch is per-instance)
	const n = 3
	h, w := 8, 8
	wide := tensor.New(n*3, h, w)
	items := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		items[i] = sample()
		copy(wide.Data[i*3*h*w:(i+1)*3*h*w], items[i].Data)
	}
	batched := q.ForwardBatchQuant(wide, n)
	for i := 0; i < n; i++ {
		single := qs.ForwardQuant(items[i])
		for p := 0; p < h*w; p++ {
			if batched.Data[i*h*w+p] != single.Data[p] {
				t.Fatalf("item %d pixel %d: batched %g, serial %g", i, p, batched.Data[i*h*w+p], single.Data[p])
			}
		}
	}
}

// TestQuantRefineNetCloneIndependent checks clones share weights but not
// scratch: concurrent-style interleaved use must not cross-contaminate.
func TestQuantRefineNetCloneIndependent(t *testing.T) {
	net, calib, sample := trainTinyRefineNet(t, 9, 8, 8)
	q, err := NewQuantRefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Clone()
	x1, x2 := sample(), sample()
	want1 := append([]float32(nil), q.ForwardQuant(x1).Data...)
	// Run the clone on different data; the original's next run must be
	// unaffected.
	c.ForwardQuant(x2)
	got1 := q.ForwardQuant(x1)
	for i := range want1 {
		if got1.Data[i] != want1[i] {
			t.Fatalf("pixel %d changed after clone activity: %g vs %g", i, got1.Data[i], want1[i])
		}
	}
}

// TestFCNForwardQuantCloseToFloat checks NN-L's dynamic int8 path agrees
// with float inference on nearly all mask decisions.
func TestFCNForwardQuantCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fcn := NewFCN(rng, 1, 4)
	x := tensor.Randn(rng, 1.0, 1, 16, 16)
	fl := fcn.Forward(x)
	qu := fcn.ForwardQuant(x)
	if !fl.SameShape(qu) {
		t.Fatalf("shape mismatch: %v vs %v", fl.Shape, qu.Shape)
	}
	agree := 0
	for i := range fl.Data {
		if (fl.Data[i] > 0) == (qu.Data[i] > 0) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(fl.Data)); frac < 0.9 {
		t.Fatalf("FCN int8 decision agreement %.3f, want >= 0.9", frac)
	}
}

// TestForwardBatchQuantZeroAlloc asserts the batched int8 NN-S path
// allocates nothing in steady state — every intermediate lives in
// network-owned reused scratch. Pinned to one worker because the par.For
// fork-join itself allocates its helper goroutines; the guard is about the
// kernel path's buffers, not the scheduler.
func TestForwardBatchQuantZeroAlloc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	net, calib, sample := trainTinyRefineNet(t, 13, 16, 16)
	q, err := NewQuantRefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	h, w := 16, 16
	wide := tensor.New(n*3, h, w)
	for i := 0; i < n; i++ {
		copy(wide.Data[i*3*h*w:(i+1)*3*h*w], sample().Data)
	}
	q.ForwardBatchQuant(wide, n) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		q.ForwardBatchQuant(wide, n)
	})
	if allocs > 0 {
		t.Fatalf("steady-state batched int8 forward allocates %.1f objects/run, want 0", allocs)
	}
}

// Benchmarks: float vs int8 NN-S forward at serving geometry.

func benchNet(b *testing.B) (*RefineNet, *QuantRefineNet, *tensor.Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	net := NewRefineNet(rng, 8)
	const n, h, w = 8, 96, 64
	wide := tensor.New(n*3, h, w)
	for i := range wide.Data {
		wide.Data[i] = float32(rng.Intn(2))
	}
	calib := []*tensor.Tensor{tensor.FromSlice(wide.Data[:3*h*w], 3, h, w)}
	q, err := NewQuantRefineNet(net, calib)
	if err != nil {
		b.Fatal(err)
	}
	return net, q, wide
}

func BenchmarkRefineNetForwardBatchFloat(b *testing.B) {
	net, _, wide := benchNet(b)
	const n = 8
	net.ForwardBatch(wide, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(wide, n)
	}
}

func BenchmarkRefineNetForwardBatchQuant(b *testing.B) {
	_, q, wide := benchNet(b)
	const n = 8
	q.ForwardBatchQuant(wide, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ForwardBatchQuant(wide, n)
	}
}
