package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vrdann/internal/tensor"
)

func TestQuantizeRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 2, 4, 4)
	s := ScaleFor(x)
	back := Dequantize(Quantize(x, s), s, 4, 4)
	for i := range x.Data {
		if diff := math.Abs(float64(x.Data[i] - back.Data[i])); diff > float64(s)/2+1e-6 {
			t.Fatalf("element %d error %v exceeds half a quantization step", i, diff)
		}
	}
}

func TestScaleForZeroTensor(t *testing.T) {
	x := tensor.New(3, 3)
	if ScaleFor(x) != 1 {
		t.Fatal("zero tensor must get scale 1")
	}
}

func TestQuantizeClampsOutliers(t *testing.T) {
	x := tensor.FromSlice([]float32{1000, -1000}, 2)
	q := Quantize(x, 1)
	if q[0] != 127 || q[1] != -127 {
		t.Fatalf("clamping failed: %v", q)
	}
}

func TestFakeQuantizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.Randn(rng, 1, 3, 5)
		FakeQuantize(x)
		before := x.Clone()
		FakeQuantize(x)
		return tensor.AllClose(before, x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeWeightsTouchesAllParams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewRefineNet(rng, 4)
	scales := QuantizeWeights(net)
	if len(scales) != len(net.Params()) {
		t.Fatalf("got %d scales for %d params", len(scales), len(net.Params()))
	}
	// Every weight must now lie on its int8 grid.
	for pi, p := range net.Params() {
		s := float64(scales[pi])
		for i, v := range p.Data {
			q := float64(v) / s
			if math.Abs(q-math.Round(q)) > 1e-4 {
				t.Fatalf("param %d elem %d (%v) not on the int8 grid", pi, i, v)
			}
		}
	}
}

func TestInt8RefineNetCloseToFloat(t *testing.T) {
	// Train a small refiner to reproduce its middle channel, then check the
	// INT8 deployment agrees with float inference on most pixels.
	rng := rand.New(rand.NewSource(3))
	net := NewRefineNet(rng, 4)
	opt := NewAdam(0.01)
	sample := func() (*tensor.Tensor, *tensor.Tensor) {
		x := tensor.New(3, 8, 8)
		tgt := tensor.New(1, 8, 8)
		for i := 0; i < 64; i++ {
			v := float32(rng.Intn(2))
			x.Data[i], x.Data[64+i], x.Data[128+i] = v, v, v
			tgt.Data[i] = v
		}
		return x, tgt
	}
	for step := 0; step < 80; step++ {
		x, tgt := sample()
		out := net.Forward(x)
		_, grad := BCEWithLogits(out, tgt)
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
	}
	var calib []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x, _ := sample()
		calib = append(calib, x)
	}
	q, err := NewInt8RefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		x, _ := sample()
		fl := net.Forward(x)
		qu := q.Forward(x)
		for i := range fl.Data {
			total++
			if (fl.Data[i] > 0) == (qu.Data[i] > 0) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("INT8 decision agreement %.3f, want >= 0.95", frac)
	}
}

func TestInt8RefineNetRequiresCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := NewInt8RefineNet(NewRefineNet(rng, 4), nil); err == nil {
		t.Fatal("expected calibration error")
	}
}
