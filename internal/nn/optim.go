package nn

import (
	"math"

	"vrdann/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients and clears them.
type Optimizer interface {
	// Step applies one update to params given grads, then zeroes grads.
	// params and grads are parallel slices.
	Step(params, grads []*tensor.Tensor)
	// SkippedUpdates reports how many per-tensor updates were discarded
	// because the gradient contained NaN or ±Inf.
	SkippedUpdates() int64
}

// gradFinite reports whether every gradient element is a finite float. One
// NaN anywhere poisons the whole tensor's update (and, through momentum or
// moment state, every later step), so the optimizers reject the tensor's
// update wholesale rather than patching around individual elements.
func gradFinite(g *tensor.Tensor) bool {
	for _, v := range g.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// zeroGrad clears an accumulated gradient without applying it.
func zeroGrad(g *tensor.Tensor) {
	for j := range g.Data {
		g.Data[j] = 0
	}
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*tensor.Tensor]*tensor.Tensor
	skipped  int64
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Tensor]*tensor.Tensor)}
}

// Step implements Optimizer. Tensors whose gradient contains NaN or ±Inf
// are left untouched (parameters and velocity alike): an online trainer fed
// degenerate pseudo-labels must not let one bad batch corrupt weights that
// may later be promoted into serving. The rejected gradient is still
// zeroed, so the poisoned accumulation cannot leak into the next step.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	for i, p := range params {
		g := grads[i]
		if !gradFinite(g) {
			zeroGrad(g)
			s.skipped++
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Shape...)
			s.velocity[p] = v
		}
		mom, lr := float32(s.Momentum), float32(s.LR)
		for j := range p.Data {
			v.Data[j] = mom*v.Data[j] - lr*g.Data[j]
			p.Data[j] += v.Data[j]
			g.Data[j] = 0
		}
	}
}

// SkippedUpdates implements Optimizer.
func (s *SGD) SkippedUpdates() int64 { return s.skipped }

// Adam is the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*tensor.Tensor]*tensor.Tensor
	skipped               int64
}

// NewAdam creates an Adam optimizer with the usual defaults for the moment
// decay rates and epsilon.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*tensor.Tensor]*tensor.Tensor),
		v: make(map[*tensor.Tensor]*tensor.Tensor),
	}
}

// Step implements Optimizer. Like SGD.Step it discards per-tensor updates
// whose gradient is not finite — here the stakes are higher, because a NaN
// that reaches the m/v moment estimates sticks forever.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		if !gradFinite(g) {
			zeroGrad(g)
			a.skipped++
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Shape...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Shape...)
		}
		v := a.v[p]
		for j := range p.Data {
			gj := float64(g.Data[j])
			mj := a.Beta1*float64(m.Data[j]) + (1-a.Beta1)*gj
			vj := a.Beta2*float64(v.Data[j]) + (1-a.Beta2)*gj*gj
			m.Data[j] = float32(mj)
			v.Data[j] = float32(vj)
			p.Data[j] -= float32(a.LR * (mj / c1) / (math.Sqrt(vj/c2) + a.Eps))
			g.Data[j] = 0
		}
	}
}

// SkippedUpdates implements Optimizer.
func (a *Adam) SkippedUpdates() int64 { return a.skipped }
