package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vrdann/internal/tensor"
)

// numericGrad estimates dLoss/dParam[i] by central differences, where loss
// is MSE(net(x), target).
func numericGrad(net Layer, x, target *tensor.Tensor, p *tensor.Tensor, i int) float64 {
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	lp, _ := MSE(net.Forward(x), target)
	p.Data[i] = orig - eps
	lm, _ := MSE(net.Forward(x), target)
	p.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

func checkGradients(t *testing.T, net Layer, x, target *tensor.Tensor, samples int, tol float64) {
	t.Helper()
	out := net.Forward(x)
	_, grad := MSE(out, target)
	net.Backward(grad)
	params, grads := net.Params(), net.Grads()
	rng := rand.New(rand.NewSource(7))
	for pi, p := range params {
		for s := 0; s < samples; s++ {
			i := rng.Intn(p.Numel())
			want := numericGrad(net, x, target, p, i)
			got := float64(grads[pi].Data[i])
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic grad %v, numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestConv2DForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 1, 1, 3, 1, 1)
	// Identity kernel: center tap 1, rest 0, bias 0.
	c.Weight.Fill(0)
	c.Weight.Set(1, 0, 0, 1, 1)
	c.Bias.Fill(0)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	y := c.Forward(x)
	if !tensor.AllClose(x, y, 0) {
		t.Fatalf("identity conv output %v", y.Data)
	}
	if c.MACs() != 9*4 {
		t.Fatalf("MACs = %d, want 36", c.MACs())
	}
}

func TestConv2DStride(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 1, 2, 3, 2, 1)
	x := tensor.Randn(rng, 1, 1, 8, 8)
	y := c.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 4 || y.Shape[2] != 4 {
		t.Fatalf("stride-2 output shape %v, want [2 4 4]", y.Shape)
	}
}

func TestConv2DGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSequential(NewConv2D(rng, 2, 3, 3, 1, 1))
	x := tensor.Randn(rng, 1, 2, 5, 5)
	target := tensor.Randn(rng, 1, 3, 5, 5)
	checkGradients(t, net, x, target, 10, 1e-2)
}

func TestConv2DInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D(rng, 1, 2, 3, 1, 1)
	x := tensor.Randn(rng, 1, 1, 4, 4)
	target := tensor.Randn(rng, 1, 2, 4, 4)
	out := conv.Forward(x)
	_, g := MSE(out, target)
	gin := conv.Backward(g)
	// Numeric check on a few input elements.
	const eps = 1e-3
	for _, i := range []int{0, 5, 15} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := MSE(conv.Forward(x), target)
		x.Data[i] = orig - eps
		lm, _ := MSE(conv.Forward(x), target)
		x.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(want-float64(gin.Data[i])) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, gin.Data[i], want)
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 2, 0, 3}, 1, 2, 2)
	y := r.Forward(x)
	if y.Data[0] != 0 || y.Data[1] != 2 || y.Data[3] != 3 {
		t.Fatalf("relu forward %v", y.Data)
	}
	g := r.Backward(tensor.Full(1, 1, 2, 2))
	if g.Data[0] != 0 || g.Data[1] != 1 || g.Data[2] != 0 {
		t.Fatalf("relu backward %v", g.Data)
	}
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice([]float32{-100, 0, 100}, 1, 1, 3)
	y := s.Forward(x)
	if y.Data[0] > 1e-6 || math.Abs(float64(y.Data[1])-0.5) > 1e-6 || y.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid %v", y.Data)
	}
}

func TestMaxPool2ForwardBackward(t *testing.T) {
	p := NewMaxPool2()
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		1, 1, 0, 0,
		1, 9, 0, 2,
	}, 1, 4, 4)
	y := p.Forward(x)
	want := []float32{4, 8, 9, 2}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	g := p.Backward(tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2))
	// Gradient routes to the argmax positions only.
	if g.Data[5] != 1 || g.Data[7] != 1 || g.Data[13] != 1 || g.Data[15] != 1 {
		t.Fatalf("pool backward %v", g.Data)
	}
	var s float32
	for _, v := range g.Data {
		s += v
	}
	if s != 4 {
		t.Fatalf("pool backward mass %v, want 4", s)
	}
}

func TestUpsample2RoundTrip(t *testing.T) {
	u := NewUpsample2()
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	y := u.Forward(x)
	if y.Shape[1] != 4 || y.Shape[2] != 4 {
		t.Fatalf("upsample shape %v", y.Shape)
	}
	if y.At(0, 0, 0) != 1 || y.At(0, 0, 1) != 1 || y.At(0, 3, 3) != 4 {
		t.Fatalf("upsample values wrong: %v", y.Data)
	}
	g := u.Backward(tensor.Full(1, 1, 4, 4))
	for _, v := range g.Data {
		if v != 4 {
			t.Fatalf("upsample backward = %v, want 4", v)
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	a := tensor.Full(1, 2, 3, 3)
	b := tensor.Full(2, 1, 3, 3)
	c := ConcatChannels(a, b)
	if c.Shape[0] != 3 {
		t.Fatalf("concat channels %v", c.Shape)
	}
	ga, gb := SplitChannels(c, 2)
	if !tensor.AllClose(ga, a, 0) || !tensor.AllClose(gb, b, 0) {
		t.Fatal("split does not invert concat")
	}
}

func TestRefineNetShapesAndGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewRefineNet(rng, 4)
	x := tensor.Randn(rng, 1, 3, 8, 8)
	y := net.Forward(x)
	if y.Shape[0] != 1 || y.Shape[1] != 8 || y.Shape[2] != 8 {
		t.Fatalf("refinenet output shape %v", y.Shape)
	}
	target := tensor.Randn(rng, 1, 1, 8, 8)
	checkGradients(t, net, x, target, 6, 2e-2)
}

func TestRefineNetLearnsIdentityOfMiddleChannel(t *testing.T) {
	// The essential job of NN-S: reproduce (a denoised version of) the middle
	// channel. Train briefly on random binary masks and check the loss drops.
	rng := rand.New(rand.NewSource(6))
	net := NewRefineNet(rng, 4)
	opt := NewAdam(0.01)
	sample := func() (*tensor.Tensor, *tensor.Tensor) {
		x := tensor.New(3, 8, 8)
		tgt := tensor.New(1, 8, 8)
		for i := 0; i < 64; i++ {
			v := float32(rng.Intn(2))
			x.Data[64+i] = v // middle channel
			x.Data[i] = v
			x.Data[128+i] = v
			tgt.Data[i] = v
		}
		return x, tgt
	}
	var first, last float64
	for step := 0; step < 60; step++ {
		x, tgt := sample()
		out := net.Forward(x)
		loss, grad := BCEWithLogits(out, tgt)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
	}
	if last > first*0.6 {
		t.Fatalf("training did not reduce loss: first %v last %v", first, last)
	}
}

func TestFCNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewFCN(rng, 3, 8)
	x := tensor.Randn(rng, 1, 3, 16, 16)
	y := net.Forward(x)
	if y.Shape[0] != 1 || y.Shape[1] != 16 || y.Shape[2] != 16 {
		t.Fatalf("fcn output shape %v", y.Shape)
	}
	if net.StaticMACs(16, 16) != net.MACs() {
		t.Fatalf("StaticMACs %d != runtime MACs %d", net.StaticMACs(16, 16), net.MACs())
	}
}

func TestRefineNetStaticMACsMatchesRuntime(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewRefineNet(rng, 4)
	x := tensor.Randn(rng, 1, 3, 16, 16)
	net.Forward(x)
	if net.StaticMACs(16, 16) != net.MACs() {
		t.Fatalf("StaticMACs %d != runtime MACs %d", net.StaticMACs(16, 16), net.MACs())
	}
}

func TestBCEWithLogitsStableAndCorrect(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 1000, -1000}, 3)
	target := tensor.FromSlice([]float32{1, 1, 0}, 3)
	loss, grad := BCEWithLogits(logits, target)
	want := math.Log(2) / 3 // only the first element contributes
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
	if math.IsNaN(float64(grad.Data[1])) || math.IsNaN(float64(grad.Data[2])) {
		t.Fatal("gradient NaN for extreme logits")
	}
}

func TestMSE(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2}, 2)
	q := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSE(p, q)
	if loss != 2.5 {
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 2 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 with SGD+momentum.
	w := tensor.FromSlice([]float32{0}, 1)
	g := tensor.New(1)
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 100; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		opt.Step([]*tensor.Tensor{w}, []*tensor.Tensor{g})
	}
	if math.Abs(float64(w.Data[0])-3) > 0.05 {
		t.Fatalf("SGD converged to %v, want 3", w.Data[0])
	}
	if g.Data[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestAdamConverges(t *testing.T) {
	w := tensor.FromSlice([]float32{-5}, 1)
	g := tensor.New(1)
	opt := NewAdam(0.2)
	for i := 0; i < 200; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		opt.Step([]*tensor.Tensor{w}, []*tensor.Tensor{g})
	}
	if math.Abs(float64(w.Data[0])-3) > 0.1 {
		t.Fatalf("Adam converged to %v, want 3", w.Data[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewRefineNet(rng, 4)
	b := NewRefineNet(rand.New(rand.NewSource(10)), 4)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, b); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !tensor.AllClose(pa[i], pb[i], 0) {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewRefineNet(rng, 4)
	b := NewRefineNet(rng, 8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, b); err == nil {
		t.Fatal("expected error for mismatched architecture")
	}
}

func TestPredictMaskThreshold(t *testing.T) {
	// A fixed "network" that returns its input.
	rng := rand.New(rand.NewSource(12))
	id := NewConv2D(rng, 1, 1, 1, 1, 0)
	id.Weight.Fill(1)
	id.Bias.Fill(0)
	x := tensor.FromSlice([]float32{-2, 0.5, -0.1, 3}, 1, 2, 2)
	m := PredictMask(NewSequential(id), x)
	want := []float32{0, 1, 0, 1}
	for i, wv := range want {
		if m.Data[i] != wv {
			t.Fatalf("mask[%d] = %v, want %v", i, m.Data[i], wv)
		}
	}
}
