package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSaveLoadRoundTripFloat checks SaveParams/LoadParams restore a trained
// RefineNet bit-exactly: every parameter element identical and the forward
// pass element-identical — the contract the adaptation tier's snapshot and
// rollback path depends on.
func TestSaveLoadRoundTripFloat(t *testing.T) {
	net, _, sample := trainTinyRefineNet(t, 21, 8, 8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net); err != nil {
		t.Fatal(err)
	}
	fresh := NewRefineNet(rand.New(rand.NewSource(999)), net.Features)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		t.Fatal(err)
	}
	src, dst := net.Params(), fresh.Params()
	for pi := range src {
		for i := range src[pi].Data {
			if src[pi].Data[i] != dst[pi].Data[i] {
				t.Fatalf("param %d elem %d: saved %g, loaded %g", pi, i, src[pi].Data[i], dst[pi].Data[i])
			}
		}
	}
	x := sample()
	want, got := net.Clone().Forward(x), fresh.Forward(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("forward diverges at pixel %d: %g vs %g", i, want.Data[i], got.Data[i])
		}
	}
}

// TestSaveLoadRoundTripQuantized checks a round-tripped network quantizes
// identically: INT8 inference built from loaded weights is bit-equal to one
// built from the originals. This is what lets a promoted adapted network be
// re-quantized from its serialized snapshot without drift.
func TestSaveLoadRoundTripQuantized(t *testing.T) {
	net, calib, sample := trainTinyRefineNet(t, 23, 8, 8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net); err != nil {
		t.Fatal(err)
	}
	fresh := NewRefineNet(rand.New(rand.NewSource(999)), net.Features)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		t.Fatal(err)
	}
	q1, err := NewQuantRefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQuantRefineNet(fresh, calib)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		x := sample()
		a, b := q1.ForwardQuant(x), q2.ForwardQuant(x)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("trial %d pixel %d: original-int8 %g, roundtrip-int8 %g", trial, i, a.Data[i], b.Data[i])
			}
		}
	}
}

// TestLoadParamsShapeMismatch checks loading into a network with the same
// parameter-tensor count but different tensor sizes fails loudly instead of
// silently truncating weights.
func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	small := NewRefineNet(rng, 4)
	big := NewRefineNet(rng, 8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, small); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), big); err == nil {
		t.Fatal("loading features=4 weights into features=8 network succeeded, want size-mismatch error")
	}
}

// TestLoadParamsCountMismatch checks a parameter-tensor count mismatch is
// rejected at the header, before any weight is touched.
func TestLoadParamsCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	conv := NewConv2D(rng, 3, 4, 3, 1, 1) // 2 parameter tensors
	net := NewRefineNet(rng, 4)           // 6 parameter tensors
	var buf bytes.Buffer
	if err := SaveParams(&buf, conv); err != nil {
		t.Fatal(err)
	}
	before := append([]float32(nil), net.Params()[0].Data...)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), net); err == nil {
		t.Fatal("loading a 2-tensor file into a 6-tensor network succeeded, want count-mismatch error")
	}
	for i, v := range net.Params()[0].Data {
		if v != before[i] {
			t.Fatalf("count-mismatch load mutated weights (elem %d)", i)
		}
	}
}

// TestLoadParamsTruncated checks every truncation point of a valid stream —
// mid-header, mid-size, mid-data — produces an error, never a panic or a
// silent partial load.
func TestLoadParamsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	net := NewRefineNet(rng, 4)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Sample cut points across the stream, always including the awkward
	// boundaries: empty, inside the count header, inside a size header, and
	// one byte short of complete.
	cuts := []int{0, 2, 4, 6, len(full) / 3, len(full) / 2, len(full) - 5, len(full) - 1}
	for _, cut := range cuts {
		fresh := NewRefineNet(rand.New(rand.NewSource(777)), 4)
		err := LoadParams(bytes.NewReader(full[:cut]), fresh)
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes loaded without error", cut, len(full))
		}
	}
	// The untruncated stream still loads, so the cuts above failed for the
	// right reason.
	fresh := NewRefineNet(rand.New(rand.NewSource(777)), 4)
	if err := LoadParams(bytes.NewReader(full), fresh); err != nil {
		t.Fatalf("full stream failed to load: %v", err)
	}
}
