package nn

import "vrdann/internal/tensor"

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads implements Layer.
func (s *Sequential) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range s.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// MACs implements Layer.
func (s *Sequential) MACs() int64 {
	var n int64
	for _, l := range s.Layers {
		n += l.MACs()
	}
	return n
}

// Name implements Layer.
func (s *Sequential) Name() string { return "sequential" }
