package nn

import (
	"math/rand"

	"vrdann/internal/tensor"
)

// FCN is the fully-convolutional segmentation network that plays the role
// of NN-L (the paper borrows FAVOS's ROI SegNet). It is an encoder–decoder
// without skip connections: two stride-halving stages, a bottleneck, and
// two upsampling stages, ending in 1-channel logits at input resolution.
//
// The Go network is intentionally far smaller than ROI SegNet — it exists
// to exercise a real inference/training path on the synthetic suite. The
// architecture simulator charges NN-L at the paper's measured operation
// count (~0.5 TOP/frame) instead of this network's.
type FCN struct {
	*Sequential
}

// NewFCN builds NN-L with `width` base feature maps (e.g. 16).
func NewFCN(rng *rand.Rand, inC, width int) *FCN {
	return &FCN{Sequential: NewSequential(
		NewConv2D(rng, inC, width, 3, 1, 1),
		NewReLU(),
		NewMaxPool2(),
		NewConv2D(rng, width, 2*width, 3, 1, 1),
		NewReLU(),
		NewMaxPool2(),
		NewConv2D(rng, 2*width, 2*width, 3, 1, 1),
		NewReLU(),
		NewUpsample2(),
		NewConv2D(rng, 2*width, width, 3, 1, 1),
		NewReLU(),
		NewUpsample2(),
		NewConv2D(rng, width, 1, 3, 1, 1),
	)}
}

// Name implements Layer.
func (f *FCN) Name() string { return "fcn" }

// StaticMACs returns the per-inference multiply-accumulate count for an
// H×W input (H and W must be divisible by 4).
func (f *FCN) StaticMACs(h, w int) int64 {
	var total int64
	ch, cw := h, w
	for _, l := range f.Layers {
		switch t := l.(type) {
		case *Conv2D:
			total += t.StaticMACs(ch, cw)
		case *MaxPool2:
			ch, cw = ch/2, cw/2
		case *Upsample2:
			ch, cw = ch*2, cw*2
		}
	}
	return total
}

// WeightBytes returns the INT8 parameter footprint.
func (f *FCN) WeightBytes() int64 {
	var total int64
	for _, l := range f.Layers {
		if c, ok := l.(*Conv2D); ok {
			total += c.WeightBytes()
		}
	}
	return total
}

var _ Layer = (*FCN)(nil)

// PredictMask runs the network on a CHW input and thresholds the sigmoid of
// the logits at 0.5, returning a [H,W] {0,1} mask tensor.
func PredictMask(net Layer, x *tensor.Tensor) *tensor.Tensor {
	logits := net.Forward(x)
	h, w := logits.Shape[1], logits.Shape[2]
	mask := tensor.New(h, w)
	for i, v := range logits.Data {
		if v > 0 { // sigmoid(v) > 0.5
			mask.Data[i] = 1
		}
	}
	return mask
}
