package nn

import (
	"math/rand"
	"testing"

	"vrdann/internal/tensor"
)

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 8, 8, 3, 1, 1)
	x := tensor.Randn(rng, 1, 8, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 8, 8, 3, 1, 1)
	x := tensor.Randn(rng, 1, 8, 64, 64)
	out := conv.Forward(x)
	grad := tensor.Randn(rng, 1, out.Shape...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(grad)
	}
}

func BenchmarkRefineNetInference(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewRefineNet(rng, 8)
	x := tensor.Randn(rng, 1, 3, 64, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
	b.ReportMetric(float64(net.MACs()), "MACs/op")
}

func BenchmarkFCNInference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := NewFCN(rng, 1, 16)
	x := tensor.Randn(rng, 1, 1, 64, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
