package nn

import (
	"math/rand"
	"runtime"
	"testing"

	"vrdann/internal/tensor"
)

// serialParallel runs the body once with GOMAXPROCS=1 (forcing every par.For
// onto the calling goroutine) and once at full width, so the parallel-kernel
// speedup and allocation behavior are visible side by side.
func serialParallel(b *testing.B, fn func(b *testing.B)) {
	run := func(procs int) func(b *testing.B) {
		return func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			fn(b)
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(runtime.NumCPU()))
}

// benchConv benchmarks one convolution forward or backward at a fixed
// geometry in both execution modes.
func benchConv(b *testing.B, inC, outC, h, w int, backward bool) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, inC, outC, 3, 1, 1)
	x := tensor.Randn(rng, 1, inC, h, w)
	out := conv.Forward(x)
	grad := tensor.Randn(rng, 1, out.Shape...)
	serialParallel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if backward {
				conv.Backward(grad)
			} else {
				conv.Forward(x)
			}
		}
	})
}

// BenchmarkConv2DForwardNoReuse forces a fresh patch matrix every call —
// the allocation behavior before buffer reuse — for comparison with
// BenchmarkConv2DForwardNNS.
func BenchmarkConv2DForwardNoReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 3, 8, 3, 1, 1)
	x := tensor.Randn(rng, 1, 3, 64, 96)
	serialParallel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conv.lastCols = nil
			conv.Forward(x)
		}
	})
}

// NN-S first convolution: 3 -> 8 channels on a 64×96 sandwich input.
func BenchmarkConv2DForwardNNS(b *testing.B)  { benchConv(b, 3, 8, 64, 96, false) }
func BenchmarkConv2DBackwardNNS(b *testing.B) { benchConv(b, 3, 8, 64, 96, true) }

// NN-L-scale convolution: 16 -> 16 channels on a 64×96 frame.
func BenchmarkConv2DForwardNNL(b *testing.B)  { benchConv(b, 16, 16, 64, 96, false) }
func BenchmarkConv2DBackwardNNL(b *testing.B) { benchConv(b, 16, 16, 64, 96, true) }

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 8, 8, 3, 1, 1)
	x := tensor.Randn(rng, 1, 8, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 8, 8, 3, 1, 1)
	x := tensor.Randn(rng, 1, 8, 64, 64)
	out := conv.Forward(x)
	grad := tensor.Randn(rng, 1, out.Shape...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(grad)
	}
}

func BenchmarkRefineNetInference(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewRefineNet(rng, 8)
	x := tensor.Randn(rng, 1, 3, 64, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
	b.ReportMetric(float64(net.MACs()), "MACs/op")
}

func BenchmarkFCNInference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := NewFCN(rng, 1, 16)
	x := tensor.Randn(rng, 1, 1, 64, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
