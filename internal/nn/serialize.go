package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// SaveParams writes all parameters of a network to w in a simple
// length-prefixed binary format (little endian). It can be restored with
// LoadParams into a network of identical architecture.
func SaveParams(w io.Writer, net Layer) error {
	params := net.Params()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	for i, p := range params {
		if err := binary.Write(w, binary.LittleEndian, uint32(p.Numel())); err != nil {
			return fmt.Errorf("nn: save param %d header: %w", i, err)
		}
		buf := make([]byte, 4*p.Numel())
		for j, v := range p.Data {
			binary.LittleEndian.PutUint32(buf[j*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("nn: save param %d: %w", i, err)
		}
	}
	return nil
}

// LoadParams restores parameters previously written by SaveParams. The
// network must have the same architecture (same parameter count and sizes).
func LoadParams(r io.Reader, net Layer) error {
	params := net.Params()
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: load: file has %d parameter tensors, network has %d", n, len(params))
	}
	for i, p := range params {
		var sz uint32
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return fmt.Errorf("nn: load param %d header: %w", i, err)
		}
		if int(sz) != p.Numel() {
			return fmt.Errorf("nn: load param %d: file has %d elements, tensor has %d", i, sz, p.Numel())
		}
		buf := make([]byte, 4*sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("nn: load param %d: %w", i, err)
		}
		for j := range p.Data {
			p.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
	}
	return nil
}
