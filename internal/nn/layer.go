// Package nn is a small, dependency-free neural-network framework with
// forward and backward passes, suitable for training the lightweight
// refinement network (NN-S) described in the VR-DANN paper and for running
// the larger segmentation network (NN-L).
//
// The framework operates on single samples in CHW layout; batching is done
// by the training loop. Every layer reports its multiply-accumulate count so
// the architecture simulator can charge NPU time for real workloads.
package nn

import (
	"math"

	"vrdann/internal/par"
	"vrdann/internal/tensor"
)

// Layer is a differentiable computation node.
//
// Forward consumes a CHW tensor and returns a CHW tensor. Backward consumes
// the gradient of the loss with respect to the layer output and returns the
// gradient with respect to the layer input; it must be called after Forward
// (layers cache whatever they need). Parameterized layers expose their
// parameters and accumulated gradients via Params and Grads (parallel
// slices).
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*tensor.Tensor
	Grads() []*tensor.Tensor
	// MACs reports the multiply-accumulate operations of the most recent
	// Forward call (0 for element-wise layers where data movement dominates).
	MACs() int64
	// Name identifies the layer type for serialization and debugging.
	Name() string
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	par.For(len(x.Data), par.Grain(len(x.Data), 1, par.MinWorkFloats), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := x.Data[i]; v > 0 {
				out.Data[i] = v
				r.mask[i] = true
			} else {
				r.mask[i] = false
			}
		}
	})
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	par.For(len(grad.Data), par.Grain(len(grad.Data), 1, par.MinWorkFloats), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if r.mask[i] {
				out.Data[i] = grad.Data[i]
			}
		}
	})
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// MACs implements Layer.
func (r *ReLU) MACs() int64 { return 0 }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	s.out = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		y := s.out.Data[i]
		out.Data[i] = g * y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// MACs implements Layer.
func (s *Sigmoid) MACs() int64 { return 0 }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }
