// Package qos implements the adaptive QoS degradation ladder of the
// serving layer: per-frame compute selection under overload. The paper's
// core claim is that decoder metadata lets a recognition system trade
// accuracy for compute gradually, and AccDecoder-style scheduling makes the
// same trade over decoded frame groups; this package turns the serving
// layer's binary B-frame shedding into that dial.
//
// A B-frame can be served on one of four rungs, from most expensive and
// most accurate to cheapest:
//
//	StepFull    full NN-L re-segmentation (the B-frame treated as an anchor)
//	StepRefine  NN-S refinement of the MV reconstruction (the paper's path)
//	StepRecon   raw MV reconstruction, no NN at all
//	StepSkip    shed: side info consumed, no mask produced
//
// The Controller picks a rung per frame from the instantaneous load — queue
// depth over the worker budget plus batch occupancy — and the session's QoS
// class (a free session degrades at a fraction of the pressure a premium
// one tolerates). Selection is a pure function of (Load, Class), so the
// same inputs always produce the same rung; determinism is part of the
// contract and is pinned by tests.
//
// On top of the per-frame selection sits a small closed loop: an EWMA of
// observed pressure drives two slower knobs — the spacing of frames
// promoted to the full rung (stretched as load rises) and the effective
// batch width handed to the batching engine (widened as load rises for
// throughput, tightened as it falls for latency). Anchors (I/P frames) are
// never on the ladder: their segmentations are the references every later
// frame depends on.
package qos

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Step is one rung of the degradation ladder, ordered from most expensive
// (best quality) to cheapest. The zero value is StepFull, which is also how
// anchor frames — always computed in full — are reported.
type Step int

// Ladder rungs, most expensive first.
const (
	StepFull   Step = iota // full NN-L re-segmentation
	StepRefine             // NN-S refinement of the MV reconstruction
	StepRecon              // raw MV reconstruction, no NN
	StepSkip               // shed the frame

	// NumSteps bounds the Step enum; keep it last.
	NumSteps
)

var stepNames = [NumSteps]string{"full", "refine", "recon", "skip"}

// String returns the rung's short name (used in counter names and flags).
func (s Step) String() string {
	if s >= 0 && s < NumSteps {
		return stepNames[s]
	}
	return "unknown"
}

// Class is a session's QoS tier. Premium sessions hold quality longer under
// load; free sessions are degraded first, at Config.FreeBias of the
// premium pressure thresholds.
type Class int

// QoS classes.
const (
	ClassPremium Class = iota
	ClassFree
)

// String returns the class's wire name.
func (c Class) String() string {
	if c == ClassFree {
		return "free"
	}
	return "premium"
}

// ParseClass parses a wire-form class. The empty string is premium (the
// default for clients that do not speak QoS).
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "premium":
		return ClassPremium, nil
	case "free":
		return ClassFree, nil
	}
	return ClassPremium, fmt.Errorf("qos: unknown class %q (want premium or free)", s)
}

// Load is one instantaneous load observation.
type Load struct {
	// QueueDepth is the server-wide count of frames admitted but not yet
	// served.
	QueueDepth int
	// Workers is the server's shared worker budget; queue depth is
	// normalized by it so the same Config works across machine sizes.
	Workers int
	// Occupancy is the batching engine's fill fraction in [0, 1] (0 when
	// there is no batcher).
	Occupancy float64
}

// Pressure collapses the observation to one scalar: queued frames per
// worker, plus the batch fill fraction. An idle server sits near 0; a
// server with a full per-session queue is far above every default
// threshold.
func (l Load) Pressure() float64 {
	w := l.Workers
	if w < 1 {
		w = 1
	}
	p := float64(l.QueueDepth)/float64(w) + l.Occupancy
	if p < 0 {
		return 0
	}
	return p
}

// Config parameterizes a Controller. Thresholds are pressures (see
// Load.Pressure); a zero value selects the documented default, a negative
// value disables that rung outright (the knob tests use to force a
// constant rung).
type Config struct {
	// FullBelow is the pressure below which B-frames are promoted to the
	// full NN-L rung (subject to the closed loop's promotion spacing).
	// Default 0.5; negative never promotes.
	FullBelow float64
	// ReconAt is the pressure at which refinement degrades to the raw MV
	// reconstruction. Default 4; negative degrades always.
	ReconAt float64
	// SkipAt is the pressure at which B-frames are shed entirely.
	// Default 16; negative sheds always.
	SkipAt float64
	// FreeBias scales every threshold for ClassFree sessions, so they
	// degrade at a fraction of the premium pressure. Default 0.5; must be
	// in (0, 1].
	FreeBias float64
	// Alpha is the EWMA smoothing factor of the closed loop (the slow
	// knobs: promotion spacing, batch width). Default 0.2.
	Alpha float64
}

// withDefaults resolves unset (zero) fields; negative thresholds are kept
// as explicit "disable this rung" values.
func (c Config) withDefaults() Config {
	if c.FullBelow == 0 {
		c.FullBelow = 0.5
	}
	if c.ReconAt == 0 {
		c.ReconAt = 4
	}
	if c.SkipAt == 0 {
		c.SkipAt = 16
	}
	if c.FreeBias <= 0 || c.FreeBias > 1 {
		c.FreeBias = 0.5
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	return c
}

// Controller picks ladder rungs and runs the closed loop. Select is a pure
// function; Observe feeds the EWMA the slow knobs read. All methods are
// safe for concurrent use.
type Controller struct {
	cfg Config
	// ewma holds math.Float64bits of the smoothed pressure; CAS-updated so
	// many workers can Observe concurrently without a lock.
	ewma atomic.Uint64
}

// NewController builds a controller with cfg's unset fields defaulted.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Config reports the controller's resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Select picks the ladder rung for one B-frame. It is deterministic: the
// same (Load, Class) always yields the same Step, independent of the
// controller's history. Thresholds are compared against the class-scaled
// values, so free sessions degrade at FreeBias of the premium pressure.
func (c *Controller) Select(l Load, cl Class) Step {
	p := l.Pressure()
	bias := 1.0
	if cl == ClassFree {
		bias = c.cfg.FreeBias
	}
	switch {
	case p >= c.cfg.SkipAt*bias:
		return StepSkip
	case p >= c.cfg.ReconAt*bias:
		return StepRecon
	case p < c.cfg.FullBelow*bias:
		return StepFull
	}
	return StepRefine
}

// Observe feeds one load observation into the closed loop's EWMA.
func (c *Controller) Observe(l Load) {
	p := l.Pressure()
	for {
		old := c.ewma.Load()
		prev := math.Float64frombits(old)
		next := prev + c.cfg.Alpha*(p-prev)
		if c.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Pressure reports the smoothed (EWMA) pressure the slow knobs act on.
func (c *Controller) Pressure() float64 {
	return math.Float64frombits(c.ewma.Load())
}

// BatchWidth maps the smoothed pressure to an effective batch width in
// [1, ceiling]: 1 when idle (flush immediately, minimum latency), the full
// ceiling at and beyond the recon threshold (amortize everything,
// throughput over latency), linear in between. A non-positive ceiling
// reports 1.
func (c *Controller) BatchWidth(ceiling int) int {
	if ceiling < 1 {
		return 1
	}
	ra := c.cfg.ReconAt
	if ra <= 0 {
		return ceiling
	}
	frac := c.Pressure() / ra
	if frac > 1 {
		frac = 1
	}
	w := 1 + int(math.Round(frac*float64(ceiling-1)))
	if w > ceiling {
		w = ceiling
	}
	return w
}

// ResegInterval is the closed loop's promotion spacing: a B-frame selected
// for the full rung is actually promoted only when its display index is a
// multiple of the interval. 1 promotes every selected frame (idle), the
// spacing stretches (2, then 4) as smoothed pressure approaches FullBelow,
// and 0 disables promotion entirely at and beyond it.
func (c *Controller) ResegInterval() int {
	fb := c.cfg.FullBelow
	if fb <= 0 {
		return 0
	}
	p := c.Pressure()
	switch {
	case p >= fb:
		return 0
	case p < fb/4:
		return 1
	case p < fb/2:
		return 2
	}
	return 4
}
