package qos

import (
	"sync"
	"testing"
)

// TestSelectDeterministic pins the determinism contract: Select is a pure
// function of (Load, Class) — repeated calls and interleaved Observe calls
// never change the answer for the same input.
func TestSelectDeterministic(t *testing.T) {
	c := NewController(Config{})
	loads := []Load{
		{QueueDepth: 0, Workers: 4},
		{QueueDepth: 3, Workers: 4, Occupancy: 0.25},
		{QueueDepth: 20, Workers: 4, Occupancy: 1},
		{QueueDepth: 100, Workers: 4},
		{QueueDepth: 7, Workers: 1, Occupancy: 0.5},
	}
	for _, l := range loads {
		for _, cl := range []Class{ClassPremium, ClassFree} {
			first := c.Select(l, cl)
			for i := 0; i < 3; i++ {
				// Observe perturbs the closed-loop state between calls; the
				// per-frame selection must not read it.
				c.Observe(Load{QueueDepth: i * 50, Workers: 1})
				if got := c.Select(l, cl); got != first {
					t.Fatalf("Select(%+v, %v) not deterministic: %v then %v", l, cl, first, got)
				}
			}
		}
	}
}

// TestSelectMonotoneInPressure asserts the ladder degrades monotonically:
// rising pressure never selects a more expensive rung.
func TestSelectMonotoneInPressure(t *testing.T) {
	c := NewController(Config{})
	for _, cl := range []Class{ClassPremium, ClassFree} {
		prev := StepFull
		for q := 0; q <= 80; q++ {
			got := c.Select(Load{QueueDepth: q, Workers: 4}, cl)
			if got < prev {
				t.Fatalf("class %v: queue %d selected %v after %v — cheaper pressure picked costlier rung later", cl, q, got, prev)
			}
			prev = got
		}
		if prev != StepSkip {
			t.Fatalf("class %v: heaviest load selected %v, want skip", cl, prev)
		}
	}
}

// TestFreeClassDegradesFirst asserts the class bias: at any fixed load a
// free session's rung is never more expensive than a premium session's.
func TestFreeClassDegradesFirst(t *testing.T) {
	c := NewController(Config{})
	sawGap := false
	for q := 0; q <= 80; q++ {
		l := Load{QueueDepth: q, Workers: 4}
		p, f := c.Select(l, ClassPremium), c.Select(l, ClassFree)
		if f < p {
			t.Fatalf("queue %d: free got %v, premium %v — free served better than premium", q, f, p)
		}
		if f > p {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatal("free class never degraded earlier than premium across the sweep")
	}
}

// TestForcedRungs pins the negative-threshold escape hatches the quality
// tests use to hold the ladder on one rung.
func TestForcedRungs(t *testing.T) {
	l := Load{QueueDepth: 2, Workers: 4}
	cases := []struct {
		cfg  Config
		want Step
	}{
		{Config{FullBelow: 1e9, ReconAt: 1e18, SkipAt: 1e18}, StepFull},
		{Config{FullBelow: -1, ReconAt: 1e18, SkipAt: 1e18}, StepRefine},
		{Config{FullBelow: -1, ReconAt: -1, SkipAt: 1e18}, StepRecon},
		{Config{SkipAt: -1}, StepSkip},
	}
	for _, tc := range cases {
		if got := NewController(tc.cfg).Select(l, ClassPremium); got != tc.want {
			t.Errorf("cfg %+v selected %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

// TestClosedLoopKnobs walks the EWMA up and down and checks both slow knobs
// move the documented direction: batch width widens with load and tightens
// as it falls; promotion spacing stretches with load and disappears.
func TestClosedLoopKnobs(t *testing.T) {
	c := NewController(Config{})
	if w := c.BatchWidth(8); w != 1 {
		t.Fatalf("idle batch width %d, want 1", w)
	}
	if iv := c.ResegInterval(); iv != 1 {
		t.Fatalf("idle promotion interval %d, want 1", iv)
	}
	prevW, prevIv := 1, 1
	for q := 0; q <= 64; q += 2 {
		for i := 0; i < 50; i++ { // converge the EWMA to this level
			c.Observe(Load{QueueDepth: q, Workers: 4})
		}
		w, iv := c.BatchWidth(8), c.ResegInterval()
		if w < prevW {
			t.Fatalf("queue %d: batch width narrowed %d -> %d under rising load", q, prevW, w)
		}
		if iv != 0 && prevIv != 0 && iv < prevIv {
			t.Fatalf("queue %d: promotion interval tightened %d -> %d under rising load", q, prevIv, iv)
		}
		if prevIv == 0 && iv != 0 {
			t.Fatalf("queue %d: promotion re-enabled (%d) under rising load", q, iv)
		}
		prevW, prevIv = w, iv
	}
	if prevW != 8 {
		t.Fatalf("saturated batch width %d, want ceiling 8", prevW)
	}
	if prevIv != 0 {
		t.Fatalf("saturated promotion interval %d, want 0 (disabled)", prevIv)
	}
	// Load falls away: both knobs must relax back.
	for i := 0; i < 200; i++ {
		c.Observe(Load{QueueDepth: 0, Workers: 4})
	}
	if w := c.BatchWidth(8); w != 1 {
		t.Fatalf("batch width %d after load fell, want 1", w)
	}
	if iv := c.ResegInterval(); iv != 1 {
		t.Fatalf("promotion interval %d after load fell, want 1", iv)
	}
}

// TestObserveConcurrent exercises the CAS loop under contention (run with
// -race); the EWMA must land between the two observed levels.
func TestObserveConcurrent(t *testing.T) {
	c := NewController(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Observe(Load{QueueDepth: 4 * (g % 2), Workers: 1})
			}
		}(g)
	}
	wg.Wait()
	if p := c.Pressure(); p < 0 || p > 4 {
		t.Fatalf("EWMA %v outside the observed [0,4] range", p)
	}
}

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{"": ClassPremium, "premium": ClassPremium, "free": ClassFree} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseClass("gold"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}
