// Package adapt is the online per-stream adaptation tier: it fine-tunes a
// private clone of NN-S on pseudo-labels harvested from the stream's own
// NN-L anchor segmentations, entirely in the shadow of serving.
//
// VR-DANN ships one frozen NN-S, trained offline, and every stream pays for
// that generality: content the training set never saw (different object
// shapes, deformation statistics, illumination) refines worse than content
// it did. But the serving pipeline already produces exactly the supervision
// an online learner needs — every anchor frame gets a real NN-L
// segmentation, and NN-S's whole job is to reproduce NN-L-quality masks
// from coarse reconstructions. So each session can treat its own anchors as
// a free, continuously refreshed training set: degrade an anchor's NN-L
// mask to the 2-bit reconstruction alphabet, sandwich it between its
// neighbouring anchors, and train the clone to recover the NN-L mask. That
// is the same input contract NN-S serves under, built without ground truth.
//
// Three rules keep the tier safe, in priority order:
//
//  1. Training never delays a frame. The trainer is a single background
//     goroutine gated on the serving scheduler's idleness signal (the same
//     occupancy the PR-5 batching Stalled hook reads); it takes short
//     bounded step bursts and re-checks idleness before every step and
//     every promotion evaluation.
//  2. Serving weights only improve. A candidate is promoted only when it
//     beats the currently serving weights on the freshest pseudo-labels by
//     a margin, and every promotion is validated against the session's
//     rolling refined-vs-anchor F-score: a regression rolls the session
//     back to a snapshot of the previous weights (SaveParams/LoadParams).
//  3. Adapted sessions are cache-isolated. Every swap bumps a weights
//     version that the serving layer folds into the session's content-cache
//     fingerprint, so a session running adapted weights can never serve —
//     or poison — masks cached under the base model's key.
package adapt

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// Config tunes one session's Adapter. The zero value of every tuning field
// selects a sensible default; Base is the only required field.
type Config struct {
	// Base is the serving NN-S at session open. The adapter trains a clone;
	// the network itself is never mutated.
	Base *nn.RefineNet
	// Idle reports whether the serving scheduler currently has no frame
	// work. The trainer only steps while Idle returns true, re-checking
	// before every step. A nil Idle trains whenever examples exist (tests).
	Idle func() bool
	// Quantize, when non-nil, compiles promoted weights for the int8
	// execution tier. It runs on the trainer goroutine, off the serving
	// path. A quantization error vetoes the promotion.
	Quantize func(*nn.RefineNet) (*nn.QuantRefineNet, error)
	// Obs receives per-session adaptation metrics; ServerObs mirrors them
	// server-wide (both nil-safe).
	Obs, ServerObs *obs.Collector

	// MaxExamples bounds the pseudo-label ring (default 12 anchors).
	MaxExamples int
	// MinExamples is the harvest size below which the trainer stays idle
	// (default 3 — one sandwich triple).
	MinExamples int
	// LR is the fine-tune learning rate (default 0.02).
	LR float64
	// Optimizer selects "adam" (default) or "sgd".
	Optimizer string
	// Momentum applies to the sgd optimizer (default 0.9).
	Momentum float64
	// BlockSize is the block granularity at which anchor masks are degraded
	// to the 2-bit reconstruction alphabet for training inputs (default 8,
	// the codec macro-block).
	BlockSize int
	// TrainScale downsamples training inputs by this factor (default 1, no
	// downsampling). The convolutional weights are resolution-agnostic, so
	// fine-tuning at half resolution teaches the same boundary statistics at
	// a quarter of the per-step cost — which bounds how long a straggler
	// step (one that started in an idle gap a frame then arrived into) can
	// compete with serving on a starved machine. The degradation block
	// shrinks with the scale so the coarseness profile matches serving.
	TrainScale int
	// StepsPerBurst bounds consecutive fine-tune steps per idle wakeup
	// (default 4), so a long idle gap cannot starve the Go scheduler.
	StepsPerBurst int
	// MaxSteps bounds total fine-tune steps for the session (0 = unbounded).
	MaxSteps int64
	// EvalEvery is the step interval between promotion evaluations
	// (default 8).
	EvalEvery int
	// MinImprove is how much the candidate must beat the serving weights'
	// F-score on held-out pseudo-labels to be promoted (default 0.005).
	// Negative values force promotion at every evaluation — a test and
	// smoke hook, mirroring the QoS ladder's negative thresholds.
	MinImprove float64
	// DriftWindow is the rolling refined-vs-anchor F-score window length in
	// B-frames (default 16).
	DriftWindow int
	// RollbackAfter is how many drift samples a fresh promotion is judged
	// on (default 4); RollbackMargin is the rolling-F drop below the
	// pre-promotion baseline that triggers rollback (default 0.05).
	RollbackAfter  int
	RollbackMargin float64
	// IdlePoll is the trainer's wakeup period when no harvest activity
	// nudges it (default 2ms).
	IdlePoll time.Duration
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.MaxExamples <= 0 {
		d.MaxExamples = 12
	}
	if d.MinExamples < 3 {
		d.MinExamples = 3
	}
	if d.LR <= 0 {
		d.LR = 0.02
	}
	if d.Optimizer == "" {
		d.Optimizer = "adam"
	}
	if d.Momentum <= 0 {
		d.Momentum = 0.9
	}
	if d.BlockSize <= 0 {
		d.BlockSize = 8
	}
	if d.TrainScale <= 0 {
		d.TrainScale = 1
	}
	if d.StepsPerBurst <= 0 {
		d.StepsPerBurst = 4
	}
	if d.EvalEvery <= 0 {
		d.EvalEvery = 8
	}
	if d.MinImprove == 0 {
		d.MinImprove = 0.005
	}
	if d.DriftWindow <= 0 {
		d.DriftWindow = 16
	}
	if d.RollbackAfter <= 0 {
		d.RollbackAfter = 4
	}
	if d.RollbackMargin <= 0 {
		d.RollbackMargin = 0.05
	}
	if d.IdlePoll <= 0 {
		d.IdlePoll = 2 * time.Millisecond
	}
	return d
}

// Example is one harvested pseudo-label: the luma of an anchor frame and
// the NN-L segmentation the pipeline computed for it. Both are retained by
// reference; the serving layer treats computed masks and decoded frames as
// immutable once published.
type Example struct {
	Display int
	Luma    *video.Frame
	Mask    *video.Mask
}

// Promotion is one weight swap the serving layer should apply at its next
// safe boundary. Net is a dedicated clone the receiver owns; Quant is its
// int8 compilation when the session serves the quantized tier.
type Promotion struct {
	Net     *nn.RefineNet
	Quant   *nn.QuantRefineNet
	Version uint64
}

// Adapter owns one session's online-learning state: the pseudo-label ring,
// the background trainer, the promotion mailbox and the drift monitor.
// Harvest, ObserveDrift and TakePromoted are called from the serving
// worker; the trainer goroutine runs everything else.
type Adapter struct {
	cfg Config

	mu       sync.Mutex
	examples []Example
	pending  *Promotion // promotion mailbox, nil when empty
	closed   bool

	// Drift monitor (mu). drift is a ring of per-B-frame F-scores.
	drift        []float64
	driftLen     int
	driftNext    int
	driftSum     float64
	validating   bool
	validSamples int
	baselineF    float64
	rollbackReq  bool

	// Counters mirrored to tests (mu).
	steps      int64
	promotions int64
	rollbacks  int64

	// Trainer-goroutine state: never touched by serving callers.
	net         *nn.RefineNet // training clone
	serving     *nn.RefineNet // trainer's copy of the currently serving weights
	opt         nn.Optimizer
	rng         *rand.Rand
	snapshot    []byte // SaveParams of the previous serving weights
	version     uint64
	lastSkipped int64
	evalPending bool // an EvalEvery boundary passed; evaluate at the next idle slot

	stop   chan struct{}
	done   chan struct{}
	notify chan struct{} // 1-buffered trainer nudge (rollback requests)
}

// New starts a session adapter and its background trainer.
func New(cfg Config) (*Adapter, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("adapt: Config.Base is required")
	}
	c := cfg.withDefaults()
	a := &Adapter{
		cfg:     c,
		net:     c.Base.Clone(),
		serving: c.Base.Clone(),
		rng:     rand.New(rand.NewSource(1)),
		drift:   make([]float64, c.DriftWindow),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		notify:  make(chan struct{}, 1),
	}
	switch c.Optimizer {
	case "adam":
		a.opt = nn.NewAdam(c.LR)
	case "sgd":
		a.opt = nn.NewSGD(c.LR, c.Momentum)
	default:
		return nil, fmt.Errorf("adapt: unknown optimizer %q", c.Optimizer)
	}
	// Training forwards must not pollute the serving collector's per-layer
	// NN-S timings.
	a.net.SetObserver(nil)
	a.serving.SetObserver(nil)
	go a.trainLoop()
	return a, nil
}

// Close stops the trainer, waits for any in-flight step to finish, and
// discards any promotion that was not yet taken: a retiring session must
// never hand partially-validated weights to anyone.
func (a *Adapter) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.closed = true
	close(a.stop)
	a.mu.Unlock()
	<-a.done
	a.mu.Lock()
	a.pending = nil
	a.mu.Unlock()
}

// Harvest records one (anchor luma, NN-L mask) pseudo-label. Call it each
// time the pipeline computes a real NN-L segmentation for the session; the
// ring keeps the freshest MaxExamples anchors.
func (a *Adapter) Harvest(display int, luma *video.Frame, mask *video.Mask) {
	if mask == nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.examples = append(a.examples, Example{Display: display, Luma: luma, Mask: mask})
	if len(a.examples) > a.cfg.MaxExamples {
		a.examples = a.examples[1:]
	}
	a.mu.Unlock()
	a.count(obs.CounterAdaptExamples, 1)
}

// ObserveDrift records one refined-vs-anchor F-score sample — the rolling
// quality signal the promotion contract is validated against. pred is a
// refined B-frame mask, anchor the nearest anchor's NN-L mask. When a
// promotion is under validation and the window regresses past the rollback
// margin, a rollback is requested (executed by the trainer, which reloads
// the snapshot even under load — protecting quality is not optional work).
func (a *Adapter) ObserveDrift(pred, anchor *video.Mask) {
	if pred == nil || anchor == nil || len(pred.Pix) != len(anchor.Pix) {
		return
	}
	f := segment.PixelFScore(pred, anchor)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	if a.driftLen == len(a.drift) {
		a.driftSum -= a.drift[a.driftNext]
	} else {
		a.driftLen++
	}
	a.drift[a.driftNext] = f
	a.driftSum += f
	a.driftNext = (a.driftNext + 1) % len(a.drift)
	roll := a.driftSum / float64(a.driftLen)
	var rollback bool
	if a.validating {
		a.validSamples++
		if a.validSamples >= a.cfg.RollbackAfter {
			a.validating = false
			if roll < a.baselineF-a.cfg.RollbackMargin {
				a.rollbackReq = true
				rollback = true
			}
		}
	}
	a.mu.Unlock()
	a.gauge(obs.GaugeAdaptDriftF, int64(roll*1000))
	if rollback {
		// Nudge the trainer immediately rather than waiting out IdlePoll.
		select {
		case a.notify <- struct{}{}:
		default:
		}
	}
}

// TakePromoted returns the most recent untaken promotion, or false. The
// serving worker polls it at safe swap boundaries (chunk start, before the
// engine for the chunk is built), so in-flight work always finishes on the
// weights it started with.
func (a *Adapter) TakePromoted() (Promotion, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pending == nil || a.closed {
		return Promotion{}, false
	}
	p := *a.pending
	a.pending = nil
	return p, true
}

// Steps returns fine-tune steps taken so far.
func (a *Adapter) Steps() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.steps }

// Promotions returns how many candidate weight sets were promoted.
func (a *Adapter) Promotions() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.promotions }

// Rollbacks returns how many promotions were reverted on drift regression.
func (a *Adapter) Rollbacks() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.rollbacks }

// RollingF returns the current rolling refined-vs-anchor F-score (0 before
// any sample).
func (a *Adapter) RollingF() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.driftLen == 0 {
		return 0
	}
	return a.driftSum / float64(a.driftLen)
}

// count mirrors a counter to the session and server collectors.
func (a *Adapter) count(c obs.Counter, n int64) {
	a.cfg.Obs.Count(c, n)
	a.cfg.ServerObs.Count(c, n)
}

// gauge mirrors a gauge to the session and server collectors.
func (a *Adapter) gauge(g obs.Gauge, v int64) {
	a.cfg.Obs.GaugeSet(g, v)
	a.cfg.ServerObs.GaugeSet(g, v)
}

// trainLoop is the background trainer: wake, honour rollback requests,
// then take a bounded burst of fine-tune steps while the scheduler is idle.
func (a *Adapter) trainLoop() {
	defer close(a.done)
	tick := time.NewTicker(a.cfg.IdlePoll)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-a.notify:
		case <-tick.C:
		}
		if a.takeRollbackReq() {
			a.rollback()
			continue
		}
		for i := 0; i < a.cfg.StepsPerBurst; i++ {
			select {
			case <-a.stop:
				return
			default:
			}
			if a.cfg.Idle != nil && !a.cfg.Idle() {
				break
			}
			// A promotion evaluation is several forward passes plus snapshot
			// serialization — far longer than one fine-tune step — so it takes
			// a burst slot of its own behind the same idleness check, instead
			// of riding un-gated on the tail of the step that earned it.
			if a.evalPending {
				a.evalPending = false
				a.maybePromote()
				continue
			}
			if !a.trainStep() {
				break
			}
		}
	}
}

func (a *Adapter) takeRollbackReq() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.rollbackReq
	a.rollbackReq = false
	return r
}

// sampleTriple picks a random run of three consecutive harvested anchors.
func (a *Adapter) sampleTriple() (prev, mid, next Example, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.examples) < a.cfg.MinExamples {
		return Example{}, Example{}, Example{}, false
	}
	i := 1 + a.rng.Intn(len(a.examples)-2)
	return a.examples[i-1], a.examples[i], a.examples[i+1], true
}

// latestTriples returns up to n of the freshest consecutive-anchor triples
// for promotion evaluation.
func (a *Adapter) latestTriples(n int) [][3]Example {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [][3]Example
	for i := len(a.examples) - 2; i >= 1 && len(out) < n; i-- {
		out = append(out, [3]Example{a.examples[i-1], a.examples[i], a.examples[i+1]})
	}
	return out
}

// sandwichFor builds the NN-S training input for a triple: the middle
// anchor's NN-L mask degraded to the 2-bit block reconstruction alphabet,
// flanked by its neighbouring anchors' masks — the same contract NN-S
// serves under, with the NN-L mask itself as the label. Masks are
// subsampled by TrainScale first (with the degradation block shrunk to
// match), so training cost scales down without changing what is taught.
func (a *Adapter) sandwichFor(prev, mid, next Example) (*tensor.Tensor, *tensor.Tensor) {
	pm := DownscaleMask(prev.Mask, a.cfg.TrainScale)
	mm := DownscaleMask(mid.Mask, a.cfg.TrainScale)
	nm := DownscaleMask(next.Mask, a.cfg.TrainScale)
	block := a.cfg.BlockSize / a.cfg.TrainScale
	if block < 1 {
		block = 1
	}
	rec := DegradeMask(mm, block)
	return segment.Sandwich(pm, rec, nm), segment.MaskToTensor(mm)
}

// trainStep runs one fine-tune step; false means no work was available.
func (a *Adapter) trainStep() bool {
	if a.cfg.MaxSteps > 0 && a.Steps() >= a.cfg.MaxSteps {
		return false
	}
	prev, mid, next, ok := a.sampleTriple()
	if !ok {
		return false
	}
	x, target := a.sandwichFor(prev, mid, next)
	logits := a.net.Forward(x)
	loss, grad := nn.BCEWithLogits(logits, target)
	a.net.Backward(grad)
	a.opt.Step(a.net.Params(), a.net.Grads())
	if sk := a.opt.SkippedUpdates(); sk > a.lastSkipped {
		a.count(obs.CounterAdaptBadGrads, sk-a.lastSkipped)
		a.lastSkipped = sk
	}
	a.count(obs.CounterAdaptSteps, 1)
	a.gauge(obs.GaugeAdaptLoss, int64(loss*1000))
	a.mu.Lock()
	a.steps++
	steps := a.steps
	a.mu.Unlock()
	if steps%int64(a.cfg.EvalEvery) == 0 {
		a.evalPending = true
	}
	return true
}

// evalF scores a network's refined masks against the pseudo-labels of the
// given triples. The network's activation caches are scratch, so both the
// candidate and the trainer's serving copy can be evaluated directly.
func (a *Adapter) evalF(net *nn.RefineNet, triples [][3]Example) float64 {
	var sum float64
	for _, t := range triples {
		x, target := a.sandwichFor(t[0], t[1], t[2])
		logits := net.Forward(x)
		m := video.NewMask(x.Shape[2], x.Shape[1])
		label := video.NewMask(x.Shape[2], x.Shape[1])
		for i, v := range logits.Data {
			if v > 0 {
				m.Pix[i] = 1
			}
			if target.Data[i] > 0.5 {
				label.Pix[i] = 1
			}
		}
		sum += segment.PixelFScore(m, label)
	}
	return sum / float64(len(triples))
}

// maybePromote compares the candidate against the serving weights on the
// freshest pseudo-labels and, if it wins by the margin, stages a promotion:
// snapshot the old weights, bump the version, re-quantize if the session
// serves int8, and leave the swap in the mailbox for the worker.
func (a *Adapter) maybePromote() {
	triples := a.latestTriples(3)
	if len(triples) == 0 {
		return
	}
	candF := a.evalF(a.net, triples)
	servF := a.evalF(a.serving, triples)
	if candF < servF+a.cfg.MinImprove {
		return
	}
	var snap bytes.Buffer
	if err := nn.SaveParams(&snap, a.serving); err != nil {
		return // keep serving; nothing was swapped
	}
	promoted := a.net.Clone()
	promoted.SetObserver(nil)
	var q *nn.QuantRefineNet
	if a.cfg.Quantize != nil {
		var err error
		if q, err = a.cfg.Quantize(promoted); err != nil {
			return // a weight set that cannot compile must not serve
		}
	}
	a.snapshot = snap.Bytes()
	a.serving = promoted
	a.version++
	a.publish(Promotion{Net: promoted.Clone(), Quant: q, Version: a.version}, true)
}

// rollback restores the snapshot taken at the last promotion and stages it
// as the next swap. The training clone restarts from the restored weights
// with a fresh optimizer — its moment estimates described the rejected
// trajectory.
func (a *Adapter) rollback() {
	if a.snapshot == nil {
		return
	}
	restored := a.cfg.Base.Clone()
	restored.SetObserver(nil)
	if err := nn.LoadParams(bytes.NewReader(a.snapshot), restored); err != nil {
		return
	}
	var q *nn.QuantRefineNet
	if a.cfg.Quantize != nil {
		var err error
		if q, err = a.cfg.Quantize(restored); err != nil {
			return
		}
	}
	a.serving = restored
	a.net = restored.Clone()
	a.net.SetObserver(nil)
	switch a.cfg.Optimizer {
	case "sgd":
		a.opt = nn.NewSGD(a.cfg.LR, a.cfg.Momentum)
	default:
		a.opt = nn.NewAdam(a.cfg.LR)
	}
	a.lastSkipped = 0
	a.snapshot = nil
	a.version++
	a.publish(Promotion{Net: restored.Clone(), Quant: q, Version: a.version}, false)
}

// publish stages a swap in the mailbox (unless the adapter closed while it
// was being built) and records it. promote distinguishes promotions from
// rollbacks in the metrics and in validation arming.
func (a *Adapter) publish(p Promotion, promote bool) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.pending = &p
	if promote {
		a.promotions++
		// Arm drift validation: the baseline is the rolling F the old
		// weights earned.
		a.validating = true
		a.validSamples = 0
		if a.driftLen > 0 {
			a.baselineF = a.driftSum / float64(a.driftLen)
		} else {
			a.baselineF = 0
		}
	} else {
		a.rollbacks++
		a.validating = false
	}
	a.mu.Unlock()
	if promote {
		a.count(obs.CounterAdaptPromotions, 1)
	} else {
		a.count(obs.CounterAdaptRollbacks, 1)
	}
	a.gauge(obs.GaugeAdaptVersion, int64(p.Version))
}

// DegradeMask block-quantizes a binary mask to the 2-bit reconstruction
// alphabet: blocks at least 3/4 foreground read white, at most 1/4 read
// black, the rest gray — the coarseness profile of an MV-copied block.
func DegradeMask(m *video.Mask, block int) *segment.ReconMask {
	rec := segment.NewReconMask(m.W, m.H)
	for by := 0; by < m.H; by += block {
		for bx := 0; bx < m.W; bx += block {
			h := block
			if by+h > m.H {
				h = m.H - by
			}
			w := block
			if bx+w > m.W {
				w = m.W - bx
			}
			var fg int
			for y := by; y < by+h; y++ {
				for x := bx; x < bx+w; x++ {
					if m.Pix[y*m.W+x] != 0 {
						fg++
					}
				}
			}
			code := uint8(segment.ReconGrayA)
			if 4*fg <= w*h {
				code = segment.ReconBlack
			} else if 4*fg >= 3*w*h {
				code = segment.ReconWhite
			}
			for y := by; y < by+h; y++ {
				for x := bx; x < bx+w; x++ {
					rec.Pix[y*m.W+x] = code
				}
			}
		}
	}
	return rec
}

// DownscaleMask subsamples a mask by an integer factor (nearest neighbour;
// factor <= 1 returns the mask unchanged).
func DownscaleMask(m *video.Mask, factor int) *video.Mask {
	if factor <= 1 {
		return m
	}
	w := m.W / factor
	h := m.H / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := video.NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = m.Pix[y*factor*m.W+x*factor]
		}
	}
	return out
}

// SandwichCalibration builds n random sandwich-alphabet calibration tensors
// ([3,h,w] over {0, 0.5, 1}) for compiling adapted weights to int8 — the
// same input distribution the serving tier calibrates the base model on.
func SandwichCalibration(w, h, n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(3, h, w)
		for j := range t.Data {
			t.Data[j] = float32(rng.Intn(3)) / 2
		}
		out[i] = t
	}
	return out
}
