package adapt

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// diskMask builds a binary disk mask — a stand-in for an NN-L anchor
// segmentation.
func diskMask(w, h, cx, cy, r int) *video.Mask {
	m := video.NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				m.Pix[y*w+x] = 1
			}
		}
	}
	return m
}

// harvestScene feeds n drifting-disk anchors into the adapter.
func harvestScene(a *Adapter, w, h, n int) []*video.Mask {
	masks := make([]*video.Mask, n)
	for i := 0; i < n; i++ {
		masks[i] = diskMask(w, h, w/3+i, h/2, h/4+i%3)
		a.Harvest(i*4, nil, masks[i])
	}
	return masks
}

// waitFor polls cond for up to d.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// refineF runs a network on the degraded middle mask of a triple and scores
// the result against the pseudo-label.
func refineF(net *nn.RefineNet, prev, mid, next *video.Mask) float64 {
	rec := DegradeMask(mid, 8)
	x := segment.Sandwich(prev, rec, next)
	logits := net.Forward(x)
	m := video.NewMask(mid.W, mid.H)
	for i, v := range logits.Data {
		if v > 0 {
			m.Pix[i] = 1
		}
	}
	return segment.PixelFScore(m, mid)
}

// TestAdapterPromotesImprovedWeights checks the core loop end to end: an
// untrained base harvests pseudo-labels, fine-tunes in the background, and
// promotes weights that genuinely refine the session's own content better.
func TestAdapterPromotesImprovedWeights(t *testing.T) {
	base := nn.NewRefineNet(rand.New(rand.NewSource(41)), 4)
	col := obs.New()
	a, err := New(Config{Base: base, Obs: col, EvalEvery: 8, MinImprove: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	masks := harvestScene(a, 32, 32, 6)
	waitFor(t, 10*time.Second, func() bool { return a.Promotions() > 0 }, "first promotion")
	p, ok := a.TakePromoted()
	if !ok {
		t.Fatal("promotion counted but mailbox empty")
	}
	if p.Version == 0 {
		t.Fatalf("promoted version = 0, want >= 1")
	}
	if p.Net == nil {
		t.Fatal("promotion carries no network")
	}
	baseF := refineF(base.Clone(), masks[1], masks[2], masks[3])
	adaptedF := refineF(p.Net.Clone(), masks[1], masks[2], masks[3])
	if adaptedF <= baseF {
		t.Fatalf("promoted weights do not beat base on session content: %.3f vs %.3f", adaptedF, baseF)
	}
	snap := col.Snapshot()
	if snap.Counters[obs.CounterAdaptSteps.String()] == 0 {
		t.Fatal("no train steps counted")
	}
	if snap.Counters[obs.CounterAdaptExamples.String()] != 6 {
		t.Fatalf("examples counter = %d, want 6", snap.Counters[obs.CounterAdaptExamples.String()])
	}
	if snap.Counters[obs.CounterAdaptPromotions.String()] == 0 {
		t.Fatal("no promotion counted")
	}
}

// TestAdapterRollbackOnDriftRegression forces a promotion, then feeds a
// drift-score collapse: the adapter must request rollback and publish the
// snapshot — bit-identical to the pre-promotion serving weights — under a
// new (higher) version.
func TestAdapterRollbackOnDriftRegression(t *testing.T) {
	base := nn.NewRefineNet(rand.New(rand.NewSource(43)), 4)
	a, err := New(Config{
		Base:        base,
		EvalEvery:   4,
		MaxSteps:    4,  // exactly one evaluation, then the trainer idles
		MinImprove:  -1, // force the promotion regardless of quality
		DriftWindow: 4, RollbackAfter: 4, RollbackMargin: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	w, h := 32, 32
	good := diskMask(w, h, 16, 16, 8)
	// Establish a healthy rolling baseline before the promotion lands.
	for i := 0; i < 4; i++ {
		a.ObserveDrift(good, good) // F = 1
	}
	harvestScene(a, w, h, 5)
	waitFor(t, 10*time.Second, func() bool { return a.Promotions() == 1 }, "forced promotion")
	if _, ok := a.TakePromoted(); !ok {
		t.Fatal("forced promotion not in mailbox")
	}

	// Post-promotion the stream's refined-vs-anchor score collapses.
	empty := video.NewMask(w, h)
	for i := 0; i < 4; i++ {
		a.ObserveDrift(empty, good) // F = 0
	}
	waitFor(t, 10*time.Second, func() bool { return a.Rollbacks() == 1 }, "rollback")
	p, ok := a.TakePromoted()
	if !ok {
		t.Fatal("rollback not published to mailbox")
	}
	if p.Version != 2 {
		t.Fatalf("rollback version = %d, want 2 (versions only move forward)", p.Version)
	}
	bp, rp := base.Params(), p.Net.Params()
	for pi := range bp {
		for i := range bp[pi].Data {
			if bp[pi].Data[i] != rp[pi].Data[i] {
				t.Fatalf("rollback weights differ from snapshot at param %d elem %d", pi, i)
			}
		}
	}
}

// TestAdapterIdleGateBlocksTraining checks a busy scheduler starves the
// trainer completely: harvested examples alone must not cause steps.
func TestAdapterIdleGateBlocksTraining(t *testing.T) {
	base := nn.NewRefineNet(rand.New(rand.NewSource(47)), 4)
	a, err := New(Config{Base: base, Idle: func() bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	harvestScene(a, 32, 32, 6)
	time.Sleep(40 * time.Millisecond)
	if s := a.Steps(); s != 0 {
		t.Fatalf("trainer took %d steps while the scheduler was busy, want 0", s)
	}
}

// TestAdapterCloseStopsTrainerAndDropsPromotion checks shutdown hygiene:
// Close with training in flight leaks no goroutine, and any weights staged
// but not yet taken are discarded — a retiring session must not promote.
func TestAdapterCloseStopsTrainerAndDropsPromotion(t *testing.T) {
	before := runtime.NumGoroutine()
	base := nn.NewRefineNet(rand.New(rand.NewSource(53)), 4)
	a, err := New(Config{Base: base, EvalEvery: 2, MinImprove: -1})
	if err != nil {
		t.Fatal(err)
	}
	harvestScene(a, 32, 32, 6)
	waitFor(t, 10*time.Second, func() bool { return a.Promotions() > 0 }, "staged promotion")
	a.Close()
	if _, ok := a.TakePromoted(); ok {
		t.Fatal("TakePromoted returned weights after Close")
	}
	// Harvest and drift observations after Close are inert.
	a.Harvest(99, nil, diskMask(32, 32, 16, 16, 8))
	a.ObserveDrift(diskMask(32, 32, 16, 16, 8), diskMask(32, 32, 16, 16, 8))
	if s := a.Steps(); s == 0 {
		t.Fatal("expected some training before close")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked after Close: %d -> %d\n%s", before, g, buf[:runtime.Stack(buf, true)])
	}
	// Close is idempotent.
	a.Close()
}

// TestDegradeMask pins the block-quantization codes the pseudo-label
// sandwich is built from.
func TestDegradeMask(t *testing.T) {
	m := video.NewMask(16, 8)
	// Left 8x8 block fully foreground; right block one foreground pixel.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			m.Pix[y*16+x] = 1
		}
	}
	m.Pix[0*16+12] = 1
	rec := DegradeMask(m, 8)
	if rec.Pix[0] != segment.ReconWhite {
		t.Fatalf("full block code = %d, want white", rec.Pix[0])
	}
	if rec.Pix[12] != segment.ReconBlack {
		t.Fatalf("1/64 block code = %d, want black", rec.Pix[12])
	}
	// A half-covered block reads gray.
	m2 := video.NewMask(8, 8)
	for y := 0; y < 4; y++ {
		for x := 0; x < 8; x++ {
			m2.Pix[y*8+x] = 1
		}
	}
	if rec2 := DegradeMask(m2, 8); rec2.Pix[0] != segment.ReconGrayA {
		t.Fatalf("half block code = %d, want gray", rec2.Pix[0])
	}
}

// TestDownscaleMask pins the nearest-neighbour subsampling the reduced-cost
// training path feeds the sandwich builder.
func TestDownscaleMask(t *testing.T) {
	m := video.NewMask(8, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 8; x++ {
			if x >= 4 {
				m.Pix[y*8+x] = 1
			}
		}
	}
	d := DownscaleMask(m, 2)
	if d.W != 4 || d.H != 3 {
		t.Fatalf("downscaled dims %dx%d, want 4x3", d.W, d.H)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			want := uint8(0)
			if x >= 2 {
				want = 1
			}
			if d.Pix[y*4+x] != want {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, d.Pix[y*4+x], want)
			}
		}
	}
	// Factor 1 is the identity, not a copy.
	if DownscaleMask(m, 1) != m {
		t.Fatal("factor 1 should return the mask unchanged")
	}
}

// TestSandwichCalibration checks the calibration tensors stay on the
// sandwich alphabet.
func TestSandwichCalibration(t *testing.T) {
	cal := SandwichCalibration(16, 8, 3, 7)
	if len(cal) != 3 {
		t.Fatalf("got %d tensors, want 3", len(cal))
	}
	for _, c := range cal {
		if c.Shape[0] != 3 || c.Shape[1] != 8 || c.Shape[2] != 16 {
			t.Fatalf("calibration shape %v, want [3 8 16]", c.Shape)
		}
		for _, v := range c.Data {
			if v != 0 && v != 0.5 && v != 1 {
				t.Fatalf("calibration value %v off the {0,0.5,1} alphabet", v)
			}
		}
	}
}
