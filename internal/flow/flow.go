// Package flow implements classical dense optical flow and flow-based
// warping. It substitutes for FlowNet in the DFF baseline: DFF's accuracy
// behaviour (flow error accumulating over the key-frame interval) and cost
// structure (per-pixel flow for every non-key frame) are preserved, while
// the architecture simulator charges the baseline at FlowNet-class
// operation counts.
package flow

import (
	"math"

	"vrdann/internal/video"
)

// Field is a dense motion field: for each pixel of the current frame, the
// displacement (U, V) pointing back into the reference frame.
type Field struct {
	W, H int
	U, V []float32
}

// NewField allocates a zero flow field.
func NewField(w, h int) *Field {
	return &Field{W: w, H: h, U: make([]float32, w*h), V: make([]float32, w*h)}
}

// BlockFlow estimates flow by exhaustive block matching: the frame is tiled
// into block×block patches and each patch searches ±rang pixels in ref for
// the minimum sum of absolute differences. The per-block vector is then
// assigned to all pixels of the block.
func BlockFlow(cur, ref *video.Frame, block, rang int) *Field {
	f := NewField(cur.W, cur.H)
	for by := 0; by < cur.H; by += block {
		bh := minInt(block, cur.H-by)
		for bx := 0; bx < cur.W; bx += block {
			bw := minInt(block, cur.W-bx)
			bestDX, bestDY := 0, 0
			best := int64(1) << 62
			for dy := -rang; dy <= rang; dy++ {
				for dx := -rang; dx <= rang; dx++ {
					var s int64
					for y := 0; y < bh; y++ {
						cy := by + y
						ry := clamp(cy+dy, 0, ref.H-1)
						for x := 0; x < bw; x++ {
							cx := bx + x
							rx := clamp(cx+dx, 0, ref.W-1)
							d := int64(cur.Pix[cy*cur.W+cx]) - int64(ref.Pix[ry*ref.W+rx])
							if d < 0 {
								d = -d
							}
							s += d
						}
						if s >= best {
							break
						}
					}
					if s < best {
						best, bestDX, bestDY = s, dx, dy
					}
				}
			}
			for y := by; y < by+bh; y++ {
				for x := bx; x < bx+bw; x++ {
					f.U[y*cur.W+x] = float32(bestDX)
					f.V[y*cur.W+x] = float32(bestDY)
				}
			}
		}
	}
	return f
}

// HornSchunck refines an initial flow field with the Horn–Schunck
// variational method: iters Jacobi iterations with smoothness weight alpha.
// Passing a nil init starts from zero flow. Input and output fields use the
// package's backward convention (a current pixel samples the reference at
// x+U, y+V); internally the solver works in the classical forward
// convention and converts at the boundaries.
func HornSchunck(cur, ref *video.Frame, init *Field, alpha float64, iters int) *Field {
	w, h := cur.W, cur.H
	f := NewField(w, h)
	if init != nil {
		for i := range f.U {
			f.U[i], f.V[i] = -init.U[i], -init.V[i]
		}
	}
	// Spatial and temporal gradients of the reference/current pair.
	ix := make([]float32, w*h)
	iy := make([]float32, w*h)
	it := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			x1 := clamp(x+1, 0, w-1)
			y1 := clamp(y+1, 0, h-1)
			ix[i] = (float32(ref.Pix[y*w+x1]) - float32(ref.Pix[i]) + float32(cur.Pix[y*w+x1]) - float32(cur.Pix[i])) / 2
			iy[i] = (float32(ref.Pix[y1*w+x]) - float32(ref.Pix[i]) + float32(cur.Pix[y1*w+x]) - float32(cur.Pix[i])) / 2
			it[i] = float32(cur.Pix[i]) - float32(ref.Pix[i])
		}
	}
	a2 := float32(alpha * alpha)
	nu := make([]float32, w*h)
	nv := make([]float32, w*h)
	for iter := 0; iter < iters; iter++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				ub := neighborMean(f.U, x, y, w, h)
				vb := neighborMean(f.V, x, y, w, h)
				num := ix[i]*ub + iy[i]*vb + it[i]
				den := a2 + ix[i]*ix[i] + iy[i]*iy[i]
				nu[i] = ub - ix[i]*num/den
				nv[i] = vb - iy[i]*num/den
			}
		}
		copy(f.U, nu)
		copy(f.V, nv)
	}
	for i := range f.U {
		f.U[i], f.V[i] = -f.U[i], -f.V[i]
	}
	return f
}

func neighborMean(a []float32, x, y, w, h int) float32 {
	s := a[clamp(y-1, 0, h-1)*w+x] + a[clamp(y+1, 0, h-1)*w+x] +
		a[y*w+clamp(x-1, 0, w-1)] + a[y*w+clamp(x+1, 0, w-1)]
	return s / 4
}

// WarpMask propagates a binary mask through the flow field: each current
// pixel samples the mask at its (nearest-integer) source location.
func WarpMask(m *video.Mask, f *Field) *video.Mask {
	out := video.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			i := y*m.W + x
			sx := x + int(roundF(f.U[i]))
			sy := y + int(roundF(f.V[i]))
			out.Pix[i] = m.At(sx, sy)
		}
	}
	return out
}

// WarpFrame propagates pixel values through the flow field.
func WarpFrame(fr *video.Frame, f *Field) *video.Frame {
	out := video.NewFrame(fr.W, fr.H)
	for y := 0; y < fr.H; y++ {
		for x := 0; x < fr.W; x++ {
			i := y*fr.W + x
			sx := clamp(x+int(roundF(f.U[i])), 0, fr.W-1)
			sy := clamp(y+int(roundF(f.V[i])), 0, fr.H-1)
			out.Pix[i] = fr.Pix[sy*fr.W+sx]
		}
	}
	return out
}

// MeanMagnitude returns the average flow vector magnitude in pixels.
func (f *Field) MeanMagnitude() float64 {
	var s float64
	for i := range f.U {
		u, v := float64(f.U[i]), float64(f.V[i])
		s += math.Hypot(u, v)
	}
	return s / float64(len(f.U))
}

func roundF(v float32) float32 {
	if v >= 0 {
		return float32(int(v + 0.5))
	}
	return float32(-int(-v + 0.5))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
