package flow

import (
	"math"
	"testing"

	"vrdann/internal/video"
)

// shiftedPair builds a textured frame and a copy shifted by (dx, dy).
func shiftedPair(w, h, dx, dy int) (ref, cur *video.Frame) {
	ref = video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ref.Pix[y*w+x] = uint8(128 + 60*math.Sin(0.35*float64(x))*math.Cos(0.3*float64(y)))
		}
	}
	cur = video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur.Pix[y*w+x] = ref.At(x-dx, y-dy)
		}
	}
	return ref, cur
}

func TestBlockFlowRecoversTranslation(t *testing.T) {
	ref, cur := shiftedPair(48, 40, 3, -2)
	f := BlockFlow(cur, ref, 8, 6)
	// Interior pixels should see flow ≈ (-3, 2): cur(x) == ref(x + flow).
	i := 20*48 + 24
	if f.U[i] != -3 || f.V[i] != 2 {
		t.Fatalf("flow = (%v,%v), want (-3,2)", f.U[i], f.V[i])
	}
}

func TestBlockFlowZeroForIdenticalFrames(t *testing.T) {
	ref, _ := shiftedPair(32, 32, 0, 0)
	f := BlockFlow(ref, ref, 8, 4)
	for i := range f.U {
		if f.U[i] != 0 || f.V[i] != 0 {
			t.Fatalf("nonzero flow %v,%v for identical frames", f.U[i], f.V[i])
		}
	}
	if f.MeanMagnitude() != 0 {
		t.Fatal("mean magnitude should be 0")
	}
}

func TestHornSchunckRefinesTowardTranslation(t *testing.T) {
	ref, cur := shiftedPair(48, 40, 1, 0)
	f := HornSchunck(cur, ref, nil, 8, 60)
	// Average interior U should be negative (pointing back to the source).
	var sum float64
	cnt := 0
	for y := 8; y < 32; y++ {
		for x := 8; x < 40; x++ {
			sum += float64(f.U[y*48+x])
			cnt++
		}
	}
	mean := sum / float64(cnt)
	if mean > -0.3 {
		t.Fatalf("Horn-Schunck mean U = %v, want clearly negative", mean)
	}
}

func TestWarpMaskFollowsFlow(t *testing.T) {
	m := video.NewMask(16, 16)
	for y := 4; y < 8; y++ {
		for x := 4; x < 8; x++ {
			m.Set(x, y, 1)
		}
	}
	f := NewField(16, 16)
	for i := range f.U {
		f.U[i] = -2 // current pixel samples mask at x-2
		f.V[i] = 0
	}
	out := WarpMask(m, f)
	// Object should appear shifted +2 in x.
	if out.At(6, 5) != 1 || out.At(9, 5) != 1 {
		t.Fatalf("warped mask wrong: %v %v", out.At(6, 5), out.At(9, 5))
	}
	if out.At(4, 5) != 0 {
		t.Fatal("warped mask kept old position")
	}
	if out.Area() != m.Area() {
		t.Fatalf("area changed: %d -> %d", m.Area(), out.Area())
	}
}

func TestWarpFrameIdentity(t *testing.T) {
	ref, _ := shiftedPair(20, 20, 0, 0)
	f := NewField(20, 20)
	out := WarpFrame(ref, f)
	for i := range out.Pix {
		if out.Pix[i] != ref.Pix[i] {
			t.Fatal("identity warp changed pixels")
		}
	}
}

func TestWarpEdgesClamp(t *testing.T) {
	ref, _ := shiftedPair(16, 16, 0, 0)
	f := NewField(16, 16)
	for i := range f.U {
		f.U[i] = 100
		f.V[i] = 100
	}
	out := WarpFrame(ref, f)
	// Every pixel samples the bottom-right corner.
	want := ref.At(15, 15)
	for _, p := range out.Pix {
		if p != want {
			t.Fatalf("clamped warp = %d, want %d", p, want)
		}
	}
}

func TestMeanMagnitude(t *testing.T) {
	f := NewField(2, 1)
	f.U[0], f.V[0] = 3, 4
	f.U[1], f.V[1] = 0, 0
	if got := f.MeanMagnitude(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("MeanMagnitude = %v, want 2.5", got)
	}
}
