package shard

import (
	"time"

	"vrdann/internal/serve"
)

// node is one backend's gateway-side state: last health report, session
// placement count, and the node-level circuit breaker. All fields are
// guarded by the gateway mutex; the breaker mirrors the serving layer's
// per-session breaker taxonomy one level up — consecutive proxy failures
// (connection refused, timeouts, 5xx) trip it, the node is unroutable for
// a doubling backoff window, and its sessions drain to the next owner on
// the ring at their next chunk header.
type node struct {
	url string
	// removed marks a node taken off the ring by RemoveNode; it stays in
	// the table so per-node counters survive until its sessions finish
	// migrating.
	removed bool
	// healthy is the last health probe's verdict. Nodes start healthy
	// (optimistic placement before the first probe); the chunk path
	// self-corrects through the breaker if optimism was wrong.
	healthy bool
	// probed is true once a health probe has answered, so /metrics can
	// distinguish "never probed" from "probed fine".
	probed bool
	// load is the node's last /healthz load report.
	load serve.LoadInfo

	// sessions counts gateway sessions currently placed here.
	sessions int

	// Node breaker: consecutive proxy failures, trips since last success,
	// and the end of the current unroutable window.
	consecFails int
	trips       int
	brokenUntil time.Time
}

// available reports whether the gateway may route sessions to the node:
// on the ring, last probe healthy, breaker closed, and not draining per
// its own load report.
func (n *node) available(now time.Time) bool {
	return !n.removed && n.healthy && !n.brokenUntil.After(now) && !n.load.Draining
}

// NodeStatus is the externally visible slice of one node's state, served
// in the gateway's /metrics nodes block.
type NodeStatus struct {
	URL         string         `json:"url"`
	Healthy     bool           `json:"healthy"`
	Probed      bool           `json:"probed"`
	Removed     bool           `json:"removed,omitempty"`
	BreakerOpen bool           `json:"breakerOpen"`
	Trips       int            `json:"trips"`
	Sessions    int            `json:"sessions"`
	Load        serve.LoadInfo `json:"load"`
}
