// Gateway tests live in an external test package so they can drive real
// backend nodes through internal/fault/chaos without an import cycle
// (chaos imports serve; shard must not be imported by either).
package shard_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/fault/chaos"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/shard"
	"vrdann/internal/video"
)

// testVideo is a small deterministic scene; ThresholdSegmenter is
// stateless and model-free, so every backend computes identical masks
// for identical chunks — the property the bit-identity assertions ride on.
func testVideo(frames int) *video.Video {
	return video.Generate(video.SceneSpec{
		Name: "shard-test", W: 64, H: 48, Frames: frames, Seed: 7, Noise: 1.0,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 9, X: 22, Y: 20,
			VX: 1.5, VY: 0.75, Intensity: 230, Foreground: true,
		}},
	})
}

func encodeVideo(t *testing.T, v *video.Video) []byte {
	t.Helper()
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st.Data
}

func nodeConfig() serve.Config {
	return serve.Config{
		MaxSessions: 16,
		Workers:     2,
		NewSegmenter: func(id string) segment.Segmenter {
			return &segment.ThresholdSegmenter{CloseRadius: 1}
		},
	}
}

// startNodes boots n in-process backends and registers cleanup.
func startNodes(t *testing.T, n int) []*chaos.Node {
	t.Helper()
	nodes := make([]*chaos.Node, n)
	for i := range nodes {
		nd, err := chaos.StartNode(nodeConfig())
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = nd.Stop(ctx)
		})
	}
	return nodes
}

func urlsOf(nodes []*chaos.Node) []string {
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.URL
	}
	return urls
}

func newGateway(t *testing.T, col *obs.Collector, urls ...string) *shard.Gateway {
	t.Helper()
	g, err := shard.NewGateway(shard.Config{
		Backends:       urls,
		HealthInterval: -1, // tests drive ProbeNow explicitly
		ProxyTimeout:   10 * time.Second,
		Obs:            col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = g.Close(ctx)
	})
	return g
}

type chunkJSON struct {
	Session string `json:"session"`
	Frames  []struct {
		Display int  `json:"display"`
		Dropped bool `json:"dropped"`
	} `json:"frames"`
}

// submitJSON proxies one chunk and decodes the JSON summary, failing the
// test on any non-200.
func submitJSON(t *testing.T, g *shard.Gateway, id string, data []byte) chunkJSON {
	t.Helper()
	resp, err := g.Chunk(context.Background(), id, data, "")
	if err != nil {
		t.Fatalf("session %s: %v", id, err)
	}
	if resp.Status != 200 {
		t.Fatalf("session %s: status %d: %s", id, resp.Status, resp.Body)
	}
	var out chunkJSON
	if err := json.Unmarshal(resp.Body, &out); err != nil {
		t.Fatalf("session %s: bad summary: %v", id, err)
	}
	return out
}

// requireContinuous asserts one session's concatenated summaries number
// displays 0..n-1 with no gap — the client-visible contract across
// migrations.
func requireContinuous(t *testing.T, id string, chunks []chunkJSON) {
	t.Helper()
	next := 0
	for _, c := range chunks {
		for _, fr := range c.Frames {
			if fr.Display != next {
				t.Fatalf("session %s: display %d, want %d", id, fr.Display, next)
			}
			next++
		}
	}
}

// TestGatewayServesAndRebases is the happy path: sessions hash across two
// backends, chunk summaries come back under the gateway's session id with
// continuous display numbering.
func TestGatewayServesAndRebases(t *testing.T) {
	v := testVideo(10)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 2)
	g := newGateway(t, obs.New(), urlsOf(nodes)...)
	ctx := context.Background()

	const sessions, chunksEach = 6, 2
	history := make(map[string][]chunkJSON)
	var ids []string
	for i := 0; i < sessions; i++ {
		id, err := g.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if p := g.Placement(id); p != nodes[0].URL && p != nodes[1].URL {
			t.Fatalf("session %s placed on %q", id, p)
		}
	}
	for c := 0; c < chunksEach; c++ {
		for _, id := range ids {
			out := submitJSON(t, g, id, chunk)
			if out.Session != id {
				t.Fatalf("summary names session %q, want %q", out.Session, id)
			}
			history[id] = append(history[id], out)
		}
	}
	for _, id := range ids {
		requireContinuous(t, id, history[id])
		if n := g.Migrations(id); n != 0 {
			t.Fatalf("session %s migrated %d times with no faults", id, n)
		}
		if err := g.CloseSession(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if n := g.SessionCount(); n != 0 {
		t.Fatalf("%d sessions tracked after close", n)
	}
}

// TestGatewayHealthProbe checks the prober decodes backend load reports
// and flips routability when a node quiesces.
func TestGatewayHealthProbe(t *testing.T) {
	nodes := startNodes(t, 2)
	g := newGateway(t, obs.New(), urlsOf(nodes)...)
	ctx := context.Background()
	if err := g.WaitHealthy(ctx, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	nodes[0].Server.Quiesce()
	g.ProbeNow(ctx)
	var st shard.NodeStatus
	for _, n := range g.Nodes() {
		if n.URL == nodes[0].URL {
			st = n
		}
	}
	if !st.Load.Draining {
		t.Fatal("quiesced node's load report not draining")
	}
	// New sessions must all land on the other node.
	for i := 0; i < 4; i++ {
		id, err := g.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if p := g.Placement(id); p != nodes[1].URL {
			t.Fatalf("session %s placed on draining node (%s)", id, p)
		}
	}
	nodes[0].Server.Resume()
	g.ProbeNow(ctx)
	if err := g.WaitHealthy(ctx, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayKillMigrates kills one of three backends mid-stream: every
// session keeps serving with zero client-visible errors, sessions from
// the dead node migrate with continuous display numbering, and the
// migration/breaker counters show up.
func TestGatewayKillMigrates(t *testing.T) {
	v := testVideo(8)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 3)
	col := obs.New()
	g := newGateway(t, col, urlsOf(nodes)...)
	ctx := context.Background()

	const sessions = 9
	var ids []string
	history := make(map[string][]chunkJSON)
	placed := make(map[string]string)
	for i := 0; i < sessions; i++ {
		id, err := g.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		history[id] = append(history[id], submitJSON(t, g, id, chunk))
		placed[id] = g.Placement(id)
	}
	victim := g.Placement(ids[0])
	var victimNode *chaos.Node
	for _, n := range nodes {
		if n.URL == victim {
			victimNode = n
		}
	}
	if victimNode == nil {
		t.Fatalf("no node matches placement %q", victim)
	}
	victimNode.Kill()

	for c := 0; c < 2; c++ {
		for _, id := range ids {
			history[id] = append(history[id], submitJSON(t, g, id, chunk))
		}
	}
	migrated := 0
	for _, id := range ids {
		requireContinuous(t, id, history[id])
		if placed[id] == victim {
			migrated++
			if g.Migrations(id) == 0 {
				t.Errorf("session %s was on the killed node but reports no migration", id)
			}
			if p := g.Placement(id); p == victim {
				t.Errorf("session %s still placed on dead node", id)
			}
		} else if g.Migrations(id) != 0 {
			t.Errorf("session %s migrated %d times though its node survived", id, g.Migrations(id))
		}
	}
	if migrated == 0 {
		t.Fatal("victim node held no sessions; test proves nothing")
	}
	if n := col.CounterValue(obs.CounterMigrations); n < int64(migrated) {
		t.Errorf("migrations counter %d, want >= %d", n, migrated)
	}
	if col.CounterValue(obs.CounterProxyErrors) == 0 {
		t.Error("proxy-errors counter still zero after node kill")
	}
}

// TestGatewayHungNodeTimesOut covers the fault a liveness check cannot
// see: the node accepts connections but never answers. The proxy timeout
// converts it into a node failure and the session migrates.
func TestGatewayHungNodeTimesOut(t *testing.T) {
	v := testVideo(6)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 2)
	g, err := shard.NewGateway(shard.Config{
		Backends:       urlsOf(nodes),
		HealthInterval: -1,
		ProxyTimeout:   500 * time.Millisecond,
		Obs:            obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = g.Close(ctx)
	}()
	ctx := context.Background()
	id, err := g.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	first := submitJSON(t, g, id, chunk)
	home := g.Placement(id)
	for _, n := range nodes {
		if n.URL == home {
			n.Hang()
			defer n.Unhang()
		}
	}
	second := submitJSON(t, g, id, chunk)
	requireContinuous(t, id, []chunkJSON{first, second})
	if g.Migrations(id) == 0 {
		t.Fatal("session did not migrate off the hung node")
	}
	if p := g.Placement(id); p == home {
		t.Fatalf("session still placed on hung node %s", p)
	}
}

// TestGatewayScaleUpRebalances adds a backend mid-stream: sessions whose
// ring ownership moves follow it at their next chunk header, counted as
// rebalances, with no client-visible disturbance.
func TestGatewayScaleUpRebalances(t *testing.T) {
	v := testVideo(6)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 2)
	col := obs.New()
	g := newGateway(t, col, nodes[0].URL)
	ctx := context.Background()

	const sessions = 8
	var ids []string
	history := make(map[string][]chunkJSON)
	for i := 0; i < sessions; i++ {
		id, err := g.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		history[id] = append(history[id], submitJSON(t, g, id, chunk))
	}
	g.AddNode(nodes[1].URL)
	moved := 0
	for _, id := range ids {
		history[id] = append(history[id], submitJSON(t, g, id, chunk))
		requireContinuous(t, id, history[id])
		if g.Placement(id) == nodes[1].URL {
			moved++
			if g.Migrations(id) != 1 {
				t.Errorf("session %s on new node with %d migrations", id, g.Migrations(id))
			}
		}
	}
	if moved == 0 {
		t.Fatal("no session rebalanced to the new node (8 sessions, 2 nodes)")
	}
	if moved == sessions {
		t.Fatal("every session moved; consistent hashing should move ~half")
	}
	if n := col.CounterValue(obs.CounterRebalances); n != int64(moved) {
		t.Errorf("rebalances counter %d, want %d", n, moved)
	}
}

// TestGatewayScaleDownDrains removes a backend: the node is quiesced,
// its sessions drain to survivors at their next chunk, and the removed
// node serves its remaining in-flight work (no abrupt errors).
func TestGatewayScaleDownDrains(t *testing.T) {
	v := testVideo(6)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 2)
	g := newGateway(t, obs.New(), urlsOf(nodes)...)
	ctx := context.Background()

	const sessions = 8
	var ids []string
	history := make(map[string][]chunkJSON)
	for i := 0; i < sessions; i++ {
		id, err := g.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		history[id] = append(history[id], submitJSON(t, g, id, chunk))
	}
	g.RemoveNode(nodes[0].URL)
	for _, id := range ids {
		history[id] = append(history[id], submitJSON(t, g, id, chunk))
		requireContinuous(t, id, history[id])
		if p := g.Placement(id); p != nodes[1].URL {
			t.Errorf("session %s still on removed node (%s)", id, p)
		}
	}
	// The removed backend eventually reports draining (quiesce is posted
	// asynchronously).
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[0].Server.Load().Draining {
		if time.Now().After(deadline) {
			t.Fatal("removed backend never quiesced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Scale back up: the node resumes and takes sessions again.
	nodes[0].Server.Resume()
	g.AddNode(nodes[0].URL)
	back := 0
	for _, id := range ids {
		history[id] = append(history[id], submitJSON(t, g, id, chunk))
		requireContinuous(t, id, history[id])
		if g.Placement(id) == nodes[0].URL {
			back++
		}
	}
	if back == 0 {
		t.Fatal("no session returned to the re-added node")
	}
}

// TestGatewayNoBackend exhausts the fleet: with every node dead the
// gateway reports ErrNoBackend rather than hanging or lying.
func TestGatewayNoBackend(t *testing.T) {
	v := testVideo(4)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 1)
	g := newGateway(t, obs.New(), nodes[0].URL)
	ctx := context.Background()
	id, err := g.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	submitJSON(t, g, id, chunk)
	nodes[0].Kill()
	_, err = g.Chunk(ctx, id, chunk, "")
	if err == nil {
		t.Fatal("chunk served with every backend dead")
	}
	if _, err := g.Open(ctx); err == nil {
		t.Fatal("open succeeded with every backend dead")
	}
}

// TestGatewayBadChunkPassthrough checks fault attribution: a corrupt
// chunk is the stream's problem, not the node's — it must not trip the
// node breaker or trigger migration, and the backend's resync keeps the
// session serving.
func TestGatewayBadChunkPassthrough(t *testing.T) {
	v := testVideo(6)
	chunk := encodeVideo(t, v)
	nodes := startNodes(t, 2)
	col := obs.New()
	g := newGateway(t, col, urlsOf(nodes)...)
	ctx := context.Background()
	id, err := g.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	first := submitJSON(t, g, id, chunk)

	// Corrupt a payload byte past the header: admission succeeds, decode
	// fails mid-serve, the backend answers 400 and resyncs.
	bad := append([]byte(nil), chunk...)
	bad[len(bad)/2] ^= 0xFF
	bad[len(bad)/2+1] ^= 0xFF
	resp, err := g.Chunk(ctx, id, bad, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status == 200 {
		t.Skip("corruption not detected by this codec build; passthrough path not exercised")
	}
	if g.Migrations(id) != 0 {
		t.Fatalf("bad chunk triggered migration (%d)", g.Migrations(id))
	}
	if n := col.CounterValue(obs.CounterNodeBreakerTrips); n != 0 {
		t.Fatalf("bad chunk tripped the node breaker (%d)", n)
	}
	// The session resyncs at the next clean chunk; numbering accounts for
	// the failed chunk's frames exactly like a single node would.
	info, err := codec.ProbeStream(chunk)
	if err != nil {
		t.Fatal(err)
	}
	next := submitJSON(t, g, id, chunk)
	wantStart := len(first.Frames) + info.Frames
	if len(next.Frames) == 0 || next.Frames[0].Display != wantStart {
		t.Fatalf("post-resync chunk starts at %d, want %d", next.Frames[0].Display, wantStart)
	}
}
