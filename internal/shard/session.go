package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/obs"
	"vrdann/internal/qos"
)

// gwSession is one client stream as the gateway sees it: which backend it
// currently lives on, the backend session id there, and the display
// rebase that keeps the client-visible stream continuous across
// migrations. A backend session always numbers displays from 0; the
// gateway adds rebase (= frames resolved on earlier placements), so a
// migrated session's frame numbering is indistinguishable from an
// unmigrated one.
type gwSession struct {
	id string
	g  *Gateway
	// class is the stream's QoS tier, forwarded to every backend session
	// the gateway opens for it — migrations keep the tier. Immutable after
	// Open.
	class qos.Class

	// mu serializes chunk proxying and migration for this session —
	// chunks of one stream are strictly ordered, which is what makes the
	// next chunk header a safe migration point.
	mu         sync.Mutex
	node       string // current backend base URL; "" when unplaced
	backendID  string // session id on that backend; "" when none is open
	served     int    // frames resolved by backends so far (drops and failed chunks included)
	rebase     int    // display offset of the current backend session
	migrations int
	closed     bool
}

// ChunkResponse is the gateway's answer to one proxied chunk: the backend
// status and (possibly display-rebased) body, ready to relay to the
// client.
type ChunkResponse struct {
	Status      int
	ContentType string
	Body        []byte
	// Node is the backend that served the chunk (diagnostics).
	Node string
}

// Chunk proxies one bitstream chunk for a session: the chunk goes to the
// session's current placement, migrating first if the ring owner changed
// (scale up/down) or the placement is unroutable. A node-level failure
// (connection error, timeout, 5xx) marks the node, drains the session and
// replays the chunk on the next owner — chunks are independently decodable
// from their header, so the replay serves bit-identical masks and the
// client sees a plain 200. format "pgm" passes mask bytes through
// untouched; otherwise the JSON summary is rebased onto the gateway's
// continuous display numbering.
func (g *Gateway) Chunk(ctx context.Context, id string, data []byte, format string) (*ChunkResponse, error) {
	s, ok := g.session(id)
	if !ok {
		return nil, ErrUnknownSession
	}
	return s.serveChunk(ctx, data, format)
}

func (s *gwSession) serveChunk(ctx context.Context, data []byte, format string) (*ChunkResponse, error) {
	g := s.g
	info, err := codec.ProbeStream(data)
	if err != nil {
		// Malformed at the header: reject at the edge without charging any
		// backend (same 400 the backend would return).
		return nil, fmt.Errorf("shard: bad chunk: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrUnknownSession
	}
	tried := make(map[string]bool)
	for attempt := 0; attempt < g.cfg.MaxNodeAttempts; attempt++ {
		target := g.desired(s.id, tried)
		if target == "" {
			return nil, ErrNoBackend
		}
		if target != s.node || s.backendID == "" {
			// Scale events and recovered nodes change ring ownership between
			// chunks; failures and lost backend sessions clear the placement.
			// Either way the session is (re-)admitted at this chunk header.
			rebalance := s.node != "" && s.backendID != "" && target != s.node &&
				!tried[s.node] && g.nodeAvailable(s.node)
			if err := s.migrateLocked(ctx, target, rebalance); err != nil {
				g.markFailure(target)
				tried[target] = true
				continue
			}
		}
		status, ct, body, err := g.postChunk(ctx, s.node, s.backendID, data, format)
		if err != nil {
			// The node, not the chunk: connection refused/reset, timeout (a
			// hung node), or a dead proxy path. Drain and replay elsewhere.
			g.markFailure(s.node)
			tried[s.node] = true
			s.backendID = ""
			continue
		}
		switch {
		case status == http.StatusOK:
			g.markSuccess(s.node)
			g.obs.Count(obs.CounterChunks, 1)
			s.served += info.Frames
			if format != "pgm" {
				if body, err = s.rebaseJSON(body); err != nil {
					return nil, fmt.Errorf("shard: bad backend response: %w", err)
				}
			}
			return &ChunkResponse{Status: status, ContentType: ct, Body: body, Node: s.node}, nil
		case status == http.StatusBadRequest:
			// The chunk's own fault: the backend consumed it, quarantined and
			// will resync — its display base advanced by the chunk's frames,
			// so the gateway's must too.
			g.markSuccess(s.node)
			s.served += info.Frames
			return &ChunkResponse{Status: status, ContentType: ct, Body: body, Node: s.node}, nil
		case status == http.StatusNotFound, status == http.StatusConflict:
			// The backend no longer has the session (restart, force-close):
			// re-admit a fresh backend session at this chunk header.
			g.markSuccess(s.node)
			s.backendID = ""
			continue
		case status == http.StatusRequestEntityTooLarge, status == http.StatusTooManyRequests:
			// The client's problem; the node is fine.
			g.markSuccess(s.node)
			return &ChunkResponse{Status: status, ContentType: ct, Body: body, Node: s.node}, nil
		case status == http.StatusServiceUnavailable && bytes.Contains(body, []byte("circuit breaker")):
			// The *session's* breaker on the backend: this stream has been
			// feeding garbage. Migrating would reset the breaker and defeat
			// it — pass the backoff through to the client.
			g.markSuccess(s.node)
			return &ChunkResponse{Status: status, ContentType: ct, Body: body, Node: s.node}, nil
		default:
			// 5xx (including a draining/closing server): node-level failure.
			g.markFailure(s.node)
			tried[s.node] = true
			s.backendID = ""
			continue
		}
	}
	return nil, ErrNoBackend
}

// placeLocked admits the session on the first routable node walking the
// ring from its key, marking failed candidates against their breakers.
// Caller holds s.mu.
func (s *gwSession) placeLocked(ctx context.Context, tried map[string]bool) error {
	g := s.g
	if tried == nil {
		tried = make(map[string]bool)
	}
	for attempt := 0; attempt < g.cfg.MaxNodeAttempts; attempt++ {
		target := g.desired(s.id, tried)
		if target == "" {
			return ErrNoBackend
		}
		if err := s.migrateLocked(ctx, target, false); err != nil {
			g.markFailure(target)
			tried[target] = true
			continue
		}
		return nil
	}
	return ErrNoBackend
}

// migrateLocked drains the session from its current placement and
// re-admits it on target: a fresh backend session is opened there (the
// next chunk's header is the decoder's resync point, so no state moves),
// the display rebase is advanced to the frames already served, and the old
// backend session is closed in the background. Caller holds s.mu.
func (s *gwSession) migrateLocked(ctx context.Context, target string, rebalance bool) error {
	g := s.g
	t0 := g.obs.Clock()
	prevNode, prevID := s.node, s.backendID
	backendID, err := g.openBackend(ctx, target, s.class)
	if err != nil {
		return err
	}
	g.markSuccess(target)
	g.mu.Lock()
	if prevNode != "" {
		if n, ok := g.nodes[prevNode]; ok {
			n.sessions--
		}
	}
	if n, ok := g.nodes[target]; ok {
		n.sessions++
	}
	g.mu.Unlock()
	s.node, s.backendID = target, backendID
	s.rebase = s.served
	if prevNode != "" && prevNode != target {
		s.migrations++
		g.obs.Count(obs.CounterMigrations, 1)
		if rebalance {
			g.obs.Count(obs.CounterRebalances, 1)
		}
		g.obs.Span(obs.StageMigrate, -1, obs.KindNone, t0)
	}
	if prevID != "" && prevNode != "" && prevNode != target {
		// Drain: free the old backend session without stalling this chunk —
		// a dead node just times the request out in the background.
		go g.deleteBackendSession(context.Background(), prevNode, prevID)
	}
	return nil
}

// rebaseJSON rewrites a backend chunk summary onto the gateway's
// continuous display numbering and session id. Caller holds s.mu.
func (s *gwSession) rebaseJSON(body []byte) ([]byte, error) {
	var resp struct {
		Session string           `json:"session"`
		Frames  []map[string]any `json:"frames"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	for _, fr := range resp.Frames {
		if d, ok := fr["display"].(float64); ok {
			fr["display"] = int(d) + s.rebase
		}
	}
	return json.Marshal(map[string]any{"session": s.id, "frames": resp.Frames})
}

// unplaceLocked clears the session's placement and its node's placement
// count. Caller holds s.mu.
func (s *gwSession) unplaceLocked() {
	if s.node != "" {
		s.g.mu.Lock()
		if n, ok := s.g.nodes[s.node]; ok {
			n.sessions--
		}
		s.g.mu.Unlock()
	}
	s.node, s.backendID = "", ""
}

// openBackend opens a session on a backend and returns its id there. The
// QoS class rides on the open so a backend with the ladder enabled tiers
// the stream the same way on every placement.
func (g *Gateway) openBackend(ctx context.Context, url string, class qos.Class) (string, error) {
	octx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	defer cancel()
	open := url + "/v1/sessions"
	if class != qos.ClassPremium {
		open += "?class=" + class.String()
	}
	req, err := http.NewRequestWithContext(octx, http.MethodPost, open, nil)
	if err != nil {
		return "", err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("shard: open on %s: status %d", url, resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("shard: open on %s: empty session id", url)
	}
	return out.ID, nil
}

// postChunk relays one chunk body to a backend session and reads the full
// response. A transport error or timeout is the node's failure; any HTTP
// status is the backend's verdict, classified by the caller.
func (g *Gateway) postChunk(ctx context.Context, node, backendID string, data []byte, format string) (status int, contentType string, body []byte, err error) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	defer cancel()
	url := node + "/v1/sessions/" + backendID + "/chunks"
	if format != "" {
		url += "?format=" + format
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		// A connection that died mid-response is a node failure: the chunk
		// will be replayed in full elsewhere.
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body, nil
}

// SessionMetrics proxies a session's per-session backend metrics.
func (g *Gateway) SessionMetrics(ctx context.Context, id string) ([]byte, error) {
	s, ok := g.session(id)
	if !ok {
		return nil, ErrUnknownSession
	}
	s.mu.Lock()
	node, backendID := s.node, s.backendID
	s.mu.Unlock()
	if node == "" || backendID == "" {
		return nil, ErrNoBackend
	}
	mctx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(mctx, http.MethodGet,
		node+"/v1/sessions/"+backendID+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: metrics on %s: status %d", node, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Migrations reports how many times a session has moved between nodes.
func (g *Gateway) Migrations(id string) int {
	s, ok := g.session(id)
	if !ok {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migrations
}

// WaitHealthy probes until at least want nodes are routable or the
// deadline passes — the smoke/test helper for "backends are up".
func (g *Gateway) WaitHealthy(ctx context.Context, want int, deadline time.Duration) error {
	dctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	for {
		g.ProbeNow(dctx)
		n := 0
		now := time.Now()
		g.mu.Lock()
		for _, nd := range g.nodes {
			if nd.available(now) {
				n++
			}
		}
		g.mu.Unlock()
		if n >= want {
			return nil
		}
		select {
		case <-dctx.Done():
			return fmt.Errorf("shard: %d/%d nodes healthy: %w", n, want, dctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
