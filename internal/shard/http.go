package shard

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"vrdann/internal/qos"
)

// Handler returns the gateway's HTTP surface — the same session API
// vrserve exposes, so clients talk to a fleet exactly as they would to
// one node, plus node administration:
//
//	POST   /v1/sessions                 open a session        -> {"id": ..., "class": ...}
//	       ?class=premium|free          ... with a QoS class, forwarded to backends
//	POST   /v1/sessions/{id}/chunks     serve one chunk (proxied, display-rebased)
//	       ?format=pgm                  ... or concatenated mask PGMs (passthrough)
//	GET    /v1/sessions/{id}/metrics    per-session backend metrics (proxied)
//	DELETE /v1/sessions/{id}            close the session
//	GET    /healthz                     gateway liveness + node summary
//	GET    /metrics                     gateway obs snapshot + per-node block
//	POST   /v1/nodes                    {"url": ...} add a backend (scale up)
//	DELETE /v1/nodes?url=...            remove a backend (scale down, drains)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", g.handleOpen)
	mux.HandleFunc("POST /v1/sessions/{id}/chunks", g.handleChunk)
	mux.HandleFunc("GET /v1/sessions/{id}/metrics", g.handleSessionMetrics)
	mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleClose)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("POST /v1/nodes", g.handleAddNode)
	mux.HandleFunc("DELETE /v1/nodes", g.handleRemoveNode)
	return mux
}

func gwWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func gwWriteError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoBackend), errors.Is(err, ErrGatewayClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownSession):
		status = http.StatusNotFound
	}
	gwWriteJSON(w, status, map[string]string{"error": err.Error()})
}

func (g *Gateway) handleOpen(w http.ResponseWriter, r *http.Request) {
	class, err := qos.ParseClass(r.URL.Query().Get("class"))
	if err != nil {
		gwWriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	id, err := g.OpenClass(r.Context(), class)
	if err != nil {
		gwWriteError(w, err)
		return
	}
	gwWriteJSON(w, http.StatusCreated, map[string]string{"id": id, "class": class.String()})
}

func (g *Gateway) handleChunk(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		gwWriteError(w, err)
		return
	}
	resp, err := g.Chunk(r.Context(), r.PathValue("id"), data, r.URL.Query().Get("format"))
	if err != nil {
		switch {
		case errors.Is(err, ErrNoBackend), errors.Is(err, ErrGatewayClosed),
			errors.Is(err, ErrUnknownSession):
			gwWriteError(w, err)
		default:
			// Malformed chunk (failed the local probe).
			gwWriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		}
		return
	}
	if resp.ContentType != "" {
		w.Header().Set("Content-Type", resp.ContentType)
	}
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

func (g *Gateway) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	body, err := g.SessionMetrics(r.Context(), r.PathValue("id"))
	if err != nil {
		gwWriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (g *Gateway) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := g.CloseSession(r.Context(), r.PathValue("id")); err != nil {
		gwWriteError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	nodes := g.Nodes()
	healthy := 0
	for _, n := range nodes {
		if n.Healthy && !n.Removed && !n.BreakerOpen && !n.Load.Draining {
			healthy++
		}
	}
	status := "ok"
	if healthy == 0 {
		status = "no-backends"
	}
	gwWriteJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"nodes":    len(nodes),
		"healthy":  healthy,
		"sessions": g.SessionCount(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gwWriteJSON(w, http.StatusOK, map[string]any{
		"gateway":  g.obs.Snapshot(),
		"nodes":    g.Nodes(),
		"sessions": g.SessionCount(),
	})
}

func (g *Gateway) handleAddNode(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		gwWriteJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"url\": ...}"})
		return
	}
	g.AddNode(req.URL)
	gwWriteJSON(w, http.StatusOK, map[string]any{"nodes": g.Nodes()})
}

func (g *Gateway) handleRemoveNode(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		gwWriteJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ?url="})
		return
	}
	g.RemoveNode(url)
	gwWriteJSON(w, http.StatusOK, map[string]any{"nodes": g.Nodes()})
}
