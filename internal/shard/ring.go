// Package shard scales the serving layer out: a gateway consistent-hashes
// stream sessions across N vrserve backends, proxies the existing HTTP
// session surface, health-scores each node through the /healthz load
// report, and applies the serving tier's breaker/error taxonomy at node
// granularity — a flapping backend trips a node-level circuit breaker and
// its sessions drain elsewhere.
//
// Live migration rides on the resync contract the recovery layer already
// guarantees: chunks are independently encoded and GOP-aligned, and a
// clean chunk served after any failure history is bit-identical to a
// fresh session. A session is therefore migratable at every chunk header
// — the gateway drains it on node A (its in-flight chunk either completes
// or is replayed), re-admits it on node B as a fresh backend session, and
// rebases display indices so the client sees one continuous stream. A
// migrated session's masks are bit-identical to an unmigrated reference
// by construction, because every backend computes every chunk from the
// same clean decoder state.
package shard

import (
	"sort"
	"strconv"
)

// fnv1a hashes a byte string: FNV-1a 64 with a murmur-style finalizer.
// Raw FNV avalanches poorly in the high bits for short inputs (sequential
// session ids land in one narrow arc of the ring); the final mix spreads
// them across the full 64-bit keyspace.
func fnv1a(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * prime64
		}
		h *= prime64 // part separator: ("ab","c") != ("a","bc")
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Each backend
// contributes vnodes points, so load spreads evenly and adding or
// removing one backend moves only ~1/N of the keyspace — the property
// that keeps a scale event from migrating every session at once. The
// ring is deterministic: the same members always produce the same
// ownership, so independent gateways agree on placement.
//
// Ring is not safe for concurrent use; the Gateway serializes access.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

// NewRing builds an empty ring with the given virtual-node count per
// backend (<= 0 selects the default 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// Add inserts a backend's virtual nodes. Idempotent.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: fnv1a(node, strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a backend's virtual nodes. Idempotent.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the backend owning a key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(fnv1a(key))].node
}

// Walk visits the distinct backends in ring order starting from the key's
// owner, until visit returns false or every member has been seen. This is
// the failover order: a gateway walks past broken or draining nodes to
// the next healthy one.
func (r *Ring) Walk(key string, visit func(node string) bool) {
	if len(r.points) == 0 {
		return
	}
	start := r.search(fnv1a(key))
	seen := make(map[string]struct{}, len(r.nodes))
	for i := 0; i < len(r.points) && len(seen) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		if !visit(p.node) {
			return
		}
	}
}

// search returns the index of the first point at or clockwise-after hash.
func (r *Ring) search(hash uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		return 0
	}
	return i
}
