package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic pins that ownership depends only on the node set:
// two rings built in different insertion orders agree on every key.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	nodes := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	for _, n := range nodes {
		a.Add(n)
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q (order A) vs %q (order B)", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance checks virtual nodes spread keys: with 4 nodes and 64
// vnodes each, no node should own less than half or more than double its
// fair share of 2000 keys.
func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	counts := make(map[string]int)
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("g%04d", i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 nodes own keys: %v", len(counts), counts)
	}
	fair := keys / 4
	for n, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %d keys, fair share %d (all: %v)", n, c, fair, counts)
		}
	}
}

// TestRingMinimalDisruption is consistent hashing's defining property:
// removing one of four nodes must not move any key that the survivors
// already owned, and must reassign every orphaned key to a survivor.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	nodes := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 1000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("g%04d", i)
		before[k] = r.Owner(k)
	}
	const victim = "http://n3"
	r.Remove(victim)
	moved := 0
	for k, prev := range before {
		now := r.Owner(k)
		if now == victim {
			t.Fatalf("key %q still owned by removed node", k)
		}
		if prev != victim && now != prev {
			t.Errorf("key %q moved %s -> %s though its owner survived", k, prev, now)
		}
		if prev == victim {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; balance test should have caught this")
	}
}

// TestRingWalk checks the failover order: Walk visits every node exactly
// once and starts at the key's owner.
func TestRingWalk(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("g%04d", i)
		var order []string
		seen := make(map[string]bool)
		r.Walk(key, func(n string) bool {
			if seen[n] {
				t.Fatalf("key %q: Walk repeated node %s", key, n)
			}
			seen[n] = true
			order = append(order, n)
			return true
		})
		if len(order) != 5 {
			t.Fatalf("key %q: Walk visited %d of 5 nodes", key, len(order))
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("key %q: Walk starts at %s, Owner is %s", key, order[0], r.Owner(key))
		}
	}
}

// TestRingWalkStops checks early termination.
func TestRingWalkStops(t *testing.T) {
	r := NewRing(16)
	r.Add("http://a")
	r.Add("http://b")
	visits := 0
	r.Walk("k", func(string) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Walk visited %d nodes after visit returned false", visits)
	}
}

// TestRingEmpty checks the degenerate cases.
func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if o := r.Owner("k"); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
	r.Walk("k", func(string) bool { t.Fatal("walk on empty ring"); return false })
	r.Add("http://solo")
	if o := r.Owner("k"); o != "http://solo" {
		t.Fatalf("single-node owner = %q", o)
	}
	r.Remove("http://solo")
	if r.Len() != 0 {
		t.Fatalf("ring not empty after removing only node")
	}
}
