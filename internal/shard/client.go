package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"vrdann/internal/qos"
)

// Client is a thin driver for the serving session surface — gateway or
// single vrserve node, the API is the same. The load-generation harness,
// the multi-process smoke and the scale-out experiments all drive fleets
// through it.
type Client struct {
	// Base is the server's base URL (no trailing slash).
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// StatusError is a non-2xx server answer.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shard: server status %d: %s", e.Code, e.Msg)
}

// FrameSummary is one served frame of a JSON chunk response.
type FrameSummary struct {
	Display    int    `json:"display"`
	Type       string `json:"type"`
	Dropped    bool   `json:"dropped"`
	LatencyNS  int64  `json:"latencyNs"`
	Foreground int    `json:"foreground"`
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(req *http.Request) ([]byte, string, error) {
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var je struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &je)
		return nil, "", &StatusError{Code: resp.StatusCode, Msg: je.Error}
	}
	return body, resp.Header.Get("Content-Type"), nil
}

// Open creates a premium-class session and returns its id.
func (c *Client) Open(ctx context.Context) (string, error) {
	return c.OpenClass(ctx, qos.ClassPremium)
}

// OpenClass creates a session in the given QoS class and returns its id.
func (c *Client) OpenClass(ctx context.Context, class qos.Class) (string, error) {
	url := c.Base + "/v1/sessions"
	if class != qos.ClassPremium {
		url += "?class=" + class.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return "", err
	}
	body, _, err := c.do(req)
	if err != nil {
		return "", err
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("shard: open returned no session id")
	}
	return out.ID, nil
}

// Chunk submits one chunk and returns the served frame summaries.
func (c *Client) Chunk(ctx context.Context, id string, data []byte) ([]FrameSummary, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/v1/sessions/"+id+"/chunks", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	body, _, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out struct {
		Frames []FrameSummary `json:"frames"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out.Frames, nil
}

// ChunkPGM submits one chunk and returns the concatenated mask PGMs of
// its non-dropped frames — the bit-identity currency of the migration
// tests.
func (c *Client) ChunkPGM(ctx context.Context, id string, data []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/v1/sessions/"+id+"/chunks?format=pgm", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	body, _, err := c.do(req)
	return body, err
}

// Close deletes a session.
func (c *Client) Close(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.Base+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	_, _, err = c.do(req)
	return err
}

// Metrics fetches the raw /metrics JSON.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	body, _, err := c.do(req)
	return body, err
}
