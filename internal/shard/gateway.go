package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/serve"
)

// Gateway errors.
var (
	// ErrNoBackend rejects work when no routable backend remains (all
	// unhealthy, breaker-open, draining or removed).
	ErrNoBackend = errors.New("shard: no backend available")
	// ErrGatewayClosed rejects work on a closed gateway.
	ErrGatewayClosed = errors.New("shard: gateway closed")
	// ErrUnknownSession rejects work on a session id the gateway does not
	// track.
	ErrUnknownSession = errors.New("shard: unknown session")
)

// Config parameterizes a Gateway.
type Config struct {
	// Backends are the initial vrserve base URLs (e.g.
	// "http://10.0.0.1:8080"). More can be added (and these removed) at
	// runtime via AddNode/RemoveNode.
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring.
	// Default 64.
	VNodes int
	// HealthInterval paces the background /healthz prober. Default 2s;
	// negative disables the prober (tests drive ProbeNow directly).
	HealthInterval time.Duration
	// ProxyTimeout bounds one backend request (open, chunk, close). A
	// hung node surfaces as a timeout, which counts as a node failure and
	// triggers migration. Default 30s.
	ProxyTimeout time.Duration
	// NodeBreakerThreshold is how many consecutive proxy failures trip a
	// node's breaker. 0 selects the default (3); negative disables the
	// node breaker.
	NodeBreakerThreshold int
	// NodeBreakerBackoff is the unroutable window after the first trip,
	// doubling per successive trip without an intervening success.
	// Default 1s.
	NodeBreakerBackoff time.Duration
	// MaxNodeAttempts bounds how many placements one chunk tries before
	// the gateway gives up with ErrNoBackend. Default 3.
	MaxNodeAttempts int
	// Obs, when non-nil, receives the gateway's counters (migrations,
	// rebalances, node-breaker trips, proxy errors, chunks), gauges
	// (nodes, nodes-healthy, gate-sessions) and the shard/migrate span
	// histogram.
	Obs *obs.Collector
	// Client, when non-nil, overrides the proxy HTTP client (tests inject
	// transports); ProxyTimeout is applied per request either way.
	Client *http.Client
}

// withDefaults resolves unset fields.
func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.NodeBreakerThreshold == 0 {
		c.NodeBreakerThreshold = 3
	}
	if c.NodeBreakerBackoff <= 0 {
		c.NodeBreakerBackoff = time.Second
	}
	if c.MaxNodeAttempts <= 0 {
		c.MaxNodeAttempts = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Gateway consistent-hashes stream sessions across vrserve backends and
// proxies the serving HTTP surface, migrating sessions between nodes at
// chunk headers on failure, breaker trips and ring changes. All methods
// are safe for concurrent use.
type Gateway struct {
	cfg    Config
	obs    *obs.Collector
	client *http.Client

	mu       sync.Mutex
	ring     *Ring
	nodes    map[string]*node
	sessions map[string]*gwSession
	nextID   int
	closed   bool

	stopHealth context.CancelFunc
	healthDone chan struct{}
}

// NewGateway builds a gateway over the configured backends and starts the
// health prober.
func NewGateway(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("shard: Config.Backends is required")
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:      cfg,
		obs:      cfg.Obs,
		client:   cfg.Client,
		ring:     NewRing(cfg.VNodes),
		nodes:    make(map[string]*node),
		sessions: make(map[string]*gwSession),
	}
	for _, url := range cfg.Backends {
		g.addNodeLocked(url)
	}
	g.publishNodeGaugesLocked()
	if cfg.HealthInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		g.stopHealth = cancel
		g.healthDone = make(chan struct{})
		go g.healthLoop(ctx)
	}
	return g, nil
}

// addNodeLocked registers a backend (idempotent). Caller holds g.mu.
func (g *Gateway) addNodeLocked(url string) {
	if n, ok := g.nodes[url]; ok {
		// Re-adding a removed node puts it back on the ring with a clean
		// breaker (scale-up after scale-down).
		if n.removed {
			n.removed = false
			n.consecFails, n.trips = 0, 0
			n.brokenUntil = time.Time{}
			n.healthy = true
			n.load = serve.LoadInfo{}
			g.ring.Add(url)
		}
		return
	}
	g.nodes[url] = &node{url: url, healthy: true}
	g.ring.Add(url)
}

// AddNode registers a backend at runtime. Sessions whose ring ownership
// moves to it migrate lazily at their next chunk header.
func (g *Gateway) AddNode(url string) {
	g.mu.Lock()
	g.addNodeLocked(url)
	g.publishNodeGaugesLocked()
	g.mu.Unlock()
}

// RemoveNode takes a backend off the ring. Its sessions drain to their
// new ring owners at their next chunk header; the backend itself is asked
// to quiesce (best-effort) so other placers stop using it too.
func (g *Gateway) RemoveNode(url string) {
	g.mu.Lock()
	n, ok := g.nodes[url]
	if ok && !n.removed {
		n.removed = true
		g.ring.Remove(url)
	}
	g.publishNodeGaugesLocked()
	g.mu.Unlock()
	if ok {
		go g.quiesceBackend(url)
	}
}

// quiesceBackend posts the serving drain hook to a node, best-effort.
func (g *Gateway) quiesceBackend(url string) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/quiesce", nil)
	if err != nil {
		return
	}
	if resp, err := g.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// Nodes snapshots per-node status, sorted by URL (the /metrics nodes
// block).
func (g *Gateway) Nodes() []NodeStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, NodeStatus{
			URL:         n.url,
			Healthy:     n.healthy,
			Probed:      n.probed,
			Removed:     n.removed,
			BreakerOpen: n.brokenUntil.After(now),
			Trips:       n.trips,
			Sessions:    n.sessions,
			Load:        n.load,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].URL < out[b].URL })
	return out
}

// SessionCount reports the number of gateway-tracked sessions.
func (g *Gateway) SessionCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// Placement reports which backend a session currently lives on ("" when
// unplaced or unknown).
func (g *Gateway) Placement(id string) string {
	g.mu.Lock()
	s, ok := g.sessions[id]
	g.mu.Unlock()
	if !ok {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// markFailure charges one proxy failure against a node's breaker. Enough
// consecutive failures trip it: the node becomes unroutable for a
// doubling backoff window and its sessions migrate at their next chunk.
func (g *Gateway) markFailure(url string) {
	g.obs.Count(obs.CounterProxyErrors, 1)
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[url]
	if !ok {
		return
	}
	if g.cfg.NodeBreakerThreshold < 0 {
		return
	}
	n.consecFails++
	if n.consecFails < g.cfg.NodeBreakerThreshold {
		return
	}
	n.consecFails = 0
	n.trips++
	n.brokenUntil = time.Now().Add(g.cfg.NodeBreakerBackoff << uint(n.trips-1))
	g.obs.Count(obs.CounterNodeBreakerTrips, 1)
	g.publishNodeGaugesLocked()
}

// markSuccess closes a node's breaker window after a served request.
func (g *Gateway) markSuccess(url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n, ok := g.nodes[url]; ok {
		n.consecFails, n.trips = 0, 0
		n.brokenUntil = time.Time{}
		g.publishNodeGaugesLocked()
	}
}

// nodeAvailable reports whether a node is currently routable.
func (g *Gateway) nodeAvailable(url string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[url]
	return ok && n.available(time.Now())
}

// desired returns the first routable node on the ring walk from the
// session key, skipping excluded ones ("" when none).
func (g *Gateway) desired(key string, exclude map[string]bool) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	target := ""
	g.ring.Walk(key, func(url string) bool {
		if exclude[url] {
			return true
		}
		if n, ok := g.nodes[url]; ok && n.available(now) {
			target = url
			return false
		}
		return true
	})
	return target
}

// publishNodeGaugesLocked refreshes the nodes / nodes-healthy gauges.
// Caller holds g.mu.
func (g *Gateway) publishNodeGaugesLocked() {
	now := time.Now()
	total, healthy := 0, 0
	for _, n := range g.nodes {
		if n.removed {
			continue
		}
		total++
		if n.available(now) {
			healthy++
		}
	}
	g.obs.GaugeSet(obs.GaugeNodes, int64(total))
	g.obs.GaugeSet(obs.GaugeNodesHealthy, int64(healthy))
}

// healthLoop probes every node's /healthz on the configured interval.
func (g *Gateway) healthLoop(ctx context.Context) {
	defer close(g.healthDone)
	tick := time.NewTicker(g.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			g.ProbeNow(ctx)
		}
	}
}

// ProbeNow health-checks every node once, synchronously: GET /healthz,
// decode the serve.LoadInfo load report, update routability. Exported so
// tests and the smoke harness can force a probe instead of waiting out
// the interval.
func (g *Gateway) ProbeNow(ctx context.Context) {
	g.mu.Lock()
	urls := make([]string, 0, len(g.nodes))
	for url, n := range g.nodes {
		if !n.removed {
			urls = append(urls, url)
		}
	}
	g.mu.Unlock()
	for _, url := range urls {
		li, err := g.fetchHealth(ctx, url)
		g.mu.Lock()
		if n, ok := g.nodes[url]; ok {
			n.probed = true
			n.healthy = err == nil
			if err == nil {
				n.load = li
			}
		}
		g.publishNodeGaugesLocked()
		g.mu.Unlock()
	}
}

// fetchHealth GETs one node's load report.
func (g *Gateway) fetchHealth(ctx context.Context, url string) (serve.LoadInfo, error) {
	var li serve.LoadInfo
	hctx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return li, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return li, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return li, fmt.Errorf("shard: healthz status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&li); err != nil {
		return li, err
	}
	return li, nil
}

// Open admits a new premium-class gateway session: a backend session is
// opened on the session's ring owner (walking past unroutable nodes) and
// the mapping is tracked for chunk routing and migration.
func (g *Gateway) Open(ctx context.Context) (string, error) {
	return g.OpenClass(ctx, qos.ClassPremium)
}

// OpenClass is Open with an explicit QoS class; the class follows the
// session to every backend placement, migrations included.
func (g *Gateway) OpenClass(ctx context.Context, class qos.Class) (string, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return "", ErrGatewayClosed
	}
	g.nextID++
	id := fmt.Sprintf("g%04d", g.nextID)
	s := &gwSession{id: id, g: g, class: class}
	g.sessions[id] = s
	g.obs.GaugeSet(obs.GaugeGateSessions, int64(len(g.sessions)))
	g.mu.Unlock()

	s.mu.Lock()
	err := s.placeLocked(ctx, nil)
	s.mu.Unlock()
	if err != nil {
		g.dropSession(s)
		return "", err
	}
	return id, nil
}

// session looks a gateway session up.
func (g *Gateway) session(id string) (*gwSession, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sessions[id]
	return s, ok
}

// dropSession removes a session from the table and its node's placement
// count.
func (g *Gateway) dropSession(s *gwSession) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.sessions[s.id]; !ok {
		return
	}
	delete(g.sessions, s.id)
	g.obs.GaugeSet(obs.GaugeGateSessions, int64(len(g.sessions)))
}

// CloseSession closes a gateway session: the backend session is deleted
// (best-effort — a dead node cannot refuse) and the mapping dropped.
func (g *Gateway) CloseSession(ctx context.Context, id string) error {
	s, ok := g.session(id)
	if !ok {
		return ErrUnknownSession
	}
	s.mu.Lock()
	s.closed = true
	node, backendID := s.node, s.backendID
	s.unplaceLocked()
	s.mu.Unlock()
	g.dropSession(s)
	if node != "" && backendID != "" {
		g.deleteBackendSession(ctx, node, backendID)
	}
	return nil
}

// deleteBackendSession DELETEs a backend session, best-effort.
func (g *Gateway) deleteBackendSession(ctx context.Context, node, backendID string) {
	dctx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(dctx, http.MethodDelete,
		node+"/v1/sessions/"+backendID, nil)
	if err != nil {
		return
	}
	if resp, err := g.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// Close shuts the gateway down: the health prober stops, every tracked
// session's backend session is closed best-effort, and further calls
// fail with ErrGatewayClosed. Backends themselves are left running —
// they belong to their own supervisors.
func (g *Gateway) Close(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrGatewayClosed
	}
	g.closed = true
	sessions := make([]*gwSession, 0, len(g.sessions))
	for _, s := range g.sessions {
		sessions = append(sessions, s)
	}
	g.mu.Unlock()
	if g.stopHealth != nil {
		g.stopHealth()
		<-g.healthDone
	}
	for _, s := range sessions {
		s.mu.Lock()
		s.closed = true
		node, backendID := s.node, s.backendID
		s.unplaceLocked()
		s.mu.Unlock()
		g.dropSession(s)
		if node != "" && backendID != "" {
			g.deleteBackendSession(ctx, node, backendID)
		}
	}
	// Drop pooled keep-alive connections so backends can shut down without
	// waiting on them (a pre-dialed spare that never carried a request looks
	// non-idle to the backend's graceful Shutdown).
	g.client.CloseIdleConnections()
	return ctx.Err()
}

// Obs returns the gateway collector (nil if none was configured).
func (g *Gateway) Obs() *obs.Collector { return g.obs }
