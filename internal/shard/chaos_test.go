package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"vrdann/internal/fault/chaos"
	"vrdann/internal/obs"
	"vrdann/internal/shard"
)

// TestShardKillBitIdentity is the sharding acceptance run: a gateway over
// three backends serves a fleet of PGM streams through the full HTTP
// surface; one backend is killed mid-stream. Every session — migrated or
// not — must serve masks byte-identical to a single-node reference with
// zero client-visible errors, and the migration/breaker counters must
// appear in /metrics.
func TestShardKillBitIdentity(t *testing.T) {
	v := testVideo(8)
	chunk := encodeVideo(t, v)
	const chunks = 4
	ctx := context.Background()

	// Reference: one plain backend, one session, no gateway, no faults.
	// ThresholdSegmenter is deterministic and every chunk decodes from
	// clean state, so these bytes are the gold standard any placement
	// history must reproduce.
	ref := make([][]byte, chunks)
	{
		nd, err := chaos.StartNode(nodeConfig())
		if err != nil {
			t.Fatal(err)
		}
		cl := &shard.Client{Base: nd.URL}
		id, err := cl.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i], err = cl.ChunkPGM(ctx, id, chunk); err != nil {
				t.Fatal(err)
			}
			if len(ref[i]) == 0 {
				t.Fatal("reference PGM chunk is empty")
			}
		}
		if err := cl.Close(ctx, id); err != nil {
			t.Fatal(err)
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_ = nd.Stop(sctx)
		cancel()
	}

	// Fleet: three backends behind the gateway's own HTTP handler.
	nodes := startNodes(t, 3)
	col := obs.New()
	g := newGateway(t, col, urlsOf(nodes)...)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	cl := &shard.Client{Base: ts.URL}

	const sessions = 9
	ids := make([]string, sessions)
	for i := range ids {
		id, err := cl.Open(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	placed := make(map[string]string)
	for _, id := range ids {
		got, err := cl.ChunkPGM(ctx, id, chunk)
		if err != nil {
			t.Fatalf("session %s chunk 0: %v", id, err)
		}
		if !bytes.Equal(got, ref[0]) {
			t.Fatalf("session %s chunk 0: %d bytes differ from reference", id, len(got))
		}
		placed[id] = g.Placement(id)
	}

	victim := g.Placement(ids[0])
	for _, n := range nodes {
		if n.URL == victim {
			n.Kill()
		}
	}

	for c := 1; c < chunks; c++ {
		for _, id := range ids {
			got, err := cl.ChunkPGM(ctx, id, chunk)
			if err != nil {
				t.Fatalf("session %s chunk %d after kill: %v", id, c, err)
			}
			if !bytes.Equal(got, ref[c]) {
				t.Fatalf("session %s chunk %d: bytes differ from reference after kill", id, c)
			}
		}
	}

	migrated := 0
	for _, id := range ids {
		if placed[id] == victim {
			migrated++
			if g.Migrations(id) == 0 {
				t.Errorf("session %s was on the killed node but reports no migration", id)
			}
		}
	}
	if migrated == 0 {
		t.Fatal("killed node held no sessions; test proves nothing")
	}

	// The counters surface through the gateway's /metrics endpoint.
	body, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var met struct {
		Gateway struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"gateway"`
		Nodes []shard.NodeStatus `json:"nodes"`
	}
	if err := json.Unmarshal(body, &met); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	if n := met.Gateway.Counters["shard/migrations"]; n < int64(migrated) {
		t.Errorf("/metrics shard/migrations = %d, want >= %d", n, migrated)
	}
	if met.Gateway.Counters["shard/proxy-errors"] == 0 {
		t.Error("/metrics shard/proxy-errors = 0 after a node kill")
	}
	if len(met.Nodes) != 3 {
		t.Errorf("/metrics nodes block has %d entries, want 3", len(met.Nodes))
	}

	for _, id := range ids {
		if err := cl.Close(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}
