package sim

import (
	"fmt"
	"io"
	"sort"
)

// Event is one unit-occupancy interval recorded during a simulation.
type Event struct {
	Unit    string // "DEC", "NPU", "AGENT"
	Label   string // e.g. "NN-L", "recon", "switch"
	StartNS float64
	EndNS   float64
}

// Trace collects simulation events for timeline inspection — the tool-side
// equivalent of the execution timelines in the paper's Fig 7.
type Trace struct {
	Events []Event
}

func (t *Trace) add(unit, label string, start, end float64) {
	if t == nil || end <= start {
		return
	}
	t.Events = append(t.Events, Event{Unit: unit, Label: label, StartNS: start, EndNS: end})
}

// Span returns the trace's overall time extent.
func (t *Trace) Span() (start, end float64) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	start, end = t.Events[0].StartNS, t.Events[0].EndNS
	for _, e := range t.Events[1:] {
		if e.StartNS < start {
			start = e.StartNS
		}
		if e.EndNS > end {
			end = e.EndNS
		}
	}
	return start, end
}

// BusyNS sums occupancy per unit.
func (t *Trace) BusyNS() map[string]float64 {
	out := map[string]float64{}
	for _, e := range t.Events {
		out[e.Unit] += e.EndNS - e.StartNS
	}
	return out
}

// Render writes an ASCII occupancy timeline: one row per unit, cols time
// buckets; a cell is filled when the unit is busy during that bucket.
func (t *Trace) Render(w io.Writer, cols int) {
	if len(t.Events) == 0 || cols <= 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	start, end := t.Span()
	span := end - start
	if span <= 0 {
		fmt.Fprintln(w, "(zero-length trace)")
		return
	}
	units := map[string][]Event{}
	var names []string
	for _, e := range t.Events {
		if _, ok := units[e.Unit]; !ok {
			names = append(names, e.Unit)
		}
		units[e.Unit] = append(units[e.Unit], e)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "timeline: %.2f ms total, %d buckets of %.2f ms\n", span/1e6, cols, span/float64(cols)/1e6)
	for _, u := range names {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range units[u] {
			lo := int(float64(cols) * (e.StartNS - start) / span)
			hi := int(float64(cols) * (e.EndNS - start) / span)
			if hi >= cols {
				hi = cols - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(w, "%-6s |%s|\n", u, row)
	}
}

// RunTraced is Run with event recording.
func (s *Simulator) RunTraced(scheme Scheme, w Workload) (Report, *Trace) {
	tr := &Trace{}
	r := s.newRun(w)
	r.trace = tr
	rep := s.finish(scheme, r)
	return rep, tr
}
