package sim

import (
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/sim/dram"
	"vrdann/internal/sim/npu"
	"vrdann/internal/sim/vdec"
)

// Simulator runs workloads under a fixed parameter set.
type Simulator struct {
	P Params
}

// New constructs a simulator.
func New(p Params) *Simulator { return &Simulator{P: p} }

// run holds the per-run model instances and timelines.
type run struct {
	p      Params
	w      Workload
	dram   *dram.Model
	npu    *npu.Model
	dec    *vdec.Model
	decT   float64 // decoder timeline
	npuT   float64 // NPU timeline
	agentT float64 // agent-unit timeline
	agent  float64 // agent busy time
	seq    int64   // sequential address cursor
	rnd    int64   // LCG state for random addresses
	trace  *Trace  // optional event recording

	// Real-time mode: arrival[d] is when frame d (display order) reaches the
	// decoder (zero slice = everything available at t=0); done[d] records
	// when its recognition result is finalized.
	arrival []float64
	done    []float64
}

func (s *Simulator) newRun(w Workload) *run {
	return &run{
		p: s.P, w: w,
		dram: dram.New(s.P.DRAM),
		npu:  npu.New(s.P.NPU),
		dec:  vdec.New(s.P.Dec),
		rnd:  0x3779b97f4a7c15,
		done: make([]float64, len(w.Frames)),
	}
}

// arriveAt blocks the decoder timeline until frame d has arrived.
func (r *run) arriveAt(d int) {
	if r.arrival != nil && r.arrival[d] > r.decT {
		r.decT = r.arrival[d]
	}
}

// markDone records frame d's completion time (the current NPU time unless
// an explicit time is supplied by the caller).
func (r *run) markDone(d int, at float64) {
	if d >= 0 && d < len(r.done) {
		r.done[d] = at
	}
}

// seqAddr returns a fresh sequential DRAM region of n bytes.
func (r *run) seqAddr(n int) int64 {
	a := r.seq
	r.seq += int64(n)
	return a
}

// randAddr returns a pseudo-random DRAM address (row-scattered).
func (r *run) randAddr() int64 {
	r.rnd = r.rnd*6364136223846793005 + 1442695040888963407
	v := r.rnd >> 20
	if v < 0 {
		v = -v
	}
	return v % (1 << 30)
}

func (r *run) pixels() int64 { return int64(r.w.W) * int64(r.w.H) }

// nnlJob is one large-network inference on a full frame.
func (r *run) nnlJob(model string) npu.Job {
	px := r.pixels()
	return npu.Job{
		Ops:         int64(r.p.NNLOpsPerPixel * float64(px)),
		WeightBytes: r.p.NNLWeightBytes,
		InBytes:     px * 3, // 24-bit raw frame (paper Sec III-A)
		OutBytes:    px / 8, // 1-bit segmentation
		Model:       model,
	}
}

func (r *run) flowJob() npu.Job {
	px := r.pixels()
	return npu.Job{
		Ops:         int64(r.p.FlowOpsPerPixel * float64(px)),
		WeightBytes: r.p.FlowWeightBytes,
		InBytes:     px * 6, // two raw frames
		OutBytes:    px * 4, // flow field
		Model:       "FlowNet",
	}
}

func (r *run) nnsJob() npu.Job {
	px := r.pixels()
	return npu.Job{
		Ops:         int64(r.p.NNSOpsPerPixel * float64(px)),
		WeightBytes: r.p.NNSWeightBytes,
		InBytes:     px * 3, // sandwich channels (byte-expanded activations)
		OutBytes:    px / 8,
		Model:       "NN-S",
	}
}

// runJob executes a job on the NPU after an optional model switch,
// scheduling its DRAM traffic on the shared channel, and advances the NPU
// timeline from readyAt.
func (r *run) runJob(j npu.Job, readyAt float64, weightKind dram.Kind) {
	if readyAt > r.npuT {
		r.npuT = readyAt
	}
	swStart := r.npuT
	r.npuT += r.npu.SwitchTo(j.Model)
	r.trace.add("NPU", "switch", swStart, r.npuT)
	wBytes, _ := r.npu.TrafficBytes(j)
	memEnd := r.npuT
	if wBytes > 0 {
		memEnd = r.dram.Serve(memEnd, r.seqAddr(int(wBytes)), int(wBytes), weightKind)
	}
	if j.InBytes > 0 {
		memEnd = r.dram.Serve(memEnd, r.seqAddr(int(j.InBytes)), int(j.InBytes), dram.KindRawFrame)
	}
	if j.OutBytes > 0 {
		memEnd = r.dram.Serve(memEnd, r.seqAddr(int(j.OutBytes)), int(j.OutBytes), dram.KindActivation)
	}
	start := r.npuT
	r.npuT += r.npu.Run(j, memEnd-r.npuT)
	r.trace.add("NPU", j.Model, start, r.npuT)
}

// runNNSJob is runJob with activation traffic categorized as NN-S data.
func (r *run) runNNSJob(readyAt float64) {
	j := r.nnsJob()
	if readyAt > r.npuT {
		r.npuT = readyAt
	}
	swStart := r.npuT
	r.npuT += r.npu.SwitchTo(j.Model)
	r.trace.add("NPU", "switch", swStart, r.npuT)
	memEnd := r.dram.Serve(r.npuT, r.seqAddr(int(j.InBytes)), int(j.InBytes), dram.KindActivation)
	memEnd = r.dram.Serve(memEnd, r.seqAddr(int(j.OutBytes)), int(j.OutBytes), dram.KindActivation)
	start := r.npuT
	r.npuT += r.npu.Run(j, memEnd-r.npuT)
	r.trace.add("NPU", j.Model, start, r.npuT)
}

// decodeFrame advances the decoder timeline for frame f and returns its
// completion time. Side-info mode applies to B-frames of the VR-DANN
// schemes.
func (r *run) decodeFrame(d int, f FrameWork, sideInfo bool) float64 {
	r.arriveAt(d)
	decStart := r.decT
	r.decT = r.dram.Serve(r.decT, r.seqAddr(int(f.Bits/8)), int(f.Bits/8), dram.KindBitstream)
	if sideInfo && f.Type == codec.BFrame {
		r.decT += r.dec.DecodeSideInfo(r.w.W, r.w.H)
	} else {
		r.decT += r.dec.DecodeFull(r.w.W, r.w.H)
		// The decoder writes the reconstructed frame to DRAM.
		px := int(r.pixels() * 3)
		r.decT = r.dram.Serve(r.decT, r.seqAddr(px), px, dram.KindRawFrame)
	}
	r.trace.add("DEC", f.Type.String(), decStart, r.decT)
	return r.decT
}

// reconTraffic schedules the DRAM traffic of reconstructing one B-frame on
// the shared channel starting at ready, and returns the completion time.
// Coalesced mode merges fetches into per-(ref, srcy) bursts of a full
// segmentation row; uncoalesced mode issues one random burst per motion
// vector (the serial software behavior).
func (r *run) reconTraffic(f FrameWork, coalesced bool, ready float64) float64 {
	end := ready
	// mv_T fill from the bitstream metadata in DRAM: 8 bytes per entry.
	mvBytes := int(f.NMV * 8)
	end = r.dram.Serve(end, r.seqAddr(mvBytes), mvBytes, dram.KindMV)
	rowBytes := (r.w.W + 7) / 8 // one segmentation row, 1 bit per pixel
	if coalesced {
		for g := int64(0); g < f.Groups; g++ {
			end = r.dram.Serve(end, r.seqAddr(rowBytes), rowBytes, dram.KindSegRef)
		}
	} else {
		for m := int64(0); m < f.NMV; m++ {
			end = r.dram.Serve(end, r.randAddr(), r.p.DRAM.BurstBytes, dram.KindSegRef)
		}
	}
	// Reconstructed 2-bit frame written back to DRAM.
	reconBytes := int(r.pixels() / 4)
	return r.dram.Serve(end, r.seqAddr(reconBytes), reconBytes, dram.KindRecon)
}

// Run simulates one scheme over one workload.
func (s *Simulator) Run(scheme Scheme, w Workload) Report {
	return s.finish(scheme, s.newRun(w))
}

// finish executes the scheme on a prepared run and assembles the report.
func (s *Simulator) finish(scheme Scheme, r *run) Report {
	switch scheme {
	case SchemeOSVOS:
		r.perFrameNN(s.P.OSVOSNets, []string{"OSVOS-fg", "OSVOS-contour"})
	case SchemeFAVOS:
		r.perFrameNN(1, []string{"NN-L"})
	case SchemeDFF:
		r.dff(4)
	case SchemeEuphrates2:
		r.euphrates(2)
	case SchemeEuphrates4:
		r.euphrates(4)
	case SchemeVRDANNSerial:
		r.vrdannSerial()
	case SchemeVRDANNParallel:
		r.vrdannParallel()
	default:
		panic(fmt.Sprintf("sim: unknown scheme %d", scheme))
	}
	total := r.npuT
	if r.decT > total {
		total = r.decT
	}
	if r.agentT > total {
		total = r.agentT
	}
	rep := Report{
		Scheme:   scheme,
		Video:    r.w.Name,
		Frames:   len(r.w.Frames),
		TotalNS:  total,
		NPUNS:    r.npu.Stats.BusyNS,
		DecNS:    r.dec.Stats.BusyNS,
		AgentNS:  r.agent,
		Switches: r.npu.Stats.Switches,
		Ops:      r.npu.Stats.Ops,
		DRAM:     r.dram.Stats,
	}
	rep.Energy = Energy{
		NPUPJ:    r.npu.Stats.EnergyPJ,
		DRAMPJ:   r.dram.Stats.EnergyPJ,
		DecPJ:    r.dec.Stats.EnergyPJ,
		AgentPJ:  r.agentEnergyPJ(),
		StaticPJ: s.P.NPU.IdlePowerW * total * 1000, // W × ns = 1000 pJ
	}
	return rep
}

func (r *run) agentEnergyPJ() float64 {
	var pj float64
	for _, f := range r.w.Frames {
		if f.Type == codec.BFrame {
			pj += r.p.Agent.TmpBEnergyPJ(r.w.W, r.w.H)
		}
	}
	return pj
}

// perFrameNN models OSVOS/FAVOS: full decode of every frame, nets large
// network passes per frame.
func (r *run) perFrameNN(nets int, models []string) {
	for _, d := range r.w.Order {
		ready := r.decodeFrame(d, r.w.Frames[d], false)
		for i := 0; i < nets; i++ {
			r.runJob(r.nnlJob(models[i%len(models)]), ready, dram.KindWeights)
		}
		r.markDone(d, r.npuT)
	}
}

// dff models deep feature flow: key frames (fixed interval in display
// order) run NN-L, non-key frames run FlowNet plus a feature warp.
func (r *run) dff(keyInterval int) {
	decDone := r.decodeAll(false)
	for d := range r.w.Frames {
		if d%keyInterval == 0 {
			r.runJob(r.nnlJob("NN-L"), decDone[d], dram.KindWeights)
			r.markDone(d, r.npuT)
			continue
		}
		r.runJob(r.flowJob(), decDone[d], dram.KindWeights)
		// Warp: gather the key segmentation through the flow field.
		segBytes := int(r.pixels() / 8)
		end := r.dram.Serve(r.npuT, r.seqAddr(segBytes), segBytes, dram.KindSegRef)
		r.npuT = r.dram.Serve(end, r.seqAddr(segBytes), segBytes, dram.KindActivation)
		r.markDone(d, r.npuT)
	}
}

// euphrates models the ISP-assisted detector: NN-L on key frames, CPU box
// extrapolation from ISP motion vectors in between.
func (r *run) euphrates(keyInterval int) {
	decDone := r.decodeAll(false)
	for d := range r.w.Frames {
		if d%keyInterval == 0 {
			r.runJob(r.nnlJob("NN-L"), decDone[d], dram.KindWeights)
			r.markDone(d, r.npuT)
			continue
		}
		// Extrapolation is cheap CPU work; MVs come for free from the ISP.
		if decDone[d] > r.npuT {
			r.npuT = decDone[d]
		}
		r.npuT += r.p.EuphratesExtrapNS
		r.markDone(d, r.npuT)
	}
}

// decodeAll advances the decoder for every frame in decode order and
// returns per-display-index completion times. Because the whole decoder
// timeline is pre-simulated here (the consuming scheme walks frames in
// display order), its DRAM traffic is accounted with Access rather than
// Serve: routing pre-simulated future requests through the shared queue
// would head-of-line-block the NPU's first request, an artifact of
// simulation order rather than real contention.
func (r *run) decodeAll(sideInfo bool) []float64 {
	done := make([]float64, len(r.w.Frames))
	for _, d := range r.w.Order {
		f := r.w.Frames[d]
		r.arriveAt(d)
		r.decT += r.dram.Access(r.seqAddr(int(f.Bits/8)), int(f.Bits/8), dram.KindBitstream)
		if sideInfo && f.Type == codec.BFrame {
			r.decT += r.dec.DecodeSideInfo(r.w.W, r.w.H)
		} else {
			r.decT += r.dec.DecodeFull(r.w.W, r.w.H)
			px := int(r.pixels() * 3)
			r.decT += r.dram.Access(r.seqAddr(px), px, dram.KindRawFrame)
		}
		done[d] = r.decT
	}
	return done
}

// vrdannSerial is the pure-software flow of Sec IV-A: frames are processed
// strictly in decode order, B reconstruction runs on the CPU on the
// critical path with un-coalesced memory accesses, and the NPU switches
// between NN-L and NN-S as the order dictates.
func (r *run) vrdannSerial() {
	for _, d := range r.w.Order {
		f := r.w.Frames[d]
		if f.Type.IsAnchor() {
			ready := r.decodeFrame(d, f, true)
			r.runJob(r.nnlJob("NN-L"), ready, dram.KindWeights)
			r.markDone(d, r.npuT)
			continue
		}
		ready := r.decodeFrame(d, f, true)
		if ready > r.npuT {
			r.npuT = ready
		}
		r.npuT = r.reconTraffic(f, false, r.npuT)
		r.npuT += float64(f.Blocks) * r.p.CPUReconNSPerBlock
		r.npuT += float64(r.pixels()) * r.p.CPUSandwichNSPerPixel
		r.runNNSJob(r.npuT)
		r.markDone(d, r.npuT)
	}
}

// vrdannParallel is the agent-unit architecture of Sec IV: asynchronous
// ip_Q/b_Q with lagged switching, reconstruction on the agent overlapped
// with NPU work, and coalesced reference fetches (in batches of tmp_B
// buffers, which lets the coalescing unit merge across B-frames).
func (r *run) vrdannParallel() {
	type pending struct {
		display   int
		reconDone float64
	}
	var queue []pending
	var batch []FrameWork
	var batchDisp []int

	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		// Reconstruction can only start once the reference segmentations
		// exist, i.e. after the NN-L work issued so far; the agent then works
		// in parallel with the NPU.
		start := r.agentT
		if r.decT > start {
			start = r.decT
		}
		coalesced := !r.p.DisableCoalescing
		merged := FrameWork{}
		for _, f := range batch {
			merged.NMV += f.NMV
			merged.Groups += f.Groups
			merged.Blocks += f.Blocks
		}
		merged.Type = codec.BFrame
		end := r.reconTraffic(merged, coalesced, start)
		end += r.p.Agent.ControlNS(merged.Blocks)
		r.agent += end - start
		r.trace.add("AGENT", "recon", start, end)
		r.agentT = end
		for _, d := range batchDisp {
			queue = append(queue, pending{display: d, reconDone: r.agentT})
		}
		batch = batch[:0]
		batchDisp = batchDisp[:0]
	}
	drain := func() {
		flushBatch()
		for _, p := range queue {
			r.runNNSJob(p.reconDone)
			r.markDone(p.display, r.npuT)
		}
		queue = queue[:0]
	}

	bq := 0
	anchorsSinceDrain := 0
	for _, d := range r.w.Order {
		f := r.w.Frames[d]
		if f.Type.IsAnchor() {
			ready := r.decodeFrame(d, f, true)
			r.runJob(r.nnlJob("NN-L"), ready, dram.KindWeights)
			r.markDone(d, r.npuT)
			anchorsSinceDrain++
			continue
		}
		r.decodeFrame(d, f, true)
		batch = append(batch, f)
		batchDisp = append(batchDisp, d)
		bq++
		// Lagged switching (Sec IV-B): "we always run a predefined number of
		// I/P-frames from the ip_Q, after that we will switch to drain the
		// b_Q" — the predefined number is the ip_Q capacity; a full b_Q also
		// forces a drain.
		if len(batch) == r.p.Agent.TmpBuffers {
			flushBatch()
		}
		if r.p.DisableLaggedSwitching || bq == r.p.Agent.BQEntries || anchorsSinceDrain >= r.p.Agent.IPQEntries {
			drain()
			bq = 0
			anchorsSinceDrain = 0
		}
	}
	drain()
}
