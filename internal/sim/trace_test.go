package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTracedRecordsAllUnits(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	rep, tr := s.RunTraced(SchemeVRDANNParallel, w)
	if len(tr.Events) == 0 {
		t.Fatal("no events recorded")
	}
	busy := tr.BusyNS()
	for _, unit := range []string{"DEC", "NPU", "AGENT"} {
		if busy[unit] <= 0 {
			t.Fatalf("unit %s has no recorded occupancy", unit)
		}
	}
	// Trace NPU occupancy must match the report's NPU busy time.
	if diff := busy["NPU"] - rep.NPUNS; diff > 1 || diff < -1 {
		t.Fatalf("trace NPU busy %v != report %v", busy["NPU"], rep.NPUNS)
	}
	_, end := tr.Span()
	if end > rep.TotalNS+1 {
		t.Fatalf("trace extends past total time: %v > %v", end, rep.TotalNS)
	}
}

func TestRunTracedMatchesUntraced(t *testing.T) {
	w := testWorkload(t, 1.5)
	s := New(DefaultParams())
	plain := s.Run(SchemeVRDANNSerial, w)
	traced, _ := s.RunTraced(SchemeVRDANNSerial, w)
	if plain.TotalNS != traced.TotalNS || plain.Switches != traced.Switches {
		t.Fatalf("tracing changed results: %v vs %v", plain.TotalNS, traced.TotalNS)
	}
}

func TestTraceLabelsShowSchemeStructure(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	_, tr := s.RunTraced(SchemeVRDANNParallel, w)
	labels := map[string]int{}
	for _, e := range tr.Events {
		labels[e.Label]++
	}
	if labels["NN-L"] == 0 || labels["NN-S"] == 0 || labels["recon"] == 0 {
		t.Fatalf("expected NN-L/NN-S/recon events, got %v", labels)
	}
	// Lagged switching: far fewer switch events than NN jobs.
	if labels["switch"] >= labels["NN-S"] {
		t.Fatalf("switches (%d) should be far fewer than NN-S runs (%d)", labels["switch"], labels["NN-S"])
	}
}

func TestTraceRender(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	_, tr := s.RunTraced(SchemeVRDANNParallel, w)
	var buf bytes.Buffer
	tr.Render(&buf, 60)
	out := buf.String()
	for _, want := range []string{"timeline:", "NPU", "DEC", "AGENT", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	(&Trace{}).Render(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty trace should say so")
	}
}
