package sim

import (
	"vrdann/internal/sim/agent"
	"vrdann/internal/sim/dram"
	"vrdann/internal/sim/npu"
	"vrdann/internal/sim/vdec"
)

// Params bundles all model configurations plus the per-network workload
// constants. Operation counts are expressed per pixel so workloads scale
// with resolution; the defaults are calibrated to the paper's platform:
// NN-L (ROI SegNet class) is 0.5 TOP per 854×480 frame (Fig 12), FlowNet is
// ~2/3 of NN-L, and NN-S is the 3-layer refinement network whose cost comes
// from this repository's own architecture.
type Params struct {
	NPU   npu.Config
	DRAM  dram.Config
	Dec   vdec.Config
	Agent agent.Config

	NNLOpsPerPixel  float64 // NN-L ops per pixel (0.5 TOP / 854×480)
	NNLWeightBytes  int64   // ROI SegNet-class INT8 footprint
	OSVOSNets       int     // OSVOS runs two large networks per frame
	FlowOpsPerPixel float64 // FlowNet-class cost per pixel
	FlowWeightBytes int64
	NNSOpsPerPixel  float64 // 3-layer NN-S cost per pixel
	NNSWeightBytes  int64

	// Software path costs for VR-DANN-serial (CPU-managed reconstruction).
	CPUReconNSPerBlock    float64
	CPUSandwichNSPerPixel float64
	// Euphrates per-frame CPU box extrapolation.
	EuphratesExtrapNS float64

	// Ablation switches (all false for the paper configuration).
	DisableCoalescing      bool // parallel agent issues one random fetch per MV
	DisableLaggedSwitching bool // parallel drains b_Q after every frame
}

// DefaultParams returns the Table II configuration.
func DefaultParams() Params {
	return Params{
		NPU:   npu.DefaultConfig(),
		DRAM:  dram.DefaultConfig(),
		Dec:   vdec.DefaultConfig(),
		Agent: agent.DefaultConfig(),

		NNLOpsPerPixel:  0.5e12 / (854.0 * 480.0),
		NNLWeightBytes:  50 << 20,
		OSVOSNets:       2,
		FlowOpsPerPixel: 0.33e12 / (854.0 * 480.0),
		FlowWeightBytes: 38 << 20,
		NNSOpsPerPixel:  1008, // 2 × ~504 MACs/px for the 8-feature RefineNet
		NNSWeightBytes:  1 << 10,

		CPUReconNSPerBlock:    1500,
		CPUSandwichNSPerPixel: 10,
		EuphratesExtrapNS:     3e5,
	}
}

// Scheme identifies a simulated recognition pipeline.
type Scheme int

// Simulated schemes.
const (
	SchemeOSVOS Scheme = iota
	SchemeFAVOS
	SchemeDFF
	SchemeEuphrates2
	SchemeEuphrates4
	SchemeVRDANNSerial
	SchemeVRDANNParallel
)

func (s Scheme) String() string {
	switch s {
	case SchemeOSVOS:
		return "OSVOS"
	case SchemeFAVOS:
		return "FAVOS"
	case SchemeDFF:
		return "DFF"
	case SchemeEuphrates2:
		return "Euphrates-2"
	case SchemeEuphrates4:
		return "Euphrates-4"
	case SchemeVRDANNSerial:
		return "VR-DANN-serial"
	case SchemeVRDANNParallel:
		return "VR-DANN-parallel"
	default:
		return "unknown"
	}
}

// Energy is the per-unit energy breakdown of a run (picojoules).
type Energy struct {
	NPUPJ    float64
	DRAMPJ   float64
	DecPJ    float64
	AgentPJ  float64
	StaticPJ float64
}

// TotalPJ sums the breakdown.
func (e Energy) TotalPJ() float64 {
	return e.NPUPJ + e.DRAMPJ + e.DecPJ + e.AgentPJ + e.StaticPJ
}

// Report is the result of simulating one scheme on one workload.
type Report struct {
	Scheme   Scheme
	Video    string
	Frames   int
	TotalNS  float64
	NPUNS    float64 // NPU busy time
	DecNS    float64 // decoder busy time
	AgentNS  float64 // agent-unit busy time
	Switches int
	Ops      int64
	Energy   Energy
	DRAM     dram.Stats
}

// FPS returns the sustained frame rate of the run.
func (r Report) FPS() float64 {
	if r.TotalNS == 0 {
		return 0
	}
	return float64(r.Frames) / (r.TotalNS * 1e-9)
}

// TOPSPerFrame returns the average tera-operations per frame.
func (r Report) TOPSPerFrame() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Frames) / 1e12
}
