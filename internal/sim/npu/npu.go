// Package npu is an analytic timing and energy model of a commercial NPU,
// configured as the Ascend 310 used in the paper (Table II): 16 TOPS INT8
// peak, 8 MB on-chip buffer, 1 GHz. Per-inference latency follows a
// roofline: max(compute time at the effective throughput, memory time for
// weights and activations that do not fit the on-chip buffer), plus a
// model-switch penalty when the loaded kernel changes (the cost VR-DANN's
// lagged queue switching amortizes).
package npu

// Config describes the NPU.
type Config struct {
	PeakTOPS      float64 // INT8 peak
	Efficiency    float64 // sustained fraction of peak on large conv nets
	BufferBytes   int64   // on-chip buffer
	ClockGHz      float64
	SwitchNS      float64 // kernel/model switch penalty (pipeline drain, reconfiguration)
	EnergyPJPerOp float64
	IdlePowerW    float64 // SoC-level static power charged per wall-clock time
}

// DefaultConfig mirrors Table II with an effective-throughput calibration:
// the paper's FAVOS runs at 13 fps for a 0.5 TOP/frame network on this NPU,
// implying ~40% sustained efficiency.
func DefaultConfig() Config {
	return Config{
		PeakTOPS:      16,
		Efficiency:    0.40,
		BufferBytes:   8 << 20,
		ClockGHz:      1.0,
		SwitchNS:      1.0e6, // "up to millisecond in GPGPU" (Sec IV-A)
		EnergyPJPerOp: 0.08,
		IdlePowerW:    0.3,
	}
}

// CalibrateEfficiency converts a measured sustained kernel rate (int8
// multiply-accumulate ops per second, MACs ×2) into the efficiency
// fraction it implies against this config's int8 peak, clamped to [0, 1].
// This is the feedback hook from the software stack: the experiments
// harness times the repo's own int8 batched NN-S forward and feeds the
// rate through here, so when the software kernels stand in for the NPU
// the roofline's effective throughput describes the measured datapath
// instead of an assumed one.
func (c Config) CalibrateEfficiency(opsPerSec float64) float64 {
	if c.PeakTOPS <= 0 || opsPerSec <= 0 {
		return 0
	}
	e := opsPerSec / (c.PeakTOPS * 1e12)
	if e > 1 {
		e = 1
	}
	return e
}

// Job is one network inference.
type Job struct {
	Ops         int64 // multiply-accumulate operations ×2 (ops)
	WeightBytes int64 // parameter footprint (streamed when > buffer)
	InBytes     int64 // input activation bytes read from DRAM
	OutBytes    int64 // output bytes written to DRAM
	Model       string
}

// Stats aggregates NPU activity.
type Stats struct {
	Ops      int64
	Switches int
	BusyNS   float64
	EnergyPJ float64
}

// Model is a stateful NPU model.
type Model struct {
	Cfg    Config
	Stats  Stats
	loaded string
}

// New constructs an NPU model with no kernel loaded.
func New(cfg Config) *Model { return &Model{Cfg: cfg} }

// SwitchTo loads a different model, returning the switch penalty in ns
// (zero when the model is already resident).
func (m *Model) SwitchTo(model string) float64 {
	if m.loaded == model {
		return 0
	}
	m.loaded = model
	m.Stats.Switches++
	m.Stats.BusyNS += m.Cfg.SwitchNS
	return m.Cfg.SwitchNS
}

// Loaded returns the currently loaded model name.
func (m *Model) Loaded() string { return m.loaded }

// Run executes a job and returns its latency in ns. memNS is the DRAM time
// already computed by the caller for the job's off-chip traffic; the
// roofline takes the max of compute and memory.
func (m *Model) Run(j Job, memNS float64) float64 {
	computeNS := float64(j.Ops) / (m.Cfg.PeakTOPS * m.Cfg.Efficiency * 1e3) // ops / (ops per ns)
	lat := computeNS
	if memNS > lat {
		lat = memNS
	}
	m.Stats.Ops += j.Ops
	m.Stats.BusyNS += lat
	m.Stats.EnergyPJ += float64(j.Ops) * m.Cfg.EnergyPJPerOp
	return lat
}

// TrafficBytes returns the job's off-chip traffic: all input/output
// activations plus weights when the parameter footprint exceeds the
// on-chip buffer (weights must then be streamed per inference).
func (m *Model) TrafficBytes(j Job) (weights, activations int64) {
	if j.WeightBytes > m.Cfg.BufferBytes {
		weights = j.WeightBytes
	}
	return weights, j.InBytes + j.OutBytes
}
