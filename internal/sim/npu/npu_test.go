package npu

import (
	"math"
	"testing"
)

func TestComputeBoundLatency(t *testing.T) {
	m := New(DefaultConfig())
	m.SwitchTo("net")
	// 6.4e9 ops at 16 TOPS × 0.4 = 6.4 Tops/s -> 1 ms.
	lat := m.Run(Job{Ops: 6_400_000_000, Model: "net"}, 0)
	if math.Abs(lat-1e6) > 1 {
		t.Fatalf("latency = %v ns, want 1e6", lat)
	}
}

func TestMemoryBoundLatency(t *testing.T) {
	m := New(DefaultConfig())
	lat := m.Run(Job{Ops: 1000, Model: "net"}, 5e5)
	if lat != 5e5 {
		t.Fatalf("memory-bound latency = %v, want 5e5", lat)
	}
}

func TestSwitchPenaltyOnlyOnChange(t *testing.T) {
	m := New(DefaultConfig())
	if p := m.SwitchTo("a"); p != m.Cfg.SwitchNS {
		t.Fatalf("first switch penalty = %v", p)
	}
	if p := m.SwitchTo("a"); p != 0 {
		t.Fatalf("same-model switch penalty = %v, want 0", p)
	}
	if p := m.SwitchTo("b"); p != m.Cfg.SwitchNS {
		t.Fatalf("model change penalty = %v", p)
	}
	if m.Stats.Switches != 2 {
		t.Fatalf("switches = %d, want 2", m.Stats.Switches)
	}
}

func TestWeightsStreamedOnlyWhenOverBuffer(t *testing.T) {
	m := New(DefaultConfig())
	w, _ := m.TrafficBytes(Job{WeightBytes: 1 << 20}) // 1 MB fits in 8 MB
	if w != 0 {
		t.Fatalf("resident weights should not be streamed, got %d", w)
	}
	w, _ = m.TrafficBytes(Job{WeightBytes: 50 << 20})
	if w != 50<<20 {
		t.Fatalf("oversized weights must stream, got %d", w)
	}
}

func TestEnergyProportionalToOps(t *testing.T) {
	m := New(DefaultConfig())
	m.Run(Job{Ops: 1e9, Model: "net"}, 0)
	e1 := m.Stats.EnergyPJ
	m.Run(Job{Ops: 1e9, Model: "net"}, 0)
	if math.Abs(m.Stats.EnergyPJ-2*e1) > 1e-6*e1 {
		t.Fatal("energy must be proportional to ops")
	}
}
