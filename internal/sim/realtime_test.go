package sim

import "testing"

func TestRealtimeLatencyAccounting(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	rep := s.RunRealtime(SchemeVRDANNParallel, w, 30)
	if len(rep.Latencies) != len(w.Frames) {
		t.Fatalf("latencies for %d frames, want %d", len(rep.Latencies), len(w.Frames))
	}
	if rep.AvgLatencyNS <= 0 || rep.P99LatencyNS < rep.AvgLatencyNS || rep.MaxLatencyNS < rep.P99LatencyNS {
		t.Fatalf("latency stats inconsistent: avg %v p99 %v max %v",
			rep.AvgLatencyNS, rep.P99LatencyNS, rep.MaxLatencyNS)
	}
}

func TestRealtimeFAVOSMissesDeadlinesAt30FPS(t *testing.T) {
	// FAVOS runs at ~13 fps: a 30 fps camera must overwhelm it, with
	// latency growing as the queue builds.
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	rep := s.RunRealtime(SchemeFAVOS, w, 30)
	// The backlog grows by ~45 ms per frame, so over this short run roughly
	// the back half of the frames blows the 1 s budget.
	if rep.DeadlineMisses < len(w.Frames)/3 {
		t.Fatalf("FAVOS at 30 fps missed only %d/%d deadlines", rep.DeadlineMisses, len(w.Frames))
	}
	n := len(rep.Latencies)
	if rep.Latencies[n-1] <= rep.Latencies[1] {
		t.Fatal("overloaded FAVOS latency should grow over the run")
	}
}

func TestRealtimeVRDANNKeepsUpWhereFAVOSCannot(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	candidates := []float64{10, 15, 20, 25, 30, 40}
	favos := s.SustainedFPS(SchemeFAVOS, w, candidates)
	vrd := s.SustainedFPS(SchemeVRDANNParallel, w, candidates)
	t.Logf("sustained: FAVOS %.0f fps, VR-DANN-parallel %.0f fps", favos, vrd)
	if vrd <= favos {
		t.Fatalf("VR-DANN (%.0f fps) must sustain a higher rate than FAVOS (%.0f fps)", vrd, favos)
	}
	if favos < 10 || favos > 15 {
		t.Fatalf("FAVOS sustained %.0f fps, expected ~13", favos)
	}
	if vrd < 25 {
		t.Fatalf("VR-DANN sustained only %.0f fps, expected >= 25", vrd)
	}
}

func TestRealtimeLatencyIncludesBatchingDelay(t *testing.T) {
	// At a sustainable rate, VR-DANN-parallel's B-frames wait in b_Q for the
	// lagged switch: its worst-case latency exceeds a single frame period
	// even though throughput keeps up. That is the user-experience tradeoff
	// of Sec IV-B.
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	rep := s.RunRealtime(SchemeVRDANNParallel, w, 25)
	period := 1e9 / 25.0
	if rep.MaxLatencyNS <= period {
		t.Fatalf("expected some batching latency beyond one period, max %.1f ms", rep.MaxLatencyNS/1e6)
	}
	// But the average must stay bounded (no runaway queue).
	if rep.AvgLatencyNS > 30*period {
		t.Fatalf("average latency %.1f ms looks unbounded", rep.AvgLatencyNS/1e6)
	}
}

func TestRealtimeMatchesBatchWhenUnconstrained(t *testing.T) {
	// An extremely fast source (all frames arrive almost immediately)
	// reduces to the batch simulation.
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	batch := s.Run(SchemeVRDANNSerial, w)
	rt := s.RunRealtime(SchemeVRDANNSerial, w, 1e6)
	diff := rt.TotalNS - batch.TotalNS
	if diff < 0 {
		diff = -diff
	}
	if diff > batch.TotalNS*0.01 {
		t.Fatalf("unconstrained realtime (%.1f ms) differs from batch (%.1f ms)",
			rt.TotalNS/1e6, batch.TotalNS/1e6)
	}
}
