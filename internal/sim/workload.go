// Package sim is the cycle-level SoC simulator for the VR-DANN evaluation.
// It composes the DRAM, NPU, video-decoder and agent-unit models and replays
// the per-frame workload of a real encoded bitstream under each scheme the
// paper compares: OSVOS, FAVOS, DFF, Euphrates, VR-DANN-serial and
// VR-DANN-parallel.
//
// Workloads are extracted from actual decoder output (frame types, decode
// order, motion vectors, coalescing opportunities, bitstream bits) and can
// be scaled from the encoded resolution to the paper's 854×480 evaluation
// resolution: per-frame counts grow with the area ratio while the motion
// structure (B ratio, reference spread, coalescing factor) is preserved.
package sim

import (
	"vrdann/internal/codec"
	"vrdann/internal/sim/agent"
)

// FrameWork is the simulator-facing workload of one frame.
type FrameWork struct {
	Type         codec.FrameType
	Blocks       int64 // macro-blocks
	NMV          int64 // motion-vector fetches (bi-ref counts twice)
	Groups       int64 // coalesced DRAM request groups (agent window)
	DistinctRefs int   // distinct reference frames
	Bits         int64 // compressed size
}

// Workload is a whole video's simulator input.
type Workload struct {
	Name   string
	W, H   int
	Frames []FrameWork // display order
	Order  []int       // decode order
}

// BFrames counts B-frames in the workload.
func (w Workload) BFrames() int {
	n := 0
	for _, f := range w.Frames {
		if f.Type == codec.BFrame {
			n++
		}
	}
	return n
}

// FromDecode converts decoder output into a workload, scaling counts to the
// target resolution (pass the decode resolution itself for no scaling).
func FromDecode(name string, dec *codec.DecodeResult, ag agent.Config, targetW, targetH int) Workload {
	scale := float64(targetW*targetH) / float64(dec.W*dec.H)
	w := Workload{Name: name, W: targetW, H: targetH, Order: append([]int(nil), dec.Order...)}
	for _, info := range dec.Infos {
		cs := ag.Coalesce(info.MVs)
		fw := FrameWork{
			Type:         info.Type,
			Blocks:       int64(float64(info.Blocks)*scale + 0.5),
			NMV:          int64(float64(cs.MVs)*scale + 0.5),
			Groups:       int64(float64(cs.Groups)*scale + 0.5),
			DistinctRefs: cs.DistinctRef,
			Bits:         int64(float64(info.Bits)*scale + 0.5),
		}
		w.Frames = append(w.Frames, fw)
	}
	return w
}
