package sim

import (
	"math"
	"sort"
)

// RealtimeReport characterizes a scheme under live-camera conditions:
// frames arrive at a fixed rate (in display order) and each frame's
// recognition latency is measured from its arrival to its result.
type RealtimeReport struct {
	Report
	SourceFPS    float64
	Latencies    []float64 // per display frame, ns
	AvgLatencyNS float64
	P99LatencyNS float64
	MaxLatencyNS float64
	// DeadlineMisses counts frames whose result took longer than the
	// interactive budget: max(1 s, 10 frame periods). The budget must
	// exceed one period because the codec's decode-order reordering alone
	// delays B-frames by several periods.
	DeadlineMisses int
	BudgetNS       float64
}

// RunRealtime simulates a scheme with frames arriving at sourceFPS instead
// of all being available at time zero. It exposes the latency cost of
// VR-DANN-parallel's lagged switching (B-frames wait in b_Q for a batch)
// against its throughput benefit — the "not affecting the user experience"
// constraint of Sec IV-B.
func (s *Simulator) RunRealtime(scheme Scheme, w Workload, sourceFPS float64) RealtimeReport {
	r := s.newRun(w)
	period := 1e9 / sourceFPS
	r.arrival = make([]float64, len(w.Frames))
	for d := range r.arrival {
		r.arrival[d] = float64(d) * period
	}
	rep := s.finish(scheme, r)
	out := RealtimeReport{Report: rep, SourceFPS: sourceFPS}
	out.BudgetNS = 10 * period
	if out.BudgetNS < 1e9 {
		out.BudgetNS = 1e9
	}
	out.Latencies = make([]float64, len(w.Frames))
	var sum float64
	for d, doneAt := range r.done {
		lat := doneAt - r.arrival[d]
		if lat < 0 {
			lat = 0
		}
		out.Latencies[d] = lat
		sum += lat
		if lat > out.MaxLatencyNS {
			out.MaxLatencyNS = lat
		}
		if lat > out.BudgetNS {
			out.DeadlineMisses++
		}
	}
	if len(out.Latencies) > 0 {
		out.AvgLatencyNS = sum / float64(len(out.Latencies))
		sorted := append([]float64(nil), out.Latencies...)
		sort.Float64s(sorted)
		idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		out.P99LatencyNS = sorted[idx]
	}
	return out
}

// SustainedFPS reports the highest candidate source rate the scheme keeps
// up with. A work-conserving pipeline sustains any arrival rate up to its
// batch throughput (arrival pacing affects latency, not capacity), so the
// answer is the largest candidate at or below the batch frame rate.
func (s *Simulator) SustainedFPS(scheme Scheme, w Workload, candidates []float64) float64 {
	capacity := s.Run(scheme, w).FPS()
	best := 0.0
	for _, fps := range candidates {
		if fps <= capacity && fps > best {
			best = fps
		}
	}
	return best
}
