package vdec

import "testing"

func TestFullDecodeRate(t *testing.T) {
	m := New(DefaultConfig())
	ns := m.DecodeFull(854, 480)
	fps := 1e9 / ns
	if fps < 40 || fps > 90 {
		t.Fatalf("854x480 full decode at %.1f fps, want ~60", fps)
	}
}

func TestSideInfoCheaper(t *testing.T) {
	m := New(DefaultConfig())
	full := m.DecodeFull(854, 480)
	side := m.DecodeSideInfo(854, 480)
	if side >= full/2 {
		t.Fatalf("side-info decode (%v) should be well under half of full (%v)", side, full)
	}
	if m.Stats.FullFrames != 1 || m.Stats.SideFrames != 1 {
		t.Fatalf("frame accounting: %+v", m.Stats)
	}
}

func TestEnergyTracksWork(t *testing.T) {
	m := New(DefaultConfig())
	m.DecodeFull(100, 100)
	e1 := m.Stats.EnergyPJ
	m.DecodeSideInfo(100, 100)
	gain := m.Stats.EnergyPJ - e1
	if gain >= e1 {
		t.Fatal("side-info energy must be below full-decode energy")
	}
}

func TestBusyAccumulates(t *testing.T) {
	m := New(DefaultConfig())
	a := m.DecodeFull(64, 64)
	b := m.DecodeFull(64, 64)
	if m.Stats.BusyNS != a+b {
		t.Fatalf("busy = %v, want %v", m.Stats.BusyNS, a+b)
	}
}
