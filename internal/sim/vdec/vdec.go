// Package vdec is a throughput model of a hardware video decoder running at
// 300 MHz (the clock the paper takes from a commercial HEVC decoder IP).
// Full pixel reconstruction costs cycles per pixel; in side-info mode a
// B-frame only needs bitstream parsing and motion-vector extraction, a
// small fraction of the work.
package vdec

// Config describes the decoder.
type Config struct {
	ClockGHz       float64
	CyclesPerPixel float64 // full reconstruction cost
	SideInfoFactor float64 // fraction of full cost for MV-only B decode
	EnergyPJPerPix float64
}

// DefaultConfig models a consumer 300 MHz decoder that sustains ~60 fps at
// 854×480 for full decode.
func DefaultConfig() Config {
	return Config{
		ClockGHz:       0.3,
		CyclesPerPixel: 12,
		SideInfoFactor: 0.3,
		EnergyPJPerPix: 2000,
	}
}

// Stats aggregates decoder activity.
type Stats struct {
	FullFrames int
	SideFrames int
	BusyNS     float64
	EnergyPJ   float64
}

// Model is a stateful decoder model.
type Model struct {
	Cfg   Config
	Stats Stats
}

// New constructs a decoder model.
func New(cfg Config) *Model { return &Model{Cfg: cfg} }

// DecodeFull returns the latency (ns) to fully reconstruct one frame of
// w×h pixels.
func (m *Model) DecodeFull(w, h int) float64 {
	pixels := float64(w * h)
	ns := pixels * m.Cfg.CyclesPerPixel / m.Cfg.ClockGHz
	m.Stats.FullFrames++
	m.Stats.BusyNS += ns
	m.Stats.EnergyPJ += pixels * m.Cfg.EnergyPJPerPix
	return ns
}

// DecodeSideInfo returns the latency (ns) to parse a B-frame for motion
// vectors without pixel reconstruction.
func (m *Model) DecodeSideInfo(w, h int) float64 {
	pixels := float64(w * h)
	ns := pixels * m.Cfg.CyclesPerPixel * m.Cfg.SideInfoFactor / m.Cfg.ClockGHz
	m.Stats.SideFrames++
	m.Stats.BusyNS += ns
	m.Stats.EnergyPJ += pixels * m.Cfg.EnergyPJPerPix * m.Cfg.SideInfoFactor
	return ns
}
