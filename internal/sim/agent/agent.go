// Package agent models the VR-DANN agent unit (Sec IV, Fig 6): the
// asynchronous I/P and B frame queues, the motion-vector table (mv_T), the
// on-chip reconstruction buffers (tmp_B) and the coalescing unit that
// groups reference-segmentation fetches into DRAM bursts (Fig 8). Costs
// follow Table II: 600 MHz agent clock, 300 KB of tmp_B across three
// buffers, a 256-entry mv_T and a 32-entry coalescing window.
package agent

import "vrdann/internal/codec"

// Config describes the agent unit.
type Config struct {
	ClockGHz       float64
	IPQEntries     int
	BQEntries      int
	MVTEntries     int
	TmpBuffers     int
	TmpBufferBytes int64
	CoalesceWindow int     // MV entries searched simultaneously
	CyclesPerBlock float64 // control cost to dispatch one macro-block
	SRAMPJPerByte  float64 // tmp_B access energy
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{
		ClockGHz:       0.6,
		IPQEntries:     8,
		BQEntries:      24,
		MVTEntries:     256,
		TmpBuffers:     3,
		TmpBufferBytes: 100 << 10,
		CoalesceWindow: 32,
		CyclesPerBlock: 2,
		SRAMPJPerByte:  1.0,
	}
}

// SRAMBytes returns the agent's total on-chip storage (Table II: ~300 KB of
// tmp_B plus under 2 KB of queues and table).
func (c Config) SRAMBytes() int64 {
	queueBytes := int64(c.IPQEntries*6 + c.BQEntries*6 + c.MVTEntries*8)
	return int64(c.TmpBuffers)*c.TmpBufferBytes + queueBytes
}

// CoalesceStats summarizes what the coalescing unit achieves on one
// B-frame's motion vectors.
type CoalesceStats struct {
	MVs         int // motion-vector entries (bi-ref counts twice)
	Groups      int // coalesced DRAM requests: distinct (ref, srcy) per window
	DistinctRef int // distinct reference frames touched
}

// Coalesce replays the Fig 8 algorithm over the frame's motion vectors:
// the unit scans the mv_T in windows of CoalesceWindow entries and merges
// entries that share (reference frame, source row) into a single burst
// request. Bi-referencing entries contribute both of their fetches.
func (c Config) Coalesce(mvs []codec.MotionVector) CoalesceStats {
	type key struct{ ref, srcy int }
	var st CoalesceStats
	refs := map[int]bool{}
	window := map[key]bool{}
	flush := func() {
		st.Groups += len(window)
		for k := range window {
			delete(window, k)
		}
	}
	inWindow := 0
	add := func(ref, srcy int) {
		st.MVs++
		refs[ref] = true
		window[key{ref, srcy}] = true
		inWindow++
		if inWindow == c.CoalesceWindow {
			flush()
			inWindow = 0
		}
	}
	for _, mv := range mvs {
		add(mv.Ref, mv.SrcY)
		if mv.BiRef {
			add(mv.Ref2, mv.SrcY2)
		}
	}
	flush()
	st.DistinctRef = len(refs)
	return st
}

// ControlNS returns the agent-side control latency to process n
// macro-blocks (queue pops, table updates, block dispatch).
func (c Config) ControlNS(blocks int64) float64 {
	return float64(blocks) * c.CyclesPerBlock / c.ClockGHz
}

// TmpBEnergyPJ returns the SRAM energy to write and read back one
// reconstructed frame of w×h 2-bit pixels through the tmp_B buffers.
func (c Config) TmpBEnergyPJ(w, h int) float64 {
	bytes := float64(w*h) / 4 // 2 bits per pixel
	return 2 * bytes * c.SRAMPJPerByte
}

// CACTI-style physical estimates at TSMC 45 nm. The paper reports the
// 300 KB, 32-bank tmp_B at 2.0 mm² and 0.53 nJ per access (Sec V-B); the
// constants below are calibrated to reproduce those numbers and scale
// linearly in capacity (banked SRAM area is capacity-dominated at this
// size) for what-if configurations.
const (
	sramMM2PerKB      = 2.0 / 300.0  // mm² per KB of banked SRAM
	sramAccessNJPerKB = 0.53 / 300.0 // nJ per access per KB of accessed bank
	logicMM2          = 0.05         // control logic, coalescer, queue heads
)

// AreaMM2 estimates the agent unit's silicon area.
func (c Config) AreaMM2() float64 {
	return float64(c.SRAMBytes())/1024*sramMM2PerKB + logicMM2
}

// TmpBAccessNJ estimates the energy of one full-width tmp_B access.
func (c Config) TmpBAccessNJ() float64 {
	return float64(c.TmpBuffers) * float64(c.TmpBufferBytes) / 1024 * sramAccessNJPerKB
}
