package agent

import (
	"testing"

	"vrdann/internal/codec"
)

func TestCoalesceMergesSameRow(t *testing.T) {
	c := DefaultConfig()
	// Eight MVs pointing at the same reference row: one group (Fig 8).
	var mvs []codec.MotionVector
	for i := 0; i < 8; i++ {
		mvs = append(mvs, codec.MotionVector{Ref: 0, SrcY: 16, SrcX: i * 8})
	}
	st := c.Coalesce(mvs)
	if st.MVs != 8 || st.Groups != 1 {
		t.Fatalf("MVs=%d Groups=%d, want 8/1", st.MVs, st.Groups)
	}
	if st.DistinctRef != 1 {
		t.Fatalf("DistinctRef = %d", st.DistinctRef)
	}
}

func TestCoalesceSeparatesRefsAndRows(t *testing.T) {
	c := DefaultConfig()
	mvs := []codec.MotionVector{
		{Ref: 0, SrcY: 0},
		{Ref: 0, SrcY: 8},
		{Ref: 4, SrcY: 0},
		{Ref: 4, SrcY: 0}, // duplicate of previous
	}
	st := c.Coalesce(mvs)
	if st.Groups != 3 {
		t.Fatalf("Groups = %d, want 3", st.Groups)
	}
	if st.DistinctRef != 2 {
		t.Fatalf("DistinctRef = %d, want 2", st.DistinctRef)
	}
}

func TestCoalesceWindowLimitsMerging(t *testing.T) {
	// 64 identical entries with a 32-entry window flush twice: 2 groups.
	c := DefaultConfig()
	var mvs []codec.MotionVector
	for i := 0; i < 64; i++ {
		mvs = append(mvs, codec.MotionVector{Ref: 0, SrcY: 0})
	}
	st := c.Coalesce(mvs)
	if st.Groups != 2 {
		t.Fatalf("Groups = %d, want 2 (window flushes)", st.Groups)
	}
}

func TestCoalesceBiRefCountsTwice(t *testing.T) {
	c := DefaultConfig()
	mvs := []codec.MotionVector{{Ref: 0, SrcY: 0, BiRef: true, Ref2: 4, SrcY2: 8}}
	st := c.Coalesce(mvs)
	if st.MVs != 2 || st.Groups != 2 || st.DistinctRef != 2 {
		t.Fatalf("bi-ref stats: %+v", st)
	}
}

func TestSRAMBytesMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	b := c.SRAMBytes()
	// ~300 KB of tmp_B plus under 2.2 KB of queues/table.
	if b < 300<<10 || b > 303<<10 {
		t.Fatalf("SRAM bytes = %d, want ~300KB + <2.2KB", b)
	}
}

func TestControlAndEnergyScale(t *testing.T) {
	c := DefaultConfig()
	if c.ControlNS(600) <= c.ControlNS(300) {
		t.Fatal("control time must grow with blocks")
	}
	if c.TmpBEnergyPJ(854, 480) <= c.TmpBEnergyPJ(100, 100) {
		t.Fatal("tmp_B energy must grow with area")
	}
}

func TestAreaAndAccessEnergyMatchPaper(t *testing.T) {
	c := DefaultConfig()
	// Paper Sec V-B: the 300 KB tmp_B costs 2.0 mm² and 0.53 nJ at 45 nm.
	if a := c.AreaMM2(); a < 1.9 || a > 2.2 {
		t.Fatalf("agent area %.2f mm², want ~2.0", a)
	}
	if e := c.TmpBAccessNJ(); e < 0.5 || e > 0.56 {
		t.Fatalf("tmp_B access %.3f nJ, want ~0.53", e)
	}
	// Scaling sanity: doubling the buffers roughly doubles SRAM area.
	c2 := c
	c2.TmpBuffers = 6
	if c2.AreaMM2() < 1.8*c.AreaMM2() {
		t.Fatal("area must scale with capacity")
	}
}
