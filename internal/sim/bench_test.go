package sim

import (
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/video"
)

func benchWorkload(b *testing.B) Workload {
	b.Helper()
	v := video.Generate(video.SceneSpec{
		Name: "bench", W: 96, H: 64, Frames: 32, Seed: 21, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 13, X: 36, Y: 32,
			VX: 1.2, VY: 0.4, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	dec, err := codec.Decode(st.Data, codec.DecodeSideInfo)
	if err != nil {
		b.Fatal(err)
	}
	return FromDecode(v.Name, dec, DefaultParams().Agent, 854, 480)
}

func BenchmarkSimulateFAVOS(b *testing.B) {
	w := benchWorkload(b)
	s := New(DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(SchemeFAVOS, w)
	}
}

func BenchmarkSimulateVRDANNParallel(b *testing.B) {
	w := benchWorkload(b)
	s := New(DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(SchemeVRDANNParallel, w)
	}
}

func BenchmarkSimulateVRDANNSerial(b *testing.B) {
	w := benchWorkload(b)
	s := New(DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(SchemeVRDANNSerial, w)
	}
}
