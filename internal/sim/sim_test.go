package sim

import (
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/sim/dram"
	"vrdann/internal/video"
)

// testWorkload encodes one synthetic sequence and scales it to 854×480.
func testWorkload(t *testing.T, speed float64) Workload {
	t.Helper()
	v := video.Generate(video.SceneSpec{
		Name: "sim", W: 96, H: 64, Frames: 32, Seed: 21, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 13, X: 36, Y: 32,
			VX: speed, VY: speed / 3, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.Decode(st.Data, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	return FromDecode(v.Name, dec, DefaultParams().Agent, 854, 480)
}

func runAll(t *testing.T, w Workload) map[Scheme]Report {
	t.Helper()
	s := New(DefaultParams())
	out := map[Scheme]Report{}
	for _, sc := range []Scheme{SchemeOSVOS, SchemeFAVOS, SchemeDFF, SchemeEuphrates2, SchemeEuphrates4, SchemeVRDANNSerial, SchemeVRDANNParallel} {
		out[sc] = s.Run(sc, w)
	}
	return out
}

func TestSchemePerformanceOrdering(t *testing.T) {
	w := testWorkload(t, 1.0)
	r := runAll(t, w)
	// The paper's headline ordering: OSVOS slowest, then FAVOS, DFF,
	// VR-DANN-serial, VR-DANN-parallel fastest among segmentation schemes.
	if !(r[SchemeOSVOS].TotalNS > r[SchemeFAVOS].TotalNS &&
		r[SchemeFAVOS].TotalNS > r[SchemeDFF].TotalNS &&
		r[SchemeDFF].TotalNS > r[SchemeVRDANNSerial].TotalNS &&
		r[SchemeVRDANNSerial].TotalNS > r[SchemeVRDANNParallel].TotalNS) {
		for sc, rep := range r {
			t.Logf("%v: %.1f ms", sc, rep.TotalNS/1e6)
		}
		t.Fatal("performance ordering violated")
	}
}

func TestSpeedupFactorsRoughlyMatchPaper(t *testing.T) {
	w := testWorkload(t, 1.0)
	r := runAll(t, w)
	favos := r[SchemeFAVOS].TotalNS
	parallel := favos / r[SchemeVRDANNParallel].TotalNS
	serial := favos / r[SchemeVRDANNSerial].TotalNS
	osvos := favos / r[SchemeOSVOS].TotalNS
	t.Logf("speedups vs FAVOS: parallel %.2fx serial %.2fx osvos %.2fx", parallel, serial, osvos)
	// Paper: parallel 2.9x, serial 2.0x, OSVOS 0.51x (exact values vary per
	// video with the B ratio; assert generous bands).
	if parallel < 2.0 || parallel > 4.5 {
		t.Fatalf("parallel speedup %.2fx outside [2.0, 4.5]", parallel)
	}
	if serial < 1.5 || serial > 3.2 {
		t.Fatalf("serial speedup %.2fx outside [1.5, 3.2]", serial)
	}
	if osvos < 0.4 || osvos > 0.6 {
		t.Fatalf("OSVOS relative speed %.2fx outside [0.4, 0.6]", osvos)
	}
}

func TestEnergyOrdering(t *testing.T) {
	w := testWorkload(t, 1.0)
	r := runAll(t, w)
	e := func(s Scheme) float64 { return r[s].Energy.TotalPJ() }
	if !(e(SchemeOSVOS) > e(SchemeFAVOS) &&
		e(SchemeFAVOS) > e(SchemeDFF) &&
		e(SchemeDFF) > e(SchemeVRDANNSerial) &&
		e(SchemeVRDANNSerial) >= e(SchemeVRDANNParallel)) {
		t.Fatal("energy ordering violated")
	}
}

func TestFAVOSFrameRateMatchesPaper(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	fps := s.Run(SchemeFAVOS, w).FPS()
	if fps < 10 || fps > 17 {
		t.Fatalf("FAVOS at %.1f fps, paper reports 13", fps)
	}
	par := s.Run(SchemeVRDANNParallel, w).FPS()
	if par < 30 || par > 60 {
		t.Fatalf("VR-DANN-parallel at %.1f fps, paper reports 40", par)
	}
}

func TestOpsDropMatchesPaper(t *testing.T) {
	// Paper Fig 12: raw TOPS per frame drops from 0.5 to ~0.17 on average.
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	favos := s.Run(SchemeFAVOS, w)
	vrd := s.Run(SchemeVRDANNParallel, w)
	if favos.TOPSPerFrame() < 0.45 || favos.TOPSPerFrame() > 0.55 {
		t.Fatalf("FAVOS %.3f TOP/frame, want ~0.5", favos.TOPSPerFrame())
	}
	if vrd.TOPSPerFrame() > 0.3 {
		t.Fatalf("VR-DANN %.3f TOP/frame, want well under 0.3", vrd.TOPSPerFrame())
	}
}

func TestLaggedSwitchingReducesSwitches(t *testing.T) {
	w := testWorkload(t, 1.0)
	p := DefaultParams()
	lagged := New(p).Run(SchemeVRDANNParallel, w)
	p.DisableLaggedSwitching = true
	eager := New(p).Run(SchemeVRDANNParallel, w)
	if lagged.Switches >= eager.Switches {
		t.Fatalf("lagged switching should reduce switches: %d vs %d", lagged.Switches, eager.Switches)
	}
	if lagged.TotalNS > eager.TotalNS {
		t.Fatal("lagged switching should not be slower")
	}
}

func TestCoalescingReducesDRAMTimeAndMisses(t *testing.T) {
	w := testWorkload(t, 2.0)
	p := DefaultParams()
	on := New(p).Run(SchemeVRDANNParallel, w)
	p.DisableCoalescing = true
	off := New(p).Run(SchemeVRDANNParallel, w)
	if on.DRAM.Misses >= off.DRAM.Misses {
		t.Fatalf("coalescing should reduce row misses: %d vs %d", on.DRAM.Misses, off.DRAM.Misses)
	}
	if on.AgentNS >= off.AgentNS {
		t.Fatalf("coalescing should reduce agent time: %.0f vs %.0f", on.AgentNS, off.AgentNS)
	}
}

func TestVRDANNReducesDRAMTraffic(t *testing.T) {
	// Fig 14: VR-DANN eliminates raw-image fetches for B-frames.
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	favos := s.Run(SchemeFAVOS, w)
	vrd := s.Run(SchemeVRDANNParallel, w)
	if vrd.DRAM.BytesByKind[dram.KindRawFrame] >= favos.DRAM.BytesByKind[dram.KindRawFrame] {
		t.Fatal("VR-DANN must read fewer raw-frame bytes")
	}
	if vrd.DRAM.TotalBytes() >= favos.DRAM.TotalBytes() {
		t.Fatalf("VR-DANN total DRAM %.1f MB should be below FAVOS %.1f MB",
			float64(vrd.DRAM.TotalBytes())/1e6, float64(favos.DRAM.TotalBytes())/1e6)
	}
	// VR-DANN uniquely moves MV and recon traffic.
	if vrd.DRAM.BytesByKind[dram.KindMV] == 0 || vrd.DRAM.BytesByKind[dram.KindRecon] == 0 {
		t.Fatal("VR-DANN must account MV and recon traffic")
	}
	if favos.DRAM.BytesByKind[dram.KindMV] != 0 {
		t.Fatal("FAVOS must not touch MV metadata")
	}
}

func TestEuphratesFasterButDetectionOnly(t *testing.T) {
	w := testWorkload(t, 1.0)
	r := runAll(t, w)
	if r[SchemeEuphrates4].TotalNS >= r[SchemeEuphrates2].TotalNS {
		t.Fatal("Euphrates-4 must be faster than Euphrates-2")
	}
	// Paper: VR-DANN-parallel is ~40% faster than Euphrates-2.
	gain := r[SchemeEuphrates2].TotalNS / r[SchemeVRDANNParallel].TotalNS
	t.Logf("VR-DANN vs Euphrates-2: %.2fx", gain)
	if gain < 1.1 || gain > 2.6 {
		t.Fatalf("VR-DANN gain over Euphrates-2 = %.2fx outside [1.1, 2.6]", gain)
	}
}

func TestTmpBufferBatchingAblation(t *testing.T) {
	w := testWorkload(t, 1.5)
	p := DefaultParams()
	p.Agent.TmpBuffers = 1
	one := New(p).Run(SchemeVRDANNParallel, w)
	p.Agent.TmpBuffers = 3
	three := New(p).Run(SchemeVRDANNParallel, w)
	// More tmp_B buffers allow cross-frame coalescing: fewer DRAM groups.
	if three.DRAM.Misses > one.DRAM.Misses {
		t.Fatalf("3 buffers should not increase misses: %d vs %d", three.DRAM.Misses, one.DRAM.Misses)
	}
	if three.AgentNS > one.AgentNS {
		t.Fatalf("3 buffers should not slow the agent: %.0f vs %.0f", three.AgentNS, one.AgentNS)
	}
}

func TestWorkloadScaling(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "scale", W: 96, H: 64, Frames: 12, Seed: 3, Noise: 1,
		Objects: []video.ObjectSpec{{Shape: video.ShapeDisk, Radius: 12, X: 40, Y: 32, VX: 1, Intensity: 220, Foreground: true}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.Decode(st.Data, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	ag := DefaultParams().Agent
	native := FromDecode("n", dec, ag, 96, 64)
	scaled := FromDecode("s", dec, ag, 854, 480)
	ratio := float64(854*480) / float64(96*64)
	for d := range native.Frames {
		nf, sf := native.Frames[d], scaled.Frames[d]
		if nf.Type != sf.Type {
			t.Fatal("scaling must not change frame types")
		}
		if nf.NMV > 0 {
			got := float64(sf.NMV) / float64(nf.NMV)
			if got < ratio*0.9 || got > ratio*1.1 {
				t.Fatalf("frame %d MV scaling %.1f, want ~%.1f", d, got, ratio)
			}
		}
	}
}

func TestReportAccounting(t *testing.T) {
	w := testWorkload(t, 1.0)
	s := New(DefaultParams())
	r := s.Run(SchemeVRDANNParallel, w)
	if r.Frames != 32 {
		t.Fatalf("frames = %d", r.Frames)
	}
	if r.TotalNS < r.NPUNS {
		t.Fatal("total time cannot be below NPU busy time")
	}
	e := r.Energy
	if e.TotalPJ() != e.NPUPJ+e.DRAMPJ+e.DecPJ+e.AgentPJ+e.StaticPJ {
		t.Fatal("energy breakdown must sum to total")
	}
	for _, part := range []float64{e.NPUPJ, e.DRAMPJ, e.DecPJ, e.AgentPJ, e.StaticPJ} {
		if part <= 0 {
			t.Fatalf("energy component missing: %+v", e)
		}
	}
}
