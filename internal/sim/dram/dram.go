// Package dram models a DDR3-style memory system at the fidelity the
// VR-DANN evaluation needs (the paper integrates DRAMSim): banked row
// buffers, row hit/miss/conflict timing, fixed-size bursts, and per-access
// energy. The model is deliberately in-order and single-channel — what
// matters for the paper's experiments is the large gap between random
// block fetches (row misses) and coalesced ones (row hits), which drives
// the motion-vector rescheduling results (Sec IV-C, Fig 16).
package dram

// Config describes the memory system.
type Config struct {
	Banks      int     // number of banks
	RowBytes   int     // row buffer size per bank
	BurstBytes int     // bytes delivered per burst
	ClockGHz   float64 // DRAM command clock
	TRCD       int     // activate-to-read, cycles
	TCL        int     // read latency, cycles
	TRP        int     // precharge, cycles
	TBurst     int     // data transfer cycles per burst
	EnergyPJPB float64 // access energy per byte (pJ)
	ActivatePJ float64 // extra energy per row activation (pJ)
}

// DefaultConfig is a DDR3-1600-class single-channel part.
func DefaultConfig() Config {
	return Config{
		Banks:      8,
		RowBytes:   2048,
		BurstBytes: 64,
		ClockGHz:   0.8,
		TRCD:       11,
		TCL:        11,
		TRP:        11,
		TBurst:     4,
		EnergyPJPB: 70,
		ActivatePJ: 900,
	}
}

// Kind labels traffic for the Fig 14 breakdown.
type Kind int

// Traffic categories.
const (
	KindRawFrame   Kind = iota // decoded raw frames read by the NPU
	KindWeights                // network parameters streamed to the NPU
	KindMV                     // motion-vector metadata
	KindSegRef                 // reference segmentation reads for reconstruction
	KindRecon                  // reconstructed B segmentation writes
	KindActivation             // NN activations (NN-S inputs/outputs)
	KindBitstream              // compressed bitstream read by the decoder
	numKinds
)

// KindNames are the display labels for the traffic categories.
var KindNames = [...]string{"raw-frames", "weights", "motion-vectors", "seg-refs", "recon-writes", "activations", "bitstream"}

// Stats aggregates the traffic the model served.
type Stats struct {
	BytesByKind [numKinds]int64
	Hits        int64
	Misses      int64
	EnergyPJ    float64
	BusyNS      float64
}

// TotalBytes sums traffic over all categories.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.BytesByKind {
		t += b
	}
	return t
}

// Model is a stateful DRAM timing/energy model.
type Model struct {
	Cfg     Config
	Stats   Stats
	openRow []int64 // per-bank open row id, -1 = closed
	freeAt  float64 // when the (single, in-order) channel next idles
}

// New constructs a model with all rows closed.
func New(cfg Config) *Model {
	rows := make([]int64, cfg.Banks)
	for i := range rows {
		rows[i] = -1
	}
	return &Model{Cfg: cfg, openRow: rows}
}

// cyclesToNS converts DRAM command cycles to nanoseconds.
func (m *Model) cyclesToNS(c int) float64 { return float64(c) / m.Cfg.ClockGHz }

// Access serves one read or write of n bytes starting at addr and returns
// its latency in nanoseconds. Bursts are issued sequentially; each burst's
// latency depends on whether it hits the currently open row in its bank.
func (m *Model) Access(addr int64, n int, kind Kind) float64 {
	if n <= 0 {
		return 0
	}
	m.Stats.BytesByKind[kind] += int64(n)
	hitNS := m.cyclesToNS(m.Cfg.TCL + m.Cfg.TBurst)
	var ns float64
	// Walk row by row: all bursts within one open row behave identically,
	// so long sequential streams are processed in O(rows) not O(bursts).
	for off := 0; off < n; {
		a := addr + int64(off)
		row := a / int64(m.Cfg.RowBytes)
		bank := int(row) % m.Cfg.Banks
		inRow := m.Cfg.RowBytes - int(a%int64(m.Cfg.RowBytes))
		if rem := n - off; rem < inRow {
			inRow = rem
		}
		bursts := (inRow + m.Cfg.BurstBytes - 1) / m.Cfg.BurstBytes
		if m.openRow[bank] == row {
			m.Stats.Hits += int64(bursts)
			ns += float64(bursts) * hitNS
		} else {
			m.Stats.Misses++
			m.Stats.Hits += int64(bursts - 1)
			penalty := m.Cfg.TRCD + m.Cfg.TCL + m.Cfg.TBurst
			if m.openRow[bank] >= 0 {
				penalty += m.Cfg.TRP // conflict: close the old row first
			}
			ns += m.cyclesToNS(penalty) + float64(bursts-1)*hitNS
			m.openRow[bank] = row
			m.Stats.EnergyPJ += m.Cfg.ActivatePJ
		}
		m.Stats.EnergyPJ += float64(inRow) * m.Cfg.EnergyPJPB
		off += inRow
	}
	m.Stats.BusyNS += ns
	return ns
}

// Stream serves a long sequential transfer (weights, raw frames): after the
// first burst opens the row, subsequent bursts in the same row are hits.
// It is Access with a sequential address pattern, provided for readability.
func (m *Model) Stream(addr int64, n int, kind Kind) float64 {
	return m.Access(addr, n, kind)
}

// Serve schedules a request on the shared single channel: it starts no
// earlier than the requester is ready and no earlier than the channel is
// free, takes the Access service time, and returns the completion time.
// This is how concurrent requesters (NPU, decoder, agent unit) contend for
// memory bandwidth.
func (m *Model) Serve(ready float64, addr int64, n int, kind Kind) float64 {
	service := m.Access(addr, n, kind)
	start := ready
	if m.freeAt > start {
		start = m.freeAt
	}
	m.freeAt = start + service
	return m.freeAt
}

// PeakBandwidthGBps returns the model's peak transfer rate, used by the NPU
// roofline.
func (c Config) PeakBandwidthGBps() float64 {
	return float64(c.BurstBytes) / (float64(c.TBurst) / c.ClockGHz)
}
