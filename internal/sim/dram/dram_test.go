package dram

import (
	"testing"
	"testing/quick"
)

func TestSequentialAccessMostlyHits(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 2048, KindWeights)
	// 2048 bytes = 32 bursts in one row: 1 miss (activate) + 31 hits.
	if m.Stats.Misses != 1 || m.Stats.Hits != 31 {
		t.Fatalf("hits=%d misses=%d, want 31/1", m.Stats.Hits, m.Stats.Misses)
	}
}

func TestRandomRowsMiss(t *testing.T) {
	m := New(DefaultConfig())
	// Touch a different row each time, same bank spacing.
	for i := 0; i < 10; i++ {
		m.Access(int64(i)*int64(m.Cfg.RowBytes)*int64(m.Cfg.Banks), 64, KindSegRef)
	}
	if m.Stats.Misses != 10 {
		t.Fatalf("misses=%d, want 10", m.Stats.Misses)
	}
}

func TestMissSlowerThanHit(t *testing.T) {
	m := New(DefaultConfig())
	missNS := m.Access(0, 64, KindSegRef)
	hitNS := m.Access(64, 64, KindSegRef)
	if missNS <= hitNS {
		t.Fatalf("row miss (%v ns) must be slower than hit (%v ns)", missNS, hitNS)
	}
}

func TestConflictSlowestOfAll(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 64, KindSegRef) // opens row 0 bank 0
	conflictAddr := int64(m.Cfg.RowBytes * m.Cfg.Banks)
	conflictNS := m.Access(conflictAddr, 64, KindSegRef) // same bank, new row
	m2 := New(DefaultConfig())
	freshMissNS := m2.Access(0, 64, KindSegRef)
	if conflictNS <= freshMissNS {
		t.Fatalf("conflict (%v) must exceed fresh miss (%v)", conflictNS, freshMissNS)
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 100, KindMV)
	m.Access(4096, 50, KindRecon)
	if m.Stats.BytesByKind[KindMV] != 100 || m.Stats.BytesByKind[KindRecon] != 50 {
		t.Fatalf("byte accounting wrong: %+v", m.Stats.BytesByKind)
	}
	if m.Stats.TotalBytes() != 150 {
		t.Fatalf("TotalBytes = %d", m.Stats.TotalBytes())
	}
}

func TestEnergyGrowsWithTraffic(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 64, KindWeights)
	e1 := m.Stats.EnergyPJ
	m.Access(1<<20, 4096, KindWeights)
	if m.Stats.EnergyPJ <= e1 {
		t.Fatal("energy must grow with traffic")
	}
}

func TestZeroAccessFree(t *testing.T) {
	m := New(DefaultConfig())
	if ns := m.Access(0, 0, KindMV); ns != 0 {
		t.Fatalf("zero-byte access took %v ns", ns)
	}
	if m.Stats.TotalBytes() != 0 {
		t.Fatal("zero-byte access counted traffic")
	}
}

func TestLatencyNonNegativeProperty(t *testing.T) {
	f := func(addr int64, n uint16) bool {
		m := New(DefaultConfig())
		if addr < 0 {
			addr = -addr
		}
		return m.Access(addr, int(n), KindSegRef) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakBandwidth(t *testing.T) {
	c := DefaultConfig()
	// 64 B per 4 cycles at 0.8 GHz = 12.8 GB/s.
	if bw := c.PeakBandwidthGBps(); bw < 12 || bw > 14 {
		t.Fatalf("peak bandwidth %v GB/s, want ~12.8", bw)
	}
}
