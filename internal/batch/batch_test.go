package batch

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// makeRefineInputs builds a deterministic refinement sandwich.
func makeRefineInputs(rng *rand.Rand, w, h int) (*video.Mask, *segment.ReconMask, *video.Mask) {
	prev, next := video.NewMask(w, h), video.NewMask(w, h)
	rec := segment.NewReconMask(w, h)
	for i := range prev.Pix {
		prev.Pix[i] = uint8(rng.Intn(2))
		next.Pix[i] = uint8(rng.Intn(2))
		rec.Pix[i] = uint8(rng.Intn(4))
	}
	return prev, rec, next
}

func newNet(t *testing.T) *nn.RefineNet {
	t.Helper()
	return nn.NewRefineNet(rand.New(rand.NewSource(4)), 4)
}

// TestFullFlushFused submits exactly MaxBatch refinements concurrently and
// checks every result is bit-identical to the serial refiner, that the
// flush was recorded as one full fused batch, and that occupancy telemetry
// saw MaxBatch items.
func TestFullFlushFused(t *testing.T) {
	const n = 4
	net := newNet(t)
	col := obs.New()
	e := New(Config{MaxBatch: n, MaxWait: time.Minute, NNS: net, Obs: col})
	defer e.Close()
	serial := segment.NewRefiner(net.Clone())
	rng := rand.New(rand.NewSource(8))
	type job struct {
		prev *video.Mask
		rec  *segment.ReconMask
		next *video.Mask
	}
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i].prev, jobs[i].rec, jobs[i].next = makeRefineInputs(rng, 16, 8)
	}
	got := make([]*video.Mask, n)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := e.Refine(context.Background(), jobs[i].prev, jobs[i].rec, jobs[i].next)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			got[i] = m
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		want := serial.Refine(j.prev, j.rec, j.next)
		for p := range want.Pix {
			if got[i].Pix[p] != want.Pix[p] {
				t.Fatalf("job %d pixel %d: batched %d != serial %d", i, p, got[i].Pix[p], want.Pix[p])
			}
		}
	}
	r := col.Snapshot()
	if c := r.Counters[obs.CounterBatchFlushFull.String()]; c != 1 {
		t.Fatalf("flush-full = %d, want 1 (counters: %v)", c, r.Counters)
	}
	if c := r.Counters[obs.CounterBatchItems.String()]; c != n {
		t.Fatalf("batch-items = %d, want %d", c, n)
	}
	h := r.Hist("batch-occupancy")
	if h == nil || h.Max != n {
		t.Fatalf("occupancy hist %+v, want max %d", h, n)
	}
}

// TestTimerFlushPartial submits fewer items than MaxBatch and relies on
// the MaxWait deadline to flush the partial batch.
func TestTimerFlushPartial(t *testing.T) {
	net := newNet(t)
	col := obs.New()
	e := New(Config{MaxBatch: 8, MaxWait: 5 * time.Millisecond, NNS: net, Obs: col})
	defer e.Close()
	rng := rand.New(rand.NewSource(1))
	prev, rec, next := makeRefineInputs(rng, 8, 8)
	m, err := e.Refine(context.Background(), prev, rec, next)
	if err != nil || m == nil {
		t.Fatalf("refine: %v (mask %v)", err, m)
	}
	r := col.Snapshot()
	if c := r.Counters[obs.CounterBatchFlushTimer.String()]; c != 1 {
		t.Fatalf("flush-timer = %d, want 1 (counters: %v)", c, r.Counters)
	}
}

// TestCloseDrainsAndRejects checks that Close executes queued work (reason
// "drain") and that later submissions fail with ErrClosed.
func TestCloseDrainsAndRejects(t *testing.T) {
	net := newNet(t)
	col := obs.New()
	e := New(Config{MaxBatch: 8, MaxWait: time.Minute, NNS: net, Obs: col})
	rng := rand.New(rand.NewSource(2))
	prev, rec, next := makeRefineInputs(rng, 8, 8)
	var (
		m   *video.Mask
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, err = e.Refine(context.Background(), prev, rec, next)
	}()
	// Wait until the item is actually queued before closing.
	for {
		e.mu.Lock()
		queued := len(e.queues[kindNNS].items) == 1
		e.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	e.Close()
	wg.Wait()
	if err != nil || m == nil {
		t.Fatalf("drained refine: %v (mask %v)", err, m)
	}
	if c := col.Snapshot().Counters[obs.CounterBatchFlushDrain.String()]; c != 1 {
		t.Fatalf("flush-drain = %d, want 1", c)
	}
	if _, err := e.Refine(context.Background(), prev, rec, next); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close refine error = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestStallFlush checks the producer-stall path: when the Stalled
// callback reports every producer is blocked, a partial batch flushes
// immediately (reason "stall") instead of waiting out MaxWait.
func TestStallFlush(t *testing.T) {
	net := newNet(t)
	col := obs.New()
	e := New(Config{
		MaxBatch: 8,
		MaxWait:  time.Hour, // the test fails by timeout if stall doesn't flush
		NNS:      net,
		Obs:      col,
		Stalled:  func(pending int) bool { return pending >= 2 },
	})
	defer e.Close()
	serial := segment.NewRefiner(net.Clone())
	rng := rand.New(rand.NewSource(7))
	type job struct {
		prev *video.Mask
		rec  *segment.ReconMask
		next *video.Mask
	}
	jobs := make([]job, 2)
	for i := range jobs {
		jobs[i].prev, jobs[i].rec, jobs[i].next = makeRefineInputs(rng, 8, 8)
	}
	got := make([]*video.Mask, 2)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := e.Refine(context.Background(), jobs[i].prev, jobs[i].rec, jobs[i].next)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			got[i] = m
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		want := serial.Refine(j.prev, j.rec, j.next)
		for p := range want.Pix {
			if got[i].Pix[p] != want.Pix[p] {
				t.Fatalf("job %d pixel %d: stall-flushed mask differs from serial", i, p)
			}
		}
	}
	if c := col.Snapshot().Counters[obs.CounterBatchFlushStall.String()]; c == 0 {
		t.Fatal("no stall flush recorded")
	}
}

// TestCancelRetractsQueuedItem checks a cancelled submitter leaves the
// queue (and does not occupy a lane of a later batch).
func TestCancelRetractsQueuedItem(t *testing.T) {
	net := newNet(t)
	e := New(Config{MaxBatch: 8, MaxWait: time.Hour, NNS: net})
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	prev, rec, next := makeRefineInputs(rng, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Refine(ctx, prev, rec, next); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled refine error = %v, want context.Canceled", err)
	}
	e.mu.Lock()
	left := len(e.queues[kindNNS].items)
	e.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d items left queued after retraction", left)
	}
}

// stripeSegmenter is a deterministic model-free segmenter: pixel p is
// foreground when (p+display) is even.
type stripeSegmenter struct{}

func (stripeSegmenter) Name() string { return "stripe" }
func (stripeSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	m := video.NewMask(f.W, f.H)
	for p := range m.Pix {
		m.Pix[p] = uint8((p + display) & 1)
	}
	return m
}

// panicSegmenter panics on one display and segments the rest.
type panicSegmenter struct {
	inner  segment.Segmenter
	poison int
}

func (p *panicSegmenter) Name() string { return "panic" }
func (p *panicSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	if display == p.poison {
		panic("poisoned frame")
	}
	return p.inner.Segment(f, display)
}

// TestPanicFailsAlone pins the fault-isolation contract: a model panic on
// one batch lane errors that item only; its batch-mates' masks are
// untouched and identical to serial execution.
func TestPanicFailsAlone(t *testing.T) {
	inner := stripeSegmenter{}
	seg := &panicSegmenter{inner: inner, poison: 1}
	e := New(Config{MaxBatch: 3, MaxWait: time.Minute})
	defer e.Close()
	frame := video.NewFrame(16, 8)
	results := make([]*video.Mask, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Segment(context.Background(), seg, frame, i)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if i == 1 {
			if errs[i] == nil {
				t.Fatalf("poisoned item %d returned no error", i)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("batch-mate %d failed: %v", i, errs[i])
		}
		want := inner.Segment(frame, i)
		for p := range want.Pix {
			if results[i].Pix[p] != want.Pix[p] {
				t.Fatalf("batch-mate %d pixel %d differs from serial", i, p)
			}
		}
	}
}

// TestMixedGeometryGroups submits refinements of two different resolutions
// into one flush and checks both groups come back correct.
func TestMixedGeometryGroups(t *testing.T) {
	net := newNet(t)
	e := New(Config{MaxBatch: 4, MaxWait: time.Minute, NNS: net})
	defer e.Close()
	serial := segment.NewRefiner(net.Clone())
	rng := rand.New(rand.NewSource(5))
	geoms := [][2]int{{16, 8}, {8, 8}, {16, 8}, {8, 8}}
	type res struct {
		m    *video.Mask
		want *video.Mask
		err  error
	}
	results := make([]res, len(geoms))
	var wg sync.WaitGroup
	var mu sync.Mutex // serial refiner is single-threaded; precompute under lock
	for i, g := range geoms {
		prev, rec, next := makeRefineInputs(rng, g[0], g[1])
		mu.Lock()
		results[i].want = serial.Refine(prev, rec, next)
		mu.Unlock()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].m, results[i].err = e.Refine(context.Background(), prev, rec, next)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("job %d: %v", i, r.err)
		}
		for p := range r.want.Pix {
			if r.m.Pix[p] != r.want.Pix[p] {
				t.Fatalf("job %d pixel %d differs across geometry grouping", i, p)
			}
		}
	}
}

// TestBatchSegmenterGrouping checks that consecutive items sharing one
// BatchSegmenter go through its fused call and still match serial output.
func TestBatchSegmenterGrouping(t *testing.T) {
	seg := &segment.ThresholdSegmenter{CloseRadius: 1}
	e := New(Config{MaxBatch: 3, MaxWait: time.Minute})
	defer e.Close()
	rng := rand.New(rand.NewSource(6))
	frames := make([]*video.Frame, 3)
	for i := range frames {
		frames[i] = video.NewFrame(16, 12)
		for p := range frames[i].Pix {
			frames[i].Pix[p] = uint8(rng.Intn(256))
		}
	}
	results := make([]*video.Mask, 3)
	var wg sync.WaitGroup
	for i := range frames {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := e.Segment(context.Background(), seg, frames[i], i)
			if err != nil {
				t.Errorf("segment %d: %v", i, err)
				return
			}
			results[i] = m
		}(i)
	}
	wg.Wait()
	for i, f := range frames {
		want := seg.Segment(f, i)
		for p := range want.Pix {
			if results[i].Pix[p] != want.Pix[p] {
				t.Fatalf("frame %d pixel %d differs from serial", i, p)
			}
		}
	}
}
