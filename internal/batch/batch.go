// Package batch implements the cross-session dynamic batching engine: it
// coalesces NN work submitted by many concurrent stream sessions into
// fused batched kernel executions, amortizing per-invocation scheduling
// and memory traffic the way the paper's agent unit amortizes kernel
// switches on the accelerator.
//
// Work is split by kind — NN-L anchor segmentation versus NN-S B-frame
// refinement — into two independent queues, because fusing across kinds is
// exactly the kernel switching the agent unit exists to avoid. A queue
// flushes as ONE batched execution when MaxBatch items are waiting or when
// the oldest item has waited MaxWait, whichever comes first; a timer flush
// keeps tail latency bounded when concurrency is low, a full flush keeps
// throughput high when it is not.
//
// Correctness contract: the mask returned for an item is bit-identical to
// executing that item alone on the session's own models (the batched
// kernels guarantee this; see internal/nn/batch.go), and a failing item —
// panic inside a model, cancelled context — fails alone, never its
// batch-mates.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// ErrClosed is returned for work submitted after Close.
var ErrClosed = errors.New("batch: engine closed")

// Config sizes a batching engine.
type Config struct {
	// MaxBatch is the flush threshold: a queue reaching this many pending
	// items is executed immediately as one fused batch. Values <= 1 flush
	// every item on its own (batching effectively disabled).
	MaxBatch int

	// MaxWait bounds how long the oldest queued item waits for batch-mates
	// before a partial batch is flushed. Zero or negative defaults to 2ms —
	// small next to a frame budget, large next to a fused NN-S forward.
	MaxWait time.Duration

	// NNS, when non-nil, provides the refinement network. The engine clones
	// it once, so fused refinement uses weights identical to every
	// session's own clone — the bit-identity contract depends on this.
	NNS *nn.RefineNet

	// QuantNNS, when non-nil, routes fused NN-S refinement through the int8
	// execution tier instead of the float NNS (which is then ignored for
	// refinement). The engine clones it once, like NNS; fused int8 output is
	// bit-identical to the per-item int8 forward (the integer datapath has
	// no fusion rounding), so the engine's correctness contract holds on
	// this tier too.
	QuantNNS *nn.QuantRefineNet

	// Obs, when non-nil, receives batch telemetry: occupancy and queue-depth
	// histograms, flush-reason counters, and per-item queue-wait spans.
	Obs *obs.Collector

	// Stalled, when non-nil, is consulted after each enqueue that did not
	// fill a batch, with the total number of items pending across both
	// kinds. Returning true means the caller knows no further work can
	// arrive right now — every producer is already blocked in the engine —
	// and both queues flush immediately instead of idling out MaxWait.
	// Called without engine locks held; it may take the caller's own locks.
	Stalled func(pending int) bool
}

// DefaultMaxWait is the partial-batch flush deadline used when Config
// leaves MaxWait unset.
const DefaultMaxWait = 2 * time.Millisecond

// kind indexes the two work queues.
type kind int

const (
	kindNNL kind = iota // anchor segmentation (NN-L)
	kindNNS             // B-frame refinement (NN-S)
	numKinds
)

// item is one queued unit of NN work and its result slot.
type item struct {
	// NN-L fields.
	seg     segment.Segmenter
	frame   *video.Frame
	display int

	// NN-S fields.
	prev, next *video.Mask
	rec        *segment.ReconMask

	enq  time.Duration // queue-entry timestamp (collector clock)
	mask *video.Mask
	err  error
	done chan struct{}
}

// queue is one kind's pending work. gen increments every time the pending
// slice is taken, invalidating any armed timer flush; execMu serializes
// fused executions of the same kind (the batched kernels reuse per-network
// scratch and are not reentrant).
type queue struct {
	items []*item
	gen   uint64
	timer *time.Timer

	execMu sync.Mutex
}

// Engine is the cross-session dynamic batcher. One engine is shared by all
// sessions of a server; its methods are safe for concurrent use.
type Engine struct {
	cfg     Config
	refiner *segment.BatchRefiner

	// width is the effective flush threshold, runtime-adjustable through
	// SetMaxBatch within [1, cfg.MaxBatch]. It starts at the configured
	// ceiling, so engines whose owner never adjusts it behave exactly as
	// before the knob existed.
	width atomic.Int32

	mu      sync.Mutex
	queues  [numKinds]queue
	pending int
	closed  bool
}

// New creates a batching engine. Cloning the refinement network happens
// here, once, so every fused flush reuses the same pooled scratch.
func New(cfg Config) *Engine {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	e := &Engine{cfg: cfg}
	e.width.Store(int32(cfg.MaxBatch))
	switch {
	case cfg.QuantNNS != nil:
		e.refiner = segment.NewQuantBatchRefiner(cfg.QuantNNS.Clone())
	case cfg.NNS != nil:
		e.refiner = segment.NewBatchRefiner(cfg.NNS.Clone())
	}
	return e
}

// SetMaxBatch adjusts the effective flush threshold at runtime, clamped to
// [1, Config.MaxBatch] — the configured value sized the caller's worker
// pool and stays the ceiling. The QoS control loop widens the threshold as
// load rises (amortize more work per fused kernel) and tightens it back to
// 1 as load falls (flush immediately, minimum queue wait). Any width is
// correct; the knob trades latency against throughput, never results.
func (e *Engine) SetMaxBatch(n int) {
	if n < 1 {
		n = 1
	}
	if n > e.cfg.MaxBatch {
		n = e.cfg.MaxBatch
	}
	e.width.Store(int32(n))
}

// MaxBatch reports the current effective flush threshold.
func (e *Engine) MaxBatch() int { return int(e.width.Load()) }

// Occupancy reports the engine's fill fraction — items queued across both
// kinds over the effective batch width, clamped to [0, 1]. One of the QoS
// controller's load inputs.
func (e *Engine) Occupancy() float64 {
	e.mu.Lock()
	p := e.pending
	e.mu.Unlock()
	w := int(e.width.Load())
	if w < 1 {
		w = 1
	}
	occ := float64(p) / float64(w)
	if occ > 1 {
		occ = 1
	}
	return occ
}

// Segment submits one anchor frame for NN-L segmentation and blocks until
// its batch executes (or ctx is cancelled while the item is still queued).
func (e *Engine) Segment(ctx context.Context, seg segment.Segmenter, frame *video.Frame, display int) (*video.Mask, error) {
	return e.submit(ctx, kindNNL, &item{seg: seg, frame: frame, display: display})
}

// Refine submits one B-frame refinement sandwich for NN-S and blocks until
// its batch executes (or ctx is cancelled while the item is still queued).
// It requires the engine to have been built with a refinement network.
func (e *Engine) Refine(ctx context.Context, prev *video.Mask, rec *segment.ReconMask, next *video.Mask) (*video.Mask, error) {
	if e.refiner == nil {
		return nil, errors.New("batch: engine has no refinement network")
	}
	return e.submit(ctx, kindNNS, &item{prev: prev, rec: rec, next: next})
}

// submit enqueues the item, flushes inline when the queue fills, arms the
// partial-batch timer on the first item, then waits for the result.
func (e *Engine) submit(ctx context.Context, k kind, it *item) (*video.Mask, error) {
	it.done = make(chan struct{})
	o := e.cfg.Obs
	it.enq = o.Clock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	q := &e.queues[k]
	q.items = append(q.items, it)
	e.pending++
	o.GaugeSet(obs.GaugeBatchQueue, int64(e.pending))
	o.Observe(obs.HistBatchQueueDepth, int64(len(q.items)))
	var flush []*item
	pending := e.pending
	if len(q.items) >= int(e.width.Load()) {
		flush = e.takeLocked(k)
	} else if len(q.items) == 1 {
		gen := q.gen
		q.timer = time.AfterFunc(e.cfg.MaxWait, func() { e.timerFlush(k, gen) })
	}
	e.mu.Unlock()

	if flush != nil {
		// The submitter that fills a batch executes it inline: no handoff
		// goroutine, and exactly one worker is charged for the fused run.
		e.execute(k, flush, obs.CounterBatchFlushFull)
	} else if e.cfg.Stalled != nil && e.cfg.Stalled(pending) {
		// Every producer is blocked in the engine: waiting out MaxWait would
		// only idle the machine. Flush everything now — this is the software
		// analogue of the agent unit dispatching as soon as its coalescing
		// window can no longer grow.
		e.flushAll(obs.CounterBatchFlushStall)
	}

	select {
	case <-it.done:
		return it.mask, it.err
	case <-ctx.Done():
		if e.retract(k, it) {
			return nil, ctx.Err()
		}
		// Already claimed by a flush — the result is imminent; deliver it
		// rather than abandoning work that was performed.
		<-it.done
		return it.mask, it.err
	}
}

// takeLocked removes and returns kind k's pending items, invalidating any
// armed timer. Caller holds e.mu.
func (e *Engine) takeLocked(k kind) []*item {
	q := &e.queues[k]
	items := q.items
	q.items = nil
	q.gen++
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	e.pending -= len(items)
	e.cfg.Obs.GaugeSet(obs.GaugeBatchQueue, int64(e.pending))
	return items
}

// flushAll takes and executes both kinds' queues. Racing flushes are
// benign: whatever another flush already took is simply absent here, and
// empty takes execute nothing.
func (e *Engine) flushAll(reason obs.Counter) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	var drains [numKinds][]*item
	for k := kind(0); k < numKinds; k++ {
		drains[k] = e.takeLocked(k)
	}
	e.mu.Unlock()
	for k := kind(0); k < numKinds; k++ {
		if len(drains[k]) > 0 {
			e.execute(k, drains[k], reason)
		}
	}
}

// timerFlush executes a partial batch when the oldest item's wait expires.
// gen guards against the race where the batch filled (or closed) between
// the timer firing and the lock being acquired.
func (e *Engine) timerFlush(k kind, gen uint64) {
	e.mu.Lock()
	q := &e.queues[k]
	if e.closed || q.gen != gen || len(q.items) == 0 {
		e.mu.Unlock()
		return
	}
	items := e.takeLocked(k)
	e.mu.Unlock()
	e.execute(k, items, obs.CounterBatchFlushTimer)
}

// retract removes a still-queued item after its submitter's context was
// cancelled, so a cancelled session never occupies a lane of a later batch.
func (e *Engine) retract(k kind, it *item) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := &e.queues[k]
	for i, x := range q.items {
		if x == it {
			q.items = append(q.items[:i], q.items[i+1:]...)
			e.pending--
			e.cfg.Obs.GaugeSet(obs.GaugeBatchQueue, int64(e.pending))
			return true
		}
	}
	return false
}

// Close flushes both queues (reason "drain") and rejects all later
// submissions with ErrClosed. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	var drains [numKinds][]*item
	for k := kind(0); k < numKinds; k++ {
		drains[k] = e.takeLocked(k)
	}
	e.mu.Unlock()
	for k := kind(0); k < numKinds; k++ {
		if len(drains[k]) > 0 {
			e.execute(k, drains[k], obs.CounterBatchFlushDrain)
		}
	}
}

// execute runs one fused batch: telemetry, then the kind's batched kernel,
// then per-item completion. Per-kind execMu serializes same-kind flushes
// because the fused kernels reuse network-owned scratch.
func (e *Engine) execute(k kind, items []*item, reason obs.Counter) {
	q := &e.queues[k]
	q.execMu.Lock()
	defer q.execMu.Unlock()
	o := e.cfg.Obs
	o.Observe(obs.HistBatchOccupancy, int64(len(items)))
	o.Count(reason, 1)
	o.Count(obs.CounterBatchItems, int64(len(items)))
	for _, it := range items {
		o.ObserveDur(obs.StageBatchWait, it.display, obs.KindNone, it.enq, o.Clock()-it.enq)
	}
	t := o.Clock()
	if k == kindNNL {
		e.execNNL(items)
		o.Span(obs.StageBatchNNL, -1, obs.KindNone, t)
	} else {
		e.execNNS(items)
		o.Span(obs.StageBatchNNS, -1, obs.KindNone, t)
	}
	for _, it := range items {
		close(it.done)
	}
}

// execNNL segments the batch's anchor frames. Runs of consecutive items
// sharing one BatchSegmenter instance go through its fused call; everything
// else runs per item. Either way a model panic is confined to the items it
// was actually computing.
func (e *Engine) execNNL(items []*item) {
	for i := 0; i < len(items); {
		bs, ok := items[i].seg.(segment.BatchSegmenter)
		if !ok {
			segmentOne(items[i])
			i++
			continue
		}
		j := i + 1
		for j < len(items) && items[j].seg == items[i].seg {
			j++
		}
		group := items[i:j]
		if !segmentGroup(bs, group) {
			for _, it := range group {
				segmentOne(it)
			}
		}
		i = j
	}
}

// segmentGroup runs one fused SegmentBatch call, reporting false (leaving
// the group unresolved) if the model panicked.
func segmentGroup(bs segment.BatchSegmenter, group []*item) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	frames := make([]*video.Frame, len(group))
	displays := make([]int, len(group))
	for i, it := range group {
		frames[i], displays[i] = it.frame, it.display
	}
	masks := bs.SegmentBatch(frames, displays)
	for i, it := range group {
		it.mask = masks[i]
	}
	return true
}

// segmentOne runs a single item's NN-L with per-item panic isolation.
func segmentOne(it *item) {
	defer func() {
		if r := recover(); r != nil {
			it.err = fmt.Errorf("batch: nn-l panic: %v", r)
		}
	}()
	it.mask = it.seg.Segment(it.frame, it.display)
}

// execNNS refines the batch's B-frames: items are grouped by frame
// geometry (streams of different resolutions cannot share a fused forward)
// and each group runs as one fused RefineBatch. A panic inside a fused run
// degrades that group to per-item execution so only the poisoned item
// fails.
func (e *Engine) execNNS(items []*item) {
	for i := 0; i < len(items); {
		w, h := items[i].rec.W, items[i].rec.H
		j := i + 1
		for j < len(items) && items[j].rec.W == w && items[j].rec.H == h {
			j++
		}
		group := items[i:j]
		if !e.refineGroup(group) {
			for _, it := range group {
				e.refineOne(it)
			}
		}
		i = j
	}
}

// refineGroup runs one fused RefineBatch call, reporting false if the
// model panicked.
func (e *Engine) refineGroup(group []*item) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	jobs := make([]segment.RefineJob, len(group))
	for i, it := range group {
		jobs[i] = segment.RefineJob{Prev: it.prev, Rec: it.rec, Next: it.next}
	}
	masks := e.refiner.RefineBatch(jobs)
	for i, it := range group {
		it.mask = masks[i]
	}
	return true
}

// refineOne runs a single item's NN-S (a batch of one) with per-item panic
// isolation.
func (e *Engine) refineOne(it *item) {
	defer func() {
		if r := recover(); r != nil {
			it.err = fmt.Errorf("batch: nn-s panic: %v", r)
		}
	}()
	masks := e.refiner.RefineBatch([]segment.RefineJob{{Prev: it.prev, Rec: it.rec, Next: it.next}})
	it.mask = masks[0]
}
