package experiments

import (
	"fmt"

	"vrdann/internal/baseline"
	"vrdann/internal/core"
	"vrdann/internal/detect"
	"vrdann/internal/segment"
	"vrdann/internal/sim"
	"vrdann/internal/video"
)

// BStat is one sequence's B-frame statistics (Fig 3a).
type BStat struct {
	Name   string
	BRatio float64
}

// Fig3a reports the B-frame ratio across the suite under the default
// (auto) encoder settings. The paper finds ~65% on average.
func (h *Harness) Fig3a() ([]BStat, float64, error) {
	var out []BStat
	var sum float64
	for _, v := range h.Suite() {
		dec, err := h.SideDecodeFor(v, h.Cfg.Enc)
		if err != nil {
			return nil, 0, err
		}
		r := dec.BRatio()
		out = append(out, BStat{Name: v.Name, BRatio: r})
		sum += r
	}
	return out, sum / float64(len(out)), nil
}

// Fig3b reports the distribution of the number of distinct reference
// frames needed to reconstruct one B-frame (the paper observes up to 7).
func (h *Harness) Fig3b() (map[int]int, int, error) {
	hist := map[int]int{}
	maxRefs := 0
	for _, v := range h.Suite() {
		dec, err := h.SideDecodeFor(v, h.Cfg.Enc)
		if err != nil {
			return nil, 0, err
		}
		for _, c := range dec.RefFrameCounts() {
			hist[c]++
			if c > maxRefs {
				maxRefs = c
			}
		}
	}
	return hist, maxRefs, nil
}

// Fig9Row compares FAVOS and VR-DANN per sequence.
type Fig9Row struct {
	Name                       string
	FavosF, FavosJ, VrdF, VrdJ float64
}

// Fig9 reports per-video segmentation accuracy of FAVOS vs VR-DANN.
func (h *Harness) Fig9() ([]Fig9Row, error) {
	suite := h.Suite()
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	out := make([]Fig9Row, len(suite))
	err = h.forEach(len(suite), func(i int) error {
		v := suite[i]
		fav, err := h.RunFAVOS(v)
		if err != nil {
			return err
		}
		vrd, err := h.RunVRDANNNet(v, h.Cfg.Enc, nns.Clone())
		if err != nil {
			return err
		}
		ff, fj := ScoreMasks(fav.Masks, v)
		vf, vj := ScoreMasks(vrd.Masks, v)
		out[i] = Fig9Row{Name: v.Name, FavosF: ff, FavosJ: fj, VrdF: vf, VrdJ: vj}
		return nil
	})
	return out, err
}

// Fig10Row is one scheme's suite-average segmentation accuracy.
type Fig10Row struct {
	Scheme string
	F, J   float64
}

// Fig10 reports the averaged F-Score and IoU of OSVOS, DFF, FAVOS and
// VR-DANN over the suite (paper ordering: FAVOS ≥ VR-DANN > DFF > OSVOS).
func (h *Harness) Fig10() ([]Fig10Row, error) {
	type runner struct {
		name string
		run  func(*video.Video) ([]*video.Mask, error)
	}
	runners := []runner{
		{"OSVOS", func(v *video.Video) ([]*video.Mask, error) {
			r, err := h.RunOSVOS(v)
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
		{"DFF", func(v *video.Video) ([]*video.Mask, error) {
			r, err := h.RunDFF(v)
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
		{"FAVOS", func(v *video.Video) ([]*video.Mask, error) {
			r, err := h.RunFAVOS(v)
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
		{"VR-DANN", func(v *video.Video) ([]*video.Mask, error) {
			nns, err := h.NNS()
			if err != nil {
				return nil, err
			}
			r, err := h.RunVRDANNNet(v, h.Cfg.Enc, nns.Clone())
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
	}
	suite := h.Suite()
	if _, err := h.NNS(); err != nil { // train once before fanning out
		return nil, err
	}
	var out []Fig10Row
	for _, r := range runners {
		fs := make([]float64, len(suite))
		js := make([]float64, len(suite))
		err := h.forEach(len(suite), func(i int) error {
			v := suite[i]
			masks, err := r.run(v)
			if err != nil {
				return fmt.Errorf("experiments: %s on %q: %w", r.name, v.Name, err)
			}
			fs[i], js[i] = ScoreMasks(masks, v)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var fsum, jsum float64
		for i := range fs {
			fsum += fs[i]
			jsum += js[i]
		}
		out = append(out, Fig10Row{Scheme: r.name, F: fsum / float64(len(suite)), J: jsum / float64(len(suite))})
	}
	return out, nil
}

// Fig11Row is one detection scheme's mAP overall and by speed class.
type Fig11Row struct {
	Scheme                   string
	Overall, Slow, Med, Fast float64
}

// detThresholds are the IoU thresholds mAP averages over (0.50:0.05:0.80),
// giving headroom for the block-granular propagation error the paper's
// 1.1%-on-fast-videos result reflects.
var detThresholds = []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8}

func mapOver(preds [][]detect.Detection, gts [][]video.Rect) float64 {
	var s float64
	for _, t := range detThresholds {
		s += detect.AP(preds, gts, t)
	}
	return s / float64(len(detThresholds))
}

// Fig11 reports detection mAP for SELSA, Euphrates-2, Euphrates-4 and
// VR-DANN across the speed-classed suite.
func (h *Harness) Fig11() ([]Fig11Row, error) {
	suite := h.DetectionSuite()
	type accum struct {
		sum [4]float64
		n   [4]int
	} // overall, slow, med, fast
	schemes := []string{"SELSA", "Euphrates-2", "Euphrates-4", "VR-DANN"}
	acc := map[string]*accum{}
	for _, s := range schemes {
		acc[s] = &accum{}
	}
	for vi, v := range suite {
		cls := video.ClassOf(video.DetectionProfiles[vi].Speed)
		st, err := h.StreamFor(v, h.Cfg.Enc)
		if err != nil {
			return nil, err
		}
		det := &baseline.OracleBoxDetector{Label: "det", GT: v.Boxes, Jitter: h.Cfg.DetJitter, Seed: h.Cfg.Seed + int64(hashName(v.Name))}
		gts := detect.GTBoxes(v)

		selsa, err := baseline.RunSELSA(st.Data, det)
		if err != nil {
			return nil, err
		}
		e2, err := baseline.RunEuphrates(st.Data, det, baseline.EuphratesConfig{KeyInterval: 2, FlowBlock: 8, FlowRange: 8})
		if err != nil {
			return nil, err
		}
		e4, err := baseline.RunEuphrates(st.Data, det, baseline.EuphratesConfig{KeyInterval: 4, FlowBlock: 8, FlowRange: 8})
		if err != nil {
			return nil, err
		}
		p := &core.Pipeline{Workers: h.Cfg.PipelineWorkers}
		vrd, err := p.RunDetection(st.Data, det)
		if err != nil {
			return nil, err
		}
		for s, preds := range map[string][][]detect.Detection{
			"SELSA": selsa.Detections, "Euphrates-2": e2.Detections,
			"Euphrates-4": e4.Detections, "VR-DANN": vrd.Detections,
		} {
			m := mapOver(preds, gts)
			a := acc[s]
			a.sum[0] += m
			a.n[0]++
			a.sum[1+int(cls)] += m
			a.n[1+int(cls)]++
		}
	}
	var out []Fig11Row
	for _, s := range schemes {
		a := acc[s]
		row := Fig11Row{Scheme: s}
		vals := []*float64{&row.Overall, &row.Slow, &row.Med, &row.Fast}
		for i, p := range vals {
			if a.n[i] > 0 {
				*p = a.sum[i] / float64(a.n[i])
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig15Row is one B-ratio setting's accuracy and performance.
type Fig15Row struct {
	Label      string
	BRatio     float64
	F, J       float64
	CyclesNorm float64 // VR-DANN-parallel cycles normalized to auto setting
}

// Fig15 sweeps the forced B-frame ratio (paper: 37%, 50%, auto≈65%).
func (h *Harness) Fig15() ([]Fig15Row, error) {
	settings := []struct {
		label string
		ratio float64
	}{
		{"37% B ratio", 0.37},
		{"50% B ratio", 0.50},
		{"auto B ratio", 0},
		{"75% B ratio", 0.75},
	}
	var out []Fig15Row
	var autoNS float64
	for _, set := range settings {
		enc := h.Cfg.Enc
		enc.TargetBRatio = set.ratio
		if set.ratio > 0.7 {
			enc.MaxBRun = 4
		}
		suite := h.Suite()
		nns, err := h.NNS()
		if err != nil {
			return nil, err
		}
		fsArr := make([]float64, len(suite))
		jsArr := make([]float64, len(suite))
		nsArr := make([]float64, len(suite))
		brArr := make([]float64, len(suite))
		err = h.forEach(len(suite), func(i int) error {
			v := suite[i]
			res, err := h.RunVRDANNNet(v, enc, nns.Clone())
			if err != nil {
				return err
			}
			fsArr[i], jsArr[i] = ScoreMasks(res.Masks, v)
			brArr[i] = res.Decode.BRatio()
			w := sim.FromDecode(v.Name, res.Decode, h.Cfg.Sim.Agent, h.Cfg.SimW, h.Cfg.SimH)
			nsArr[i] = sim.New(h.Cfg.Sim).Run(sim.SchemeVRDANNParallel, w).TotalNS
			return nil
		})
		if err != nil {
			return nil, err
		}
		var fs, js, ns, br float64
		for i := range suite {
			fs += fsArr[i]
			js += jsArr[i]
			ns += nsArr[i]
			br += brArr[i]
		}
		n := float64(len(suite))
		row := Fig15Row{Label: set.label, BRatio: br / n, F: fs / n, J: js / n, CyclesNorm: ns}
		out = append(out, row)
		if set.ratio == 0 {
			autoNS = ns
		}
	}
	for i := range out {
		out[i].CyclesNorm /= autoNS
	}
	return out, nil
}

// Fig16Row is one search-interval setting's accuracy and performance.
type Fig16Row struct {
	N          int // 0 = auto
	F, J       float64
	CyclesNorm float64
}

// Fig16 sweeps the motion-vector search interval n (paper: 1..9 and auto).
func (h *Harness) Fig16() ([]Fig16Row, error) {
	var out []Fig16Row
	var autoNS float64
	for _, n := range []int{1, 3, 5, 7, 9, 0} {
		enc := h.Cfg.Enc
		enc.SearchInterval = n
		suite := h.Suite()
		nns, err := h.NNS()
		if err != nil {
			return nil, err
		}
		fsArr := make([]float64, len(suite))
		jsArr := make([]float64, len(suite))
		nsArr := make([]float64, len(suite))
		err = h.forEach(len(suite), func(i int) error {
			v := suite[i]
			res, err := h.RunVRDANNNet(v, enc, nns.Clone())
			if err != nil {
				return err
			}
			fsArr[i], jsArr[i] = ScoreMasks(res.Masks, v)
			w := sim.FromDecode(v.Name, res.Decode, h.Cfg.Sim.Agent, h.Cfg.SimW, h.Cfg.SimH)
			nsArr[i] = sim.New(h.Cfg.Sim).Run(sim.SchemeVRDANNParallel, w).TotalNS
			return nil
		})
		if err != nil {
			return nil, err
		}
		var fs, js, ns float64
		for i := range suite {
			fs += fsArr[i]
			js += jsArr[i]
			ns += nsArr[i]
		}
		cnt := float64(len(suite))
		out = append(out, Fig16Row{N: n, F: fs / cnt, J: js / cnt, CyclesNorm: ns})
		if n == 0 {
			autoNS = ns
		}
	}
	for i := range out {
		out[i].CyclesNorm /= autoNS
	}
	return out, nil
}

// Fig17Row is one encoding standard's accuracy.
type Fig17Row struct {
	Standard string
	F, J     float64
}

// Fig17 compares encoding standards: H.264-like 16×16 macro-blocks vs
// H.265-like 8×8 (the paper finds H.265 friendlier to the scheme).
func (h *Harness) Fig17() ([]Fig17Row, error) {
	var out []Fig17Row
	for _, set := range []struct {
		name string
		bs   int
	}{{"H.264-like (16x16)", 16}, {"H.265-like (8x8)", 8}} {
		enc := h.Cfg.Enc
		enc.BlockSize = set.bs
		suite := h.Suite()
		nns, err := h.NNS()
		if err != nil {
			return nil, err
		}
		fsArr := make([]float64, len(suite))
		jsArr := make([]float64, len(suite))
		err = h.forEach(len(suite), func(i int) error {
			res, err := h.RunVRDANNNet(suite[i], enc, nns.Clone())
			if err != nil {
				return err
			}
			fsArr[i], jsArr[i] = ScoreMasks(res.Masks, suite[i])
			return nil
		})
		if err != nil {
			return nil, err
		}
		var fs, js float64
		for i := range suite {
			fs += fsArr[i]
			js += jsArr[i]
		}
		n := float64(len(suite))
		out = append(out, Fig17Row{Standard: set.name, F: fs / n, J: js / n})
	}
	return out, nil
}

// StabilityRow is one scheme's suite-average temporal instability (lower
// is better: masks flicker less relative to how much the true object
// actually changes frame to frame).
type StabilityRow struct {
	Scheme      string
	Instability float64
}

// Stability compares the temporal coherence of the four segmentation
// schemes. Not a paper figure, but it quantifies a qualitative claim of
// the motion-vector approach: B-frame masks inherit the references'
// coherence instead of flickering with independent per-frame errors.
func (h *Harness) Stability() ([]StabilityRow, error) {
	type runner struct {
		name string
		run  func(*video.Video) ([]*video.Mask, error)
	}
	runners := []runner{
		{"OSVOS", func(v *video.Video) ([]*video.Mask, error) {
			r, err := h.RunOSVOS(v)
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
		{"DFF", func(v *video.Video) ([]*video.Mask, error) {
			r, err := h.RunDFF(v)
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
		{"FAVOS", func(v *video.Video) ([]*video.Mask, error) {
			r, err := h.RunFAVOS(v)
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
		{"VR-DANN", func(v *video.Video) ([]*video.Mask, error) {
			nns, err := h.NNS()
			if err != nil {
				return nil, err
			}
			r, err := h.RunVRDANNNet(v, h.Cfg.Enc, nns.Clone())
			if err != nil {
				return nil, err
			}
			return r.Masks, nil
		}},
	}
	suite := h.Suite()
	if _, err := h.NNS(); err != nil {
		return nil, err
	}
	var out []StabilityRow
	for _, r := range runners {
		vals := make([]float64, len(suite))
		err := h.forEach(len(suite), func(i int) error {
			masks, err := r.run(suite[i])
			if err != nil {
				return err
			}
			vals[i] = segment.TemporalInstability(masks, suite[i].Masks)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		out = append(out, StabilityRow{Scheme: r.name, Instability: sum / float64(len(suite))})
	}
	return out, nil
}
