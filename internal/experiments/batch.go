package experiments

import (
	"context"

	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/video"
)

// BatchRow is one point of the dynamic-batching sweep: n concurrent
// streams served with the cross-session batcher flushing fused batches of
// up to MaxBatch NN items (MaxBatch 1 is the unbatched per-session
// baseline path).
type BatchRow struct {
	Streams       int     `json:"streams"`
	MaxBatch      int     `json:"maxBatch"`
	Frames        int     `json:"frames"`
	FPS           float64 `json:"fps"`
	P50MS         float64 `json:"p50Ms"`
	P95MS         float64 `json:"p95Ms"`
	P99MS         float64 `json:"p99Ms"`
	MeanOccupancy float64 `json:"meanOccupancy"` // items per fused flush
	FlushFull     int64   `json:"flushFull"`     // flush-reason split
	FlushTimer    int64   `json:"flushTimer"`
	FlushStall    int64   `json:"flushStall"`
	FlushDrain    int64   `json:"flushDrain"`
	Items         int64   `json:"items"` // NN executions that went through a batch
}

// batchStreamSweep and batchSizeSweep are the two sweep axes: offered
// concurrency and flush threshold. MaxBatch 1 rows bypass the batcher
// entirely and anchor the speedup comparison.
var (
	batchStreamSweep = []int{2, 8}
	batchSizeSweep   = []int{1, 2, 4, 8}
)

// Batch sweeps stream count against MaxBatch through the serving layer
// with NN-S refinement enabled — the workload the batcher exists for —
// and reports throughput, latency percentiles, mean batch occupancy and
// the flush-reason split. Masks are bit-identical across the whole grid
// (pinned by the serve differential tests), so the series measures the
// cost model of batching alone: fused kernels and pooled scratch against
// per-frame allocation.
func (h *Harness) Batch() ([]BatchRow, error) {
	suite := h.Suite()
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	rows := make([]BatchRow, 0, len(batchStreamSweep)*len(batchSizeSweep))
	for _, streams := range batchStreamSweep {
		for _, mb := range batchSizeSweep {
			opened := 0
			videoFor := func(i int) *video.Video { return suite[i%len(suite)] }
			col := obs.New()
			srv, err := serve.NewServer(serve.Config{
				MaxSessions: streams,
				MaxBatch:    mb,
				NNS:         nns,
				Obs:         col,
				NewSegmenter: func(id string) segment.Segmenter {
					v := videoFor(opened)
					opened++
					return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
				},
			})
			if err != nil {
				return nil, err
			}
			gen := &serve.LoadGen{
				Server:  srv,
				Streams: streams,
				Chunks: func(i int) [][]byte {
					st, err := h.StreamFor(videoFor(i), h.Cfg.Enc)
					if err != nil {
						return nil
					}
					return [][]byte{st.Data, st.Data}
				},
			}
			rep, err := gen.Run(context.Background())
			if cerr := srv.Close(context.Background()); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, err
			}
			row := BatchRow{
				Streams:  streams,
				MaxBatch: mb,
				Frames:   rep.Frames,
				FPS:      rep.FPS,
				P50MS:    ms(rep.P50),
				P95MS:    ms(rep.P95),
				P99MS:    ms(rep.P99),
			}
			snap := col.Snapshot()
			if occ := snap.Hist(obs.HistBatchOccupancy.String()); occ != nil {
				row.MeanOccupancy = occ.Mean
			}
			row.FlushFull = snap.Counters[obs.CounterBatchFlushFull.String()]
			row.FlushTimer = snap.Counters[obs.CounterBatchFlushTimer.String()]
			row.FlushStall = snap.Counters[obs.CounterBatchFlushStall.String()]
			row.FlushDrain = snap.Counters[obs.CounterBatchFlushDrain.String()]
			row.Items = snap.Counters[obs.CounterBatchItems.String()]
			rows = append(rows, row)
		}
	}
	return rows, nil
}
