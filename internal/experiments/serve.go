package experiments

import (
	"context"
	"time"

	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/video"
)

// ServeRow is one point of the multi-stream serving sweep: n concurrent
// camera feeds driven closed-loop through one serve.Server sharing a
// bounded worker pool.
type ServeRow struct {
	Streams          int     `json:"streams"`
	Admitted         int     `json:"admitted"`
	AdmissionRejects int     `json:"admissionRejects"`
	QueueRejects     int     `json:"queueRejects"`
	Frames           int     `json:"frames"`
	Dropped          int     `json:"dropped"`
	FPS              float64 `json:"fps"`          // aggregate served frames/s
	PerStreamFPS     float64 `json:"perStreamFps"` // FPS / admitted streams
	P50MS            float64 `json:"p50Ms"`        // chunk-arrival -> frame-served latency
	P95MS            float64 `json:"p95Ms"`
	P99MS            float64 `json:"p99Ms"`
	DropPct          float64 `json:"dropPct"`
}

// serveCap is the admission limit of the swept server; the last sweep
// point deliberately offers more streams than this to surface admission
// behaviour in the series.
const serveCap = 8

// serveSweep is the offered-stream axis. The final point exceeds serveCap.
var serveSweep = []int{1, 2, 4, 8, 12}

// Serve sweeps concurrent stream counts through the serving layer and
// reports sustained throughput, latency percentiles and shed/reject
// counts. Each admitted stream plays one suite sequence as two chunks
// (the second exercises the decoder-reuse path), segmented by its own
// per-video NN-L oracle and refined by the shared NN-S; masks are
// bit-identical to the standalone pipeline, so this series measures
// scheduling, not arithmetic.
func (h *Harness) Serve() ([]ServeRow, error) {
	suite := h.Suite()
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	rows := make([]ServeRow, 0, len(serveSweep))
	for _, n := range serveSweep {
		// Open is called sequentially by the load generator, so a counter in
		// the segmenter factory pairs session k with stream k and thus with
		// its video's oracle.
		opened := 0
		videoFor := func(i int) *video.Video { return suite[i%len(suite)] }
		cfg := serve.Config{
			MaxSessions: serveCap,
			Workers:     h.workers(),
			NNS:         nns,
			NewSegmenter: func(id string) segment.Segmenter {
				v := videoFor(opened)
				opened++
				return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
			},
		}
		srv, err := serve.NewServer(cfg)
		if err != nil {
			return nil, err
		}
		gen := &serve.LoadGen{
			Server:  srv,
			Streams: n,
			Chunks: func(i int) [][]byte {
				st, err := h.StreamFor(videoFor(i), h.Cfg.Enc)
				if err != nil {
					return nil
				}
				return [][]byte{st.Data, st.Data}
			},
		}
		rep, err := gen.Run(context.Background())
		if cerr := srv.Close(context.Background()); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, ServeRow{
			Streams:          n,
			Admitted:         rep.Admitted,
			AdmissionRejects: rep.AdmissionRejects,
			QueueRejects:     rep.QueueRejects,
			Frames:           rep.Frames,
			Dropped:          rep.Dropped,
			FPS:              rep.FPS,
			PerStreamFPS:     rep.PerStreamFPS,
			P50MS:            ms(rep.P50),
			P95MS:            ms(rep.P95),
			P99MS:            ms(rep.P99),
			DropPct:          100 * rep.DropRate,
		})
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
