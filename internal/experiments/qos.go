package experiments

import (
	"context"
	"sync"
	"time"

	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/video"
)

// QoSRow is one point of the overload degradation sweep: the same stream
// population offered open-loop at one arrival interval to a ladder-enabled
// server. As the interval shrinks past capacity the ladder, not the queue,
// absorbs the excess: p95 stays bounded while mean B-frame IoU decays and
// the served rungs shift from refine toward recon and skip.
type QoSRow struct {
	IntervalMS float64 `json:"intervalMs"`
	Streams    int     `json:"streams"`
	Frames     int     `json:"frames"`
	Dropped    int     `json:"dropped"`
	FPS        float64 `json:"fps"`
	P50MS      float64 `json:"p50Ms"`
	P95MS      float64 `json:"p95Ms"`
	P99MS      float64 `json:"p99Ms"`
	// BackoffMS is the summed admission-retry backoff the load generator
	// excluded from its FPS denominator (satellite: backoff is reported,
	// not folded into throughput).
	BackoffMS float64 `json:"backoffMs"`
	// MeanIoU is over served B-frames against ground truth; dropped
	// B-frames count as zero — shedding has a quality price, the figure
	// shows it.
	MeanIoU float64 `json:"meanIoU"`
	// PremiumIoU/FreeIoU split MeanIoU by QoS class: free sessions degrade
	// at FreeBias of the premium pressure, so their quality decays first.
	PremiumIoU float64 `json:"premiumIoU"`
	FreeIoU    float64 `json:"freeIoU"`
	// Ladder-step counters (server-wide) and deadline retractions.
	StepFull         int64 `json:"stepFull"`
	StepRefine       int64 `json:"stepRefine"`
	StepRecon        int64 `json:"stepRecon"`
	StepSkip         int64 `json:"stepSkip"`
	DeadlineOverruns int64 `json:"deadlineOverruns"`
}

// qosSweep is the arrival-interval axis, fastest last. The spread is wide
// enough that the lightest point serves mostly on the refinement rung and
// the heaviest sheds.
var qosSweep = []time.Duration{600 * time.Millisecond, 60 * time.Millisecond, 6 * time.Millisecond}

// QoSFigure runs the open-loop overload sweep against the adaptive QoS
// ladder. Streams alternate premium/free classes; each serves its own suite
// video so IoU is scored against per-stream ground truth.
func (h *Harness) QoSFigure() ([]QoSRow, error) {
	suite := h.Suite()
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	const streams, chunksPer = 6, 4
	// Each suite video is served by a premium stream and a free stream, so
	// the per-class IoU split compares identical content, not video
	// difficulty.
	videoFor := func(i int) *video.Video { return suite[(i/2)%len(suite)] }
	classFor := func(i int) qos.Class {
		if i%2 == 1 {
			return qos.ClassFree
		}
		return qos.ClassPremium
	}
	// Thresholds are pressures (queued frames per worker), scaled to the
	// opening burst: all streams submit their first chunk at once, so the
	// depth starts at streams x chunk frames even when arrivals then pace
	// far below capacity. The premium ladder tolerates that burst (refine);
	// free sessions, biased to half the thresholds, degrade already at the
	// light point — the class split the figure is after.
	burst := float64(streams*h.Cfg.Frames) / float64(h.workers())
	ladder := qos.Config{FullBelow: -1, ReconAt: 1.33 * burst, SkipAt: 1.83 * burst}

	rows := make([]QoSRow, 0, len(qosSweep))
	for _, interval := range qosSweep {
		opened := 0
		col := obs.New()
		srv, err := serve.NewServer(serve.Config{
			MaxSessions: streams,
			Workers:     h.workers(),
			NNS:         nns,
			NewSegmenter: func(id string) segment.Segmenter {
				v := videoFor(opened)
				opened++
				return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
			},
			Policy:      serve.Wait,
			MaxBatch:    4,
			FrameBudget: 2 * time.Second,
			QoS:         &ladder,
			Obs:         col,
		})
		if err != nil {
			return nil, err
		}
		var mu sync.Mutex
		var sums [2]float64 // indexed by class
		var ns [2]int
		gen := &serve.LoadGen{
			Server:   srv,
			Streams:  streams,
			Interval: interval,
			Class:    classFor,
			Chunks: func(i int) [][]byte {
				st, err := h.StreamFor(videoFor(i), h.Cfg.Enc)
				if err != nil {
					return nil
				}
				cs := make([][]byte, chunksPer)
				for c := range cs {
					cs[c] = st.Data
				}
				return cs
			},
			OnResult: func(stream int, r serve.FrameResult) {
				v := videoFor(stream)
				if !r.Type.IsAnchor() {
					mu.Lock()
					cl := classFor(stream)
					ns[cl]++
					if r.Mask != nil {
						sums[cl] += segment.IoU(r.Mask, v.Masks[r.Display%len(v.Masks)])
					}
					mu.Unlock()
				}
			},
		}
		rep, err := gen.Run(context.Background())
		if cerr := srv.Close(context.Background()); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		snap := col.Snapshot()
		meanOf := func(cl qos.Class) float64 {
			if ns[cl] == 0 {
				return 0
			}
			return sums[cl] / float64(ns[cl])
		}
		var mean float64
		if n := ns[qos.ClassPremium] + ns[qos.ClassFree]; n > 0 {
			mean = (sums[qos.ClassPremium] + sums[qos.ClassFree]) / float64(n)
		}
		rows = append(rows, QoSRow{
			IntervalMS:       ms(interval),
			Streams:          streams,
			Frames:           rep.Frames,
			Dropped:          rep.Dropped,
			FPS:              rep.FPS,
			P50MS:            ms(rep.P50),
			P95MS:            ms(rep.P95),
			P99MS:            ms(rep.P99),
			BackoffMS:        ms(rep.Backoff),
			MeanIoU:          mean,
			PremiumIoU:       meanOf(qos.ClassPremium),
			FreeIoU:          meanOf(qos.ClassFree),
			StepFull:         snap.Counters[obs.CounterQoSFull.String()],
			StepRefine:       snap.Counters[obs.CounterQoSRefine.String()],
			StepRecon:        snap.Counters[obs.CounterQoSRecon.String()],
			StepSkip:         snap.Counters[obs.CounterQoSSkip.String()],
			DeadlineOverruns: snap.Counters[obs.CounterQoSDeadlineOverruns.String()],
		})
	}
	return rows, nil
}
