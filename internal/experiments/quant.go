package experiments

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// QuantRow is one serving run of the quant figure: 8 concurrent streams
// through the batched serving layer on one execution path, with accuracy
// against ground truth and the residual-skip counters alongside the
// throughput numbers. DeltaF is relative to the float row (positive =
// the path lost accuracy), the quantity the tier's ≤ 0.5-point gate is
// written against.
type QuantRow struct {
	Path          string  `json:"path"` // float | int8 | int8+skip
	Streams       int     `json:"streams"`
	MaxBatch      int     `json:"maxBatch"`
	Frames        int     `json:"frames"`
	FPS           float64 `json:"fps"`
	P50MS         float64 `json:"p50Ms"`
	P95MS         float64 `json:"p95Ms"`
	P99MS         float64 `json:"p99Ms"`
	FScore        float64 `json:"fScore"` // mean B-frame F vs ground truth
	DeltaF        float64 `json:"deltaF"` // float-row F minus this row's F
	MeanOccupancy float64 `json:"meanOccupancy"`
	Items         int64   `json:"items"`
	BlocksSkipped int64   `json:"blocksSkipped"`
	BlocksDirty   int64   `json:"blocksDirty"`
	SkipRate      float64 `json:"skipRate"`      // skipped / (skipped + dirty)
	SkipThreshold int     `json:"skipThreshold"` // residual-energy cutoff (skip path only)
}

// QuantKernels is the micro side of the quant figure: the measured rates
// of the float and int8 batched NN-S forward passes on this machine, and
// the NPU-model efficiency the int8 rate implies (the calibration fed
// back into internal/sim/npu).
type QuantKernels struct {
	Items          int     `json:"items"`          // batch size timed
	OpsPerItem     int64   `json:"opsPerItem"`     // MACs ×2 per batch item
	FloatNSPerItem float64 `json:"floatNsPerItem"` // best-of-reps, per item
	Int8NSPerItem  float64 `json:"int8NsPerItem"`
	Speedup        float64 `json:"speedup"` // float time / int8 time
	Int8OpsPerSec  float64 `json:"int8OpsPerSec"`
	SimEfficiency  float64 `json:"simEfficiency"` // npu.CalibrateEfficiency(Int8OpsPerSec)
}

// QuantReport bundles the quant figure.
type QuantReport struct {
	Kernels QuantKernels `json:"kernels"`
	Rows    []QuantRow   `json:"rows"`
}

// quantCalibInputs builds the static calibration set for the int8 tier:
// sandwich-shaped tensors whose channels carry the {0, 0.5, 1} alphabet
// the deployed network actually sees (binary anchors, 2-bit MV
// reconstruction), at the harness's evaluation geometry.
func quantCalibInputs(w, h int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	var calib []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x := tensor.New(3, h, w)
		for j := range x.Data {
			x.Data[j] = float32(rng.Intn(3)) / 2
		}
		calib = append(calib, x)
	}
	return calib
}

// QuantNNS compiles (once) the trained NN-S to the int8 execution tier.
func (h *Harness) QuantNNS() (*nn.QuantRefineNet, error) {
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.qnns != nil {
		return h.qnns, nil
	}
	q, err := nn.NewQuantRefineNet(nns, quantCalibInputs(h.Cfg.W, h.Cfg.H, h.Cfg.Seed))
	if err != nil {
		return nil, err
	}
	h.qnns = q
	return q, nil
}

// Quant is the int8-tier figure: kernel-level float-vs-int8 rates plus an
// 8-stream serving comparison of the three execution paths — float
// batched (the PR-5 baseline), int8 batched, and int8 batched with
// residual-driven block skipping. Masks on the float and int8 paths are
// compared through ground-truth F-score, not bit-identity: quantization
// is an approximation and its contract is the ≤ 0.5-point DeltaF gate.
func (h *Harness) Quant() (*QuantReport, error) {
	kernels, err := h.measureQuantKernels()
	if err != nil {
		return nil, err
	}
	q, err := h.QuantNNS()
	if err != nil {
		return nil, err
	}
	// Pre-encode every stream the rows will serve, so the first row does
	// not pay the whole suite's encoding inside its timed serving loop.
	for _, v := range h.Suite() {
		if _, err := h.StreamFor(v, h.Cfg.Enc); err != nil {
			return nil, err
		}
	}
	rep := &QuantReport{Kernels: kernels}
	paths := []struct {
		name  string
		quant bool
		skip  bool
	}{
		{"float", false, false},
		{"int8", true, false},
		{"int8+skip", true, true},
	}
	for _, p := range paths {
		row, err := h.quantServeRow(p.name, 8, 8, q, p.quant, p.skip)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	for i := range rep.Rows {
		rep.Rows[i].DeltaF = rep.Rows[0].FScore - rep.Rows[i].FScore
	}
	return rep, nil
}

// measureQuantKernels times the float and int8 batched NN-S forward
// passes on identical synthetic batches (best of a few repetitions, after
// a warm-up that also primes the scratch buffers) and derives the
// throughput numbers the simulator calibration consumes.
func (h *Harness) measureQuantKernels() (QuantKernels, error) {
	nns, err := h.NNS()
	if err != nil {
		return QuantKernels{}, err
	}
	q, err := h.QuantNNS()
	if err != nil {
		return QuantKernels{}, err
	}
	const items = 8
	rng := rand.New(rand.NewSource(h.Cfg.Seed + 1))
	x := tensor.New(items*3, h.Cfg.H, h.Cfg.W)
	for j := range x.Data {
		x.Data[j] = float32(rng.Intn(3)) / 2
	}
	fnet := nns.Clone()
	qnet := q.Clone()
	fnet.ForwardBatch(x, items)
	qnet.ForwardBatchQuant(x, items)
	best := func(f func()) float64 {
		b := 0.0
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			f()
			if d := float64(time.Since(t0)); r == 0 || d < b {
				b = d
			}
		}
		return b
	}
	floatNS := best(func() { fnet.ForwardBatch(x, items) })
	int8NS := best(func() { qnet.ForwardBatchQuant(x, items) })
	ops := 2 * nns.StaticMACs(h.Cfg.H, h.Cfg.W)
	k := QuantKernels{
		Items:          items,
		OpsPerItem:     ops,
		FloatNSPerItem: floatNS / items,
		Int8NSPerItem:  int8NS / items,
	}
	if int8NS > 0 {
		k.Speedup = floatNS / int8NS
		k.Int8OpsPerSec = float64(items*ops) / (int8NS * 1e-9)
	}
	k.SimEfficiency = h.Cfg.Sim.NPU.CalibrateEfficiency(k.Int8OpsPerSec)
	return k, nil
}

// quantServeRow runs one 8-stream serving leg on the chosen path and
// scores its B-frame masks against each stream's ground truth.
func (h *Harness) quantServeRow(path string, streams, mb int, q *nn.QuantRefineNet, quant, skip bool) (QuantRow, error) {
	suite := h.Suite()
	nns, err := h.NNS()
	if err != nil {
		return QuantRow{}, err
	}
	videoFor := func(i int) *video.Video { return suite[i%len(suite)] }
	opened := 0
	col := obs.New()
	cfg := serve.Config{
		MaxSessions: streams,
		MaxBatch:    mb,
		NNS:         nns,
		Obs:         col,
		NewSegmenter: func(id string) segment.Segmenter {
			v := videoFor(opened)
			opened++
			return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
		},
	}
	if quant {
		cfg.QuantNNS = q
	}
	if skip {
		cfg.SkipResidual = true
		cfg.SkipThreshold = h.Cfg.SkipThreshold
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return QuantRow{}, err
	}
	var fMu sync.Mutex
	var fSum float64
	var fN int
	gen := &serve.LoadGen{
		Server:  srv,
		Streams: streams,
		Chunks: func(i int) [][]byte {
			st, err := h.StreamFor(videoFor(i), h.Cfg.Enc)
			if err != nil {
				return nil
			}
			return [][]byte{st.Data, st.Data}
		},
		OnResult: func(i int, r serve.FrameResult) {
			if r.Mask == nil || r.Type != codec.BFrame {
				return
			}
			v := videoFor(i)
			f := segment.PixelFScore(r.Mask, v.Masks[r.Display%len(v.Masks)])
			fMu.Lock()
			fSum += f
			fN++
			fMu.Unlock()
		},
	}
	rep, err := gen.Run(context.Background())
	if cerr := srv.Close(context.Background()); err == nil {
		err = cerr
	}
	if err != nil {
		return QuantRow{}, err
	}
	row := QuantRow{
		Path:     path,
		Streams:  streams,
		MaxBatch: mb,
		Frames:   rep.Frames,
		FPS:      rep.FPS,
		P50MS:    ms(rep.P50),
		P95MS:    ms(rep.P95),
		P99MS:    ms(rep.P99),
	}
	if fN > 0 {
		row.FScore = fSum / float64(fN)
	}
	snap := col.Snapshot()
	if occ := snap.Hist(obs.HistBatchOccupancy.String()); occ != nil {
		row.MeanOccupancy = occ.Mean
	}
	row.Items = snap.Counters[obs.CounterBatchItems.String()]
	row.BlocksSkipped = snap.Counters[obs.CounterQuantBlocksSkipped.String()]
	row.BlocksDirty = snap.Counters[obs.CounterQuantBlocksDirty.String()]
	if t := row.BlocksSkipped + row.BlocksDirty; t > 0 {
		row.SkipRate = float64(row.BlocksSkipped) / float64(t)
	}
	if skip {
		row.SkipThreshold = h.Cfg.SkipThreshold
	}
	return row, nil
}
