package experiments

import (
	"fmt"

	"vrdann/internal/core"
	"vrdann/internal/obs"
)

// Stages profiles one full VR-DANN segmentation run with the observability
// collector attached and returns the per-stage latency/occupancy report.
// The run uses the first suite video, the configured encoder settings and
// the configured pipeline worker count, so the report reflects the same
// execution mode the accuracy figures use.
func (h *Harness) Stages() (*obs.Report, error) {
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	suite := h.Suite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("experiments: empty suite")
	}
	v := suite[0]
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	c := obs.New()
	p := &core.Pipeline{
		NNL:     h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3),
		NNS:     nns,
		Refine:  true,
		Workers: h.Cfg.PipelineWorkers,
		Obs:     c,
	}
	if _, err := p.RunSegmentation(st.Data); err != nil {
		return nil, fmt.Errorf("experiments: stages profile on %s: %w", v.Name, err)
	}
	return c.Snapshot(), nil
}
