package experiments

import (
	"context"
	"time"

	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/video"
)

// CacheRow is one point of the content-cache sweep: viewers concurrent
// sessions per distinct content, each submitting two chunks of its content,
// served once without the cache and once with it. The broadcast column
// (contents == 1 only) is the single-decode fan-out upper bound: one
// backing session, viewers attached consumers.
type CacheRow struct {
	Viewers      int     `json:"viewers"`  // sessions per distinct content
	Contents     int     `json:"contents"` // distinct contents offered
	Frames       int     `json:"frames"`   // frames served (cached run)
	UncachedFPS  float64 `json:"uncachedFps"`
	CachedFPS    float64 `json:"cachedFps"`
	Speedup      float64 `json:"speedup"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	HitRate      float64 `json:"hitRate"`
	Evictions    int64   `json:"evictions"`
	BytesSaved   int64   `json:"bytesSaved"`
	BroadcastFPS float64 `json:"broadcastFps"` // viewer-frames/s; 0 unless contents == 1
}

var (
	cacheContentSweep = []int{1, 2}
	cacheViewerSweep  = []int{1, 2, 4, 8}
)

// CacheFigure sweeps viewer count against distinct-content count through
// the serving layer with NN-S refinement, with and without the shared
// content-addressed mask cache. Masks are bit-identical across the grid
// (pinned by the serve differential tests), so the series isolates the
// economics of content addressing: with one hot content the fleet cost
// collapses toward a single compute stream plus per-viewer decodes, and
// with more distinct contents the win shrinks toward the cache-off
// baseline.
func (h *Harness) CacheFigure() ([]CacheRow, error) {
	// Train (and cache) NN-S up front so the timed runs don't pay for it.
	if _, err := h.NNS(); err != nil {
		return nil, err
	}
	rows := make([]CacheRow, 0, len(cacheContentSweep)*len(cacheViewerSweep))
	for _, contents := range cacheContentSweep {
		vids := h.Suite()[:contents]
		for _, viewers := range cacheViewerSweep {
			base, _, err := h.cacheRun(vids, viewers, 0)
			if err != nil {
				return nil, err
			}
			rep, snap, err := h.cacheRun(vids, viewers, 256<<20)
			if err != nil {
				return nil, err
			}
			row := CacheRow{
				Viewers:     viewers,
				Contents:    contents,
				Frames:      rep.Frames,
				UncachedFPS: base.FPS,
				CachedFPS:   rep.FPS,
				Hits:        snap.Counters[obs.CounterCacheHits.String()],
				Misses:      snap.Counters[obs.CounterCacheMisses.String()],
				Evictions:   snap.Counters[obs.CounterCacheEvictions.String()],
				BytesSaved:  snap.Counters[obs.CounterCacheBytesSaved.String()],
			}
			if base.FPS > 0 {
				row.Speedup = rep.FPS / base.FPS
			}
			if row.Hits+row.Misses > 0 {
				row.HitRate = float64(row.Hits) / float64(row.Hits+row.Misses)
			}
			if contents == 1 {
				if row.BroadcastFPS, err = h.broadcastRun(vids[0], viewers); err != nil {
					return nil, err
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// cacheRun serves viewers sessions per content, two chunks each, and
// returns the load report plus the server collector snapshot. cacheBytes 0
// is the uncached baseline. Sessions are assigned to contents by open
// order; the NN-L label and per-video oracle seed depend only on the
// content, so sessions serving equal bytes compute equal masks — the
// cache-sharing contract.
func (h *Harness) cacheRun(vids []*video.Video, viewers int, cacheBytes int64) (*serve.LoadReport, *obs.Report, error) {
	nns, err := h.NNS()
	if err != nil {
		return nil, nil, err
	}
	streams := viewers * len(vids)
	videoFor := func(i int) *video.Video { return vids[i%len(vids)] }
	opened := 0
	col := obs.New()
	srv, err := serve.NewServer(serve.Config{
		MaxSessions: streams,
		NNS:         nns,
		CacheBytes:  cacheBytes,
		Obs:         col,
		NewSegmenter: func(id string) segment.Segmenter {
			v := videoFor(opened)
			opened++
			return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
		},
	})
	if err != nil {
		return nil, nil, err
	}
	gen := &serve.LoadGen{
		Server:  srv,
		Streams: streams,
		Chunks: func(i int) [][]byte {
			st, err := h.StreamFor(videoFor(i), h.Cfg.Enc)
			if err != nil {
				return nil
			}
			return [][]byte{st.Data, st.Data}
		},
	}
	rep, err := gen.Run(context.Background())
	if cerr := srv.Close(context.Background()); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	return rep, col.Snapshot(), nil
}

// broadcastRun measures the single-decode fan-out mode: one backing
// session, viewers attached consumers, two chunks. Reported as delivered
// viewer-frames per second — the aggregate a fleet of per-viewer sessions
// would have to compute to match.
func (h *Harness) broadcastRun(v *video.Video, viewers int) (float64, error) {
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return 0, err
	}
	nns, err := h.NNS()
	if err != nil {
		return 0, err
	}
	srv, err := serve.NewServer(serve.Config{
		MaxSessions: 1,
		NNS:         nns,
		Obs:         obs.New(),
		NewSegmenter: func(string) segment.Segmenter {
			return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
		},
	})
	if err != nil {
		return 0, err
	}
	b, err := srv.OpenBroadcast()
	if err != nil {
		return 0, err
	}
	delivered := 0
	for i := 0; i < viewers; i++ {
		b.Attach(func(serve.FrameResult) { delivered++ })
	}
	start := time.Now()
	frames := 0
	for c := 0; c < 2; c++ {
		res, err := b.Submit(context.Background(), st.Data)
		if err != nil {
			return 0, err
		}
		frames += len(res)
	}
	elapsed := time.Since(start)
	b.Close()
	if err := srv.Close(context.Background()); err != nil {
		return 0, err
	}
	if delivered != frames*viewers {
		return 0, nil // defensive: fan-out accounting broke; report nothing
	}
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(delivered) / elapsed.Seconds(), nil
}
