package experiments

import (
	"strings"
	"sync"
	"testing"
)

// testHarness is shared across tests: 4 sequences of 16 frames keep every
// entry point cheap while still exercising the full pipelines.
var (
	thOnce sync.Once
	th     *Harness
)

func testH() *Harness {
	thOnce.Do(func() {
		cfg := Default()
		cfg.Frames = 16
		cfg.TrainFrames = 12
		cfg.Videos = 4
		cfg.DetW, cfg.DetH = 96, 64
		th = New(cfg)
	})
	return th
}

func TestFig3aRatiosInRange(t *testing.T) {
	rows, mean, err := testH().Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.BRatio < 0 || r.BRatio > 0.9 {
			t.Fatalf("%s B ratio %v out of range", r.Name, r.BRatio)
		}
	}
	if mean <= 0.2 || mean >= 0.9 {
		t.Fatalf("mean B ratio %v implausible", mean)
	}
}

func TestFig3bHistogram(t *testing.T) {
	hist, maxRefs, err := testH().Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 || maxRefs < 1 || maxRefs > 7 {
		t.Fatalf("hist %v maxRefs %d", hist, maxRefs)
	}
}

func TestFig9RowsComplete(t *testing.T) {
	rows, err := testH().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, v := range []float64{r.FavosF, r.FavosJ, r.VrdF, r.VrdJ} {
			if v <= 0.3 || v > 1 {
				t.Fatalf("%s: implausible score %v", r.Name, v)
			}
		}
	}
}

func TestFig10Ordering(t *testing.T) {
	rows, err := testH().Fig10()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig10Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// The paper's ordering: OSVOS clearly worst; FAVOS and VR-DANN within
	// ~1.5 points of each other; DFF between.
	if byName["OSVOS"].J >= byName["DFF"].J {
		t.Fatalf("OSVOS (%v) should trail DFF (%v)", byName["OSVOS"].J, byName["DFF"].J)
	}
	if byName["DFF"].J >= byName["VR-DANN"].J {
		t.Fatalf("DFF (%v) should trail VR-DANN (%v)", byName["DFF"].J, byName["VR-DANN"].J)
	}
	diff := byName["FAVOS"].J - byName["VR-DANN"].J
	if diff < -0.02 || diff > 0.02 {
		t.Fatalf("VR-DANN should be within ~1.5pt of FAVOS, gap %v", diff)
	}
}

func TestFig11Ordering(t *testing.T) {
	rows, err := testH().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig11Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// The test subset holds only slow sequences, where extrapolation is
	// nearly free — allow Euphrates-4 a small tolerance over Euphrates-2.
	if byName["Euphrates-4"].Overall > byName["Euphrates-2"].Overall+0.03 {
		t.Fatal("Euphrates-4 must not clearly beat Euphrates-2")
	}
	if byName["VR-DANN"].Overall < byName["Euphrates-4"].Overall-0.03 {
		t.Fatal("VR-DANN must not clearly trail Euphrates-4")
	}
	if byName["SELSA"].Overall < byName["VR-DANN"].Overall-0.05 {
		t.Fatal("SELSA should be at least comparable to VR-DANN")
	}
}

func TestFig12NormalizedCycles(t *testing.T) {
	rows, err := testH().Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ParallelNorm >= 1 || r.ParallelNorm <= 0.1 {
			t.Fatalf("%s parallel norm %v implausible", r.Name, r.ParallelNorm)
		}
		if r.SerialNorm < r.ParallelNorm {
			t.Fatalf("%s: serial (%v) cannot beat parallel (%v)", r.Name, r.SerialNorm, r.ParallelNorm)
		}
		if r.VrdTOPS >= r.FavosTOPS {
			t.Fatalf("%s: VR-DANN ops/frame must drop", r.Name)
		}
	}
}

func TestFig13SpeedupsAndEnergy(t *testing.T) {
	rows, err := testH().Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Scheme.String() {
		case "FAVOS":
			if r.Speedup != 1 || r.EnergyNorm != 1 {
				t.Fatalf("FAVOS must normalize to 1: %+v", r)
			}
		case "VR-DANN-parallel":
			if r.Speedup < 1.8 || r.Speedup > 4.5 {
				t.Fatalf("parallel speedup %v outside plausible band", r.Speedup)
			}
			if r.EnergyNorm >= 1 {
				t.Fatal("parallel must save energy")
			}
		case "OSVOS":
			if r.Speedup >= 1 {
				t.Fatal("OSVOS must be slower than FAVOS")
			}
		}
	}
}

func TestFig14Shares(t *testing.T) {
	rows, err := testH().Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		var sum float64
		for _, v := range r.Share {
			sum += v
		}
		if diff := sum - r.Total; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%v: shares %v do not add to total %v", r.Scheme, sum, r.Total)
		}
	}
	if rows[0].Total != 1 {
		t.Fatalf("FAVOS total must be 1, got %v", rows[0].Total)
	}
	last := rows[len(rows)-1]
	if last.Total >= 1 {
		t.Fatalf("VR-DANN-parallel DRAM total %v must be below FAVOS", last.Total)
	}
	if last.Share["motion-vectors"] == 0 || last.Share["recon-writes"] == 0 {
		t.Fatal("VR-DANN breakdown must include MV and recon traffic")
	}
}

func TestFig15MoreBFramesFaster(t *testing.T) {
	rows, err := testH().Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Higher B ratio must not be slower (Fig 15's performance trend).
	if rows[0].BRatio >= rows[3].BRatio {
		t.Fatalf("sweep did not change the B ratio: %v vs %v", rows[0].BRatio, rows[3].BRatio)
	}
	if rows[3].CyclesNorm > rows[0].CyclesNorm {
		t.Fatalf("75%% B (%v) should not be slower than 37%% B (%v)", rows[3].CyclesNorm, rows[0].CyclesNorm)
	}
}

func TestFig16AccuracyGrowsWithInterval(t *testing.T) {
	rows, err := testH().Fig16()
	if err != nil {
		t.Fatal(err)
	}
	// Larger n must not hurt accuracy much: compare n=1 against n=7.
	var j1, j7 float64
	for _, r := range rows {
		if r.N == 1 {
			j1 = r.J
		}
		if r.N == 7 {
			j7 = r.J
		}
	}
	if j7 < j1-0.01 {
		t.Fatalf("n=7 (%v) should not be clearly worse than n=1 (%v)", j7, j1)
	}
}

func TestFig17BothStandardsEvaluated(t *testing.T) {
	rows, err := testH().Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].J+0.03 < rows[0].J {
		t.Fatalf("H.265-like (%v) clearly worse than H.264-like (%v)", rows[1].J, rows[0].J)
	}
}

func TestTableIIContents(t *testing.T) {
	s := testH().TableII()
	for _, want := range []string{"tmp_B", "mv_T", "b_Q", "600 MHz", "16 TOPS", "8 MB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table II missing %q:\n%s", want, s)
		}
	}
}

func TestHeadlineBands(t *testing.T) {
	hl, err := testH().Headline()
	if err != nil {
		t.Fatal(err)
	}
	if hl.SpeedupVsFAVOS < 1.8 || hl.SpeedupVsFAVOS > 4.5 {
		t.Fatalf("speedup vs FAVOS %v outside band", hl.SpeedupVsFAVOS)
	}
	if hl.SpeedupVsOSVOS <= hl.SpeedupVsFAVOS {
		t.Fatal("gain over OSVOS must exceed gain over FAVOS")
	}
	if hl.SerialSpeedupVsFAVOS >= hl.SpeedupVsFAVOS {
		t.Fatal("parallel must beat serial")
	}
	if hl.EnergyVsSerial < 1 {
		t.Fatal("parallel must use no more energy than serial")
	}
	if hl.AccuracyLossVsFAVOSPct > 2 || hl.AccuracyLossVsFAVOSPct < -3 {
		t.Fatalf("accuracy delta vs FAVOS %v%% outside the paper's <1%% band (with slack)", hl.AccuracyLossVsFAVOSPct)
	}
}

func TestAblations(t *testing.T) {
	h := testH()
	co, err := h.AblationCoalescing()
	if err != nil {
		t.Fatal(err)
	}
	if co[0].Misses >= co[1].Misses {
		t.Fatalf("coalescing on (%d misses) must beat off (%d)", co[0].Misses, co[1].Misses)
	}
	la, err := h.AblationLaggedSwitching()
	if err != nil {
		t.Fatal(err)
	}
	if la[0].Switches >= la[1].Switches {
		t.Fatalf("lagged switching (%d) must reduce switches vs eager (%d)", la[0].Switches, la[1].Switches)
	}
	tb, err := h.AblationTmpB()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb) != 5 {
		t.Fatalf("tmp_B sweep rows = %d", len(tb))
	}
	// More buffers must not increase agent time.
	if tb[2].AgentNS > tb[0].AgentNS {
		t.Fatalf("3 buffers (%v) should not be slower than 1 (%v)", tb[2].AgentNS, tb[0].AgentNS)
	}
}

func TestAblationRefinementHelps(t *testing.T) {
	wf, wj, of, oj, err := testH().AblationRefinement()
	if err != nil {
		t.Fatal(err)
	}
	if wf+wj < of+oj-0.01 {
		t.Fatalf("refinement should not clearly hurt: with (%v,%v) without (%v,%v)", wf, wj, of, oj)
	}
}

func TestAblationInt8WithinBudget(t *testing.T) {
	ff, fj, qf, qj, err := testH().AblationInt8()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FP32 F=%.4f J=%.4f  INT8 F=%.4f J=%.4f", ff, fj, qf, qj)
	// INT8 deployment should cost at most ~1 point on either metric.
	if ff-qf > 0.015 || fj-qj > 0.015 {
		t.Fatalf("INT8 accuracy loss too large: F %.4f->%.4f, J %.4f->%.4f", ff, qf, fj, qj)
	}
}

func TestDSEShape(t *testing.T) {
	rows, err := testH().DSE()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("got %d design points", len(rows))
	}
	byPoint := map[[2]float64]DSERow{}
	for _, r := range rows {
		byPoint[[2]float64{r.PeakTOPS, r.BandwidthX}] = r
		if r.Speedup < 1 {
			t.Fatalf("VR-DANN slower than FAVOS at %+v", r)
		}
		if r.VrdannFPS <= r.FavosFPS {
			t.Fatalf("fps ordering wrong at %+v", r)
		}
	}
	// FAVOS throughput must scale with NPU compute in the compute-bound
	// regime.
	if byPoint[[2]float64{16, 1}].FavosFPS <= byPoint[[2]float64{4, 1}].FavosFPS*2 {
		t.Fatal("FAVOS should scale with NPU compute")
	}
	// The speedup must not grow when compute becomes abundant (the decoder
	// and fixed costs bound both schemes).
	if byPoint[[2]float64{64, 1}].Speedup > byPoint[[2]float64{4, 1}].Speedup+0.05 {
		t.Fatal("speedup should erode, not grow, at very high compute")
	}
}

func TestStabilityOrdering(t *testing.T) {
	rows, err := testH().Stability()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, r := range rows {
		by[r.Scheme] = r.Instability
		if r.Instability < 0 {
			t.Fatalf("negative instability for %s", r.Scheme)
		}
	}
	// MV propagation inherits reference coherence: VR-DANN must not flicker
	// more than the per-frame OSVOS, and DFF's flow warping jitters most.
	if by["VR-DANN"] > by["OSVOS"]+0.005 {
		t.Fatalf("VR-DANN (%.4f) should be at least as stable as OSVOS (%.4f)", by["VR-DANN"], by["OSVOS"])
	}
	if by["DFF"] < by["VR-DANN"] {
		t.Fatalf("DFF (%.4f) should flicker more than VR-DANN (%.4f)", by["DFF"], by["VR-DANN"])
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	rows, err := testH().EnergyBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	var favos, parallel EnergyRow
	for _, r := range rows {
		if got := r.NPU + r.DRAM + r.Dec + r.Agent + r.Static; got < r.Total*0.999 || got > r.Total*1.001 {
			t.Fatalf("%v: components do not sum to total", r.Scheme)
		}
		switch r.Scheme.String() {
		case "FAVOS":
			favos = r
		case "VR-DANN-parallel":
			parallel = r
		}
	}
	if parallel.NPU >= favos.NPU {
		t.Fatal("VR-DANN must cut NPU energy")
	}
	// The decoder works *less* under VR-DANN (side-info B decode).
	if parallel.Dec >= favos.Dec {
		t.Fatal("side-info decode must cost less decoder energy")
	}
}
