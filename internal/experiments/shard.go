package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"vrdann/internal/fault/chaos"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/shard"
)

// The scale-out sweep holds the offered load fixed (shardSessions sessions,
// shardChunks chunks each) and grows only the fleet, so the aggregate-FPS
// series isolates what sharding buys: each node runs few enough workers
// that a single node is compute-bound under the full session set.
const (
	shardSessions    = 8
	shardChunks      = 3
	shardNodeWorkers = 2
)

var shardNodeSweep = []int{1, 2, 4}

// ShardRow is one point of the scale-out series: the fixed workload served
// through a gateway over Nodes backends.
type ShardRow struct {
	Nodes      int     `json:"nodes"`
	Sessions   int     `json:"sessions"`
	Chunks     int     `json:"chunks"` // chunks per session
	Frames     int     `json:"frames"` // total frames served
	FPS        float64 `json:"fps"`    // aggregate frames/s across the fleet
	PerNodeFPS float64 `json:"perNodeFps"`
	// ScaleEff is FPS over nodes x the single-node FPS: 1.0 is perfect
	// linear scaling, below 1 is gateway/imbalance overhead.
	ScaleEff float64 `json:"scaleEff"`
}

// ShardMigrationReport summarizes the rebalance/failure leg: a fleet that
// scales up mid-stream and then loses a node, with every affected session
// live-migrated at the next chunk header.
type ShardMigrationReport struct {
	Sessions      int     `json:"sessions"`
	Moved         int     `json:"moved"` // sessions that changed backend at least once
	Migrations    int64   `json:"migrations"`
	Rebalances    int64   `json:"rebalances"` // migrations caused by ring-ownership change
	ProxyErrors   int64   `json:"proxyErrors"`
	MigrateMeanMS float64 `json:"migrateMeanMs"` // drain -> re-admit latency per migration
	MigrateP50MS  float64 `json:"migrateP50Ms"`
	MigrateP95MS  float64 `json:"migrateP95Ms"`
}

// ShardReport is the full shard figure: the scale-out series plus the
// migration-latency leg. HostProcs records GOMAXPROCS at run time: the
// nodes are in-process, so aggregate FPS can only grow while the fleet's
// total workers still fit the host — on a single-core host the series is
// flat and measures gateway overhead instead of scaling.
type ShardReport struct {
	HostProcs int                  `json:"hostProcs"`
	Rows      []ShardRow           `json:"rows"`
	Migration ShardMigrationReport `json:"migration"`
}

// ShardFigure measures the sharded serving tier end to end: a fixed
// multi-session workload is pushed through a shard.Gateway over fleets of
// 1, 2 and 4 in-process vrserve nodes (aggregate FPS and scaling
// efficiency), then a separate fleet is scaled up and degraded mid-stream
// to measure how many sessions move and how long a live migration takes.
// Every backend runs the deterministic threshold segmenter, so all served
// masks are placement-independent — the same contract the sharding chaos
// tests pin bit-identically.
func (h *Harness) ShardFigure() (*ShardReport, error) {
	v := h.Suite()[0]
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	framesPerChunk := len(v.Frames)
	rep := &ShardReport{HostProcs: runtime.GOMAXPROCS(0)}
	for _, nodes := range shardNodeSweep {
		fps, err := h.shardScaleRun(st.Data, nodes, framesPerChunk)
		if err != nil {
			return nil, err
		}
		row := ShardRow{
			Nodes:      nodes,
			Sessions:   shardSessions,
			Chunks:     shardChunks,
			Frames:     shardSessions * shardChunks * framesPerChunk,
			FPS:        fps,
			PerNodeFPS: fps / float64(nodes),
		}
		if len(rep.Rows) > 0 && rep.Rows[0].FPS > 0 {
			row.ScaleEff = fps / (float64(nodes) * rep.Rows[0].FPS)
		} else if nodes == 1 {
			row.ScaleEff = 1
		}
		rep.Rows = append(rep.Rows, row)
	}
	mig, err := shardMigrationRun(st.Data)
	if err != nil {
		return nil, err
	}
	rep.Migration = *mig
	return rep, nil
}

// shardScaleRun serves the fixed workload through a gateway over n nodes
// and returns the aggregate frames/s.
func (h *Harness) shardScaleRun(chunk []byte, n, framesPerChunk int) (float64, error) {
	backends, urls, err := startShardNodes(n, shardSessions)
	if err != nil {
		return 0, err
	}
	defer stopShardNodes(backends)
	g, err := shard.NewGateway(shard.Config{
		Backends:       urls,
		HealthInterval: -1,
		ProxyTimeout:   time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer closeGateway(g)
	ctx := context.Background()
	ids := make([]string, shardSessions)
	for i := range ids {
		if ids[i], err = g.Open(ctx); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	err = h.forEach(len(ids), func(i int) error {
		for c := 0; c < shardChunks; c++ {
			resp, err := g.Chunk(ctx, ids[i], chunk, "")
			if err != nil {
				return fmt.Errorf("experiments: shard chunk %d of %s: %w", c, ids[i], err)
			}
			if resp.Status != 200 {
				return fmt.Errorf("experiments: shard chunk %d of %s: backend status %d", c, ids[i], resp.Status)
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, err
	}
	for _, id := range ids {
		if err := g.CloseSession(ctx, id); err != nil {
			return 0, err
		}
	}
	if elapsed <= 0 {
		return 0, nil
	}
	frames := shardSessions * shardChunks * framesPerChunk
	return float64(frames) / elapsed.Seconds(), nil
}

// shardMigrationRun drives the rebalance/failure leg: sessions stream
// through a 2-node fleet, a third node joins (ring ownership moves — live
// rebalance), then one node is killed outright (failure migration with the
// failed chunk replayed). The gateway collector's migrate-stage span is the
// per-migration drain -> re-admit latency.
func shardMigrationRun(chunk []byte) (*ShardMigrationReport, error) {
	const sessions = 12
	backends, urls, err := startShardNodes(3, sessions)
	if err != nil {
		return nil, err
	}
	defer stopShardNodes(backends)
	col := obs.New()
	g, err := shard.NewGateway(shard.Config{
		Backends:       urls[:2],
		HealthInterval: -1,
		ProxyTimeout:   10 * time.Second,
		Obs:            col,
	})
	if err != nil {
		return nil, err
	}
	defer closeGateway(g)
	ctx := context.Background()
	ids := make([]string, sessions)
	for i := range ids {
		if ids[i], err = g.Open(ctx); err != nil {
			return nil, err
		}
	}
	submitAll := func(label string) error {
		for _, id := range ids {
			resp, err := g.Chunk(ctx, id, chunk, "")
			if err != nil {
				return fmt.Errorf("experiments: shard %s chunk of %s: %w", label, id, err)
			}
			if resp.Status != 200 {
				return fmt.Errorf("experiments: shard %s chunk of %s: backend status %d", label, id, resp.Status)
			}
		}
		return nil
	}
	// Steady state on two nodes.
	if err := submitAll("steady"); err != nil {
		return nil, err
	}
	// Scale up: the third node takes over a slice of the ring; owning
	// sessions rebalance at their next chunk.
	g.AddNode(urls[2])
	if err := submitAll("scale-up"); err != nil {
		return nil, err
	}
	// Failure: kill whichever node now serves the first session; its
	// sessions migrate and the failed chunk is replayed transparently.
	victim := g.Placement(ids[0])
	for _, b := range backends {
		if b.URL == victim {
			b.Kill()
		}
	}
	if err := submitAll("after-kill"); err != nil {
		return nil, err
	}
	moved := 0
	for _, id := range ids {
		if g.Migrations(id) > 0 {
			moved++
		}
	}
	for _, id := range ids {
		if err := g.CloseSession(ctx, id); err != nil {
			return nil, err
		}
	}
	snap := col.Snapshot()
	rep := &ShardMigrationReport{
		Sessions:    sessions,
		Moved:       moved,
		Migrations:  snap.Counters[obs.CounterMigrations.String()],
		Rebalances:  snap.Counters[obs.CounterRebalances.String()],
		ProxyErrors: snap.Counters[obs.CounterProxyErrors.String()],
	}
	if s := snap.Stage(obs.StageMigrate.String()); s != nil {
		rep.MigrateMeanMS = float64(s.MeanNS) / 1e6
		rep.MigrateP50MS = float64(s.P50NS) / 1e6
		rep.MigrateP95MS = float64(s.P95NS) / 1e6
	}
	return rep, nil
}

// startShardNodes boots n in-process vrserve nodes on loopback HTTP, each
// with the deterministic threshold segmenter so served masks do not depend
// on placement.
func startShardNodes(n, maxSessions int) ([]*chaos.Node, []string, error) {
	backends := make([]*chaos.Node, 0, n)
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		node, err := chaos.StartNode(serve.Config{
			MaxSessions: maxSessions,
			Workers:     shardNodeWorkers,
			NewSegmenter: func(string) segment.Segmenter {
				return &segment.ThresholdSegmenter{CloseRadius: 1}
			},
		})
		if err != nil {
			stopShardNodes(backends)
			return nil, nil, err
		}
		backends = append(backends, node)
		urls = append(urls, node.URL)
	}
	return backends, urls, nil
}

func stopShardNodes(backends []*chaos.Node) {
	for _, n := range backends {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = n.Stop(ctx)
		cancel()
	}
}

func closeGateway(g *shard.Gateway) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = g.Close(ctx)
}
