package experiments

import (
	"context"
	"errors"
	"time"

	"vrdann/internal/fault"
	"vrdann/internal/fault/chaos"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
)

// FaultsReport summarizes one deterministic fault-injection soak of the
// serving layer: how many chunks were corrupted, how the recovery path
// disposed of them, and the error counters the server accumulated. The
// JSON lands in the benchsuite output so a regression in fault handling
// shows up next to the performance figures.
type FaultsReport struct {
	Sessions      int     `json:"sessions"`
	ChunksOffered int     `json:"chunksOffered"`
	CorruptionPct float64 `json:"corruptionPct"`
	Corrupted     int     `json:"corrupted"`
	// Disposition of every offered chunk.
	ServedClean       int `json:"servedClean"`       // served, bit-exact path
	ServedCorrupt     int `json:"servedCorrupt"`     // corrupted yet decodable
	AdmissionRejected int `json:"admissionRejected"` // bad header, breaker, closed
	FailedClassified  int `json:"failedClassified"`  // mid-serve, classified error
	Hung              int `json:"hung"`              // must be zero
	// Server-wide recovery counters.
	DecodeErrors int64 `json:"decodeErrors"`
	Resyncs      int64 `json:"resyncs"`
	BreakerTrips int64 `json:"breakerTrips"`
}

// Faults drives the chaos harness over the serving layer: 8 concurrent
// sessions on one suite sequence, 20% of chunks corrupted across all fault
// kinds, deterministic in the harness seed. Poisoned sessions exercise
// quarantine-and-resync and the per-session circuit breaker; the report
// tallies every chunk's disposition plus the recovery counters.
func (h *Harness) Faults() (*FaultsReport, error) {
	v := h.Suite()[0]
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	serverObs := obs.New()
	srv, err := serve.NewServer(serve.Config{
		MaxSessions: 8,
		Workers:     h.workers(),
		NewSegmenter: func(id string) segment.Segmenter {
			return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
		},
		Obs:              serverObs,
		BreakerThreshold: 2,
		BreakerBackoff:   5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	res, err := chaos.Run(context.Background(), srv, chaos.Config{
		Sessions: 8, Chunks: 6, Chunk: st.Data,
		Rate: 0.20, Seed: h.Cfg.Seed, Kinds: fault.AllKinds,
	})
	if cerr := srv.Close(context.Background()); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	rep := &FaultsReport{Sessions: 8, CorruptionPct: 20, Hung: res.Hung}
	for _, sr := range res.Sessions {
		if sr.OpenErr != nil {
			return nil, sr.OpenErr
		}
		for _, out := range sr.Outcomes {
			rep.ChunksOffered++
			if out.Corrupted {
				rep.Corrupted++
			}
			switch {
			case out.SubmitErr != nil:
				rep.AdmissionRejected++
			case out.ServeErr != nil:
				var ce *serve.ChunkError
				if !errors.As(out.ServeErr, &ce) {
					return nil, out.ServeErr // unclassified: a harness bug
				}
				rep.FailedClassified++
			case out.Corrupted:
				rep.ServedCorrupt++
			default:
				rep.ServedClean++
			}
		}
	}
	snap := serverObs.Snapshot()
	rep.DecodeErrors = snap.Counters[obs.CounterDecodeErrors.String()]
	rep.Resyncs = snap.Counters[obs.CounterResyncs.String()]
	rep.BreakerTrips = snap.Counters[obs.CounterBreakerTrips.String()]
	return rep, nil
}
