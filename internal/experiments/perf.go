package experiments

import (
	"fmt"
	"sort"
	"strings"

	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/nn"
	"vrdann/internal/segment"
	"vrdann/internal/sim"
	"vrdann/internal/sim/dram"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// workloadFor extracts the (cached-decode) simulator workload of one video.
func (h *Harness) workloadFor(v *video.Video) (sim.Workload, error) {
	dec, err := h.SideDecodeFor(v, h.Cfg.Enc)
	if err != nil {
		return sim.Workload{}, err
	}
	return sim.FromDecode(v.Name, dec, h.Cfg.Sim.Agent, h.Cfg.SimW, h.Cfg.SimH), nil
}

// Fig12Row is one video's execution time (normalized to FAVOS) and
// operation counts.
type Fig12Row struct {
	Name               string
	SerialNorm         float64 // VR-DANN-serial cycles / FAVOS cycles
	ParallelNorm       float64
	FavosTOPS, VrdTOPS float64 // per-frame tera-ops
}

// Fig12 reports per-video execution cycles of FAVOS, VR-DANN-serial and
// VR-DANN-parallel (normalized to FAVOS), plus the per-frame TOPS drop.
func (h *Harness) Fig12() ([]Fig12Row, error) {
	var out []Fig12Row
	s := sim.New(h.Cfg.Sim)
	for _, v := range h.Suite() {
		w, err := h.workloadFor(v)
		if err != nil {
			return nil, err
		}
		favos := s.Run(sim.SchemeFAVOS, w)
		serial := s.Run(sim.SchemeVRDANNSerial, w)
		parallel := s.Run(sim.SchemeVRDANNParallel, w)
		out = append(out, Fig12Row{
			Name:         v.Name,
			SerialNorm:   serial.TotalNS / favos.TotalNS,
			ParallelNorm: parallel.TotalNS / favos.TotalNS,
			FavosTOPS:    favos.TOPSPerFrame(),
			VrdTOPS:      parallel.TOPSPerFrame(),
		})
	}
	return out, nil
}

// Fig13Row is one scheme's suite-average performance and energy relative
// to FAVOS.
type Fig13Row struct {
	Scheme     sim.Scheme
	Speedup    float64 // FAVOS time / scheme time
	EnergyNorm float64 // scheme energy / FAVOS energy
	FPS        float64
}

// fig13Schemes are the schemes Fig 13 plots.
var fig13Schemes = []sim.Scheme{
	sim.SchemeOSVOS, sim.SchemeDFF, sim.SchemeFAVOS,
	sim.SchemeVRDANNSerial, sim.SchemeVRDANNParallel,
}

// Fig13 reports suite-average performance and energy normalized to FAVOS.
func (h *Harness) Fig13() ([]Fig13Row, error) {
	s := sim.New(h.Cfg.Sim)
	totalNS := map[sim.Scheme]float64{}
	totalPJ := map[sim.Scheme]float64{}
	frames := 0
	for _, v := range h.Suite() {
		w, err := h.workloadFor(v)
		if err != nil {
			return nil, err
		}
		frames += len(w.Frames)
		for _, sc := range fig13Schemes {
			r := s.Run(sc, w)
			totalNS[sc] += r.TotalNS
			totalPJ[sc] += r.Energy.TotalPJ()
		}
	}
	var out []Fig13Row
	for _, sc := range fig13Schemes {
		out = append(out, Fig13Row{
			Scheme:     sc,
			Speedup:    totalNS[sim.SchemeFAVOS] / totalNS[sc],
			EnergyNorm: totalPJ[sc] / totalPJ[sim.SchemeFAVOS],
			FPS:        float64(frames) / (totalNS[sc] * 1e-9),
		})
	}
	return out, nil
}

// Fig14Row is one scheme's DRAM traffic, split by category and normalized
// to FAVOS's total.
type Fig14Row struct {
	Scheme sim.Scheme
	Share  map[string]float64 // category -> fraction of FAVOS total bytes
	Total  float64            // total bytes / FAVOS total bytes
}

// Fig14 reports the DRAM access breakdown of FAVOS, VR-DANN-serial and
// VR-DANN-parallel over the suite.
func (h *Harness) Fig14() ([]Fig14Row, error) {
	s := sim.New(h.Cfg.Sim)
	schemes := []sim.Scheme{sim.SchemeFAVOS, sim.SchemeVRDANNSerial, sim.SchemeVRDANNParallel}
	byKind := map[sim.Scheme]*dram.Stats{}
	for _, sc := range schemes {
		byKind[sc] = &dram.Stats{}
	}
	for _, v := range h.Suite() {
		w, err := h.workloadFor(v)
		if err != nil {
			return nil, err
		}
		for _, sc := range schemes {
			r := s.Run(sc, w)
			for k := range r.DRAM.BytesByKind {
				byKind[sc].BytesByKind[k] += r.DRAM.BytesByKind[k]
			}
		}
	}
	favosTotal := float64(byKind[sim.SchemeFAVOS].TotalBytes())
	var out []Fig14Row
	for _, sc := range schemes {
		row := Fig14Row{Scheme: sc, Share: map[string]float64{}}
		for k, b := range byKind[sc].BytesByKind {
			if b > 0 {
				row.Share[dram.KindNames[k]] = float64(b) / favosTotal
			}
		}
		row.Total = float64(byKind[sc].TotalBytes()) / favosTotal
		out = append(out, row)
	}
	return out, nil
}

// Headline aggregates the paper's Sec VI headline numbers.
type Headline struct {
	SpeedupVsOSVOS, SpeedupVsFAVOS, SpeedupVsDFF, SpeedupVsEuphrates2 float64
	EnergyVsOSVOS, EnergyVsFAVOS, EnergyVsDFF, EnergyVsSerial         float64
	FAVOSFPS, VRDANNFPS                                               float64
	SerialSpeedupVsFAVOS                                              float64
	AccuracyLossVsFAVOSPct                                            float64 // in F-Score points
}

// Headline computes the paper's abstract-level comparison numbers on the
// suite. Accuracy uses Fig 10 results; performance uses Fig 13-style
// aggregation extended with Euphrates-2.
func (h *Harness) Headline() (*Headline, error) {
	s := sim.New(h.Cfg.Sim)
	schemes := []sim.Scheme{
		sim.SchemeOSVOS, sim.SchemeDFF, sim.SchemeFAVOS, sim.SchemeEuphrates2,
		sim.SchemeVRDANNSerial, sim.SchemeVRDANNParallel,
	}
	totalNS := map[sim.Scheme]float64{}
	totalPJ := map[sim.Scheme]float64{}
	frames := 0
	for _, v := range h.Suite() {
		w, err := h.workloadFor(v)
		if err != nil {
			return nil, err
		}
		frames += len(w.Frames)
		for _, sc := range schemes {
			r := s.Run(sc, w)
			totalNS[sc] += r.TotalNS
			totalPJ[sc] += r.Energy.TotalPJ()
		}
	}
	par := sim.SchemeVRDANNParallel
	out := &Headline{
		SpeedupVsOSVOS:       totalNS[sim.SchemeOSVOS] / totalNS[par],
		SpeedupVsFAVOS:       totalNS[sim.SchemeFAVOS] / totalNS[par],
		SpeedupVsDFF:         totalNS[sim.SchemeDFF] / totalNS[par],
		SpeedupVsEuphrates2:  totalNS[sim.SchemeEuphrates2] / totalNS[par],
		EnergyVsOSVOS:        totalPJ[sim.SchemeOSVOS] / totalPJ[par],
		EnergyVsFAVOS:        totalPJ[sim.SchemeFAVOS] / totalPJ[par],
		EnergyVsDFF:          totalPJ[sim.SchemeDFF] / totalPJ[par],
		EnergyVsSerial:       totalPJ[sim.SchemeVRDANNSerial] / totalPJ[par],
		FAVOSFPS:             float64(frames) / (totalNS[sim.SchemeFAVOS] * 1e-9),
		VRDANNFPS:            float64(frames) / (totalNS[par] * 1e-9),
		SerialSpeedupVsFAVOS: totalNS[sim.SchemeFAVOS] / totalNS[sim.SchemeVRDANNSerial],
	}
	f10, err := h.Fig10()
	if err != nil {
		return nil, err
	}
	var favF, vrdF float64
	for _, row := range f10 {
		switch row.Scheme {
		case "FAVOS":
			favF = row.F
		case "VR-DANN":
			vrdF = row.F
		}
	}
	out.AccuracyLossVsFAVOSPct = (favF - vrdF) * 100
	return out, nil
}

// TableII renders the architecture configuration table.
func (h *Harness) TableII() string {
	a := h.Cfg.Sim.Agent
	n := h.Cfg.Sim.NPU
	return fmt.Sprintf(`Table II: VR-DANN-parallel configuration
  Agent unit:
    tmp_B          %d x %d KB
    mv_T           %d entries (~%.1f KB)
    ip_Q           %d entries
    b_Q            %d entries
    coalesce win   %d entries
    frequency      %d MHz
    area (45 nm)   %.1f mm^2, %.2f nJ/access
  NPU (Ascend 310 class):
    compute (INT8) %.0f TOPS peak
    buffer         %d MB
    frequency      %d MHz`,
		a.TmpBuffers, a.TmpBufferBytes>>10,
		a.MVTEntries, float64(a.MVTEntries*8)/1024,
		a.IPQEntries, a.BQEntries, a.CoalesceWindow,
		int(a.ClockGHz*1000),
		a.AreaMM2(), a.TmpBAccessNJ(),
		n.PeakTOPS, n.BufferBytes>>20, int(n.ClockGHz*1000))
}

// AblationRow is one design-knob setting's outcome.
type AblationRow struct {
	Label    string
	TotalNS  float64
	AgentNS  float64
	Misses   int64
	Switches int
}

// AblationCoalescing compares the parallel architecture with and without
// the MV coalescing unit (Sec IV-C).
func (h *Harness) AblationCoalescing() ([]AblationRow, error) {
	return h.ablate(func(p *sim.Params, on bool) { p.DisableCoalescing = !on }, "coalescing")
}

// AblationLaggedSwitching compares lagged queue switching against eager
// per-frame draining (Sec IV-B).
func (h *Harness) AblationLaggedSwitching() ([]AblationRow, error) {
	return h.ablate(func(p *sim.Params, on bool) { p.DisableLaggedSwitching = !on }, "lagged-switching")
}

func (h *Harness) ablate(set func(*sim.Params, bool), label string) ([]AblationRow, error) {
	var out []AblationRow
	for _, on := range []bool{true, false} {
		p := h.Cfg.Sim
		set(&p, on)
		s := sim.New(p)
		row := AblationRow{Label: fmt.Sprintf("%s=%v", label, on)}
		for _, v := range h.Suite() {
			w, err := h.workloadFor(v)
			if err != nil {
				return nil, err
			}
			r := s.Run(sim.SchemeVRDANNParallel, w)
			row.TotalNS += r.TotalNS
			row.AgentNS += r.AgentNS
			row.Misses += r.DRAM.Misses
			row.Switches += r.Switches
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationTmpB sweeps the number of tmp_B buffers (the paper settles on 3).
func (h *Harness) AblationTmpB() ([]AblationRow, error) {
	var out []AblationRow
	for _, n := range []int{1, 2, 3, 4, 6} {
		p := h.Cfg.Sim
		p.Agent.TmpBuffers = n
		s := sim.New(p)
		row := AblationRow{Label: fmt.Sprintf("tmp_B=%d", n)}
		for _, v := range h.Suite() {
			w, err := h.workloadFor(v)
			if err != nil {
				return nil, err
			}
			r := s.Run(sim.SchemeVRDANNParallel, w)
			row.TotalNS += r.TotalNS
			row.AgentNS += r.AgentNS
			row.Misses += r.DRAM.Misses
			row.Switches += r.Switches
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationRefinement compares VR-DANN accuracy with and without NN-S
// refinement (reconstruction-only), justifying the Sec III-A-2 network.
func (h *Harness) AblationRefinement() (withF, withJ, withoutF, withoutJ float64, err error) {
	nns, err := h.NNS()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var wf, wj, of, oj float64
	n := 0
	for _, v := range h.Suite() {
		st, err := h.StreamFor(v, h.Cfg.Enc)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		nnl := h.nnlFor(v, "NN-L", h.Cfg.FAVOSNoise, 3)
		withP := &core.Pipeline{NNL: nnl, NNS: nns, Refine: true, Workers: h.Cfg.PipelineWorkers}
		withoutP := &core.Pipeline{NNL: nnl, Refine: false, Workers: h.Cfg.PipelineWorkers}
		rw, err := withP.RunSegmentation(st.Data)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ro, err := withoutP.RunSegmentation(st.Data)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		f1, j1 := ScoreMasks(rw.Masks, v)
		f0, j0 := ScoreMasks(ro.Masks, v)
		wf += f1
		wj += j1
		of += f0
		oj += j0
		n++
	}
	c := float64(n)
	return wf / c, wj / c, of / c, oj / c, nil
}

// Timeline renders Fig 7-style execution timelines (FAVOS, VR-DANN-serial,
// VR-DANN-parallel) for the "cows" sequence.
func (h *Harness) Timeline() (string, error) {
	var target *video.Video
	for _, v := range h.Suite() {
		if v.Name == "cows" {
			target = v
			break
		}
	}
	if target == nil {
		target = h.Suite()[0]
	}
	w, err := h.workloadFor(target)
	if err != nil {
		return "", err
	}
	s := sim.New(h.Cfg.Sim)
	var b strings.Builder
	for _, sc := range []sim.Scheme{sim.SchemeFAVOS, sim.SchemeVRDANNSerial, sim.SchemeVRDANNParallel} {
		rep, tr := s.RunTraced(sc, w)
		fmt.Fprintf(&b, "%s (%.1f fps, %d switches):\n", sc, rep.FPS(), rep.Switches)
		tr.Render(&b, 100)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// AblationInt8 measures the accuracy cost of deploying NN-S quantized to
// INT8, which is how the modeled NPU (Table II) executes: weights and
// activations are fake-quantized with scales calibrated on training
// sandwiches. Returns suite-average (F, J) for FP32 and INT8 inference.
func (h *Harness) AblationInt8() (fp32F, fp32J, int8F, int8J float64, err error) {
	nns, err := h.NNS()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	// Calibration inputs: sandwiches from the training sequences.
	calib, err := h.calibrationSandwiches(4)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	qnet, err := nn.NewInt8RefineNet(nns.Clone(), calib)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	suite := h.Suite()
	type acc struct{ ff, fj, qf, qj float64 }
	rows := make([]acc, len(suite))
	err = h.forEach(len(suite), func(i int) error {
		v := suite[i]
		res, err := h.RunVRDANNNet(v, h.Cfg.Enc, nns.Clone())
		if err != nil {
			return err
		}
		rows[i].ff, rows[i].fj = ScoreMasks(res.Masks, v)
		// INT8 path: rebuild B-frame masks from the cached reconstructions
		// through the quantized network.
		masks := make([]*video.Mask, len(res.Masks))
		copy(masks, res.Masks)
		segs := map[int]*video.Mask{}
		for d, ty := range res.Decode.Types {
			if ty.IsAnchor() {
				segs[d] = res.Masks[d]
			}
		}
		for d, rec := range res.Recons {
			prev, next := core.FlankingAnchors(res.Decode.Types, segs, d)
			x := segment.Sandwich(prev, rec, next)
			logits := qnet.Forward(x)
			m := video.NewMask(rec.W, rec.H)
			for pi, lv := range logits.Data {
				if lv > 0 {
					m.Pix[pi] = 1
				}
			}
			masks[d] = m
		}
		rows[i].qf, rows[i].qj = ScoreMasks(masks, v)
		return nil
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	n := float64(len(suite))
	for _, r := range rows {
		fp32F += r.ff / n
		fp32J += r.fj / n
		int8F += r.qf / n
		int8J += r.qj / n
	}
	return fp32F, fp32J, int8F, int8J, nil
}

// calibrationSandwiches builds n representative NN-S inputs from the
// training sequences for INT8 activation calibration.
func (h *Harness) calibrationSandwiches(n int) ([]*tensor.Tensor, error) {
	train := video.MakeTrainingSet(h.Cfg.W, h.Cfg.H, 8)
	var out []*tensor.Tensor
	for _, v := range train {
		if len(out) >= n {
			break
		}
		st, err := h.StreamFor(v, h.Cfg.Enc)
		if err != nil {
			return nil, err
		}
		dec, err := codecDecodeSide(st.Data)
		if err != nil {
			return nil, err
		}
		segs := map[int]*video.Mask{}
		for d, ty := range dec.Types {
			if ty.IsAnchor() {
				segs[d] = v.Masks[d]
			}
		}
		for d, ty := range dec.Types {
			if ty != codec.BFrame || len(out) >= n {
				continue
			}
			rec, err := segment.Reconstruct(dec.Infos[d], segs, dec.W, dec.H, dec.Cfg.BlockSize)
			if err != nil {
				return nil, err
			}
			prev, next := core.FlankingAnchors(dec.Types, segs, d)
			out = append(out, segment.Sandwich(prev, rec, next))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no calibration sandwiches available")
	}
	return out, nil
}

func codecDecodeSide(data []byte) (*codec.DecodeResult, error) {
	return codec.Decode(data, codec.DecodeSideInfo)
}

// RealtimeRow is one scheme's live-camera behaviour at a 25 fps source.
type RealtimeRow struct {
	Scheme       sim.Scheme
	AvgLatencyMS float64
	P99LatencyMS float64
	MissPct      float64
	// SustainedFPS is the suite-median sustainable source rate; MinFPS is
	// the worst sequence's (low-B-ratio content caps VR-DANN's benefit).
	SustainedFPS float64
	MinFPS       float64
}

// Realtime evaluates each scheme against a 25 fps camera on the suite and
// probes the sustained frame rate — the "real-time video recognition"
// claim of the paper's title, measured end to end.
func (h *Harness) Realtime() ([]RealtimeRow, error) {
	s := sim.New(h.Cfg.Sim)
	schemes := []sim.Scheme{sim.SchemeFAVOS, sim.SchemeDFF, sim.SchemeVRDANNSerial, sim.SchemeVRDANNParallel}
	candidates := []float64{10, 13, 16, 20, 25, 30, 35, 40, 50}
	var out []RealtimeRow
	for _, sc := range schemes {
		row := RealtimeRow{Scheme: sc}
		var lat, p99 float64
		var sustained []float64
		misses, frames := 0, 0
		for _, v := range h.Suite() {
			w, err := h.workloadFor(v)
			if err != nil {
				return nil, err
			}
			rep := s.RunRealtime(sc, w, 25)
			lat += rep.AvgLatencyNS
			p99 += rep.P99LatencyNS
			misses += rep.DeadlineMisses
			frames += len(w.Frames)
			sustained = append(sustained, s.SustainedFPS(sc, w, candidates))
		}
		sort.Float64s(sustained)
		row.MinFPS = sustained[0]
		row.SustainedFPS = sustained[len(sustained)/2]
		n := float64(len(h.Suite()))
		row.AvgLatencyMS = lat / n / 1e6
		row.P99LatencyMS = p99 / n / 1e6
		row.MissPct = 100 * float64(misses) / float64(frames)
		out = append(out, row)
	}
	return out, nil
}

// DSERow is one design point of the NPU/memory design-space exploration.
type DSERow struct {
	PeakTOPS   float64
	BandwidthX float64 // DRAM bandwidth relative to the DDR3 baseline
	FavosFPS   float64
	VrdannFPS  float64
	Speedup    float64 // VR-DANN-parallel over FAVOS at this design point
}

// DSE sweeps NPU peak compute and DRAM bandwidth around the Table II
// design point and reports how VR-DANN's advantage shifts: weaker NPUs
// amplify the benefit of skipping NN-L (compute-bound), while at very high
// compute the decoder and fixed costs start to bound both schemes.
func (h *Harness) DSE() ([]DSERow, error) {
	var out []DSERow
	for _, tops := range []float64{4, 8, 16, 32, 64} {
		for _, bwx := range []float64{0.5, 1, 2} {
			p := h.Cfg.Sim
			p.NPU.PeakTOPS = tops
			// Scale bandwidth by shortening the burst transfer time.
			p.DRAM.TBurst = int(float64(p.DRAM.TBurst)/bwx + 0.5)
			if p.DRAM.TBurst < 1 {
				p.DRAM.TBurst = 1
			}
			s := sim.New(p)
			var favNS, vrdNS float64
			frames := 0
			for _, v := range h.Suite() {
				w, err := h.workloadFor(v)
				if err != nil {
					return nil, err
				}
				frames += len(w.Frames)
				favNS += s.Run(sim.SchemeFAVOS, w).TotalNS
				vrdNS += s.Run(sim.SchemeVRDANNParallel, w).TotalNS
			}
			out = append(out, DSERow{
				PeakTOPS:   tops,
				BandwidthX: bwx,
				FavosFPS:   float64(frames) / (favNS * 1e-9),
				VrdannFPS:  float64(frames) / (vrdNS * 1e-9),
				Speedup:    favNS / vrdNS,
			})
		}
	}
	return out, nil
}

// EnergyRow is one scheme's per-unit energy, in millijoules over the suite.
type EnergyRow struct {
	Scheme                        sim.Scheme
	NPU, DRAM, Dec, Agent, Static float64
	Total                         float64
}

// EnergyBreakdown splits each scheme's suite energy by unit, showing where
// VR-DANN's savings come from (NN ops and raw-frame traffic) and what does
// not shrink (decoder, static power).
func (h *Harness) EnergyBreakdown() ([]EnergyRow, error) {
	s := sim.New(h.Cfg.Sim)
	var out []EnergyRow
	for _, sc := range fig13Schemes {
		row := EnergyRow{Scheme: sc}
		for _, v := range h.Suite() {
			w, err := h.workloadFor(v)
			if err != nil {
				return nil, err
			}
			r := s.Run(sc, w)
			row.NPU += r.Energy.NPUPJ / 1e9
			row.DRAM += r.Energy.DRAMPJ / 1e9
			row.Dec += r.Energy.DecPJ / 1e9
			row.Agent += r.Energy.AgentPJ / 1e9
			row.Static += r.Energy.StaticPJ / 1e9
		}
		row.Total = row.NPU + row.DRAM + row.Dec + row.Agent + row.Static
		out = append(out, row)
	}
	return out, nil
}
