// Package experiments regenerates every table and figure of the VR-DANN
// paper's evaluation (Sec VI) on the synthetic substrate. A Harness caches
// the expensive shared artifacts — rendered suites, encoded streams, the
// trained NN-S — so the per-figure entry points stay cheap to compose.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"vrdann/internal/baseline"
	"vrdann/internal/codec"
	"vrdann/internal/core"
	"vrdann/internal/nn"
	"vrdann/internal/segment"
	"vrdann/internal/sim"
	"vrdann/internal/video"
)

// Config scopes an experiment run.
type Config struct {
	W, H       int // evaluation resolution for the accuracy pipelines
	DetW, DetH int // detection evaluation resolution (larger: box IoU is
	// sensitive to the macro-block granularity relative to object size)
	Frames      int // frames per evaluation sequence
	TrainFrames int // frames per training sequence
	Videos      int // restrict the suites to the first N sequences (0 = all)
	SimW, SimH  int // resolution the simulator scales workloads to

	Enc codec.Config
	Sim sim.Params

	// Oracle calibration: boundary-noise strengths standing in for the
	// respective segmentation networks (FAVOS's ROI SegNet is the
	// strongest; the paper borrows it as VR-DANN's NN-L).
	FAVOSNoise float64
	OSVOSNoise float64
	DFFNoise   float64
	// Detection jitter (pixels) standing in for the detector head.
	DetJitter float64

	Train core.TrainConfig
	Seed  int64
	// SkipThreshold is the residual-energy cutoff of the quant figure's
	// int8+skip path: blocks whose summed |residual levels| stay at or
	// below it reuse the MV-reconstructed mask without NN-S refinement.
	// The synthetic suite's sensor noise keeps block energies just above
	// zero, so a small nonzero cutoff separates "noise only" from "the
	// prediction actually missed" (the F-score gate checks it costs no
	// accuracy).
	SkipThreshold int
	// AdaptThink overrides the closed-loop viewer think time of the
	// online-adaptation figure (0 = the figure's 250ms default). The think
	// gap is the idle-gated trainer's entire compute budget, so harnesses
	// running under instrumentation that inflates step cost (-race) widen it
	// to keep the adaptation schedule comparable.
	AdaptThink time.Duration
	// Workers bounds the per-video parallelism of the suite loops
	// (0 = min(NumCPU, 8)).
	Workers int
	// PipelineWorkers selects the intra-pipeline execution mode: > 1 runs
	// each VR-DANN pipeline in its overlapped form (core.WithWorkers);
	// <= 1 keeps the serial decode-order loop. Results are bit-identical,
	// so accuracy tables are unaffected.
	PipelineWorkers int
}

// Default returns the configuration used for all reported numbers.
func Default() Config {
	return Config{
		W: 96, H: 64, DetW: 192, DetH: 128, Frames: 48, TrainFrames: 32,
		SimW: 854, SimH: 480,
		Enc:           codec.DefaultConfig(),
		Sim:           sim.DefaultParams(),
		FAVOSNoise:    0.05,
		OSVOSNoise:    0.045,
		DFFNoise:      0.065,
		DetJitter:     3.2,
		Train:         core.DefaultTrainConfig(),
		Seed:          1,
		SkipThreshold: 8,
	}
}

// Harness lazily materializes and caches the shared artifacts.
type Harness struct {
	Cfg Config

	mu      sync.Mutex
	suite   []*video.Video
	detSet  []*video.Video
	streams map[string]*codec.Stream
	decodes map[string]*codec.DecodeResult
	nns     *nn.RefineNet
	qnns    *nn.QuantRefineNet
}

// New constructs a harness.
func New(cfg Config) *Harness {
	return &Harness{
		Cfg:     cfg,
		streams: make(map[string]*codec.Stream),
		decodes: make(map[string]*codec.DecodeResult),
	}
}

// Suite returns the 20-sequence segmentation suite (rendered once).
func (h *Harness) Suite() []*video.Video {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.suite == nil {
		h.suite = video.MakeSuite(h.Cfg.W, h.Cfg.H, h.Cfg.Frames)
		if h.Cfg.Videos > 0 && h.Cfg.Videos < len(h.suite) {
			h.suite = h.suite[:h.Cfg.Videos]
		}
	}
	return h.suite
}

// DetectionSuite returns the speed-classed detection suite.
func (h *Harness) DetectionSuite() []*video.Video {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.detSet == nil {
		h.detSet = video.MakeDetectionSuite(h.Cfg.DetW, h.Cfg.DetH, h.Cfg.Frames)
		if h.Cfg.Videos > 0 && h.Cfg.Videos < len(h.detSet) {
			h.detSet = h.detSet[:h.Cfg.Videos]
		}
	}
	return h.detSet
}

// StreamFor encodes (and caches) one video under the given configuration.
func (h *Harness) StreamFor(v *video.Video, enc codec.Config) (*codec.Stream, error) {
	key := fmt.Sprintf("%s/%+v", v.Name, enc)
	h.mu.Lock()
	st, ok := h.streams[key]
	h.mu.Unlock()
	if ok {
		return st, nil
	}
	st, err := codec.Encode(v, enc)
	if err != nil {
		return nil, fmt.Errorf("experiments: encode %q: %w", v.Name, err)
	}
	h.mu.Lock()
	h.streams[key] = st
	h.mu.Unlock()
	return st, nil
}

// SideDecodeFor decodes (and caches) a stream in side-info mode.
func (h *Harness) SideDecodeFor(v *video.Video, enc codec.Config) (*codec.DecodeResult, error) {
	st, err := h.StreamFor(v, enc)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%+v", v.Name, enc)
	h.mu.Lock()
	dec, ok := h.decodes[key]
	h.mu.Unlock()
	if ok {
		return dec, nil
	}
	dec, err = codec.Decode(st.Data, codec.DecodeSideInfo)
	if err != nil {
		return nil, fmt.Errorf("experiments: decode %q: %w", v.Name, err)
	}
	h.mu.Lock()
	h.decodes[key] = dec
	h.mu.Unlock()
	return dec, nil
}

// NNS trains (once) and returns the refinement network, following the
// paper's recipe: held-out training sequences, two epochs.
func (h *Harness) NNS() (*nn.RefineNet, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.nns != nil {
		return h.nns, nil
	}
	train := video.MakeTrainingSet(h.Cfg.W, h.Cfg.H, h.Cfg.TrainFrames)
	net, err := core.TrainNNS(train, h.Cfg.Enc, h.Cfg.Train)
	if err != nil {
		return nil, err
	}
	h.nns = net
	return net, nil
}

// nnlFor builds the per-video NN-L oracle at the given strength and
// displacement depth (seeded per sequence so noise is deterministic but
// uncorrelated across videos).
func (h *Harness) nnlFor(v *video.Video, label string, strength float64, radius int) segment.Segmenter {
	return segment.NewOracle(label, v.Masks, strength, radius, h.Cfg.Seed+int64(hashName(v.Name)))
}

func hashName(s string) uint32 {
	var x uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		x = (x ^ uint32(s[i])) * 16777619
	}
	return x % (1 << 16)
}

// RunVRDANN executes the VR-DANN pipeline on one video under the given
// encoder configuration, returning per-frame masks and run stats.
func (h *Harness) RunVRDANN(v *video.Video, enc codec.Config) (*core.Result, error) {
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	return h.RunVRDANNNet(v, enc, nns)
}

// RunVRDANNNet is RunVRDANN with an explicit refinement network — pass a
// Clone per goroutine when running videos concurrently (network layers
// cache forward-pass state).
func (h *Harness) RunVRDANNNet(v *video.Video, enc codec.Config, nns *nn.RefineNet) (*core.Result, error) {
	st, err := h.StreamFor(v, enc)
	if err != nil {
		return nil, err
	}
	p := &core.Pipeline{NNL: h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3), NNS: nns, Refine: true, Workers: h.Cfg.PipelineWorkers}
	return p.RunSegmentation(st.Data)
}

// workers resolves the configured suite-loop parallelism.
func (h *Harness) workers() int {
	if h.Cfg.Workers > 0 {
		return h.Cfg.Workers
	}
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forEach runs fn(i) for i in [0, n) on a bounded worker pool and returns
// the first error. Results must be written to index-addressed slots so
// aggregation stays deterministic.
func (h *Harness) forEach(n int, fn func(i int) error) error {
	workers := h.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunFAVOS executes the FAVOS baseline on one video.
func (h *Harness) RunFAVOS(v *video.Video) (*baseline.SegResult, error) {
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	// FAVOS couples the segmentation network with part tracking, which
	// sharpens localization beyond the raw network output (Sec VII-A-2);
	// VR-DANN borrows the network parameters but not the tracker, which is
	// why the paper finds FAVOS slightly ahead. The tracker's benefit is
	// modeled as a modest reduction of the effective boundary error.
	strength := h.Cfg.FAVOSNoise * 0.94
	return baseline.RunFAVOS(st.Data, h.nnlFor(v, "FAVOS", strength, 3), v.Masks[0])
}

// RunOSVOS executes the OSVOS baseline on one video.
func (h *Harness) RunOSVOS(v *video.Video) (*baseline.SegResult, error) {
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	return baseline.RunOSVOS(st.Data, h.nnlFor(v, "OSVOS", h.Cfg.OSVOSNoise, 4))
}

// RunDFF executes the DFF baseline on one video.
func (h *Harness) RunDFF(v *video.Video) (*baseline.SegResult, error) {
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	return baseline.RunDFF(st.Data, h.nnlFor(v, "DFF", h.Cfg.DFFNoise, 3), baseline.DefaultDFFConfig())
}

// ScoreMasks returns the sequence-mean boundary F and region J of
// predictions against the video's ground truth.
func ScoreMasks(pred []*video.Mask, v *video.Video) (f, j float64) {
	var s segment.SeqScore
	for i := range pred {
		s.Add(pred[i], v.Masks[i])
	}
	return s.Mean()
}
