package experiments

import (
	"context"
	"sync"
	"time"

	"vrdann/internal/adapt"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/video"
)

// AdaptRow is one mode of the online-adaptation drift figure: the same
// content-drifted stream served frozen (the shipped NN-S, as the paper
// deploys it) and adapted (the per-stream fine-tuning tier). EarlyF/LateF
// are mean ground-truth pixel F-scores of served B-frames over the first
// and last thirds of the run: the frozen row stays flat while the adapted
// row's LateF climbs as the trainer converges on the session's content —
// and the latency percentiles stay put, because training only runs in the
// arrival gaps.
type AdaptRow struct {
	Mode    string  `json:"mode"`
	Streams int     `json:"streams"`
	Frames  int     `json:"frames"`
	FPS     float64 `json:"fps"`
	P50MS   float64 `json:"p50Ms"`
	P95MS   float64 `json:"p95Ms"`
	P99MS   float64 `json:"p99Ms"`
	// EarlyF/LateF are against ground truth; EarlyDriftF/LateDriftF are the
	// refined-vs-anchor consistency the tier's rolling drift monitor tracks
	// (computed identically for both modes, so the frozen row is a true
	// baseline for it).
	EarlyF      float64 `json:"earlyF"`
	LateF       float64 `json:"lateF"`
	EarlyDriftF float64 `json:"earlyDriftF"`
	LateDriftF  float64 `json:"lateDriftF"`
	// Adaptation accounting (server-wide counters; zero on the frozen row).
	TrainSteps int64 `json:"trainSteps"`
	Promotions int64 `json:"promotions"`
	Rollbacks  int64 `json:"rollbacks"`
}

// driftVideo renders the content-drift stream: rotating, heavily deforming
// boxes. Every sequence NN-S trains on (video.TrainingProfiles) is built
// from disks at modest deformation, so box corners under strong rotation
// are exactly the boundary statistics the shipped network has never seen —
// the distribution gap the adaptation tier exists to close.
func (h *Harness) driftVideo() *video.Video {
	w, hh := h.Cfg.W, h.Cfg.H
	r := 0.18 * float64(hh)
	return video.Generate(video.SceneSpec{
		Name: "adapt-drift", W: w, H: hh, Frames: h.Cfg.Frames, Seed: 771, Noise: 2.0,
		Objects: []video.ObjectSpec{
			{
				Shape: video.ShapeBox, Radius: r,
				X: 0.32 * float64(w), Y: 0.5 * float64(hh),
				VX: 0.9, VY: -0.3, RotRate: 0.2, Deform: 0.4, DeformRate: 0.3,
				Intensity: 210, Foreground: true,
			},
			{
				Shape: video.ShapeBox, Radius: 0.6 * r,
				X: 0.68 * float64(w), Y: 0.42 * float64(hh),
				VX: -0.6, VY: 0.4, RotRate: 0.14, Deform: 0.5, DeformRate: 0.22,
				Intensity: 160, Foreground: true,
			},
		},
	})
}

// AdaptFigure serves the drift stream twice — frozen and adapted — through
// identical servers and load, splitting B-frame accuracy into early/late
// thirds of the run. Arrivals are paced with real gaps (the closed-loop
// viewer cadence) so the idle-gated trainer gets its shadow budget.
func (h *Harness) AdaptFigure() ([]AdaptRow, error) {
	nns, err := h.NNS()
	if err != nil {
		return nil, err
	}
	v := h.driftVideo()
	st, err := h.StreamFor(v, h.Cfg.Enc)
	if err != nil {
		return nil, err
	}
	const streams, chunksPer = 2, 9
	// Closed-loop viewer cadence: the think gap between a chunk finishing
	// and the next request is the adaptation tier's entire compute budget.
	think := 250 * time.Millisecond
	if h.Cfg.AdaptThink > 0 {
		think = h.Cfg.AdaptThink
	}
	// Train at half resolution when the stream is large enough to afford it:
	// quartering the per-step cost bounds how long a straggler step can
	// compete with serving when cores are scarce. Below ~64 rows the halved
	// plane gets too small for the promotion evaluation to separate real
	// gains from pixel noise, so small runs train at serving resolution.
	trainScale := 1
	if h.Cfg.H >= 64 {
		trainScale = 2
	}
	modes := []struct {
		name string
		cfg  *adapt.Config
	}{
		{"frozen", nil},
		// Evaluate candidates often and promote on small real gains: a drift
		// run is short, so the tier should react within a few chunks.
		{"adapted", &adapt.Config{EvalEvery: 4, MinImprove: 0.001, StepsPerBurst: 8,
			TrainScale: trainScale}},
	}
	rows := make([]AdaptRow, 0, len(modes))
	for _, mode := range modes {
		col := obs.New()
		srv, err := serve.NewServer(serve.Config{
			MaxSessions: streams,
			Workers:     h.workers(),
			NNS:         nns,
			NewSegmenter: func(id string) segment.Segmenter {
				return h.nnlFor(v, "NN-L(FAVOS)", h.Cfg.FAVOSNoise, 3)
			},
			Policy: serve.Wait,
			Obs:    col,
			Adapt:  mode.cfg,
		})
		if err != nil {
			return nil, err
		}
		var mu sync.Mutex
		var sums, driftSums [2]float64
		var ns, driftNs [2]int
		lastAnchor := make(map[int]*video.Mask)
		frames := h.Cfg.Frames
		gen := &serve.LoadGen{
			Server:  srv,
			Streams: streams,
			Think:   think,
			Chunks: func(int) [][]byte {
				cs := make([][]byte, chunksPer)
				for c := range cs {
					cs[c] = st.Data
				}
				return cs
			},
			OnResult: func(stream int, r serve.FrameResult) {
				// Results arrive per stream in display order, so the most
				// recent anchor seen is each B-frame's drift reference.
				mu.Lock()
				defer mu.Unlock()
				if r.Type.IsAnchor() {
					lastAnchor[stream] = r.Mask
					return
				}
				chunk := r.Display / frames
				var bucket int
				switch {
				case chunk < chunksPer/3:
					bucket = 0
				case chunk >= chunksPer-chunksPer/3:
					bucket = 1
				default:
					return // middle of the run: the transition, not the figure
				}
				var f float64
				if r.Mask != nil {
					f = segment.PixelFScore(r.Mask, v.Masks[r.Display%frames])
				}
				sums[bucket] += f
				ns[bucket]++
				if r.Mask != nil && lastAnchor[stream] != nil {
					driftSums[bucket] += segment.PixelFScore(r.Mask, lastAnchor[stream])
					driftNs[bucket]++
				}
			},
		}
		rep, err := gen.Run(context.Background())
		if cerr := srv.Close(context.Background()); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		meanOf := func(sum [2]float64, n [2]int, b int) float64 {
			if n[b] == 0 {
				return 0
			}
			return sum[b] / float64(n[b])
		}
		snap := col.Snapshot()
		rows = append(rows, AdaptRow{
			Mode:        mode.name,
			Streams:     streams,
			Frames:      rep.Frames,
			FPS:         rep.FPS,
			P50MS:       ms(rep.P50),
			P95MS:       ms(rep.P95),
			P99MS:       ms(rep.P99),
			EarlyF:      meanOf(sums, ns, 0),
			LateF:       meanOf(sums, ns, 1),
			EarlyDriftF: meanOf(driftSums, driftNs, 0),
			LateDriftF:  meanOf(driftSums, driftNs, 1),
			TrainSteps:  snap.Counters[obs.CounterAdaptSteps.String()],
			Promotions:  snap.Counters[obs.CounterAdaptPromotions.String()],
			Rollbacks:   snap.Counters[obs.CounterAdaptRollbacks.String()],
		})
	}
	return rows, nil
}
